package baseline

import (
	"bytes"
	"testing"

	"ppr/internal/stats"
)

func TestEncodeDecodeRoundTripClean(t *testing.T) {
	rng := stats.NewRNG(1)
	for _, fragBytes := range []int{1, 7, 50, 200} {
		data := make([]byte, 333)
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		enc := EncodeFragmented(data, fragBytes)
		if len(enc) != EncodedLen(len(data), fragBytes) {
			t.Errorf("frag %d: encoded len %d, want %d", fragBytes, len(enc), EncodedLen(len(data), fragBytes))
		}
		frags := DecodeFragmented(enc, fragBytes)
		var got []byte
		for _, f := range frags {
			if !f.OK {
				t.Fatalf("frag %d: clean fragment failed CRC", fragBytes)
			}
			got = append(got, f.Data...)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("frag %d: round trip mismatch", fragBytes)
		}
		if DeliveredBytes(frags) != len(data) {
			t.Errorf("frag %d: delivered %d of %d", fragBytes, DeliveredBytes(frags), len(data))
		}
	}
}

func TestDecodeDiscardsOnlyCorruptFragments(t *testing.T) {
	data := make([]byte, 500)
	for i := range data {
		data[i] = byte(i)
	}
	const c = 50
	enc := EncodeFragmented(data, c)
	// Corrupt one byte inside the third fragment's data.
	enc[2*(c+FragOverhead)+10] ^= 0xff
	frags := DecodeFragmented(enc, c)
	for i, f := range frags {
		wantOK := i != 2
		if f.OK != wantOK {
			t.Errorf("fragment %d OK=%v, want %v", i, f.OK, wantOK)
		}
	}
	if DeliveredBytes(frags) != len(data)-c {
		t.Errorf("delivered %d, want %d", DeliveredBytes(frags), len(data)-c)
	}
}

func TestDecodeCorruptCRCKillsOneFragment(t *testing.T) {
	data := make([]byte, 100)
	const c = 25
	enc := EncodeFragmented(data, c)
	enc[c] ^= 1 // first fragment's CRC byte
	frags := DecodeFragmented(enc, c)
	if frags[0].OK {
		t.Error("corrupt CRC accepted")
	}
	for i := 1; i < len(frags); i++ {
		if !frags[i].OK {
			t.Errorf("fragment %d collateral damage", i)
		}
	}
}

func TestFragmentOffsets(t *testing.T) {
	data := make([]byte, 120)
	frags := DecodeFragmented(EncodeFragmented(data, 50), 50)
	wantOffsets := []int{0, 50, 100}
	if len(frags) != 3 {
		t.Fatalf("%d fragments", len(frags))
	}
	for i, f := range frags {
		if f.Offset != wantOffsets[i] {
			t.Errorf("fragment %d offset %d, want %d", i, f.Offset, wantOffsets[i])
		}
	}
	if len(frags[2].Data) != 20 {
		t.Errorf("short final fragment has %d bytes", len(frags[2].Data))
	}
}

func TestEncodedLenFormula(t *testing.T) {
	cases := []struct{ dataLen, frag, want int }{
		{0, 50, 0},
		{50, 50, 54},
		{51, 50, 59},
		{1500, 50, 1500 + 30*4},
		{1500, 1500, 1504},
	}
	for _, c := range cases {
		if got := EncodedLen(c.dataLen, c.frag); got != c.want {
			t.Errorf("EncodedLen(%d,%d) = %d, want %d", c.dataLen, c.frag, got, c.want)
		}
	}
}

func TestAppCapacityInverseOfEncodedLen(t *testing.T) {
	for _, frag := range []int{5, 50, 128, 500} {
		for payload := 40; payload <= 1500; payload += 97 {
			app := AppCapacity(payload, frag)
			if app < 0 {
				t.Fatalf("negative capacity")
			}
			if app > 0 && EncodedLen(app, frag) > payload {
				t.Errorf("frag %d payload %d: capacity %d encodes to %d",
					frag, payload, app, EncodedLen(app, frag))
			}
			// Capacity is maximal: one more byte must not fit.
			if EncodedLen(app+1, frag) <= payload {
				t.Errorf("frag %d payload %d: capacity %d not maximal", frag, payload, app)
			}
		}
	}
}

func TestPacketCRCDelivered(t *testing.T) {
	if PacketCRCDelivered(100, true) != 100 || PacketCRCDelivered(100, false) != 0 {
		t.Error("packet CRC delivery")
	}
}

func TestOptimalFragmentPrefersLargeWhenClean(t *testing.T) {
	// No errors at all: biggest fragment wins (least CRC overhead).
	traces := [][]bool{allOK(1500), allOK(1500)}
	best, _ := OptimalFragmentBytes(traces, 1500, []int{10, 50, 250, 1400})
	if best != 1400 {
		t.Errorf("clean trace picked fragment %d, want 1400", best)
	}
}

func TestOptimalFragmentPrefersSmallUnderScatteredErrors(t *testing.T) {
	// Errors every ~100 bytes: large fragments always die; small survive.
	trace := allOK(1500)
	for i := 50; i < 1500; i += 100 {
		trace[i] = false
	}
	best, delivered := OptimalFragmentBytes([][]bool{trace}, 1500, []int{10, 50, 250, 1400})
	if best != 10 {
		t.Errorf("scattered errors picked fragment %d, want 10", best)
	}
	if delivered == 0 {
		t.Error("nothing delivered at optimal size")
	}
}

func TestOptimalFragmentBurstErrors(t *testing.T) {
	// One contiguous 100-byte burst: medium/large fragments lose only the
	// burst region; the returned best must deliver at least as much as any
	// candidate.
	trace := allOK(1500)
	for i := 700; i < 800; i++ {
		trace[i] = false
	}
	candidates := []int{10, 50, 250}
	best, delivered := OptimalFragmentBytes([][]bool{trace}, 1500, candidates)
	for _, c := range candidates {
		if d := simulateDelivery(trace, 1500, c); d > delivered {
			t.Errorf("candidate %d delivers %d > chosen %d's %d", c, d, best, delivered)
		}
	}
}

func allOK(n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = true
	}
	return b
}

func TestAdaptiveFragmenterGrowsWhenClean(t *testing.T) {
	a := NewAdaptiveFragmenter(50, 10, 400)
	for i := 0; i < 8; i++ {
		a.Record(10, 10)
	}
	if a.FragBytes() <= 50 {
		t.Errorf("fragment size %d did not grow on clean packets", a.FragBytes())
	}
}

func TestAdaptiveFragmenterShrinksOnErrors(t *testing.T) {
	a := NewAdaptiveFragmenter(200, 10, 400)
	a.Record(10, 3)
	if a.FragBytes() != 100 {
		t.Errorf("fragment size %d after loss, want 100", a.FragBytes())
	}
	// Bounded below.
	for i := 0; i < 10; i++ {
		a.Record(10, 0)
	}
	if a.FragBytes() < 10 {
		t.Errorf("fragment size %d fell below Min", a.FragBytes())
	}
}

func TestAdaptiveFragmenterBoundedAbove(t *testing.T) {
	a := NewAdaptiveFragmenter(300, 10, 400)
	for i := 0; i < 40; i++ {
		a.Record(5, 5)
	}
	if a.FragBytes() > 400 {
		t.Errorf("fragment size %d exceeded Max", a.FragBytes())
	}
}

func TestAdaptiveFragmenterMixedTraffic(t *testing.T) {
	// Alternating clean and lossy packets should keep c in a middle band,
	// never pinned at the extremes.
	a := NewAdaptiveFragmenter(100, 10, 1400)
	rng := stats.NewRNG(2)
	for i := 0; i < 500; i++ {
		if rng.Bool(0.3) {
			a.Record(10, 8)
		} else {
			a.Record(10, 10)
		}
	}
	if a.FragBytes() == 1400 {
		t.Error("adaptive size pinned at max despite 30% lossy packets")
	}
}

func TestNewAdaptiveFragmenterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAdaptiveFragmenter(5, 10, 400)
}
