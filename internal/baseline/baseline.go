// Package baseline implements the two schemes the paper evaluates PPR
// against (Secs. 3.4, 7.2):
//
//   - Packet CRC: the status quo. One CRC-32 over the whole payload; the
//     packet is delivered entirely or not at all.
//   - Fragmented CRC: the payload is divided into fragments, each followed
//     by its own CRC-32 (Fig. 4); fragments whose checksums verify are
//     delivered and the rest discarded.
//
// It also implements the fragment-size policies of Sec. 3.4: fixed sizes
// (Table 2 sweeps them), an adaptive controller that grows c when recent
// fragments are clean and shrinks it on errors, and the post-facto optimal
// size computed from an error trace — the "best case" the paper grants the
// fragmented-CRC baseline in its comparisons.
package baseline

import (
	"fmt"

	"ppr/internal/crcutil"
)

// FragOverhead is the per-fragment checksum size in bytes.
const FragOverhead = crcutil.Size32

// EncodeFragmented lays application data out as fragment‖CRC32 repeated,
// with the final fragment possibly short. fragBytes is the application
// bytes per fragment (c in the paper).
func EncodeFragmented(data []byte, fragBytes int) []byte {
	if fragBytes <= 0 {
		panic(fmt.Sprintf("baseline: fragment size %d", fragBytes))
	}
	out := make([]byte, 0, len(data)+(len(data)/fragBytes+1)*FragOverhead)
	for off := 0; off < len(data); off += fragBytes {
		end := off + fragBytes
		if end > len(data) {
			end = len(data)
		}
		out = append(out, data[off:end]...)
		out = crcutil.Append32(out, data[off:end])
	}
	return out
}

// EncodedLen returns the on-payload size of fragmenting dataLen application
// bytes at fragBytes per fragment.
func EncodedLen(dataLen, fragBytes int) int {
	if dataLen == 0 {
		return 0
	}
	nFrags := (dataLen + fragBytes - 1) / fragBytes
	return dataLen + nFrags*FragOverhead
}

// AppCapacity returns how many application bytes fit in a link payload of
// payloadBytes when fragmented at fragBytes: the inverse of EncodedLen,
// used to size workloads so every scheme puts equal bytes on the air.
func AppCapacity(payloadBytes, fragBytes int) int {
	perFrag := fragBytes + FragOverhead
	full := payloadBytes / perFrag
	rem := payloadBytes % perFrag
	app := full * fragBytes
	if rem > FragOverhead {
		app += rem - FragOverhead
	}
	return app
}

// Fragment is one decoded fragment.
type Fragment struct {
	// Offset is the fragment's position in the original application data.
	Offset int
	// Data is the fragment's application bytes as received.
	Data []byte
	// OK reports whether the fragment's CRC verified.
	OK bool
}

// DecodeFragmented splits a received payload back into fragments and checks
// each CRC. Delivered data is exactly the concatenation of OK fragments —
// "fragmented CRC delivers each chunk whose checksum verifies correctly,
// and discards the remainder" (Sec. 7.2).
func DecodeFragmented(payload []byte, fragBytes int) []Fragment {
	if fragBytes <= 0 {
		panic(fmt.Sprintf("baseline: fragment size %d", fragBytes))
	}
	var out []Fragment
	appOff := 0
	for off := 0; off < len(payload); {
		end := off + fragBytes + FragOverhead
		if end > len(payload) {
			end = len(payload)
		}
		chunk := payload[off:end]
		if len(chunk) <= FragOverhead {
			// Trailing runt: no room for data+CRC; treat as a failed
			// fragment of whatever remains.
			out = append(out, Fragment{Offset: appOff, Data: nil, OK: false})
			break
		}
		data, ok := crcutil.Verify32(chunk)
		out = append(out, Fragment{Offset: appOff, Data: data, OK: ok})
		appOff += len(data)
		off = end
	}
	return out
}

// DeliveredBytes sums the application bytes of verified fragments.
func DeliveredBytes(frags []Fragment) int {
	n := 0
	for _, f := range frags {
		if f.OK {
			n += len(f.Data)
		}
	}
	return n
}

// PacketCRCDelivered implements the status-quo scheme's verdict: all
// application bytes on a verified packet CRC, none otherwise.
func PacketCRCDelivered(payloadLen int, crcOK bool) int {
	if crcOK {
		return payloadLen
	}
	return 0
}

// OptimalFragmentBytes computes, post facto, the fragment size (in bytes,
// from the given candidate set) that maximises delivered application bytes
// over a trace of per-byte correctness — the "best case" fragment size of
// Sec. 3.4. byteOK[i] says whether byte i of the payload survived; the
// budget is the link payload size, so larger fragments waste less on CRCs
// but lose more per error. Returns the winning size and its delivered
// byte count.
func OptimalFragmentBytes(traces [][]bool, payloadBytes int, candidates []int) (best int, delivered int) {
	if len(candidates) == 0 {
		panic("baseline: no candidate fragment sizes")
	}
	best = candidates[0]
	for _, c := range candidates {
		total := 0
		for _, byteOK := range traces {
			total += simulateDelivery(byteOK, payloadBytes, c)
		}
		if total > delivered {
			delivered = total
			best = c
		}
	}
	return best, delivered
}

// simulateDelivery replays a correctness trace under fragment size c: a
// fragment is delivered iff every one of its bytes (data and CRC) arrived
// intact.
func simulateDelivery(byteOK []bool, payloadBytes, c int) int {
	appBytes := AppCapacity(payloadBytes, c)
	delivered := 0
	pos := 0
	for off := 0; off < appBytes; off += c {
		end := off + c
		if end > appBytes {
			end = appBytes
		}
		fragLen := end - off + FragOverhead
		ok := true
		for i := pos; i < pos+fragLen && i < len(byteOK); i++ {
			if !byteOK[i] {
				ok = false
				break
			}
		}
		if pos+fragLen > len(byteOK) {
			ok = false
		}
		if ok {
			delivered += end - off
		}
		pos += fragLen
	}
	return delivered
}

// AdaptiveFragmenter adjusts the fragment size online, as Sec. 3.4
// suggests: "if the current value leads to a large number of contiguous
// error-free fragments, then c should be increased; otherwise, it should be
// reduced."
type AdaptiveFragmenter struct {
	// Min and Max bound the fragment size in bytes.
	Min, Max int
	// GrowAfter is the number of consecutive fully-clean packets that
	// triggers a doubling.
	GrowAfter int
	c         int
	cleanRun  int
}

// NewAdaptiveFragmenter starts at the given fragment size within [min,
// max].
func NewAdaptiveFragmenter(initial, min, max int) *AdaptiveFragmenter {
	if min <= 0 || max < min || initial < min || initial > max {
		panic(fmt.Sprintf("baseline: bad adaptive fragmenter bounds %d in [%d,%d]", initial, min, max))
	}
	return &AdaptiveFragmenter{Min: min, Max: max, GrowAfter: 4, c: initial}
}

// FragBytes returns the current fragment size.
func (a *AdaptiveFragmenter) FragBytes() int { return a.c }

// Record feeds back one packet's outcome: how many fragments it carried and
// how many verified.
func (a *AdaptiveFragmenter) Record(fragsTotal, fragsOK int) {
	if fragsTotal == 0 {
		return
	}
	if fragsOK == fragsTotal {
		a.cleanRun++
		if a.cleanRun >= a.GrowAfter {
			a.cleanRun = 0
			if c := a.c * 2; c <= a.Max {
				a.c = c
			}
		}
		return
	}
	a.cleanRun = 0
	// Any loss: halve, bounded below.
	if c := a.c / 2; c >= a.Min {
		a.c = c
	}
}
