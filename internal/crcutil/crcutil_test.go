package crcutil

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSum32KnownVector(t *testing.T) {
	// The classic CRC-32 check value for "123456789".
	if got := Sum32([]byte("123456789")); got != 0xCBF43926 {
		t.Errorf("Sum32 = %#x, want 0xCBF43926", got)
	}
}

func TestSum16KnownVector(t *testing.T) {
	// CRC-16/XMODEM (CCITT poly, init 0) check value for "123456789".
	if got := Sum16([]byte("123456789")); got != 0x31C3 {
		t.Errorf("Sum16 = %#x, want 0x31C3", got)
	}
}

func TestAppendVerify32RoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		buf := Append32(append([]byte(nil), data...), data)
		payload, ok := Verify32(buf)
		return ok && bytes.Equal(payload, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAppendVerify16RoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		buf := Append16(append([]byte(nil), data...), data)
		payload, ok := Verify16(buf)
		return ok && bytes.Equal(payload, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVerify32DetectsSingleBitFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 64)
	rng.Read(data)
	buf := Append32(append([]byte(nil), data...), data)
	for bit := 0; bit < len(buf)*8; bit++ {
		buf[bit/8] ^= 1 << uint(bit%8)
		if _, ok := Verify32(buf); ok {
			t.Fatalf("flip of bit %d went undetected", bit)
		}
		buf[bit/8] ^= 1 << uint(bit%8)
	}
}

func TestVerify16DetectsSingleBitFlips(t *testing.T) {
	data := []byte("partial packet recovery")
	buf := Append16(append([]byte(nil), data...), data)
	for bit := 0; bit < len(buf)*8; bit++ {
		buf[bit/8] ^= 1 << uint(bit%8)
		if _, ok := Verify16(buf); ok {
			t.Fatalf("flip of bit %d went undetected", bit)
		}
		buf[bit/8] ^= 1 << uint(bit%8)
	}
}

func TestVerifyShortBuffer(t *testing.T) {
	if _, ok := Verify32([]byte{1, 2, 3}); ok {
		t.Error("Verify32 accepted 3-byte buffer")
	}
	if _, ok := Verify16([]byte{1}); ok {
		t.Error("Verify16 accepted 1-byte buffer")
	}
}

func TestVerifyEmptyPayload(t *testing.T) {
	buf := Append32(nil, nil)
	if payload, ok := Verify32(buf); !ok || len(payload) != 0 {
		t.Error("empty payload round trip failed")
	}
}

func TestTruncatedWidth(t *testing.T) {
	data := []byte("run")
	for bits := 1; bits <= 32; bits++ {
		v := Truncated(data, bits)
		if bits < 32 && v>>uint(bits) != 0 {
			t.Errorf("Truncated(%d bits) = %#x exceeds width", bits, v)
		}
	}
	if Truncated(data, 32) != Sum32(data) {
		t.Error("32-bit truncation should equal full CRC")
	}
}

func TestTruncatedPanicsOnBadWidth(t *testing.T) {
	for _, w := range []int{0, -1, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d: expected panic", w)
				}
			}()
			Truncated([]byte{1}, w)
		}()
	}
}

func TestAppendPreservesPrefix(t *testing.T) {
	dst := []byte{0xaa, 0xbb}
	out := Append32(dst, []byte("x"))
	if !bytes.Equal(out[:2], []byte{0xaa, 0xbb}) {
		t.Error("Append32 clobbered prefix")
	}
	if len(out) != 2+1+4-1 && len(out) != 6 {
		t.Errorf("unexpected length %d", len(out))
	}
}

func TestDifferentDataDifferentCRC(t *testing.T) {
	// Not a guarantee in general, but for these sizes collisions would
	// indicate a broken table.
	seen := map[uint32][]byte{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		d := make([]byte, 16)
		rng.Read(d)
		c := Sum32(d)
		if prev, dup := seen[c]; dup && !bytes.Equal(prev, d) {
			t.Fatalf("collision between % x and % x", prev, d)
		}
		seen[c] = d
	}
}
