// Package crcutil wraps the checksums the PPR system uses: the 32-bit CRC
// that the link layer appends to whole packets and to fragmented-CRC chunks
// (Sec. 7.2), the 16-bit CCITT CRC used by the 802.15.4 frame check sequence
// for headers and trailers, and truncated checksums of configurable width
// for PP-ARQ run verification (the λ_C-bit checksum of Eq. 4).
package crcutil

import (
	"fmt"
	"hash/crc32"
)

// Size32 is the byte size of the whole-packet / fragment CRC.
const Size32 = 4

// Size16 is the byte size of the header/trailer check (802.15.4 FCS width).
const Size16 = 2

var ieeeTable = crc32.MakeTable(crc32.IEEE)

// Sum32 returns the IEEE CRC-32 of data.
func Sum32(data []byte) uint32 {
	return crc32.Checksum(data, ieeeTable)
}

// Update32 extends a running CRC-32 with more data: feeding parts
// a, b, ... through successive Update32 calls (starting from 0) equals
// Sum32 of their concatenation. The receive path uses it to verify the
// whole-packet checksum over header fields and payload without
// materializing the concatenated buffer.
func Update32(crc uint32, data []byte) uint32 {
	return crc32.Update(crc, ieeeTable, data)
}

// Append32 appends the big-endian CRC-32 of data to dst and returns dst.
func Append32(dst, data []byte) []byte {
	c := Sum32(data)
	return append(dst, byte(c>>24), byte(c>>16), byte(c>>8), byte(c))
}

// Verify32 checks a buffer laid out as payload ‖ crc32(payload). It returns
// the payload and whether the check passed.
func Verify32(buf []byte) (payload []byte, ok bool) {
	if len(buf) < Size32 {
		return nil, false
	}
	payload = buf[:len(buf)-Size32]
	want := uint32(buf[len(buf)-4])<<24 | uint32(buf[len(buf)-3])<<16 |
		uint32(buf[len(buf)-2])<<8 | uint32(buf[len(buf)-1])
	return payload, Sum32(payload) == want
}

// crc16Table is the CCITT (polynomial 0x1021, as used by the 802.15.4 FCS)
// lookup table, built at init.
var crc16Table [256]uint16

func init() {
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		crc16Table[i] = crc
	}
}

// Sum16 returns the CRC-16/CCITT of data (init 0x0000, as in 802.15.4).
func Sum16(data []byte) uint16 {
	var crc uint16
	for _, b := range data {
		crc = crc<<8 ^ crc16Table[byte(crc>>8)^b]
	}
	return crc
}

// Append16 appends the big-endian CRC-16 of data to dst and returns dst.
func Append16(dst, data []byte) []byte {
	c := Sum16(data)
	return append(dst, byte(c>>8), byte(c))
}

// Verify16 checks a buffer laid out as payload ‖ crc16(payload).
func Verify16(buf []byte) (payload []byte, ok bool) {
	if len(buf) < Size16 {
		return nil, false
	}
	payload = buf[:len(buf)-Size16]
	want := uint16(buf[len(buf)-2])<<8 | uint16(buf[len(buf)-1])
	return payload, Sum16(payload) == want
}

// Truncated returns the low `bits` bits of the CRC-32 of data. PP-ARQ sends
// a λ_C-bit checksum per good run (Eq. 4); λ_C need not be a full 32 bits
// when the run is short, and the cost model charges min(λ_g, λ_C) bits.
func Truncated(data []byte, bits int) uint32 {
	if bits <= 0 || bits > 32 {
		panic(fmt.Sprintf("crcutil: truncated checksum width %d out of (0,32]", bits))
	}
	return Sum32(data) & (^uint32(0) >> uint(32-bits))
}
