package recovery

import (
	"bytes"
	"testing"

	"ppr/internal/bitutil"
	"ppr/internal/core/feedback"
	"ppr/internal/core/softphy"
	"ppr/internal/phy"
	"ppr/internal/stats"
)

// mkDecisions builds clean decisions for the given symbols, then corrupts
// the value and hint of the listed indexes.
func mkDecisions(syms []byte, badIdx map[int]byte) []phy.Decision {
	ds := make([]phy.Decision, len(syms))
	for i, s := range syms {
		ds[i] = phy.Decision{Symbol: s, Hint: 0}
	}
	for i, wrong := range badIdx {
		ds[i] = phy.Decision{Symbol: wrong, Hint: 12}
	}
	return ds
}

func labeler() softphy.Labeler { return softphy.Threshold{Eta: softphy.DefaultEta} }

func TestInitLengthMismatch(t *testing.T) {
	a := New(10)
	if err := a.Init(0, make([]phy.Decision, 9), labeler()); err == nil {
		t.Error("accepted short reception")
	}
}

func TestCleanPacketCompletesAfterMarkAll(t *testing.T) {
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	syms := bitutil.NibblesFromBytes(payload)
	a := New(len(syms))
	if err := a.Init(0, mkDecisions(syms, nil), labeler()); err != nil {
		t.Fatal(err)
	}
	if a.Complete() {
		t.Error("complete before any verification")
	}
	a.MarkAllVerified()
	if !a.Complete() {
		t.Error("not complete after MarkAllVerified")
	}
	if !bytes.Equal(a.Payload(), payload) {
		t.Error("payload mismatch")
	}
}

func TestLabelsReflectSuspects(t *testing.T) {
	syms := make([]byte, 20)
	a := New(20)
	bad := map[int]byte{5: 1, 6: 2, 15: 3}
	if err := a.Init(2, mkDecisions(syms, bad)[2:], labeler()); err != nil {
		t.Fatal(err)
	}
	labels := a.Labels()
	for i, l := range labels {
		wantBad := i < 2 || bad[i] != 0
		if (l == softphy.Bad) != wantBad {
			t.Errorf("symbol %d label %v", i, l)
		}
	}
}

func TestBuildRequestChunksCoverSuspects(t *testing.T) {
	syms := make([]byte, 100)
	bad := map[int]byte{}
	for i := 40; i < 50; i++ {
		bad[i] = 0xf
	}
	a := New(100)
	if err := a.Init(0, mkDecisions(syms, bad), labeler()); err != nil {
		t.Fatal(err)
	}
	req := a.BuildRequest(3, 32)
	if req.CRCVerified {
		t.Fatal("request claims verified")
	}
	covered := map[int]bool{}
	for _, c := range req.Chunks {
		for i := c.StartSym; i < c.EndSym; i++ {
			covered[i] = true
		}
	}
	for i := range bad {
		if !covered[i] {
			t.Errorf("suspect symbol %d not requested", i)
		}
	}
	if len(req.SegChecksums) != len(feedback.Segments(100, req.Chunks)) {
		t.Error("checksum count mismatch")
	}
}

func TestPatchAndVerifyCompletes(t *testing.T) {
	truth := make([]byte, 60)
	rng := stats.NewRNG(1)
	for i := range truth {
		truth[i] = byte(rng.Intn(16))
	}
	// Receiver got symbols 20..30 wrong (labelled bad).
	rx := append([]byte(nil), truth...)
	bad := map[int]byte{}
	for i := 20; i < 30; i++ {
		bad[i] = (truth[i] + 1) % 16
	}
	a := New(60)
	if err := a.Init(0, mkDecisions(rx, bad), labeler()); err != nil {
		t.Fatal(err)
	}
	req := a.BuildRequest(1, 32)
	// Simulate the sender's response: patch chunks with truth, checksum the
	// segments.
	resp := feedback.Response{Seq: 1, NumSymbols: 60}
	for _, c := range req.Chunks {
		resp.Chunks = append(resp.Chunks, feedback.RespChunk{Start: c.StartSym, Syms: truth[c.StartSym:c.EndSym]})
	}
	for _, s := range feedback.Segments(60, req.Chunks) {
		w := feedback.ChecksumWidth(s.Len, 32)
		resp.SegChecksums = append(resp.SegChecksums, feedback.SymbolChecksum(truth[s.Start:s.End()], w))
	}
	failed, err := a.ApplyResponse(resp, 32)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Errorf("%d segments failed", failed)
	}
	if !a.Complete() {
		t.Error("not complete after full response")
	}
	if !bytes.Equal(a.Payload(), bitutil.BytesFromNibbles(truth)) {
		t.Error("assembled payload != truth")
	}
}

func TestMissCaughtBySegmentChecksum(t *testing.T) {
	truth := make([]byte, 40)
	for i := range truth {
		truth[i] = byte(i % 16)
	}
	// Symbol 10 is WRONG but carries a low hint — a SoftPHY miss.
	rx := append([]byte(nil), truth...)
	rx[10] = (truth[10] + 5) % 16
	a := New(40)
	if err := a.Init(0, mkDecisions(rx, nil), labeler()); err != nil {
		t.Fatal(err)
	}
	req := a.BuildRequest(1, 32)
	if len(req.Chunks) != 0 {
		t.Fatalf("no symbols labelled bad, but chunks requested: %+v", req.Chunks)
	}
	// Sender checksums the single all-packet segment against the truth; it
	// must NOT match the receiver's checksum, and the failed segment makes
	// every symbol suspect for the next round.
	segs := feedback.Segments(40, nil)
	if len(segs) != 1 {
		t.Fatal("expected one segment")
	}
	w := feedback.ChecksumWidth(segs[0].Len, 32)
	senderSum := feedback.SymbolChecksum(truth, w)
	if a.VerifySegment(segs[0], senderSum, 32) {
		t.Fatal("mismatching segment verified")
	}
	labels := a.Labels()
	badCount := 0
	for _, l := range labels {
		if l == softphy.Bad {
			badCount++
		}
	}
	if badCount != 40 {
		t.Errorf("%d symbols suspect after failed segment, want all 40", badCount)
	}
}

func TestVerifySegmentSuccessVerifies(t *testing.T) {
	truth := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	a := New(8)
	if err := a.Init(0, mkDecisions(truth, nil), labeler()); err != nil {
		t.Fatal(err)
	}
	seg := feedback.Segment{Start: 0, Len: 8}
	w := feedback.ChecksumWidth(8, 32)
	if !a.VerifySegment(seg, feedback.SymbolChecksum(truth, w), 32) {
		t.Fatal("matching segment rejected")
	}
	if !a.Complete() {
		t.Error("not complete after verifying the only segment")
	}
}

func TestPatchOutOfRange(t *testing.T) {
	a := New(10)
	if err := a.Patch(8, []byte{1, 2, 3}); err == nil {
		t.Error("accepted out-of-range patch")
	}
	if err := a.Patch(-1, []byte{1}); err == nil {
		t.Error("accepted negative patch")
	}
}

func TestApplyResponseChecksumCountMismatch(t *testing.T) {
	a := New(10)
	resp := feedback.Response{Seq: 0, NumSymbols: 10, SegChecksums: []uint32{1, 2, 3}}
	if _, err := a.ApplyResponse(resp, 32); err == nil {
		t.Error("accepted mismatched checksum count")
	}
}

func TestVerifiedCountProgression(t *testing.T) {
	a := New(10)
	if a.VerifiedCount() != 0 {
		t.Error("fresh assembler has verified symbols")
	}
	if err := a.Patch(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if a.VerifiedCount() != 3 {
		t.Errorf("VerifiedCount %d, want 3", a.VerifiedCount())
	}
}

func TestSymbolRange(t *testing.T) {
	a := New(4)
	if err := a.Patch(0, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if got := a.SymbolRange(1, 3); got[0] != 2 || got[1] != 3 {
		t.Errorf("SymbolRange got %v", got)
	}
	// Returned slice is a copy.
	got := a.SymbolRange(0, 4)
	got[0] = 9
	if a.SymbolRange(0, 1)[0] == 9 {
		t.Error("SymbolRange aliases internal state")
	}
}

func TestBuildRequestCappedCoalesces(t *testing.T) {
	// Ten suspect runs scattered across a 400-symbol packet: the optimal
	// plan wants one chunk per run, far over a small budget.
	syms := make([]byte, 400)
	bad := map[int]byte{}
	for run := 0; run < 10; run++ {
		for i := run * 40; i < run*40+3; i++ {
			bad[i] = 0xf
		}
	}
	a := New(400)
	if err := a.Init(0, mkDecisions(syms, bad), labeler()); err != nil {
		t.Fatal(err)
	}
	free := a.BuildRequest(7, 32)
	if len(free.Chunks) <= 4 {
		t.Fatalf("scenario too easy: optimal plan has only %d chunks", len(free.Chunks))
	}

	req, capped := a.BuildRequestCapped(7, 32, 4)
	if !capped {
		t.Fatal("capping reported as no-op")
	}
	if len(req.Chunks) > 4 {
		t.Fatalf("capped plan has %d chunks, budget 4", len(req.Chunks))
	}
	// Every suspect symbol must still be requested.
	covered := map[int]bool{}
	for _, c := range req.Chunks {
		if c.StartSym >= c.EndSym {
			t.Fatalf("degenerate chunk [%d,%d)", c.StartSym, c.EndSym)
		}
		for i := c.StartSym; i < c.EndSym; i++ {
			covered[i] = true
		}
	}
	for i := range bad {
		if !covered[i] {
			t.Errorf("suspect symbol %d dropped by capping", i)
		}
	}
	// Checksums must describe the capped plan's segments, not the free one's.
	segs := feedback.Segments(400, req.Chunks)
	if len(req.SegChecksums) != len(segs) {
		t.Fatalf("%d checksums for %d segments", len(req.SegChecksums), len(segs))
	}
	for i, s := range segs {
		if req.SegChecksums[i] != a.SegmentChecksum(s, 32) {
			t.Errorf("segment %d checksum stale after capping", i)
		}
	}
}

func TestBuildRequestCappedPassthrough(t *testing.T) {
	syms := make([]byte, 100)
	bad := map[int]byte{10: 1, 50: 2}
	a := New(100)
	if err := a.Init(0, mkDecisions(syms, bad), labeler()); err != nil {
		t.Fatal(err)
	}
	free := a.BuildRequest(1, 32)
	for _, max := range []int{0, -1, len(free.Chunks), 100} {
		req, capped := a.BuildRequestCapped(1, 32, max)
		if capped {
			t.Errorf("maxChunks=%d reported capping", max)
		}
		if len(req.Chunks) != len(free.Chunks) || len(req.SegChecksums) != len(free.SegChecksums) {
			t.Errorf("maxChunks=%d changed the plan", max)
		}
	}
}
