// Package recovery implements the receiver-side assembly of a partial
// packet across PP-ARQ rounds: tracking which symbols are known, which are
// suspect, and which have been verified (by a matching segment checksum or
// by arriving in a checksummed retransmission), and patching retransmitted
// runs into place until the whole packet is verified and deliverable.
package recovery

import (
	"fmt"

	"ppr/internal/bitutil"
	"ppr/internal/core/chunkdp"
	"ppr/internal/core/feedback"
	"ppr/internal/core/runlen"
	"ppr/internal/core/softphy"
	"ppr/internal/phy"
)

// Assembler accumulates one packet's payload symbols across rounds.
type Assembler struct {
	numSymbols int
	syms       []byte
	// suspect marks symbols the link layer currently believes are wrong:
	// labelled Bad on reception, or sitting in a good segment whose
	// checksum later failed. Suspect symbols go into the next request.
	suspect []bool
	// verified marks symbols proven correct: patched from a CRC-verified
	// retransmission, or covered by a matching segment checksum.
	verified []bool
}

// New returns an assembler for a packet of numSymbols symbols.
func New(numSymbols int) *Assembler {
	return &Assembler{
		numSymbols: numSymbols,
		syms:       make([]byte, numSymbols),
		suspect:    make([]bool, numSymbols),
		verified:   make([]bool, numSymbols),
	}
}

// NumSymbols returns the packet length in symbols.
func (a *Assembler) NumSymbols() int { return a.numSymbols }

// Init seeds the assembler from the first reception: decoded symbol
// decisions labelled by the SoftPHY rule, with missingPrefix undecoded
// symbols marked suspect.
func (a *Assembler) Init(missingPrefix int, ds []phy.Decision, labeler softphy.Labeler) error {
	if missingPrefix+len(ds) != a.numSymbols {
		return fmt.Errorf("recovery: reception has %d symbols, packet has %d",
			missingPrefix+len(ds), a.numSymbols)
	}
	labels := labeler.LabelAll(missingPrefix, ds)
	for i := 0; i < missingPrefix; i++ {
		a.suspect[i] = true
	}
	for i, d := range ds {
		a.syms[missingPrefix+i] = d.Symbol
		if labels[missingPrefix+i] == softphy.Bad {
			a.suspect[missingPrefix+i] = true
		}
	}
	return nil
}

// MarkAllVerified is the fast path when the packet CRC checked on first
// reception: everything is correct.
func (a *Assembler) MarkAllVerified() {
	for i := range a.verified {
		a.verified[i] = true
		a.suspect[i] = false
	}
}

// Labels returns the current per-symbol request labels: Bad for suspect
// unverified symbols, Good otherwise. This is what the next round's
// run-length representation and chunk DP consume.
func (a *Assembler) Labels() []softphy.Label {
	out := make([]softphy.Label, a.numSymbols)
	for i := range out {
		if a.suspect[i] && !a.verified[i] {
			out[i] = softphy.Bad
		}
	}
	return out
}

// Runs builds the run-length representation of the current labels, the
// input to chunkdp.Optimal.
func (a *Assembler) Runs() runlen.Runs {
	return runlen.FromLabels(a.Labels())
}

// SymbolRange returns a copy of the current symbol values in [start, end).
func (a *Assembler) SymbolRange(start, end int) []byte {
	if start < 0 || end > a.numSymbols || start > end {
		panic(fmt.Sprintf("recovery: SymbolRange [%d,%d) out of [0,%d)", start, end, a.numSymbols))
	}
	return append([]byte(nil), a.syms[start:end]...)
}

// SegmentChecksum computes the receiver's checksum for a good segment, as
// carried in the feedback request.
func (a *Assembler) SegmentChecksum(s feedback.Segment, lambdaC int) uint32 {
	return feedback.SymbolChecksum(a.syms[s.Start:s.End()], feedback.ChecksumWidth(s.Len, lambdaC))
}

// Patch installs a retransmitted chunk. The symbols arrive inside a
// CRC-verified control frame, so they are trusted: marked verified and no
// longer suspect.
func (a *Assembler) Patch(start int, syms []byte) error {
	if start < 0 || start+len(syms) > a.numSymbols {
		return fmt.Errorf("recovery: patch [%d,%d) out of [0,%d)", start, start+len(syms), a.numSymbols)
	}
	for i, s := range syms {
		a.syms[start+i] = s & 0x0f
		a.verified[start+i] = true
		a.suspect[start+i] = false
	}
	return nil
}

// VerifySegment checks a sender-supplied checksum for a segment. On a match
// the segment's symbols are verified; on a mismatch every unverified symbol
// in it becomes suspect (this is how SoftPHY misses are eventually caught
// and re-requested).
func (a *Assembler) VerifySegment(s feedback.Segment, sum uint32, lambdaC int) bool {
	if a.SegmentChecksum(s, lambdaC) == sum {
		for i := s.Start; i < s.End(); i++ {
			a.verified[i] = true
			a.suspect[i] = false
		}
		return true
	}
	for i := s.Start; i < s.End(); i++ {
		if !a.verified[i] {
			a.suspect[i] = true
		}
	}
	return false
}

// Complete reports whether every symbol is verified.
func (a *Assembler) Complete() bool {
	for _, v := range a.verified {
		if !v {
			return false
		}
	}
	return true
}

// VerifiedCount returns how many symbols are verified so far.
func (a *Assembler) VerifiedCount() int {
	n := 0
	for _, v := range a.verified {
		if v {
			n++
		}
	}
	return n
}

// Payload packs the assembled symbols back into payload bytes. Callers
// normally wait for Complete; packing earlier yields best-effort bytes.
func (a *Assembler) Payload() []byte {
	return bitutil.BytesFromNibbles(a.syms)
}

// BuildRequest assembles the complete feedback request for the current
// state: optimal chunking of suspect runs plus per-segment checksums, or a
// bare ACK when everything is verified.
func (a *Assembler) BuildRequest(seq uint16, lambdaC int) feedback.Request {
	if a.Complete() {
		return feedback.Request{Seq: seq, NumSymbols: a.numSymbols, CRCVerified: true}
	}
	plan := chunkdp.Optimal(a.Runs(), chunkdp.Params{
		SBits: a.numSymbols * 4, ChecksumBits: lambdaC, BitsPerSymbol: 4,
	})
	req := feedback.Request{Seq: seq, NumSymbols: a.numSymbols, Chunks: plan.Chunks}
	for _, s := range feedback.Segments(a.numSymbols, plan.Chunks) {
		req.SegChecksums = append(req.SegChecksums, a.SegmentChecksum(s, lambdaC))
	}
	return req
}

// BuildRequestCapped is BuildRequest under a chunk budget: when the optimal
// plan asks for more than maxChunks chunks, adjacent chunks are coalesced —
// smallest gap first, so the fewest good symbols get needlessly
// retransmitted — until the request fits. The capped request trades forward-
// link bytes for a shorter, more burst-survivable feedback frame, which is
// the trade a jammed reverse link wants. maxChunks <= 0 means uncapped. The
// second return reports whether capping changed the plan.
func (a *Assembler) BuildRequestCapped(seq uint16, lambdaC, maxChunks int) (feedback.Request, bool) {
	req := a.BuildRequest(seq, lambdaC)
	if maxChunks <= 0 || len(req.Chunks) <= maxChunks {
		return req, false
	}
	chunks := append([]chunkdp.Chunk(nil), req.Chunks...)
	for len(chunks) > maxChunks {
		best := 1
		bestGap := chunks[1].StartSym - chunks[0].EndSym
		for i := 2; i < len(chunks); i++ {
			if g := chunks[i].StartSym - chunks[i-1].EndSym; g < bestGap {
				best, bestGap = i, g
			}
		}
		chunks[best-1].EndSym = chunks[best].EndSym
		chunks = append(chunks[:best], chunks[best+1:]...)
	}
	req.Chunks = chunks
	req.SegChecksums = req.SegChecksums[:0]
	for _, s := range feedback.Segments(a.numSymbols, chunks) {
		req.SegChecksums = append(req.SegChecksums, a.SegmentChecksum(s, lambdaC))
	}
	return req, true
}

// ApplyResponse patches every retransmitted chunk and verifies every
// non-retransmitted segment from a decoded response. It returns the number
// of segments whose verification failed (symbols left for the next round).
func (a *Assembler) ApplyResponse(resp feedback.Response, lambdaC int) (failedSegments int, err error) {
	var asChunks []chunkdp.Chunk
	for _, c := range resp.Chunks {
		if err := a.Patch(c.Start, c.Syms); err != nil {
			return 0, err
		}
		asChunks = append(asChunks, chunkdp.Chunk{StartSym: c.Start, EndSym: c.End()})
	}
	segs := feedback.Segments(a.numSymbols, asChunks)
	if len(segs) != len(resp.SegChecksums) {
		return 0, fmt.Errorf("recovery: response carries %d checksums for %d segments",
			len(resp.SegChecksums), len(segs))
	}
	for i, s := range segs {
		if !a.VerifySegment(s, resp.SegChecksums[i], lambdaC) {
			failedSegments++
		}
	}
	return failedSegments, nil
}
