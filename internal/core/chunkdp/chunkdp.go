// Package chunkdp implements the receiver-side dynamic program of Sec. 5.1:
// given the run-length representation of a partially-correct packet, choose
// the set of "chunks" (groups of consecutive bad runs, possibly spanning the
// short good runs between them) whose retransmission minimises the expected
// feedback-plus-retransmission bit cost, per Eqs. 4 and 5:
//
//	C(c_ii) = log S + log λᵇᵢ + min(λᵍᵢ, λC)                     (4)
//	C(c_ij) = min( 2·log S + Σ_{l=i}^{j-1} λᵍ_l [+ min(λᵍⱼ, λC)],
//	               min_k C(c_ik) + C(c_k+1,j) )                   (5)
//
// One deliberate deviation from the paper's formulas: the merge branch of
// Eq. 5 as printed omits the trailing good run's checksum cost min(λᵍⱼ, λC)
// that Eq. 4 charges, which would make merged and split chunkings
// incommensurable; we charge it in both so every chunking's cost accounts
// for every gap exactly once.
//
// The table is memoized bottom-up over intervals of bad runs, the O(L³)
// implementation the paper describes. For pathologically fragmented packets
// (L beyond a few hundred bad runs) Optimal falls back to a linear greedy
// chunker that makes each merge decision locally; its cost is within the
// per-gap decision bound of optimal and it keeps worst-case packets cheap.
package chunkdp

import (
	"fmt"
	"math"

	"ppr/internal/core/runlen"
)

// Params fixes the cost model's constants.
type Params struct {
	// SBits is the packet size S in bits; offsets and lengths in feedback
	// cost ~log₂ S bits each.
	SBits int
	// ChecksumBits is λC, the per-good-run checksum length in bits.
	ChecksumBits int
	// BitsPerSymbol converts run lengths (in channel symbols) to bits;
	// 4 for the 802.15.4 code book.
	BitsPerSymbol int
}

// DefaultParams returns the cost model used by PP-ARQ: 32-bit run
// checksums over packets of the given symbol count.
func DefaultParams(numSymbols int) Params {
	return Params{SBits: numSymbols * 4, ChecksumBits: 32, BitsPerSymbol: 4}
}

// Chunk is one contiguous symbol range the receiver asks the sender to
// retransmit. It always starts and ends with bad runs (Sec. 5.1).
type Chunk struct {
	// FirstBad and LastBad are the inclusive indexes (into the packet's bad
	// runs) this chunk covers.
	FirstBad, LastBad int
	// StartSym and EndSym delimit the covered symbol range [StartSym,
	// EndSym): from the first symbol of bad run FirstBad through the last
	// symbol of bad run LastBad, including any good runs in between.
	StartSym, EndSym int
}

// Len returns the chunk's length in symbols.
func (c Chunk) Len() int { return c.EndSym - c.StartSym }

// Plan is the output of the optimizer: the chunks to request and the cost
// model's estimate of the total overhead in bits.
type Plan struct {
	// Chunks lists the retransmission requests in symbol order.
	Chunks []Chunk
	// CostBits is C(c_1L), the optimised objective value. Zero when the
	// packet has no bad runs.
	CostBits float64
}

// maxExactL bounds the interval DP; beyond it Optimal switches to the
// greedy chunker. 400 bad runs keeps the O(L³) table under ~10⁸ steps.
const maxExactL = 400

// log2 is the cost model's log; the paper writes log S for the bits needed
// to describe an offset. Zero-length values cost nothing to describe.
func log2(v int) float64 {
	if v <= 1 {
		return 0
	}
	return math.Log2(float64(v))
}

// gaps returns, for each bad run i, the length in symbols of the good run
// following it: the gap to the next bad run for interior runs, and the
// trailing good run (possibly zero) for the last.
func gaps(rs runlen.Runs, bad []runlen.Run) []int {
	g := make([]int, len(bad))
	for i := range bad {
		if i+1 < len(bad) {
			g[i] = bad[i+1].Start - bad[i].End()
		} else {
			g[i] = rs.NumSymbols - bad[i].End()
		}
	}
	return g
}

// Optimal computes the minimum-cost chunking for the labelled packet.
func Optimal(rs runlen.Runs, p Params) Plan {
	bad := rs.Bad()
	L := len(bad)
	if L == 0 {
		return Plan{}
	}
	if L > maxExactL {
		return Greedy(rs, p)
	}
	g := gaps(rs, bad)
	logS := log2(p.SBits)
	gapBits := func(i int) float64 { return float64(g[i] * p.BitsPerSymbol) }
	checksum := func(i int) float64 {
		return math.Min(gapBits(i), float64(p.ChecksumBits))
	}

	// cost[i][j] = C(c_i,j); split[i][j] = k for the best split, or -1 for
	// a merged (single) chunk.
	cost := make([][]float64, L)
	split := make([][]int, L)
	for i := range cost {
		cost[i] = make([]float64, L)
		split[i] = make([]int, L)
	}
	for i := 0; i < L; i++ {
		// Eq. 4: describe this bad run (offset + length) and checksum the
		// good run after it.
		cost[i][i] = logS + log2(bad[i].Len*p.BitsPerSymbol) + checksum(i)
		split[i][i] = -1
	}
	for span := 2; span <= L; span++ {
		for i := 0; i+span-1 < L; i++ {
			j := i + span - 1
			// Merge branch of Eq. 5: one chunk covering bad runs i..j pays
			// offset+length descriptions (2 log S), resends the interior
			// good runs, and checksums the trailing good run.
			merged := 2*logS + checksum(j)
			for l := i; l < j; l++ {
				merged += gapBits(l)
			}
			best, bestK := merged, -1
			for k := i; k < j; k++ {
				if c := cost[i][k] + cost[k+1][j]; c < best {
					best, bestK = c, k
				}
			}
			cost[i][j] = best
			split[i][j] = bestK
		}
	}

	plan := Plan{CostBits: cost[0][L-1]}
	var build func(i, j int)
	build = func(i, j int) {
		if k := split[i][j]; k >= 0 {
			build(i, k)
			build(k+1, j)
			return
		}
		plan.Chunks = append(plan.Chunks, Chunk{
			FirstBad: i, LastBad: j,
			StartSym: bad[i].Start, EndSym: bad[j].End(),
		})
	}
	build(0, L-1)
	return plan
}

// Greedy is the linear-time approximate chunker used for extremely
// fragmented packets: it walks the gaps left to right and merges bad run
// i+1 into the current chunk whenever resending the gap's good symbols
// (net of the checksum they'd otherwise need) costs less than describing a
// fresh chunk. Exported for the ablation benchmarks.
func Greedy(rs runlen.Runs, p Params) Plan {
	bad := rs.Bad()
	L := len(bad)
	if L == 0 {
		return Plan{}
	}
	g := gaps(rs, bad)
	logS := log2(p.SBits)
	var plan Plan
	cur := Chunk{FirstBad: 0, LastBad: 0, StartSym: bad[0].Start, EndSym: bad[0].End()}
	for i := 1; i < L; i++ {
		gapBits := float64(g[i-1] * p.BitsPerSymbol)
		gapChecksum := math.Min(gapBits, float64(p.ChecksumBits))
		mergeCost := gapBits
		splitCost := gapChecksum + logS + log2(bad[i].Len*p.BitsPerSymbol)
		if mergeCost <= splitCost {
			cur.LastBad = i
			cur.EndSym = bad[i].End()
		} else {
			plan.Chunks = append(plan.Chunks, cur)
			cur = Chunk{FirstBad: i, LastBad: i, StartSym: bad[i].Start, EndSym: bad[i].End()}
		}
	}
	plan.Chunks = append(plan.Chunks, cur)
	// Evaluate the finished chunking under the same Eq. 4/5 model the DP
	// optimises, so greedy and optimal costs are directly comparable (the
	// local merge heuristic above is only a decision rule, not a cost).
	plan.CostBits = CostOf(plan.Chunks, rs, p)
	return plan
}

// NaivePerRun is the baseline feedback strategy the paper argues against
// (Sec. 5, "the naive way"): one chunk per bad run regardless of gap
// lengths. Exported for the ablation benchmarks.
func NaivePerRun(rs runlen.Runs, p Params) Plan {
	bad := rs.Bad()
	if len(bad) == 0 {
		return Plan{}
	}
	g := gaps(rs, bad)
	logS := log2(p.SBits)
	var plan Plan
	for i, b := range bad {
		plan.Chunks = append(plan.Chunks, Chunk{
			FirstBad: i, LastBad: i, StartSym: b.Start, EndSym: b.End(),
		})
		plan.CostBits += logS + log2(b.Len*p.BitsPerSymbol) +
			math.Min(float64(g[i]*p.BitsPerSymbol), float64(p.ChecksumBits))
	}
	return plan
}

// SingleSpan is the other degenerate strategy: one chunk from the first bad
// symbol to the last, resending everything in between. Exported for the
// ablation benchmarks.
func SingleSpan(rs runlen.Runs, p Params) Plan {
	bad := rs.Bad()
	L := len(bad)
	if L == 0 {
		return Plan{}
	}
	g := gaps(rs, bad)
	logS := log2(p.SBits)
	plan := Plan{Chunks: []Chunk{{
		FirstBad: 0, LastBad: L - 1,
		StartSym: bad[0].Start, EndSym: bad[L-1].End(),
	}}}
	plan.CostBits = 2 * logS
	for l := 0; l < L-1; l++ {
		plan.CostBits += float64(g[l] * p.BitsPerSymbol)
	}
	plan.CostBits += math.Min(float64(g[L-1]*p.BitsPerSymbol), float64(p.ChecksumBits))
	return plan
}

// Validate checks a plan's structural invariants against the runs it was
// computed from: chunks are disjoint, ordered, start and end on bad runs,
// and together cover every bad symbol.
func Validate(plan Plan, rs runlen.Runs) error {
	bad := rs.Bad()
	covered := 0
	prevEnd := -1
	prevLastBad := -1
	for ci, c := range plan.Chunks {
		if c.StartSym <= prevEnd {
			return fmt.Errorf("chunkdp: chunk %d overlaps or disorders previous", ci)
		}
		if c.FirstBad != prevLastBad+1 {
			return fmt.Errorf("chunkdp: chunk %d skips bad runs (first=%d, prev last=%d)", ci, c.FirstBad, prevLastBad)
		}
		if c.FirstBad > c.LastBad || c.LastBad >= len(bad) {
			return fmt.Errorf("chunkdp: chunk %d has invalid bad range [%d,%d]", ci, c.FirstBad, c.LastBad)
		}
		if bad[c.FirstBad].Start != c.StartSym || bad[c.LastBad].End() != c.EndSym {
			return fmt.Errorf("chunkdp: chunk %d does not start/end on bad runs", ci)
		}
		for b := c.FirstBad; b <= c.LastBad; b++ {
			covered += bad[b].Len
		}
		prevEnd = c.EndSym - 1
		prevLastBad = c.LastBad
	}
	if prevLastBad != len(bad)-1 {
		return fmt.Errorf("chunkdp: plan covers bad runs through %d of %d", prevLastBad, len(bad)-1)
	}
	total := 0
	for _, b := range bad {
		total += b.Len
	}
	if covered != total {
		return fmt.Errorf("chunkdp: plan covers %d bad symbols of %d", covered, total)
	}
	return nil
}

// CostOf evaluates the Eq. 4/5 cost model on an arbitrary chunking — the
// reference the exhaustive test oracle and ablations share. Chunks must be
// a valid partition of the bad runs into consecutive groups.
func CostOf(chunks []Chunk, rs runlen.Runs, p Params) float64 {
	bad := rs.Bad()
	g := gaps(rs, bad)
	logS := log2(p.SBits)
	var cost float64
	for _, c := range chunks {
		if c.FirstBad == c.LastBad {
			cost += logS + log2(bad[c.FirstBad].Len*p.BitsPerSymbol)
		} else {
			cost += 2 * logS
			for l := c.FirstBad; l < c.LastBad; l++ {
				cost += float64(g[l] * p.BitsPerSymbol)
			}
		}
		cost += math.Min(float64(g[c.LastBad]*p.BitsPerSymbol), float64(p.ChecksumBits))
	}
	return cost
}
