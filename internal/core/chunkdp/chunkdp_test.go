package chunkdp

import (
	"math"
	"testing"

	"ppr/internal/core/runlen"
	"ppr/internal/core/softphy"
	"ppr/internal/stats"
)

// runsFromPattern builds Runs from a compact string: 'b' = bad symbol,
// 'g' = good symbol.
func runsFromPattern(pattern string) runlen.Runs {
	labels := make([]softphy.Label, len(pattern))
	for i, c := range pattern {
		if c == 'b' {
			labels[i] = softphy.Bad
		}
	}
	return runlen.FromLabels(labels)
}

// bruteForce enumerates every partition of the bad runs into consecutive
// groups and returns the cheapest under the Eq. 4/5 cost model.
func bruteForce(rs runlen.Runs, p Params) Plan {
	bad := rs.Bad()
	L := len(bad)
	if L == 0 {
		return Plan{}
	}
	best := Plan{CostBits: math.Inf(1)}
	// Each of the L-1 boundaries is split or merged: 2^(L-1) chunkings.
	for mask := 0; mask < 1<<(L-1); mask++ {
		var chunks []Chunk
		first := 0
		for i := 0; i < L; i++ {
			if i == L-1 || mask&(1<<i) != 0 {
				chunks = append(chunks, Chunk{
					FirstBad: first, LastBad: i,
					StartSym: bad[first].Start, EndSym: bad[i].End(),
				})
				first = i + 1
			}
		}
		if c := CostOf(chunks, rs, p); c < best.CostBits {
			best = Plan{Chunks: chunks, CostBits: c}
		}
	}
	return best
}

func TestOptimalEmptyPacket(t *testing.T) {
	plan := Optimal(runsFromPattern("gggggggg"), DefaultParams(8))
	if len(plan.Chunks) != 0 || plan.CostBits != 0 {
		t.Errorf("all-good packet gave %+v", plan)
	}
}

func TestOptimalSingleBadRun(t *testing.T) {
	rs := runsFromPattern("ggggbbbbgggg")
	p := DefaultParams(12)
	plan := Optimal(rs, p)
	if len(plan.Chunks) != 1 {
		t.Fatalf("chunks: %+v", plan.Chunks)
	}
	c := plan.Chunks[0]
	if c.StartSym != 4 || c.EndSym != 8 {
		t.Errorf("chunk range [%d,%d), want [4,8)", c.StartSym, c.EndSym)
	}
	if err := Validate(plan, rs); err != nil {
		t.Error(err)
	}
}

func TestOptimalMergesShortGaps(t *testing.T) {
	// Two bad runs separated by a single good symbol: describing a second
	// chunk costs ~2·log2(S) ≈ 22 bits for S=1500·8, while resending the
	// gap costs 4 bits. Must merge.
	pattern := "bbbb" + "g" + "bbbb"
	for i := len(pattern); i < 300; i++ {
		pattern += "g"
	}
	rs := runsFromPattern(pattern)
	plan := Optimal(rs, DefaultParams(rs.NumSymbols))
	if len(plan.Chunks) != 1 {
		t.Fatalf("expected merge into 1 chunk, got %+v", plan.Chunks)
	}
	if plan.Chunks[0].StartSym != 0 || plan.Chunks[0].EndSym != 9 {
		t.Errorf("merged chunk [%d,%d)", plan.Chunks[0].StartSym, plan.Chunks[0].EndSym)
	}
}

func TestOptimalSplitsLongGaps(t *testing.T) {
	// Two bad runs separated by 200 good symbols (800 bits): resending the
	// gap is far costlier than a second chunk description. Must split.
	pattern := "bb"
	for i := 0; i < 200; i++ {
		pattern += "g"
	}
	pattern += "bb"
	rs := runsFromPattern(pattern)
	plan := Optimal(rs, DefaultParams(rs.NumSymbols))
	if len(plan.Chunks) != 2 {
		t.Fatalf("expected split into 2 chunks, got %+v", plan.Chunks)
	}
}

func TestOptimalMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(7)
	for trial := 0; trial < 300; trial++ {
		// Random packets with up to 10 bad runs.
		n := 40 + rng.Intn(200)
		labels := make([]softphy.Label, n)
		pBad := 0.05 + 0.3*rng.Float64()
		for i := range labels {
			if rng.Bool(pBad) {
				labels[i] = softphy.Bad
			}
		}
		rs := runlen.FromLabels(labels)
		if len(rs.Bad()) > 12 {
			continue // keep brute force tractable
		}
		p := DefaultParams(n)
		opt := Optimal(rs, p)
		bf := bruteForce(rs, p)
		if math.Abs(opt.CostBits-bf.CostBits) > 1e-9 {
			t.Fatalf("trial %d: DP cost %v != brute force %v\nruns: %+v",
				trial, opt.CostBits, bf.CostBits, rs.All)
		}
		if err := Validate(opt, rs); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The DP's reconstructed chunking must evaluate to its claimed cost.
		if c := CostOf(opt.Chunks, rs, p); math.Abs(c-opt.CostBits) > 1e-9 {
			t.Fatalf("trial %d: plan cost %v but CostOf %v", trial, opt.CostBits, c)
		}
	}
}

func TestOptimalNeverWorseThanDegenerateStrategies(t *testing.T) {
	rng := stats.NewRNG(8)
	for trial := 0; trial < 200; trial++ {
		n := 100 + rng.Intn(400)
		labels := make([]softphy.Label, n)
		for i := range labels {
			if rng.Bool(0.15) {
				labels[i] = softphy.Bad
			}
		}
		rs := runlen.FromLabels(labels)
		p := DefaultParams(n)
		opt := Optimal(rs, p)
		if naive := NaivePerRun(rs, p); opt.CostBits > naive.CostBits+1e-9 {
			t.Fatalf("optimal %v worse than naive %v", opt.CostBits, naive.CostBits)
		}
		if span := SingleSpan(rs, p); opt.CostBits > span.CostBits+1e-9 {
			t.Fatalf("optimal %v worse than single span %v", opt.CostBits, span.CostBits)
		}
		if greedy := Greedy(rs, p); opt.CostBits > greedy.CostBits+1e-9 {
			t.Fatalf("optimal %v worse than greedy %v", opt.CostBits, greedy.CostBits)
		}
	}
}

func TestGreedyValidPlans(t *testing.T) {
	rng := stats.NewRNG(9)
	for trial := 0; trial < 100; trial++ {
		n := 100 + rng.Intn(1000)
		labels := make([]softphy.Label, n)
		for i := range labels {
			if rng.Bool(0.4) {
				labels[i] = softphy.Bad
			}
		}
		rs := runlen.FromLabels(labels)
		if err := Validate(Greedy(rs, DefaultParams(n)), rs); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOptimalFallsBackForHugeL(t *testing.T) {
	// Alternating b/g makes L = n/2; above maxExactL the greedy path runs.
	n := 2 * (maxExactL + 50)
	labels := make([]softphy.Label, n)
	for i := range labels {
		if i%2 == 0 {
			labels[i] = softphy.Bad
		}
	}
	rs := runlen.FromLabels(labels)
	plan := Optimal(rs, DefaultParams(n))
	if err := Validate(plan, rs); err != nil {
		t.Fatal(err)
	}
	// With single-symbol gaps everywhere, everything should merge into one
	// chunk under any sensible cost model.
	if len(plan.Chunks) != 1 {
		t.Errorf("expected full merge, got %d chunks", len(plan.Chunks))
	}
}

func TestNaiveAndSpanStructure(t *testing.T) {
	rs := runsFromPattern("bbgggbbgggbb")
	p := DefaultParams(12)
	naive := NaivePerRun(rs, p)
	if len(naive.Chunks) != 3 {
		t.Errorf("naive chunks %d, want 3", len(naive.Chunks))
	}
	span := SingleSpan(rs, p)
	if len(span.Chunks) != 1 || span.Chunks[0].StartSym != 0 || span.Chunks[0].EndSym != 12 {
		t.Errorf("span chunks %+v", span.Chunks)
	}
	if err := Validate(naive, rs); err != nil {
		t.Error(err)
	}
	if err := Validate(span, rs); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBrokenPlans(t *testing.T) {
	rs := runsFromPattern("bbgggbb")
	p := DefaultParams(7)
	plan := Optimal(rs, p)
	// Drop a chunk.
	if len(plan.Chunks) == 2 {
		broken := Plan{Chunks: plan.Chunks[:1]}
		if Validate(broken, rs) == nil {
			t.Error("accepted plan missing bad runs")
		}
	}
	// Distort a boundary.
	broken := Plan{Chunks: append([]Chunk(nil), plan.Chunks...)}
	broken.Chunks[0].StartSym++
	if Validate(broken, rs) == nil {
		t.Error("accepted chunk not starting on a bad run")
	}
}

func TestChunkLen(t *testing.T) {
	c := Chunk{StartSym: 10, EndSym: 25}
	if c.Len() != 15 {
		t.Errorf("Len %d", c.Len())
	}
}

func TestCostModelScaling(t *testing.T) {
	// Bigger checksums make splitting less attractive at the margin; the
	// optimal cost is monotone non-decreasing in ChecksumBits.
	rs := runsFromPattern("bbggggggggggbbggggggggggbb")
	prev := 0.0
	for _, cb := range []int{4, 8, 16, 32} {
		p := Params{SBits: rs.NumSymbols * 4, ChecksumBits: cb, BitsPerSymbol: 4}
		cost := Optimal(rs, p).CostBits
		if cost < prev-1e-9 {
			t.Fatalf("cost decreased (%v -> %v) as checksum grew to %d", prev, cost, cb)
		}
		prev = cost
	}
}
