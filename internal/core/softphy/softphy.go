// Package softphy implements the link-layer side of the SoftPHY interface
// (Sec. 3): interpreting per-symbol PHY hints with a threshold rule to label
// groups of bits "good" or "bad", and adapting that threshold from observed
// outcomes so that higher layers never depend on the semantics of any
// particular PHY's hint (the abstraction argument of Sec. 3.3).
package softphy

import (
	"fmt"

	"ppr/internal/phy"
)

// Label is the link layer's verdict on one symbol.
type Label uint8

const (
	// Good marks a symbol whose hint cleared the threshold (d ≤ η).
	Good Label = iota
	// Bad marks a symbol the link layer believes is in error (d > η).
	Bad
)

// String implements fmt.Stringer.
func (l Label) String() string {
	if l == Good {
		return "good"
	}
	return "bad"
}

// DefaultEta is the paper's operating threshold for the Hamming-distance
// hint: codewords with d ≤ 6 are labelled good (Sec. 7.2: "Here we choose
// η = 6").
const DefaultEta = 6.0

// Threshold is the static threshold rule of Sec. 3.2: hint ≤ Eta ⇒ Good.
type Threshold struct {
	// Eta is the hint cutoff; symbols with hints strictly above it are
	// labelled Bad.
	Eta float64
}

// Label applies the rule to a single hint.
func (t Threshold) Label(hint float64) Label {
	if hint <= t.Eta {
		return Good
	}
	return Bad
}

// LabelAll labels a decision stream, with missingPrefix symbols that were
// never decoded (postamble rollback horizon) prepended as Bad — the link
// layer knows nothing about them, so it must request them.
func (t Threshold) LabelAll(missingPrefix int, ds []phy.Decision) []Label {
	out := make([]Label, missingPrefix+len(ds))
	for i := 0; i < missingPrefix; i++ {
		out[i] = Bad
	}
	for i, d := range ds {
		out[missingPrefix+i] = t.Label(d.Hint)
	}
	return out
}

// Adaptive learns the threshold online, the mechanism Sec. 3.3 sketches:
// the link layer observes, for symbols whose correctness it later verifies
// (via PP-ARQ's per-run CRCs), the joint distribution of hint value and
// correctness, and picks the η minimising the expected cost of labelling
// errors. Only the PHY's monotonicity contract is assumed; nothing about
// the hint's absolute scale.
type Adaptive struct {
	// MissCost weighs delivering a wrong symbol as good (a "miss", which
	// forces an extra recovery round); FalseAlarmCost weighs retransmitting
	// a correct symbol (one wasted codeword, Sec. 7.4.2 notes this is
	// cheap). MissCost should therefore exceed FalseAlarmCost.
	MissCost, FalseAlarmCost float64
	// buckets quantise the hint axis; bucket i counts hints in [i, i+1).
	correct   []uint64
	incorrect []uint64
	// cached threshold, recomputed lazily after observations change it.
	eta   float64
	dirty bool
}

// maxBucket bounds the quantised hint axis; hints beyond it clamp into the
// last bucket. 64 covers every decoder in this codebase (HDD ≤ 32, MF ≤ 64).
const maxBucket = 64

// NewAdaptive returns an adaptive thresholder with the given error costs
// and an initial threshold, used until enough observations accumulate.
func NewAdaptive(missCost, faCost, initialEta float64) *Adaptive {
	if missCost <= 0 || faCost <= 0 {
		panic(fmt.Sprintf("softphy: non-positive costs %v, %v", missCost, faCost))
	}
	return &Adaptive{
		MissCost:       missCost,
		FalseAlarmCost: faCost,
		correct:        make([]uint64, maxBucket+1),
		incorrect:      make([]uint64, maxBucket+1),
		eta:            initialEta,
	}
}

// Observe records one verified outcome: a symbol carried the given hint and
// was ultimately correct or not.
func (a *Adaptive) Observe(hint float64, wasCorrect bool) {
	b := int(hint)
	if b < 0 {
		b = 0
	}
	if b > maxBucket {
		b = maxBucket
	}
	if wasCorrect {
		a.correct[b]++
	} else {
		a.incorrect[b]++
	}
	a.dirty = true
}

// minObservations gates adaptation: below this total the initial η stands.
const minObservations = 200

// Eta returns the current threshold, recomputing it if new observations
// arrived. The optimal η minimises
//
//	MissCost · #[incorrect with hint ≤ η] + FalseAlarmCost · #[correct with hint > η]
//
// over bucket boundaries, which is exactly the empirical expected labelling
// cost under the two error modes.
func (a *Adaptive) Eta() float64 {
	if !a.dirty {
		return a.eta
	}
	a.dirty = false
	var totalC, totalI uint64
	for i := 0; i <= maxBucket; i++ {
		totalC += a.correct[i]
		totalI += a.incorrect[i]
	}
	if totalC+totalI < minObservations {
		return a.eta
	}
	bestEta, bestCost := a.eta, 0.0
	first := true
	var cumI, cumC uint64
	// η = -1 (label everything bad) is the degenerate left end; then each
	// bucket boundary.
	for b := -1; b <= maxBucket; b++ {
		if b >= 0 {
			cumI += a.incorrect[b]
			cumC += a.correct[b]
		}
		misses := cumI               // incorrect labelled good
		falseAlarms := totalC - cumC // correct labelled bad
		cost := a.MissCost*float64(misses) + a.FalseAlarmCost*float64(falseAlarms)
		if first || cost < bestCost {
			first = false
			bestCost = cost
			bestEta = float64(b)
		}
	}
	a.eta = bestEta
	return a.eta
}

// Label applies the current adaptive threshold.
func (a *Adaptive) Label(hint float64) Label {
	return Threshold{Eta: a.Eta()}.Label(hint)
}

// LabelAll labels a decision stream under the current adaptive threshold.
func (a *Adaptive) LabelAll(missingPrefix int, ds []phy.Decision) []Label {
	return Threshold{Eta: a.Eta()}.LabelAll(missingPrefix, ds)
}

// Labeler is the interface PP-ARQ consumes: anything that can label a
// decision stream. Both Threshold and *Adaptive satisfy it.
type Labeler interface {
	// LabelAll labels missingPrefix undecoded symbols plus the decoded
	// decisions, in order.
	LabelAll(missingPrefix int, ds []phy.Decision) []Label
}

var (
	_ Labeler = Threshold{}
	_ Labeler = (*Adaptive)(nil)
)

// MissRate returns, from the adaptive observer's history, the fraction of
// incorrect symbols that a threshold eta would mislabel good — the "miss
// rate at threshold η" of Sec. 7.4.1. Returns 0 when nothing was observed.
func (a *Adaptive) MissRate(eta float64) float64 {
	var miss, total uint64
	for b := 0; b <= maxBucket; b++ {
		total += a.incorrect[b]
		if float64(b) <= eta {
			miss += a.incorrect[b]
		}
	}
	if total == 0 {
		return 0
	}
	return float64(miss) / float64(total)
}

// FalseAlarmRate returns the fraction of correct symbols that threshold eta
// would mislabel bad — the false alarm rate of Sec. 7.4.2.
func (a *Adaptive) FalseAlarmRate(eta float64) float64 {
	var fa, total uint64
	for b := 0; b <= maxBucket; b++ {
		total += a.correct[b]
		if float64(b) > eta {
			fa += a.correct[b]
		}
	}
	if total == 0 {
		return 0
	}
	return float64(fa) / float64(total)
}
