package softphy

import (
	"testing"

	"ppr/internal/phy"
	"ppr/internal/stats"
)

func TestThresholdRule(t *testing.T) {
	th := Threshold{Eta: 6}
	cases := []struct {
		hint float64
		want Label
	}{
		{0, Good}, {6, Good}, {6.0001, Bad}, {32, Bad},
	}
	for _, c := range cases {
		if got := th.Label(c.hint); got != c.want {
			t.Errorf("Label(%v) = %v, want %v", c.hint, got, c.want)
		}
	}
}

func TestLabelAllMissingPrefixIsBad(t *testing.T) {
	th := Threshold{Eta: 6}
	ds := []phy.Decision{{Symbol: 1, Hint: 0}, {Symbol: 2, Hint: 9}}
	labels := th.LabelAll(3, ds)
	if len(labels) != 5 {
		t.Fatalf("got %d labels", len(labels))
	}
	for i := 0; i < 3; i++ {
		if labels[i] != Bad {
			t.Errorf("missing symbol %d labelled %v", i, labels[i])
		}
	}
	if labels[3] != Good || labels[4] != Bad {
		t.Errorf("decoded labels wrong: %v", labels[3:])
	}
}

func TestLabelString(t *testing.T) {
	if Good.String() != "good" || Bad.String() != "bad" {
		t.Error("label strings")
	}
}

func TestAdaptiveStartsAtInitialEta(t *testing.T) {
	a := NewAdaptive(10, 1, 6)
	if a.Eta() != 6 {
		t.Errorf("initial eta %v", a.Eta())
	}
	// A handful of observations must not move it yet.
	for i := 0; i < 50; i++ {
		a.Observe(0, true)
	}
	if a.Eta() != 6 {
		t.Errorf("eta moved after too few observations: %v", a.Eta())
	}
}

func TestAdaptiveLearnsSeparatedDistributions(t *testing.T) {
	// Correct symbols have hints 0-2; incorrect have hints 10-20. Any
	// learned threshold must fall in [2, 10).
	a := NewAdaptive(10, 1, 0)
	rng := stats.NewRNG(1)
	for i := 0; i < 5000; i++ {
		a.Observe(float64(rng.Intn(3)), true)
		a.Observe(float64(10+rng.Intn(11)), false)
	}
	eta := a.Eta()
	if eta < 2 || eta >= 10 {
		t.Errorf("learned eta %v outside separating band [2,10)", eta)
	}
	if a.MissRate(eta) != 0 {
		t.Errorf("miss rate %v at separating threshold", a.MissRate(eta))
	}
	if a.FalseAlarmRate(eta) != 0 {
		t.Errorf("false alarm rate %v at separating threshold", a.FalseAlarmRate(eta))
	}
}

func TestAdaptiveCostAsymmetry(t *testing.T) {
	// Overlapping distributions: correct ~ hints 0..8, incorrect ~ 4..12.
	// With misses costed heavily, the threshold should sit lower than with
	// false alarms costed heavily.
	observe := func(a *Adaptive) {
		rng := stats.NewRNG(2)
		for i := 0; i < 20000; i++ {
			a.Observe(float64(rng.Intn(9)), true)
			a.Observe(float64(4+rng.Intn(9)), false)
		}
	}
	missHeavy := NewAdaptive(50, 1, 6)
	faHeavy := NewAdaptive(1, 50, 6)
	observe(missHeavy)
	observe(faHeavy)
	if !(missHeavy.Eta() < faHeavy.Eta()) {
		t.Errorf("miss-heavy eta %v not below fa-heavy eta %v", missHeavy.Eta(), faHeavy.Eta())
	}
}

func TestAdaptiveScaleInvariance(t *testing.T) {
	// The same data on a 2× hint scale (the matched-filter decoder's scale)
	// must yield a ~2× threshold: only ordering matters, per the
	// monotonicity contract.
	a1 := NewAdaptive(10, 1, 0)
	a2 := NewAdaptive(10, 1, 0)
	rng := stats.NewRNG(3)
	for i := 0; i < 5000; i++ {
		h := float64(rng.Intn(4))
		a1.Observe(h, true)
		a2.Observe(2*h, true)
		h = float64(8 + rng.Intn(8))
		a1.Observe(h, false)
		a2.Observe(2*h, false)
	}
	e1, e2 := a1.Eta(), a2.Eta()
	if e2 < 2*e1-1 || e2 > 2*e1+2 {
		t.Errorf("scaled eta %v not ~2x base eta %v", e2, e1)
	}
}

func TestMissAndFalseAlarmRatesMonotone(t *testing.T) {
	a := NewAdaptive(10, 1, 6)
	rng := stats.NewRNG(4)
	for i := 0; i < 3000; i++ {
		a.Observe(float64(rng.Intn(5)), true)
		a.Observe(float64(rng.Intn(20)), false)
	}
	prevMiss, prevFA := -1.0, 2.0
	for eta := 0.0; eta <= 20; eta++ {
		miss, fa := a.MissRate(eta), a.FalseAlarmRate(eta)
		if miss < prevMiss {
			t.Fatalf("miss rate decreased as eta grew at %v", eta)
		}
		if fa > prevFA {
			t.Fatalf("false alarm rate increased as eta grew at %v", eta)
		}
		prevMiss, prevFA = miss, fa
	}
}

func TestRatesEmptyObserver(t *testing.T) {
	a := NewAdaptive(1, 1, 6)
	if a.MissRate(6) != 0 || a.FalseAlarmRate(6) != 0 {
		t.Error("rates should be 0 with no observations")
	}
}

func TestNewAdaptivePanicsOnBadCosts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAdaptive(0, 1, 6)
}

func TestAdaptiveLabelUsesCurrentEta(t *testing.T) {
	a := NewAdaptive(10, 1, 5)
	if a.Label(5) != Good || a.Label(5.5) != Bad {
		t.Error("adaptive label at initial threshold")
	}
}

func TestAdaptiveHintClamping(t *testing.T) {
	a := NewAdaptive(10, 1, 6)
	// Out-of-range hints must not panic and must count.
	a.Observe(-3, true)
	a.Observe(1e9, false)
	if a.MissRate(1e9) != 1 {
		t.Error("clamped incorrect observation lost")
	}
}
