// Package combine implements PHY-independent multi-receiver combining, the
// application sketched in the paper's related-work discussion (Sec. 8.4):
// "with PPR, we may be able to obtain the simpler design and
// PHY-independence of the block-based combining of [MRD], while also
// achieving the performance gains of using PHY information."
//
// Several receivers (e.g. the testbed's four sinks) each capture a partial,
// hint-annotated view of the same transmission. Because SoftPHY hints obey
// the monotonicity contract, the combiner needs no PHY knowledge at all:
// for every symbol it simply keeps the decision carried by the smallest
// hint across receivers. Symbols nobody decoded stay unknown and surface
// with an infinite hint so downstream labelling marks them Bad.
package combine

import (
	"math"

	"ppr/internal/phy"
)

// View is one receiver's partial view of a packet.
type View struct {
	// MissingPrefix counts leading symbols this receiver never decoded
	// (postamble rollback horizon).
	MissingPrefix int
	// Decisions are the decoded symbols with hints, after the prefix.
	Decisions []phy.Decision
}

// covers reports whether the view decoded symbol index i, and returns the
// decision.
func (v View) at(i int) (phy.Decision, bool) {
	j := i - v.MissingPrefix
	if j < 0 || j >= len(v.Decisions) {
		return phy.Decision{}, false
	}
	return v.Decisions[j], true
}

// Combine merges the views of one packet of numSymbols symbols by minimum
// hint. The result always has numSymbols entries; positions no view
// decoded carry Hint = +Inf.
func Combine(numSymbols int, views []View) []phy.Decision {
	out := make([]phy.Decision, numSymbols)
	for i := range out {
		out[i] = phy.Decision{Hint: math.Inf(1)}
		for _, v := range views {
			if d, ok := v.at(i); ok && d.Hint < out[i].Hint {
				out[i] = d
			}
		}
	}
	return out
}

// Coverage returns how many of numSymbols symbols at least one view
// decoded.
func Coverage(numSymbols int, views []View) int {
	n := 0
	for i := 0; i < numSymbols; i++ {
		for _, v := range views {
			if _, ok := v.at(i); ok {
				n++
				break
			}
		}
	}
	return n
}

// BestSingle returns the index of the view with the most decoded symbols —
// the non-combining baseline (each packet served by its best receiver).
// It returns -1 for no views.
func BestSingle(views []View) int {
	best, bestN := -1, -1
	for i, v := range views {
		if n := len(v.Decisions); n > bestN {
			best, bestN = i, n
		}
	}
	return best
}
