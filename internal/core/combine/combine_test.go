package combine

import (
	"math"
	"testing"

	"ppr/internal/phy"
	"ppr/internal/stats"
)

func d(sym byte, hint float64) phy.Decision { return phy.Decision{Symbol: sym, Hint: hint} }

func TestCombineMinHintWins(t *testing.T) {
	// Receiver A confident on symbol 0, receiver B on symbol 1.
	views := []View{
		{Decisions: []phy.Decision{d(3, 0), d(9, 12)}},
		{Decisions: []phy.Decision{d(7, 10), d(5, 1)}},
	}
	got := Combine(2, views)
	if got[0].Symbol != 3 || got[0].Hint != 0 {
		t.Errorf("symbol 0: %+v", got[0])
	}
	if got[1].Symbol != 5 || got[1].Hint != 1 {
		t.Errorf("symbol 1: %+v", got[1])
	}
}

func TestCombineMissingPrefix(t *testing.T) {
	// A missed the first 2 symbols (postamble rollback); B covers them.
	views := []View{
		{MissingPrefix: 2, Decisions: []phy.Decision{d(1, 0), d(2, 0)}},
		{Decisions: []phy.Decision{d(8, 3), d(9, 3)}}, // covers only 0,1
	}
	got := Combine(4, views)
	if got[0].Symbol != 8 || got[1].Symbol != 9 {
		t.Error("prefix not filled from second view")
	}
	if got[2].Symbol != 1 || got[3].Symbol != 2 {
		t.Error("suffix not taken from first view")
	}
}

func TestCombineUncoveredIsInfinite(t *testing.T) {
	views := []View{{Decisions: []phy.Decision{d(1, 0)}}}
	got := Combine(3, views)
	if !math.IsInf(got[1].Hint, 1) || !math.IsInf(got[2].Hint, 1) {
		t.Error("uncovered symbols must carry infinite hints")
	}
}

func TestCombineNoViews(t *testing.T) {
	got := Combine(2, nil)
	for _, g := range got {
		if !math.IsInf(g.Hint, 1) {
			t.Error("no views should leave everything unknown")
		}
	}
}

func TestCoverage(t *testing.T) {
	views := []View{
		{MissingPrefix: 3, Decisions: []phy.Decision{d(0, 0), d(0, 0)}}, // 3,4
		{Decisions: []phy.Decision{d(0, 0), d(0, 0)}},                   // 0,1
	}
	if got := Coverage(6, views); got != 4 {
		t.Errorf("coverage %d, want 4 (symbols 0,1,3,4)", got)
	}
}

func TestBestSingle(t *testing.T) {
	views := []View{
		{Decisions: make([]phy.Decision, 5)},
		{Decisions: make([]phy.Decision, 9)},
		{Decisions: make([]phy.Decision, 2)},
	}
	if got := BestSingle(views); got != 1 {
		t.Errorf("best single %d, want 1", got)
	}
	if BestSingle(nil) != -1 {
		t.Error("no views should give -1")
	}
}

func TestCombineImprovesCorrectness(t *testing.T) {
	// Two receivers each corrupt a different half of the packet (with high
	// hints on the corrupt region); combining must recover nearly all of
	// it, and always at least as much as either alone — the MRD claim.
	rng := stats.NewRNG(1)
	const n = 200
	truth := make([]byte, n)
	for i := range truth {
		truth[i] = byte(rng.Intn(16))
	}
	mkView := func(badLo, badHi int) View {
		v := View{Decisions: make([]phy.Decision, n)}
		for i := 0; i < n; i++ {
			if i >= badLo && i < badHi {
				v.Decisions[i] = d((truth[i]+1+byte(rng.Intn(14)))%16, 8+float64(rng.Intn(10)))
			} else {
				v.Decisions[i] = d(truth[i], float64(rng.Intn(2)))
			}
		}
		return v
	}
	a, b := mkView(0, 90), mkView(110, 200)
	count := func(ds []phy.Decision) int {
		c := 0
		for i, dec := range ds {
			if dec.Symbol == truth[i] {
				c++
			}
		}
		return c
	}
	combined := Combine(n, []View{a, b})
	ca, cb, cc := count(a.Decisions), count(b.Decisions), count(combined)
	if cc < ca || cc < cb {
		t.Errorf("combined %d worse than singles %d/%d", cc, ca, cb)
	}
	if cc < n-5 {
		t.Errorf("combined recovered only %d of %d", cc, n)
	}
}

func TestCombinePreservesHintOrdering(t *testing.T) {
	// Property: every combined hint equals the minimum across views at
	// that position.
	rng := stats.NewRNG(2)
	const n = 300
	views := make([]View, 3)
	for vi := range views {
		pre := rng.Intn(20)
		ds := make([]phy.Decision, n-pre-rng.Intn(20))
		for i := range ds {
			ds[i] = d(byte(rng.Intn(16)), float64(rng.Intn(20)))
		}
		views[vi] = View{MissingPrefix: pre, Decisions: ds}
	}
	combined := Combine(n, views)
	for i := 0; i < n; i++ {
		min := math.Inf(1)
		for _, v := range views {
			if dec, ok := v.at(i); ok && dec.Hint < min {
				min = dec.Hint
			}
		}
		if combined[i].Hint != min {
			t.Fatalf("position %d: hint %v, want %v", i, combined[i].Hint, min)
		}
	}
}
