package pparq

import (
	"fmt"

	"ppr/internal/bitutil"
	"ppr/internal/core/feedback"
	"ppr/internal/core/recovery"
	"ppr/internal/frame"
)

// This file implements the streaming side of Sec. 5.2: "this process
// continues, with multiple forward-link data packets and reverse-link
// feedback packets being concatenated together in each transmission, to
// save per-packet overhead." TransferWindow moves a window of payloads and
// aggregates the per-packet feedback requests into a single reverse-link
// frame per round, and all partial retransmissions into a single
// forward-link frame per round — amortising the preamble, header, trailer
// and postamble of every control packet across the window.

// encodeBatch concatenates length-prefixed messages into one control body.
func encodeBatch(typ byte, msgs [][]byte) []byte {
	var w bitutil.Writer
	w.WriteBits(uint64(typ), 8)
	w.WriteGamma(uint64(len(msgs)) + 1)
	for _, m := range msgs {
		w.WriteGamma(uint64(len(m)) + 1)
		w.WriteBytes(m)
	}
	return w.Bytes()
}

// decodeBatch reverses encodeBatch.
func decodeBatch(body []byte) (typ byte, msgs [][]byte, err error) {
	rd := bitutil.NewReader(body)
	typ = byte(rd.ReadBits(8))
	n := rd.ReadGamma()
	if rd.Err() != nil || n == 0 {
		return 0, nil, fmt.Errorf("pparq: malformed batch header")
	}
	for i := uint64(0); i < n-1; i++ {
		l := rd.ReadGamma()
		if rd.Err() != nil || l == 0 {
			return 0, nil, fmt.Errorf("pparq: malformed batch entry %d", i)
		}
		m := rd.ReadBytes(int(l - 1))
		if rd.Err() != nil {
			return 0, nil, fmt.Errorf("pparq: truncated batch entry %d", i)
		}
		msgs = append(msgs, m)
	}
	return typ, msgs, nil
}

// windowEntry tracks one in-flight packet of a streaming window.
type windowEntry struct {
	seq     uint16
	payload []byte
	asm     *recovery.Assembler
	done    bool
}

// TransferWindow delivers a window of payloads with PP-ARQ recovery,
// concatenating all reverse-link feedback into one frame per round and all
// partial retransmissions into one frame per round. It returns the
// delivered payloads (in order) and the aggregate byte accounting; the
// amortisation makes its TotalAirBytes beat len(payloads) independent
// Transfer calls whenever more than one packet needs recovery.
func (s *Sender) TransferWindow(payloads [][]byte) ([][]byte, Stats, error) {
	cfg := s.cfg
	var st Stats
	entries := make([]*windowEntry, len(payloads))

	// Phase 1: stream every data frame out back-to-back.
	for i, payload := range payloads {
		seq := s.seq
		s.seq++
		syms := bitutil.NibblesFromBytes(payload)
		s.sent[seq] = syms
		e := &windowEntry{seq: seq, payload: payload, asm: recovery.New(len(syms))}
		entries[i] = e

		f := frame.New(s.dst, s.src, seq, payload)
		air := frame.AirBytes(len(payload))
		var rec *frame.Reception
		for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
			st.DataAirBytes += air
			rec = s.fwd.Transmit(f)
			if rec != nil && rec.HeaderOK {
				break
			}
			rec = nil
			st.FullResends++
		}
		if rec == nil {
			s.releaseWindow(entries)
			return nil, st, fmt.Errorf("%w: data frame %d never acquired", ErrGiveUp, i)
		}
		if err := e.asm.Init(rec.MissingPrefix, rec.Decisions, cfg.Labeler); err != nil {
			s.releaseWindow(entries)
			return nil, st, err
		}
		if rec.CRCOK {
			e.asm.MarkAllVerified()
			e.done = true
		}
	}

	// Recovery rounds over the whole window with concatenated control
	// frames.
	for round := 0; round < cfg.MaxRounds; round++ {
		st.Rounds = round + 1
		var reqBodies [][]byte
		var open []*windowEntry
		for _, e := range entries {
			if e.done {
				continue
			}
			req := e.asm.BuildRequest(e.seq, cfg.LambdaC)
			reqBodies = append(reqBodies, req.Encode(cfg.LambdaC))
			open = append(open, e)
		}
		// One concatenated feedback frame acknowledges the whole window
		// (empty batch = all verified).
		fbBody := encodeBatch(TypeFeedback, reqBodies)
		fbRec, err := s.sendControl(s.rev, fbBody, &st.FeedbackAirBytes, nil)
		if err != nil {
			s.releaseWindow(entries)
			return nil, st, err
		}
		if len(open) == 0 {
			break
		}
		_, reqMsgs, err := decodeBatch(fbRec.PayloadBytes)
		if err != nil {
			s.releaseWindow(entries)
			return nil, st, err
		}
		// Sender builds one concatenated response for every open packet.
		var respBodies [][]byte
		for _, m := range reqMsgs {
			req, err := feedback.DecodeRequest(m, cfg.LambdaC)
			if err != nil {
				s.releaseWindow(entries)
				return nil, st, fmt.Errorf("pparq: bad batched request: %w", err)
			}
			resp, misses := s.buildResponse(req)
			st.Misses += misses
			respBodies = append(respBodies, resp.Encode(cfg.LambdaC))
		}
		respBody := encodeBatch(TypeResponse, respBodies)
		respRec, err := s.sendControl(s.fwd, respBody, &st.RetxAirBytes, &st.RetxPayloadSizes)
		if err != nil {
			s.releaseWindow(entries)
			return nil, st, err
		}
		_, respMsgs, err := decodeBatch(respRec.PayloadBytes)
		if err != nil {
			s.releaseWindow(entries)
			return nil, st, err
		}
		if len(respMsgs) != len(open) {
			s.releaseWindow(entries)
			return nil, st, fmt.Errorf("pparq: %d batched responses for %d open packets", len(respMsgs), len(open))
		}
		for i, e := range open {
			resp, err := feedback.DecodeResponse(respMsgs[i], cfg.LambdaC)
			if err != nil {
				s.releaseWindow(entries)
				return nil, st, err
			}
			if _, err := e.asm.ApplyResponse(resp, cfg.LambdaC); err != nil {
				s.releaseWindow(entries)
				return nil, st, err
			}
			if e.asm.Complete() {
				e.done = true
			}
		}
	}

	out := make([][]byte, len(entries))
	for i, e := range entries {
		if !e.done {
			s.releaseWindow(entries)
			return nil, st, fmt.Errorf("%w: packet %d unverified after %d rounds", ErrGiveUp, i, st.Rounds)
		}
		out[i] = e.asm.Payload()
	}
	s.releaseWindow(entries)
	return out, st, nil
}

// releaseWindow drops the window's retransmission state.
func (s *Sender) releaseWindow(entries []*windowEntry) {
	for _, e := range entries {
		if e != nil {
			delete(s.sent, e.seq)
		}
	}
}
