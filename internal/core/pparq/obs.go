package pparq

import "ppr/internal/obs"

// Package-level metric handles (obs Vars: no map lookup, re-resolved only
// when the default registry changes). Recorded once per Transfer — far off
// the chip-level hot paths — they expose the protocol's feedback economy:
// how many chunks receivers asked for and how many bytes the reverse link
// cost, the quantities Figs. 11 and 16 measure.
var (
	mTransfers       = &obs.CounterVar{Name: "pparq.transfers"}
	mChunksRequested = &obs.CounterVar{Name: "pparq.chunks_requested"}
	mFeedbackBytes   = &obs.CounterVar{Name: "pparq.feedback_air_bytes"}
	mRetxBytes       = &obs.CounterVar{Name: "pparq.retx_air_bytes"}
	mRounds          = &obs.CounterVar{Name: "pparq.rounds"}
	mMisses          = &obs.CounterVar{Name: "pparq.softphy_misses"}
	mChunkCaps       = &obs.CounterVar{Name: "pparq.chunk_caps"}
)

// recordTransfer flushes one transfer's accounting to the registry.
func recordTransfer(st *Stats, chunksRequested int64) {
	if obs.Default() == nil {
		return
	}
	mTransfers.Get().Inc()
	mChunksRequested.Get().Add(chunksRequested)
	mFeedbackBytes.Get().Add(int64(st.FeedbackAirBytes))
	mRetxBytes.Get().Add(int64(st.RetxAirBytes))
	mRounds.Get().Add(int64(st.Rounds))
	mMisses.Get().Add(int64(st.Misses))
	mChunkCaps.Get().Add(int64(st.ChunkCaps))
}
