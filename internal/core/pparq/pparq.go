// Package pparq implements the streaming-ACK PP-ARQ protocol of Sec. 5.2 —
// the full sender/receiver exchange built on top of SoftPHY labels, the
// chunking dynamic program, and the feedback codec:
//
//  1. the sender transmits the full packet, checksum appended;
//  2. the receiver decodes it (possibly partially, possibly only via its
//     postamble), computes the optimal feedback set of chunks, and sends it
//     back with per-good-segment checksums;
//  3. the sender retransmits exactly the requested runs (plus any good run
//     whose receiver checksum fails its own verification — a detected
//     SoftPHY miss) together with checksums of everything it did not
//     retransmit;
//  4. rounds repeat until every symbol of the packet is verified.
//
// Control packets (feedback and retransmission frames) travel over the same
// lossy links as data; a control frame is accepted only when its own packet
// CRC verifies and is re-sent otherwise. All transmitted bytes, in both
// directions and for every attempt, are accounted in Stats — that
// accounting is what Figs. 11 and 16 measure.
package pparq

import (
	"errors"
	"fmt"

	"ppr/internal/bitutil"
	"ppr/internal/core/feedback"
	"ppr/internal/core/recovery"
	"ppr/internal/core/softphy"
	"ppr/internal/frame"
)

// Control payload type bytes. A data frame's payload is the raw
// network-layer data; control frames prefix their body with one of these.
const (
	// TypeFeedback marks a receiver→sender feedback request.
	TypeFeedback = 0x02
	// TypeResponse marks a sender→receiver partial retransmission.
	TypeResponse = 0x03
)

// Link is one direction of a wireless hop: it carries a frame to the peer
// and reports what the peer's receiver pipeline produced. A nil reception
// means the peer never acquired the frame (no preamble or postamble lock).
type Link interface {
	// Transmit sends the frame and returns the peer's reception, if any.
	Transmit(f frame.Frame) *frame.Reception
}

// Config tunes the protocol.
type Config struct {
	// Labeler interprets SoftPHY hints; defaults to the paper's η = 6
	// threshold rule.
	Labeler softphy.Labeler
	// LambdaC is the per-segment checksum width in bits (default 32).
	LambdaC int
	// MaxRounds bounds feedback/retransmission rounds per packet.
	MaxRounds int
	// MaxAttempts bounds transmissions of any single frame (data retries
	// when the receiver never acquires it, and control-frame retries).
	MaxAttempts int
}

// fill returns cfg with defaults applied.
func (c Config) fill() Config {
	if c.Labeler == nil {
		c.Labeler = softphy.Threshold{Eta: softphy.DefaultEta}
	}
	if c.LambdaC == 0 {
		c.LambdaC = feedback.DefaultChecksumBits
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 8
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 16
	}
	return c
}

// Stats accounts every byte the protocol put on the air for one transfer.
type Stats struct {
	// DataAirBytes counts full data-frame transmissions (initial send plus
	// any full retransmissions after acquisition failures).
	DataAirBytes int
	// RetxAirBytes counts partial-retransmission (response) frames.
	RetxAirBytes int
	// FeedbackAirBytes counts reverse-link feedback frames.
	FeedbackAirBytes int
	// Rounds is the number of feedback/retransmission rounds used.
	Rounds int
	// RetxPayloadSizes records the payload size in bytes of each response
	// frame — the distribution Fig. 16 plots.
	RetxPayloadSizes []int
	// FullResends counts times the whole data frame had to be resent
	// because the receiver acquired nothing.
	FullResends int
	// Misses counts good segments whose checksums failed sender-side
	// verification (SoftPHY misses caught by the protocol).
	Misses int
}

// TotalAirBytes sums every byte transmitted in both directions.
func (s Stats) TotalAirBytes() int {
	return s.DataAirBytes + s.RetxAirBytes + s.FeedbackAirBytes
}

// ErrGiveUp is returned when the protocol exhausts MaxRounds or
// MaxAttempts without verifying the whole packet.
var ErrGiveUp = errors.New("pparq: gave up before packet fully verified")

// Sender holds the transmit-side state: the symbols of packets in flight,
// keyed by sequence number, so it can serve retransmission requests.
type Sender struct {
	cfg  Config
	fwd  Link
	rev  Link
	src  uint16
	dst  uint16
	seq  uint16
	sent map[uint16][]byte // seq → payload symbols (one byte per symbol)
}

// NewSender builds a sender for the src→dst link pair. fwd carries frames
// to the receiver; rev carries the receiver's feedback back (PP-ARQ is
// asymmetric: rev is used by the peer's Receiver, the sender only listens).
func NewSender(fwd, rev Link, src, dst uint16, cfg Config) *Sender {
	return &Sender{cfg: cfg.fill(), fwd: fwd, rev: rev, src: src, dst: dst, sent: map[uint16][]byte{}}
}

// Transfer delivers one payload with full PP-ARQ recovery, returning the
// payload as verified by the receiver and the byte accounting. It drives
// both ends of the exchange against the configured links.
func (s *Sender) Transfer(payload []byte) (delivered []byte, st Stats, err error) {
	cfg := s.cfg
	seq := s.seq
	s.seq++
	syms := bitutil.NibblesFromBytes(payload)
	s.sent[seq] = syms
	defer delete(s.sent, seq)

	dataFrame := frame.New(s.dst, s.src, seq, payload)
	airBytes := frame.AirBytes(len(payload))

	// Phase 1: get the packet acquired at all (preamble or postamble).
	var rec *frame.Reception
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		st.DataAirBytes += airBytes
		rec = s.fwd.Transmit(dataFrame)
		if rec != nil && rec.HeaderOK {
			break
		}
		rec = nil
		st.FullResends++
	}
	if rec == nil {
		return nil, st, fmt.Errorf("%w: data frame never acquired", ErrGiveUp)
	}

	// Receiver-side assembler.
	asm := recovery.New(len(syms))
	if err := asm.Init(rec.MissingPrefix, rec.Decisions, cfg.Labeler); err != nil {
		return nil, st, err
	}
	if rec.CRCOK {
		asm.MarkAllVerified()
	}

	for round := 0; round < cfg.MaxRounds; round++ {
		st.Rounds = round + 1
		// Phase 2: receiver sends feedback (reliably, with retries). The
		// sender works from the copy that actually crossed the reverse
		// link, exercising the codec end to end.
		req := asm.BuildRequest(seq, cfg.LambdaC)
		fbBody := append([]byte{TypeFeedback}, req.Encode(cfg.LambdaC)...)
		fbRec, err := s.sendControl(s.rev, fbBody, &st.FeedbackAirBytes, nil)
		if err != nil {
			return nil, st, err
		}
		if req.CRCVerified {
			break
		}
		reqAtSender, err := feedback.DecodeRequest(controlBody(fbRec), cfg.LambdaC)
		if err != nil {
			return nil, st, fmt.Errorf("pparq: sender could not parse delivered feedback: %w", err)
		}
		// Phase 3: sender builds and sends the partial retransmission.
		resp, misses := s.buildResponse(reqAtSender)
		st.Misses += misses
		respBody := append([]byte{TypeResponse}, resp.Encode(cfg.LambdaC)...)
		respRec, err := s.sendControl(s.fwd, respBody, &st.RetxAirBytes, &st.RetxPayloadSizes)
		if err != nil {
			return nil, st, err
		}
		respAtReceiver, err := feedback.DecodeResponse(controlBody(respRec), cfg.LambdaC)
		if err != nil {
			return nil, st, fmt.Errorf("pparq: receiver could not parse delivered response: %w", err)
		}
		// Phase 4: receiver patches and verifies.
		if _, err := asm.ApplyResponse(respAtReceiver, cfg.LambdaC); err != nil {
			return nil, st, err
		}
		if asm.Complete() {
			// Final ACK so the sender can release the packet.
			ack := feedback.Request{Seq: seq, NumSymbols: len(syms), CRCVerified: true}
			ackBody := append([]byte{TypeFeedback}, ack.Encode(cfg.LambdaC)...)
			if _, err := s.sendControl(s.rev, ackBody, &st.FeedbackAirBytes, nil); err != nil {
				return nil, st, err
			}
			break
		}
	}
	if !asm.Complete() {
		return nil, st, fmt.Errorf("%w: %d of %d symbols verified after %d rounds",
			ErrGiveUp, asm.VerifiedCount(), asm.NumSymbols(), st.Rounds)
	}
	return asm.Payload(), st, nil
}

// buildResponse serves a feedback request from the sender's stored symbols:
// requested chunks are filled with the true symbols; good segments are
// verified against the receiver's checksums, and any that fail are promoted
// to retransmitted chunks (the receiver was fooled by a miss).
func (s *Sender) buildResponse(req feedback.Request) (feedback.Response, int) {
	syms := s.sent[req.Seq]
	resp := feedback.Response{Seq: req.Seq, NumSymbols: req.NumSymbols}
	misses := 0
	segs := feedback.Segments(req.NumSymbols, req.Chunks)
	// Walk chunks and segments in symbol order, merging both sources of
	// retransmission into resp.Chunks.
	type span struct {
		start, end int
		retransmit bool
	}
	var spans []span
	for _, c := range req.Chunks {
		spans = append(spans, span{c.StartSym, c.EndSym, true})
	}
	for i, seg := range segs {
		w := feedback.ChecksumWidth(seg.Len, s.cfg.LambdaC)
		ok := feedback.SymbolChecksum(syms[seg.Start:seg.End()], w) == req.SegChecksums[i]
		if !ok {
			misses++
		}
		spans = append(spans, span{seg.Start, seg.End(), !ok})
	}
	// spans from chunks and segments interleave; sort by start.
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j].start < spans[j-1].start; j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
	for _, sp := range spans {
		if sp.retransmit {
			resp.Chunks = append(resp.Chunks, feedback.RespChunk{
				Start: sp.start,
				Syms:  append([]byte(nil), syms[sp.start:sp.end]...),
			})
		} else {
			w := feedback.ChecksumWidth(sp.end-sp.start, s.cfg.LambdaC)
			resp.SegChecksums = append(resp.SegChecksums, feedback.SymbolChecksum(syms[sp.start:sp.end], w))
		}
	}
	return resp, misses
}

// sendControl transmits a control frame until the peer receives it with a
// verified packet CRC, returning the accepted reception. Every attempt's
// air bytes are charged to counter; when sizes is non-nil the accepted
// frame's payload size is recorded.
func (s *Sender) sendControl(l Link, body []byte, counter *int, sizes *[]int) (*frame.Reception, error) {
	f := frame.New(s.dst, s.src, s.seq, body)
	s.seq++
	air := frame.AirBytes(len(body))
	for attempt := 0; attempt < s.cfg.MaxAttempts; attempt++ {
		*counter += air
		rec := l.Transmit(f)
		if rec != nil && rec.HeaderOK && rec.CRCOK {
			if sizes != nil {
				*sizes = append(*sizes, len(body))
			}
			return rec, nil
		}
	}
	return nil, fmt.Errorf("%w: control frame (%d bytes) never delivered", ErrGiveUp, len(body))
}

// controlBody strips the control type byte from a delivered control frame.
func controlBody(rec *frame.Reception) []byte {
	if len(rec.PayloadBytes) < 1 {
		return nil
	}
	return rec.PayloadBytes[1:]
}
