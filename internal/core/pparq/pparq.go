// Package pparq implements the streaming-ACK PP-ARQ protocol of Sec. 5.2 —
// the full sender/receiver exchange built on top of SoftPHY labels, the
// chunking dynamic program, and the feedback codec:
//
//  1. the sender transmits the full packet, checksum appended;
//  2. the receiver decodes it (possibly partially, possibly only via its
//     postamble), computes the optimal feedback set of chunks, and sends it
//     back with per-good-segment checksums;
//  3. the sender retransmits exactly the requested runs (plus any good run
//     whose receiver checksum fails its own verification — a detected
//     SoftPHY miss) together with checksums of everything it did not
//     retransmit;
//  4. rounds repeat until every symbol of the packet is verified.
//
// Control packets (feedback and retransmission frames) travel over the same
// lossy links as data; a control frame is accepted only when its own packet
// CRC verifies and is re-sent otherwise. All transmitted bytes, in both
// directions and for every attempt, are accounted in Stats — that
// accounting is what Figs. 11 and 16 measure.
package pparq

import (
	"errors"
	"fmt"
	"sort"

	"ppr/internal/bitutil"
	"ppr/internal/core/chunkdp"
	"ppr/internal/core/feedback"
	"ppr/internal/core/recovery"
	"ppr/internal/core/softphy"
	"ppr/internal/frame"
)

// Control payload type bytes. A data frame's payload is the raw
// network-layer data; control frames prefix their body with one of these.
const (
	// TypeFeedback marks a receiver→sender feedback request.
	TypeFeedback = 0x02
	// TypeResponse marks a sender→receiver partial retransmission.
	TypeResponse = 0x03
)

// Link is one direction of a wireless hop: it carries a frame to the peer
// and reports what the peer's receiver pipeline produced. A nil reception
// means the peer never acquired the frame (no preamble or postamble lock).
type Link interface {
	// Transmit sends the frame and returns the peer's reception, if any.
	Transmit(f frame.Frame) *frame.Reception
}

// Config tunes the protocol.
type Config struct {
	// Labeler interprets SoftPHY hints; defaults to the paper's η = 6
	// threshold rule.
	Labeler softphy.Labeler
	// LambdaC is the per-segment checksum width in bits (default 32).
	LambdaC int
	// MaxRounds bounds feedback/retransmission rounds per packet.
	MaxRounds int
	// MaxAttempts bounds transmissions of any single frame (data retries
	// when the receiver never acquires it, and control-frame retries).
	MaxAttempts int
	// MaxChunks caps the number of chunks per feedback request; 0 means the
	// DP-optimal (unbounded) plan. Capping coalesces adjacent chunks —
	// retransmitting a few good symbols in exchange for a shorter feedback
	// frame, which survives adversarial jamming of the reverse link better
	// (see recovery.BuildRequestCapped and the netsim countermeasure layers).
	MaxChunks int
}

// fill returns cfg with defaults applied.
func (c Config) fill() Config {
	if c.Labeler == nil {
		c.Labeler = softphy.Threshold{Eta: softphy.DefaultEta}
	}
	if c.LambdaC == 0 {
		c.LambdaC = feedback.DefaultChecksumBits
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 8
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 16
	}
	return c
}

// Stats accounts every byte the protocol put on the air for one transfer.
type Stats struct {
	// DataAirBytes counts full data-frame transmissions (initial send plus
	// any full retransmissions after acquisition failures).
	DataAirBytes int
	// RetxAirBytes counts partial-retransmission (response) frames.
	RetxAirBytes int
	// FeedbackAirBytes counts reverse-link feedback frames.
	FeedbackAirBytes int
	// Rounds is the number of feedback/retransmission rounds used.
	Rounds int
	// RetxPayloadSizes records the payload size in bytes of each response
	// frame — the distribution Fig. 16 plots.
	RetxPayloadSizes []int
	// FullResends counts times the whole data frame had to be resent
	// because the receiver acquired nothing.
	FullResends int
	// Misses counts good segments whose checksums failed sender-side
	// verification (SoftPHY misses caught by the protocol).
	Misses int
	// ChunkCaps counts feedback rounds whose request hit Config.MaxChunks
	// and was coalesced.
	ChunkCaps int
	// VerifiedSymbols is how many payload symbols ended checksum-verified —
	// all of them on success, and on give-up the partial content PPR's
	// philosophy still lets the receiver hand to higher layers (the
	// closed-loop simulator credits it, exactly as fragmented CRC banks its
	// verified fragments).
	VerifiedSymbols int
}

// TotalAirBytes sums every byte transmitted in both directions.
func (s Stats) TotalAirBytes() int {
	return s.DataAirBytes + s.RetxAirBytes + s.FeedbackAirBytes
}

// ErrGiveUp is returned when the protocol exhausts MaxRounds or
// MaxAttempts without verifying the whole packet.
var ErrGiveUp = errors.New("pparq: gave up before packet fully verified")

// Sender holds the transmit-side state: the symbols of packets in flight,
// keyed by sequence number, so it can serve retransmission requests.
type Sender struct {
	cfg  Config
	fwd  Link
	rev  Link
	src  uint16
	dst  uint16
	seq  uint16
	sent map[uint16][]byte // seq → payload symbols (one byte per symbol)
}

// NewSender builds a sender for the src→dst link pair. fwd carries frames
// to the receiver; rev carries the receiver's feedback back (PP-ARQ is
// asymmetric: rev is used by the peer's Receiver, the sender only listens).
func NewSender(fwd, rev Link, src, dst uint16, cfg Config) *Sender {
	return &Sender{cfg: cfg.fill(), fwd: fwd, rev: rev, src: src, dst: dst, sent: map[uint16][]byte{}}
}

// Transfer delivers one payload with full PP-ARQ recovery, returning the
// payload as verified by the receiver and the byte accounting. It drives
// both ends of the exchange against the configured links.
func (s *Sender) Transfer(payload []byte) (delivered []byte, st Stats, err error) {
	var chunksRequested int64
	defer func() { recordTransfer(&st, chunksRequested) }()
	cfg := s.cfg
	seq := s.seq
	s.seq++
	syms := bitutil.NibblesFromBytes(payload)
	s.sent[seq] = syms
	defer delete(s.sent, seq)

	dataFrame := frame.New(s.dst, s.src, seq, payload)
	airBytes := frame.AirBytes(len(payload))

	// Phase 1: get the packet acquired at all (preamble or postamble).
	var rec *frame.Reception
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		st.DataAirBytes += airBytes
		rec = s.fwd.Transmit(dataFrame)
		if rec != nil && rec.HeaderOK {
			break
		}
		rec = nil
		st.FullResends++
	}
	if rec == nil {
		return nil, st, fmt.Errorf("%w: data frame never acquired", ErrGiveUp)
	}

	// Receiver-side assembler.
	asm := recovery.New(len(syms))
	defer func() { st.VerifiedSymbols = asm.VerifiedCount() }()
	if err := asm.Init(rec.MissingPrefix, rec.Decisions, cfg.Labeler); err != nil {
		return nil, st, err
	}
	if rec.CRCOK {
		asm.MarkAllVerified()
	}

	for round := 0; round < cfg.MaxRounds; round++ {
		st.Rounds = round + 1
		// Phase 2: receiver sends feedback (reliably, with retries). The
		// sender works from the copy that actually crossed the reverse
		// link, exercising the codec end to end.
		req, capped := asm.BuildRequestCapped(seq, cfg.LambdaC, cfg.MaxChunks)
		req = ClampRequest(req, cfg.LambdaC)
		if capped {
			st.ChunkCaps++
		}
		chunksRequested += int64(len(req.Chunks))
		fbBody := append([]byte{TypeFeedback}, req.Encode(cfg.LambdaC)...)
		fbRec, err := s.sendControl(s.rev, fbBody, &st.FeedbackAirBytes, nil)
		if err != nil {
			return nil, st, err
		}
		if req.CRCVerified {
			break
		}
		reqAtSender, err := feedback.DecodeRequest(controlBody(fbRec), cfg.LambdaC)
		if err != nil {
			return nil, st, fmt.Errorf("pparq: sender could not parse delivered feedback: %w", err)
		}
		// Phase 3: sender builds and sends the partial retransmission.
		resp, misses := s.buildResponse(reqAtSender)
		st.Misses += misses
		respBody := append([]byte{TypeResponse}, resp.Encode(cfg.LambdaC)...)
		respRec, err := s.sendControl(s.fwd, respBody, &st.RetxAirBytes, &st.RetxPayloadSizes)
		if err != nil {
			return nil, st, err
		}
		respAtReceiver, err := feedback.DecodeResponse(controlBody(respRec), cfg.LambdaC)
		if err != nil {
			return nil, st, fmt.Errorf("pparq: receiver could not parse delivered response: %w", err)
		}
		// Phase 4: receiver patches and verifies.
		if _, err := asm.ApplyResponse(respAtReceiver, cfg.LambdaC); err != nil {
			return nil, st, err
		}
		if asm.Complete() {
			// Final ACK so the sender can release the packet.
			ack := feedback.Request{Seq: seq, NumSymbols: len(syms), CRCVerified: true}
			ackBody := append([]byte{TypeFeedback}, ack.Encode(cfg.LambdaC)...)
			if _, err := s.sendControl(s.rev, ackBody, &st.FeedbackAirBytes, nil); err != nil {
				return nil, st, err
			}
			break
		}
	}
	if !asm.Complete() {
		return nil, st, fmt.Errorf("%w: %d of %d symbols verified after %d rounds",
			ErrGiveUp, asm.VerifiedCount(), asm.NumSymbols(), st.Rounds)
	}
	return asm.Payload(), st, nil
}

// MaxControlBody is the largest control-frame payload the protocol will
// build: the link layer's maximum payload minus the control type byte.
// Feedback requests and retransmission responses that would exceed it are
// clamped — see ClampRequest and capResponse — and the residue is recovered
// on a later round. Without the clamp, a 1500-byte packet whose symbols are
// all bad asks for a retransmission bigger than a frame can carry.
const MaxControlBody = frame.MaxPayload - 1

// ClampRequest bounds a feedback request to MaxControlBody. A request small
// enough to fit is returned unchanged; an oversized one (pathological
// receptions can produce thousands of alternating chunks whose gamma codes
// outgrow the frame) degenerates to the one request that is always tiny:
// retransmit the whole packet.
func ClampRequest(req feedback.Request, lambdaC int) feedback.Request {
	if req.CRCVerified || (feedback.RequestBits(req, lambdaC)+7)/8 <= MaxControlBody {
		return req
	}
	return feedback.Request{
		Seq:        req.Seq,
		NumSymbols: req.NumSymbols,
		Chunks:     []chunkdp.Chunk{{StartSym: 0, EndSym: req.NumSymbols}},
	}
}

// buildResponse serves a feedback request from the sender's stored symbols:
// requested chunks are filled with the true symbols; good segments are
// verified against the receiver's checksums, and any that fail are promoted
// to retransmitted chunks (the receiver was fooled by a miss). The response
// is capped at MaxControlBody: retransmission that does not fit is demoted
// to checksummed segments, which fail verification at the receiver and are
// re-requested next round.
func (s *Sender) buildResponse(req feedback.Request) (feedback.Response, int) {
	syms := s.sent[req.Seq]
	misses := 0
	type span struct{ start, end int }
	var retx []span
	for _, c := range req.Chunks {
		retx = append(retx, span{c.StartSym, c.EndSym})
	}
	for i, seg := range feedback.Segments(req.NumSymbols, req.Chunks) {
		w := feedback.ChecksumWidth(seg.Len, s.cfg.LambdaC)
		if feedback.SymbolChecksum(syms[seg.Start:seg.End()], w) != req.SegChecksums[i] {
			misses++
			retx = append(retx, span{seg.Start, seg.End()})
		}
	}
	sort.Slice(retx, func(a, b int) bool { return retx[a].start < retx[b].start })

	resp := feedback.Response{Seq: req.Seq, NumSymbols: req.NumSymbols}
	for _, sp := range retx {
		resp.Chunks = append(resp.Chunks, feedback.RespChunk{
			Start: sp.start,
			Syms:  append([]byte(nil), syms[sp.start:sp.end]...),
		})
	}
	s.fillSegChecksums(&resp, syms)
	s.capResponse(&resp, syms)
	return resp, misses
}

// fillSegChecksums recomputes a response's segment checksums as the
// complement of its current chunk list.
func (s *Sender) fillSegChecksums(resp *feedback.Response, syms []byte) {
	asChunks := make([]chunkdp.Chunk, len(resp.Chunks))
	for i, c := range resp.Chunks {
		asChunks[i] = chunkdp.Chunk{StartSym: c.Start, EndSym: c.End()}
	}
	resp.SegChecksums = resp.SegChecksums[:0]
	for _, seg := range feedback.Segments(resp.NumSymbols, asChunks) {
		w := feedback.ChecksumWidth(seg.Len, s.cfg.LambdaC)
		resp.SegChecksums = append(resp.SegChecksums, feedback.SymbolChecksum(syms[seg.Start:seg.End()], w))
	}
}

// capResponse shrinks a response until its encoding fits MaxControlBody by
// truncating (then dropping) the trailing retransmission chunk; the shed
// symbols join the checksummed complement, fail verification at the
// receiver, and come back in the next round's request. Each iteration
// strictly reduces the retransmitted symbol count, so the loop terminates —
// in the limit at a chunkless response, which always fits.
func (s *Sender) capResponse(resp *feedback.Response, syms []byte) {
	for len(resp.Encode(s.cfg.LambdaC)) > MaxControlBody {
		last := len(resp.Chunks) - 1
		if c := resp.Chunks[last]; len(c.Syms) > 16 {
			resp.Chunks[last].Syms = c.Syms[:len(c.Syms)/2]
		} else {
			resp.Chunks = resp.Chunks[:last]
		}
		s.fillSegChecksums(resp, syms)
	}
}

// DeliverControl transmits a prebuilt control frame until the peer
// receives it with a verified packet CRC, charging every attempt's air
// bytes to counter. This is the one reliable-control-delivery loop in the
// codebase: the PP-ARQ sender and the closed-loop ARQ baselines
// (internal/netsim) share its retry bound, accounting and acceptance
// predicate.
func DeliverControl(l Link, f frame.Frame, maxAttempts int, counter *int) (*frame.Reception, error) {
	air := frame.AirBytes(len(f.Payload))
	for attempt := 0; attempt < maxAttempts; attempt++ {
		*counter += air
		if rec := l.Transmit(f); rec != nil && rec.HeaderOK && rec.CRCOK {
			return rec, nil
		}
	}
	return nil, fmt.Errorf("%w: control frame (%d bytes) never delivered", ErrGiveUp, len(f.Payload))
}

// sendControl frames a control body and delivers it reliably, recording the
// accepted frame's payload size when sizes is non-nil.
func (s *Sender) sendControl(l Link, body []byte, counter *int, sizes *[]int) (*frame.Reception, error) {
	f := frame.New(s.dst, s.src, s.seq, body)
	s.seq++
	rec, err := DeliverControl(l, f, s.cfg.MaxAttempts, counter)
	if err == nil && sizes != nil {
		*sizes = append(*sizes, len(body))
	}
	return rec, err
}

// controlBody strips the control type byte from a delivered control frame.
func controlBody(rec *frame.Reception) []byte {
	if len(rec.PayloadBytes) < 1 {
		return nil
	}
	return rec.PayloadBytes[1:]
}
