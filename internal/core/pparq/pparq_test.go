package pparq

import (
	"bytes"
	"errors"
	"testing"

	"ppr/internal/core/softphy"
	"ppr/internal/frame"
	"ppr/internal/phy"
	"ppr/internal/stats"
)

// chipLink carries frames through the real spread/synchronize/despread
// pipeline, applying an arbitrary chip corruption between the endpoints.
type chipLink struct {
	rx       *frame.Receiver
	corrupt  func(chips []byte) []byte
	attempts int
}

func (l *chipLink) Transmit(f frame.Frame) *frame.Reception {
	l.attempts++
	chips := f.AirChips()
	if l.corrupt != nil {
		chips = frame.NewChipBuffer(l.corrupt(chips.Bytes()))
	}
	return frame.BestReception(l.rx.Receive(chips))
}

func cleanLink() *chipLink {
	return &chipLink{rx: frame.NewReceiver(phy.HardDecoder{})}
}

// burstCorruptor randomises a chip range [start, end) of the payload area.
func burstCorruptor(rng *stats.RNG, startByte, endByte int) func([]byte) []byte {
	return func(chips []byte) []byte {
		out := append([]byte(nil), chips...)
		base := (frame.SyncBytes + frame.HeaderBytes) * frame.ChipsPerByte
		lo, hi := base+startByte*frame.ChipsPerByte, base+endByte*frame.ChipsPerByte
		if hi > len(out) {
			hi = len(out)
		}
		for i := lo; i < hi; i++ {
			out[i] = byte(rng.Intn(2))
		}
		return out
	}
}

// onceCorruptor applies corrupt on the first n transmissions only —
// retransmissions then pass clean, modelling a transient collision.
func onceCorruptor(n int, corrupt func([]byte) []byte) func([]byte) []byte {
	count := 0
	return func(chips []byte) []byte {
		count++
		if count <= n {
			return corrupt(chips)
		}
		return chips
	}
}

func payloadOf(rng *stats.RNG, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(rng.Intn(256))
	}
	return p
}

func TestTransferCleanChannel(t *testing.T) {
	rng := stats.NewRNG(1)
	fwd, rev := cleanLink(), cleanLink()
	s := NewSender(fwd, rev, 1, 2, Config{})
	payload := payloadOf(rng, 200)
	got, st, err := s.Transfer(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("payload mismatch")
	}
	if st.Rounds != 1 {
		t.Errorf("clean transfer took %d rounds", st.Rounds)
	}
	if st.RetxAirBytes != 0 {
		t.Errorf("clean transfer retransmitted %d bytes", st.RetxAirBytes)
	}
	if st.DataAirBytes != frame.AirBytes(200) {
		t.Errorf("data air bytes %d", st.DataAirBytes)
	}
	if st.FeedbackAirBytes == 0 {
		t.Error("no ACK sent")
	}
}

func TestTransferRecoversBurstError(t *testing.T) {
	rng := stats.NewRNG(2)
	// First data transmission has payload bytes 50..90 destroyed; the
	// retransmission response travels clean.
	fwd := &chipLink{
		rx:      frame.NewReceiver(phy.HardDecoder{}),
		corrupt: onceCorruptor(1, burstCorruptor(rng, 50, 90)),
	}
	rev := cleanLink()
	s := NewSender(fwd, rev, 1, 2, Config{})
	payload := payloadOf(rng, 250)
	got, st, err := s.Transfer(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch after recovery")
	}
	if st.Rounds < 1 || st.RetxAirBytes == 0 {
		t.Errorf("expected a retransmission round: %+v", st)
	}
	// The partial retransmission must be far smaller than a full resend.
	if len(st.RetxPayloadSizes) == 0 {
		t.Fatal("no retransmission size recorded")
	}
	if st.RetxPayloadSizes[0] >= 250 {
		t.Errorf("partial retransmission %d bytes not smaller than full packet", st.RetxPayloadSizes[0])
	}
}

func TestTransferSavingsVsFullRetransmit(t *testing.T) {
	// The headline PP-ARQ claim: recovering a burst-corrupted packet costs
	// much less than resending it whole.
	rng := stats.NewRNG(3)
	fwd := &chipLink{
		rx:      frame.NewReceiver(phy.HardDecoder{}),
		corrupt: onceCorruptor(1, burstCorruptor(rng, 100, 140)),
	}
	rev := cleanLink()
	s := NewSender(fwd, rev, 1, 2, Config{})
	payload := payloadOf(rng, 1000)
	got, st, err := s.Transfer(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch")
	}
	fullResendCost := 2 * frame.AirBytes(1000)
	if st.TotalAirBytes() >= fullResendCost {
		t.Errorf("PP-ARQ cost %d ≥ full-resend cost %d", st.TotalAirBytes(), fullResendCost)
	}
}

func TestTransferDestroyedPreambleUsesPostamble(t *testing.T) {
	rng := stats.NewRNG(4)
	ruinPreamble := func(chips []byte) []byte {
		out := append([]byte(nil), chips...)
		n := (frame.SyncBytes + frame.HeaderBytes) * frame.ChipsPerByte
		for i := 0; i < n; i++ {
			out[i] = byte(rng.Intn(2))
		}
		return out
	}
	fwd := &chipLink{
		rx:      frame.NewReceiver(phy.HardDecoder{}),
		corrupt: onceCorruptor(1, ruinPreamble),
	}
	rev := cleanLink()
	s := NewSender(fwd, rev, 1, 2, Config{})
	payload := payloadOf(rng, 300)
	got, st, err := s.Transfer(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch")
	}
	// The packet must NOT have been fully resent: postamble sync plus CRC
	// pass means zero extra rounds.
	if st.FullResends != 0 {
		t.Errorf("full resends %d; postamble decoding should have rescued the frame", st.FullResends)
	}
}

func TestTransferStatusQuoReceiverNeedsFullResend(t *testing.T) {
	// Same scenario but with postamble decoding disabled: the first
	// transmission is lost entirely and a full resend must happen.
	rng := stats.NewRNG(5)
	ruinPreamble := func(chips []byte) []byte {
		out := append([]byte(nil), chips...)
		n := (frame.SyncBytes + frame.HeaderBytes) * frame.ChipsPerByte
		for i := 0; i < n; i++ {
			out[i] = byte(rng.Intn(2))
		}
		return out
	}
	rx := frame.NewReceiver(phy.HardDecoder{})
	rx.UsePostamble = false
	fwd := &chipLink{rx: rx, corrupt: onceCorruptor(1, ruinPreamble)}
	rev := cleanLink()
	s := NewSender(fwd, rev, 1, 2, Config{})
	payload := payloadOf(rng, 300)
	got, st, err := s.Transfer(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch")
	}
	if st.FullResends != 1 {
		t.Errorf("full resends %d, want 1 without postamble decoding", st.FullResends)
	}
}

func TestTransferCatchesSoftPHYMiss(t *testing.T) {
	// Corrupt a payload region but leave the chips close enough to a WRONG
	// codeword that the hint stays low: flip a symbol to another codeword
	// exactly. The label says good; only the segment checksum exchange can
	// catch it.
	flipSymbol := func(chips []byte) []byte {
		out := append([]byte(nil), chips...)
		base := (frame.SyncBytes + frame.HeaderBytes) * frame.ChipsPerByte
		// Overwrite symbol 10 of the payload with codeword for a different
		// symbol: zero hint, wrong data.
		cw := phy.SpreadSymbols([]byte{0x9})
		cs := phy.ChipsOf(cw)
		copy(out[base+10*32:base+11*32], cs)
		return out
	}
	rng := stats.NewRNG(6)
	payload := payloadOf(rng, 100)
	// Ensure payload symbol 10 isn't already 0x9.
	payload[5] = 0x11 // symbol 10 is low nibble of byte 5 = 0x1
	fwd := &chipLink{
		rx:      frame.NewReceiver(phy.HardDecoder{}),
		corrupt: onceCorruptor(1, flipSymbol),
	}
	rev := cleanLink()
	s := NewSender(fwd, rev, 1, 2, Config{})
	got, st, err := s.Transfer(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("miss was not corrected")
	}
	if st.Misses == 0 {
		t.Error("protocol did not record the miss")
	}
}

func TestTransferGivesUpOnDeadLink(t *testing.T) {
	dead := &chipLink{
		rx: frame.NewReceiver(phy.HardDecoder{}),
		corrupt: func(chips []byte) []byte {
			rng := stats.NewRNG(7)
			out := make([]byte, len(chips))
			for i := range out {
				out[i] = byte(rng.Intn(2))
			}
			return out
		},
	}
	rev := cleanLink()
	s := NewSender(dead, rev, 1, 2, Config{MaxAttempts: 3})
	_, st, err := s.Transfer(payloadOf(stats.NewRNG(8), 50))
	if !errors.Is(err, ErrGiveUp) {
		t.Fatalf("expected ErrGiveUp, got %v", err)
	}
	if st.FullResends != 3 {
		t.Errorf("attempts %d, want 3", st.FullResends)
	}
}

func TestTransferSequenceNumbersAdvance(t *testing.T) {
	fwd, rev := cleanLink(), cleanLink()
	s := NewSender(fwd, rev, 1, 2, Config{})
	for i := 0; i < 3; i++ {
		if _, _, err := s.Transfer([]byte{byte(i), 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	if s.seq == 0 {
		t.Error("sequence numbers did not advance")
	}
}

func TestTransferManyRandomBursts(t *testing.T) {
	// Property-style end-to-end check: across many random burst patterns
	// the delivered payload always equals the sent payload.
	rng := stats.NewRNG(9)
	for trial := 0; trial < 25; trial++ {
		n := 100 + rng.Intn(400)
		payload := payloadOf(rng, n)
		nBursts := 1 + rng.Intn(3)
		var corrupters []func([]byte) []byte
		for b := 0; b < nBursts; b++ {
			lo := rng.Intn(n - 10)
			hi := lo + 1 + rng.Intn(n-lo)
			corrupters = append(corrupters, burstCorruptor(rng, lo, hi))
		}
		all := func(chips []byte) []byte {
			for _, c := range corrupters {
				chips = c(chips)
			}
			return chips
		}
		fwd := &chipLink{
			rx:      frame.NewReceiver(phy.HardDecoder{}),
			corrupt: onceCorruptor(1, all),
		}
		rev := cleanLink()
		s := NewSender(fwd, rev, 1, 2, Config{})
		got, _, err := s.Transfer(payload)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("trial %d: delivered payload differs from sent", trial)
		}
	}
}

func TestStatsTotal(t *testing.T) {
	st := Stats{DataAirBytes: 10, RetxAirBytes: 20, FeedbackAirBytes: 5}
	if st.TotalAirBytes() != 35 {
		t.Errorf("TotalAirBytes %d", st.TotalAirBytes())
	}
}

// droppingLink drops every transmission entirely: the peer never syncs.
type droppingLink struct{}

func (droppingLink) Transmit(frame.Frame) *frame.Reception { return nil }

func TestTransferDeadReverseLink(t *testing.T) {
	// Data gets through but feedback never does: the protocol must give up
	// cleanly, not hang.
	fwd := cleanLink()
	s := NewSender(fwd, droppingLink{}, 1, 2, Config{MaxAttempts: 3, MaxRounds: 2})
	_, _, err := s.Transfer(payloadOf(stats.NewRNG(20), 100))
	if !errors.Is(err, ErrGiveUp) {
		t.Fatalf("expected ErrGiveUp, got %v", err)
	}
}

// halfDeafLink delivers data frames but corrupts every control frame, so
// responses never verify.
type halfDeafLink struct {
	rx  *frame.Receiver
	rng *stats.RNG
}

func (l *halfDeafLink) Transmit(f frame.Frame) *frame.Reception {
	chips := f.AirChips()
	if len(f.Payload) > 0 && (f.Payload[0] == TypeResponse || f.Payload[0] == TypeFeedback) {
		// Smash the payload CRC region.
		end := chips.Len()/2 + 2000
		if end > chips.Len() {
			end = chips.Len()
		}
		chips.FillUniform(chips.Len()/2, end, l.rng.Uint64)
	}
	recs := l.rx.Receive(chips)
	for i := range recs {
		if recs[i].HeaderOK {
			return &recs[i]
		}
	}
	return nil
}

func TestTransferControlFramesNeverVerify(t *testing.T) {
	rng := stats.NewRNG(21)
	fwd := &chipLink{
		rx:      frame.NewReceiver(phy.HardDecoder{}),
		corrupt: onceCorruptor(1, burstCorruptor(rng, 10, 40)),
	}
	rev := &halfDeafLink{rx: frame.NewReceiver(phy.HardDecoder{}), rng: rng.Split()}
	s := NewSender(fwd, rev, 1, 2, Config{MaxAttempts: 4, MaxRounds: 2})
	_, st, err := s.Transfer(payloadOf(rng, 200))
	if !errors.Is(err, ErrGiveUp) {
		t.Fatalf("expected ErrGiveUp when feedback can never verify, got %v", err)
	}
	if st.FeedbackAirBytes == 0 {
		t.Error("no feedback attempts accounted")
	}
}

func TestTransferEmptyPayload(t *testing.T) {
	// Degenerate but legal: a zero-byte payload still round-trips (the
	// frame carries only headers and checks).
	fwd, rev := cleanLink(), cleanLink()
	s := NewSender(fwd, rev, 1, 2, Config{})
	got, _, err := s.Transfer(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("delivered %d bytes for empty payload", len(got))
	}
}

func TestTransferAdaptiveLabeler(t *testing.T) {
	// The protocol must run unchanged with the adaptive labeler plugged in
	// (the PHY-independence hook).
	rng := stats.NewRNG(22)
	fwd := &chipLink{
		rx:      frame.NewReceiver(phy.HardDecoder{}),
		corrupt: onceCorruptor(1, burstCorruptor(rng, 30, 80)),
	}
	rev := cleanLink()
	ad := softphy.NewAdaptive(10, 1, softphy.DefaultEta)
	s := NewSender(fwd, rev, 1, 2, Config{Labeler: ad})
	payload := payloadOf(rng, 300)
	got, _, err := s.Transfer(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("payload mismatch with adaptive labeler")
	}
}

func TestTransferBackToBackStream(t *testing.T) {
	// The paper's Fig. 16 setup shape: a stream of packets through one
	// sender object; sequence bookkeeping must not leak between packets.
	rng := stats.NewRNG(23)
	fwd := &chipLink{rx: frame.NewReceiver(phy.HardDecoder{})}
	rev := cleanLink()
	s := NewSender(fwd, rev, 1, 2, Config{})
	for i := 0; i < 10; i++ {
		payload := payloadOf(rng, 50+i*30)
		got, _, err := s.Transfer(payload)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("packet %d corrupted", i)
		}
	}
	if len(s.sent) != 0 {
		t.Errorf("%d stale entries in sender state", len(s.sent))
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	msgs := [][]byte{{1, 2, 3}, {}, {0xff}, make([]byte, 100)}
	typ, got, err := decodeBatch(encodeBatch(TypeFeedback, msgs))
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypeFeedback || len(got) != len(msgs) {
		t.Fatalf("typ %d, %d msgs", typ, len(got))
	}
	for i := range msgs {
		if !bytes.Equal(got[i], msgs[i]) {
			t.Errorf("msg %d mismatch", i)
		}
	}
	// Empty batch.
	_, got, err = decodeBatch(encodeBatch(TypeResponse, nil))
	if err != nil || len(got) != 0 {
		t.Errorf("empty batch: %v, %d msgs", err, len(got))
	}
}

func TestBatchCodecRejectsGarbage(t *testing.T) {
	if _, _, err := decodeBatch(nil); err == nil {
		t.Error("accepted empty body")
	}
	if _, _, err := decodeBatch([]byte{0x02, 0x00}); err == nil {
		t.Error("accepted truncated batch")
	}
}

func TestTransferWindowCleanChannel(t *testing.T) {
	rng := stats.NewRNG(30)
	fwd, rev := cleanLink(), cleanLink()
	s := NewSender(fwd, rev, 1, 2, Config{})
	payloads := [][]byte{payloadOf(rng, 100), payloadOf(rng, 200), payloadOf(rng, 50)}
	got, st, err := s.TransferWindow(payloads)
	if err != nil {
		t.Fatal(err)
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("payload %d mismatch", i)
		}
	}
	// Clean window: exactly one (empty-batch) feedback frame.
	if st.Rounds != 1 || st.RetxAirBytes != 0 {
		t.Errorf("clean window stats: %+v", st)
	}
}

func TestTransferWindowRecoversMultipleCorruptPackets(t *testing.T) {
	rng := stats.NewRNG(31)
	// Every data frame loses a burst on first transmission; control frames
	// are clean.
	corrupted := 0
	fwd := &chipLink{rx: frame.NewReceiver(phy.HardDecoder{})}
	fwd.corrupt = func(chips []byte) []byte {
		// Only corrupt large (data) frames; control frames pass.
		if len(chips) < frame.AirChips(300) {
			return chips
		}
		corrupted++
		return burstCorruptor(rng, 50, 120)(chips)
	}
	rev := cleanLink()
	s := NewSender(fwd, rev, 1, 2, Config{})
	payloads := [][]byte{payloadOf(rng, 400), payloadOf(rng, 400), payloadOf(rng, 400)}
	got, st, err := s.TransferWindow(payloads)
	if err != nil {
		t.Fatal(err)
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("payload %d mismatch", i)
		}
	}
	if corrupted != 3 {
		t.Fatalf("%d data frames corrupted, want 3", corrupted)
	}
	if st.Rounds < 1 || st.RetxAirBytes == 0 {
		t.Fatalf("no recovery happened: %+v", st)
	}
}

func TestTransferWindowAmortizesControlOverhead(t *testing.T) {
	// The Sec. 5.2 claim: concatenating feedback/retransmissions across a
	// window costs fewer control air bytes than per-packet transfers under
	// identical per-packet damage.
	const n = 6
	mkLinks := func(seed uint64) (*chipLink, *chipLink) {
		rng := stats.NewRNG(seed)
		fwd := &chipLink{rx: frame.NewReceiver(phy.HardDecoder{})}
		large := 0
		fwd.corrupt = func(chips []byte) []byte {
			// Corrupt exactly the n data frames: they are the first n
			// large frames on the forward link in both flows (the batched
			// response is also large but comes after all n).
			if len(chips) < frame.AirChips(300) || large >= n {
				return chips
			}
			large++
			return burstCorruptor(rng, 60, 100)(chips)
		}
		return fwd, cleanLink()
	}
	payloads := make([][]byte, n)
	prng := stats.NewRNG(32)
	for i := range payloads {
		payloads[i] = payloadOf(prng, 400)
	}

	fwd, rev := mkLinks(33)
	sw := NewSender(fwd, rev, 1, 2, Config{})
	_, windowStats, err := sw.TransferWindow(payloads)
	if err != nil {
		t.Fatal(err)
	}

	fwd2, rev2 := mkLinks(33)
	sp := NewSender(fwd2, rev2, 1, 2, Config{})
	var perPacket Stats
	for _, p := range payloads {
		_, st, err := sp.Transfer(p)
		if err != nil {
			t.Fatal(err)
		}
		perPacket.FeedbackAirBytes += st.FeedbackAirBytes
		perPacket.RetxAirBytes += st.RetxAirBytes
		perPacket.DataAirBytes += st.DataAirBytes
	}
	windowCtl := windowStats.FeedbackAirBytes + windowStats.RetxAirBytes
	perPktCtl := perPacket.FeedbackAirBytes + perPacket.RetxAirBytes
	if windowCtl >= perPktCtl {
		t.Errorf("windowed control bytes %d not below per-packet %d", windowCtl, perPktCtl)
	}
	t.Logf("control air bytes: windowed %d vs per-packet %d (%.0f%% saved)",
		windowCtl, perPktCtl, 100*(1-float64(windowCtl)/float64(perPktCtl)))
}

func TestTransferWindowEmpty(t *testing.T) {
	s := NewSender(cleanLink(), cleanLink(), 1, 2, Config{})
	got, _, err := s.TransferWindow(nil)
	if err != nil || len(got) != 0 {
		t.Errorf("empty window: %v, %d", err, len(got))
	}
}

func TestTransferChunkCapCompletes(t *testing.T) {
	// Five scattered burst errors want five retransmission chunks; a
	// MaxChunks budget of 2 forces coalesced requests. The transfer must
	// still complete exactly, just with a few extra forward-link symbols.
	mk := func(cap int) (got []byte, payload []byte, st Stats, err error) {
		rng := stats.NewRNG(31)
		var corrupters []func([]byte) []byte
		for _, lo := range []int{20, 60, 100, 140, 180} {
			corrupters = append(corrupters, burstCorruptor(rng, lo, lo+4))
		}
		all := func(chips []byte) []byte {
			for _, c := range corrupters {
				chips = c(chips)
			}
			return chips
		}
		fwd := &chipLink{
			rx:      frame.NewReceiver(phy.HardDecoder{}),
			corrupt: onceCorruptor(1, all),
		}
		s := NewSender(fwd, cleanLink(), 1, 2, Config{MaxChunks: cap})
		payload = payloadOf(rng, 250)
		got, st, err = s.Transfer(payload)
		return
	}

	got, payload, st, err := mk(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch under chunk cap")
	}
	if st.ChunkCaps == 0 {
		t.Error("cap never engaged despite scattered losses")
	}

	_, _, free, err := mk(0)
	if err != nil {
		t.Fatal(err)
	}
	if free.ChunkCaps != 0 {
		t.Errorf("uncapped transfer counted %d chunk caps", free.ChunkCaps)
	}
}
