package pparq

import (
	"bytes"
	"testing"

	"ppr/internal/core/chunkdp"
	"ppr/internal/core/feedback"
	"ppr/internal/frame"
	"ppr/internal/phy"
	"ppr/internal/stats"
)

// pathologicalRequest builds a feedback request with numSymbols/2 alternating
// single-symbol chunks — the worst case for the gamma-coded chunk list,
// whose encoding outgrows a control frame for large packets.
func pathologicalRequest(numSymbols int) feedback.Request {
	req := feedback.Request{Seq: 7, NumSymbols: numSymbols}
	for s := 0; s+1 < numSymbols; s += 2 {
		req.Chunks = append(req.Chunks, chunkdp.Chunk{StartSym: s, EndSym: s + 1})
	}
	for range feedback.Segments(numSymbols, req.Chunks) {
		req.SegChecksums = append(req.SegChecksums, 0xdead)
	}
	return req
}

func TestClampRequestOversized(t *testing.T) {
	numSymbols := frame.MaxPayload * 2 // a max-size packet's symbol count
	req := pathologicalRequest(numSymbols)
	if bits := feedback.RequestBits(req, feedback.DefaultChecksumBits); bits/8 <= MaxControlBody {
		t.Fatalf("pathological request fits in %d bits; test needs an oversized one", bits)
	}
	clamped := ClampRequest(req, feedback.DefaultChecksumBits)
	if got := len(clamped.Encode(feedback.DefaultChecksumBits)); got > MaxControlBody {
		t.Fatalf("clamped request still %d bytes", got)
	}
	// The degenerate request asks for everything, so no progress is lost —
	// only precision.
	if len(clamped.Chunks) != 1 || clamped.Chunks[0].StartSym != 0 || clamped.Chunks[0].EndSym != numSymbols {
		t.Errorf("clamped request should cover the whole packet, got %+v", clamped.Chunks)
	}
}

func TestClampRequestPassThrough(t *testing.T) {
	req := feedback.Request{Seq: 1, NumSymbols: 500,
		Chunks:       []chunkdp.Chunk{{StartSym: 10, EndSym: 60}},
		SegChecksums: []uint32{1, 2}}
	clamped := ClampRequest(req, feedback.DefaultChecksumBits)
	if len(clamped.Chunks) != 1 || clamped.Chunks[0] != req.Chunks[0] {
		t.Errorf("small request was rewritten: %+v", clamped)
	}
	ack := feedback.Request{Seq: 2, NumSymbols: 500, CRCVerified: true}
	if got := ClampRequest(ack, feedback.DefaultChecksumBits); !got.CRCVerified {
		t.Error("ACK request must pass through untouched")
	}
}

// TestTransferMaxPayloadFullLoss drives a maximum-size payload whose first
// copy loses its entire payload region. The receiver's request degenerates
// to "resend everything", and the full retransmission cannot fit in one
// control frame — capResponse must split it across rounds instead of
// panicking in frame.New, and the transfer must still complete.
func TestTransferMaxPayloadFullLoss(t *testing.T) {
	rng := stats.NewRNG(11)
	fwd := &chipLink{
		rx:      frame.NewReceiver(phy.HardDecoder{}),
		corrupt: onceCorruptor(1, burstCorruptor(rng, 0, frame.MaxPayload)),
	}
	rev := cleanLink()
	s := NewSender(fwd, rev, 1, 2, Config{})
	payload := payloadOf(rng, frame.MaxPayload)
	got, st, err := s.Transfer(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch after full-loss recovery")
	}
	if st.Rounds < 2 {
		t.Errorf("full 1500-byte retransmission fit one frame (rounds=%d); the cap should force a second round", st.Rounds)
	}
	if st.VerifiedSymbols != frame.MaxPayload*2 {
		t.Errorf("VerifiedSymbols = %d, want %d", st.VerifiedSymbols, frame.MaxPayload*2)
	}
}

// TestCapResponseShedsToFit pins capResponse's contract directly: an
// oversized response shrinks until it encodes within MaxControlBody, and
// the shed symbols reappear as checksummed complement segments.
func TestCapResponseShedsToFit(t *testing.T) {
	numSymbols := frame.MaxPayload * 2
	syms := make([]byte, numSymbols)
	for i := range syms {
		syms[i] = byte(i) & 0x0f
	}
	s := &Sender{cfg: Config{}.fill()}
	resp := feedback.Response{Seq: 3, NumSymbols: numSymbols,
		Chunks: []feedback.RespChunk{{Start: 0, Syms: append([]byte(nil), syms...)}}}
	s.fillSegChecksums(&resp, syms)
	s.capResponse(&resp, syms)
	enc := resp.Encode(s.cfg.LambdaC)
	if len(enc) > MaxControlBody {
		t.Fatalf("capped response still %d bytes", len(enc))
	}
	kept := 0
	for _, c := range resp.Chunks {
		kept += len(c.Syms)
	}
	if kept == 0 || kept >= numSymbols {
		t.Errorf("capped response keeps %d of %d symbols; want a proper nonzero subset", kept, numSymbols)
	}
	// The capped response must still decode, with its complement checksums
	// intact.
	dec, err := feedback.DecodeResponse(enc, s.cfg.LambdaC)
	if err != nil {
		t.Fatalf("capped response does not round-trip: %v", err)
	}
	if len(dec.SegChecksums) == 0 {
		t.Error("shed symbols produced no complement checksums")
	}
}
