package feedback

import (
	"bytes"
	"reflect"
	"testing"

	"ppr/internal/core/chunkdp"
	"ppr/internal/stats"
)

func TestSegmentsComplement(t *testing.T) {
	chunks := []chunkdp.Chunk{
		{StartSym: 10, EndSym: 20},
		{StartSym: 30, EndSym: 35},
	}
	segs := Segments(50, chunks)
	want := []Segment{{0, 10}, {20, 10}, {35, 15}}
	if !reflect.DeepEqual(segs, want) {
		t.Errorf("segments %+v, want %+v", segs, want)
	}
}

func TestSegmentsEdges(t *testing.T) {
	// Chunk at the very start and very end: no leading/trailing segment.
	chunks := []chunkdp.Chunk{{StartSym: 0, EndSym: 5}, {StartSym: 45, EndSym: 50}}
	segs := Segments(50, chunks)
	want := []Segment{{5, 40}}
	if !reflect.DeepEqual(segs, want) {
		t.Errorf("segments %+v, want %+v", segs, want)
	}
	// No chunks: one segment covering everything.
	if segs := Segments(10, nil); !reflect.DeepEqual(segs, []Segment{{0, 10}}) {
		t.Errorf("no-chunk segments %+v", segs)
	}
	// Chunks covering everything: no segments.
	if segs := Segments(10, []chunkdp.Chunk{{StartSym: 0, EndSym: 10}}); segs != nil {
		t.Errorf("full-chunk segments %+v", segs)
	}
}

func TestSegmentsChunksCoverage(t *testing.T) {
	// Segments + chunks together tile the packet exactly.
	rng := stats.NewRNG(1)
	for trial := 0; trial < 100; trial++ {
		n := 20 + rng.Intn(200)
		var chunks []chunkdp.Chunk
		pos := 0
		for pos < n-4 && rng.Bool(0.7) {
			start := pos + rng.Intn(5)
			end := start + 1 + rng.Intn(6)
			if end > n {
				break
			}
			chunks = append(chunks, chunkdp.Chunk{StartSym: start, EndSym: end})
			pos = end + 1
		}
		covered := make([]bool, n)
		for _, c := range chunks {
			for i := c.StartSym; i < c.EndSym; i++ {
				covered[i] = true
			}
		}
		for _, s := range Segments(n, chunks) {
			for i := s.Start; i < s.End(); i++ {
				if covered[i] {
					t.Fatalf("trial %d: symbol %d double-covered", trial, i)
				}
				covered[i] = true
			}
		}
		for i, c := range covered {
			if !c {
				t.Fatalf("trial %d: symbol %d uncovered", trial, i)
			}
		}
	}
}

func TestChecksumWidth(t *testing.T) {
	cases := []struct{ syms, lambdaC, want int }{
		{100, 32, 32}, // long segment clamps to λC
		{4, 32, 16},   // short segment: its own bit length
		{1, 32, 4},
		{0, 32, 1}, // degenerate: at least one bit
		{8, 16, 16},
	}
	for _, c := range cases {
		if got := ChecksumWidth(c.syms, c.lambdaC); got != c.want {
			t.Errorf("ChecksumWidth(%d,%d) = %d, want %d", c.syms, c.lambdaC, got, c.want)
		}
	}
}

func randomSymbols(rng *stats.RNG, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(16))
	}
	return s
}

func makeRequest(rng *stats.RNG, numSymbols int) Request {
	var chunks []chunkdp.Chunk
	pos := 0
	for pos < numSymbols-6 {
		start := pos + 1 + rng.Intn(8)
		end := start + 1 + rng.Intn(10)
		if end >= numSymbols {
			break
		}
		chunks = append(chunks, chunkdp.Chunk{StartSym: start, EndSym: end})
		pos = end
		if rng.Bool(0.4) {
			break
		}
	}
	r := Request{Seq: uint16(rng.Intn(65536)), NumSymbols: numSymbols, Chunks: chunks}
	for _, s := range Segments(numSymbols, chunks) {
		syms := randomSymbols(rng, s.Len)
		r.SegChecksums = append(r.SegChecksums, SymbolChecksum(syms, ChecksumWidth(s.Len, DefaultChecksumBits)))
	}
	return r
}

func requestsEqual(a, b Request) bool {
	if a.Seq != b.Seq || a.NumSymbols != b.NumSymbols || a.CRCVerified != b.CRCVerified {
		return false
	}
	if len(a.Chunks) != len(b.Chunks) {
		return false
	}
	for i := range a.Chunks {
		if a.Chunks[i].StartSym != b.Chunks[i].StartSym || a.Chunks[i].EndSym != b.Chunks[i].EndSym {
			return false
		}
	}
	return reflect.DeepEqual(a.SegChecksums, b.SegChecksums)
}

func TestRequestRoundTrip(t *testing.T) {
	rng := stats.NewRNG(2)
	for trial := 0; trial < 300; trial++ {
		r := makeRequest(rng, 20+rng.Intn(400))
		enc := r.Encode(DefaultChecksumBits)
		dec, err := DecodeRequest(enc, DefaultChecksumBits)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !requestsEqual(r, dec) {
			t.Fatalf("trial %d:\n sent %+v\n got  %+v", trial, r, dec)
		}
	}
}

func TestRequestACKFastPath(t *testing.T) {
	r := Request{Seq: 77, NumSymbols: 500, CRCVerified: true}
	enc := r.Encode(DefaultChecksumBits)
	if len(enc) > 5 {
		t.Errorf("plain ACK should be ~33 bits, got %d bytes", len(enc))
	}
	dec, err := DecodeRequest(enc, DefaultChecksumBits)
	if err != nil || !dec.CRCVerified || dec.Seq != 77 {
		t.Errorf("ACK round trip: %+v, %v", dec, err)
	}
}

func TestRequestBitsMatchesEncoding(t *testing.T) {
	rng := stats.NewRNG(3)
	for trial := 0; trial < 100; trial++ {
		r := makeRequest(rng, 50+rng.Intn(300))
		bits := RequestBits(r, DefaultChecksumBits)
		enc := r.Encode(DefaultChecksumBits)
		// Encoded bytes = ceil(bits/8).
		if want := (bits + 7) / 8; len(enc) != want {
			t.Fatalf("trial %d: RequestBits %d predicts %d bytes, encoding is %d",
				trial, bits, want, len(enc))
		}
	}
}

func TestDecodeRequestRejectsGarbage(t *testing.T) {
	rng := stats.NewRNG(4)
	rejected := 0
	for trial := 0; trial < 200; trial++ {
		garbage := make([]byte, rng.Intn(20))
		for i := range garbage {
			garbage[i] = byte(rng.Intn(256))
		}
		if _, err := DecodeRequest(garbage, DefaultChecksumBits); err != nil {
			rejected++
		}
	}
	if rejected == 0 {
		t.Error("decoder accepted all garbage inputs")
	}
	if _, err := DecodeRequest(nil, DefaultChecksumBits); err == nil {
		t.Error("decoder accepted empty input")
	}
}

func TestDecodeRequestRejectsOutOfRangeChunk(t *testing.T) {
	r := Request{
		Seq: 1, NumSymbols: 10,
		Chunks: []chunkdp.Chunk{{StartSym: 5, EndSym: 30}}, // past packet end
	}
	for _, s := range Segments(30, r.Chunks) {
		r.SegChecksums = append(r.SegChecksums, SymbolChecksum(randomSymbols(stats.NewRNG(0), s.Len), ChecksumWidth(s.Len, 32)))
	}
	enc := r.Encode(DefaultChecksumBits)
	if _, err := DecodeRequest(enc, DefaultChecksumBits); err == nil {
		t.Error("accepted chunk exceeding NumSymbols")
	}
}

func makeResponse(rng *stats.RNG, numSymbols int) Response {
	var chunks []RespChunk
	pos := 0
	for pos < numSymbols-6 {
		start := pos + 1 + rng.Intn(8)
		length := 1 + rng.Intn(10)
		if start+length >= numSymbols {
			break
		}
		chunks = append(chunks, RespChunk{Start: start, Syms: randomSymbols(rng, length)})
		pos = start + length
		if rng.Bool(0.4) {
			break
		}
	}
	r := Response{Seq: uint16(rng.Intn(65536)), NumSymbols: numSymbols, Chunks: chunks}
	var asChunks []chunkdp.Chunk
	for _, c := range chunks {
		asChunks = append(asChunks, chunkdp.Chunk{StartSym: c.Start, EndSym: c.End()})
	}
	for _, s := range Segments(numSymbols, asChunks) {
		r.SegChecksums = append(r.SegChecksums, SymbolChecksum(randomSymbols(rng, s.Len), ChecksumWidth(s.Len, DefaultChecksumBits)))
	}
	return r
}

func TestResponseRoundTrip(t *testing.T) {
	rng := stats.NewRNG(5)
	for trial := 0; trial < 300; trial++ {
		r := makeResponse(rng, 20+rng.Intn(400))
		enc := r.Encode(DefaultChecksumBits)
		dec, err := DecodeResponse(enc, DefaultChecksumBits)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if dec.Seq != r.Seq || dec.NumSymbols != r.NumSymbols {
			t.Fatalf("trial %d: header mismatch", trial)
		}
		if len(dec.Chunks) != len(r.Chunks) {
			t.Fatalf("trial %d: chunk count %d != %d", trial, len(dec.Chunks), len(r.Chunks))
		}
		for i := range r.Chunks {
			if dec.Chunks[i].Start != r.Chunks[i].Start || !bytes.Equal(dec.Chunks[i].Syms, r.Chunks[i].Syms) {
				t.Fatalf("trial %d: chunk %d mismatch", trial, i)
			}
		}
		if !reflect.DeepEqual(dec.SegChecksums, r.SegChecksums) {
			t.Fatalf("trial %d: checksums mismatch", trial)
		}
	}
}

func TestSymbolChecksumSensitivity(t *testing.T) {
	rng := stats.NewRNG(6)
	syms := randomSymbols(rng, 40)
	w := ChecksumWidth(len(syms), 32)
	orig := SymbolChecksum(syms, w)
	changed := 0
	for i := range syms {
		mod := append([]byte(nil), syms...)
		mod[i] ^= 0x1
		if SymbolChecksum(mod, w) != orig {
			changed++
		}
	}
	if changed != len(syms) {
		t.Errorf("only %d of %d single-symbol changes altered the checksum", changed, len(syms))
	}
}

func TestCompactnessVsNaiveEncoding(t *testing.T) {
	// The gamma-coded format must beat a naive fixed 2×16-bit-per-range
	// encoding for typical small chunk sets — the whole point of Sec. 5's
	// careful feedback design.
	rng := stats.NewRNG(7)
	numSymbols := 3000 // 1500-byte packet
	var chunks []chunkdp.Chunk
	pos := 100
	for i := 0; i < 5; i++ {
		end := pos + 10 + rng.Intn(30)
		chunks = append(chunks, chunkdp.Chunk{StartSym: pos, EndSym: end})
		pos = end + 200 + rng.Intn(200)
	}
	r := Request{Seq: 1, NumSymbols: numSymbols, Chunks: chunks}
	for _, s := range Segments(numSymbols, chunks) {
		r.SegChecksums = append(r.SegChecksums, 0xabc&((1<<ChecksumWidth(s.Len, 32))-1))
	}
	gammaBits := RequestBits(r, 32)
	naiveBits := 33 + len(chunks)*32 + len(r.SegChecksums)*32
	if gammaBits >= naiveBits {
		t.Errorf("gamma encoding %d bits not smaller than naive %d", gammaBits, naiveBits)
	}
}
