// Package feedback implements the bit-exact wire format for PP-ARQ's
// reverse-link feedback and forward-link partial retransmissions (Sec. 5).
//
// The receiver's Request names the chunks it wants retransmitted —
// Elias-gamma coded offsets (delta from the previous chunk's end) and
// lengths, realising the ~log-sized fields of the Eq. 4 cost model — and
// carries a truncated checksum of every good segment so the sender can
// verify them ("the receiver also sends ... a checksum of [the good run] to
// the sender, so that the sender can verify that it received the good run
// correctly").
//
// The sender's Response carries the retransmitted symbols for each chunk
// plus checksums of the segments it did not retransmit, "so that the
// receiver can be certain that the bits in the non-retransmitted portions
// are correct".
//
// Segment boundaries are never transmitted: both sides derive them as the
// complement of the chunk list, so the only overhead for a good segment is
// its min(λᵍ, λC)-bit checksum.
package feedback

import (
	"errors"
	"fmt"

	"ppr/internal/bitutil"
	"ppr/internal/core/chunkdp"
	"ppr/internal/crcutil"
)

// DefaultChecksumBits is λC, the cap on per-segment checksum width.
const DefaultChecksumBits = 32

// Segment is a contiguous symbol range the receiver believes is good.
type Segment struct {
	// Start is the first symbol index of the segment.
	Start int
	// Len is the segment length in symbols (> 0).
	Len int
}

// End returns one past the segment's last symbol.
func (s Segment) End() int { return s.Start + s.Len }

// Segments returns the good segments of a packet of numSymbols symbols as
// the ordered complement of the chunk list. Empty gaps produce no segment.
func Segments(numSymbols int, chunks []chunkdp.Chunk) []Segment {
	var out []Segment
	pos := 0
	for _, c := range chunks {
		if c.StartSym > pos {
			out = append(out, Segment{Start: pos, Len: c.StartSym - pos})
		}
		pos = c.EndSym
	}
	if pos < numSymbols {
		out = append(out, Segment{Start: pos, Len: numSymbols - pos})
	}
	return out
}

// ChecksumWidth returns the wire width in bits of a segment checksum:
// min(λᵍ in bits, λC), clamped to at least 1 bit.
func ChecksumWidth(segSymbols, lambdaC int) int {
	w := segSymbols * 4
	if w > lambdaC {
		w = lambdaC
	}
	if w < 1 {
		w = 1
	}
	return w
}

// SymbolChecksum computes the truncated checksum of a symbol range (one
// byte per 4-bit symbol) at the given width.
func SymbolChecksum(syms []byte, width int) uint32 {
	return crcutil.Truncated(syms, width)
}

// Request is the receiver's feedback for one data packet.
type Request struct {
	// Seq identifies the data packet being acknowledged.
	Seq uint16
	// NumSymbols is the packet length in symbols, from the verified
	// header/trailer.
	NumSymbols int
	// CRCVerified short-circuits everything: the whole packet checked out,
	// so the feedback is a plain ACK ("which may be empty, if the receiver
	// can verify the forward link packet's checksum", Sec. 5.2).
	CRCVerified bool
	// Chunks are the symbol ranges to retransmit, in order.
	Chunks []chunkdp.Chunk
	// SegChecksums holds one truncated checksum per good segment (the
	// complement of Chunks), in segment order. Unused when CRCVerified.
	SegChecksums []uint32
}

// Encode serializes the request. lambdaC must match the decoder's.
func (r Request) Encode(lambdaC int) []byte {
	var w bitutil.Writer
	w.WriteBits(uint64(r.Seq), 16)
	w.WriteBits(uint64(r.NumSymbols), 16)
	w.WriteBit(r.CRCVerified)
	if r.CRCVerified {
		return w.Bytes()
	}
	w.WriteGamma(uint64(len(r.Chunks)) + 1)
	prevEnd := 0
	for _, c := range r.Chunks {
		w.WriteGamma(uint64(c.StartSym-prevEnd) + 1)
		w.WriteGamma(uint64(c.Len()))
		prevEnd = c.EndSym
	}
	segs := Segments(r.NumSymbols, r.Chunks)
	for i, s := range segs {
		w.WriteBits(uint64(r.SegChecksums[i]), ChecksumWidth(s.Len, lambdaC))
	}
	return w.Bytes()
}

// errTruncated is returned for any malformed or short feedback buffer.
var errTruncated = errors.New("feedback: truncated or malformed message")

// DecodeRequest parses a request and validates its structure.
func DecodeRequest(data []byte, lambdaC int) (Request, error) {
	rd := bitutil.NewReader(data)
	var r Request
	r.Seq = uint16(rd.ReadBits(16))
	r.NumSymbols = int(rd.ReadBits(16))
	r.CRCVerified = rd.ReadBit()
	if err := rd.Err(); err != nil {
		return Request{}, errTruncated
	}
	if r.CRCVerified {
		return r, nil
	}
	n := rd.ReadGamma()
	if rd.Err() != nil || n == 0 {
		return Request{}, errTruncated
	}
	nChunks := int(n - 1)
	prevEnd := 0
	for i := 0; i < nChunks; i++ {
		delta := rd.ReadGamma()
		length := rd.ReadGamma()
		if rd.Err() != nil || delta == 0 || length == 0 {
			return Request{}, errTruncated
		}
		start := prevEnd + int(delta) - 1
		end := start + int(length)
		if end > r.NumSymbols {
			return Request{}, fmt.Errorf("feedback: chunk %d [%d,%d) exceeds packet of %d symbols", i, start, end, r.NumSymbols)
		}
		r.Chunks = append(r.Chunks, chunkdp.Chunk{StartSym: start, EndSym: end})
		prevEnd = end
	}
	for _, s := range Segments(r.NumSymbols, r.Chunks) {
		r.SegChecksums = append(r.SegChecksums, uint32(rd.ReadBits(ChecksumWidth(s.Len, lambdaC))))
	}
	if rd.Err() != nil {
		return Request{}, errTruncated
	}
	return r, nil
}

// RespChunk is one retransmitted range in a Response.
type RespChunk struct {
	// Start is the chunk's first symbol index.
	Start int
	// Syms holds the retransmitted symbols, one byte per 4-bit symbol.
	Syms []byte
}

// End returns one past the chunk's last symbol.
func (c RespChunk) End() int { return c.Start + len(c.Syms) }

// Response is the sender's partial retransmission for one data packet.
type Response struct {
	// Seq identifies the original data packet.
	Seq uint16
	// NumSymbols is the packet length in symbols.
	NumSymbols int
	// Chunks carry the retransmitted symbol ranges (the requested chunks,
	// plus any good segment whose receiver checksum failed sender-side
	// verification — a detected SoftPHY miss).
	Chunks []RespChunk
	// SegChecksums are the sender's checksums of the non-retransmitted
	// segments, letting the receiver verify its good runs.
	SegChecksums []uint32
}

// Encode serializes the response.
func (r Response) Encode(lambdaC int) []byte {
	var w bitutil.Writer
	w.WriteBits(uint64(r.Seq), 16)
	w.WriteBits(uint64(r.NumSymbols), 16)
	w.WriteGamma(uint64(len(r.Chunks)) + 1)
	prevEnd := 0
	var asChunks []chunkdp.Chunk
	for _, c := range r.Chunks {
		w.WriteGamma(uint64(c.Start-prevEnd) + 1)
		w.WriteGamma(uint64(len(c.Syms)))
		for _, s := range c.Syms {
			w.WriteBits(uint64(s&0x0f), 4)
		}
		prevEnd = c.End()
		asChunks = append(asChunks, chunkdp.Chunk{StartSym: c.Start, EndSym: c.End()})
	}
	for i, s := range Segments(r.NumSymbols, asChunks) {
		w.WriteBits(uint64(r.SegChecksums[i]), ChecksumWidth(s.Len, lambdaC))
	}
	return w.Bytes()
}

// DecodeResponse parses a response and validates its structure.
func DecodeResponse(data []byte, lambdaC int) (Response, error) {
	rd := bitutil.NewReader(data)
	var r Response
	r.Seq = uint16(rd.ReadBits(16))
	r.NumSymbols = int(rd.ReadBits(16))
	n := rd.ReadGamma()
	if rd.Err() != nil || n == 0 {
		return Response{}, errTruncated
	}
	nChunks := int(n - 1)
	prevEnd := 0
	var asChunks []chunkdp.Chunk
	for i := 0; i < nChunks; i++ {
		delta := rd.ReadGamma()
		length := rd.ReadGamma()
		if rd.Err() != nil || delta == 0 || length == 0 {
			return Response{}, errTruncated
		}
		start := prevEnd + int(delta) - 1
		end := start + int(length)
		if end > r.NumSymbols {
			return Response{}, fmt.Errorf("feedback: response chunk %d [%d,%d) exceeds packet of %d symbols", i, start, end, r.NumSymbols)
		}
		syms := make([]byte, length)
		for j := range syms {
			syms[j] = byte(rd.ReadBits(4))
		}
		r.Chunks = append(r.Chunks, RespChunk{Start: start, Syms: syms})
		asChunks = append(asChunks, chunkdp.Chunk{StartSym: start, EndSym: end})
		prevEnd = end
	}
	for _, s := range Segments(r.NumSymbols, asChunks) {
		r.SegChecksums = append(r.SegChecksums, uint32(rd.ReadBits(ChecksumWidth(s.Len, lambdaC))))
	}
	if rd.Err() != nil {
		return Response{}, errTruncated
	}
	return r, nil
}

// RequestBits returns the exact encoded size of a request in bits, used by
// experiments to account feedback overhead without materialising packets.
func RequestBits(r Request, lambdaC int) int {
	if r.CRCVerified {
		return 33
	}
	bits := 33 + bitutil.GammaLen(uint64(len(r.Chunks))+1)
	prevEnd := 0
	for _, c := range r.Chunks {
		bits += bitutil.GammaLen(uint64(c.StartSym-prevEnd)+1) + bitutil.GammaLen(uint64(c.Len()))
		prevEnd = c.EndSym
	}
	for _, s := range Segments(r.NumSymbols, r.Chunks) {
		bits += ChecksumWidth(s.Len, lambdaC)
	}
	return bits
}
