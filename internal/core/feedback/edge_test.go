package feedback

import (
	"testing"

	"ppr/internal/core/chunkdp"
	"ppr/internal/frame"
)

// TestAllBadPacketRoundTrip covers the degenerate feedback for a packet
// whose every symbol is bad: one chunk spanning the packet, no segments,
// therefore no checksums on the wire.
func TestAllBadPacketRoundTrip(t *testing.T) {
	const n = 500
	req := Request{Seq: 9, NumSymbols: n,
		Chunks: []chunkdp.Chunk{{StartSym: 0, EndSym: n}}}
	if segs := Segments(n, req.Chunks); len(segs) != 0 {
		t.Fatalf("all-bad packet has %d segments, want 0", len(segs))
	}
	enc := req.Encode(DefaultChecksumBits)
	dec, err := DecodeRequest(enc, DefaultChecksumBits)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Chunks) != 1 || dec.Chunks[0].StartSym != 0 || dec.Chunks[0].EndSym != n {
		t.Errorf("decoded chunks %+v", dec.Chunks)
	}
	if len(dec.SegChecksums) != 0 {
		t.Errorf("decoded %d checksums for zero segments", len(dec.SegChecksums))
	}
	// The all-bad request is tiny regardless of packet size: this is what
	// pparq.ClampRequest relies on.
	if len(enc) > 8 {
		t.Errorf("all-bad request encodes to %d bytes; expected a handful", len(enc))
	}
}

// TestZeroChunksRoundTrip covers the opposite degenerate case: nothing to
// retransmit but the packet CRC did not verify (the receiver believes every
// symbol is good and asks only for the one whole-packet segment checksum).
func TestZeroChunksRoundTrip(t *testing.T) {
	const n = 300
	req := Request{Seq: 4, NumSymbols: n, SegChecksums: []uint32{0xabcdef01}}
	enc := req.Encode(DefaultChecksumBits)
	dec, err := DecodeRequest(enc, DefaultChecksumBits)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Chunks) != 0 {
		t.Errorf("decoded %d chunks, want 0", len(dec.Chunks))
	}
	if len(dec.SegChecksums) != 1 || dec.SegChecksums[0] != 0xabcdef01 {
		t.Errorf("decoded checksums %v", dec.SegChecksums)
	}

	// Response counterpart: no retransmitted chunks, one checksummed segment.
	resp := Response{Seq: 4, NumSymbols: n, SegChecksums: []uint32{0x55aa55aa}}
	rdec, err := DecodeResponse(resp.Encode(DefaultChecksumBits), DefaultChecksumBits)
	if err != nil {
		t.Fatal(err)
	}
	if len(rdec.Chunks) != 0 || len(rdec.SegChecksums) != 1 || rdec.SegChecksums[0] != 0x55aa55aa {
		t.Errorf("decoded response %+v", rdec)
	}
}

// TestOversizedFeedbackExceedsControlFrame documents that the codec itself
// does not bound encoded size: a pathological chunk list outgrows the
// largest payload a control frame can carry. (The protocol layer clamps
// such requests — pparq.ClampRequest — before framing; this test pins the
// reason that clamp exists.)
func TestOversizedFeedbackExceedsControlFrame(t *testing.T) {
	numSymbols := frame.MaxPayload * 2
	req := Request{Seq: 1, NumSymbols: numSymbols}
	for s := 0; s+1 < numSymbols; s += 2 {
		req.Chunks = append(req.Chunks, chunkdp.Chunk{StartSym: s, EndSym: s + 1})
	}
	for range Segments(numSymbols, req.Chunks) {
		req.SegChecksums = append(req.SegChecksums, 1)
	}
	bits := RequestBits(req, DefaultChecksumBits)
	if bits/8 <= frame.MaxPayload {
		t.Fatalf("pathological request fits (%d bits); the clamp in pparq would be dead code", bits)
	}
	// The oversized encoding must still round-trip: size is the frame
	// layer's constraint, not a codec invariant.
	dec, err := DecodeRequest(req.Encode(DefaultChecksumBits), DefaultChecksumBits)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Chunks) != len(req.Chunks) {
		t.Errorf("decoded %d chunks, want %d", len(dec.Chunks), len(req.Chunks))
	}
}
