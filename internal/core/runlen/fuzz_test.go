package runlen

import (
	"testing"

	"ppr/internal/core/softphy"
)

// FuzzRunsRoundTrip drives FromLabels/Expand with arbitrary label sequences
// (one bit per byte of fuzz input) and checks the structural invariants: the
// runs validate, round-trip to the original labels, and the Bad/Good
// partitions tile exactly the symbols of their labels.
func FuzzRunsRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 1, 1})
	f.Add([]byte{0, 1, 0, 1, 0})
	f.Add([]byte{1, 0, 0, 1, 1, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		labels := make([]softphy.Label, len(data))
		for i, b := range data {
			if b&1 == 1 {
				labels[i] = softphy.Bad
			}
		}
		rs := FromLabels(labels)
		if err := rs.Validate(); err != nil {
			t.Fatalf("invalid runs from labels: %v", err)
		}
		round := rs.Expand()
		if len(round) != len(labels) {
			t.Fatalf("round-trip length %d, want %d", len(round), len(labels))
		}
		for i := range labels {
			if round[i] != labels[i] {
				t.Fatalf("label %d changed across round-trip", i)
			}
		}
		badSyms, goodSyms := 0, 0
		for _, r := range rs.Bad() {
			badSyms += r.Len
		}
		for _, r := range rs.Good() {
			goodSyms += r.Len
		}
		wantBad := 0
		for _, l := range labels {
			if l == softphy.Bad {
				wantBad++
			}
		}
		if badSyms != wantBad || goodSyms != len(labels)-wantBad {
			t.Fatalf("partition covers %d bad + %d good of %d symbols (%d bad expected)",
				badSyms, goodSyms, len(labels), wantBad)
		}
	})
}
