package runlen

import (
	"testing"
	"testing/quick"

	"ppr/internal/core/softphy"
	"ppr/internal/stats"
)

func labelsFromBits(bits []bool) []softphy.Label {
	out := make([]softphy.Label, len(bits))
	for i, b := range bits {
		if b {
			out[i] = softphy.Bad
		}
	}
	return out
}

func TestFromLabelsBasic(t *testing.T) {
	// G G B B B G
	labels := labelsFromBits([]bool{false, false, true, true, true, false})
	rs := FromLabels(labels)
	if len(rs.All) != 3 {
		t.Fatalf("got %d runs: %+v", len(rs.All), rs.All)
	}
	want := []Run{
		{softphy.Good, 0, 2},
		{softphy.Bad, 2, 3},
		{softphy.Good, 5, 1},
	}
	for i, w := range want {
		if rs.All[i] != w {
			t.Errorf("run %d: got %+v want %+v", i, rs.All[i], w)
		}
	}
}

func TestFromLabelsEmpty(t *testing.T) {
	rs := FromLabels(nil)
	if len(rs.All) != 0 || rs.NumSymbols != 0 {
		t.Errorf("empty labels gave %+v", rs)
	}
	if err := rs.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFromLabelsAllSame(t *testing.T) {
	labels := make([]softphy.Label, 100)
	rs := FromLabels(labels)
	if len(rs.All) != 1 || rs.All[0].Len != 100 || rs.All[0].Label != softphy.Good {
		t.Errorf("all-good gave %+v", rs.All)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(bits []bool) bool {
		labels := labelsFromBits(bits)
		rs := FromLabels(labels)
		if rs.Validate() != nil {
			return false
		}
		back := rs.Expand()
		if len(back) != len(labels) {
			return false
		}
		for i := range labels {
			if back[i] != labels[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBadGoodPartition(t *testing.T) {
	rng := stats.NewRNG(1)
	bits := make([]bool, 500)
	for i := range bits {
		bits[i] = rng.Bool(0.3)
	}
	rs := FromLabels(labelsFromBits(bits))
	if len(rs.Bad())+len(rs.Good()) != len(rs.All) {
		t.Error("Bad and Good do not partition All")
	}
	var badSyms int
	for _, r := range rs.Bad() {
		if r.Label != softphy.Bad {
			t.Error("Bad() returned a good run")
		}
		badSyms += r.Len
	}
	wantBad := 0
	for _, b := range bits {
		if b {
			wantBad++
		}
	}
	if badSyms != wantBad {
		t.Errorf("bad symbols %d, want %d", badSyms, wantBad)
	}
}

func TestGapAfterBad(t *testing.T) {
	// B G G B
	labels := labelsFromBits([]bool{true, false, false, true})
	rs := FromLabels(labels)
	bad := rs.Bad()
	if g := rs.GapAfterBad(bad, 0); g != 2 {
		t.Errorf("gap %d, want 2", g)
	}
}

func TestGapAfterBadZeroGapImpossible(t *testing.T) {
	// Adjacent bad runs cannot exist (they'd be one run); gaps are ≥ 1.
	rng := stats.NewRNG(2)
	bits := make([]bool, 300)
	for i := range bits {
		bits[i] = rng.Bool(0.5)
	}
	rs := FromLabels(labelsFromBits(bits))
	bad := rs.Bad()
	for i := 0; i+1 < len(bad); i++ {
		if rs.GapAfterBad(bad, i) < 1 {
			t.Fatal("zero-length gap between distinct bad runs")
		}
	}
}

func TestGapAfterBadPanics(t *testing.T) {
	rs := FromLabels(labelsFromBits([]bool{true}))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rs.GapAfterBad(rs.Bad(), 0)
}

func TestValidateCatchesCorruption(t *testing.T) {
	rs := FromLabels(labelsFromBits([]bool{true, false, true}))
	rs.All[1].Start = 99
	if rs.Validate() == nil {
		t.Error("validate accepted corrupt start")
	}
	rs = FromLabels(labelsFromBits([]bool{true, false}))
	rs.All[1].Label = softphy.Bad
	if rs.Validate() == nil {
		t.Error("validate accepted non-alternating labels")
	}
	rs = FromLabels(labelsFromBits([]bool{true}))
	rs.NumSymbols = 5
	if rs.Validate() == nil {
		t.Error("validate accepted wrong coverage")
	}
}

func TestRunEnd(t *testing.T) {
	r := Run{softphy.Bad, 10, 5}
	if r.End() != 15 {
		t.Errorf("End %d", r.End())
	}
}
