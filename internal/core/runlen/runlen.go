// Package runlen builds the run-length representation of a labelled packet
// (Expr. 2 of the paper): the alternating counts of contiguous "good" and
// "bad" symbols that the PP-ARQ dynamic program operates on.
package runlen

import (
	"fmt"

	"ppr/internal/core/softphy"
)

// Run is one maximal stretch of identically-labelled symbols.
type Run struct {
	// Label is the shared verdict of every symbol in the run.
	Label softphy.Label
	// Start is the index of the run's first symbol.
	Start int
	// Len is the number of symbols in the run (always ≥ 1).
	Len int
}

// End returns one past the run's last symbol.
func (r Run) End() int { return r.Start + r.Len }

// Runs is the run-length representation of one packet.
type Runs struct {
	// All holds every run in symbol order, strictly alternating labels.
	All []Run
	// NumSymbols is the packet length the runs cover.
	NumSymbols int
}

// FromLabels compresses a label sequence into runs.
func FromLabels(labels []softphy.Label) Runs {
	rs := Runs{NumSymbols: len(labels)}
	for i := 0; i < len(labels); {
		j := i + 1
		for j < len(labels) && labels[j] == labels[i] {
			j++
		}
		rs.All = append(rs.All, Run{Label: labels[i], Start: i, Len: j - i})
		i = j
	}
	return rs
}

// Bad returns just the bad runs, in order — the λᵇ of Expr. 2 with their
// positions.
func (rs Runs) Bad() []Run {
	var out []Run
	for _, r := range rs.All {
		if r.Label == softphy.Bad {
			out = append(out, r)
		}
	}
	return out
}

// Good returns just the good runs, in order.
func (rs Runs) Good() []Run {
	var out []Run
	for _, r := range rs.All {
		if r.Label == softphy.Good {
			out = append(out, r)
		}
	}
	return out
}

// GapAfterBad returns, for bad run index i (0-based over Bad()), the length
// of the good run separating it from bad run i+1 — the λᵍᵢ between
// consecutive bad runs that the DP's merge decisions trade against feedback
// overhead. It panics if i is not an interior bad run index.
func (rs Runs) GapAfterBad(bad []Run, i int) int {
	if i < 0 || i+1 >= len(bad) {
		panic(fmt.Sprintf("runlen: GapAfterBad(%d) with %d bad runs", i, len(bad)))
	}
	return bad[i+1].Start - bad[i].End()
}

// Expand reconstructs the label sequence from runs; the inverse of
// FromLabels, used in round-trip tests and by the feedback verifier.
func (rs Runs) Expand() []softphy.Label {
	out := make([]softphy.Label, rs.NumSymbols)
	for _, r := range rs.All {
		for i := r.Start; i < r.End(); i++ {
			out[i] = r.Label
		}
	}
	return out
}

// Validate checks the structural invariants: runs tile [0, NumSymbols)
// exactly, alternate labels, and have positive lengths.
func (rs Runs) Validate() error {
	pos := 0
	for i, r := range rs.All {
		if r.Len <= 0 {
			return fmt.Errorf("runlen: run %d has non-positive length %d", i, r.Len)
		}
		if r.Start != pos {
			return fmt.Errorf("runlen: run %d starts at %d, want %d", i, r.Start, pos)
		}
		if i > 0 && r.Label == rs.All[i-1].Label {
			return fmt.Errorf("runlen: runs %d and %d share label %v", i-1, i, r.Label)
		}
		pos = r.End()
	}
	if pos != rs.NumSymbols {
		return fmt.Errorf("runlen: runs cover %d symbols, want %d", pos, rs.NumSymbols)
	}
	return nil
}
