package frame

import (
	"sort"

	"ppr/internal/bitutil"
	"ppr/internal/phy"
)

// Reception is the receiver's view of one acquired packet: where it lies in
// the chip stream, what the header said, the per-symbol payload decisions
// with their SoftPHY hints, and the whole-packet CRC verdict. This is the
// "partial packets + SoftPHY hints" interface of Fig. 1.
type Reception struct {
	// Kind records whether acquisition happened on the preamble or — after
	// the preamble was lost to a collision — on the postamble.
	Kind SyncKind
	// SyncDist is the chip distance of the winning sync lock.
	SyncDist int
	// HeaderOK reports whether a header (preamble path) or trailer
	// (postamble path) parsed with a valid CRC-16. Without it the packet
	// bounds are unknown and no payload is delivered.
	HeaderOK bool
	// Hdr is the parsed header/trailer (valid only when HeaderOK).
	Hdr Header
	// PayloadStartChip is the chip offset where the payload begins; it
	// identifies the packet for deduplication and ground-truth scoring and
	// is meaningful even when the payload is partially out of the buffer.
	PayloadStartChip int
	// MissingPrefix counts payload symbols that could not be decoded
	// because they precede the receiver's circular buffer (postamble
	// rollback limit) or the start of the stream. They are reported so
	// higher layers can treat them as lost ("bad") symbols.
	MissingPrefix int
	// Decisions holds one entry per decoded payload symbol, in order,
	// starting after any missing prefix.
	Decisions []phy.Decision
	// PayloadBytes is the hard-decision payload reassembled from Decisions
	// (missing prefix filled with zeros), convenient for CRC checks and
	// ground-truth comparison.
	PayloadBytes []byte
	// CRCOK reports whether the whole-packet CRC-32 verified over the
	// decoded header fields and payload.
	CRCOK bool
}

// Receiver turns raw chip streams into Receptions. The zero value is not
// usable; construct with NewReceiver.
type Receiver struct {
	// Dec despreads codewords and attaches SoftPHY hints.
	Dec phy.Decoder
	// SyncMaxDist is the chip-error tolerance for sync detection.
	SyncMaxDist int
	// UsePostamble enables the postamble decoding path of Sec. 4; when
	// false the receiver behaves like the status quo and only acquires
	// packets whose preamble survived.
	UsePostamble bool
	// BufferChips bounds how far back from a postamble the receiver can
	// roll: the size of its circular sample buffer. Defaults to
	// MaxAirChips, "one maximally-sized packet".
	BufferChips int
}

// NewReceiver returns a Receiver with the paper's configuration: the given
// decoder, default sync tolerance, postamble decoding enabled, and a
// circular buffer of one maximum packet.
func NewReceiver(dec phy.Decoder) *Receiver {
	return &Receiver{
		Dec:          dec,
		SyncMaxDist:  DefaultSyncMaxDist,
		UsePostamble: true,
		BufferChips:  MaxAirChips,
	}
}

// decodeRegion despreads nSymbols starting at chipOff, clipping to the
// buffer. It returns the decisions, the number of symbols skipped before the
// region start (clip at front), and whether the region was fully inside.
func (r *Receiver) decodeRegion(buf *ChipBuffer, chipOff, nSymbols int) (ds []phy.Decision, skipped int, complete bool) {
	complete = true
	for i := 0; i < nSymbols; i++ {
		off := chipOff + i*32
		if off < 0 {
			skipped++
			complete = false
			continue
		}
		if off+32 > buf.Len() {
			complete = false
			break
		}
		ds = append(ds, r.Dec.Decode(phy.Observation{Hard: buf.Word32(off)}))
	}
	return ds, skipped, complete
}

// decodeBytes despreads exactly nBytes at chipOff and packs them; ok is
// false if the region is not fully inside the buffer.
func (r *Receiver) decodeBytes(buf *ChipBuffer, chipOff, nBytes int) (b []byte, ok bool) {
	ds, skipped, complete := r.decodeRegion(buf, chipOff, nBytes*SymbolsPerByte)
	if skipped > 0 || !complete {
		return nil, false
	}
	return bitutil.BytesFromNibbles(phy.SymbolsOf(ds)), true
}

// Receive scans one packed chip stream and returns every distinct packet
// reception, ordered by payload position. Packets acquired via both their
// preamble and postamble are deduplicated, preferring the reception that
// recovered more. The stream is consumed as-is — byte-per-chip callers at
// the modem boundary pack once with NewChipBuffer.
func (r *Receiver) Receive(buf *ChipBuffer) []Reception {
	return r.ReceiveSynced(buf, FindSyncs(buf, r.SyncMaxDist))
}

// ReceiveSynced decodes receptions from pre-computed sync detections. The
// sync scan depends only on the chips, so callers evaluating several
// receiver variants over one stream (the simulator) scan once and decode
// per variant.
func (r *Receiver) ReceiveSynced(buf *ChipBuffer, syncs []Sync) []Reception {
	var recs []Reception
	for _, s := range syncs {
		var rec Reception
		var ok bool
		switch s.Kind {
		case SyncPreamble:
			rec, ok = r.receiveFromPreamble(buf, s)
		case SyncPostamble:
			if !r.UsePostamble {
				continue
			}
			rec, ok = r.receiveFromPostamble(buf, s)
		}
		if ok {
			recs = append(recs, rec)
		}
	}
	return dedupe(recs)
}

// receiveFromPreamble is the status-quo acquisition path: header follows the
// sync pattern, payload follows the header.
func (r *Receiver) receiveFromPreamble(buf *ChipBuffer, s Sync) (Reception, bool) {
	hdrStart := s.ChipOffset + SyncChips
	rec := Reception{Kind: SyncPreamble, SyncDist: s.Dist}
	hdrBytes, ok := r.decodeBytes(buf, hdrStart, HeaderBytes)
	if !ok {
		return rec, false
	}
	hdr, ok := ParseHeader(hdrBytes)
	rec.PayloadStartChip = hdrStart + HeaderBytes*ChipsPerByte
	if !ok {
		// Acquired a preamble but the header is corrupt: packet bounds are
		// unknown. Report the failed acquisition; the postamble path may
		// still rescue this packet.
		return rec, true
	}
	rec.HeaderOK = true
	rec.Hdr = hdr
	r.fillPayload(buf, &rec, hdrBytes[:HeaderFieldBytes])
	return rec, true
}

// receiveFromPostamble implements the rollback path of Sec. 4: parse the
// trailer that ends at the postamble, learn the packet bounds from it, then
// roll back through the sample buffer to the start of the payload.
func (r *Receiver) receiveFromPostamble(buf *ChipBuffer, s Sync) (Reception, bool) {
	trailerStart := s.ChipOffset - HeaderBytes*ChipsPerByte
	rec := Reception{Kind: SyncPostamble, SyncDist: s.Dist}
	trailerBytes, ok := r.decodeBytes(buf, trailerStart, HeaderBytes)
	if !ok {
		return rec, false
	}
	hdr, ok := ParseHeader(trailerBytes)
	if !ok {
		// Step 3 of the paper's procedure failed: the trailer's checksum
		// did not verify, so the receiver cannot locate the packet.
		return rec, true
	}
	rec.HeaderOK = true
	rec.Hdr = hdr
	crcStart := trailerStart - CRC32Bytes*ChipsPerByte
	rec.PayloadStartChip = crcStart - int(hdr.Length)*ChipsPerByte
	// The circular buffer holds one maximum packet ending at the postamble's
	// end; symbols before that horizon are gone.
	bufferChips := r.BufferChips
	if bufferChips <= 0 {
		bufferChips = MaxAirChips
	}
	horizon := s.ChipOffset + SyncChips - bufferChips
	if horizon < 0 {
		horizon = 0
	}
	r.fillPayloadFrom(buf, &rec, trailerBytes[:HeaderFieldBytes], horizon)
	return rec, true
}

// fillPayload decodes payload, verifies the packet CRC-32, with no rollback
// horizon (preamble path).
func (r *Receiver) fillPayload(buf *ChipBuffer, rec *Reception, hdrFields []byte) {
	r.fillPayloadFrom(buf, rec, hdrFields, 0)
}

func (r *Receiver) fillPayloadFrom(buf *ChipBuffer, rec *Reception, hdrFields []byte, horizon int) {
	nSym := int(rec.Hdr.Length) * SymbolsPerByte
	start := rec.PayloadStartChip
	// Clip the front at the rollback horizon.
	clippedSyms := 0
	if start < horizon {
		clippedSyms = (horizon - start + 31) / 32
		if clippedSyms > nSym {
			clippedSyms = nSym
		}
	}
	ds, skipped, _ := r.decodeRegion(buf, start+clippedSyms*32, nSym-clippedSyms)
	rec.MissingPrefix = clippedSyms + skipped
	rec.Decisions = ds
	// Reassemble payload bytes: zero-fill the missing prefix, then decoded
	// symbols; if the tail is truncated, zero-fill that too.
	syms := make([]byte, nSym)
	for i, d := range ds {
		syms[rec.MissingPrefix+i] = d.Symbol
	}
	rec.PayloadBytes = bitutil.BytesFromNibbles(syms)
	// Verify the packet CRC over decoded header fields + payload.
	crcStart := start + nSym*32
	if crcBytes, ok := r.decodeBytes(buf, crcStart, CRC32Bytes); ok && rec.MissingPrefix == 0 && len(ds) == nSym {
		rec.CRCOK = PacketCRC32OK(hdrFields, rec.PayloadBytes, crcBytes)
	}
}

// dedupe collapses receptions that refer to the same packet (identified by
// payload start offset), preferring header-verified receptions, then those
// with more decoded symbols, then preamble over postamble (preamble
// reception needs no rollback and is what the status quo would deliver).
func dedupe(recs []Reception) []Reception {
	best := map[int]Reception{}
	var failedAcqs []Reception
	for _, rec := range recs {
		if !rec.HeaderOK {
			// Failed acquisitions have no reliable identity; keep them all
			// (experiments count them separately).
			failedAcqs = append(failedAcqs, rec)
			continue
		}
		cur, exists := best[rec.PayloadStartChip]
		if !exists || betterReception(rec, cur) {
			best[rec.PayloadStartChip] = rec
		}
	}
	out := make([]Reception, 0, len(best)+len(failedAcqs))
	for _, rec := range best {
		out = append(out, rec)
	}
	out = append(out, failedAcqs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].PayloadStartChip != out[j].PayloadStartChip {
			return out[i].PayloadStartChip < out[j].PayloadStartChip
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

func betterReception(a, b Reception) bool {
	if len(a.Decisions) != len(b.Decisions) {
		return len(a.Decisions) > len(b.Decisions)
	}
	return a.Kind == SyncPreamble && b.Kind == SyncPostamble
}

// BestReception returns the header-verified reception that decoded the most
// payload symbols, or nil if none verified. Single-link channels (the PP-ARQ
// experiments, netsim's point-to-point hops) use it to pick the one
// reception a Transmit call should report; callers on shared channels filter
// by header identity first so an interferer's packet is never mistaken for
// the transmitted one.
func BestReception(recs []Reception) *Reception {
	var best *Reception
	for i := range recs {
		if !recs[i].HeaderOK {
			continue
		}
		if best == nil || len(recs[i].Decisions) > len(best.Decisions) {
			best = &recs[i]
		}
	}
	return best
}
