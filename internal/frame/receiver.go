package frame

import (
	"ppr/internal/crcutil"
	"ppr/internal/phy"
)

// Reception is the receiver's view of one acquired packet: where it lies in
// the chip stream, what the header said, the per-symbol payload decisions
// with their SoftPHY hints, and the whole-packet CRC verdict. This is the
// "partial packets + SoftPHY hints" interface of Fig. 1.
//
// Ownership: Decisions and PayloadBytes are views into scratch buffers
// owned by the Receiver that produced the Reception, and are valid only
// until that Receiver's next Receive or ReceiveSynced call. Callers that
// hand receptions to a longer-lived structure copy the slices they keep
// (the simulator's Outcome does exactly this); callers that consume a
// reception before transmitting again — the PP-ARQ state machines, the
// closed-loop link layers — use them in place. This is what makes the
// steady-state receive path allocation-free.
type Reception struct {
	// Kind records whether acquisition happened on the preamble or — after
	// the preamble was lost to a collision — on the postamble.
	Kind SyncKind
	// SyncDist is the chip distance of the winning sync lock.
	SyncDist int
	// HeaderOK reports whether a header (preamble path) or trailer
	// (postamble path) parsed with a valid CRC-16. Without it the packet
	// bounds are unknown and no payload is delivered.
	HeaderOK bool
	// Hdr is the parsed header/trailer (valid only when HeaderOK).
	Hdr Header
	// PayloadStartChip is the chip offset where the payload begins; it
	// identifies the packet for deduplication and ground-truth scoring and
	// is meaningful even when the payload is partially out of the buffer.
	PayloadStartChip int
	// MissingPrefix counts payload symbols that could not be decoded
	// because they precede the receiver's circular buffer (postamble
	// rollback limit) or the start of the stream. They are reported so
	// higher layers can treat them as lost ("bad") symbols.
	MissingPrefix int
	// Decisions holds one entry per decoded payload symbol, in order,
	// starting after any missing prefix.
	Decisions []phy.Decision
	// PayloadBytes is the hard-decision payload reassembled from Decisions
	// (missing prefix filled with zeros), convenient for CRC checks and
	// ground-truth comparison.
	PayloadBytes []byte
	// CRCOK reports whether the whole-packet CRC-32 verified over the
	// decoded header fields and payload.
	CRCOK bool
}

// decodeScratch holds the Receiver's reusable buffers. Spans for decisions
// and reassembled bytes are carved off arena chunks that are re-sliced to
// zero length at the start of every Receive/ReceiveSynced call; once the
// chunks have grown to the caller's working-set size, the receive path
// performs no allocations at all (pinned by TestReceiveSteadyStateAllocs).
type decodeScratch struct {
	// syncs backs the detection list of Receive's sync scan.
	syncs []Sync
	// recs backs the returned Reception slice.
	recs []Reception
	// dec is the decision arena; each decoded region is a span of it.
	dec []phy.Decision
	// bytes is the byte arena for headers, payloads and CRC fields.
	bytes []byte
	// syms is the per-payload symbol scratch; it never escapes.
	syms []byte
}

// decisionSpan returns an uninitialized span of n decisions from the
// arena. When the current chunk is too small a larger one replaces it;
// spans already handed out keep the old chunk alive, so they stay valid
// for the rest of the call.
func (s *decodeScratch) decisionSpan(n int) []phy.Decision {
	if cap(s.dec)-len(s.dec) < n {
		c := 2 * cap(s.dec)
		if c < n {
			c = n
		}
		if c < 1024 {
			c = 1024
		}
		s.dec = make([]phy.Decision, 0, c)
	}
	span := s.dec[len(s.dec) : len(s.dec)+n]
	s.dec = s.dec[:len(s.dec)+n]
	return span
}

// byteSpan is decisionSpan for the byte arena.
func (s *decodeScratch) byteSpan(n int) []byte {
	if cap(s.bytes)-len(s.bytes) < n {
		c := 2 * cap(s.bytes)
		if c < n {
			c = n
		}
		if c < 1024 {
			c = 1024
		}
		s.bytes = make([]byte, 0, c)
	}
	span := s.bytes[len(s.bytes) : len(s.bytes)+n]
	s.bytes = s.bytes[:len(s.bytes)+n]
	return span
}

// symbolScratch returns the zeroed n-symbol scratch slice.
func (s *decodeScratch) symbolScratch(n int) []byte {
	if cap(s.syms) < n {
		s.syms = make([]byte, n)
	}
	sy := s.syms[:n]
	clear(sy)
	return sy
}

// reset recycles the arenas for a new receive call. Chunks are kept at
// their high-water capacity; only the lengths rewind.
func (s *decodeScratch) reset() {
	s.recs = s.recs[:0]
	s.dec = s.dec[:0]
	s.bytes = s.bytes[:0]
}

// Receiver turns raw chip streams into Receptions. The zero value is not
// usable; construct with NewReceiver. A Receiver owns scratch buffers that
// back the Receptions it returns (see Reception's ownership note), so it
// must not be copied and is not safe for concurrent use; the simulator
// keeps one per worker.
type Receiver struct {
	// Dec despreads codewords and attaches SoftPHY hints.
	Dec phy.Decoder
	// SyncMaxDist is the chip-error tolerance for sync detection.
	SyncMaxDist int
	// UsePostamble enables the postamble decoding path of Sec. 4; when
	// false the receiver behaves like the status quo and only acquires
	// packets whose preamble survived.
	UsePostamble bool
	// BufferChips bounds how far back from a postamble the receiver can
	// roll: the size of its circular sample buffer. Defaults to
	// MaxAirChips, "one maximally-sized packet".
	BufferChips int

	scratch decodeScratch
	m       rxMetrics
}

// NewReceiver returns a Receiver with the paper's configuration: the given
// decoder, default sync tolerance, postamble decoding enabled, and a
// circular buffer of one maximum packet. Metric cells are resolved here —
// enable the obs registry before constructing receivers that should report.
func NewReceiver(dec phy.Decoder) *Receiver {
	return &Receiver{
		Dec:          dec,
		SyncMaxDist:  DefaultSyncMaxDist,
		UsePostamble: true,
		BufferChips:  MaxAirChips,
		m:            newRxMetrics(),
	}
}

// decodeRegion despreads nSymbols starting at chipOff, clipping to the
// buffer. It returns the decisions, the number of symbols skipped before the
// region start (clip at front), and whether the region was fully inside.
// The decisions are pre-sized to nSymbols from the arena and clipped to the
// decoded count — no append churn on the hot path.
func (r *Receiver) decodeRegion(buf *ChipBuffer, chipOff, nSymbols int) (ds []phy.Decision, skipped int, complete bool) {
	ds = r.scratch.decisionSpan(nSymbols)
	complete = true
	n := 0
	for i := 0; i < nSymbols; i++ {
		off := chipOff + i*32
		if off < 0 {
			skipped++
			complete = false
			continue
		}
		if off+32 > buf.Len() {
			complete = false
			break
		}
		ds[n] = r.Dec.Decode(phy.Observation{Hard: buf.Word32(off)})
		n++
	}
	return ds[:n], skipped, complete
}

// decodeBytes despreads exactly nBytes at chipOff and packs them into a
// byte-arena span; ok is false if the region is not fully inside the
// buffer.
func (r *Receiver) decodeBytes(buf *ChipBuffer, chipOff, nBytes int) (b []byte, ok bool) {
	ds, skipped, complete := r.decodeRegion(buf, chipOff, nBytes*SymbolsPerByte)
	if skipped > 0 || !complete {
		return nil, false
	}
	b = r.scratch.byteSpan(nBytes)
	for i := range b {
		b[i] = ds[2*i].Symbol&0x0f | ds[2*i+1].Symbol<<4
	}
	return b, true
}

// Receive scans one packed chip stream and returns every distinct packet
// reception, ordered by payload position. Packets acquired via both their
// preamble and postamble are deduplicated, preferring the reception that
// recovered more. The stream is consumed as-is — byte-per-chip callers at
// the modem boundary pack once with NewChipBuffer. The returned slice and
// the Reception payload views are valid until the next Receive or
// ReceiveSynced call on this Receiver.
func (r *Receiver) Receive(buf *ChipBuffer) []Reception {
	r.scratch.syncs = AppendSyncs(r.scratch.syncs[:0], buf, r.SyncMaxDist)
	r.m.syncs.Add(int64(len(r.scratch.syncs)))
	return r.ReceiveSynced(buf, r.scratch.syncs)
}

// ReceiveSynced decodes receptions from pre-computed sync detections. The
// sync scan depends only on the chips, so callers evaluating several
// receiver variants over one stream (the simulator) scan once and decode
// per variant. The same ownership rule as Receive applies.
func (r *Receiver) ReceiveSynced(buf *ChipBuffer, syncs []Sync) []Reception {
	r.scratch.reset()
	for _, s := range syncs {
		var rec Reception
		var ok bool
		switch s.Kind {
		case SyncPreamble:
			rec, ok = r.receiveFromPreamble(buf, s)
		case SyncPostamble:
			if !r.UsePostamble {
				continue
			}
			rec, ok = r.receiveFromPostamble(buf, s)
		}
		if ok {
			r.scratch.recs = append(r.scratch.recs, rec)
		}
	}
	recs := dedupe(r.scratch.recs)
	if r.m.receptions != nil {
		var hdrOK, crcFail int64
		for i := range recs {
			if recs[i].HeaderOK {
				hdrOK++
				if !recs[i].CRCOK {
					crcFail++
				}
			}
		}
		r.m.receptions.Add(hdrOK)
		r.m.crcFail.Add(crcFail)
	}
	return recs
}

// receiveFromPreamble is the status-quo acquisition path: header follows the
// sync pattern, payload follows the header.
func (r *Receiver) receiveFromPreamble(buf *ChipBuffer, s Sync) (Reception, bool) {
	hdrStart := s.ChipOffset + SyncChips
	rec := Reception{Kind: SyncPreamble, SyncDist: s.Dist}
	hdrBytes, ok := r.decodeBytes(buf, hdrStart, HeaderBytes)
	if !ok {
		return rec, false
	}
	hdr, ok := ParseHeader(hdrBytes)
	rec.PayloadStartChip = hdrStart + HeaderBytes*ChipsPerByte
	if !ok {
		// Acquired a preamble but the header is corrupt: packet bounds are
		// unknown. Report the failed acquisition; the postamble path may
		// still rescue this packet.
		return rec, true
	}
	rec.HeaderOK = true
	rec.Hdr = hdr
	r.fillPayload(buf, &rec, hdrBytes[:HeaderFieldBytes])
	return rec, true
}

// receiveFromPostamble implements the rollback path of Sec. 4: parse the
// trailer that ends at the postamble, learn the packet bounds from it, then
// roll back through the sample buffer to the start of the payload.
func (r *Receiver) receiveFromPostamble(buf *ChipBuffer, s Sync) (Reception, bool) {
	trailerStart := s.ChipOffset - HeaderBytes*ChipsPerByte
	rec := Reception{Kind: SyncPostamble, SyncDist: s.Dist}
	trailerBytes, ok := r.decodeBytes(buf, trailerStart, HeaderBytes)
	if !ok {
		return rec, false
	}
	hdr, ok := ParseHeader(trailerBytes)
	if !ok {
		// Step 3 of the paper's procedure failed: the trailer's checksum
		// did not verify, so the receiver cannot locate the packet.
		return rec, true
	}
	rec.HeaderOK = true
	rec.Hdr = hdr
	crcStart := trailerStart - CRC32Bytes*ChipsPerByte
	rec.PayloadStartChip = crcStart - int(hdr.Length)*ChipsPerByte
	// The circular buffer holds one maximum packet ending at the postamble's
	// end; symbols before that horizon are gone.
	bufferChips := r.BufferChips
	if bufferChips <= 0 {
		bufferChips = MaxAirChips
	}
	horizon := s.ChipOffset + SyncChips - bufferChips
	if horizon < 0 {
		horizon = 0
	}
	r.fillPayloadFrom(buf, &rec, trailerBytes[:HeaderFieldBytes], horizon)
	return rec, true
}

// fillPayload decodes payload, verifies the packet CRC-32, with no rollback
// horizon (preamble path).
func (r *Receiver) fillPayload(buf *ChipBuffer, rec *Reception, hdrFields []byte) {
	r.fillPayloadFrom(buf, rec, hdrFields, 0)
}

func (r *Receiver) fillPayloadFrom(buf *ChipBuffer, rec *Reception, hdrFields []byte, horizon int) {
	nSym := int(rec.Hdr.Length) * SymbolsPerByte
	start := rec.PayloadStartChip
	// Clip the front at the rollback horizon.
	clippedSyms := 0
	if start < horizon {
		clippedSyms = (horizon - start + 31) / 32
		if clippedSyms > nSym {
			clippedSyms = nSym
		}
	}
	ds, skipped, _ := r.decodeRegion(buf, start+clippedSyms*32, nSym-clippedSyms)
	rec.MissingPrefix = clippedSyms + skipped
	rec.Decisions = ds
	// Reassemble payload bytes: zero-fill the missing prefix, then decoded
	// symbols; if the tail is truncated, zero-fill that too.
	syms := r.scratch.symbolScratch(nSym)
	for i, d := range ds {
		syms[rec.MissingPrefix+i] = d.Symbol
	}
	pb := r.scratch.byteSpan(int(rec.Hdr.Length))
	for i := range pb {
		pb[i] = syms[2*i]&0x0f | syms[2*i+1]<<4
	}
	rec.PayloadBytes = pb
	// Verify the packet CRC over decoded header fields + payload.
	crcStart := start + nSym*32
	if crcBytes, ok := r.decodeBytes(buf, crcStart, CRC32Bytes); ok && rec.MissingPrefix == 0 && len(ds) == nSym {
		rec.CRCOK = packetCRC32OK(hdrFields, rec.PayloadBytes, crcBytes)
	}
}

// packetCRC32OK streams the whole-packet CRC over decoded header fields and
// payload without materializing their concatenation.
func packetCRC32OK(hdrFields, payload, crc []byte) bool {
	if len(crc) != CRC32Bytes {
		return false
	}
	want := uint32(crc[0])<<24 | uint32(crc[1])<<16 | uint32(crc[2])<<8 | uint32(crc[3])
	return crcutil.Update32(crcutil.Update32(0, hdrFields), payload) == want
}

// dedupe collapses receptions that refer to the same packet (identified by
// payload start offset), preferring header-verified receptions, then those
// with more decoded symbols, then preamble over postamble (preamble
// reception needs no rollback and is what the status quo would deliver).
// It compacts in place and finishes with an allocation-free insertion sort
// — the reception count per stream is tiny.
func dedupe(recs []Reception) []Reception {
	n := 0
	for i := range recs {
		rec := recs[i]
		if rec.HeaderOK {
			dup := false
			for j := 0; j < n; j++ {
				if recs[j].HeaderOK && recs[j].PayloadStartChip == rec.PayloadStartChip {
					if betterReception(rec, recs[j]) {
						recs[j] = rec
					}
					dup = true
					break
				}
			}
			if dup {
				continue
			}
		}
		// Failed acquisitions have no reliable identity; keep them all
		// (experiments count them separately).
		recs[n] = rec
		n++
	}
	recs = recs[:n]
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && lessReception(&recs[j], &recs[j-1]); j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
	return recs
}

func lessReception(a, b *Reception) bool {
	if a.PayloadStartChip != b.PayloadStartChip {
		return a.PayloadStartChip < b.PayloadStartChip
	}
	return a.Kind < b.Kind
}

func betterReception(a, b Reception) bool {
	if len(a.Decisions) != len(b.Decisions) {
		return len(a.Decisions) > len(b.Decisions)
	}
	return a.Kind == SyncPreamble && b.Kind == SyncPostamble
}

// BestReception returns the header-verified reception that decoded the most
// payload symbols, or nil if none verified. Single-link channels (the PP-ARQ
// experiments, netsim's point-to-point hops) use it to pick the one
// reception a Transmit call should report; callers on shared channels filter
// by header identity first so an interferer's packet is never mistaken for
// the transmitted one.
func BestReception(recs []Reception) *Reception {
	var best *Reception
	for i := range recs {
		if !recs[i].HeaderOK {
			continue
		}
		if best == nil || len(recs[i].Decisions) > len(best.Decisions) {
			best = &recs[i]
		}
	}
	return best
}
