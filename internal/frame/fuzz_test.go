package frame

import (
	"testing"

	"ppr/internal/phy"
	"ppr/internal/stats"
)

// Robustness: the receiver must survive arbitrary chip streams — pure
// noise, truncated frames, frames spliced mid-stream, and adversarial
// near-sync patterns — without panicking, and every reception it does emit
// must be structurally valid.

func validateReception(t *testing.T, rec Reception, streamChips int) {
	t.Helper()
	if rec.HeaderOK {
		if int(rec.Hdr.Length) > MaxPayload {
			t.Fatalf("reception claims length %d > MaxPayload", rec.Hdr.Length)
		}
		wantSyms := int(rec.Hdr.Length) * SymbolsPerByte
		if rec.MissingPrefix+len(rec.Decisions) > wantSyms {
			t.Fatalf("reception has %d+%d symbols for a %d-symbol payload",
				rec.MissingPrefix, len(rec.Decisions), wantSyms)
		}
		if len(rec.PayloadBytes) != int(rec.Hdr.Length) {
			t.Fatalf("payload bytes %d != header length %d", len(rec.PayloadBytes), rec.Hdr.Length)
		}
	}
	if rec.MissingPrefix < 0 {
		t.Fatal("negative missing prefix")
	}
	for _, d := range rec.Decisions {
		if d.Symbol > 15 {
			t.Fatalf("symbol %d out of range", d.Symbol)
		}
		if d.Hint < 0 {
			t.Fatalf("negative hint %v", d.Hint)
		}
	}
}

func TestReceiveSurvivesRandomStreams(t *testing.T) {
	rng := stats.NewRNG(100)
	rx := NewReceiver(phy.HardDecoder{})
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(60000)
		chips := make([]byte, n)
		for i := range chips {
			chips[i] = byte(rng.Intn(2))
		}
		for _, rec := range rx.Receive(NewChipBuffer(chips)) {
			validateReception(t, rec, n)
		}
	}
}

func TestReceiveSurvivesTruncatedFrames(t *testing.T) {
	rng := stats.NewRNG(101)
	rx := NewReceiver(phy.HardDecoder{})
	full := New(1, 2, 3, make([]byte, 300)).AirChips().Bytes()
	for trial := 0; trial < 40; trial++ {
		cut := rng.Intn(len(full))
		var chips []byte
		if rng.Bool(0.5) {
			chips = full[:cut] // head only
		} else {
			chips = full[cut:] // tail only
		}
		for _, rec := range rx.Receive(NewChipBuffer(chips)) {
			validateReception(t, rec, len(chips))
		}
	}
}

func TestReceiveSurvivesSplicedFrames(t *testing.T) {
	// Two frames cut and spliced at arbitrary points, with noise gaps —
	// the shape a receiver sees after a capture switch mid-air.
	rng := stats.NewRNG(102)
	rx := NewReceiver(phy.HardDecoder{})
	a := New(1, 2, 3, make([]byte, 200)).AirChips().Bytes()
	bb := New(4, 5, 6, make([]byte, 150)).AirChips().Bytes()
	for trial := 0; trial < 30; trial++ {
		var chips []byte
		chips = append(chips, a[:rng.Intn(len(a))]...)
		gap := make([]byte, rng.Intn(2000))
		for i := range gap {
			gap[i] = byte(rng.Intn(2))
		}
		chips = append(chips, gap...)
		chips = append(chips, bb[rng.Intn(len(bb)):]...)
		for _, rec := range rx.Receive(NewChipBuffer(chips)) {
			validateReception(t, rec, len(chips))
		}
	}
}

func TestReceiveAdversarialLengthInTrailer(t *testing.T) {
	// A forged trailer claiming a huge length must not crash the rollback
	// path (ParseHeader rejects > MaxPayload, but lengths within bounds
	// that point before the stream start exercise the horizon clipping).
	payload := make([]byte, 10)
	f := New(1, 2, 3, payload)
	chips := f.AirChips()
	// Keep only the tail: trailer + postamble, with the claimed payload
	// far before the buffer.
	tail := chips.Slice(chips.Len()-(HeaderBytes+SyncBytes)*ChipsPerByte, chips.Len())
	rx := NewReceiver(phy.HardDecoder{})
	for _, rec := range rx.Receive(tail) {
		validateReception(t, rec, tail.Len())
		if rec.HeaderOK && rec.MissingPrefix == 0 && len(rec.Decisions) > 0 {
			t.Fatal("rollback past stream start produced decisions")
		}
	}
}

func TestReceiveEmptyAndTinyStreams(t *testing.T) {
	rx := NewReceiver(phy.HardDecoder{})
	for _, n := range []int{0, 1, 31, 32, SyncChips - 1, SyncChips} {
		if recs := rx.Receive(NewChipBuffer(make([]byte, n))); len(recs) != 0 {
			t.Errorf("stream of %d chips produced %d receptions", n, len(recs))
		}
	}
}

func TestReceiveManyConcatenatedFrames(t *testing.T) {
	// A train of back-to-back frames with varying payloads: every one must
	// be recovered exactly once.
	rng := stats.NewRNG(103)
	var chips []byte
	const nFrames = 12
	for i := 0; i < nFrames; i++ {
		payload := make([]byte, 20+rng.Intn(200))
		for k := range payload {
			payload[k] = byte(rng.Intn(256))
		}
		chips = append(chips, New(1, uint16(i+2), uint16(i), payload).AirChips().Bytes()...)
	}
	rx := NewReceiver(phy.HardDecoder{})
	got := map[uint16]int{}
	for _, rec := range rx.Receive(NewChipBuffer(chips)) {
		if rec.HeaderOK && rec.CRCOK {
			got[rec.Hdr.Seq]++
		}
	}
	if len(got) != nFrames {
		t.Fatalf("recovered %d of %d frames", len(got), nFrames)
	}
	for seq, n := range got {
		if n != 1 {
			t.Errorf("frame %d recovered %d times", seq, n)
		}
	}
}
