// Package frame implements the PPR packet format of Fig. 2 and the
// receiver-side frame synchronization machinery, including the postamble
// decoding scheme of Sec. 4.
//
// Over the air, a PPR frame is laid out as
//
//	preamble(4×0x00) ‖ SFD ‖ header ‖ payload ‖ CRC32 ‖ trailer ‖ post-pad(4×0x00) ‖ PSFD
//
// where the header carries (length, dst, src, seq) protected by a CRC-16,
// the trailer is an exact replica of the header (so a receiver that missed
// the preamble can learn the packet bounds from the end, Sec. 4), and the
// postamble's well-known sequence is distinct from the preamble's so the two
// cannot be confused.
//
// All synchronization is chip-level: receivers scan a packed chip stream for
// the 320-chip preamble and postamble patterns by sliding Hamming
// correlation, exactly the mechanism that lets a receiver lock onto a packet
// whose preamble was destroyed by a collision and "roll back" through its
// sample buffer to recover earlier symbols.
package frame

import (
	"fmt"

	"ppr/internal/bitutil"
	"ppr/internal/chipseq"
	"ppr/internal/crcutil"
	"ppr/internal/phy"
)

const (
	// SFD is the start-of-frame delimiter byte following the preamble pad,
	// as in 802.15.4.
	SFD = 0xA7
	// PSFD is the postamble delimiter byte; it differs from SFD so that a
	// receiver can always tell which end of a packet it has locked onto.
	PSFD = 0x5C
	// SyncPadBytes is the number of zero bytes in each sync pad.
	SyncPadBytes = 4
	// SyncBytes is the total size of a sync pattern (pad + delimiter).
	SyncBytes = SyncPadBytes + 1
	// HeaderFieldBytes is the size of the header's data fields.
	HeaderFieldBytes = 8
	// HeaderBytes is the full header (fields + CRC-16); the trailer is the
	// same size because it replicates the header.
	HeaderBytes = HeaderFieldBytes + crcutil.Size16
	// CRC32Bytes is the size of the whole-packet checksum.
	CRC32Bytes = crcutil.Size32
	// MaxPayload is the largest payload the link layer accepts. The paper's
	// capacity experiments emulate 1500-byte packets.
	MaxPayload = 1500
)

// SymbolsPerByte is the number of 4-bit channel symbols per payload byte.
const SymbolsPerByte = 2

// ChipsPerByte is the number of chips each byte occupies on the air.
const ChipsPerByte = SymbolsPerByte * chipseq.ChipsPerSymbol

// SyncChips is the length in chips of a sync pattern.
const SyncChips = SyncBytes * ChipsPerByte

// AirBytes returns the total number of bytes a frame with the given payload
// length occupies on the air, sync patterns included.
func AirBytes(payloadLen int) int {
	return SyncBytes + HeaderBytes + payloadLen + CRC32Bytes + HeaderBytes + SyncBytes
}

// AirChips returns the frame's on-air length in chips.
func AirChips(payloadLen int) int { return AirBytes(payloadLen) * ChipsPerByte }

// MaxAirChips is the chip length of a maximally-sized frame; the receiver's
// circular sample buffer holds exactly this many chips (Sec. 4: "as many
// samples ... as there are symbols in one maximally-sized packet").
var MaxAirChips = AirChips(MaxPayload)

// Header is the link-layer header (and, replicated, the trailer): the packet
// length, destination and source addresses, and a sequence number, exactly
// the fields the paper's trailer carries so a postamble-synchronized
// receiver can identify the packet and request partial retransmission.
type Header struct {
	// Length is the payload length in bytes.
	Length uint16
	// Dst is the link-layer destination address.
	Dst uint16
	// Src is the link-layer source address.
	Src uint16
	// Seq is the sender's sequence number, used by PP-ARQ to pair feedback
	// with data packets.
	Seq uint16
}

// Encode serializes the header fields followed by their CRC-16.
func (h Header) Encode() []byte {
	b := make([]byte, 0, HeaderBytes)
	b = append(b,
		byte(h.Length>>8), byte(h.Length),
		byte(h.Dst>>8), byte(h.Dst),
		byte(h.Src>>8), byte(h.Src),
		byte(h.Seq>>8), byte(h.Seq),
	)
	return crcutil.Append16(b, b)
}

// ParseHeader decodes a 10-byte header/trailer and verifies its CRC-16.
// The all-zero buffer is rejected even though its CRC-16 happens to be
// zero: runs of zero data symbols look exactly like it, and accepting it
// would let a zero-filled payload masquerade as a trailer after a spurious
// sync.
func ParseHeader(b []byte) (Header, bool) {
	if len(b) != HeaderBytes {
		return Header{}, false
	}
	allZero := true
	for _, v := range b {
		if v != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return Header{}, false
	}
	if _, ok := crcutil.Verify16(b); !ok {
		return Header{}, false
	}
	h := Header{
		Length: uint16(b[0])<<8 | uint16(b[1]),
		Dst:    uint16(b[2])<<8 | uint16(b[3]),
		Src:    uint16(b[4])<<8 | uint16(b[5]),
		Seq:    uint16(b[6])<<8 | uint16(b[7]),
	}
	if int(h.Length) > MaxPayload {
		return Header{}, false
	}
	return h, true
}

// Frame is one link-layer packet before spreading.
type Frame struct {
	// Hdr carries the link-layer addressing; Hdr.Length is maintained by
	// New and must equal len(Payload).
	Hdr Header
	// Payload is the network-layer data.
	Payload []byte
}

// New builds a frame, setting the header length from the payload. It panics
// if the payload exceeds MaxPayload: upper layers fragment before this
// point, so an oversized payload is a programming error.
func New(dst, src, seq uint16, payload []byte) Frame {
	if len(payload) > MaxPayload {
		panic(fmt.Sprintf("frame: payload %d exceeds MaxPayload %d", len(payload), MaxPayload))
	}
	return Frame{
		Hdr:     Header{Length: uint16(len(payload)), Dst: dst, Src: src, Seq: seq},
		Payload: payload,
	}
}

// preamblePattern and postamblePattern are the on-air sync byte sequences.
func preamblePattern() []byte {
	return append(make([]byte, SyncPadBytes), SFD)
}

func postamblePattern() []byte {
	return append(make([]byte, SyncPadBytes), PSFD)
}

// AirBytes returns the complete over-the-air byte sequence of Fig. 2:
// preamble, header, payload, packet CRC-32, trailer (header replica), and
// postamble.
func (f Frame) AirBytes() []byte {
	hdr := f.Hdr.Encode()
	out := make([]byte, 0, AirBytes(len(f.Payload)))
	out = append(out, preamblePattern()...)
	out = append(out, hdr...)
	out = append(out, f.Payload...)
	// The packet CRC covers the header fields and payload — "a CRC covering
	// the entire link-layer packet's contents" (Sec. 2).
	covered := make([]byte, 0, HeaderFieldBytes+len(f.Payload))
	covered = append(covered, hdr[:HeaderFieldBytes]...)
	covered = append(covered, f.Payload...)
	out = crcutil.Append32(out, covered)
	out = append(out, hdr...) // trailer replicates the header
	out = append(out, postamblePattern()...)
	return out
}

// AirChips returns the frame's packed on-air chip stream, two codewords per
// word — the representation the channel synthesizer and receiver operate on
// natively.
func (f Frame) AirChips() *bitutil.ChipWords {
	return bitutil.PackWord32s(phy.SpreadBytes(f.AirBytes()))
}

// PacketCRC32OK recomputes the whole-packet CRC over decoded header fields
// and payload bytes. It streams the CRC across both parts — no concatenated
// buffer is materialized, so the receive path stays allocation-free.
func PacketCRC32OK(hdrFields, payload, crc []byte) bool {
	return packetCRC32OK(hdrFields, payload, crc)
}

// symbolsOfBytes is a convenience wrapper used by the synchronizers.
func symbolsOfBytes(b []byte) []byte { return bitutil.NibblesFromBytes(b) }
