package frame

import (
	"sync/atomic"

	"ppr/internal/obs"
)

// rxShardSeq spreads Receivers across registry cells: the simulators keep
// one Receiver per worker (or per netsim shard), so successive receivers
// land on distinct cells and the hot receive path never contends.
var rxShardSeq atomic.Int64

// rxMetrics is a Receiver's pre-resolved metric cells, bound at
// construction from the default registry. All-nil (one branch per receive
// call, zero allocations) when metrics are disabled — the contract
// TestMetricsDisabledAllocs pins.
type rxMetrics struct {
	// syncs counts sync detections of Receiver-owned scans (Receive);
	// callers that scan once and decode per variant (internal/sim) count
	// their shared scan themselves.
	syncs *obs.CounterCell
	// receptions counts header-verified receptions after deduplication.
	receptions *obs.CounterCell
	// crcFail counts header-verified receptions whose whole-packet CRC
	// failed — the partial packets PPR exists to recover.
	crcFail *obs.CounterCell
}

// newRxMetrics resolves a fresh receiver's cells.
func newRxMetrics() rxMetrics {
	r := obs.Default()
	if r == nil {
		return rxMetrics{}
	}
	shard := int(rxShardSeq.Add(1))
	return rxMetrics{
		syncs:      r.Counter("frame.syncs_found").Cell(shard),
		receptions: r.Counter("frame.receptions").Cell(shard),
		crcFail:    r.Counter("frame.crc_failures").Cell(shard),
	}
}
