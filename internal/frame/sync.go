package frame

import (
	"math/bits"

	"ppr/internal/bitutil"
	"ppr/internal/chipseq"
	"ppr/internal/phy"
)

// ChipBuffer is the receiver's view of a packed chip stream. It is exactly
// bitutil.ChipWords — the representation the channel synthesizer produces —
// so reception consumes the on-air stream directly: the sliding sync
// correlation runs as a handful of XOR+popcount operations per candidate
// offset, and no byte-per-chip repack happens anywhere on the receive path.
type ChipBuffer = bitutil.ChipWords

// NewChipBuffer packs a byte-per-chip stream (any nonzero byte is chip
// value 1) — the adapter for callers at the sample-level modem boundary,
// where chips arrive as demodulated bytes.
func NewChipBuffer(chips []byte) *ChipBuffer {
	return bitutil.PackChipBytes(chips)
}

// SyncKind distinguishes which end of a packet a synchronizer locked onto.
type SyncKind uint8

const (
	// SyncPreamble marks a preamble+SFD detection (status-quo acquisition).
	SyncPreamble SyncKind = iota
	// SyncPostamble marks a postamble detection, which triggers the
	// roll-back decode path of Sec. 4.
	SyncPostamble
)

// String implements fmt.Stringer.
func (k SyncKind) String() string {
	if k == SyncPreamble {
		return "preamble"
	}
	return "postamble"
}

// Sync is one detected sync pattern.
type Sync struct {
	// Kind says whether the pattern was a preamble or postamble.
	Kind SyncKind
	// ChipOffset is the chip index where the sync pattern starts.
	ChipOffset int
	// Dist is the total chip Hamming distance between the received window
	// and the ideal pattern; lower is a stronger lock.
	Dist int
}

// DefaultSyncMaxDist is the default chip-error tolerance for declaring a
// sync lock. A clean pattern scores ~0 of 320 chips and uncorrelated noise
// ~160, but the binding constraint is self-similarity: a run of zero data
// bytes reproduces the sync pad exactly and differs from the full pattern
// only on the two delimiter codewords (d(c0,c7)+d(c0,c10) = 30 chips for
// the preamble). A threshold of 20 rejects such runs while tolerating chip
// error rates up to ~5% on a genuine pattern.
const DefaultSyncMaxDist = 20

// patternWords returns the sync pattern's codewords as packed 32-chip words.
func patternWords(pattern []byte) []uint32 {
	return phy.SpreadSymbols(symbolsOfBytes(pattern))
}

var (
	preambleWords  = patternWords(preamblePattern())
	postambleWords = patternWords(postamblePattern())
)

// FindSyncs scans the buffer for preamble and postamble patterns, returning
// detections ordered by chip offset. Candidate detections closer than one
// codeword apart are collapsed to the strongest, which handles the cluster
// of near-hits around the true alignment.
func FindSyncs(buf *ChipBuffer, maxDist int) []Sync {
	if maxDist <= 0 {
		maxDist = DefaultSyncMaxDist
	}
	limit := buf.Len() - SyncChips
	var out []Sync
	for off := 0; off <= limit; off++ {
		dPre, dPost := 0, 0
		for k := 0; k < len(preambleWords); k++ {
			w := buf.Word32(off + k*chipseq.ChipsPerSymbol)
			dPre += bits.OnesCount32(w ^ preambleWords[k])
			dPost += bits.OnesCount32(w ^ postambleWords[k])
			// The pads are identical, so the running distances only diverge
			// on the delimiter codewords; bail out early once both exceed
			// the threshold to keep the scan cheap on noise.
			if dPre > maxDist && dPost > maxDist {
				break
			}
		}
		kind, d := SyncPreamble, dPre
		if dPost < dPre {
			kind, d = SyncPostamble, dPost
		}
		if d > maxDist {
			continue
		}
		// Collapse candidates within one codeword of the previous detection.
		if n := len(out); n > 0 && off-out[n-1].ChipOffset < chipseq.ChipsPerSymbol {
			if d < out[n-1].Dist {
				out[n-1] = Sync{Kind: kind, ChipOffset: off, Dist: d}
			}
			continue
		}
		out = append(out, Sync{Kind: kind, ChipOffset: off, Dist: d})
	}
	return out
}
