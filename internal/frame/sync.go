package frame

import (
	"fmt"
	"math/bits"

	"ppr/internal/chipseq"
	"ppr/internal/phy"
)

// ChipBuffer is a packed view of a received chip stream that supports fast
// extraction of arbitrary 32-chip windows, the primitive both synchronizers
// are built on. Packing lets the sliding sync correlation run as a handful
// of XOR+popcount operations per candidate offset instead of hundreds of
// byte compares.
type ChipBuffer struct {
	words []uint64
	n     int
}

// NewChipBuffer packs a chip stream (one byte per chip; any nonzero byte is
// chip value 1).
func NewChipBuffer(chips []byte) *ChipBuffer {
	b := &ChipBuffer{n: len(chips), words: make([]uint64, (len(chips)+63)/64)}
	for i, c := range chips {
		if c != 0 {
			b.words[i/64] |= 1 << uint(63-i%64)
		}
	}
	return b
}

// Len returns the stream length in chips.
func (b *ChipBuffer) Len() int { return b.n }

// Word32 extracts the 32 chips starting at chip offset off, chip off at bit
// 31. It panics when the window runs past the buffer.
func (b *ChipBuffer) Word32(off int) uint32 {
	if off < 0 || off+32 > b.n {
		panic(fmt.Sprintf("frame: Word32(%d) out of range for %d chips", off, b.n))
	}
	w := off / 64
	sh := uint(off % 64)
	v := b.words[w] << sh
	if sh > 0 && w+1 < len(b.words) {
		v |= b.words[w+1] >> (64 - sh)
	}
	return uint32(v >> 32)
}

// SyncKind distinguishes which end of a packet a synchronizer locked onto.
type SyncKind uint8

const (
	// SyncPreamble marks a preamble+SFD detection (status-quo acquisition).
	SyncPreamble SyncKind = iota
	// SyncPostamble marks a postamble detection, which triggers the
	// roll-back decode path of Sec. 4.
	SyncPostamble
)

// String implements fmt.Stringer.
func (k SyncKind) String() string {
	if k == SyncPreamble {
		return "preamble"
	}
	return "postamble"
}

// Sync is one detected sync pattern.
type Sync struct {
	// Kind says whether the pattern was a preamble or postamble.
	Kind SyncKind
	// ChipOffset is the chip index where the sync pattern starts.
	ChipOffset int
	// Dist is the total chip Hamming distance between the received window
	// and the ideal pattern; lower is a stronger lock.
	Dist int
}

// DefaultSyncMaxDist is the default chip-error tolerance for declaring a
// sync lock. A clean pattern scores ~0 of 320 chips and uncorrelated noise
// ~160, but the binding constraint is self-similarity: a run of zero data
// bytes reproduces the sync pad exactly and differs from the full pattern
// only on the two delimiter codewords (d(c0,c7)+d(c0,c10) = 30 chips for
// the preamble). A threshold of 20 rejects such runs while tolerating chip
// error rates up to ~5% on a genuine pattern.
const DefaultSyncMaxDist = 20

// patternWords returns the sync pattern's codewords as packed 32-chip words.
func patternWords(pattern []byte) []uint32 {
	return phy.SpreadSymbols(symbolsOfBytes(pattern))
}

var (
	preambleWords  = patternWords(preamblePattern())
	postambleWords = patternWords(postamblePattern())
)

// FindSyncs scans the buffer for preamble and postamble patterns, returning
// detections ordered by chip offset. Candidate detections closer than one
// codeword apart are collapsed to the strongest, which handles the cluster
// of near-hits around the true alignment.
func FindSyncs(buf *ChipBuffer, maxDist int) []Sync {
	if maxDist <= 0 {
		maxDist = DefaultSyncMaxDist
	}
	limit := buf.Len() - SyncChips
	var out []Sync
	for off := 0; off <= limit; off++ {
		dPre, dPost := 0, 0
		for k := 0; k < len(preambleWords); k++ {
			w := buf.Word32(off + k*chipseq.ChipsPerSymbol)
			dPre += bits.OnesCount32(w ^ preambleWords[k])
			dPost += bits.OnesCount32(w ^ postambleWords[k])
			// The pads are identical, so the running distances only diverge
			// on the delimiter codewords; bail out early once both exceed
			// the threshold to keep the scan cheap on noise.
			if dPre > maxDist && dPost > maxDist {
				break
			}
		}
		kind, d := SyncPreamble, dPre
		if dPost < dPre {
			kind, d = SyncPostamble, dPost
		}
		if d > maxDist {
			continue
		}
		// Collapse candidates within one codeword of the previous detection.
		if n := len(out); n > 0 && off-out[n-1].ChipOffset < chipseq.ChipsPerSymbol {
			if d < out[n-1].Dist {
				out[n-1] = Sync{Kind: kind, ChipOffset: off, Dist: d}
			}
			continue
		}
		out = append(out, Sync{Kind: kind, ChipOffset: off, Dist: d})
	}
	return out
}
