package frame

import (
	"math/bits"

	"ppr/internal/bitutil"
	"ppr/internal/chipseq"
	"ppr/internal/phy"
)

// ChipBuffer is the receiver's view of a packed chip stream. It is exactly
// bitutil.ChipWords — the representation the channel synthesizer produces —
// so reception consumes the on-air stream directly: the sliding sync
// correlation runs as a handful of XOR+popcount operations per candidate
// offset, and no byte-per-chip repack happens anywhere on the receive path.
type ChipBuffer = bitutil.ChipWords

// NewChipBuffer packs a byte-per-chip stream (any nonzero byte is chip
// value 1) — the adapter for callers at the sample-level modem boundary,
// where chips arrive as demodulated bytes.
func NewChipBuffer(chips []byte) *ChipBuffer {
	return bitutil.PackChipBytes(chips)
}

// SyncKind distinguishes which end of a packet a synchronizer locked onto.
type SyncKind uint8

const (
	// SyncPreamble marks a preamble+SFD detection (status-quo acquisition).
	SyncPreamble SyncKind = iota
	// SyncPostamble marks a postamble detection, which triggers the
	// roll-back decode path of Sec. 4.
	SyncPostamble
)

// String implements fmt.Stringer.
func (k SyncKind) String() string {
	if k == SyncPreamble {
		return "preamble"
	}
	return "postamble"
}

// Sync is one detected sync pattern.
type Sync struct {
	// Kind says whether the pattern was a preamble or postamble.
	Kind SyncKind
	// ChipOffset is the chip index where the sync pattern starts.
	ChipOffset int
	// Dist is the total chip Hamming distance between the received window
	// and the ideal pattern; lower is a stronger lock.
	Dist int
}

// DefaultSyncMaxDist is the default chip-error tolerance for declaring a
// sync lock. A clean pattern scores ~0 of 320 chips and uncorrelated noise
// ~160, but the binding constraint is self-similarity: a run of zero data
// bytes reproduces the sync pad exactly and differs from the full pattern
// only on the two delimiter codewords (d(c0,c7)+d(c0,c10) = 30 chips for
// the preamble). A threshold of 20 rejects such runs while tolerating chip
// error rates up to ~5% on a genuine pattern.
const DefaultSyncMaxDist = 20

// The sync scan works 64 chips — one machine word — at a time. Both sync
// patterns are 5 bytes = 320 chips = exactly five 64-chip blocks, and they
// share their first four blocks (the zero-byte pad, codeword 0 repeated);
// only the fifth block, the delimiter byte, differs between preamble and
// postamble. So the scan accumulates the shared pad distance block by
// block with the seed's early-bailout semantics (once the pad distance
// alone exceeds the threshold, both patterns are rejected), and only on
// surviving candidates pays for the two delimiter correlations. The first
// pad block doubles as the cheap prefilter: against uncorrelated noise its
// expected distance is 32 chips, so a noise offset is rejected after a
// single XOR+popcount with probability ~0.998 at the default threshold.
const (
	syncBlocks = SyncChips / 64
	padBlocks  = syncBlocks - 1
)

// delimWord packs a sync pattern's delimiter byte (two codewords) into the
// 64-chip block the scan compares against.
func delimWord(delim byte) uint64 {
	cws := phy.SpreadSymbols(symbolsOfBytes([]byte{delim}))
	return uint64(cws[0])<<32 | uint64(cws[1])
}

var (
	// padWord is one 64-chip block of the shared sync pad: the zero byte's
	// two codeword-0 repetitions. All four pad blocks are identical.
	padWord = uint64(chipseq.Codeword(0))<<32 | uint64(chipseq.Codeword(0))
	// preDelimWord and postDelimWord are the fifth, distinguishing blocks.
	preDelimWord  = delimWord(SFD)
	postDelimWord = delimWord(PSFD)
)

// FindSyncs scans the buffer for preamble and postamble patterns, returning
// detections ordered by chip offset. Candidate detections closer than one
// codeword apart are collapsed to the strongest, which handles the cluster
// of near-hits around the true alignment.
func FindSyncs(buf *ChipBuffer, maxDist int) []Sync {
	return AppendSyncs(nil, buf, maxDist)
}

// AppendSyncs is FindSyncs appending into dst, the allocation-free form for
// callers that scan repeatedly (the receiver reuses one detection buffer
// across Receive calls).
func AppendSyncs(dst []Sync, buf *ChipBuffer, maxDist int) []Sync {
	if maxDist <= 0 {
		maxDist = DefaultSyncMaxDist
	}
	limit := buf.Len() - SyncChips
	base := len(dst)
	words := buf.Words()
	// Offset sweep, structured as (word, shift) so the two backing words of
	// the prefilter block load once per 64 offsets and the inner loop is
	// pure register arithmetic: two shifts, an OR, an XOR, a popcount and a
	// compare per offset. Go defines w1>>64 as 0, so the sh==0 case needs no
	// branch.
	for wi := 0; wi*64 <= limit; wi++ {
		w0 := words[wi]
		var w1 uint64
		if wi+1 < len(words) {
			w1 = words[wi+1]
		}
		shEnd := limit - wi*64
		if shEnd > 63 {
			shEnd = 63
		}
		for sh := 0; sh <= shEnd; sh++ {
			// Prefilter: first pad block. Against uncorrelated noise the
			// expected distance is 32 chips, so a noise offset dies here
			// with probability ~0.998 at the default threshold.
			d := bits.OnesCount64((w0<<uint(sh) | w1>>(64-uint(sh))) ^ padWord)
			if d > maxDist {
				continue
			}
			off := wi*64 + sh
			// Remaining shared pad blocks with the seed's early-bailout
			// semantics: once the pad distance alone exceeds the threshold,
			// both patterns are rejected.
			d += bits.OnesCount64(buf.Word64(off+64) ^ padWord)
			if d > maxDist {
				continue
			}
			d += bits.OnesCount64(buf.Word64(off+128) ^ padWord)
			if d > maxDist {
				continue
			}
			d += bits.OnesCount64(buf.Word64(off+192) ^ padWord)
			if d > maxDist {
				continue
			}
			// Delimiter block: the only place the two patterns diverge.
			last := buf.Word64(off + padBlocks*64)
			dPre := d + bits.OnesCount64(last^preDelimWord)
			dPost := d + bits.OnesCount64(last^postDelimWord)
			kind, dist := SyncPreamble, dPre
			if dPost < dPre {
				kind, dist = SyncPostamble, dPost
			}
			if dist > maxDist {
				continue
			}
			// Collapse candidates within one codeword of the previous
			// detection.
			if n := len(dst); n > base && off-dst[n-1].ChipOffset < chipseq.ChipsPerSymbol {
				if dist < dst[n-1].Dist {
					dst[n-1] = Sync{Kind: kind, ChipOffset: off, Dist: dist}
				}
				continue
			}
			dst = append(dst, Sync{Kind: kind, ChipOffset: off, Dist: dist})
		}
	}
	return dst
}
