package frame_test

import (
	"testing"

	"ppr/internal/frame"
	"ppr/internal/obs"
	"ppr/internal/phy"
	"ppr/internal/stats"
)

// rxTestStream builds a deterministic noise+frames chip stream with light
// chip errors, the same shape TestReceiveSteadyStateAllocs uses.
func rxTestStream(t *testing.T) *frame.ChipBuffer {
	t.Helper()
	rng := stats.NewRNG(42)
	chips := make([]byte, 0, 200000)
	noise := make([]byte, 5000)
	for f := 0; f < 3; f++ {
		for i := range noise {
			noise[i] = byte(rng.Intn(2))
		}
		chips = append(chips, noise...)
		fr := frame.New(1, 2, uint16(f), make([]byte, 150)).AirChips().Bytes()
		for i := range fr {
			if rng.Bool(0.01) {
				fr[i] ^= 1
			}
		}
		chips = append(chips, fr...)
	}
	return frame.NewChipBuffer(chips)
}

// TestMetricsDisabledAllocs pins the obs cost contract on the receive hot
// loop: with metrics disabled, the instrumented steady-state Receive path
// is still 0 allocs/op — the disabled path is a nil-check, nothing more.
func TestMetricsDisabledAllocs(t *testing.T) {
	obs.SetDefault(nil)
	buf := rxTestStream(t)
	rx := frame.NewReceiver(phy.HardDecoder{})
	recs := rx.Receive(buf) // grow the arenas once
	if len(recs) == 0 {
		t.Fatal("test stream produced no receptions")
	}
	allocs := testing.AllocsPerRun(50, func() {
		rx.Receive(buf)
	})
	if allocs != 0 {
		t.Errorf("instrumented Receive allocates %.1f per call with metrics disabled, want 0", allocs)
	}
}

// TestReceiveMetricsEnabled checks the counters a metrics-enabled Receiver
// reports: syncs found, header-verified receptions, CRC failures.
func TestReceiveMetricsEnabled(t *testing.T) {
	old := obs.Default()
	defer obs.SetDefault(old)
	r := obs.New()
	obs.SetDefault(r)

	buf := rxTestStream(t)
	rx := frame.NewReceiver(phy.HardDecoder{})
	recs := rx.Receive(buf)

	var hdrOK, crcFail int64
	for i := range recs {
		if recs[i].HeaderOK {
			hdrOK++
			if !recs[i].CRCOK {
				crcFail++
			}
		}
	}
	snap := r.Snapshot()
	if snap.Counters["frame.syncs_found"] <= 0 {
		t.Errorf("frame.syncs_found = %d, want > 0", snap.Counters["frame.syncs_found"])
	}
	if got := snap.Counters["frame.receptions"]; got != hdrOK {
		t.Errorf("frame.receptions = %d, want %d", got, hdrOK)
	}
	if got := snap.Counters["frame.crc_failures"]; got != crcFail {
		t.Errorf("frame.crc_failures = %d, want %d", got, crcFail)
	}
	// The metrics-enabled path stays allocation-free too: cells are
	// pre-resolved, counting is plain atomic adds.
	allocs := testing.AllocsPerRun(50, func() {
		rx.Receive(buf)
	})
	if allocs != 0 {
		t.Errorf("instrumented Receive allocates %.1f per call with metrics enabled, want 0", allocs)
	}
}
