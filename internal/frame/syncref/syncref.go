// Package syncref freezes the seed's per-offset sync correlation scan —
// ten Word32 extractions and twenty popcounts per chip offset — as the
// behavioral reference for the word-parallel frame.FindSyncs. It exists so
// exactly one copy of the reference is shared by the bit-identical parity
// tests (internal/frame) and the BenchmarkFindSyncs baseline (package ppr):
// the ≥3× speedup gate and the parity guard both measure against this
// function. Do not optimize or "fix" it; its value is that it does not
// change.
package syncref

import (
	"math/bits"

	"ppr/internal/bitutil"
	"ppr/internal/chipseq"
	"ppr/internal/frame"
	"ppr/internal/phy"
)

// patternWords rebuilds a sync pattern's codewords the way the seed did:
// pad of zero bytes followed by the delimiter, spread to 32-chip words.
func patternWords(delim byte) []uint32 {
	pattern := append(make([]byte, frame.SyncPadBytes), delim)
	return phy.SpreadSymbols(bitutil.NibblesFromBytes(pattern))
}

var (
	preambleWords  = patternWords(frame.SFD)
	postambleWords = patternWords(frame.PSFD)
)

// FindSyncs is the seed implementation of frame.FindSyncs, verbatim: a
// sliding per-offset scan that extracts each candidate window one 32-chip
// codeword at a time and accumulates both pattern distances with the
// early bailout once both exceed the threshold.
func FindSyncs(buf *bitutil.ChipWords, maxDist int) []frame.Sync {
	if maxDist <= 0 {
		maxDist = frame.DefaultSyncMaxDist
	}
	limit := buf.Len() - frame.SyncChips
	var out []frame.Sync
	for off := 0; off <= limit; off++ {
		dPre, dPost := 0, 0
		for k := 0; k < len(preambleWords); k++ {
			w := buf.Word32(off + k*chipseq.ChipsPerSymbol)
			dPre += bits.OnesCount32(w ^ preambleWords[k])
			dPost += bits.OnesCount32(w ^ postambleWords[k])
			if dPre > maxDist && dPost > maxDist {
				break
			}
		}
		kind, d := frame.SyncPreamble, dPre
		if dPost < dPre {
			kind, d = frame.SyncPostamble, dPost
		}
		if d > maxDist {
			continue
		}
		if n := len(out); n > 0 && off-out[n-1].ChipOffset < chipseq.ChipsPerSymbol {
			if d < out[n-1].Dist {
				out[n-1] = frame.Sync{Kind: kind, ChipOffset: off, Dist: d}
			}
			continue
		}
		out = append(out, frame.Sync{Kind: kind, ChipOffset: off, Dist: d})
	}
	return out
}
