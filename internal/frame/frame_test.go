package frame

import (
	"bytes"
	"testing"
	"testing/quick"

	"ppr/internal/phy"
	"ppr/internal/stats"
)

func TestHeaderEncodeParseRoundTrip(t *testing.T) {
	f := func(length, dst, src, seq uint16) bool {
		length %= MaxPayload + 1
		h := Header{Length: length, Dst: dst, Src: src, Seq: seq}
		if h == (Header{}) {
			h.Seq = 1 // the all-zero header is deliberately unparseable
		}
		got, ok := ParseHeader(h.Encode())
		return ok && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseHeaderRejectsAllZero(t *testing.T) {
	// CRC-16(eight zero bytes) is zero, so the all-zero buffer would
	// otherwise "verify" — and zero-filled payload runs look exactly like
	// it after a spurious postamble sync.
	if _, ok := ParseHeader(make([]byte, HeaderBytes)); ok {
		t.Error("accepted the all-zero header")
	}
}

func TestParseHeaderRejectsCorruption(t *testing.T) {
	h := Header{Length: 100, Dst: 1, Src: 2, Seq: 3}
	enc := h.Encode()
	for bit := 0; bit < len(enc)*8; bit++ {
		enc[bit/8] ^= 1 << uint(bit%8)
		if _, ok := ParseHeader(enc); ok {
			t.Fatalf("bit flip %d accepted", bit)
		}
		enc[bit/8] ^= 1 << uint(bit%8)
	}
}

func TestParseHeaderRejectsOversizeLength(t *testing.T) {
	h := Header{Length: MaxPayload + 1}
	if _, ok := ParseHeader(h.Encode()); ok {
		t.Error("accepted length beyond MaxPayload")
	}
}

func TestParseHeaderRejectsWrongSize(t *testing.T) {
	if _, ok := ParseHeader(make([]byte, HeaderBytes-1)); ok {
		t.Error("accepted short buffer")
	}
}

func TestAirBytesLayout(t *testing.T) {
	payload := []byte("hello, wireless world")
	f := New(7, 3, 42, payload)
	air := f.AirBytes()
	if len(air) != AirBytes(len(payload)) {
		t.Fatalf("air length %d, want %d", len(air), AirBytes(len(payload)))
	}
	// Preamble pad + SFD at the front.
	for i := 0; i < SyncPadBytes; i++ {
		if air[i] != 0 {
			t.Errorf("preamble pad byte %d = %#x", i, air[i])
		}
	}
	if air[SyncPadBytes] != SFD {
		t.Errorf("SFD = %#x", air[SyncPadBytes])
	}
	// Postamble pad + PSFD at the back.
	if air[len(air)-1] != PSFD {
		t.Errorf("PSFD = %#x", air[len(air)-1])
	}
	// Header and trailer are identical replicas.
	hdr := air[SyncBytes : SyncBytes+HeaderBytes]
	trailerStart := len(air) - SyncBytes - HeaderBytes
	trailer := air[trailerStart : trailerStart+HeaderBytes]
	if !bytes.Equal(hdr, trailer) {
		t.Error("trailer does not replicate header")
	}
	// Payload is in place.
	if !bytes.Equal(air[SyncBytes+HeaderBytes:SyncBytes+HeaderBytes+len(payload)], payload) {
		t.Error("payload not found at expected offset")
	}
}

func TestNewPanicsOnOversizePayload(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 0, 0, make([]byte, MaxPayload+1))
}

func TestAirChipsLength(t *testing.T) {
	f := New(1, 2, 3, make([]byte, 50))
	if got := f.AirChips().Len(); got != AirChips(50) {
		t.Errorf("chips %d, want %d", got, AirChips(50))
	}
}

func TestChipBufferWord32(t *testing.T) {
	rng := stats.NewRNG(1)
	chips := make([]byte, 500)
	for i := range chips {
		chips[i] = byte(rng.Intn(2))
	}
	buf := NewChipBuffer(chips)
	for off := 0; off+32 <= len(chips); off += 7 {
		var want uint32
		for i := 0; i < 32; i++ {
			if chips[off+i] != 0 {
				want |= 1 << uint(31-i)
			}
		}
		if got := buf.Word32(off); got != want {
			t.Fatalf("Word32(%d) = %#x, want %#x", off, got, want)
		}
	}
}

func TestChipBufferWord32Boundary(t *testing.T) {
	chips := make([]byte, 96)
	chips[63], chips[64], chips[95] = 1, 1, 1
	buf := NewChipBuffer(chips)
	// Window straddling the word boundary.
	got := buf.Word32(48)
	var want uint32
	want |= 1 << uint(31-(63-48))
	want |= 1 << uint(31-(64-48))
	if got != want {
		t.Errorf("straddling window %#x, want %#x", got, want)
	}
	// Window at offset 64 covers chips 64..95: chip 64 at bit 31, chip 95
	// at bit 0.
	if got := buf.Word32(64); got != 0x80000001 {
		t.Errorf("last window %#x, want 0x80000001", got)
	}
}

func TestChipBufferPanicsOutOfRange(t *testing.T) {
	buf := NewChipBuffer(make([]byte, 40))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	buf.Word32(9)
}

func TestFindSyncsCleanFrame(t *testing.T) {
	f := New(1, 2, 3, []byte("payload"))
	chips := f.AirChips()
	syncs := FindSyncs(chips, 0)
	if len(syncs) != 2 {
		t.Fatalf("got %d syncs, want 2: %+v", len(syncs), syncs)
	}
	if syncs[0].Kind != SyncPreamble || syncs[0].ChipOffset != 0 {
		t.Errorf("first sync %+v", syncs[0])
	}
	wantPost := chips.Len() - SyncChips
	if syncs[1].Kind != SyncPostamble || syncs[1].ChipOffset != wantPost {
		t.Errorf("second sync %+v, want postamble at %d", syncs[1], wantPost)
	}
}

func TestFindSyncsWithChipNoise(t *testing.T) {
	rng := stats.NewRNG(2)
	f := New(1, 2, 3, make([]byte, 100))
	chips := f.AirChips()
	// 3% chip error rate across the whole stream.
	for i := 0; i < chips.Len(); i++ {
		if rng.Bool(0.03) {
			chips.FlipBit(i)
		}
	}
	syncs := FindSyncs(chips, DefaultSyncMaxDist)
	if len(syncs) != 2 || syncs[0].Kind != SyncPreamble || syncs[1].Kind != SyncPostamble {
		t.Fatalf("noisy syncs: %+v", syncs)
	}
}

func TestFindSyncsNoFalseLocksOnNoise(t *testing.T) {
	rng := stats.NewRNG(3)
	chips := make([]byte, 50000)
	for i := range chips {
		chips[i] = byte(rng.Intn(2))
	}
	if syncs := FindSyncs(NewChipBuffer(chips), DefaultSyncMaxDist); len(syncs) != 0 {
		t.Errorf("false locks on pure noise: %+v", syncs)
	}
}

func TestFindSyncsOffsetFrame(t *testing.T) {
	// Frame embedded mid-stream at a non-aligned chip offset.
	f := New(9, 8, 7, []byte("offset test"))
	pre := make([]byte, 1237)
	rng := stats.NewRNG(4)
	for i := range pre {
		pre[i] = byte(rng.Intn(2))
	}
	chips := append(pre, f.AirChips().Bytes()...)
	chips = append(chips, pre[:301]...)
	syncs := FindSyncs(NewChipBuffer(chips), DefaultSyncMaxDist)
	if len(syncs) != 2 {
		t.Fatalf("got %+v", syncs)
	}
	if syncs[0].ChipOffset != 1237 {
		t.Errorf("preamble at %d, want 1237", syncs[0].ChipOffset)
	}
}

func TestPacketCRC32OK(t *testing.T) {
	f := New(1, 2, 3, []byte("check me"))
	air := f.AirBytes()
	hdrFields := air[SyncBytes : SyncBytes+HeaderFieldBytes]
	payload := air[SyncBytes+HeaderBytes : SyncBytes+HeaderBytes+len(f.Payload)]
	crc := air[SyncBytes+HeaderBytes+len(f.Payload) : SyncBytes+HeaderBytes+len(f.Payload)+CRC32Bytes]
	if !PacketCRC32OK(hdrFields, payload, crc) {
		t.Error("valid packet CRC rejected")
	}
	bad := append([]byte(nil), payload...)
	bad[0] ^= 1
	if PacketCRC32OK(hdrFields, bad, crc) {
		t.Error("corrupted payload accepted")
	}
}

func TestReceiveCleanFrame(t *testing.T) {
	payload := []byte("the quick brown fox jumps over the lazy dog")
	f := New(10, 20, 30, payload)
	r := NewReceiver(phy.HardDecoder{})
	recs := r.Receive(f.AirChips())
	if len(recs) != 1 {
		t.Fatalf("got %d receptions: %+v", len(recs), recs)
	}
	rec := recs[0]
	if rec.Kind != SyncPreamble {
		t.Errorf("kind %v, want preamble (dedupe should prefer it)", rec.Kind)
	}
	if !rec.HeaderOK || rec.Hdr != f.Hdr {
		t.Errorf("header %+v ok=%v", rec.Hdr, rec.HeaderOK)
	}
	if !rec.CRCOK {
		t.Error("clean frame failed CRC")
	}
	if !bytes.Equal(rec.PayloadBytes, payload) {
		t.Errorf("payload mismatch")
	}
	if rec.MissingPrefix != 0 {
		t.Errorf("missing prefix %d", rec.MissingPrefix)
	}
	for i, d := range rec.Decisions {
		if d.Hint != 0 {
			t.Fatalf("clean symbol %d has hint %v", i, d.Hint)
		}
	}
}

func TestReceiveDestroyedPreambleRecoversViaPostamble(t *testing.T) {
	payload := make([]byte, 200)
	rng := stats.NewRNG(5)
	for i := range payload {
		payload[i] = byte(rng.Intn(256))
	}
	f := New(1, 2, 3, payload)
	chips := f.AirChips()
	// Obliterate the preamble and header: the first sync+header chips become
	// random, as a strong colliding packet would leave them.
	ruined := (SyncBytes + HeaderBytes) * ChipsPerByte
	chips.FillUniform(0, ruined, rng.Uint64)
	r := NewReceiver(phy.HardDecoder{})
	recs := r.Receive(chips)
	var got *Reception
	for i := range recs {
		if recs[i].HeaderOK {
			got = &recs[i]
		}
	}
	if got == nil {
		t.Fatalf("no header-verified reception: %+v", recs)
	}
	if got.Kind != SyncPostamble {
		t.Errorf("kind %v, want postamble", got.Kind)
	}
	if got.Hdr != f.Hdr {
		t.Errorf("trailer header %+v, want %+v", got.Hdr, f.Hdr)
	}
	if !bytes.Equal(got.PayloadBytes, payload) {
		t.Error("rollback payload mismatch")
	}
	if !got.CRCOK {
		t.Error("rollback CRC should verify on intact payload")
	}
}

func TestReceivePostambleDisabled(t *testing.T) {
	f := New(1, 2, 3, make([]byte, 50))
	chips := f.AirChips()
	rng := stats.NewRNG(6)
	ruined := (SyncBytes + HeaderBytes) * ChipsPerByte
	chips.FillUniform(0, ruined, rng.Uint64)
	r := NewReceiver(phy.HardDecoder{})
	r.UsePostamble = false
	for _, rec := range r.Receive(chips) {
		if rec.HeaderOK {
			t.Fatalf("status-quo receiver recovered a packet with a destroyed preamble: %+v", rec)
		}
	}
}

func TestReceiveRollbackHorizonTruncates(t *testing.T) {
	// Shrink the circular buffer below the packet size: the front of the
	// payload must be reported missing, and the rest decoded.
	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = byte(i)
	}
	f := New(1, 2, 3, payload)
	chips := f.AirChips()
	rng := stats.NewRNG(7)
	ruined := (SyncBytes + HeaderBytes) * ChipsPerByte
	chips.FillUniform(0, ruined, rng.Uint64)
	r := NewReceiver(phy.HardDecoder{})
	r.BufferChips = AirChips(150) // buffer holds only half the packet
	var got *Reception
	for _, rec := range r.Receive(chips) {
		if rec.HeaderOK {
			cp := rec
			got = &cp
		}
	}
	if got == nil {
		t.Fatal("no reception")
	}
	if got.MissingPrefix == 0 {
		t.Fatal("expected a missing prefix with a small buffer")
	}
	if got.CRCOK {
		t.Error("CRC cannot verify with missing symbols")
	}
	// Decoded tail must match the true payload.
	startByte := (got.MissingPrefix + 1) / 2
	if !bytes.Equal(got.PayloadBytes[startByte:], payload[startByte:]) {
		t.Error("decoded tail does not match transmitted payload")
	}
}

func TestReceiveCorruptPayloadHintsMarkErrors(t *testing.T) {
	payload := make([]byte, 100)
	f := New(4, 5, 6, payload)
	chips := f.AirChips()
	// Corrupt a burst in the middle of the payload only.
	payloadStart := (SyncBytes + HeaderBytes) * ChipsPerByte
	burstStart := payloadStart + 40*ChipsPerByte
	rng := stats.NewRNG(8)
	chips.FillUniform(burstStart, burstStart+20*ChipsPerByte, rng.Uint64)
	r := NewReceiver(phy.HardDecoder{})
	recs := r.Receive(chips)
	if len(recs) != 1 || !recs[0].HeaderOK {
		t.Fatalf("recs: %+v", recs)
	}
	rec := recs[0]
	if rec.CRCOK {
		t.Error("corrupted packet passed CRC")
	}
	// Hints inside the burst must be large on average, outside near zero.
	var inBurst, outBurst []float64
	for i, d := range rec.Decisions {
		if i >= 80 && i < 120 {
			inBurst = append(inBurst, d.Hint)
		} else {
			outBurst = append(outBurst, d.Hint)
		}
	}
	if stats.Mean(inBurst) < 4 {
		t.Errorf("burst hints too low: %v", stats.Mean(inBurst))
	}
	if stats.Mean(outBurst) > 0.5 {
		t.Errorf("clean hints too high: %v", stats.Mean(outBurst))
	}
}

func TestReceiveBackToBackFrames(t *testing.T) {
	f1 := New(1, 2, 3, []byte("first frame payload"))
	f2 := New(1, 4, 9, []byte("second frame payload x"))
	chips := append(f1.AirChips().Bytes(), f2.AirChips().Bytes()...)
	r := NewReceiver(phy.HardDecoder{})
	recs := r.Receive(NewChipBuffer(chips))
	var okCount int
	for _, rec := range recs {
		if rec.HeaderOK && rec.CRCOK {
			okCount++
		}
	}
	if okCount != 2 {
		t.Fatalf("recovered %d of 2 back-to-back frames: %+v", okCount, recs)
	}
}

func TestSyncKindString(t *testing.T) {
	if SyncPreamble.String() != "preamble" || SyncPostamble.String() != "postamble" {
		t.Error("SyncKind strings")
	}
}

func TestAirSizeFormula(t *testing.T) {
	// 5 + 10 + N + 4 + 10 + 5 = N + 34
	if AirBytes(0) != 34 {
		t.Errorf("AirBytes(0) = %d", AirBytes(0))
	}
	if AirBytes(1500) != 1534 {
		t.Errorf("AirBytes(1500) = %d", AirBytes(1500))
	}
	if AirChips(10) != 44*ChipsPerByte {
		t.Errorf("AirChips(10) = %d", AirChips(10))
	}
}
