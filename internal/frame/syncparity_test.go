package frame_test

import (
	"testing"

	"ppr/internal/frame"
	"ppr/internal/frame/syncref"
	"ppr/internal/phy"
	"ppr/internal/stats"
)

// Parity suite for the word-parallel sync scanner: frame.FindSyncs must be
// bit-identical to the frozen seed implementation (internal/frame/syncref)
// on every stream — same detections, same offsets, same kinds, same
// distances, same order. The scan is deterministic (no RNG anywhere in the
// decode path), so equality is exact, not statistical.

// syncsEqual compares detection lists field by field.
func syncsEqual(a, b []frame.Sync) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// parityStreams builds the table of chip streams the scan is checked on:
// pure noise, clean and noisy frames at aligned and unaligned offsets,
// zero-length payloads (maximally self-similar sync padding), collisions,
// and truncated tails.
func parityStreams() map[string][]byte {
	rng := stats.NewRNG(77)
	noise := func(n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = byte(rng.Intn(2))
		}
		return out
	}
	flip := func(chips []byte, rate float64) []byte {
		out := append([]byte(nil), chips...)
		for i := range out {
			if rng.Bool(rate) {
				out[i] ^= 1
			}
		}
		return out
	}
	frameChips := func(pay []byte) []byte {
		return frame.New(1, 2, 3, pay).AirChips().Bytes()
	}

	streams := map[string][]byte{
		"empty":        {},
		"short":        noise(100),
		"noise50k":     noise(50000),
		"cleanFrame":   frameChips([]byte("payload")),
		"zeroPayload":  frameChips(nil),
		"noisyFrame3%": flip(frameChips(make([]byte, 64)), 0.03),
		"noisyFrame8%": flip(frameChips(make([]byte, 64)), 0.08),
	}

	// Frame at an odd, unaligned offset surrounded by noise.
	off := append(noise(1237), frameChips([]byte("offset"))...)
	streams["offsetFrame"] = append(off, noise(301)...)

	// Two back-to-back frames, the second with its preamble region
	// overwritten by the tail of a third (collision by replacement).
	a := frameChips(make([]byte, 40))
	b := frameChips([]byte("second packet"))
	collide := append(append([]byte{}, a...), noise(517)...)
	start := len(collide)
	collide = append(collide, b...)
	interferer := frameChips([]byte("x"))
	copy(collide[start:], interferer[len(interferer)-400:])
	streams["collision"] = collide

	// Frame truncated mid-postamble: scan must clip cleanly at the end.
	c := frameChips([]byte("truncated"))
	streams["truncated"] = c[:len(c)-frame.SyncChips/2]

	// Noise with near-sync content: splice real sync padding fragments in.
	near := noise(20000)
	pad := frameChips(nil)[:frame.SyncChips]
	for i := 0; i+len(pad) < len(near); i += 2777 {
		copy(near[i:], pad[:frame.SyncChips-17])
	}
	streams["nearSync"] = near

	return streams
}

func TestFindSyncsMatchesSyncref(t *testing.T) {
	for name, chips := range parityStreams() {
		buf := frame.NewChipBuffer(chips)
		for _, maxDist := range []int{0, 5, frame.DefaultSyncMaxDist, 25, 32} {
			got := frame.FindSyncs(buf, maxDist)
			want := syncref.FindSyncs(buf, maxDist)
			if !syncsEqual(got, want) {
				t.Errorf("%s maxDist=%d:\n got %+v\nwant %+v", name, maxDist, got, want)
			}
		}
	}
}

// FuzzFindSyncsParity fuzzes the scanner against the frozen reference over
// arbitrary packed chip content. Each input byte becomes 8 chips.
func FuzzFindSyncsParity(f *testing.F) {
	for _, chips := range parityStreams() {
		packed := make([]byte, 0, len(chips)/8+1)
		var acc byte
		for i, c := range chips {
			acc = acc<<1 | c&1
			if i%8 == 7 {
				packed = append(packed, acc)
				acc = 0
			}
		}
		f.Add(packed, frame.DefaultSyncMaxDist)
	}
	f.Fuzz(func(t *testing.T, data []byte, maxDist int) {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		if maxDist < 0 || maxDist > frame.SyncChips {
			maxDist = frame.DefaultSyncMaxDist
		}
		chips := make([]byte, len(data)*8)
		for i, b := range data {
			for j := 0; j < 8; j++ {
				chips[i*8+j] = b >> uint(7-j) & 1
			}
		}
		buf := frame.NewChipBuffer(chips)
		got := frame.FindSyncs(buf, maxDist)
		want := syncref.FindSyncs(buf, maxDist)
		if !syncsEqual(got, want) {
			t.Fatalf("divergence on %d chips maxDist=%d:\n got %+v\nwant %+v",
				len(chips), maxDist, got, want)
		}
	})
}

// TestFindSyncsSpeedGate enforces the PR's performance floor: the
// word-parallel scan must beat the frozen seed implementation by at least
// 3x on a realistic stream (noise with embedded frames). The margin in
// practice is far larger; 3x keeps the gate robust on slow CI machines.
func TestFindSyncsSpeedGate(t *testing.T) {
	if testing.Short() {
		t.Skip("speed gate skipped in -short")
	}
	rng := stats.NewRNG(99)
	chips := make([]byte, 0, 300000)
	noise := make([]byte, 30000)
	for f := 0; f < 4; f++ {
		for i := range noise {
			noise[i] = byte(rng.Intn(2))
		}
		chips = append(chips, noise...)
		chips = append(chips, frame.New(1, 2, uint16(f), make([]byte, 200)).AirChips().Bytes()...)
	}
	buf := frame.NewChipBuffer(chips)

	newRes := testing.Benchmark(func(b *testing.B) {
		var syncs []frame.Sync
		for i := 0; i < b.N; i++ {
			syncs = frame.AppendSyncs(syncs[:0], buf, frame.DefaultSyncMaxDist)
		}
	})
	refRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			syncref.FindSyncs(buf, frame.DefaultSyncMaxDist)
		}
	})
	ratio := float64(refRes.NsPerOp()) / float64(newRes.NsPerOp())
	t.Logf("sync scan: new %v ref %v ratio %.1fx", newRes, refRes, ratio)
	if ratio < 3 {
		t.Errorf("word-parallel scan only %.2fx faster than syncref, want >= 3x", ratio)
	}
}

// TestReceiveSteadyStateAllocs pins the zero-alloc contract of the receive
// path: once the Receiver's scratch arenas have grown to the stream's
// working set, Receive allocates nothing.
func TestReceiveSteadyStateAllocs(t *testing.T) {
	rng := stats.NewRNG(42)
	chips := make([]byte, 0, 200000)
	noise := make([]byte, 5000)
	for f := 0; f < 3; f++ {
		for i := range noise {
			noise[i] = byte(rng.Intn(2))
		}
		chips = append(chips, noise...)
		fr := frame.New(1, 2, uint16(f), make([]byte, 150)).AirChips().Bytes()
		// Light chip noise so the decode path sees non-trivial distances.
		for i := range fr {
			if rng.Bool(0.01) {
				fr[i] ^= 1
			}
		}
		chips = append(chips, fr...)
	}
	buf := frame.NewChipBuffer(chips)
	rx := frame.NewReceiver(phy.HardDecoder{})

	recs := rx.Receive(buf) // grow the arenas once
	if len(recs) == 0 {
		t.Fatal("test stream produced no receptions")
	}
	allocs := testing.AllocsPerRun(50, func() {
		if got := rx.Receive(buf); len(got) != len(recs) {
			t.Fatalf("reception count changed: %d != %d", len(got), len(recs))
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Receive allocates %.1f times per call, want 0", allocs)
	}
}

// TestReceiveSyncedGoldenCollisionStream pins the receiver's behaviour on a
// deterministic multi-packet collision stream: packet A delivered whole via
// its preamble, packet B's preamble destroyed by an interferer and
// recovered via postamble rollback, receptions ordered by payload position.
func TestReceiveSyncedGoldenCollisionStream(t *testing.T) {
	payA := []byte("packet A payload: 0123456789")
	payB := []byte("packet B payload, longer than A's: abcdefghijklmnopqrstuvwxyz")
	fa := frame.New(1, 2, 10, payA)
	fb := frame.New(1, 3, 20, payB)

	rng := stats.NewRNG(7)
	noise := func(n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = byte(rng.Intn(2))
		}
		return out
	}

	chips := noise(997)
	aStart := len(chips)
	chips = append(chips, fa.AirChips().Bytes()...)
	chips = append(chips, noise(333)...)
	bStart := len(chips)
	bChips := fb.AirChips().Bytes()
	// Destroy B's preamble and header with random chips — only the
	// postamble path can recover it.
	wreck := noise((frame.SyncBytes + frame.HeaderBytes) * frame.ChipsPerByte)
	copy(bChips, wreck)
	chips = append(chips, bChips...)
	chips = append(chips, noise(501)...)

	buf := frame.NewChipBuffer(chips)
	rx := frame.NewReceiver(phy.HardDecoder{})
	recs := rx.Receive(buf)

	var verified []frame.Reception
	for _, rec := range recs {
		if rec.HeaderOK {
			verified = append(verified, rec)
		}
	}
	if len(verified) != 2 {
		t.Fatalf("got %d verified receptions, want 2: %+v", len(verified), recs)
	}
	a, b := verified[0], verified[1]

	wantAStart := aStart + (frame.SyncBytes+frame.HeaderBytes)*frame.ChipsPerByte
	if a.Kind != frame.SyncPreamble || a.PayloadStartChip != wantAStart {
		t.Errorf("A: kind %v start %d, want preamble at %d", a.Kind, a.PayloadStartChip, wantAStart)
	}
	if !a.CRCOK || a.MissingPrefix != 0 || string(a.PayloadBytes) != string(payA) {
		t.Errorf("A not delivered whole: crc=%v missing=%d payload=%q",
			a.CRCOK, a.MissingPrefix, a.PayloadBytes)
	}

	wantBStart := bStart + (frame.SyncBytes+frame.HeaderBytes)*frame.ChipsPerByte
	if b.Kind != frame.SyncPostamble || b.PayloadStartChip != wantBStart {
		t.Errorf("B: kind %v start %d, want postamble at %d", b.Kind, b.PayloadStartChip, wantBStart)
	}
	if !b.CRCOK || b.MissingPrefix != 0 || string(b.PayloadBytes) != string(payB) {
		t.Errorf("B not recovered via postamble: crc=%v missing=%d payload=%q",
			b.CRCOK, b.MissingPrefix, b.PayloadBytes)
	}
	if b.Hdr.Src != 3 || b.Hdr.Seq != 20 || int(b.Hdr.Length) != len(payB) {
		t.Errorf("B header %+v", b.Hdr)
	}
}