package scenario

import (
	"testing"

	"ppr/internal/jam"
	"ppr/internal/stats"
)

func params() Params {
	return Params{OfferedBps: 6900, PacketBytes: 200, DurationChips: 6_000_000}
}

// drain pulls arrivals until the duration ends, with a hard cap against
// runaway streams.
func drain(t *testing.T, a Arrivals, dur int64) []int64 {
	t.Helper()
	var out []int64
	for i := 0; i < 1_000_000; i++ {
		v := a.Next()
		if v >= dur {
			return out
		}
		if len(out) > 0 && v < out[len(out)-1] {
			t.Fatalf("arrivals regressed: %d after %d", v, out[len(out)-1])
		}
		out = append(out, v)
	}
	t.Fatal("arrival stream never reached the duration")
	return nil
}

func TestPoissonMatchesConfiguredLoad(t *testing.T) {
	p := params()
	arr := drain(t, PoissonModel{}.Arrivals(p, stats.NewRNG(1)), p.DurationChips)
	// 6900 bps × 3 s / 1600 bits per packet ≈ 13 packets; wide slack.
	if len(arr) < 4 || len(arr) > 35 {
		t.Errorf("poisson produced %d arrivals, expected ~13", len(arr))
	}
}

func TestBurstyPreservesMeanLoad(t *testing.T) {
	p := params()
	p.DurationChips = 60_000_000 // 30 s to average over many on/off cycles
	var poisson, bursty int
	for seed := uint64(0); seed < 8; seed++ {
		poisson += len(drain(t, PoissonModel{}.Arrivals(p, stats.NewRNG(seed)), p.DurationChips))
		bursty += len(drain(t, DefaultBursty().Arrivals(p, stats.NewRNG(100+seed)), p.DurationChips))
	}
	ratio := float64(bursty) / float64(poisson)
	if ratio < 0.7 || ratio > 1.3 {
		t.Errorf("bursty/poisson arrival ratio %.2f; duty compensation broken", ratio)
	}
	t.Logf("arrivals over 8x30s: poisson %d, bursty %d (ratio %.2f)", poisson, bursty, ratio)
}

func TestBurstyClustersArrivals(t *testing.T) {
	p := params()
	p.DurationChips = 60_000_000
	gapsOf := func(arr []int64) (median float64, max int64) {
		if len(arr) < 3 {
			t.Fatal("too few arrivals")
		}
		var gaps []float64
		for i := 1; i < len(arr); i++ {
			g := arr[i] - arr[i-1]
			gaps = append(gaps, float64(g))
			if g > max {
				max = g
			}
		}
		return stats.Median(gaps), max
	}
	pm, _ := gapsOf(drain(t, PoissonModel{}.Arrivals(p, stats.NewRNG(5)), p.DurationChips))
	bm, bmax := gapsOf(drain(t, DefaultBursty().Arrivals(p, stats.NewRNG(5)), p.DurationChips))
	// Bursty: arrivals inside ON periods are ~4x denser (smaller median
	// gap), with long OFF silences (larger max gap).
	if bm >= pm {
		t.Errorf("bursty median gap %.0f not below poisson %.0f", bm, pm)
	}
	if float64(bmax) < 600_000 {
		t.Errorf("bursty max gap %d chips; no OFF silences visible", bmax)
	}
}

func TestJammerPeriodicClock(t *testing.T) {
	j := DefaultJammer()
	arr := drain(t, j.Arrivals(params(), stats.NewRNG(3)), 6_000_000)
	want := int(6_000_000 / j.PeriodChips)
	if len(arr) < want-2 || len(arr) > want+2 {
		t.Errorf("%d jam attempts over 3 s, want ~%d", len(arr), want)
	}
}

func TestScenarioRegistry(t *testing.T) {
	for _, name := range Names() {
		sc, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if sc.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, sc.Name())
		}
		for i := 0; i < 23; i++ {
			n := sc.Node(i, 23)
			if n.Model == nil && n.Jam == nil {
				t.Fatalf("scenario %q: sender %d has neither model nor jam strategy", name, i)
			}
		}
	}
	if sc, err := ByName(""); err != nil || sc.Name() != "poisson" {
		t.Error("empty name must resolve to poisson")
	}
	if _, err := ByName("no-such-scenario"); err == nil {
		t.Error("unknown scenario did not error")
	}
}

func TestJammerScenarioShape(t *testing.T) {
	sc := PeriodicJammer()
	j := sc.Node(0, 23)
	if !j.IgnoreCarrierSense || j.PacketBytes != DefaultJammer().BurstBytes {
		t.Errorf("jammer node misconfigured: %+v", j)
	}
	if j.Jam == nil || j.Jam.Name() != "periodic" {
		t.Errorf("periodic jammer node lacks the periodic strategy: %+v", j)
	}
	for i := 1; i < 23; i++ {
		n := sc.Node(i, 23)
		if n.IgnoreCarrierSense || n.PacketBytes != 0 || n.Jam != nil {
			t.Errorf("sender %d inherited jammer flags: %+v", i, n)
		}
	}
	r := ReactiveJammer().Node(0, 23)
	if r.Jam == nil || r.Jam.Name() != "reactive" || !r.IgnoreCarrierSense {
		t.Errorf("reactive jammer node misconfigured: %+v", r)
	}
	if r.PacketBytes != DefaultReactiveJammer().BurstBytes {
		t.Errorf("reactive jammer burst size %d, want %d", r.PacketBytes, DefaultReactiveJammer().BurstBytes)
	}
}

// TestJamScenariosRegistered checks every registered jam strategy is
// selectable as a "jam-<name>" scenario overlaying sender 0.
func TestJamScenariosRegistered(t *testing.T) {
	for _, name := range jam.Names() {
		sc, err := ByName("jam-" + name)
		if err != nil {
			t.Fatalf("jam-%s not registered: %v", name, err)
		}
		n := sc.Node(0, 23)
		if n.Jam == nil || !n.IgnoreCarrierSense || n.PacketBytes <= 0 {
			t.Errorf("jam-%s sender 0 misconfigured: %+v", name, n)
		}
		if sc.Node(1, 23).Jam != nil {
			t.Errorf("jam-%s leaked the strategy onto sender 1", name)
		}
	}
}

func TestModelNames(t *testing.T) {
	if (PoissonModel{}).Name() != "poisson" {
		t.Error("poisson name")
	}
	if DefaultBursty().Name() != "bursty" {
		t.Error("bursty name")
	}
	if DefaultJammer().Name() != "periodic-jammer" || DefaultReactiveJammer().Name() != "reactive-jammer" {
		t.Error("jammer names")
	}
}
