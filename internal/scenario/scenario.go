// Package scenario pluggably describes *what the network is doing* during a
// simulated run, separated from how the engine synthesizes and decodes chips.
// A Scenario assigns each sender a traffic model (and jammer-style behaviour
// flags); the sim layer asks it for per-sender arrival streams and schedules
// the result through the MAC.
//
// The seed engine hard-coded the paper's workload — every node a Poisson
// source at the configured offered load (Sec. 7.2). That remains the default
// (Poisson), but measurement-driven anti-jamming work (Pelechrinis et al.;
// Richa et al.'s AntiJam) motivates workloads the paper never ran: bursty
// on/off sources whose collisions cluster in time, and jammer nodes that
// blast the channel periodically or in reaction to sensed activity. Those
// ship here as Bursty and Jammer, and new models plug in by implementing
// TrafficModel and (for named CLI selection) registering a Scenario.
package scenario

import (
	"fmt"
	"sort"

	"ppr/internal/jam"
	"ppr/internal/mac"
	"ppr/internal/stats"
)

// Params carries the per-run knobs every traffic model scales itself by.
type Params struct {
	// OfferedBps is the configured per-node offered load in bits/second.
	OfferedBps float64
	// PacketBytes is the run's link-layer payload size.
	PacketBytes int
	// DurationChips is the simulated airtime; models may ignore it (the
	// scheduler stops pulling arrivals past the end) but jammers use it to
	// bound periodic timelines.
	DurationChips int64
}

// Arrivals is a stream of packet release times in chips, non-decreasing.
// The scheduler pulls until an arrival falls at or beyond the run's end.
type Arrivals interface {
	Next() int64
}

// TrafficModel generates one sender's packet arrival process.
type TrafficModel interface {
	// Name labels the model in scenario listings.
	Name() string
	// Arrivals returns the sender's arrival stream. The rng is dedicated to
	// this sender and must be the model's only randomness source so runs
	// stay reproducible.
	Arrivals(p Params, rng *stats.RNG) Arrivals
}

// Node is one sender's behaviour under a scenario: its traffic model plus
// the MAC-level flags that distinguish well-behaved sources from jammers.
type Node struct {
	// Model generates the sender's arrivals.
	Model TrafficModel
	// PacketBytes overrides the run's payload size when > 0 (jam bursts are
	// sized by the jammer, not the workload).
	PacketBytes int
	// IgnoreCarrierSense marks nodes that transmit regardless of channel
	// state. Jammers do not defer.
	IgnoreCarrierSense bool
	// Reactive marks a jammer that fires only when it senses energy above
	// the carrier-sense threshold at the arrival instant: its arrival stream
	// is a dense sensing clock, and the scheduler drops arrivals that find
	// the channel idle.
	Reactive bool
	// Jam, when non-nil, makes this node an adversary driven by the
	// composable strategy model (internal/jam) instead of a TrafficModel:
	// the scheduler polls the strategy's emitter on the shared chip-time
	// line and transmits the bursts it fires. Model is ignored.
	Jam jam.Strategy
}

// Scenario assigns behaviour to every sender in a deployment.
type Scenario interface {
	// Name identifies the scenario (CLI -scenario values).
	Name() string
	// Node returns sender i's behaviour; numSenders is the deployment size
	// so scenarios can single out specific nodes (e.g. one jammer).
	Node(i, numSenders int) Node
}

// ---- Poisson (the paper's workload) ----

// PoissonModel is the paper's traffic source: Poisson packet arrivals at the
// configured offered load (Sec. 7.2).
type PoissonModel struct{}

// Name implements TrafficModel.
func (PoissonModel) Name() string { return "poisson" }

// Arrivals implements TrafficModel by wrapping the MAC-layer source.
func (PoissonModel) Arrivals(p Params, rng *stats.RNG) Arrivals {
	return mac.NewTrafficSource(p.OfferedBps, p.PacketBytes, rng)
}

// ---- Bursty on/off ----

// Bursty is a Markov-modulated on/off source: during exponentially
// distributed ON periods the node emits Poisson arrivals at PeakFactor times
// the configured load, and during OFF periods it is silent. With
// PeakFactor = (MeanOnChips+MeanOffChips)/MeanOnChips the long-run offered
// load matches the Poisson workload, but collisions cluster: several bursty
// nodes active at once overwhelm the channel, then it drains — the traffic
// shape interference-heavy deployments actually see.
type Bursty struct {
	// MeanOnChips and MeanOffChips are the exponential means of the ON and
	// OFF period lengths in chips.
	MeanOnChips, MeanOffChips float64
	// PeakFactor multiplies the configured load during ON periods; 0 means
	// the duty-cycle-compensating factor that preserves the mean load.
	PeakFactor float64
}

// DefaultBursty returns an on/off source with ~100 ms ON and ~300 ms OFF
// periods at 2 Mchip/s — a 25% duty cycle whose ON-period rate is 4× the
// configured load, preserving the long-run mean.
func DefaultBursty() Bursty {
	return Bursty{MeanOnChips: 200_000, MeanOffChips: 600_000}
}

// Name implements TrafficModel.
func (b Bursty) Name() string { return "bursty" }

// Arrivals implements TrafficModel. Non-positive period means fall back to
// the DefaultBursty value, so the zero value is usable rather than a
// degenerate stream that never terminates.
func (b Bursty) Arrivals(p Params, rng *stats.RNG) Arrivals {
	if b.MeanOnChips <= 0 {
		b.MeanOnChips = DefaultBursty().MeanOnChips
	}
	if b.MeanOffChips <= 0 {
		b.MeanOffChips = DefaultBursty().MeanOffChips
	}
	peak := b.PeakFactor
	if peak <= 0 {
		peak = (b.MeanOnChips + b.MeanOffChips) / b.MeanOnChips
	}
	pktBits := float64(p.PacketBytes * 8)
	pktPerSec := p.OfferedBps * peak / pktBits
	meanGap := float64(mac.ChipRateHz) / pktPerSec
	a := &burstyArrivals{
		rng:     rng,
		meanGap: meanGap,
		meanOn:  b.MeanOnChips,
		meanOff: b.MeanOffChips,
	}
	// Start at a random phase of the on/off cycle so nodes desynchronize.
	a.t = rng.Float64() * (b.MeanOnChips + b.MeanOffChips)
	a.onUntil = a.t + rng.ExpFloat64()*a.meanOn
	return a
}

type burstyArrivals struct {
	rng             *stats.RNG
	meanGap         float64 // mean inter-arrival during ON, chips
	meanOn, meanOff float64
	t, onUntil      float64
}

func (a *burstyArrivals) Next() int64 {
	a.t += a.rng.ExpFloat64() * a.meanGap
	for a.t > a.onUntil {
		// The candidate fell past the ON window: skip the OFF gap and open
		// the next ON period, re-drawing the arrival inside it.
		start := a.onUntil + a.rng.ExpFloat64()*a.meanOff
		a.onUntil = start + a.rng.ExpFloat64()*a.meanOn
		a.t = start + a.rng.ExpFloat64()*a.meanGap
	}
	return int64(a.t)
}

// ---- Jammer ----

// Jammer is an adversarial node that transmits jam frames on a clock (or,
// with Reactive, whenever it senses channel activity) with no regard for the
// offered-load configuration or carrier sense.
type Jammer struct {
	// PeriodChips is the interval between jam attempts. For a reactive
	// jammer this is the sensing clock, so it should be comparable to a
	// frame's air time to hit ongoing transmissions.
	PeriodChips int64
	// BurstBytes is the jam frame payload size.
	BurstBytes int
	// JitterChips uniformly jitters each attempt to avoid pathological
	// phase-locking with periodic victims.
	JitterChips int64
	// Reactive switches from the periodic clock to sense-then-jam.
	Reactive bool
}

// DefaultJammer returns a periodic jammer: a 40-byte burst roughly every
// 25 ms (50k chips), ~10% duty cycle against full-size frames.
func DefaultJammer() Jammer {
	return Jammer{PeriodChips: 50_000, BurstBytes: 40, JitterChips: 8_000}
}

// DefaultReactiveJammer returns a sense-then-jam jammer polling every ~6 ms,
// under half a 1500-byte frame's air time, so ongoing packets are caught
// mid-flight.
func DefaultReactiveJammer() Jammer {
	return Jammer{PeriodChips: 12_000, BurstBytes: 60, JitterChips: 2_000, Reactive: true}
}

// Name implements TrafficModel.
func (j Jammer) Name() string {
	if j.Reactive {
		return "reactive-jammer"
	}
	return "periodic-jammer"
}

// Arrivals implements TrafficModel.
func (j Jammer) Arrivals(p Params, rng *stats.RNG) Arrivals {
	period := j.PeriodChips
	if period <= 0 {
		period = 50_000
	}
	return &jammerArrivals{rng: rng, period: period, jitter: j.JitterChips,
		next: int64(rng.Float64() * float64(period))}
}

type jammerArrivals struct {
	rng            *stats.RNG
	period, jitter int64
	next           int64
}

func (a *jammerArrivals) Next() int64 {
	t := a.next
	if a.jitter > 0 {
		t += int64(a.rng.Float64() * float64(a.jitter))
	}
	a.next += a.period
	return t
}

// ---- Scenario implementations ----

// uniform applies one Node template to every sender.
type uniform struct {
	name string
	node Node
}

func (u uniform) Name() string                { return u.name }
func (u uniform) Node(i, numSenders int) Node { return u.node }

// Poisson returns the default scenario: every sender a Poisson source at the
// configured load — the paper's workload.
func Poisson() Scenario {
	return uniform{name: "poisson", node: Node{Model: PoissonModel{}}}
}

// BurstyTraffic returns the all-bursty scenario: every sender an on/off
// source with the default duty cycle, same long-run load as Poisson.
func BurstyTraffic() Scenario {
	return uniform{name: "bursty", node: Node{Model: DefaultBursty()}}
}

// withJammer overlays a jammer on sender 0 of a base scenario.
type withJammer struct {
	name   string
	base   Scenario
	jammer Jammer
}

func (w withJammer) Name() string { return w.name }

func (w withJammer) Node(i, numSenders int) Node {
	if i == 0 {
		return Node{
			Model:              w.jammer,
			PacketBytes:        w.jammer.BurstBytes,
			IgnoreCarrierSense: true,
			Reactive:           w.jammer.Reactive,
		}
	}
	return w.base.Node(i, numSenders)
}

// WithJammer overlays the given jammer on sender 0 of base; the remaining
// senders keep base's behaviour.
func WithJammer(base Scenario, j Jammer) Scenario {
	return withJammer{name: j.Name(), base: base, jammer: j}
}

// withJamStrategy overlays a jam.Strategy adversary on sender 0 of a base
// scenario — the strategy-model counterpart of withJammer.
type withJamStrategy struct {
	name       string
	base       Scenario
	strat      jam.Strategy
	burstBytes int
}

func (w withJamStrategy) Name() string { return w.name }

func (w withJamStrategy) Node(i, numSenders int) Node {
	if i == 0 {
		return Node{
			Jam:                w.strat,
			PacketBytes:        w.burstBytes,
			IgnoreCarrierSense: true,
		}
	}
	return w.base.Node(i, numSenders)
}

// WithJamStrategy overlays a jam.Strategy adversary on sender 0 of base,
// jamming with burstBytes-sized frames (0 means 40 bytes); the remaining
// senders keep base's behaviour. The scenario is listed under name.
func WithJamStrategy(name string, base Scenario, strat jam.Strategy, burstBytes int) Scenario {
	if burstBytes <= 0 {
		burstBytes = 40
	}
	return withJamStrategy{name: name, base: base, strat: strat, burstBytes: burstBytes}
}

// mustJam resolves a registered jam strategy; the names used here are
// registered by internal/jam's init, so failure is a programming error.
func mustJam(name string) jam.Strategy {
	s, err := jam.ByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

// PeriodicJammer returns Poisson traffic with sender 0 replaced by the
// default periodic jammer, expressed through the jam strategy registry.
// The timeline is bit-identical to the legacy WithJammer(Poisson(),
// DefaultJammer()) construction — parity-tested in internal/sim.
func PeriodicJammer() Scenario {
	return WithJamStrategy("periodic-jammer", Poisson(), mustJam("periodic"), DefaultJammer().BurstBytes)
}

// ReactiveJammer returns Poisson traffic with sender 0 replaced by the
// default reactive (sense-then-jam) jammer, expressed through the jam
// strategy registry; bit-identical to the legacy construction.
func ReactiveJammer() Scenario {
	return WithJamStrategy("reactive-jammer", Poisson(), mustJam("reactive"), DefaultReactiveJammer().BurstBytes)
}

// registry maps CLI names to scenario constructors.
var registry = map[string]func() Scenario{
	"poisson":         Poisson,
	"bursty":          BurstyTraffic,
	"periodic-jammer": PeriodicJammer,
	"reactive-jammer": ReactiveJammer,
}

// Every registered jam strategy is also selectable as a scenario:
// "jam-<strategy>" overlays it on sender 0 of Poisson traffic.
func init() {
	for _, name := range jam.Names() {
		name := name
		burst := 40
		if name == "reactive" {
			burst = DefaultReactiveJammer().BurstBytes
		}
		registry["jam-"+name] = func() Scenario {
			return WithJamStrategy("jam-"+name, Poisson(), mustJam(name), burst)
		}
	}
}

// ByName resolves a scenario by its registry name ("" means poisson).
func ByName(name string) (Scenario, error) {
	if name == "" {
		return Poisson(), nil
	}
	mk, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (available: %v)", name, Names())
	}
	return mk(), nil
}

// Names lists the registered scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
