package modem

import (
	"math"
	"math/cmplx"
	"testing"

	"ppr/internal/frame"
	"ppr/internal/phy"
	"ppr/internal/stats"
)

func randChips(rng *stats.RNG, n int) []byte {
	c := make([]byte, n)
	for i := range c {
		c[i] = byte(rng.Intn(2))
	}
	return c
}

func TestModulatePhaseContinuity(t *testing.T) {
	m := NewModulator()
	chips := []byte{1, 0, 1, 1, 0}
	s := m.Modulate(chips)
	if len(s) != len(chips)*m.SPS {
		t.Fatalf("sample count %d", len(s))
	}
	// Adjacent samples differ in phase by exactly ±π/2/SPS.
	step := math.Pi / 2 / float64(m.SPS)
	for i := 1; i < len(s); i++ {
		dp := cmplx.Phase(s[i] * cmplx.Conj(s[i-1]))
		if math.Abs(math.Abs(dp)-step) > 1e-9 {
			t.Fatalf("phase step %v at %d, want ±%v", dp, i, step)
		}
	}
	// Constant envelope.
	for i, v := range s {
		if math.Abs(cmplx.Abs(v)-1) > 1e-9 {
			t.Fatalf("envelope %v at %d", cmplx.Abs(v), i)
		}
	}
}

func TestModDemodRoundTripNoiseless(t *testing.T) {
	rng := stats.NewRNG(1)
	m, d := NewModulator(), NewDemodulator()
	chips := randChips(rng, 500)
	s := m.Modulate(chips)
	got, soft := d.Demodulate(s, 0)
	// The differential demod consumes one chip of history: first decision
	// corresponds to chips[1].
	if len(got) != len(chips)-1 {
		t.Fatalf("got %d chips from %d", len(got), len(chips))
	}
	for i, c := range got {
		if c != chips[i+1] {
			t.Fatalf("chip %d: got %d want %d", i, c, chips[i+1])
		}
		if (soft[i] > 0) != (chips[i+1] == 1) {
			t.Fatalf("soft metric sign wrong at %d", i)
		}
	}
}

func TestDemodInvariantToCarrierPhase(t *testing.T) {
	// Differential detection must not care about the transmitter's
	// absolute phase — the property that removes carrier recovery.
	rng := stats.NewRNG(2)
	chips := randChips(rng, 200)
	d := NewDemodulator()
	for _, ph := range []float64{0, 0.7, math.Pi / 3, math.Pi, 5.1} {
		m := NewModulator()
		m.PhaseOffset = ph
		got, _ := d.Demodulate(m.Modulate(chips), 0)
		for i, c := range got {
			if c != chips[i+1] {
				t.Fatalf("phase %v: chip %d wrong", ph, i)
			}
		}
	}
}

func TestRoundTripUnderNoise(t *testing.T) {
	rng := stats.NewRNG(3)
	m, d := NewModulator(), NewDemodulator()
	chips := randChips(rng, 2000)
	s := AddAWGN(rng, m.Modulate(chips), 0.15) // ~16 dB SNR
	got, _ := d.Demodulate(s, 0)
	errs := 0
	for i, c := range got {
		if c != chips[i+1] {
			errs++
		}
	}
	if frac := float64(errs) / float64(len(got)); frac > 0.01 {
		t.Errorf("chip error rate %v at high SNR", frac)
	}
}

func TestNoiseDegradesGracefully(t *testing.T) {
	rng := stats.NewRNG(4)
	m, d := NewModulator(), NewDemodulator()
	chips := randChips(rng, 3000)
	clean := m.Modulate(chips)
	prevErrs := -1
	for _, sigma := range []float64{0.1, 0.5, 1.2} {
		s := AddAWGN(rng, clean, sigma)
		got, _ := d.Demodulate(s, 0)
		errs := 0
		for i, c := range got {
			if c != chips[i+1] {
				errs++
			}
		}
		if errs < prevErrs {
			t.Errorf("errors decreased (%d -> %d) as noise grew to %v", prevErrs, errs, sigma)
		}
		prevErrs = errs
	}
}

func TestTimingRecoveryFindsOffset(t *testing.T) {
	rng := stats.NewRNG(5)
	m, d := NewModulator(), NewDemodulator()
	chips := randChips(rng, 400)
	s := m.Modulate(chips)
	for trueOff := 0; trueOff < m.SPS; trueOff++ {
		// Drop trueOff leading samples: the receiver starts mid-chip.
		shifted := s[trueOff:]
		got := d.RecoverTiming(AddAWGN(rng, shifted, 0.1))
		// Correct demod offset re-aligns decision points to chip-interval
		// ends: (SPS - trueOff) mod SPS.
		want := (m.SPS - trueOff) % m.SPS
		if got != want {
			t.Errorf("true offset %d: recovered %d, want %d", trueOff, got, want)
		}
	}
}

func TestTimingRecoveryThenDemod(t *testing.T) {
	// End to end: unknown offset, recover timing, demodulate, compare
	// against truth with appropriate chip shift.
	rng := stats.NewRNG(6)
	m, d := NewModulator(), NewDemodulator()
	chips := randChips(rng, 600)
	s := m.Modulate(chips)[3:] // arbitrary misalignment
	s = AddAWGN(rng, s, 0.1)
	off := d.RecoverTiming(s)
	got, _ := d.Demodulate(s, off)
	// Alignment consumes a chip or two at the head; find the best matching
	// shift and require near-zero errors after it.
	bestErrs := len(got)
	for shift := 0; shift <= 3; shift++ {
		errs := 0
		n := 0
		for i := 0; i < len(got) && shift+i < len(chips); i++ {
			if got[i] != chips[shift+i] {
				errs++
			}
			n++
		}
		if errs < bestErrs {
			bestErrs = errs
		}
	}
	if frac := float64(bestErrs) / float64(len(got)); frac > 0.02 {
		t.Errorf("post-timing-recovery error rate %v", frac)
	}
}

func TestMixOverlapsSignals(t *testing.T) {
	m := NewModulator()
	a := m.Modulate([]byte{1, 1, 1, 1})
	b := m.Modulate([]byte{0, 0, 0, 0})
	mixed := Mix(3*len(a), []struct {
		Start   int
		Samples []complex128
	}{
		{0, a},
		{len(a), b},
	})
	// Regions: [0,len(a)) = a alone; [len(a),2len(a)) = b alone; rest zero.
	for i := 0; i < len(a); i++ {
		if mixed[i] != a[i] {
			t.Fatalf("sample %d not from a", i)
		}
		if mixed[len(a)+i] != b[i] {
			t.Fatalf("sample %d not from b", i)
		}
		if mixed[2*len(a)+i] != 0 {
			t.Fatalf("tail sample %d nonzero", i)
		}
	}
}

func TestAddAWGNToReusesDestination(t *testing.T) {
	rng := stats.NewRNG(21)
	m := NewModulator()
	samples := m.Modulate([]byte{1, 0, 1, 1, 0, 0, 1, 0})
	first := AddAWGNTo(nil, rng, samples, 0.1)
	if len(first) != len(samples) {
		t.Fatalf("len %d, want %d", len(first), len(samples))
	}
	second := AddAWGNTo(first, rng, samples, 0.1)
	if &second[0] != &first[0] {
		t.Error("AddAWGNTo did not reuse the destination's backing array")
	}
	// A too-small destination grows instead of truncating.
	grown := AddAWGNTo(make([]complex128, 1), rng, samples, 0.1)
	if len(grown) != len(samples) {
		t.Errorf("grown len %d, want %d", len(grown), len(samples))
	}
	// Output is the input plus bounded noise, like AddAWGN's.
	for i := range second {
		if cmplx.Abs(second[i]-samples[i]) > 1 {
			t.Fatalf("sample %d drifted more than 10 sigma", i)
		}
	}
	// In-place operation (dst == samples) is supported and sound.
	inPlace := append([]complex128(nil), samples...)
	out := AddAWGNTo(inPlace, rng, inPlace, 0.1)
	if &out[0] != &inPlace[0] {
		t.Error("in-place AddAWGNTo reallocated")
	}
	for i := range out {
		if cmplx.Abs(out[i]-samples[i]) > 1 {
			t.Fatalf("in-place sample %d drifted more than 10 sigma", i)
		}
	}
}

func TestMixToReusesAndZeroesDestination(t *testing.T) {
	m := NewModulator()
	a := m.Modulate([]byte{1, 1})
	sig := []struct {
		Start   int
		Samples []complex128
	}{{0, a}}
	dst := make([]complex128, 2*len(a))
	for i := range dst {
		dst[i] = complex(9, 9) // stale garbage that must be cleared
	}
	out := MixTo(dst, 2*len(a), sig)
	if &out[0] != &dst[0] {
		t.Error("MixTo did not reuse the destination")
	}
	for i := 0; i < len(a); i++ {
		if out[i] != a[i] {
			t.Fatalf("sample %d not the signal", i)
		}
		if out[len(a)+i] != 0 {
			t.Fatalf("stale sample %d not zeroed", len(a)+i)
		}
	}
	// Mix and MixTo(nil, ...) agree.
	ref := Mix(2*len(a), sig)
	for i := range ref {
		if ref[i] != out[i] {
			t.Fatal("Mix and MixTo diverge")
		}
	}
}

func TestDemodulateAllocatesExactly(t *testing.T) {
	m, d := NewModulator(), NewDemodulator()
	samples := m.Modulate(make([]byte, 512))
	chips, soft := d.Demodulate(samples, 0)
	if cap(chips) != len(chips) || cap(soft) != len(soft) {
		t.Errorf("demodulate over-allocated: chips %d/%d, soft %d/%d",
			len(chips), cap(chips), len(soft), cap(soft))
	}
	// Degenerate input: nothing to decide.
	if c, s := d.Demodulate(samples[:d.SPS], 0); c != nil || s != nil {
		t.Error("short input should demodulate to nothing")
	}
}

func TestStrongSignalCapturesMix(t *testing.T) {
	// 10× amplitude difference: demod follows the strong signal through the
	// overlap.
	rng := stats.NewRNG(7)
	strong, weak := NewModulator(), NewModulator()
	strong.Amplitude = 1.0
	weak.Amplitude = 0.1
	chipsS := randChips(rng, 300)
	chipsW := randChips(rng, 300)
	sS, sW := strong.Modulate(chipsS), weak.Modulate(chipsW)
	mixed := Mix(len(sS), []struct {
		Start   int
		Samples []complex128
	}{{0, sS}, {0, sW}})
	got, _ := NewDemodulator().Demodulate(mixed, 0)
	errs := 0
	for i, c := range got {
		if c != chipsS[i+1] {
			errs++
		}
	}
	if frac := float64(errs) / float64(len(got)); frac > 0.05 {
		t.Errorf("capture failed: %v chip errors against strong signal", frac)
	}
}

func TestRingSnapshotOrder(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 20; i++ {
		r.Push(complex(float64(i), 0))
	}
	snap := r.Snapshot(8)
	for i, v := range snap {
		if real(v) != float64(12+i) {
			t.Fatalf("snapshot[%d] = %v, want %d", i, v, 12+i)
		}
	}
}

func TestRingHoldsLast(t *testing.T) {
	r := NewRing(10)
	if r.HoldsLast(1) {
		t.Error("empty ring claims history")
	}
	r.Push(make([]complex128, 5)...)
	if !r.HoldsLast(5) || r.HoldsLast(6) {
		t.Error("partial ring history wrong")
	}
	r.Push(make([]complex128, 100)...)
	if !r.HoldsLast(10) || r.HoldsLast(11) {
		t.Error("full ring history wrong")
	}
}

func TestRingSnapshotPanicsBeyondHistory(t *testing.T) {
	r := NewRing(4)
	r.Push(1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Snapshot(3)
}

func TestRingPushedCount(t *testing.T) {
	r := NewRing(3)
	r.Push(1, 2, 3, 4)
	if r.Pushed() != 4 || r.Cap() != 3 {
		t.Errorf("Pushed %d Cap %d", r.Pushed(), r.Cap())
	}
}

// TestRingRollbackRecoversPostamblePacket exercises the complete Sec. 4
// receiver mechanism at sample level: the receiver continuously pushes
// baseband samples into its circular buffer; when the frame synchronizer
// spots a postamble in the demodulated chips, it rolls back through the
// ring's history and decodes the packet whose preamble a jammer destroyed.
func TestRingRollbackRecoversPostamblePacket(t *testing.T) {
	rng := stats.NewRNG(40)
	payload := make([]byte, 60)
	for i := range payload {
		payload[i] = byte(rng.Intn(256))
	}
	f := frame.New(3, 4, 5, payload)
	chips := f.AirChips().Bytes()

	m := NewModulator()
	samples := m.Modulate(chips)
	// A jammer obliterates the preamble and header: replace those samples
	// with noise-like random-phase samples.
	jammed := (frame.SyncBytes + frame.HeaderBytes) * frame.ChipsPerByte * m.SPS
	for i := 0; i < jammed; i++ {
		samples[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	samples = AddAWGN(rng, samples, 0.1)

	// The receiver's circular buffer holds one maximally-sized packet of
	// samples (Sec. 4); stream everything through it.
	ring := NewRing(frame.MaxAirChips * m.SPS)
	for off := 0; off < len(samples); off += 1024 {
		end := off + 1024
		if end > len(samples) {
			end = len(samples)
		}
		ring.Push(samples[off:end]...)
	}

	// Roll back: snapshot as much history as the ring still holds, then
	// demodulate and frame-synchronize the stored waveform.
	n := len(samples)
	if !ring.HoldsLast(n) {
		t.Fatal("ring lost history it should hold")
	}
	snap := ring.Snapshot(n)
	d := NewDemodulator()
	hard, _ := d.Demodulate(snap, d.RecoverTiming(snap))

	rx := frame.NewReceiver(phy.HardDecoder{})
	var got *frame.Reception
	for _, rec := range rx.Receive(frame.NewChipBuffer(hard)) {
		if rec.HeaderOK {
			cp := rec
			got = &cp
		}
	}
	if got == nil {
		t.Fatal("rollback decode found no packet")
	}
	if got.Kind != frame.SyncPostamble {
		t.Errorf("acquired via %v, want postamble", got.Kind)
	}
	if got.Hdr.Length != uint16(len(payload)) || got.Hdr.Src != 4 {
		t.Errorf("trailer header %+v", got.Hdr)
	}
	correct := 0
	for i, b := range got.PayloadBytes {
		if b == payload[i] {
			correct++
		}
	}
	if correct < len(payload)*9/10 {
		t.Errorf("rollback recovered only %d of %d payload bytes", correct, len(payload))
	}
}
