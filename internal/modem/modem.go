// Package modem implements the sample-level MSK (minimum-shift keying)
// transceiver the paper's GNU Radio receivers use: the CC2420's O-QPSK with
// half-sine pulse shaping is exactly MSK (Sec. 6), a continuous-phase
// modulation where each chip advances the carrier phase by ±π/2.
//
// The receiver side supplies the pieces postamble decoding needs (Sec. 4):
//
//   - differential demodulation, which needs no carrier recovery — the
//     paper notes "in our MSK implementation, there is no need to perform
//     carrier recovery";
//   - non-data-aided symbol timing recovery that can synchronize at any
//     point in a transmission, so stored samples can be symbol-aligned
//     retroactively ("allowing us to symbol-synchronize the stored samples
//     without having already heard the postamble");
//   - a circular sample buffer sized to one maximum packet, the structure a
//     receiver rolls back through when it detects a postamble.
package modem

import (
	"fmt"
	"math"
	"math/cmplx"

	"ppr/internal/stats"
)

// DefaultSPS is the default number of complex baseband samples per chip.
const DefaultSPS = 4

// Modulator produces phase-continuous MSK baseband samples from chips.
type Modulator struct {
	// SPS is samples per chip.
	SPS int
	// Amplitude scales the unit-circle baseband (received signal strength).
	Amplitude float64
	// PhaseOffset is the starting carrier phase in radians, modelling the
	// unknown phase of an unsynchronised transmitter.
	PhaseOffset float64
}

// NewModulator returns a unit-amplitude modulator at DefaultSPS.
func NewModulator() Modulator {
	return Modulator{SPS: DefaultSPS, Amplitude: 1}
}

// Modulate converts chips (0/1 per byte) to baseband samples. A chip value
// of 1 advances phase by +π/2 over the chip interval; 0 retards it by π/2.
// Phase is continuous across chips — the defining MSK property.
func (m Modulator) Modulate(chips []byte) []complex128 {
	if m.SPS <= 0 {
		panic(fmt.Sprintf("modem: SPS %d", m.SPS))
	}
	out := make([]complex128, 0, len(chips)*m.SPS)
	phase := m.PhaseOffset
	step := math.Pi / 2 / float64(m.SPS)
	for _, c := range chips {
		dir := -1.0
		if c != 0 {
			dir = 1.0
		}
		for s := 0; s < m.SPS; s++ {
			phase += dir * step
			out = append(out, cmplx.Rect(m.Amplitude, phase))
		}
	}
	return out
}

// AddAWGN adds complex white Gaussian noise of the given standard deviation
// per real dimension to a copy of the samples.
func AddAWGN(rng *stats.RNG, samples []complex128, sigma float64) []complex128 {
	return AddAWGNTo(nil, rng, samples, sigma)
}

// AddAWGNTo is AddAWGN with destination reuse: dst's backing array is
// reused when it has the capacity (pass a previous result to stop a
// steady-state sample loop from allocating per packet), and the written
// slice is returned. dst may be nil, and may be samples itself — each
// element is read before it is written, so noising a waveform in place is
// safe and costs no allocation at all.
func AddAWGNTo(dst []complex128, rng *stats.RNG, samples []complex128, sigma float64) []complex128 {
	if cap(dst) < len(samples) {
		dst = make([]complex128, len(samples))
	}
	dst = dst[:len(samples)]
	for i, s := range samples {
		dst[i] = s + complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	return dst
}

// Mix sums multiple baseband signals, each starting at its own sample
// offset, into a window of n samples — the composite waveform during a
// collision.
func Mix(n int, signals []struct {
	Start   int
	Samples []complex128
}) []complex128 {
	return MixTo(nil, n, signals)
}

// MixTo is Mix with destination reuse: dst's backing array is reused (and
// zeroed) when it has the capacity, and the written slice is returned. dst
// may be nil and may not alias any of the signals.
func MixTo(dst []complex128, n int, signals []struct {
	Start   int
	Samples []complex128
}) []complex128 {
	if cap(dst) < n {
		dst = make([]complex128, n)
	} else {
		dst = dst[:n]
		clear(dst)
	}
	for _, sig := range signals {
		for i, s := range sig.Samples {
			idx := sig.Start + i
			if idx >= 0 && idx < n {
				dst[idx] += s
			}
		}
	}
	return dst
}

// Demodulator recovers chips from MSK baseband samples.
type Demodulator struct {
	// SPS is samples per chip and must match the modulator's.
	SPS int
}

// NewDemodulator returns a demodulator at DefaultSPS.
func NewDemodulator() Demodulator { return Demodulator{SPS: DefaultSPS} }

// diff computes the one-chip differential product s[i]·conj(s[i-SPS]); its
// imaginary part's sign is the chip decision (+π/2 rotation → positive).
// Differential detection cancels any constant carrier phase offset, which
// is why no carrier recovery is needed.
func (d Demodulator) diff(samples []complex128, i int) complex128 {
	return samples[i] * cmplx.Conj(samples[i-d.SPS])
}

// RecoverTiming estimates the chip-sampling offset in [0, SPS) by choosing
// the phase that maximises the mean |Im| of the differential signal over
// the window — a non-data-aided estimator usable at any point in the
// stream.
func (d Demodulator) RecoverTiming(samples []complex128) int {
	if len(samples) < 3*d.SPS {
		return 0
	}
	bestOff, bestMetric := 0, -1.0
	for off := 0; off < d.SPS; off++ {
		var metric float64
		n := 0
		for i := 2*d.SPS - 1 + off; i < len(samples); i += d.SPS {
			metric += math.Abs(imag(d.diff(samples, i)))
			n++
		}
		if n > 0 {
			metric /= float64(n)
		}
		if metric > bestMetric {
			bestMetric, bestOff = metric, off
		}
	}
	return bestOff
}

// Demodulate slices chips at the given sampling offset: one decision per
// SPS samples. The decision point for chip k is the last sample of its
// interval, so the one-chip differential spans exactly chip k's phase
// rotation; the first chip of the stream is consumed as differential
// history. It returns hard chips and the soft per-chip metric (Im of the
// differential product, positive for chip 1).
func (d Demodulator) Demodulate(samples []complex128, offset int) (chips []byte, soft []float64) {
	start := 2*d.SPS - 1 + offset
	if start >= len(samples) {
		return nil, nil
	}
	n := (len(samples) - start + d.SPS - 1) / d.SPS
	chips = make([]byte, 0, n)
	soft = make([]float64, 0, n)
	for i := start; i < len(samples); i += d.SPS {
		v := imag(d.diff(samples, i))
		soft = append(soft, v)
		if v > 0 {
			chips = append(chips, 1)
		} else {
			chips = append(chips, 0)
		}
	}
	return chips, soft
}

// Ring is the receiver's circular sample buffer (Sec. 4): it retains the
// most recent Cap samples so that a postamble detection can roll back
// through up to one maximum-sized packet of history.
type Ring struct {
	buf   []complex128
	head  int // next write position
	count int // total samples ever pushed
}

// NewRing allocates a ring holding capacity samples.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic(fmt.Sprintf("modem: ring capacity %d", capacity))
	}
	return &Ring{buf: make([]complex128, capacity)}
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Pushed returns the total number of samples ever written.
func (r *Ring) Pushed() int { return r.count }

// Push appends samples, overwriting the oldest when full.
func (r *Ring) Push(samples ...complex128) {
	for _, s := range samples {
		r.buf[r.head] = s
		r.head = (r.head + 1) % len(r.buf)
		r.count++
	}
}

// Snapshot returns the last n samples in arrival order. It panics if n
// exceeds what the ring still holds — the rollback horizon; postamble
// decoding must check HoldsLast first.
func (r *Ring) Snapshot(n int) []complex128 {
	if !r.HoldsLast(n) {
		panic(fmt.Sprintf("modem: snapshot of %d samples exceeds held history", n))
	}
	out := make([]complex128, n)
	start := (r.head - n + len(r.buf)*2) % len(r.buf)
	for i := 0; i < n; i++ {
		out[i] = r.buf[(start+i)%len(r.buf)]
	}
	return out
}

// HoldsLast reports whether the ring still holds the most recent n samples.
func (r *Ring) HoldsLast(n int) bool {
	if n < 0 || n > len(r.buf) {
		return false
	}
	return n <= r.count
}
