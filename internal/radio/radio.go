// Package radio simulates the wireless channel of the PPR testbed at chip
// granularity. It replaces the 2.4 GHz indoor RF environment of the paper's
// 27-node office deployment with a standard log-distance propagation model
// plus per-link lognormal shadowing, an additive noise floor, and explicit
// interference accounting between overlapping transmissions.
//
// The receiver abstraction is the one PPR needs: during any instant of a
// reception the receiver slices chips from the strongest signal present, and
// each chip is flipped with probability Q(sqrt(2·SINR)) — the coherent MSK
// chip error rate at the instantaneous signal-to-interference-and-noise
// ratio. Collisions therefore destroy exactly the overlapped chip ranges
// (the weaker packet's chips become uncorrelated noise relative to the
// stronger), producing the bursty symbol errors whose structure SoftPHY
// hints expose (Sec. 7.3) — the phenomenology the whole paper rests on.
//
// Synthesis is word-level, not chip-level: streams are bitutil.ChipWords,
// noise segments draw 64 chips per RNG word, dominant-signal segments copy
// the transmitter's packed chips word-at-a-time, and chip errors are
// applied by geometric skip-sampling — the gap to the next flip is drawn in
// one shot from log(U)/log1p(-p) — so the cost of a segment is proportional
// to the errors it contains, not the chips it spans. A clean segment costs
// roughly one draw in total.
package radio

import (
	"fmt"
	"math"
	"slices"

	"ppr/internal/bitutil"
	"ppr/internal/stats"
)

// Position is a node location on the floor plan, in feet (Fig. 7's layout
// spans roughly 100×50 feet).
type Position struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two positions.
func (p Position) Dist(q Position) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Params describes the propagation environment. Defaults (DefaultParams)
// are tuned so that same-room links are near-perfect and across-floor links
// are marginal, matching the testbed's observation that each sink heard 4–8
// senders with the best links near-perfect (Sec. 7.2.2).
type Params struct {
	// TxPowerDBm is the transmit power (CC2420: 0 dBm).
	TxPowerDBm float64
	// RefLossDB is the path loss at the reference distance of 1 foot.
	RefLossDB float64
	// PathLossExp is the log-distance path loss exponent (indoor office:
	// ~3).
	PathLossExp float64
	// ShadowSigmaDB is the standard deviation of static per-link lognormal
	// shadowing.
	ShadowSigmaDB float64
	// NoiseFloorDBm is the thermal + receiver noise floor.
	NoiseFloorDBm float64
	// CSThresholdDBm is the energy level above which a carrier-sensing
	// transmitter considers the channel busy.
	CSThresholdDBm float64
}

// DefaultParams returns the environment used by all experiments.
func DefaultParams() Params {
	return Params{
		TxPowerDBm:     0,
		RefLossDB:      40,
		PathLossExp:    2.6,
		ShadowSigmaDB:  4.0,
		NoiseFloorDBm:  -95,
		CSThresholdDBm: -85,
	}
}

// DBmToMW converts decibel-milliwatts to milliwatts.
func DBmToMW(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MWToDBm converts milliwatts to decibel-milliwatts.
func MWToDBm(mw float64) float64 {
	if mw <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(mw)
}

// RxPowerDBm returns the received power over a link of the given distance
// with the given (static) shadowing deviate.
func (p Params) RxPowerDBm(distFeet, shadowDB float64) float64 {
	if distFeet < 1 {
		distFeet = 1
	}
	return p.TxPowerDBm - p.RefLossDB - 10*p.PathLossExp*math.Log10(distFeet) + shadowDB
}

// ChipErrProb returns the probability that a single chip is sliced wrongly
// at the given SINR (linear scale), the coherent MSK error rate
// Q(sqrt(2·SINR)), clamped to 0.5 (a chip can never be worse than random).
func ChipErrProb(sinr float64) float64 {
	if sinr <= 0 {
		return 0.5
	}
	p := stats.Q(math.Sqrt(2 * sinr))
	if p > 0.5 {
		p = 0.5
	}
	return p
}

// Overlap is one transmission as seen by a particular receiver during a
// synthesis window: where its chips start on the receiver's timeline, the
// chips themselves, and its received power.
type Overlap struct {
	// Start is the chip index (relative to the synthesis window origin) at
	// which the transmission's first chip arrives. It may be negative if
	// the transmission began before the window.
	Start int
	// Chips is the transmission's on-air packed chip stream.
	Chips *bitutil.ChipWords
	// PowerMW is the received power of this transmission at the receiver.
	PowerMW float64
}

// End returns the window-relative chip index one past the transmission.
func (o Overlap) End() int { return o.Start + o.Chips.Len() }

// forEachSegment walks the window [0, n) in maximal spans over which the
// active transmission set is constant: boundaries are collected from every
// overlap's entry and exit, sorted and deduplicated, and each span is
// resolved once to its dominant (strongest) transmission and the total
// active power. dom is nil on pure-noise spans. Both the hard and the soft
// synthesizer are built on this iterator.
func forEachSegment(n int, overlaps []Overlap, fn func(lo, hi int, dom *Overlap, total float64)) {
	bounds := make([]int, 0, 2+2*len(overlaps))
	bounds = append(bounds, 0, n)
	for _, o := range overlaps {
		if s := o.Start; s > 0 && s < n {
			bounds = append(bounds, s)
		}
		if e := o.End(); e > 0 && e < n {
			bounds = append(bounds, e)
		}
	}
	slices.Sort(bounds)
	bounds = slices.Compact(bounds)
	for bi := 0; bi+1 < len(bounds); bi++ {
		lo, hi := bounds[bi], bounds[bi+1]
		var dom *Overlap
		var total float64
		for i := range overlaps {
			o := &overlaps[i]
			if o.Start <= lo && o.End() >= hi {
				total += o.PowerMW
				if dom == nil || o.PowerMW > dom.PowerMW {
					dom = o
				}
			}
		}
		fn(lo, hi, dom, total)
	}
}

// flipSparse flips each chip of out[lo, hi) independently with probability
// p by geometric skip-sampling: the gap to the next flip is
// ⌊log(U)/log1p(-p)⌋ failures before the next success of a Bernoulli(p)
// sequence, drawn in one shot. Cost is one draw per flip (plus one to run
// off the end), so clean segments are near-free and even a 0.5-probability
// collision segment costs no more per chip than the per-chip Bernoulli it
// replaces.
func flipSparse(rng *stats.RNG, out *bitutil.ChipWords, lo, hi int, p float64) {
	if p <= 0 {
		return
	}
	denom := math.Log1p(-p) // < 0 for p in (0, 1)
	span := float64(hi - lo)
	for t := lo; ; t++ {
		u := 1 - rng.Float64() // (0, 1]: log is finite
		gap := math.Log(u) / denom
		if gap >= span-float64(t-lo) {
			return
		}
		t += int(gap)
		out.FlipBit(t)
	}
}

// Synthesize produces the hard-decision chip stream a receiver observes
// over a window of n chips, given every transmission audible during the
// window and the noise floor. Where no transmission is active the receiver
// slices pure noise (uniform random chips); where one or more are active,
// each chip comes from the strongest, flipped with probability
// ChipErrProb(P_strongest / (noise + ΣP_others)).
//
// The window is processed in segments between transmission boundaries, so
// the active set, dominant signal and chip error probability are computed
// once per segment; within a segment, work is word-level (see the package
// comment), so cost scales with errors rather than chips.
func Synthesize(rng *stats.RNG, n int, overlaps []Overlap, noiseMW float64) *bitutil.ChipWords {
	if n < 0 {
		panic(fmt.Sprintf("radio: negative window %d", n))
	}
	out := bitutil.NewChipWords(n)
	forEachSegment(n, overlaps, func(lo, hi int, dom *Overlap, total float64) {
		if dom == nil {
			out.FillUniform(lo, hi, rng.Uint64)
			return
		}
		out.CopyFrom(lo, dom.Chips, lo-dom.Start, hi-lo)
		sinr := dom.PowerMW / (noiseMW + (total - dom.PowerMW))
		flipSparse(rng, out, lo, hi, ChipErrProb(sinr))
	})
	return out
}

// DefaultCoherenceChips is the fading coherence interval used by the
// simulator: ~2 ms at 2 Mchip/s, a pedestrian-Doppler indoor coherence
// time. A 1500-byte packet (≈49 ms) spans several independent fade blocks,
// reproducing the paper's observation that SINR "varies in time even
// within a single packet transmission" (Sec. 1). It is a multiple of 64,
// so fading blocks slice the packed transmit stream without copying.
const DefaultCoherenceChips = 4096

// RicianK is the fading model's K factor (LOS-to-scatter power ratio).
// K≈2 is a typical indoor office value: deep fades happen but links spend
// real time in the partially-degraded band where codeword errors scatter —
// exactly the regime where whole fragments die but individual codewords
// survive between errors.
const RicianK = 2.0

// ricianPowerFade draws a unit-mean Rician power fade factor.
func ricianPowerFade(rng *stats.RNG, k float64) float64 {
	// LOS amplitude a with a² = K/(K+1); scattered component is complex
	// Gaussian with per-dimension variance 1/(2(K+1)), giving E[power]=1.
	a := math.Sqrt(k / (k + 1))
	s := math.Sqrt(1 / (2 * (k + 1)))
	x := a + rng.NormFloat64()*s
	y := rng.NormFloat64() * s
	return x*x + y*y
}

// SynthesizeFading is Synthesize with block Rician fading layered on each
// transmission: every coherence interval of every overlap draws an
// independent unit-mean Rician power fade around its mean received power.
// Fading is what pushes marginal links into partial-packet territory even
// without collisions — some stretches of a packet fade out or degrade
// while the rest arrives clean.
func SynthesizeFading(rng *stats.RNG, n int, overlaps []Overlap, noiseMW float64, coherenceChips int) *bitutil.ChipWords {
	if coherenceChips <= 0 {
		return Synthesize(rng, n, overlaps, noiseMW)
	}
	faded := make([]Overlap, 0, len(overlaps)*4)
	for _, o := range overlaps {
		// Split the overlap into coherence blocks, each with its own fade.
		// Block boundaries are aligned to the transmission, not the window,
		// so a given packet fades identically regardless of windowing; when
		// coherenceChips is a multiple of 64 (the default) the blocks are
		// zero-copy views of the transmit stream.
		for blk := 0; blk < o.Chips.Len(); blk += coherenceChips {
			end := blk + coherenceChips
			if end > o.Chips.Len() {
				end = o.Chips.Len()
			}
			faded = append(faded, Overlap{
				Start:   o.Start + blk,
				Chips:   o.Chips.Slice(blk, end),
				PowerMW: o.PowerMW * ricianPowerFade(rng, RicianK),
			})
		}
	}
	return Synthesize(rng, n, faded, noiseMW)
}

// SynthesizeSoft produces per-chip soft samples over the window: the
// dominant transmission's antipodal chip value plus Gaussian noise with
// σ = 1/sqrt(2·SINR) (so the matched-filter SNR matches the hard-decision
// error rate), or pure unit Gaussian noise where nothing is active. Used by
// the sample-level experiments; the capacity experiments use Synthesize.
func SynthesizeSoft(rng *stats.RNG, n int, overlaps []Overlap, noiseMW float64) []float64 {
	out := make([]float64, n)
	forEachSegment(n, overlaps, func(lo, hi int, dom *Overlap, total float64) {
		if dom == nil {
			for t := lo; t < hi; t++ {
				out[t] = rng.NormFloat64()
			}
			return
		}
		sinr := dom.PowerMW / (noiseMW + (total - dom.PowerMW))
		sigma := math.Inf(1)
		if sinr > 0 {
			sigma = 1 / math.Sqrt(2*sinr)
		}
		for t := lo; t < hi; t++ {
			v := -1.0
			if dom.Chips.Bit(t-dom.Start) != 0 {
				v = 1.0
			}
			out[t] = v + rng.NormFloat64()*sigma
		}
	})
	return out
}

// HardFromSoft slices soft samples back to hard chips by sign, the
// demodulator's hard decision. The output is byte-per-chip: soft samples
// only exist at the sample-level modem boundary, where that is the lingua
// franca.
func HardFromSoft(soft []float64) []byte {
	out := make([]byte, len(soft))
	for i, v := range soft {
		if v > 0 {
			out[i] = 1
		}
	}
	return out
}
