package radio

import (
	"math"
	"testing"

	"ppr/internal/bitutil"
	"ppr/internal/stats"
)

func TestDBmMWRoundTrip(t *testing.T) {
	for _, dbm := range []float64{-100, -30, 0, 10} {
		if got := MWToDBm(DBmToMW(dbm)); math.Abs(got-dbm) > 1e-9 {
			t.Errorf("round trip %v -> %v", dbm, got)
		}
	}
	if !math.IsInf(MWToDBm(0), -1) {
		t.Error("MWToDBm(0) should be -Inf")
	}
}

func TestRxPowerMonotoneInDistance(t *testing.T) {
	p := DefaultParams()
	prev := math.Inf(1)
	for d := 1.0; d < 200; d += 1 {
		rx := p.RxPowerDBm(d, 0)
		if rx > prev {
			t.Fatalf("rx power increased with distance at %v ft", d)
		}
		prev = rx
	}
}

func TestRxPowerClampsBelowOneFoot(t *testing.T) {
	p := DefaultParams()
	if p.RxPowerDBm(0.1, 0) != p.RxPowerDBm(1, 0) {
		t.Error("distances below 1 ft should clamp")
	}
}

func TestRxPowerShadowing(t *testing.T) {
	p := DefaultParams()
	if p.RxPowerDBm(10, 6)-p.RxPowerDBm(10, 0) != 6 {
		t.Error("shadowing should add in dB")
	}
}

func TestChipErrProbLimits(t *testing.T) {
	if got := ChipErrProb(0); got != 0.5 {
		t.Errorf("ChipErrProb(0) = %v", got)
	}
	if got := ChipErrProb(-1); got != 0.5 {
		t.Errorf("negative SINR should give 0.5, got %v", got)
	}
	if got := ChipErrProb(100); got > 1e-9 {
		t.Errorf("high SINR should give ~0 error, got %v", got)
	}
}

func TestChipErrProbMonotone(t *testing.T) {
	prev := 0.6
	for s := 0.01; s < 50; s *= 1.3 {
		p := ChipErrProb(s)
		if p > prev {
			t.Fatalf("chip error rate increased with SINR at %v", s)
		}
		if p < 0 || p > 0.5 {
			t.Fatalf("chip error rate %v out of [0,0.5]", p)
		}
		prev = p
	}
}

func TestChipErrProbKnownPoint(t *testing.T) {
	// At SINR = 1 (0 dB): Q(sqrt(2)) ≈ 0.0786.
	if got := ChipErrProb(1); math.Abs(got-0.0786) > 0.001 {
		t.Errorf("ChipErrProb(1) = %v, want ~0.0786", got)
	}
}

func chipsOfPattern(n int, v byte) *bitutil.ChipWords {
	b := make([]byte, n)
	for i := range b {
		b[i] = v
	}
	return bitutil.PackChipBytes(b)
}

func TestSynthesizeNoiseOnly(t *testing.T) {
	rng := stats.NewRNG(1)
	out := Synthesize(rng, 10000, nil, DBmToMW(-95))
	frac := float64(out.OnesCount()) / 10000
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("noise chips not balanced: %v", frac)
	}
}

func TestSynthesizeCleanSignal(t *testing.T) {
	rng := stats.NewRNG(2)
	chips := chipsOfPattern(5000, 1)
	// 30 dB SNR: essentially error-free.
	out := Synthesize(rng, 5000, []Overlap{{Start: 0, Chips: chips, PowerMW: DBmToMW(-60)}}, DBmToMW(-90))
	if errs := 5000 - out.OnesCount(); errs != 0 {
		t.Errorf("%d chip errors at 30 dB SNR", errs)
	}
}

func TestSynthesizeErrorRateMatchesModel(t *testing.T) {
	rng := stats.NewRNG(3)
	const n = 200000
	chips := chipsOfPattern(n, 0)
	noise := DBmToMW(-90)
	sig := DBmToMW(-87) // 3 dB SNR
	out := Synthesize(rng, n, []Overlap{{Start: 0, Chips: chips, PowerMW: sig}}, noise)
	want := ChipErrProb(sig / noise)
	got := float64(out.OnesCount()) / n
	if math.Abs(got-want) > 0.005 {
		t.Errorf("empirical chip error rate %v, model %v", got, want)
	}
}

func TestSynthesizeCaptureEffect(t *testing.T) {
	// A strong packet overlapping a weak one: the strong one's chips come
	// through nearly clean; the weak one's region is effectively noise
	// relative to its own pattern.
	rng := stats.NewRNG(4)
	const n = 20000
	strong := Overlap{Start: 0, Chips: chipsOfPattern(n, 1), PowerMW: DBmToMW(-50)}
	weak := Overlap{Start: 0, Chips: chipsOfPattern(n, 0), PowerMW: DBmToMW(-70)}
	out := Synthesize(rng, n, []Overlap{strong, weak}, DBmToMW(-95))
	// Strong has 20 dB SINR over the weak: ≥ 99.9% of chips should be its.
	if frac := float64(out.OnesCount()) / n; frac < 0.999 {
		t.Errorf("capture: strong signal only got %v of chips", frac)
	}
}

func TestSynthesizeComparableCollisionCorruptsBoth(t *testing.T) {
	rng := stats.NewRNG(5)
	const n = 20000
	a := Overlap{Start: 0, Chips: chipsOfPattern(n, 1), PowerMW: DBmToMW(-60)}
	b := Overlap{Start: 0, Chips: chipsOfPattern(n, 0), PowerMW: DBmToMW(-60.1)}
	out := Synthesize(rng, n, []Overlap{a, b}, DBmToMW(-95))
	frac := float64(out.OnesCount()) / n
	// At ~0 dB SINR the dominant still wins most chips but with substantial
	// errors (Q(sqrt(2)) ≈ 8%); neither side is clean.
	if frac > 0.97 || frac < 0.80 {
		t.Errorf("0 dB collision gave dominant fraction %v", frac)
	}
}

func TestSynthesizePartialOverlapSegments(t *testing.T) {
	// Transmission B overlaps only the tail of A; A's head must be clean,
	// A's tail corrupted.
	rng := stats.NewRNG(6)
	const n = 10000
	a := Overlap{Start: 0, Chips: chipsOfPattern(6000, 1), PowerMW: DBmToMW(-60)}
	b := Overlap{Start: 4000, Chips: chipsOfPattern(6000, 0), PowerMW: DBmToMW(-57)} // 3 dB stronger
	out := Synthesize(rng, n, []Overlap{a, b}, DBmToMW(-95))
	headErrs := 0
	for t0 := 0; t0 < 4000; t0++ {
		if out.Bit(t0) != 1 {
			headErrs++
		}
	}
	if headErrs != 0 {
		t.Errorf("pre-collision head had %d errors", headErrs)
	}
	// During the overlap, B dominates: most chips are 0.
	bWins := 0
	for t0 := 4000; t0 < 6000; t0++ {
		if out.Bit(t0) == 0 {
			bWins++
		}
	}
	if frac := float64(bWins) / 2000; frac < 0.75 {
		t.Errorf("stronger collider only won %v of overlap chips", frac)
	}
	// After A ends, B alone continues, nearly clean.
	tailErrs := 0
	for t0 := 6000; t0 < 10000; t0++ {
		tailErrs += int(out.Bit(t0))
	}
	if frac := float64(tailErrs) / 4000; frac > 0.01 {
		t.Errorf("post-collision tail error rate %v", frac)
	}
}

func TestSynthesizeNegativeStartClips(t *testing.T) {
	rng := stats.NewRNG(7)
	o := Overlap{Start: -500, Chips: chipsOfPattern(1000, 1), PowerMW: DBmToMW(-50)}
	out := Synthesize(rng, 1000, []Overlap{o}, DBmToMW(-95))
	// Chips 0..499 covered by the transmission's tail; 500.. is noise.
	for i := 0; i < 500; i++ {
		if out.Bit(i) != 1 {
			t.Fatalf("chip %d should be signal", i)
		}
	}
}

func TestSynthesizeSoftStatistics(t *testing.T) {
	rng := stats.NewRNG(8)
	const n = 50000
	sig := DBmToMW(-80)
	noise := DBmToMW(-86) // 6 dB SNR: sigma = 1/sqrt(2*3.98) ≈ 0.354
	soft := SynthesizeSoft(rng, n, []Overlap{{Start: 0, Chips: chipsOfPattern(n, 1), PowerMW: sig}}, noise)
	var mean, sq float64
	for _, v := range soft {
		mean += v
	}
	mean /= n
	for _, v := range soft {
		sq += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(sq / n)
	if math.Abs(mean-1) > 0.01 {
		t.Errorf("soft mean %v, want ~1", mean)
	}
	wantSD := 1 / math.Sqrt(2*sig/noise)
	if math.Abs(sd-wantSD) > 0.01 {
		t.Errorf("soft sd %v, want ~%v", sd, wantSD)
	}
}

func TestHardFromSoftAgreesWithSign(t *testing.T) {
	soft := []float64{-0.5, 0.2, -3, 4, 0}
	hard := HardFromSoft(soft)
	want := []byte{0, 1, 0, 1, 0}
	for i := range want {
		if hard[i] != want[i] {
			t.Errorf("chip %d: %d want %d", i, hard[i], want[i])
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	mk := func() *bitutil.ChipWords {
		rng := stats.NewRNG(99)
		return Synthesize(rng, 1000, []Overlap{{Start: 100, Chips: chipsOfPattern(500, 1), PowerMW: DBmToMW(-70)}}, DBmToMW(-90))
	}
	a, b := mk(), mk()
	a.XORWith(b)
	if a.OnesCount() != 0 {
		t.Fatal("synthesis not deterministic under fixed seed")
	}
}

func TestPositionDist(t *testing.T) {
	if d := (Position{0, 0}).Dist(Position{3, 4}); d != 5 {
		t.Errorf("dist %v, want 5", d)
	}
}

func TestSynthesizeFadingDeterministic(t *testing.T) {
	mk := func() *bitutil.ChipWords {
		rng := stats.NewRNG(31)
		o := Overlap{Start: 0, Chips: chipsOfPattern(30000, 1), PowerMW: DBmToMW(-85)}
		return SynthesizeFading(rng, 30000, []Overlap{o}, DBmToMW(-95), DefaultCoherenceChips)
	}
	a, b := mk(), mk()
	a.XORWith(b)
	if a.OnesCount() != 0 {
		t.Fatal("fading synthesis not deterministic")
	}
}

func TestSynthesizeFadingZeroCoherenceFallsBack(t *testing.T) {
	rngA, rngB := stats.NewRNG(7), stats.NewRNG(7)
	o := Overlap{Start: 0, Chips: chipsOfPattern(5000, 1), PowerMW: DBmToMW(-60)}
	a := SynthesizeFading(rngA, 5000, []Overlap{o}, DBmToMW(-95), 0)
	b := Synthesize(rngB, 5000, []Overlap{o}, DBmToMW(-95))
	a.XORWith(b)
	if a.OnesCount() != 0 {
		t.Fatal("coherence 0 should match unfaded synthesis exactly")
	}
}

func TestSynthesizeFadingBlockStructure(t *testing.T) {
	// On a marginal link, chip errors must cluster by coherence block:
	// some blocks nearly clean, some heavily degraded — not a uniform
	// smear.
	rng := stats.NewRNG(8)
	const nBlocks = 200
	const n = nBlocks * 4096
	o := Overlap{Start: 0, Chips: chipsOfPattern(n, 1), PowerMW: DBmToMW(-91)} // 4 dB mean SNR
	out := SynthesizeFading(rng, n, []Overlap{o}, DBmToMW(-95), 4096)
	clean, degraded := 0, 0
	for blk := 0; blk < nBlocks; blk++ {
		errs := 4096 - out.Slice(blk*4096, (blk+1)*4096).OnesCount()
		frac := float64(errs) / 4096
		if frac < 0.005 {
			clean++
		}
		if frac > 0.10 {
			degraded++
		}
	}
	if clean == 0 {
		t.Error("no clean fade blocks at 4 dB mean SNR")
	}
	if degraded == 0 {
		t.Error("no heavily degraded blocks at 4 dB mean SNR with Rician K=2")
	}
	t.Logf("fade blocks: %d clean, %d degraded of %d", clean, degraded, nBlocks)
}

func TestRicianFadeUnitMean(t *testing.T) {
	rng := stats.NewRNG(9)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		f := ricianPowerFade(rng, RicianK)
		if f < 0 {
			t.Fatal("negative fade power")
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-1) > 0.01 {
		t.Errorf("Rician fade mean %v, want ~1", mean)
	}
}

func TestRicianKControlsSpread(t *testing.T) {
	// Larger K concentrates the fade around 1 (less variance).
	variance := func(k float64) float64 {
		rng := stats.NewRNG(10)
		const n = 100000
		var sum, sq float64
		for i := 0; i < n; i++ {
			f := ricianPowerFade(rng, k)
			sum += f
			sq += f * f
		}
		mean := sum / n
		return sq/n - mean*mean
	}
	if v1, v10 := variance(1), variance(10); v10 >= v1 {
		t.Errorf("variance did not shrink with K: K=1 %v, K=10 %v", v1, v10)
	}
}
