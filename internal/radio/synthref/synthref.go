// Package synthref freezes the seed's byte-per-chip channel synthesizer —
// one RNG draw and one byte store per chip — as the behavioral reference
// for the packed word-level radio.Synthesize. It exists so exactly one
// copy of the reference is shared by the statistical-equivalence tests
// (internal/radio) and the BenchmarkSynthesize baseline (package ppr): the
// ≥5× speedup claim and the model-drift guard both measure against this
// function. Do not optimize or "fix" it; its value is that it does not
// change.
package synthref

import (
	"sort"

	"ppr/internal/radio"
	"ppr/internal/stats"
)

// Synthesize is the seed implementation of radio.Synthesize, verbatim
// modulo the packed-chip accessor on the (now packed) Overlap input.
func Synthesize(rng *stats.RNG, n int, overlaps []radio.Overlap, noiseMW float64) []byte {
	out := make([]byte, n)
	bounds := []int{0, n}
	for _, o := range overlaps {
		if s := o.Start; s > 0 && s < n {
			bounds = append(bounds, s)
		}
		if e := o.End(); e > 0 && e < n {
			bounds = append(bounds, e)
		}
	}
	sort.Ints(bounds)
	for bi := 0; bi+1 < len(bounds); bi++ {
		lo, hi := bounds[bi], bounds[bi+1]
		if lo >= hi {
			continue
		}
		var dom *radio.Overlap
		var total float64
		for i := range overlaps {
			o := &overlaps[i]
			if o.Start <= lo && o.End() >= hi {
				total += o.PowerMW
				if dom == nil || o.PowerMW > dom.PowerMW {
					dom = o
				}
			}
		}
		if dom == nil {
			for t := lo; t < hi; t++ {
				out[t] = byte(rng.Uint64() & 1)
			}
			continue
		}
		pErr := radio.ChipErrProb(dom.PowerMW / (noiseMW + (total - dom.PowerMW)))
		for t := lo; t < hi; t++ {
			c := dom.Chips.Bit(t - dom.Start)
			if rng.Bool(pErr) {
				c ^= 1
			}
			out[t] = c
		}
	}
	return out
}
