package radio_test

// Statistical-equivalence tests for the packed, sparse-error channel
// synthesizer. The word-level Synthesize draws randomness in a different
// pattern from the seed's byte-per-chip implementation (64 noise chips per
// word, one draw per flip instead of one per chip), so exact chip streams
// necessarily differ. What must NOT differ is the channel model itself:
// the flip rate at every SINR, the balance of noise chips, and the
// segment structure. These tests pin those invariants against the frozen
// reference implementation (internal/radio/synthref) and against the
// analytic model, which is what lets the figure-level baselines be
// refreshed once instead of chasing bit-parity with a representation that
// no longer exists.
//
// This file is an external test package so it can import synthref, which
// itself imports radio.

import (
	"math"
	"testing"

	"ppr/internal/bitutil"
	"ppr/internal/radio"
	"ppr/internal/radio/synthref"
	"ppr/internal/stats"
)

// patternChips builds an all-v packed chip stream.
func patternChips(n int, v byte) *bitutil.ChipWords {
	b := make([]byte, n)
	for i := range b {
		b[i] = v
	}
	return bitutil.PackChipBytes(b)
}

// flipRate measures the empirical chip error rate of a synthesized stream
// against an all-v transmitted pattern.
func flipRate(out *bitutil.ChipWords, v byte) float64 {
	ones := out.OnesCount()
	if v != 0 {
		return float64(out.Len()-ones) / float64(out.Len())
	}
	return float64(ones) / float64(out.Len())
}

// TestSynthesizeFlipRateMatchesModelAcrossSINR sweeps the SINR range the
// simulator actually operates over — clean links, marginal links, 0 dB
// collisions, and the sub-noise regime where p saturates at 0.5 — and
// requires the packed synthesizer's empirical flip rate to sit within a
// CI-style band of ChipErrProb at every point. This is the guard that
// replaces bit-parity with the seed: the error *model* is unchanged even
// though the draw sequence is not.
func TestSynthesizeFlipRateMatchesModelAcrossSINR(t *testing.T) {
	const n = 400000
	noise := radio.DBmToMW(-95)
	chips := patternChips(n, 1)
	for i, sigDBm := range []float64{-75, -88, -92, -95, -98} {
		rng := stats.NewRNG(uint64(100 + i))
		sig := radio.DBmToMW(sigDBm)
		out := radio.Synthesize(rng, n, []radio.Overlap{{Start: 0, Chips: chips, PowerMW: sig}}, noise)
		want := radio.ChipErrProb(sig / noise)
		got := flipRate(out, 1)
		// Binomial standard error plus a safety factor of 5.
		tol := 5*math.Sqrt(want*(1-want)/n) + 1e-4
		if math.Abs(got-want) > tol {
			t.Errorf("sig %v dBm: flip rate %v, model %v (tol %v)", sigDBm, got, want, tol)
		}
	}
}

// TestSynthesizeMatchesByteReferenceStatistically runs the packed and the
// frozen byte-per-chip synthesizer over the same mixed window (noise head,
// clean dominant, partial collision, noise tail) and requires their
// per-segment flip statistics to agree within sampling error.
func TestSynthesizeMatchesByteReferenceStatistically(t *testing.T) {
	const n = 320000
	noise := radio.DBmToMW(-95)
	a := radio.Overlap{Start: 40000, Chips: patternChips(200000, 1), PowerMW: radio.DBmToMW(-88)}
	b := radio.Overlap{Start: 160000, Chips: patternChips(120000, 0), PowerMW: radio.DBmToMW(-87)}
	overlaps := []radio.Overlap{a, b}

	packed := radio.Synthesize(stats.NewRNG(7), n, overlaps, noise)
	ref := bitutil.PackChipBytes(synthref.Synthesize(stats.NewRNG(7), n, overlaps, noise))

	segments := []struct {
		name   string
		lo, hi int
	}{
		{"noise-head", 0, 40000},
		{"clean-a", 40000, 160000},
		{"collision", 160000, 240000},
		{"noise-tail", 280000, 320000},
	}
	for _, seg := range segments {
		w := seg.hi - seg.lo
		gp := float64(packed.Slice(seg.lo, seg.hi).OnesCount()) / float64(w)
		gr := float64(ref.Slice(seg.lo, seg.hi).OnesCount()) / float64(w)
		// Two independent binomial samples: tolerance ~5 joint standard
		// errors at worst-case p=0.5.
		tol := 5 * math.Sqrt(2*0.25/float64(w))
		if math.Abs(gp-gr) > tol {
			t.Errorf("%s: packed ones fraction %v vs reference %v (tol %v)", seg.name, gp, gr, tol)
		}
	}
}

// TestSynthesizeNoiseWordBalance checks the word-level noise fill for both
// global balance and absence of positional bias across word boundaries
// (every chip position modulo 64 must be uniform — a masking bug in the
// partial-word paths would show up here).
func TestSynthesizeNoiseWordBalance(t *testing.T) {
	const n = 64 * 4000
	rng := stats.NewRNG(11)
	out := radio.Synthesize(rng, n, nil, radio.DBmToMW(-95))
	var byPos [64]int
	for i := 0; i < n; i++ {
		byPos[i%64] += int(out.Bit(i))
	}
	total := 0
	for pos, ones := range byPos {
		total += ones
		frac := float64(ones) / (n / 64)
		if frac < 0.42 || frac > 0.58 {
			t.Errorf("bit position %d: ones fraction %v", pos, frac)
		}
	}
	if frac := float64(total) / n; frac < 0.49 || frac > 0.51 {
		t.Errorf("overall noise balance %v", frac)
	}
}

// TestSynthesizeUnalignedSegmentsMatchModel places segment boundaries at
// adversarial offsets (mid-word, one off word edges) and verifies both the
// copied chips and the flip rate — the paths where the word-run masking
// must be exact.
func TestSynthesizeUnalignedSegmentsMatchModel(t *testing.T) {
	noise := radio.DBmToMW(-95)
	for _, start := range []int{1, 63, 64, 65, 127, 1000} {
		rng := stats.NewRNG(uint64(start))
		const txLen = 100000
		o := radio.Overlap{Start: start, Chips: patternChips(txLen, 1), PowerMW: radio.DBmToMW(-60)}
		n := start + txLen + 77
		out := radio.Synthesize(rng, n, []radio.Overlap{o}, noise)
		// 35 dB SNR: the dominant region must be exactly the transmitted
		// pattern (flip probability ~1e-12).
		for i := start; i < start+txLen; i++ {
			if out.Bit(i) != 1 {
				t.Fatalf("start %d: chip %d corrupted in clean dominant region", start, i)
			}
		}
		// The surrounding noise must be balanced, not zero-filled.
		head := out.Slice(0, start).OnesCount()
		tail := out.Slice(start+txLen, n).OnesCount()
		if start > 32 && head == 0 {
			t.Errorf("start %d: noise head all zero", start)
		}
		if tail == 0 {
			t.Errorf("start %d: noise tail all zero", start)
		}
	}
}

// TestSynthesizeSoftSharesSegmentIterator pins the deduplicated segment
// logic: hard and soft synthesis over the same overlaps must agree on
// where the dominant signal is (sign structure), including on segments
// whose boundaries coincide (duplicate bounds collapse via slices.Compact).
func TestSynthesizeSoftSharesSegmentIterator(t *testing.T) {
	noise := radio.DBmToMW(-95)
	// Two overlaps sharing a boundary at 5000 produce a duplicate bound.
	a := radio.Overlap{Start: 0, Chips: patternChips(5000, 1), PowerMW: radio.DBmToMW(-60)}
	b := radio.Overlap{Start: 5000, Chips: patternChips(5000, 0), PowerMW: radio.DBmToMW(-60)}
	soft := radio.SynthesizeSoft(stats.NewRNG(3), 10000, []radio.Overlap{a, b}, noise)
	aPos, bNeg := 0, 0
	for i := 0; i < 5000; i++ {
		if soft[i] > 0 {
			aPos++
		}
		if soft[5000+i] < 0 {
			bNeg++
		}
	}
	if aPos < 4950 || bNeg < 4950 {
		t.Errorf("soft segment structure wrong: a positive %d/5000, b negative %d/5000", aPos, bNeg)
	}
}
