package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestTracerWritesLoadableJSON checks the Chrome trace-format shape
// Perfetto requires: a traceEvents array whose entries carry ph/ts/pid/tid,
// with metadata naming processes and lanes.
func TestTracerWritesLoadableJSON(t *testing.T) {
	tr := NewTracer()
	// 2 Mchip/s: one chip is half a microsecond.
	proc := tr.Process("netsim pp-arq", 0.5)
	lane0 := proc.Lane(0, "domain 0")
	lane1 := proc.Lane(1, "domain 1")
	lane0.Span("tx f0", "tx", 1000, 2000, map[string]any{"node": 3})
	lane1.Span("backoff", "csma", 500, 128, nil)
	lane0.Instant("rx ok", "rx", 3000, nil)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) != 6 { // 3 metadata + 2 spans + 1 instant
		t.Fatalf("got %d events, want 6", len(doc.TraceEvents))
	}
	// Metadata sorts first.
	for i := 0; i < 3; i++ {
		if doc.TraceEvents[i].Ph != "M" {
			t.Fatalf("event %d is %q, want metadata first", i, doc.TraceEvents[i].Ph)
		}
	}
	var span *TraceEvent
	for i := range doc.TraceEvents {
		if doc.TraceEvents[i].Name == "tx f0" {
			span = &doc.TraceEvents[i]
		}
	}
	if span == nil {
		t.Fatal("tx span missing")
	}
	if span.Ph != "X" || span.Ts != 500 || span.Dur != 1000 || span.Tid != 0 {
		t.Fatalf("span fields wrong: %+v", span)
	}
}

// TestTracerDeterministicOutput: identical event sets emitted in different
// orders write byte-identical files.
func TestTracerDeterministicOutput(t *testing.T) {
	build := func(reversed bool) []byte {
		tr := NewTracer()
		proc := tr.Process("run", 1)
		lanes := []*TraceLane{proc.Lane(0, "domain 0"), proc.Lane(1, "domain 1")}
		type ev struct {
			lane  int
			start int64
		}
		evs := []ev{{0, 10}, {1, 5}, {0, 20}, {1, 15}}
		if reversed {
			for i, j := 0, len(evs)-1; i < j; i, j = i+1, j-1 {
				evs[i], evs[j] = evs[j], evs[i]
			}
		}
		for _, e := range evs {
			lanes[e.lane].Span("tx", "tx", e.start, 3, nil)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(false), build(true)) {
		t.Fatal("emission order leaked into the trace file")
	}
}

// TestTracerNilSafety: the nil tracer, process and lane are full no-ops and
// still write a loadable (empty) document.
func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	proc := tr.Process("x", 1)
	lane := proc.Lane(0, "x")
	lane.Span("a", "b", 0, 1, nil)
	lane.Instant("a", "b", 0, nil)
	if tr.Len() != 0 {
		t.Fatal("nil tracer recorded events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil || len(doc.TraceEvents) != 0 {
		t.Fatalf("nil tracer document wrong: %v %v", err, doc)
	}
}
