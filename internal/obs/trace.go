package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// TraceEvent is one Chrome trace-format event (the JSON array format
// Perfetto and chrome://tracing load). Ts and Dur are microseconds.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// Tracer accumulates a timeline and writes it as Chrome trace-format JSON.
// It is opt-in and may allocate per event — the cost contract of the
// metrics registry does not apply; a run that wants zero overhead simply
// passes no tracer. The nil *Tracer is a valid no-op, and so are the nil
// *TraceProcess and *TraceLane it hands out, so instrumentation sites hold
// lane handles unconditionally.
//
// Concurrent emitters (netsim's domain shards) append under a mutex;
// WriteJSON sorts events into a canonical order, so the output is
// deterministic whenever the set of emitted events is.
type Tracer struct {
	mu      sync.Mutex
	events  []TraceEvent
	nextPid int64
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

func (t *Tracer) emit(ev TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Len returns the number of recorded events. Nil-safe (zero).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Process opens a new trace process (one lane group — e.g. one netsim run),
// emitting its process_name metadata. microsPerTick converts the caller's
// native time unit to trace microseconds: a chip-clocked caller passes
// 1e6 / mac.ChipRateHz. Nil-safe.
func (t *Tracer) Process(name string, microsPerTick float64) *TraceProcess {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	pid := t.nextPid
	t.nextPid++
	t.events = append(t.events, TraceEvent{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name},
	})
	t.mu.Unlock()
	return &TraceProcess{t: t, pid: pid, scale: microsPerTick}
}

// TraceProcess is one process's lane group.
type TraceProcess struct {
	t     *Tracer
	pid   int64
	scale float64
}

// Lane opens a named lane (trace thread) in the process — netsim uses one
// per interference domain. Nil-safe.
func (p *TraceProcess) Lane(tid int64, name string) *TraceLane {
	if p == nil {
		return nil
	}
	p.t.emit(TraceEvent{
		Name: "thread_name", Ph: "M", Pid: p.pid, Tid: tid,
		Args: map[string]any{"name": name},
	})
	return &TraceLane{p: p, tid: tid}
}

// TraceLane is one lane; spans and instants land on it.
type TraceLane struct {
	p   *TraceProcess
	tid int64
}

// Span records a complete ("X") event of dur ticks starting at start ticks.
// Nil-safe.
func (l *TraceLane) Span(name, cat string, start, dur int64, args map[string]any) {
	if l == nil {
		return
	}
	l.p.t.emit(TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		Ts: float64(start) * l.p.scale, Dur: float64(dur) * l.p.scale,
		Pid: l.p.pid, Tid: l.tid, Args: args,
	})
}

// Instant records a thread-scoped instant ("i") event at ts ticks. Nil-safe.
func (l *TraceLane) Instant(name, cat string, ts int64, args map[string]any) {
	if l == nil {
		return
	}
	l.p.t.emit(TraceEvent{
		Name: name, Cat: cat, Ph: "i", S: "t",
		Ts:  float64(ts) * l.p.scale,
		Pid: l.p.pid, Tid: l.tid, Args: args,
	})
}

// traceDoc is the JSON object format Perfetto loads.
type traceDoc struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON writes the timeline as a Chrome trace-format JSON object.
// Events are sorted canonically — metadata first, then (pid, tid, ts, name)
// — so concurrent emitters produce byte-identical files for identical event
// sets. Nil-safe (writes an empty, still loadable, document).
func (t *Tracer) WriteJSON(w io.Writer) error {
	var events []TraceEvent
	if t != nil {
		t.mu.Lock()
		events = append(events, t.events...)
		t.mu.Unlock()
	}
	sort.SliceStable(events, func(a, b int) bool {
		ea, eb := &events[a], &events[b]
		am, bm := ea.Ph == "M", eb.Ph == "M"
		if am != bm {
			return am
		}
		if ea.Pid != eb.Pid {
			return ea.Pid < eb.Pid
		}
		if ea.Tid != eb.Tid {
			return ea.Tid < eb.Tid
		}
		if ea.Ts != eb.Ts {
			return ea.Ts < eb.Ts
		}
		return ea.Name < eb.Name
	})
	if events == nil {
		events = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceDoc{TraceEvents: events, DisplayTimeUnit: "ms"})
}
