// Package obs is the repo's observability substrate: a process-wide metrics
// registry of sharded atomic counters, high-water gauges and log-bucketed
// histograms, plus a Chrome-trace-format timeline tracer (trace.go). It is
// the PPR idea applied to the codebase itself — the engine should expose
// what it knows at runtime instead of a binary "it ran" verdict.
//
// # Cost contract
//
// The hot paths of the simulators run millions of events per second, so the
// design rule is: instrumentation sites hold pre-resolved handles and never
// look anything up by name on the hot path. Metric handles (*Counter,
// *Gauge, *Histogram) and their per-shard cells (*CounterCell, ...) are all
// nil-safe: when metrics are disabled, Default() returns a nil *Registry,
// every lookup through it returns a nil handle, and every operation on a
// nil handle is a nil-check and a return. Instrumented hot loops therefore
// stay 0 allocs/op and within noise of the uninstrumented code when metrics
// are off (pinned by TestMetricsDisabledAllocs in internal/frame and
// internal/netsim), and one atomic add when on (CI gates the enabled
// overhead at 5%).
//
// # Sharding
//
// Every metric owns a power-of-two array of cache-line-padded cells.
// Unsharded use (Counter.Add) lands on cell 0; concurrent writers — the
// engine's delivery workers, netsim's interference-domain shards — resolve
// a private cell once via Cell(i) and update it contention-free. Snapshots
// merge cells deterministically: exact int64 sums for counters and
// histograms, max for gauges.
//
// Handles must be resolved after the default registry is enabled (Enable or
// SetDefault): constructor-time resolution (frame.NewReceiver, a netsim
// run) picks up whatever Default() holds at that moment. Package-level
// sites that cannot see construction (fec.Decode, pparq.Transfer) use
// CounterVar/HistogramVar, which re-resolve only when the default registry
// changes — two atomic loads and a pointer compare per call, no map.
package obs

import (
	"expvar"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// cellPad pads metric cells to a cache line so shards on different
// goroutines never false-share.
const cellPad = 64

// CounterCell is one shard of a Counter. The nil cell is a valid no-op.
type CounterCell struct {
	n atomic.Int64
	_ [cellPad - 8]byte
}

// Add adds n to the cell; a nil receiver does nothing.
func (c *CounterCell) Add(n int64) {
	if c == nil {
		return
	}
	c.n.Add(n)
}

// Inc adds one to the cell; a nil receiver does nothing.
func (c *CounterCell) Inc() {
	if c == nil {
		return
	}
	c.n.Add(1)
}

// Counter is a monotonically increasing sharded counter. The nil counter is
// a valid no-op whose Cell is the nil cell.
type Counter struct {
	cells []CounterCell
}

// Cell returns the shard'th cell (wrapping modulo the shard count), for
// sites that update from a stable worker/shard index. Nil-safe.
func (c *Counter) Cell(shard int) *CounterCell {
	if c == nil {
		return nil
	}
	return &c.cells[shard&(len(c.cells)-1)]
}

// Add adds n on the default cell. Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.cells[0].n.Add(n)
}

// Inc adds one on the default cell. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value merges the shards: the exact int64 sum, whatever interleaving wrote
// them. Nil-safe (zero).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.cells {
		total += c.cells[i].n.Load()
	}
	return total
}

// GaugeCell is one shard of a Gauge. The nil cell is a valid no-op.
type GaugeCell struct {
	v atomic.Int64
	_ [cellPad - 8]byte
}

// Max raises the cell to v if v is larger (high-water mark). Nil-safe.
func (g *GaugeCell) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Set stores v in the cell. Nil-safe.
func (g *GaugeCell) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Gauge is a sharded non-negative level metric merged by maximum — the
// repo's gauges are high-water marks (peak worker occupancy, peak event
// queue depth), and max is the one merge that is deterministic across
// shards. The nil gauge is a valid no-op.
type Gauge struct {
	cells []GaugeCell
}

// Cell returns the shard'th cell. Nil-safe.
func (g *Gauge) Cell(shard int) *GaugeCell {
	if g == nil {
		return nil
	}
	return &g.cells[shard&(len(g.cells)-1)]
}

// Max raises the default cell. Nil-safe.
func (g *Gauge) Max(v int64) { g.Cell(0).Max(v) }

// Set stores v in the default cell. Nil-safe.
func (g *Gauge) Set(v int64) { g.Cell(0).Set(v) }

// Value merges the shards by maximum. Nil-safe (zero).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	var max int64
	for i := range g.cells {
		if v := g.cells[i].v.Load(); v > max {
			max = v
		}
	}
	return max
}

// HistBuckets is the fixed bucket count of every histogram: bucket 0 counts
// non-positive values, bucket i counts values in [2^(i-1), 2^i), and the
// last bucket absorbs everything larger. 48 buckets cover nanosecond
// timings up to ~3.9 days and chip counts far past any run length.
const HistBuckets = 48

// bucketIndex maps a value to its log2 bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// BucketUpperBound returns the largest value bucket i counts (inclusive):
// 0 for bucket 0, 2^i - 1 in between, MaxInt64 for the overflow bucket.
func BucketUpperBound(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i >= HistBuckets-1:
		return math.MaxInt64
	default:
		return int64(1)<<uint(i) - 1
	}
}

// HistCell is one shard of a Histogram. The nil cell is a valid no-op.
type HistCell struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

// Observe records one value. Nil-safe.
func (h *HistCell) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// Histogram is a sharded log2-bucketed distribution. The nil histogram is a
// valid no-op.
type Histogram struct {
	cells []HistCell
}

// Cell returns the shard'th cell. Nil-safe.
func (h *Histogram) Cell(shard int) *HistCell {
	if h == nil {
		return nil
	}
	return &h.cells[shard&(len(h.cells)-1)]
}

// Observe records one value on the default cell. Nil-safe.
func (h *Histogram) Observe(v int64) { h.Cell(0).Observe(v) }

// Registry holds the process's metrics by name. Lookups (Counter, Gauge,
// Histogram) are idempotent — the same name always returns the same handle
// — and lock a mutex, so they belong in constructors, not hot loops. The
// nil *Registry is the disabled registry: every lookup returns the nil
// handle and Snapshot returns an empty (but schema-valid) document.
type Registry struct {
	shards   int
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns a registry sharded for the current GOMAXPROCS.
func New() *Registry { return NewSharded(0) }

// NewSharded returns a registry whose metrics have at least `shards` cells
// (rounded up to a power of two, capped at 64); 0 means GOMAXPROCS.
func NewSharded(shards int) *Registry {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > 64 {
		shards = 64
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	return &Registry{
		shards:   n,
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{cells: make([]CounterCell, r.shards)}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{cells: make([]GaugeCell, r.shards)}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{cells: make([]HistCell, r.shards)}
		r.hists[name] = h
	}
	return h
}

// defaultReg holds the process-wide registry; nil means metrics disabled.
var defaultReg atomic.Pointer[Registry]

// Default returns the process-wide registry, or nil when metrics are
// disabled (the initial state). Instrumentation sites resolve handles
// through it at construction time.
func Default() *Registry { return defaultReg.Load() }

// Enable turns the process-wide registry on (idempotent) and returns it.
// Call it before constructing the objects whose hot paths should report —
// handles are resolved at construction.
func Enable() *Registry {
	if r := defaultReg.Load(); r != nil {
		return r
	}
	defaultReg.CompareAndSwap(nil, New())
	return defaultReg.Load()
}

// SetDefault replaces the process-wide registry; nil disables metrics.
// Tests use it to isolate and to restore the disabled state.
func SetDefault(r *Registry) { defaultReg.Store(r) }

// counterBinding caches a CounterVar's resolution against one registry.
type counterBinding struct {
	r *Registry
	c *Counter
}

// CounterVar is a named counter handle for package-level instrumentation
// sites that have no construction moment to resolve at (fec.Decode,
// pparq.Transfer). Get re-resolves only when the default registry changes:
// the steady-state cost is two atomic loads and a pointer compare — no map
// lookup, no allocation.
type CounterVar struct {
	Name string
	b    atomic.Pointer[counterBinding]
}

// Get returns the counter bound to the current default registry (nil when
// metrics are disabled).
func (v *CounterVar) Get() *Counter {
	r := Default()
	if b := v.b.Load(); b != nil && b.r == r {
		return b.c
	}
	var c *Counter
	if r != nil {
		c = r.Counter(v.Name)
	}
	v.b.Store(&counterBinding{r: r, c: c})
	return c
}

// histBinding caches a HistogramVar's resolution against one registry.
type histBinding struct {
	r *Registry
	h *Histogram
}

// HistogramVar is CounterVar for histograms.
type HistogramVar struct {
	Name string
	b    atomic.Pointer[histBinding]
}

// Get returns the histogram bound to the current default registry (nil when
// metrics are disabled).
func (v *HistogramVar) Get() *Histogram {
	r := Default()
	if b := v.b.Load(); b != nil && b.r == r {
		return b.h
	}
	var h *Histogram
	if r != nil {
		h = r.Histogram(v.Name)
	}
	v.b.Store(&histBinding{r: r, h: h})
	return h
}

// publishOnce guards the expvar name (Publish panics on duplicates).
var publishOnce sync.Once

// PublishExpvar republishes the default registry as the expvar variable
// "ppr-metrics": /debug/vars serves a live ppr-metrics/v1 snapshot next to
// the runtime's memstats. Importing this package registers the /debug/vars
// handler (via expvar's init); cmd/pprsim -pprof serves it. Idempotent.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("ppr-metrics", expvar.Func(func() any {
			return Default().Snapshot()
		}))
	})
}
