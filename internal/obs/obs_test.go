package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

// TestCounterConcurrentMergeExact pins the tentpole's determinism claim:
// concurrent sharded increments — through per-shard cells and through the
// default cell — merge to the exact total, under -race.
func TestCounterConcurrentMergeExact(t *testing.T) {
	r := NewSharded(8)
	c := r.Counter("test.concurrent")
	const (
		goroutines = 16
		perG       = 10000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cell := c.Cell(g)
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					cell.Inc()
				} else {
					c.Add(1) // contended default cell, same total
				}
			}
		}(g)
	}
	wg.Wait()
	if got, want := c.Value(), int64(goroutines*perG); got != want {
		t.Fatalf("merged counter = %d, want %d", got, want)
	}
}

// TestHistogramConcurrentMergeExact is the same pin for histograms: count,
// sum and per-bucket totals all merge exactly.
func TestHistogramConcurrentMergeExact(t *testing.T) {
	r := NewSharded(4)
	h := r.Histogram("test.hist")
	const (
		goroutines = 8
		perG       = 5000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cell := h.Cell(g)
			for i := 0; i < perG; i++ {
				cell.Observe(int64(i % 100))
			}
		}(g)
	}
	wg.Wait()
	hs := r.Snapshot().Histograms["test.hist"]
	if got, want := hs.Count, int64(goroutines*perG); got != want {
		t.Fatalf("merged count = %d, want %d", got, want)
	}
	var wantSum int64
	for i := 0; i < perG; i++ {
		wantSum += int64(i % 100)
	}
	wantSum *= goroutines
	if hs.Sum != wantSum {
		t.Fatalf("merged sum = %d, want %d", hs.Sum, wantSum)
	}
	var bucketTotal int64
	for _, b := range hs.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != hs.Count {
		t.Fatalf("bucket totals sum to %d, want count %d", bucketTotal, hs.Count)
	}
}

// TestHistogramBucketBoundaries golden-tests the log2 bucket layout: the
// exact index every boundary value lands in, and the exact upper bounds the
// snapshot reports.
func TestHistogramBucketBoundaries(t *testing.T) {
	golden := []struct {
		value  int64
		bucket int
	}{
		{math.MinInt64, 0},
		{-1, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1 << 46, 47},
		{1<<47 - 1, 47},
		{1 << 47, 47}, // clamped into the overflow bucket
		{math.MaxInt64, 47},
	}
	for _, g := range golden {
		if got := bucketIndex(g.value); got != g.bucket {
			t.Errorf("bucketIndex(%d) = %d, want %d", g.value, got, g.bucket)
		}
	}
	bounds := []struct {
		bucket int
		le     int64
	}{
		{0, 0},
		{1, 1},
		{2, 3},
		{3, 7},
		{10, 1023},
		{46, 1<<46 - 1},
		{47, math.MaxInt64},
	}
	for _, b := range bounds {
		if got := BucketUpperBound(b.bucket); got != b.le {
			t.Errorf("BucketUpperBound(%d) = %d, want %d", b.bucket, got, b.le)
		}
	}
	// Consistency: every value's bucket bound is >= the value (except the
	// clamped overflow bucket, whose bound is MaxInt64 anyway).
	for _, v := range []int64{0, 1, 5, 100, 4096, 1 << 40} {
		if le := BucketUpperBound(bucketIndex(v)); le < v {
			t.Errorf("value %d lands in bucket with upper bound %d", v, le)
		}
	}
}

// TestGaugeMergesByMax pins the gauge merge rule.
func TestGaugeMergesByMax(t *testing.T) {
	r := NewSharded(4)
	g := r.Gauge("test.peak")
	g.Cell(0).Max(7)
	g.Cell(1).Max(42)
	g.Cell(2).Max(3)
	g.Cell(1).Max(5) // lower than the cell's current value: ignored
	if got := g.Value(); got != 42 {
		t.Fatalf("gauge value = %d, want 42", got)
	}
}

// TestSnapshotJSONShape checks the schema'd document end to end: schema id,
// deterministic marshalling, and histogram bucket encoding.
func TestSnapshotJSONShape(t *testing.T) {
	r := NewSharded(2)
	r.Counter("a.count").Add(5)
	r.Gauge("a.peak").Max(9)
	r.Histogram("a.dist").Observe(3)
	r.Histogram("a.dist").Observe(100)

	var buf1, buf2 bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("two snapshots of identical state marshalled differently")
	}

	var doc map[string]any
	if err := json.Unmarshal(buf1.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["schema"] != SchemaID {
		t.Fatalf("schema = %v, want %q", doc["schema"], SchemaID)
	}
	snap := r.Snapshot()
	if snap.Counters["a.count"] != 5 || snap.Gauges["a.peak"] != 9 {
		t.Fatalf("snapshot values wrong: %+v", snap)
	}
	hs := snap.Histograms["a.dist"]
	if hs.Count != 2 || hs.Sum != 103 || len(hs.Buckets) != 2 {
		t.Fatalf("histogram snapshot wrong: %+v", hs)
	}
	if hs.Buckets[0].Le != 3 || hs.Buckets[1].Le != 127 {
		t.Fatalf("bucket bounds wrong: %+v", hs.Buckets)
	}
}

// TestNilSafety drives every operation through nil registry, handles and
// cells — the disabled path instrumented code relies on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Add(1)
	c.Inc()
	c.Cell(3).Inc()
	c.Cell(3).Add(2)
	g.Max(5)
	g.Set(5)
	g.Cell(1).Max(5)
	h.Observe(7)
	h.Cell(2).Observe(7)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil handles must read zero")
	}
	snap := r.Snapshot()
	if snap.Schema != SchemaID || len(snap.Counters) != 0 {
		t.Fatalf("nil registry snapshot = %+v", snap)
	}
}

// TestCounterVarRebinds checks the Var fast path follows registry swaps.
func TestCounterVarRebinds(t *testing.T) {
	old := Default()
	defer SetDefault(old)

	v := &CounterVar{Name: "var.count"}
	SetDefault(nil)
	if v.Get() != nil {
		t.Fatal("disabled registry must resolve to a nil counter")
	}
	r := New()
	SetDefault(r)
	v.Get().Inc()
	v.Get().Inc()
	if got := r.Counter("var.count").Value(); got != 2 {
		t.Fatalf("var counter = %d, want 2", got)
	}
	SetDefault(nil)
	v.Get().Inc() // no-op again after disable
	if got := r.Counter("var.count").Value(); got != 2 {
		t.Fatalf("var wrote to a disabled registry: %d", got)
	}
}

// TestEnableIdempotent checks Enable's create-once contract.
func TestEnableIdempotent(t *testing.T) {
	old := Default()
	defer SetDefault(old)
	SetDefault(nil)
	r1 := Enable()
	r2 := Enable()
	if r1 == nil || r1 != r2 {
		t.Fatalf("Enable not idempotent: %p vs %p", r1, r2)
	}
	if Default() != r1 {
		t.Fatal("Default does not return the enabled registry")
	}
}

// TestDisabledHandleAllocs pins the disabled-path cost contract at the obs
// layer itself: operations on nil handles and Var gets allocate nothing.
func TestDisabledHandleAllocs(t *testing.T) {
	old := Default()
	defer SetDefault(old)
	SetDefault(nil)
	var c *Counter
	var cell *CounterCell
	var g *GaugeCell
	var h *HistCell
	v := &CounterVar{Name: "x"}
	v.Get() // bind once
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		cell.Inc()
		g.Max(3)
		h.Observe(9)
		v.Get().Inc()
	})
	if allocs != 0 {
		t.Fatalf("disabled-path ops allocate %v per run, want 0", allocs)
	}
}
