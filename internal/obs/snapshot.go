package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// SchemaID identifies the snapshot document format.
const SchemaID = "ppr-metrics/v1"

// Snapshot is a deterministic point-in-time merge of a registry: counters
// and histograms as exact int64 sums over their shards, gauges as the max.
// encoding/json emits map keys sorted, so two snapshots of identical state
// marshal byte-identically.
type Snapshot struct {
	// Schema is always SchemaID ("ppr-metrics/v1").
	Schema string `json:"schema"`
	// Counters maps metric names to merged totals.
	Counters map[string]int64 `json:"counters"`
	// Gauges maps metric names to merged high-water values.
	Gauges map[string]int64 `json:"gauges"`
	// Histograms maps metric names to merged distributions.
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// HistSnapshot is one histogram's merged state.
type HistSnapshot struct {
	// Count and Sum are the exact totals over every observation.
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	// Buckets lists the non-empty log2 buckets in ascending Le order.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one non-empty histogram bucket: Count values were <= Le (and
// greater than the previous bucket's Le).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Snapshot merges the registry's shards into a schema'd document. Nil-safe:
// the disabled registry snapshots to an empty (but valid) document.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Schema:     SchemaID,
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()

	for name, c := range counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range hists {
		var hs HistSnapshot
		var bucketTotals [HistBuckets]int64
		for i := range h.cells {
			cell := &h.cells[i]
			hs.Count += cell.count.Load()
			hs.Sum += cell.sum.Load()
			for b := range cell.buckets {
				bucketTotals[b] += cell.buckets[b].Load()
			}
		}
		for b, n := range bucketTotals {
			if n > 0 {
				hs.Buckets = append(hs.Buckets, Bucket{Le: BucketUpperBound(b), Count: n})
			}
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Names returns the snapshot's metric names, sorted — convenient for tests
// and text renderings.
func (s Snapshot) Names() []string {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
