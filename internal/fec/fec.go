// Package fec implements a convolutional code with a soft-output Viterbi
// decoder — the second PHY design the paper's SoftPHY section contemplates:
// "a particularly interesting instance of a confidence metric when
// convolutional decoding is used ... is to use the output of the Viterbi
// decoder" (Sec. 3.1, citing SOVA [11]).
//
// The code is the industry-standard rate-1/2, constraint-length-7
// convolutional code (generators 171/133 octal, the K=7 code used by
// 802.11a, DVB and deep-space links). The decoder runs the classic
// add-compare-select recursion and, in the spirit of the soft-output
// Viterbi algorithm, tracks for every decoded bit the minimum metric margin
// of the ACS decisions that could have flipped it; that margin is the
// per-bit reliability.
//
// fec exists to demonstrate the paper's architectural claim (Sec. 3.3):
// higher layers consume hints through the same monotonic interface no
// matter which PHY produced them. CodedDecoder adapts the Viterbi
// reliabilities to the phy.Decision hint convention, and the PP-ARQ stack
// runs over it unchanged (see the integration tests).
package fec

import (
	"fmt"
	"math"
	"math/bits"

	"ppr/internal/phy"
)

const (
	// K is the constraint length.
	K = 7
	// numStates is 2^(K-1).
	numStates = 1 << (K - 1)
	// Rate is the inverse code rate: output bits per input bit.
	Rate = 2
	// g0 and g1 are the generator polynomials (171, 133 octal).
	g0 = 0o171
	g1 = 0o133
)

// parity returns the parity of v.
func parity(v uint32) byte {
	return byte(bits.OnesCount32(v) & 1)
}

// outputs[state][inBit] packs the two coded bits produced when inBit enters
// the shift register at state.
var outputs [numStates][2]byte

func init() {
	for s := 0; s < numStates; s++ {
		for b := 0; b < 2; b++ {
			reg := uint32(b)<<(K-1) | uint32(s)
			o0 := parity(reg & g0)
			o1 := parity(reg & g1)
			outputs[s][b] = o0<<1 | o1
		}
	}
}

// Encode convolutionally encodes data bits (one bit per byte, values 0/1),
// appending K-1 zero tail bits to terminate the trellis. The output has
// 2·(len(bits)+K−1) coded bits.
func Encode(dataBits []byte) []byte {
	out := make([]byte, 0, Rate*(len(dataBits)+K-1))
	state := 0
	emit := func(b byte) {
		o := outputs[state][b&1]
		out = append(out, o>>1, o&1)
		state = (state >> 1) | int(b&1)<<(K-2)
	}
	for _, b := range dataBits {
		emit(b)
	}
	for i := 0; i < K-1; i++ {
		emit(0)
	}
	return out
}

// EncodedLen returns the coded length in bits for n data bits.
func EncodedLen(n int) int { return Rate * (n + K - 1) }

// Result is a soft-output decode: the data bits and a per-bit reliability.
type Result struct {
	// Bits are the decoded data bits (0/1), tail removed.
	Bits []byte
	// Reliability[i] is the metric margin protecting bit i: the smallest
	// path-metric difference among the trellis decisions that would have
	// flipped it. Larger means more confident. For hard-decision branch
	// metrics the unit is "channel bit flips".
	Reliability []float64
}

// branchMetrics[rx][o] is the Hamming distance between a received 2-bit
// branch symbol rx and a candidate output symbol o, precomputed so the ACS
// recursion is pure table lookups.
var branchMetrics [4][4]int32

func init() {
	for rx := 0; rx < 4; rx++ {
		for o := 0; o < 4; o++ {
			branchMetrics[rx][o] = int32(bits.OnesCount8(byte(rx^o) & 0b11))
		}
	}
}

// butterflyOut[j] is the coded output for the transition predecessor-2j →
// successor-j (input bit 0). Both generators have their input-bit and
// oldest-bit taps set (g0, g1 are odd and ≥ 2^(K-1)), so flipping either
// the input bit or the predecessor's low bit complements BOTH coded bits:
// the other three branch metrics of the butterfly {2j, 2j+1} → {j, j+32}
// are bm[o^0b11] = 2 − bm[o]. One table lookup serves all four branches.
var butterflyOut [numStates / 2]byte

// butterflyBM[rx][j] = branchMetrics[rx][butterflyOut[j]], flattening the
// two dependent lookups of the steady-state ACS into one.
var butterflyBM [4][numStates / 2]int32

func init() {
	for j := 0; j < numStates/2; j++ {
		butterflyOut[j] = outputs[2*j][0]
	}
	for rx := 0; rx < 4; rx++ {
		for j := 0; j < numStates/2; j++ {
			butterflyBM[rx][j] = branchMetrics[rx][butterflyOut[j]]
		}
	}
}

// Decode runs hard-decision Viterbi over coded bits (0/1 per byte) with
// SOVA-style reliability tracking. The coded stream must be a whole number
// of Rate-bit branches; decoding assumes the encoder's zero tail.
//
// The trellis state is flat: survivor decisions bit-pack into one uint64
// per step (64 states, one bit each), ACS margins live in a single backing
// array sized once, and the recursion walks successor states directly —
// each of the 64 next-states has exactly two predecessors, so one compare
// per state replaces the seed's per-transition bookkeeping. The
// reliability window is a monotonic-deque sliding minimum, O(n) instead of
// O(n·5K). Outputs are bit-identical to the frozen reference
// (internal/fec/sovaref); the parity tests pin that.
func Decode(coded []byte) (Result, error) {
	if len(coded)%Rate != 0 {
		return Result{}, fmt.Errorf("fec: coded length %d not a multiple of %d", len(coded), Rate)
	}
	nBranches := len(coded) / Rate
	if nBranches < K-1 {
		return Result{}, fmt.Errorf("fec: %d branches shorter than the %d-bit tail", nBranches, K-1)
	}
	mSOVAInvocations.Get().Inc()
	mSOVABits.Get().Add(int64(nBranches - (K - 1)))
	const inf = math.MaxInt32 / 2

	var ma, mb [numStates]int32
	metric, next := &ma, &mb
	for s := 1; s < numStates; s++ {
		metric[s] = inf // trellis starts in state 0
	}
	// survivors[t] bit s records the predecessor decision bit for state s
	// at step t; deltas[t*numStates+s] the ACS margin at that decision.
	survivors := make([]uint64, nBranches)
	deltas := make([]int32, nBranches*numStates)

	// Warm-up steps: until the trellis fans out from state 0 to all 64
	// states (K−1 steps), unreachable predecessors need the full
	// reachability switch of the reference recursion.
	warm := K - 1
	if warm > nBranches {
		warm = nBranches
	}
	for t := 0; t < warm; t++ {
		rx := coded[t*Rate]<<1 | coded[t*Rate+1]
		bm := &branchMetrics[rx&0b11]
		dl := deltas[t*numStates : (t+1)*numStates : (t+1)*numStates]
		var sur uint64
		for ns := 0; ns < numStates; ns++ {
			// ns's two predecessors differ only in their oldest register
			// bit: p0 (low bit 0, processed first in the seed's state
			// order) and p1. The branch input bit is ns's top bit.
			b := ns >> (K - 2)
			p0 := (ns << 1) & (numStates - 1)
			p1 := p0 | 1
			m0, m1 := metric[p0], metric[p1]
			reach0, reach1 := m0 < inf, m1 < inf
			m0 += bm[outputs[p0][b]]
			m1 += bm[outputs[p1][b]]
			switch {
			case reach0 && reach1:
				if m1 < m0 {
					next[ns] = m1
					dl[ns] = m0 - m1
					sur |= 1 << uint(ns)
				} else {
					next[ns] = m0
					dl[ns] = m1 - m0
				}
			case reach0:
				next[ns] = m0
				dl[ns] = inf - m0
			case reach1:
				next[ns] = m1
				dl[ns] = inf - m1
				sur |= 1 << uint(ns)
			default:
				next[ns] = inf
			}
		}
		survivors[t] = sur
		metric, next = next, metric
	}

	// Steady state: every state is reachable, so the ACS collapses to pure
	// butterflies. Successors j and j+32 share predecessors {2j, 2j+1}, and
	// their four branch metrics are a and 2−a for a single table value a
	// (see butterflyOut) — one lookup, two metric loads, two compares per
	// butterfly.
	for t := warm; t < nBranches; t++ {
		rx := coded[t*Rate]<<1 | coded[t*Rate+1]
		bm := &butterflyBM[rx&0b11]
		dl := (*[numStates]int32)(deltas[t*numStates:])
		var sur uint64
		for j := 0; j < numStates/2; j++ {
			m0, m1 := metric[2*j], metric[2*j+1]
			a := bm[j]
			c := 2 - a
			// Branchless compare-select: on noisy input the ACS winner is
			// essentially random, so data-dependent branches mispredict half
			// the time; sign-mask arithmetic keeps the pipeline full. With
			// d = loser − winner candidate, mask = d>>31 is −1 when the
			// p1 path wins; then min = t0+(d&mask), |d| = (d^mask)−mask,
			// and the survivor bit is mask&1. Ties (d == 0) select the p0
			// path with delta 0, exactly the reference semantics.
			t0, t1 := m0+a, m1+c
			d := t1 - t0
			mask := d >> 31
			next[j] = t0 + d&mask
			dl[j] = (d ^ mask) - mask
			sur |= uint64(mask&1) << uint(j)
			t2, t3 := m0+c, m1+a
			d = t3 - t2
			mask = d >> 31
			next[j+numStates/2] = t2 + d&mask
			dl[j+numStates/2] = (d ^ mask) - mask
			sur |= uint64(mask&1) << uint(j+numStates/2)
		}
		survivors[t] = sur
		metric, next = next, metric
	}

	// Traceback from state 0 (zero tail terminates there).
	state := 0
	decided := make([]byte, nBranches)
	margins := make([]int32, nBranches)
	for t := nBranches - 1; t >= 0; t-- {
		// The input bit at step t is the top bit of the state at t+1.
		decided[t] = byte(state >> (K - 2) & 1)
		margins[t] = deltas[t*numStates+state]
		prevLow := int(survivors[t] >> uint(state) & 1)
		state = (state<<1 | prevLow) & (numStates - 1)
	}

	nData := nBranches - (K - 1)
	res := Result{
		Bits:        decided[:nData],
		Reliability: make([]float64, nData),
	}
	// SOVA-lite reliability: a decision at step t is protected by the ACS
	// margins along the surviving path in a window after t (a competing
	// path that would flip bit t must diverge at t and re-merge within
	// roughly 5K branches). Take the minimum margin over that window,
	// computed right to left with a monotonic deque: indices in the deque
	// carry strictly increasing margins front to back, the front is the
	// window minimum, and each index enters and leaves at most once, so
	// the whole post-processing pass is O(n).
	const window = 5 * K
	deque := make([]int32, 0, window) // margin values; indices tracked below
	idx := make([]int, 0, window)
	head := 0
	for i := nBranches - 1; i >= 0; i-- {
		for len(deque) > head && deque[len(deque)-1] >= margins[i] {
			deque = deque[:len(deque)-1]
			idx = idx[:len(idx)-1]
		}
		deque = append(deque, margins[i])
		idx = append(idx, i)
		if idx[head] >= i+window {
			head++
		}
		if i < nData {
			res.Reliability[i] = float64(deque[head])
		}
	}
	return res, nil
}

// BitsFromBytes explodes bytes into bits, LSB first per byte (matching the
// symbol ordering of the rest of the stack). The output is allocated at its
// final length and written by index — one allocation, no append churn.
func BitsFromBytes(data []byte) []byte {
	out := make([]byte, len(data)*8)
	for i, b := range data {
		for j := 0; j < 8; j++ {
			out[i*8+j] = b >> uint(j) & 1
		}
	}
	return out
}

// BytesFromBits packs bits (LSB first) into bytes; the bit count must be a
// multiple of 8.
func BytesFromBits(bitsIn []byte) []byte {
	if len(bitsIn)%8 != 0 {
		panic(fmt.Sprintf("fec: %d bits not a whole byte count", len(bitsIn)))
	}
	out := make([]byte, len(bitsIn)/8)
	for i, b := range bitsIn {
		if b&1 != 0 {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}

// CodedDecision despreads one 4-bit symbol worth of decoded bits into the
// SoftPHY decision convention: symbol value from 4 consecutive bits, hint
// from the *least* reliable of them, inverted so that lower = more
// confident (the monotonicity contract). maxReliability anchors the scale.
const maxReliability = 16.0

// DecisionsFromResult converts a decode result into per-4-bit-symbol
// phy.Decisions, the same stream shape the DSSS PHY produces, so every
// higher layer (labelers, run-length, chunk DP, PP-ARQ) runs unchanged on
// the coded PHY.
func DecisionsFromResult(res Result) []phy.Decision {
	n := len(res.Bits) / 4
	out := make([]phy.Decision, n)
	for i := 0; i < n; i++ {
		sym := res.Bits[i*4]&1 |
			res.Bits[i*4+1]&1<<1 |
			res.Bits[i*4+2]&1<<2 |
			res.Bits[i*4+3]&1<<3
		minRel := res.Reliability[i*4]
		for j := 1; j < 4; j++ {
			if r := res.Reliability[i*4+j]; r < minRel {
				minRel = r
			}
		}
		hint := maxReliability - minRel
		if hint < 0 {
			hint = 0
		}
		out[i] = phy.Decision{Symbol: sym, Hint: hint}
	}
	return out
}
