// Package fec implements a convolutional code with a soft-output Viterbi
// decoder — the second PHY design the paper's SoftPHY section contemplates:
// "a particularly interesting instance of a confidence metric when
// convolutional decoding is used ... is to use the output of the Viterbi
// decoder" (Sec. 3.1, citing SOVA [11]).
//
// The code is the industry-standard rate-1/2, constraint-length-7
// convolutional code (generators 171/133 octal, the K=7 code used by
// 802.11a, DVB and deep-space links). The decoder runs the classic
// add-compare-select recursion and, in the spirit of the soft-output
// Viterbi algorithm, tracks for every decoded bit the minimum metric margin
// of the ACS decisions that could have flipped it; that margin is the
// per-bit reliability.
//
// fec exists to demonstrate the paper's architectural claim (Sec. 3.3):
// higher layers consume hints through the same monotonic interface no
// matter which PHY produced them. CodedDecoder adapts the Viterbi
// reliabilities to the phy.Decision hint convention, and the PP-ARQ stack
// runs over it unchanged (see the integration tests).
package fec

import (
	"fmt"
	"math"
	"math/bits"

	"ppr/internal/phy"
)

const (
	// K is the constraint length.
	K = 7
	// numStates is 2^(K-1).
	numStates = 1 << (K - 1)
	// Rate is the inverse code rate: output bits per input bit.
	Rate = 2
	// g0 and g1 are the generator polynomials (171, 133 octal).
	g0 = 0o171
	g1 = 0o133
)

// parity returns the parity of v.
func parity(v uint32) byte {
	return byte(bits.OnesCount32(v) & 1)
}

// outputs[state][inBit] packs the two coded bits produced when inBit enters
// the shift register at state.
var outputs [numStates][2]byte

func init() {
	for s := 0; s < numStates; s++ {
		for b := 0; b < 2; b++ {
			reg := uint32(b)<<(K-1) | uint32(s)
			o0 := parity(reg & g0)
			o1 := parity(reg & g1)
			outputs[s][b] = o0<<1 | o1
		}
	}
}

// Encode convolutionally encodes data bits (one bit per byte, values 0/1),
// appending K-1 zero tail bits to terminate the trellis. The output has
// 2·(len(bits)+K−1) coded bits.
func Encode(dataBits []byte) []byte {
	out := make([]byte, 0, Rate*(len(dataBits)+K-1))
	state := 0
	emit := func(b byte) {
		o := outputs[state][b&1]
		out = append(out, o>>1, o&1)
		state = (state >> 1) | int(b&1)<<(K-2)
	}
	for _, b := range dataBits {
		emit(b)
	}
	for i := 0; i < K-1; i++ {
		emit(0)
	}
	return out
}

// EncodedLen returns the coded length in bits for n data bits.
func EncodedLen(n int) int { return Rate * (n + K - 1) }

// Result is a soft-output decode: the data bits and a per-bit reliability.
type Result struct {
	// Bits are the decoded data bits (0/1), tail removed.
	Bits []byte
	// Reliability[i] is the metric margin protecting bit i: the smallest
	// path-metric difference among the trellis decisions that would have
	// flipped it. Larger means more confident. For hard-decision branch
	// metrics the unit is "channel bit flips".
	Reliability []float64
}

// Decode runs hard-decision Viterbi over coded bits (0/1 per byte) with
// SOVA-style reliability tracking. The coded stream must be a whole number
// of Rate-bit branches; decoding assumes the encoder's zero tail.
func Decode(coded []byte) (Result, error) {
	if len(coded)%Rate != 0 {
		return Result{}, fmt.Errorf("fec: coded length %d not a multiple of %d", len(coded), Rate)
	}
	nBranches := len(coded) / Rate
	if nBranches < K-1 {
		return Result{}, fmt.Errorf("fec: %d branches shorter than the %d-bit tail", nBranches, K-1)
	}
	const inf = math.MaxInt32 / 2

	metric := make([]int32, numStates)
	next := make([]int32, numStates)
	for s := 1; s < numStates; s++ {
		metric[s] = inf // trellis starts in state 0
	}
	// survivors[t][s] records the predecessor decision bit for state s at
	// step t; deltas[t][s] the ACS margin at that decision.
	survivors := make([][]byte, nBranches)
	deltas := make([][]int32, nBranches)

	for t := 0; t < nBranches; t++ {
		rx := coded[t*Rate]<<1 | coded[t*Rate+1]
		survivors[t] = make([]byte, numStates)
		deltas[t] = make([]int32, numStates)
		for s := 0; s < numStates; s++ {
			next[s] = inf
		}
		for s := 0; s < numStates; s++ {
			if metric[s] >= inf {
				continue
			}
			for b := 0; b < 2; b++ {
				ns := (s >> 1) | b<<(K-2)
				bm := int32(bits.OnesCount8((outputs[s][byte(b)] ^ rx) & 0b11))
				m := metric[s] + bm
				if m < next[ns] {
					// Record how decisively the new survivor beats the
					// incumbent; if the incumbent later improves this is
					// refreshed below.
					deltas[t][ns] = next[ns] - m
					next[ns] = m
					// The decision bit that distinguishes the two
					// predecessors of ns is the *oldest* register bit of
					// the predecessor (s & 1); store the surviving
					// predecessor's low bit.
					survivors[t][ns] = byte(s & 1)
				} else if d := m - next[ns]; d < deltas[t][ns] {
					deltas[t][ns] = d
				}
			}
		}
		metric, next = next, metric
	}

	// Traceback from state 0 (zero tail terminates there).
	state := 0
	decided := make([]byte, nBranches)
	margins := make([]int32, nBranches)
	for t := nBranches - 1; t >= 0; t-- {
		// The input bit at step t is the top bit of the state at t+1.
		decided[t] = byte(state >> (K - 2) & 1)
		margins[t] = deltas[t][state]
		prevLow := survivors[t][state]
		state = (state<<1 | int(prevLow)) & (numStates - 1)
	}

	nData := nBranches - (K - 1)
	res := Result{
		Bits:        decided[:nData],
		Reliability: make([]float64, nData),
	}
	// SOVA-lite reliability: a decision at step t is protected by the ACS
	// margins along the surviving path in a window after t (a competing
	// path that would flip bit t must diverge at t and re-merge within
	// roughly 5K branches). Take the minimum margin over that window.
	const window = 5 * K
	for i := 0; i < nData; i++ {
		min := int32(math.MaxInt32)
		end := i + window
		if end > nBranches {
			end = nBranches
		}
		for t := i; t < end; t++ {
			if margins[t] < min {
				min = margins[t]
			}
		}
		res.Reliability[i] = float64(min)
	}
	return res, nil
}

// BitsFromBytes explodes bytes into bits, LSB first per byte (matching the
// symbol ordering of the rest of the stack).
func BitsFromBytes(data []byte) []byte {
	out := make([]byte, 0, len(data)*8)
	for _, b := range data {
		for i := 0; i < 8; i++ {
			out = append(out, b>>uint(i)&1)
		}
	}
	return out
}

// BytesFromBits packs bits (LSB first) into bytes; the bit count must be a
// multiple of 8.
func BytesFromBits(bitsIn []byte) []byte {
	if len(bitsIn)%8 != 0 {
		panic(fmt.Sprintf("fec: %d bits not a whole byte count", len(bitsIn)))
	}
	out := make([]byte, len(bitsIn)/8)
	for i, b := range bitsIn {
		if b&1 != 0 {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}

// CodedDecision despreads one 4-bit symbol worth of decoded bits into the
// SoftPHY decision convention: symbol value from 4 consecutive bits, hint
// from the *least* reliable of them, inverted so that lower = more
// confident (the monotonicity contract). maxReliability anchors the scale.
const maxReliability = 16.0

// DecisionsFromResult converts a decode result into per-4-bit-symbol
// phy.Decisions, the same stream shape the DSSS PHY produces, so every
// higher layer (labelers, run-length, chunk DP, PP-ARQ) runs unchanged on
// the coded PHY.
func DecisionsFromResult(res Result) []phy.Decision {
	n := len(res.Bits) / 4
	out := make([]phy.Decision, n)
	for i := 0; i < n; i++ {
		var sym byte
		minRel := math.MaxFloat64
		for j := 0; j < 4; j++ {
			sym |= res.Bits[i*4+j] & 1 << uint(j)
			if r := res.Reliability[i*4+j]; r < minRel {
				minRel = r
			}
		}
		hint := maxReliability - minRel
		if hint < 0 {
			hint = 0
		}
		out[i] = phy.Decision{Symbol: sym, Hint: hint}
	}
	return out
}
