package fec_test

import (
	"math"
	"testing"

	"ppr/internal/fec"
	"ppr/internal/fec/sovaref"
	"ppr/internal/stats"
)

// Parity suite for the flattened SOVA trellis: fec.Decode must be
// bit-identical to the frozen seed implementation (internal/fec/sovaref) —
// same decoded bits AND same per-bit reliabilities, including the exact
// tie-breaking of the ACS recursion. Decoding is deterministic, so equality
// is exact.

func assertDecodeParity(t *testing.T, coded []byte) {
	t.Helper()
	got, gotErr := fec.Decode(coded)
	want, wantErr := sovaref.Decode(coded)
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("error divergence on %d coded bits: got %v want %v", len(coded), gotErr, wantErr)
	}
	if gotErr != nil {
		return
	}
	if len(got.Bits) != len(want.Bits) {
		t.Fatalf("bit count %d != %d", len(got.Bits), len(want.Bits))
	}
	for i := range got.Bits {
		if got.Bits[i] != want.Bits[i] {
			t.Fatalf("bit %d: got %d want %d", i, got.Bits[i], want.Bits[i])
		}
	}
	for i := range got.Reliability {
		if got.Reliability[i] != want.Reliability[i] {
			t.Fatalf("reliability %d: got %v want %v", i, got.Reliability[i], want.Reliability[i])
		}
	}
}

func TestDecodeMatchesSovaref(t *testing.T) {
	rng := stats.NewRNG(123)
	randBits := func(n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = byte(rng.Intn(2))
		}
		return out
	}

	// Valid encodings at assorted lengths, clean and with channel errors.
	for _, nData := range []int{1, 4, 7, 32, 100, 333, 1024} {
		coded := fec.Encode(randBits(nData))
		assertDecodeParity(t, coded)
		for _, rate := range []float64{0.01, 0.05, 0.11, 0.25} {
			noisy := append([]byte(nil), coded...)
			for i := range noisy {
				if rng.Bool(rate) {
					noisy[i] ^= 1
				}
			}
			assertDecodeParity(t, noisy)
		}
	}

	// Arbitrary (non-codeword) streams: the decoders must still agree on
	// every branch metric tie and unreachable-state margin.
	for _, nBranches := range []int{fec.K - 1, fec.K, 20, 77, 500} {
		assertDecodeParity(t, randBits(nBranches*fec.Rate))
	}
	// All-zero and all-one streams hit maximal tie-breaking.
	assertDecodeParity(t, make([]byte, 60))
	ones := make([]byte, 60)
	for i := range ones {
		ones[i] = 1
	}
	assertDecodeParity(t, ones)

	// Error cases: odd length and too-short streams.
	assertDecodeParity(t, []byte{1})
	assertDecodeParity(t, randBits((fec.K-2)*fec.Rate))
}

// FuzzDecodeParity fuzzes the flattened decoder against the frozen
// reference over arbitrary coded streams (each input byte's low bit is one
// coded bit).
func FuzzDecodeParity(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 2*(fec.K-1)))
	f.Add(fec.Encode([]byte{1, 0, 1, 1, 0, 0, 1, 0}))
	seed := fec.Encode(fec.BitsFromBytes([]byte("fuzz me")))
	seed[3] ^= 1
	seed[17] ^= 1
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<14 {
			data = data[:1<<14]
		}
		coded := make([]byte, len(data))
		for i, b := range data {
			coded[i] = b & 1
		}
		assertDecodeParity(t, coded)
	})
}

// TestBitsBytesRoundTripAllLengths is the pre-sizing property test: for
// every payload length 0..256, bytes -> bits -> bytes is the identity and
// the intermediate slices have exactly their final lengths.
func TestBitsBytesRoundTripAllLengths(t *testing.T) {
	rng := stats.NewRNG(321)
	for n := 0; n <= 256; n++ {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		bits := fec.BitsFromBytes(data)
		if len(bits) != n*8 || len(bits) != cap(bits) {
			t.Fatalf("n=%d: bits len %d cap %d, want exactly %d", n, len(bits), cap(bits), n*8)
		}
		back := fec.BytesFromBits(bits)
		if len(back) != n {
			t.Fatalf("n=%d: round trip length %d", n, len(back))
		}
		for i := range back {
			if back[i] != data[i] {
				t.Fatalf("n=%d byte %d: %#x != %#x", n, i, back[i], data[i])
			}
		}
	}
}

// TestDecisionsFromResultPreSized checks the conversion's exact output
// length and hint clamping across lengths.
func TestDecisionsFromResultPreSized(t *testing.T) {
	rng := stats.NewRNG(555)
	for _, nBits := range []int{0, 4, 8, 40, 400} {
		res := fec.Result{
			Bits:        make([]byte, nBits),
			Reliability: make([]float64, nBits),
		}
		for i := range res.Bits {
			res.Bits[i] = byte(rng.Intn(2))
			res.Reliability[i] = float64(rng.Intn(40))
		}
		ds := fec.DecisionsFromResult(res)
		if len(ds) != nBits/4 || len(ds) != cap(ds) {
			t.Fatalf("nBits=%d: decisions len %d cap %d", nBits, len(ds), cap(ds))
		}
		for i, d := range ds {
			wantSym := res.Bits[i*4]&1 | res.Bits[i*4+1]&1<<1 | res.Bits[i*4+2]&1<<2 | res.Bits[i*4+3]&1<<3
			if d.Symbol != wantSym {
				t.Fatalf("symbol %d: %d != %d", i, d.Symbol, wantSym)
			}
			minRel := math.Inf(1)
			for j := 0; j < 4; j++ {
				minRel = math.Min(minRel, res.Reliability[i*4+j])
			}
			wantHint := 16.0 - minRel
			if wantHint < 0 {
				wantHint = 0
			}
			if d.Hint != wantHint {
				t.Fatalf("hint %d: %v != %v", i, d.Hint, wantHint)
			}
		}
	}
}

// TestSOVADecodeSpeedGate enforces the PR's performance floor: the
// flattened trellis must beat the frozen seed implementation by at least 3x
// on a full-size coded packet.
func TestSOVADecodeSpeedGate(t *testing.T) {
	if testing.Short() {
		t.Skip("speed gate skipped in -short")
	}
	rng := stats.NewRNG(888)
	data := make([]byte, 1500*8) // 1500-byte payload in bits
	for i := range data {
		data[i] = byte(rng.Intn(2))
	}
	coded := fec.Encode(data)
	for i := range coded {
		if rng.Bool(0.03) {
			coded[i] ^= 1
		}
	}

	newRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fec.Decode(coded); err != nil {
				b.Fatal(err)
			}
		}
	})
	refRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sovaref.Decode(coded); err != nil {
				b.Fatal(err)
			}
		}
	})
	ratio := float64(refRes.NsPerOp()) / float64(newRes.NsPerOp())
	t.Logf("sova decode: new %v ref %v ratio %.1fx", newRes, refRes, ratio)
	if ratio < 3 {
		t.Errorf("flattened trellis only %.2fx faster than sovaref, want >= 3x", ratio)
	}
}