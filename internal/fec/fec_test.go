package fec

import (
	"bytes"
	"testing"

	"ppr/internal/core/runlen"
	"ppr/internal/core/softphy"
	"ppr/internal/stats"
)

func TestEncodeLength(t *testing.T) {
	data := make([]byte, 100)
	coded := Encode(data)
	if len(coded) != EncodedLen(100) {
		t.Errorf("coded length %d, want %d", len(coded), EncodedLen(100))
	}
	if EncodedLen(100) != 2*(100+6) {
		t.Errorf("EncodedLen formula wrong: %d", EncodedLen(100))
	}
}

func TestEncodeKnownCatalogProperties(t *testing.T) {
	// The all-zero input must encode to all zeros (linear code).
	coded := Encode(make([]byte, 50))
	for i, b := range coded {
		if b != 0 {
			t.Fatalf("zero input produced nonzero coded bit at %d", i)
		}
	}
	// A single 1 produces the generator impulse response: 171/133 octal
	// interleaved. First branch with input 1: outputs parity(g0>>6)=1,
	// parity(g1>>6)=1.
	one := Encode([]byte{1})
	if one[0] != 1 || one[1] != 1 {
		t.Errorf("impulse first branch = %d%d, want 11", one[0], one[1])
	}
}

func TestDecodeCleanRoundTrip(t *testing.T) {
	rng := stats.NewRNG(1)
	for trial := 0; trial < 50; trial++ {
		n := 8 * (1 + rng.Intn(40))
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(rng.Intn(2))
		}
		res, err := Decode(Encode(data))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Bits, data) {
			t.Fatalf("trial %d: clean decode mismatch", trial)
		}
		for i, r := range res.Reliability {
			if r <= 0 {
				t.Fatalf("trial %d: clean bit %d has reliability %v", trial, i, r)
			}
		}
	}
}

func TestDecodeCorrectsScatteredErrors(t *testing.T) {
	// The K=7 code has free distance 10: it corrects well-separated
	// 1-2 bit error events.
	rng := stats.NewRNG(2)
	data := make([]byte, 400)
	for i := range data {
		data[i] = byte(rng.Intn(2))
	}
	coded := Encode(data)
	// Flip isolated coded bits 60 branches apart.
	for i := 10; i < len(coded); i += 120 {
		coded[i] ^= 1
	}
	res, err := Decode(coded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Bits, data) {
		t.Fatal("isolated coded-bit errors were not corrected")
	}
}

func TestDecodeBERImprovesOnChannel(t *testing.T) {
	// At a 4% channel BER the decoded BER must be far below it.
	rng := stats.NewRNG(3)
	const n = 20000
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(rng.Intn(2))
	}
	coded := Encode(data)
	for i := range coded {
		if rng.Bool(0.04) {
			coded[i] ^= 1
		}
	}
	res, err := Decode(coded)
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := range data {
		if res.Bits[i] != data[i] {
			errs++
		}
	}
	ber := float64(errs) / n
	if ber > 0.004 {
		t.Errorf("decoded BER %v not well below channel BER 0.04", ber)
	}
	t.Logf("channel BER 0.040 -> decoded BER %.5f", ber)
}

func TestReliabilitySeparatesErrors(t *testing.T) {
	// SOVA property: bits decoded in error carry lower reliability than
	// correct bits, on average — the monotonicity contract's substance.
	rng := stats.NewRNG(4)
	var relCorrect, relWrong []float64
	for trial := 0; trial < 40; trial++ {
		n := 2000
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(rng.Intn(2))
		}
		coded := Encode(data)
		for i := range coded {
			if rng.Bool(0.08) { // heavy noise to force decode errors
				coded[i] ^= 1
			}
		}
		res, err := Decode(coded)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if res.Bits[i] == data[i] {
				relCorrect = append(relCorrect, res.Reliability[i])
			} else {
				relWrong = append(relWrong, res.Reliability[i])
			}
		}
	}
	if len(relWrong) < 50 {
		t.Skipf("only %d decode errors; noise too weak", len(relWrong))
	}
	mc, mw := stats.Mean(relCorrect), stats.Mean(relWrong)
	if mc <= mw {
		t.Errorf("mean reliability of correct bits %v not above erroneous bits %v", mc, mw)
	}
	t.Logf("reliability: correct %.2f (n=%d), wrong %.2f (n=%d)", mc, len(relCorrect), mw, len(relWrong))
}

func TestDecodeRejectsBadLengths(t *testing.T) {
	if _, err := Decode(make([]byte, 7)); err == nil {
		t.Error("accepted odd coded length")
	}
	if _, err := Decode(make([]byte, 4)); err == nil {
		t.Error("accepted stream shorter than tail")
	}
}

func TestBitsBytesRoundTrip(t *testing.T) {
	rng := stats.NewRNG(5)
	for trial := 0; trial < 50; trial++ {
		data := make([]byte, 1+rng.Intn(100))
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		if !bytes.Equal(BytesFromBits(BitsFromBytes(data)), data) {
			t.Fatal("bit/byte round trip failed")
		}
	}
}

func TestBytesFromBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BytesFromBits(make([]byte, 7))
}

func TestDecisionsFromResultContract(t *testing.T) {
	// Build the full coded-PHY → SoftPHY → labeling pipeline and verify
	// the downstream stack (labels, runs) works unchanged: the paper's
	// PHY-independence claim.
	rng := stats.NewRNG(6)
	payload := make([]byte, 60)
	for i := range payload {
		payload[i] = byte(rng.Intn(256))
	}
	dataBits := BitsFromBytes(payload)
	coded := Encode(dataBits)
	// Burst of channel errors in the middle third.
	for i := len(coded) / 3; i < len(coded)/2; i++ {
		if rng.Bool(0.25) {
			coded[i] ^= 1
		}
	}
	res, err := Decode(coded)
	if err != nil {
		t.Fatal(err)
	}
	ds := DecisionsFromResult(res)
	if len(ds) != len(payload)*2 {
		t.Fatalf("%d decisions for %d payload bytes", len(ds), len(payload))
	}
	// Label with a threshold chosen for this hint scale and verify the
	// bad region is flagged.
	labels := softphy.Threshold{Eta: maxReliability - 1}.LabelAll(0, ds)
	rs := runlen.FromLabels(labels)
	if err := rs.Validate(); err != nil {
		t.Fatal(err)
	}
	truthSyms := make([]byte, 0, len(payload)*2)
	for _, b := range payload {
		truthSyms = append(truthSyms, b&0x0f, b>>4)
	}
	missed, caught := 0, 0
	for i, d := range ds {
		if d.Symbol != truthSyms[i] {
			if labels[i] == softphy.Bad {
				caught++
			} else {
				missed++
			}
		}
	}
	if caught == 0 {
		t.Skip("burst did not survive decoding; nothing to catch")
	}
	if missed > caught {
		t.Errorf("coded-PHY hints missed %d symbol errors, caught %d", missed, caught)
	}
}

func TestHintMonotonicityAcrossNoise(t *testing.T) {
	// Mean hint must grow with channel noise for the coded PHY, as for
	// every other hint source.
	rng := stats.NewRNG(7)
	meanHint := func(ber float64) float64 {
		data := make([]byte, 4000)
		for i := range data {
			data[i] = byte(rng.Intn(2))
		}
		coded := Encode(data)
		for i := range coded {
			if rng.Bool(ber) {
				coded[i] ^= 1
			}
		}
		res, err := Decode(coded)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		ds := DecisionsFromResult(res)
		for _, d := range ds {
			sum += d.Hint
		}
		return sum / float64(len(ds))
	}
	clean, noisy := meanHint(0.001), meanHint(0.06)
	if clean >= noisy {
		t.Errorf("coded-PHY hint not monotone: clean %v >= noisy %v", clean, noisy)
	}
}
