package fec_test

// Integration tests for the paper's PHY-independence claim (Sec. 3.3 and
// the future-work list): the PP-ARQ receiver stack — labelling, run-length
// representation, chunking, feedback, and assembly — runs unchanged over a
// convolutionally-coded PHY whose hints are Viterbi reliabilities instead
// of Hamming distances. Nothing above the Decision stream knows which PHY
// produced it.

import (
	"bytes"
	"testing"

	"ppr/internal/core/feedback"
	"ppr/internal/core/recovery"
	"ppr/internal/core/softphy"
	"ppr/internal/fec"
	"ppr/internal/stats"
)

// codedEta is a threshold calibrated for the coded PHY's hint scale
// (hints live in [0, 16]; clean bits sit near 0). In a deployment the
// Adaptive labeler would learn this — tested below.
const codedEta = 8

func transmitCoded(rng *stats.RNG, payload []byte, channelBER float64) []byte {
	coded := fec.Encode(fec.BitsFromBytes(payload))
	for i := range coded {
		if rng.Bool(channelBER) {
			coded[i] ^= 1
		}
	}
	return coded
}

func TestPPARQRecoveryOverCodedPHY(t *testing.T) {
	rng := stats.NewRNG(1)
	recovered := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		payload := make([]byte, 80)
		for i := range payload {
			payload[i] = byte(rng.Intn(256))
		}
		// A noisy channel with a heavy burst: the decoder will fail inside
		// the burst and the reliabilities must flag the failure.
		coded := fec.Encode(fec.BitsFromBytes(payload))
		lo := len(coded) / 3
		for i := lo; i < lo+len(coded)/5; i++ {
			if rng.Bool(0.25) {
				coded[i] ^= 1
			}
		}
		res, err := fec.Decode(coded)
		if err != nil {
			t.Fatal(err)
		}
		ds := fec.DecisionsFromResult(res)

		// The generic PP-ARQ receiver stack, PHY-agnostic from here on.
		asm := recovery.New(len(ds))
		if err := asm.Init(0, ds, softphy.Threshold{Eta: codedEta}); err != nil {
			t.Fatal(err)
		}
		req := asm.BuildRequest(uint16(trial), feedback.DefaultChecksumBits)
		if req.CRCVerified {
			// Decode happened to be perfect; fine.
			recovered++
			continue
		}
		// "Sender" answers from the true symbols.
		truth := make([]byte, 0, len(payload)*2)
		for _, b := range payload {
			truth = append(truth, b&0x0f, b>>4)
		}
		resp := feedback.Response{Seq: req.Seq, NumSymbols: len(ds)}
		for _, c := range req.Chunks {
			resp.Chunks = append(resp.Chunks, feedback.RespChunk{
				Start: c.StartSym, Syms: truth[c.StartSym:c.EndSym],
			})
		}
		for _, s := range feedback.Segments(len(ds), req.Chunks) {
			w := feedback.ChecksumWidth(s.Len, feedback.DefaultChecksumBits)
			resp.SegChecksums = append(resp.SegChecksums, feedback.SymbolChecksum(truth[s.Start:s.End()], w))
		}
		failed, err := asm.ApplyResponse(resp, feedback.DefaultChecksumBits)
		if err != nil {
			t.Fatal(err)
		}
		// One more round sweeps any failed segments (misses).
		for round := 0; failed > 0 && round < 3; round++ {
			req = asm.BuildRequest(uint16(trial), feedback.DefaultChecksumBits)
			resp = feedback.Response{Seq: req.Seq, NumSymbols: len(ds)}
			for _, c := range req.Chunks {
				resp.Chunks = append(resp.Chunks, feedback.RespChunk{
					Start: c.StartSym, Syms: truth[c.StartSym:c.EndSym],
				})
			}
			for _, s := range feedback.Segments(len(ds), req.Chunks) {
				w := feedback.ChecksumWidth(s.Len, feedback.DefaultChecksumBits)
				resp.SegChecksums = append(resp.SegChecksums, feedback.SymbolChecksum(truth[s.Start:s.End()], w))
			}
			failed, err = asm.ApplyResponse(resp, feedback.DefaultChecksumBits)
			if err != nil {
				t.Fatal(err)
			}
		}
		if !asm.Complete() {
			t.Fatalf("trial %d: not complete after recovery rounds", trial)
		}
		if !bytes.Equal(asm.Payload(), payload) {
			t.Fatalf("trial %d: payload mismatch after recovery", trial)
		}
		recovered++
	}
	if recovered != trials {
		t.Errorf("recovered %d of %d coded-PHY transfers", recovered, trials)
	}
}

func TestAdaptiveLearnsCodedScale(t *testing.T) {
	// The adaptive labeler must find a usable threshold for the coded
	// PHY's hint scale without being told anything about it.
	rng := stats.NewRNG(2)
	ad := softphy.NewAdaptive(10, 1, 0)
	for trial := 0; trial < 30; trial++ {
		payload := make([]byte, 60)
		for i := range payload {
			payload[i] = byte(rng.Intn(256))
		}
		coded := transmitCoded(rng, payload, 0.05)
		res, err := fec.Decode(coded)
		if err != nil {
			t.Fatal(err)
		}
		ds := fec.DecisionsFromResult(res)
		truth := make([]byte, 0, len(payload)*2)
		for _, b := range payload {
			truth = append(truth, b&0x0f, b>>4)
		}
		for i, d := range ds {
			ad.Observe(d.Hint, d.Symbol == truth[i])
		}
	}
	eta := ad.Eta()
	if eta < 0 || eta >= 16 {
		t.Errorf("learned eta %v outside the coded hint range", eta)
	}
	if mr := ad.MissRate(eta); mr > 0.5 {
		t.Errorf("adaptive threshold misses %.2f of errors", mr)
	}
	t.Logf("coded PHY: learned eta = %v (miss %.3f, false alarm %.4f)",
		eta, ad.MissRate(eta), ad.FalseAlarmRate(eta))
}
