package fec

import "ppr/internal/obs"

// Package-level metric handles. Decode is a free function with no
// construction moment, so the sites go through obs Vars: two atomic loads
// and a pointer compare per call, re-resolving only when the default
// registry changes — negligible against a SOVA pass over a packet.
var (
	// mSOVAInvocations counts Decode calls — every SOVA trellis pass the
	// FEC recovery schemes run.
	mSOVAInvocations = &obs.CounterVar{Name: "fec.sova_invocations"}
	// mSOVABits counts decoded information bits across those passes.
	mSOVABits = &obs.CounterVar{Name: "fec.sova_bits"}
)
