// Package sovaref freezes the seed's SOVA decoder — two slice allocations
// per trellis branch and an O(n·5K) reliability-window scan — as the
// behavioral reference for the flattened fec.Decode. It exists so exactly
// one copy of the reference is shared by the bit-identical parity tests
// (internal/fec) and the BenchmarkFECDecode baseline (package ppr): the
// ≥3× speedup gate and the parity guard both measure against this
// function. Do not optimize or "fix" it; its value is that it does not
// change.
package sovaref

import (
	"fmt"
	"math"
	"math/bits"

	"ppr/internal/fec"
)

const (
	k         = 7
	numStates = 1 << (k - 1)
	rate      = 2
	g0        = 0o171
	g1        = 0o133
)

func parity(v uint32) byte {
	return byte(bits.OnesCount32(v) & 1)
}

var outputs [numStates][2]byte

func init() {
	for s := 0; s < numStates; s++ {
		for b := 0; b < 2; b++ {
			reg := uint32(b)<<(k-1) | uint32(s)
			o0 := parity(reg & g0)
			o1 := parity(reg & g1)
			outputs[s][b] = o0<<1 | o1
		}
	}
}

// Decode is the seed implementation of fec.Decode, verbatim: per-branch
// survivor/delta slice allocation, add-compare-select over predecessor
// states, and a quadratic reliability-window minimum.
func Decode(coded []byte) (fec.Result, error) {
	if len(coded)%rate != 0 {
		return fec.Result{}, fmt.Errorf("sovaref: coded length %d not a multiple of %d", len(coded), rate)
	}
	nBranches := len(coded) / rate
	if nBranches < k-1 {
		return fec.Result{}, fmt.Errorf("sovaref: %d branches shorter than the %d-bit tail", nBranches, k-1)
	}
	const inf = math.MaxInt32 / 2

	metric := make([]int32, numStates)
	next := make([]int32, numStates)
	for s := 1; s < numStates; s++ {
		metric[s] = inf
	}
	survivors := make([][]byte, nBranches)
	deltas := make([][]int32, nBranches)

	for t := 0; t < nBranches; t++ {
		rx := coded[t*rate]<<1 | coded[t*rate+1]
		survivors[t] = make([]byte, numStates)
		deltas[t] = make([]int32, numStates)
		for s := 0; s < numStates; s++ {
			next[s] = inf
		}
		for s := 0; s < numStates; s++ {
			if metric[s] >= inf {
				continue
			}
			for b := 0; b < 2; b++ {
				ns := (s >> 1) | b<<(k-2)
				bm := int32(bits.OnesCount8((outputs[s][byte(b)] ^ rx) & 0b11))
				m := metric[s] + bm
				if m < next[ns] {
					deltas[t][ns] = next[ns] - m
					next[ns] = m
					survivors[t][ns] = byte(s & 1)
				} else if d := m - next[ns]; d < deltas[t][ns] {
					deltas[t][ns] = d
				}
			}
		}
		metric, next = next, metric
	}

	state := 0
	decided := make([]byte, nBranches)
	margins := make([]int32, nBranches)
	for t := nBranches - 1; t >= 0; t-- {
		decided[t] = byte(state >> (k - 2) & 1)
		margins[t] = deltas[t][state]
		prevLow := survivors[t][state]
		state = (state<<1 | int(prevLow)) & (numStates - 1)
	}

	nData := nBranches - (k - 1)
	res := fec.Result{
		Bits:        decided[:nData],
		Reliability: make([]float64, nData),
	}
	const window = 5 * k
	for i := 0; i < nData; i++ {
		min := int32(math.MaxInt32)
		end := i + window
		if end > nBranches {
			end = nBranches
		}
		for t := i; t < end; t++ {
			if margins[t] < min {
				min = margins[t]
			}
		}
		res.Reliability[i] = float64(min)
	}
	return res, nil
}
