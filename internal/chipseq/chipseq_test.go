package chipseq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Published sequences from IEEE 802.15.4-2006 Table 24 (chip c0 first).
var published = map[byte]string{
	0:  "11011001110000110101001000101110",
	1:  "11101101100111000011010100100010",
	2:  "00101110110110011100001101010010",
	5:  "00110101001000101110110110011100",
	7:  "10011100001101010010001011101101",
	8:  "10001100100101100000011101111011",
	12: "00000111011110111000110010010110",
	15: "11001001011000000111011110111000",
}

func TestPublishedSequences(t *testing.T) {
	for sym, want := range published {
		if got := String(Codeword(sym)); got != want {
			t.Errorf("symbol %d:\n got  %s\n want %s", sym, got, want)
		}
	}
}

func TestAllCodewordsDistinct(t *testing.T) {
	seen := map[uint32]byte{}
	for s := byte(0); s < NumSymbols; s++ {
		cw := Codeword(s)
		if prev, dup := seen[cw]; dup {
			t.Fatalf("symbols %d and %d share codeword %s", prev, s, String(cw))
		}
		seen[cw] = s
	}
}

func TestRotationStructure(t *testing.T) {
	// Symbols 1..7 are 4-chip right rotations of their predecessor.
	for s := byte(1); s < 8; s++ {
		want := rotateRightChips(Codeword(s-1), 4)
		if Codeword(s) != want {
			t.Errorf("symbol %d is not a 4-chip rotation of symbol %d", s, s-1)
		}
	}
}

func TestConjugateStructure(t *testing.T) {
	// Symbols 8..15 differ from 0..7 exactly on the 16 odd-indexed chips.
	for s := byte(0); s < 8; s++ {
		a, b := Codeword(s), Codeword(s+8)
		if d := PairDistance(s, s+8); d != 16 {
			t.Errorf("conjugate distance(%d,%d) = %d, want 16", s, s+8, d)
		}
		for i := 0; i < ChipsPerSymbol; i += 2 {
			if ChipAt(a, i) != ChipAt(b, i) {
				t.Errorf("symbol %d vs %d differ at even chip %d", s, s+8, i)
			}
		}
	}
}

func TestMinPairDistance(t *testing.T) {
	// The 802.15.4 code book's minimum pairwise distance is what separates
	// "correct" (distance ~0-2) from "incorrect" (distance near min/2+) hints.
	min := MinPairDistance()
	if min < 10 || min > 20 {
		t.Errorf("MinPairDistance = %d, outside plausible [10,20] for this code book", min)
	}
	t.Logf("code book minimum pairwise Hamming distance: %d", min)
}

func TestNearestHardExact(t *testing.T) {
	for s := byte(0); s < NumSymbols; s++ {
		got, d := NearestHard(Codeword(s))
		if got != s || d != 0 {
			t.Errorf("NearestHard(codeword %d) = %d, dist %d", s, got, d)
		}
	}
}

func TestNearestHardFewChipErrors(t *testing.T) {
	// With fewer than MinPairDistance/2 chip errors, decoding must recover
	// the transmitted symbol and report exactly the number of flipped chips.
	maxFix := MinPairDistance()/2 - 1
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		s := byte(rng.Intn(NumSymbols))
		nerr := rng.Intn(maxFix + 1)
		cw := Codeword(s)
		flipped := map[int]bool{}
		for len(flipped) < nerr {
			flipped[rng.Intn(ChipsPerSymbol)] = true
		}
		for i := range flipped {
			cw ^= 1 << uint(31-i)
		}
		got, d := NearestHard(cw)
		if got != s {
			t.Fatalf("trial %d: %d chip errors decoded %d, want %d", trial, nerr, got, s)
		}
		if d != nerr {
			t.Fatalf("trial %d: distance %d, want %d", trial, d, nerr)
		}
	}
}

func TestNearestHardDistanceNeverExceedsErrors(t *testing.T) {
	// Whatever is received, the reported distance is at most the distance to
	// the transmitted codeword (nearest can only be closer).
	f := func(s uint8, noise uint32) bool {
		sym := s % NumSymbols
		rx := Codeword(sym) ^ noise
		_, d := NearestHard(rx)
		txDist := 0
		for i := 0; i < 32; i++ {
			txDist += int(noise>>uint(i)) & 1
		}
		return d <= txDist
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCorrelatePerfect(t *testing.T) {
	for s := byte(0); s < NumSymbols; s++ {
		r := make([]float64, ChipsPerSymbol)
		copy(r, Signed(s)[:])
		if c := Correlate(r, s); c != ChipsPerSymbol {
			t.Errorf("self-correlation of %d = %v, want %d", s, c, ChipsPerSymbol)
		}
	}
}

func TestCorrelateCrossBelowSelf(t *testing.T) {
	for a := byte(0); a < NumSymbols; a++ {
		r := make([]float64, ChipsPerSymbol)
		copy(r, Signed(a)[:])
		for b := byte(0); b < NumSymbols; b++ {
			if a == b {
				continue
			}
			if c := Correlate(r, b); c >= ChipsPerSymbol {
				t.Errorf("cross-correlation C(%d,%d) = %v not below %d", a, b, c, ChipsPerSymbol)
			}
		}
	}
}

func TestCorrelationDistanceIdentity(t *testing.T) {
	// For ±1 samples, C(R, Cs) = 32 − 2·HammingDist(R, Cs).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		var rx uint32
		r := make([]float64, ChipsPerSymbol)
		for i := range r {
			if rng.Intn(2) == 1 {
				r[i] = 1
				rx |= 1 << uint(31-i)
			} else {
				r[i] = -1
			}
		}
		for s := byte(0); s < NumSymbols; s++ {
			wantC := float64(ChipsPerSymbol - 2*popcount(rx^Codeword(s)))
			if c := Correlate(r, s); c != wantC {
				t.Fatalf("C mismatch: got %v want %v", c, wantC)
			}
		}
	}
}

func popcount(v uint32) int {
	n := 0
	for v != 0 {
		n += int(v & 1)
		v >>= 1
	}
	return n
}

func TestNearestSoftMatchesHardOnSignSamples(t *testing.T) {
	// On clean ±1 samples, soft and hard decisions agree.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		s := byte(rng.Intn(NumSymbols))
		r := make([]float64, ChipsPerSymbol)
		copy(r, Signed(s)[:])
		// flip a few chips
		for k := 0; k < rng.Intn(5); k++ {
			i := rng.Intn(ChipsPerSymbol)
			r[i] = -r[i]
		}
		soft, best, runnerUp := NearestSoft(r)
		var rx uint32
		for i, v := range r {
			if v > 0 {
				rx |= 1 << uint(31-i)
			}
		}
		hard, _ := NearestHard(rx)
		if soft != hard {
			t.Fatalf("trial %d: soft %d != hard %d", trial, soft, hard)
		}
		if best < runnerUp {
			t.Fatalf("best %v < runnerUp %v", best, runnerUp)
		}
	}
}

func TestSoftNoiseImmunity(t *testing.T) {
	// Small Gaussian-ish perturbations must not change the soft decision.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		s := byte(rng.Intn(NumSymbols))
		r := make([]float64, ChipsPerSymbol)
		for i, v := range Signed(s) {
			r[i] = v + rng.NormFloat64()*0.05
		}
		got, _, _ := NearestSoft(r)
		if got != s {
			t.Fatalf("trial %d: tiny noise flipped decision %d -> %d", trial, s, got)
		}
	}
}

func TestChipAt(t *testing.T) {
	cw := Codeword(0)
	for i, ch := range baseChips {
		want := int(ch - '0')
		if got := ChipAt(cw, i); got != want {
			t.Errorf("chip %d = %d, want %d", i, got, want)
		}
	}
}

func TestCodewordPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Codeword(16)
}

func TestStringRoundTrip(t *testing.T) {
	for s := byte(0); s < NumSymbols; s++ {
		str := String(Codeword(s))
		if len(str) != ChipsPerSymbol {
			t.Fatalf("length %d", len(str))
		}
		var cw uint32
		for i := 0; i < ChipsPerSymbol; i++ {
			if str[i] == '1' {
				cw |= 1 << uint(31-i)
			}
		}
		if cw != Codeword(s) {
			t.Errorf("round trip failed for symbol %d", s)
		}
	}
}
