// Package chipseq implements the IEEE 802.15.4 2.4 GHz direct-sequence
// spread spectrum code book used by the CC2420 radios in the PPR testbed.
//
// Each 4-bit data symbol maps to one of 16 quasi-orthogonal 32-chip
// pseudo-noise sequences (b = 4, B = 32 in the paper's notation, Sec. 2).
// Per IEEE 802.15.4-2006 Table 24, sequences 1–7 are successive 4-chip right
// rotations of the base sequence, and sequences 8–15 are the conjugates of
// 0–7 (every odd-indexed chip inverted). The geometry of this code book —
// in particular the pairwise Hamming distances between codewords — is what
// makes Hamming distance a usable SoftPHY hint (Sec. 3.2), so we reproduce
// the standard's exact sequences rather than an arbitrary orthogonal set.
package chipseq

import (
	"fmt"
	"math/bits"
)

const (
	// NumSymbols is the number of codewords (2^BitsPerSymbol).
	NumSymbols = 16
	// ChipsPerSymbol is the spreading factor B: chips per codeword.
	ChipsPerSymbol = 32
	// BitsPerSymbol is b: data bits carried by each codeword.
	BitsPerSymbol = 4
)

// baseChips is the symbol-0 chip sequence from IEEE 802.15.4-2006 Table 24,
// chip c0 first.
const baseChips = "11011001110000110101001000101110"

// codebook[s] holds the 32-chip sequence for symbol s with chip i stored at
// bit position (31-i), so the binary representation reads in chip order.
var codebook [NumSymbols]uint32

// signedChips[s][i] is +1.0 for chip 1 and -1.0 for chip 0, precomputed for
// the soft-decision correlation metric.
var signedChips [NumSymbols][ChipsPerSymbol]float64

func init() {
	var base uint32
	for i := 0; i < ChipsPerSymbol; i++ {
		if baseChips[i] == '1' {
			base |= 1 << uint(31-i)
		}
	}
	for s := 0; s < 8; s++ {
		codebook[s] = rotateRightChips(base, 4*s)
	}
	// The conjugate inverts every odd-indexed chip (the Q-phase chips of the
	// O-QPSK half-sine modulation): mask has 1s at chip positions 1,3,5,...
	const oddMask = 0x55555555 // bit(31-i) set for odd i
	for s := 0; s < 8; s++ {
		codebook[8+s] = codebook[s] ^ oddMask
	}
	for s := 0; s < NumSymbols; s++ {
		for i := 0; i < ChipsPerSymbol; i++ {
			if ChipAt(codebook[s], i) == 1 {
				signedChips[s][i] = 1
			} else {
				signedChips[s][i] = -1
			}
		}
	}
}

// rotateRightChips rotates the 32-chip sequence right by n chip positions in
// chip order (chip i moves to chip (i+n) mod 32).
func rotateRightChips(cw uint32, n int) uint32 {
	// Chip i is at bit (31-i); moving chips right in chip order is a right
	// rotate in bit order as well.
	return bits.RotateLeft32(cw, -n)
}

// Codeword returns the 32-chip sequence for the 4-bit symbol s.
func Codeword(s byte) uint32 {
	if s >= NumSymbols {
		panic(fmt.Sprintf("chipseq: symbol %d out of range", s))
	}
	return codebook[s]
}

// ChipAt extracts chip i (0 ≤ i < 32) from a codeword, returning 0 or 1.
func ChipAt(cw uint32, i int) int {
	return int(cw>>uint(31-i)) & 1
}

// Signed returns the ±1 representation of symbol s's chips, used as the
// reference waveform in soft-decision decoding.
func Signed(s byte) *[ChipsPerSymbol]float64 {
	if s >= NumSymbols {
		panic(fmt.Sprintf("chipseq: symbol %d out of range", s))
	}
	return &signedChips[s]
}

// NearestHard maps a hard-decided 32-chip word to the closest codeword and
// returns the decoded symbol together with the Hamming distance to it —
// exactly the SoftPHY hint of Sec. 3.2. Ties resolve to the lowest symbol,
// which is deterministic and unbiased with respect to correctness labelling.
//
// This is the despreader's innermost loop — one call per received symbol —
// so it is fully unrolled over the 16 codewords and branch-free: each
// candidate packs (distance, symbol) into one word and a compare-move
// tournament keeps the minimum, which the compiler lowers to CMOVs rather
// than data-dependent branches. Packing the symbol in the low bits makes
// the tie-break to the lowest symbol fall out of the numeric minimum.
func NearestHard(received uint32) (sym byte, dist int) {
	m := minU32(packDS(received, 0), packDS(received, 1))
	m = minU32(m, packDS(received, 2))
	m = minU32(m, packDS(received, 3))
	m = minU32(m, packDS(received, 4))
	m = minU32(m, packDS(received, 5))
	m = minU32(m, packDS(received, 6))
	m = minU32(m, packDS(received, 7))
	m = minU32(m, packDS(received, 8))
	m = minU32(m, packDS(received, 9))
	m = minU32(m, packDS(received, 10))
	m = minU32(m, packDS(received, 11))
	m = minU32(m, packDS(received, 12))
	m = minU32(m, packDS(received, 13))
	m = minU32(m, packDS(received, 14))
	m = minU32(m, packDS(received, 15))
	return byte(m & (NumSymbols - 1)), int(m >> 4)
}

// packDS packs symbol s's Hamming distance above the symbol value, so the
// minimum over all 16 packed words is the minimum distance with ties going
// to the lowest symbol.
func packDS(received uint32, s int) uint32 {
	return uint32(bits.OnesCount32(received^codebook[s]))<<4 | uint32(s)
}

func minU32(a, b uint32) uint32 {
	if b < a {
		return b
	}
	return a
}

// Correlate computes the soft-decision correlation metric of Eq. 1 between
// received chip samples r (length 32) and symbol s's codeword:
// C(R, Cs) = Σ_j (2c_sj − 1) r_j.
func Correlate(r []float64, s byte) float64 {
	if len(r) != ChipsPerSymbol {
		panic(fmt.Sprintf("chipseq: Correlate needs %d samples, got %d", ChipsPerSymbol, len(r)))
	}
	ref := Signed(s)
	var c float64
	for j := 0; j < ChipsPerSymbol; j++ {
		c += ref[j] * r[j]
	}
	return c
}

// NearestSoft picks the codeword with the highest correlation metric against
// the received chip samples and also returns the runner-up correlation,
// letting callers derive margin-based confidence hints.
func NearestSoft(r []float64) (sym byte, best, runnerUp float64) {
	if len(r) != ChipsPerSymbol {
		panic(fmt.Sprintf("chipseq: NearestSoft needs %d samples, got %d", ChipsPerSymbol, len(r)))
	}
	best = -1e18
	runnerUp = -1e18
	for s := 0; s < NumSymbols; s++ {
		c := Correlate(r, byte(s))
		if c > best {
			runnerUp = best
			best = c
			sym = byte(s)
		} else if c > runnerUp {
			runnerUp = c
		}
	}
	return sym, best, runnerUp
}

// PairDistance returns the Hamming distance between the codewords of symbols
// a and b.
func PairDistance(a, b byte) int {
	return bits.OnesCount32(Codeword(a) ^ Codeword(b))
}

// MinPairDistance returns the minimum Hamming distance between any two
// distinct codewords in the book. Decoding errors at low SINR collapse onto
// codewords at this distance, which is why incorrect codewords show large
// Hamming-distance hints (Fig. 3).
func MinPairDistance() int {
	min := ChipsPerSymbol + 1
	for a := 0; a < NumSymbols; a++ {
		for b := a + 1; b < NumSymbols; b++ {
			if d := PairDistance(byte(a), byte(b)); d < min {
				min = d
			}
		}
	}
	return min
}

// String renders a codeword as its 32-character chip string, chip 0 first.
func String(cw uint32) string {
	b := make([]byte, ChipsPerSymbol)
	for i := 0; i < ChipsPerSymbol; i++ {
		b[i] = '0' + byte(ChipAt(cw, i))
	}
	return string(b)
}
