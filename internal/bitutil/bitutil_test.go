package bitutil

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHammingDist32(t *testing.T) {
	cases := []struct {
		a, b uint32
		want int
	}{
		{0, 0, 0},
		{0xffffffff, 0, 32},
		{0b1010, 0b0101, 4},
		{0b1010, 0b1010, 0},
		{1 << 31, 0, 1},
	}
	for _, c := range cases {
		if got := HammingDist32(c.a, c.b); got != c.want {
			t.Errorf("HammingDist32(%#x,%#x) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHammingDistSymmetric(t *testing.T) {
	f := func(a, b uint32) bool { return HammingDist32(a, b) == HammingDist32(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHammingDistTriangleInequality(t *testing.T) {
	f := func(a, b, c uint32) bool {
		return HammingDist32(a, c) <= HammingDist32(a, b)+HammingDist32(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHammingDistBytes(t *testing.T) {
	if got := HammingDistBytes([]byte{0xff, 0x00}, []byte{0x00, 0xff}); got != 16 {
		t.Errorf("got %d, want 16", got)
	}
	if got := HammingDistBytes(nil, nil); got != 0 {
		t.Errorf("got %d, want 0", got)
	}
}

func TestHammingDistBytesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	HammingDistBytes([]byte{1}, []byte{1, 2})
}

func TestNibbleRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		return bytes.Equal(BytesFromNibbles(NibblesFromBytes(data)), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNibbleOrderLowFirst(t *testing.T) {
	nibs := NibblesFromBytes([]byte{0xA5})
	if nibs[0] != 0x5 || nibs[1] != 0xA {
		t.Errorf("expected low nibble first, got %v", nibs)
	}
}

func TestNibbleCount(t *testing.T) {
	if n := len(NibblesFromBytes(make([]byte, 125))); n != 250 {
		t.Errorf("125 bytes should give 250 symbols, got %d", n)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11, 1500 * 8: 14}
	for n, want := range cases {
		if got := Log2Ceil(n); got != want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestLog2CeilCoversRange(t *testing.T) {
	// 2^Log2Ceil(n) >= n and 2^(Log2Ceil(n)-1) < n for n > 1.
	for n := 1; n < 5000; n++ {
		k := Log2Ceil(n)
		if 1<<k < n {
			t.Fatalf("2^%d < %d", k, n)
		}
		if n > 1 && 1<<(k-1) >= n {
			t.Fatalf("2^%d >= %d; Log2Ceil not tight", k-1, n)
		}
	}
}

func TestBitWriterReaderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		type field struct {
			v     uint64
			width int
		}
		n := rng.Intn(50) + 1
		fields := make([]field, n)
		var w Writer
		for i := range fields {
			width := rng.Intn(64) + 1
			v := rng.Uint64() & (^uint64(0) >> uint(64-width))
			fields[i] = field{v, width}
			w.WriteBits(v, width)
		}
		r := NewReader(w.Bytes())
		for i, f := range fields {
			if got := r.ReadBits(f.width); got != f.v {
				t.Fatalf("trial %d field %d: got %#x want %#x (width %d)", trial, i, got, f.v, f.width)
			}
		}
		if err := r.Err(); err != nil {
			t.Fatalf("unexpected read error: %v", err)
		}
	}
}

func TestBitWriterLen(t *testing.T) {
	var w Writer
	w.WriteBits(0x3, 2)
	w.WriteBits(0x1f, 5)
	if w.Len() != 7 {
		t.Errorf("Len = %d, want 7", w.Len())
	}
	if len(w.Bytes()) != 1 {
		t.Errorf("Bytes len = %d, want 1", len(w.Bytes()))
	}
	w.WriteBits(0xff, 8)
	if w.Len() != 15 || len(w.Bytes()) != 2 {
		t.Errorf("Len=%d bytes=%d, want 15/2", w.Len(), len(w.Bytes()))
	}
}

func TestBitReaderUnderflow(t *testing.T) {
	r := NewReader([]byte{0xab})
	_ = r.ReadBits(8)
	if err := r.Err(); err != nil {
		t.Fatalf("first read should succeed: %v", err)
	}
	if v := r.ReadBits(1); v != 0 {
		t.Errorf("underflow read returned %d, want 0", v)
	}
	if r.Err() == nil {
		t.Error("expected underflow error")
	}
}

func TestBitWriterMSBFirst(t *testing.T) {
	var w Writer
	w.WriteBits(0b101, 3)
	// 101xxxxx -> 0xa0
	if got := w.Bytes()[0]; got != 0xa0 {
		t.Errorf("got %#x, want 0xa0", got)
	}
}

func TestWriteReadBytesUnaligned(t *testing.T) {
	var w Writer
	w.WriteBit(true)
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	w.WriteBytes(payload)
	r := NewReader(w.Bytes())
	if !r.ReadBit() {
		t.Fatal("lost leading bit")
	}
	if got := r.ReadBytes(4); !bytes.Equal(got, payload) {
		t.Errorf("got % x, want % x", got, payload)
	}
}

func TestReadBytesUnderflowReturnsNil(t *testing.T) {
	r := NewReader([]byte{1, 2})
	if got := r.ReadBytes(3); got != nil {
		t.Errorf("expected nil on underflow, got % x", got)
	}
	if r.Err() == nil {
		t.Error("expected error")
	}
}

func TestRemaining(t *testing.T) {
	r := NewReader([]byte{0, 0, 0})
	if r.Remaining() != 24 {
		t.Fatalf("Remaining=%d want 24", r.Remaining())
	}
	r.ReadBits(5)
	if r.Remaining() != 19 {
		t.Fatalf("Remaining=%d want 19", r.Remaining())
	}
}

func TestGammaRoundTrip(t *testing.T) {
	var w Writer
	vals := []uint64{1, 2, 3, 4, 7, 8, 100, 1023, 1024, 1 << 40}
	for _, v := range vals {
		w.WriteGamma(v)
	}
	r := NewReader(w.Bytes())
	for _, v := range vals {
		if got := r.ReadGamma(); got != v {
			t.Fatalf("gamma round trip: got %d want %d", got, v)
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestGammaRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(40) + 1
		vals := make([]uint64, n)
		var w Writer
		for i := range vals {
			vals[i] = uint64(rng.Int63n(1<<30)) + 1
			w.WriteGamma(vals[i])
		}
		r := NewReader(w.Bytes())
		for i, v := range vals {
			if got := r.ReadGamma(); got != v {
				t.Fatalf("trial %d val %d: got %d want %d", trial, i, got, v)
			}
		}
	}
}

func TestGammaLen(t *testing.T) {
	cases := map[uint64]int{1: 1, 2: 3, 3: 3, 4: 5, 7: 5, 8: 7, 255: 15, 256: 17}
	for v, want := range cases {
		if got := GammaLen(v); got != want {
			t.Errorf("GammaLen(%d) = %d, want %d", v, got, want)
		}
		var w Writer
		w.WriteGamma(v)
		if w.Len() != want {
			t.Errorf("WriteGamma(%d) wrote %d bits, want %d", v, w.Len(), want)
		}
	}
}

func TestGammaZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var w Writer
	w.WriteGamma(0)
}

func TestGammaUnderflow(t *testing.T) {
	r := NewReader([]byte{0x00}) // eight zero bits: no terminating 1
	if v := r.ReadGamma(); v != 0 {
		t.Errorf("underflow gamma = %d", v)
	}
	if r.Err() == nil {
		t.Error("expected error")
	}
}
