package bitutil

import (
	"fmt"
	"math/bits"
)

// ChipWords is a bit-packed chip stream: chip i lives at bit (63 - i%64) of
// word i/64, so chips pack MSB-first, exactly the order the PHY's 32-chip
// codewords use. It is the simulator's native on-air representation: the
// channel synthesizer writes it 64 chips per RNG draw, the frame
// synchronizer's XOR+popcount correlation reads it via Word32, and the
// despreader extracts codewords from it directly — no byte-per-chip stream
// exists between transmitter and decoder. Byte-per-chip slices survive only
// at the sample-level modem boundary (PackChipBytes / Bytes are the
// adapters).
//
// Methods that write ([lo, hi) spans, single bits) keep bits at positions
// >= Len() unspecified; every reader masks to the valid range, so views
// returned by Slice may share words with their parent.
type ChipWords struct {
	words []uint64
	n     int
}

// NewChipWords returns a zeroed stream of n chips.
func NewChipWords(n int) *ChipWords {
	if n < 0 {
		panic(fmt.Sprintf("bitutil: NewChipWords(%d)", n))
	}
	return &ChipWords{words: make([]uint64, (n+63)/64), n: n}
}

// PackChipBytes packs a byte-per-chip stream (any nonzero byte is chip
// value 1) — the adapter from the sample-level modem boundary.
func PackChipBytes(chips []byte) *ChipWords {
	w := NewChipWords(len(chips))
	for i, c := range chips {
		if c != 0 {
			w.words[i/64] |= 1 << uint(63-i%64)
		}
	}
	return w
}

// PackWord32s packs a codeword sequence, 32 chips per entry, two entries
// per word — the transmitter-side fast path from spread symbols to the
// on-air stream.
func PackWord32s(cws []uint32) *ChipWords {
	w := NewChipWords(len(cws) * 32)
	for i, cw := range cws {
		if i%2 == 0 {
			w.words[i/2] = uint64(cw) << 32
		} else {
			w.words[i/2] |= uint64(cw)
		}
	}
	return w
}

// Len returns the stream length in chips.
func (w *ChipWords) Len() int { return w.n }

// Bit returns chip i (0 or 1).
func (w *ChipWords) Bit(i int) byte {
	if i < 0 || i >= w.n {
		panic(fmt.Sprintf("bitutil: Bit(%d) out of range for %d chips", i, w.n))
	}
	return byte(w.words[i/64] >> uint(63-i%64) & 1)
}

// SetBit sets chip i to v (any nonzero v is chip value 1).
func (w *ChipWords) SetBit(i int, v byte) {
	if i < 0 || i >= w.n {
		panic(fmt.Sprintf("bitutil: SetBit(%d) out of range for %d chips", i, w.n))
	}
	mask := uint64(1) << uint(63-i%64)
	if v != 0 {
		w.words[i/64] |= mask
	} else {
		w.words[i/64] &^= mask
	}
}

// FlipBit inverts chip i — the channel's sparse error application.
func (w *ChipWords) FlipBit(i int) {
	if i < 0 || i >= w.n {
		panic(fmt.Sprintf("bitutil: FlipBit(%d) out of range for %d chips", i, w.n))
	}
	w.words[i/64] ^= 1 << uint(63-i%64)
}

// Word32 extracts the 32 chips starting at chip offset off, chip off at bit
// 31 — the primitive the sliding sync correlation and the despreader are
// built on. It panics when the window runs past the stream.
func (w *ChipWords) Word32(off int) uint32 {
	if off < 0 || off+32 > w.n {
		panic(fmt.Sprintf("bitutil: Word32(%d) out of range for %d chips", off, w.n))
	}
	wi := off / 64
	sh := uint(off % 64)
	v := w.words[wi] << sh
	if sh > 0 && wi+1 < len(w.words) {
		v |= w.words[wi+1] >> (64 - sh)
	}
	return uint32(v >> 32)
}

// Word64 extracts the 64 chips starting at chip offset off, chip off at bit
// 63 — the word-parallel sibling of Word32. The sync scan streams the
// 320-chip preamble/postamble correlation over it 64 chips at a time, so a
// candidate offset costs a handful of XOR+popcounts instead of a per-chip
// walk. It panics when the window runs past the stream.
func (w *ChipWords) Word64(off int) uint64 {
	if off < 0 || off+64 > w.n {
		panic(fmt.Sprintf("bitutil: Word64(%d) out of range for %d chips", off, w.n))
	}
	wi := off / 64
	sh := uint(off % 64)
	v := w.words[wi] << sh
	if sh > 0 {
		v |= w.words[wi+1] >> (64 - sh)
	}
	return v
}

// Words exposes the packed backing words read-only: word i holds chips
// [64i, 64i+64), chip 64i at bit 63. Bits at or past Len() are unspecified.
// It exists for offset-sweeping hot loops (the sync scan) that hoist word
// loads out of their inner loop instead of paying a Word64 call per offset;
// everything else should use the bounds-checked accessors. Callers must not
// modify the returned slice.
func (w *ChipWords) Words() []uint64 { return w.words }

// run64 extracts width (≤ 64) chips starting at off, left-aligned: the
// first chip of the run at bit 63. Bits past the run are unspecified;
// depositors mask them.
func (w *ChipWords) run64(off, width int) uint64 {
	wi := off / 64
	sh := uint(off % 64)
	v := w.words[wi] << sh
	if sh > 0 && wi+1 < len(w.words) {
		v |= w.words[wi+1] >> (64 - sh)
	}
	return v
}

// setRun deposits the top width (≤ 64) bits of v (left-aligned chips) at
// chip offset off, leaving every other bit untouched.
func (w *ChipWords) setRun(off, width int, v uint64) {
	mask := ^uint64(0)
	if width < 64 {
		mask <<= uint(64 - width)
		v &= mask
	}
	wi := off / 64
	sh := uint(off % 64)
	w.words[wi] = w.words[wi]&^(mask>>sh) | v>>sh
	if rem := int(sh) + width - 64; rem > 0 {
		w.words[wi+1] = w.words[wi+1]&^(mask<<(64-sh)) | v<<(64-sh)
	}
}

// CopyFrom copies n chips from src starting at srcOff into w starting at
// dstOff, word-at-a-time. Neither offset needs alignment; a 64-chip run
// costs two shifted word reads and at most two masked word writes.
func (w *ChipWords) CopyFrom(dstOff int, src *ChipWords, srcOff, n int) {
	if n < 0 || dstOff < 0 || srcOff < 0 || dstOff+n > w.n || srcOff+n > src.n {
		panic(fmt.Sprintf("bitutil: CopyFrom(%d, src, %d, %d) out of range (dst %d chips, src %d)",
			dstOff, srcOff, n, w.n, src.n))
	}
	for done := 0; done < n; done += 64 {
		width := n - done
		if width > 64 {
			width = 64
		}
		w.setRun(dstOff+done, width, src.run64(srcOff+done, width))
	}
}

// FillUniform fills chips [lo, hi) from a word source (typically
// stats.RNG.Uint64): 64 chips per draw, the pure-noise fast path of channel
// synthesis. The number of draws is ⌈(hi-lo)/64⌉ regardless of alignment.
func (w *ChipWords) FillUniform(lo, hi int, next func() uint64) {
	if lo < 0 || hi > w.n || lo > hi {
		panic(fmt.Sprintf("bitutil: FillUniform(%d, %d) out of range for %d chips", lo, hi, w.n))
	}
	for t := lo; t < hi; t += 64 {
		width := hi - t
		if width > 64 {
			width = 64
		}
		w.setRun(t, width, next())
	}
}

// XORWith flips every chip of w where o has a 1 — applying a packed error
// mask in word operations. It panics on length mismatch, like
// HammingDistBytes. The final partial word is masked to Len(), so w may be
// a view sharing words with a parent stream: chips past the view are never
// touched, and unspecified bits past o's length never leak in.
func (w *ChipWords) XORWith(o *ChipWords) {
	if w.n != o.n {
		panic(fmt.Sprintf("bitutil: XORWith length mismatch %d != %d", w.n, o.n))
	}
	full := w.n / 64
	for i := 0; i < full; i++ {
		w.words[i] ^= o.words[i]
	}
	if rem := w.n % 64; rem > 0 {
		w.words[full] ^= o.words[full] & (^uint64(0) << uint(64-rem))
	}
}

// OnesCount returns the number of 1 chips.
func (w *ChipWords) OnesCount() int {
	full := w.n / 64
	c := 0
	for i := 0; i < full; i++ {
		c += bits.OnesCount64(w.words[i])
	}
	if rem := w.n % 64; rem > 0 {
		c += bits.OnesCount64(w.words[full] & (^uint64(0) << uint(64-rem)))
	}
	return c
}

// Slice returns the chips [lo, hi) as a stream. When lo is word-aligned the
// view shares the parent's words (zero copy — fading coherence blocks hit
// this path); otherwise the chips are copied out.
func (w *ChipWords) Slice(lo, hi int) *ChipWords {
	if lo < 0 || hi > w.n || lo > hi {
		panic(fmt.Sprintf("bitutil: Slice(%d, %d) out of range for %d chips", lo, hi, w.n))
	}
	if lo%64 == 0 {
		return &ChipWords{words: w.words[lo/64 : (hi+63)/64], n: hi - lo}
	}
	out := NewChipWords(hi - lo)
	out.CopyFrom(0, w, lo, hi-lo)
	return out
}

// Clone returns an independent copy.
func (w *ChipWords) Clone() *ChipWords {
	out := &ChipWords{words: make([]uint64, len(w.words)), n: w.n}
	copy(out.words, w.words)
	return out
}

// Bytes unpacks to a byte-per-chip stream — the adapter back to the
// sample-level modem boundary.
func (w *ChipWords) Bytes() []byte {
	out := make([]byte, w.n)
	for i := range out {
		out[i] = byte(w.words[i/64] >> uint(63-i%64) & 1)
	}
	return out
}
