// Package bitutil provides low-level bit manipulation primitives used
// throughout the PPR stack: Hamming weight/distance over words and slices,
// nibble and bit (un)packing between byte payloads and symbol streams, the
// packed ChipWords chip-stream representation the channel simulator and
// receiver pipeline share, and a bit-granular reader/writer pair used by
// the PP-ARQ feedback codec, which must encode offsets and lengths in
// non-byte-aligned ⌈log₂ S⌉-bit fields.
package bitutil

import (
	"fmt"
	"math/bits"
)

// HammingDist32 returns the number of differing bits between a and b.
func HammingDist32(a, b uint32) int {
	return bits.OnesCount32(a ^ b)
}

// HammingDist64 returns the number of differing bits between a and b.
func HammingDist64(a, b uint64) int {
	return bits.OnesCount64(a ^ b)
}

// HammingDistBytes returns the number of differing bits between two
// equal-length byte slices. It panics if the lengths differ, because a
// distance between unequal-length words is undefined in this codebase.
func HammingDistBytes(a, b []byte) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("bitutil: HammingDistBytes length mismatch %d != %d", len(a), len(b)))
	}
	d := 0
	for i := range a {
		d += bits.OnesCount8(a[i] ^ b[i])
	}
	return d
}

// NibblesFromBytes expands data into its 4-bit symbols, low nibble first,
// matching the 802.15.4 convention that the least-significant symbol of each
// octet is transmitted first. Every byte yields exactly two symbols.
func NibblesFromBytes(data []byte) []byte {
	out := make([]byte, 0, len(data)*2)
	for _, b := range data {
		out = append(out, b&0x0f, b>>4)
	}
	return out
}

// BytesFromNibbles packs 4-bit symbols (low nibble first) back into bytes.
// It panics on odd-length input: callers always deal in whole octets.
func BytesFromNibbles(nibs []byte) []byte {
	if len(nibs)%2 != 0 {
		panic(fmt.Sprintf("bitutil: BytesFromNibbles odd symbol count %d", len(nibs)))
	}
	out := make([]byte, len(nibs)/2)
	for i := range out {
		out[i] = (nibs[2*i] & 0x0f) | (nibs[2*i+1] << 4)
	}
	return out
}

// Log2Ceil returns ⌈log₂ n⌉ for n ≥ 1; the number of bits needed to
// represent values in [0, n). Log2Ceil(1) == 0.
func Log2Ceil(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("bitutil: Log2Ceil of non-positive %d", n))
	}
	return bits.Len(uint(n - 1))
}

// Writer accumulates bits most-significant-first into a byte buffer. The
// zero value is ready to use.
type Writer struct {
	buf  []byte
	nbit int // total bits written
}

// WriteBits appends the low width bits of v, most-significant bit first.
// width must be in [0, 64].
func (w *Writer) WriteBits(v uint64, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitutil: WriteBits width %d out of range", width))
	}
	for i := width - 1; i >= 0; i-- {
		bit := byte(v>>uint(i)) & 1
		if w.nbit%8 == 0 {
			w.buf = append(w.buf, 0)
		}
		if bit != 0 {
			w.buf[len(w.buf)-1] |= 1 << uint(7-w.nbit%8)
		}
		w.nbit++
	}
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b bool) {
	if b {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
}

// WriteBytes appends p on a byte-aligned or unaligned boundary.
func (w *Writer) WriteBytes(p []byte) {
	for _, b := range p {
		w.WriteBits(uint64(b), 8)
	}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the accumulated buffer; the final byte is zero-padded.
func (w *Writer) Bytes() []byte { return w.buf }

// WriteGamma appends v ≥ 1 in Elias-gamma form: ⌊log₂ v⌋ zero bits, then
// v's ⌊log₂ v⌋+1 significant bits. Gamma coding gives the "log λ"-sized
// length fields of the PP-ARQ cost model (Eq. 4) a concrete, self-
// delimiting wire format: small values cost few bits, and no external
// width needs to be agreed on.
func (w *Writer) WriteGamma(v uint64) {
	if v < 1 {
		panic(fmt.Sprintf("bitutil: WriteGamma(%d); gamma codes start at 1", v))
	}
	n := bits.Len64(v) // number of significant bits
	w.WriteBits(0, n-1)
	w.WriteBits(v, n)
}

// Reader consumes bits most-significant-first from a byte buffer.
type Reader struct {
	buf  []byte
	pos  int // bit cursor
	fail bool
}

// NewReader returns a Reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBits consumes width bits and returns them in the low bits of the
// result. On underflow it returns 0 and marks the reader failed; callers
// check Err once after a parse rather than at every call.
func (r *Reader) ReadBits(width int) uint64 {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitutil: ReadBits width %d out of range", width))
	}
	if r.pos+width > len(r.buf)*8 {
		r.fail = true
		return 0
	}
	var v uint64
	for i := 0; i < width; i++ {
		byteIdx := r.pos / 8
		bit := (r.buf[byteIdx] >> uint(7-r.pos%8)) & 1
		v = v<<1 | uint64(bit)
		r.pos++
	}
	return v
}

// ReadBit consumes one bit.
func (r *Reader) ReadBit() bool { return r.ReadBits(1) == 1 }

// ReadBytes consumes n bytes (8n bits).
func (r *Reader) ReadBytes(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.ReadBits(8))
	}
	if r.fail {
		return nil
	}
	return out
}

// ReadGamma consumes one Elias-gamma value. On malformed input or
// underflow it returns 0 (an impossible gamma value) and marks the reader
// failed.
func (r *Reader) ReadGamma() uint64 {
	zeros := 0
	for {
		if r.pos >= len(r.buf)*8 {
			r.fail = true
			return 0
		}
		if r.ReadBit() {
			break
		}
		zeros++
		if zeros > 63 {
			r.fail = true
			return 0
		}
	}
	// The leading 1 bit already consumed is the value's top bit.
	v := uint64(1)
	for i := 0; i < zeros; i++ {
		v = v<<1 | uint64(r.ReadBits(1))
	}
	if r.fail {
		return 0
	}
	return v
}

// GammaLen returns the encoded length of v in bits: 2⌊log₂ v⌋ + 1.
func GammaLen(v uint64) int {
	if v < 1 {
		panic(fmt.Sprintf("bitutil: GammaLen(%d)", v))
	}
	return 2*bits.Len64(v) - 1
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return len(r.buf)*8 - r.pos }

// Err reports whether any read ran past the end of the buffer.
func (r *Reader) Err() error {
	if r.fail {
		return fmt.Errorf("bitutil: read past end of %d-byte buffer", len(r.buf))
	}
	return nil
}
