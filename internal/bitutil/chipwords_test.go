package bitutil

import (
	"bytes"
	"testing"
)

// refWord32 is the byte-slice reference for Word32: chip off at bit 31.
func refWord32(chips []byte, off int) uint32 {
	var v uint32
	for i := 0; i < 32; i++ {
		if chips[off+i] != 0 {
			v |= 1 << uint(31-i)
		}
	}
	return v
}

func patternBytes(n int, seed uint64) []byte {
	out := make([]byte, n)
	x := seed
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407
		out[i] = byte(x >> 62 & 1)
	}
	return out
}

func TestChipWordsPackUnpackRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		chips := patternBytes(n, uint64(n)+1)
		w := PackChipBytes(chips)
		if w.Len() != n {
			t.Fatalf("n=%d: Len %d", n, w.Len())
		}
		if got := w.Bytes(); !bytes.Equal(got, chips) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
		for i := 0; i < n; i++ {
			if w.Bit(i) != chips[i] {
				t.Fatalf("n=%d: Bit(%d) = %d want %d", n, i, w.Bit(i), chips[i])
			}
		}
	}
}

func TestChipWordsWord32MatchesReference(t *testing.T) {
	chips := patternBytes(300, 42)
	w := PackChipBytes(chips)
	for off := 0; off+32 <= len(chips); off++ {
		if got, want := w.Word32(off), refWord32(chips, off); got != want {
			t.Fatalf("Word32(%d) = %08x want %08x", off, got, want)
		}
	}
}

func TestPackWord32sMatchesBytePath(t *testing.T) {
	cws := []uint32{0xdeadbeef, 0x12345678, 0xffffffff, 0, 0x80000001}
	for count := 0; count <= len(cws); count++ {
		var chips []byte
		for _, cw := range cws[:count] {
			for i := 0; i < 32; i++ {
				chips = append(chips, byte(cw>>uint(31-i)&1))
			}
		}
		a, b := PackWord32s(cws[:count]), PackChipBytes(chips)
		if a.Len() != b.Len() || !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("count=%d: codeword packing diverges from byte packing", count)
		}
	}
}

func TestChipWordsCopyFromMatchesByteCopy(t *testing.T) {
	src := patternBytes(500, 7)
	sw := PackChipBytes(src)
	for _, tc := range []struct{ dstOff, srcOff, n int }{
		{0, 0, 500}, {0, 0, 0}, {1, 0, 64}, {0, 1, 64}, {63, 65, 130},
		{100, 3, 397}, {64, 64, 64}, {37, 41, 1}, {200, 199, 64},
	} {
		dst := patternBytes(600, 99)
		dw := PackChipBytes(dst)
		dw.CopyFrom(tc.dstOff, sw, tc.srcOff, tc.n)
		copy(dst[tc.dstOff:tc.dstOff+tc.n], src[tc.srcOff:tc.srcOff+tc.n])
		if !bytes.Equal(dw.Bytes(), dst) {
			t.Fatalf("CopyFrom(%d, src, %d, %d) diverges from byte copy", tc.dstOff, tc.srcOff, tc.n)
		}
	}
}

func TestChipWordsFillUniformBoundsAndSource(t *testing.T) {
	w := NewChipWords(300)
	draws := 0
	w.FillUniform(65, 230, func() uint64 { draws++; return ^uint64(0) })
	// ⌈165/64⌉ = 3 draws: 64 chips per word regardless of alignment.
	if draws != 3 {
		t.Errorf("FillUniform drew %d words for 165 chips, want 3", draws)
	}
	for i := 0; i < 300; i++ {
		want := byte(0)
		if i >= 65 && i < 230 {
			want = 1
		}
		if w.Bit(i) != want {
			t.Fatalf("chip %d = %d after fill of [65, 230)", i, w.Bit(i))
		}
	}
}

func TestChipWordsXORWithAndOnesCount(t *testing.T) {
	a := patternBytes(321, 1)
	b := patternBytes(321, 2)
	wa, wb := PackChipBytes(a), PackChipBytes(b)
	wa.XORWith(wb)
	want := 0
	for i := range a {
		if a[i] != b[i] {
			want++
		}
	}
	if got := wa.OnesCount(); got != want {
		t.Errorf("XOR+OnesCount = %d, byte Hamming distance %d", got, want)
	}
}

func TestChipWordsXORWithMasksSharedViewTail(t *testing.T) {
	// An aligned Slice shares its last word with the parent; XORWith on the
	// view must not flip parent chips past the view's end, and must ignore
	// 1-chips past the operand's length sharing the operand's last word.
	parent := PackChipBytes(patternBytes(128, 13))
	before := parent.Bytes()
	view := parent.Slice(0, 100)
	other := PackChipBytes(bytes.Repeat([]byte{1}, 128))
	view.XORWith(other.Slice(0, 100))
	after := parent.Bytes()
	for i := 0; i < 100; i++ {
		if after[i] != before[i]^1 {
			t.Fatalf("chip %d not flipped", i)
		}
	}
	for i := 100; i < 128; i++ {
		if after[i] != before[i] {
			t.Fatalf("parent chip %d past the view corrupted by XORWith", i)
		}
	}
}

func TestChipWordsSliceViewsAndCopies(t *testing.T) {
	chips := patternBytes(400, 5)
	w := PackChipBytes(chips)
	for _, tc := range []struct{ lo, hi int }{{0, 400}, {64, 400}, {64, 100}, {1, 399}, {65, 129}, {128, 128}} {
		s := w.Slice(tc.lo, tc.hi)
		if s.Len() != tc.hi-tc.lo {
			t.Fatalf("Slice(%d, %d).Len() = %d", tc.lo, tc.hi, s.Len())
		}
		if !bytes.Equal(s.Bytes(), chips[tc.lo:tc.hi]) {
			t.Fatalf("Slice(%d, %d) content mismatch", tc.lo, tc.hi)
		}
	}
	// Aligned slices share storage with the parent: a write through the
	// parent is visible in the view (the fading path relies on this being
	// zero-copy).
	view := w.Slice(64, 128)
	w.FlipBit(64)
	if view.Bit(0) != 1-chips[64] {
		t.Error("aligned Slice did not share the parent's words")
	}
}

func TestChipWordsSetBitAndFlipBit(t *testing.T) {
	w := NewChipWords(130)
	w.SetBit(0, 1)
	w.SetBit(129, 1)
	w.SetBit(64, 1)
	if w.OnesCount() != 3 {
		t.Fatalf("OnesCount %d after 3 sets", w.OnesCount())
	}
	w.FlipBit(64)
	w.SetBit(0, 0)
	if w.OnesCount() != 1 || w.Bit(129) != 1 {
		t.Fatalf("set/flip bookkeeping wrong: count %d", w.OnesCount())
	}
}

func TestChipWordsClone(t *testing.T) {
	w := PackChipBytes(patternBytes(100, 3))
	c := w.Clone()
	c.FlipBit(50)
	if w.Bit(50) == c.Bit(50) {
		t.Error("Clone shares storage with original")
	}
}

func TestChipWordsPanics(t *testing.T) {
	w := NewChipWords(64)
	for name, fn := range map[string]func(){
		"negative-len": func() { NewChipWords(-1) },
		"bit-oob":      func() { w.Bit(64) },
		"word32-oob":   func() { w.Word32(33) },
		"copy-oob":     func() { w.CopyFrom(0, NewChipWords(10), 0, 11) },
		"fill-oob":     func() { w.FillUniform(0, 65, func() uint64 { return 0 }) },
		"xor-mismatch": func() { w.XORWith(NewChipWords(63)) },
		"slice-oob":    func() { w.Slice(10, 65) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// FuzzChipWords drives the packed type against the byte-slice reference:
// pack/unpack, Word32 at every offset, an arbitrary CopyFrom, an XOR apply
// and OnesCount must all agree with the naive byte implementation.
func FuzzChipWords(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1}, []byte{0, 1}, uint16(0), uint16(0), uint16(2))
	f.Add(make([]byte, 200), make([]byte, 130), uint16(40), uint16(3), uint16(100))
	f.Fuzz(func(t *testing.T, rawDst, rawSrc []byte, dstOff, srcOff, cnt uint16) {
		// Normalize to 0/1 chips.
		dst := make([]byte, len(rawDst))
		for i, v := range rawDst {
			dst[i] = v & 1
		}
		src := make([]byte, len(rawSrc))
		for i, v := range rawSrc {
			src[i] = v & 1
		}
		dw, sw := PackChipBytes(dst), PackChipBytes(src)
		if !bytes.Equal(dw.Bytes(), dst) {
			t.Fatal("pack/unpack mismatch")
		}
		for off := 0; off+32 <= len(dst); off++ {
			if dw.Word32(off) != refWord32(dst, off) {
				t.Fatalf("Word32(%d) mismatch", off)
			}
		}
		// Bounded CopyFrom against the byte copy.
		d, s, n := int(dstOff), int(srcOff), int(cnt)
		if d <= len(dst) && s <= len(src) {
			if max := len(dst) - d; n > max {
				n = max
			}
			if max := len(src) - s; n > max {
				n = max
			}
			dw.CopyFrom(d, sw, s, n)
			copy(dst[d:d+n], src[s:s+n])
			if !bytes.Equal(dw.Bytes(), dst) {
				t.Fatalf("CopyFrom(%d, src, %d, %d) mismatch", d, s, n)
			}
		}
		// XOR apply + popcount against the byte reference.
		if len(dst) == len(src) {
			dw.XORWith(sw)
			want := 0
			for i := range dst {
				dst[i] ^= src[i]
				want += int(dst[i])
			}
			if !bytes.Equal(dw.Bytes(), dst) || dw.OnesCount() != want {
				t.Fatal("XORWith/OnesCount mismatch")
			}
		}
	})
}
