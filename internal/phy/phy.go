// Package phy implements the 802.15.4 DSSS physical layer of the PPR
// receiver: spreading of data symbols onto 32-chip codewords, despreading of
// received chips back to symbols, and — the heart of SoftPHY (Sec. 3) — the
// three hint sources the paper proposes:
//
//   - Hamming distance from hard-decision decoding (Sec. 3.2, the
//     implemented and evaluated variant),
//   - the correlation metric of Eq. 1 from soft-decision decoding,
//   - the matched-filter output in the absence of channel coding.
//
// Every decoder honours the monotonicity contract of Sec. 3.3: for two hint
// values h1 < h2, the PHY is more confident in the symbol carrying h1. The
// absolute scale of a hint is decoder-specific and deliberately NOT part of
// the contract; higher layers must calibrate thresholds per PHY
// (internal/core/softphy does exactly that).
package phy

import (
	"fmt"
	"slices"

	"ppr/internal/bitutil"
	"ppr/internal/chipseq"
)

// Observation is what the demodulator hands the decoder for one codeword
// interval: the 32 hard-decided chips, and optionally the 32 soft chip
// samples (present only when the channel was simulated at sample level).
type Observation struct {
	// Hard holds the hard-decided chips, chip i at bit (31-i).
	Hard uint32
	// Soft holds per-chip soft values (nominally ±1 plus noise); nil when
	// the channel model produced hard decisions only.
	Soft []float64
}

// Decision is one decoded symbol with its SoftPHY hint attached. The hint
// travels with the symbol all the way up to PP-ARQ (Fig. 1).
type Decision struct {
	// Symbol is the decoded 4-bit data symbol.
	Symbol byte
	// Hint is the decoder's confidence annotation; lower means more
	// confident, per the monotonicity contract.
	Hint float64
}

// Decoder despreads one codeword observation into a Decision.
type Decoder interface {
	// Decode maps a codeword observation to a symbol decision with hint.
	Decode(obs Observation) Decision
	// Name identifies the decoder in experiment output.
	Name() string
}

// HardDecoder implements hard-decision decoding: the demodulator decides
// each chip independently, and the decoder maps the received 32-chip word to
// the nearest codeword. The hint is the Hamming distance of that mapping
// (Sec. 3.2). This is the variant the paper implements and evaluates.
type HardDecoder struct{}

// Decode despreads by minimum Hamming distance.
func (HardDecoder) Decode(obs Observation) Decision {
	sym, dist := chipseq.NearestHard(obs.Hard)
	return Decision{Symbol: sym, Hint: float64(dist)}
}

// Name implements Decoder.
func (HardDecoder) Name() string { return "hdd" }

// SoftDecoder implements soft-decision decoding over per-chip samples using
// the correlation metric of Eq. 1. The hint is (B − C_best)/2, which for
// clean ±1 samples coincides numerically with the Hamming distance, easing
// comparison, while remaining continuous under noise.
type SoftDecoder struct{}

// Decode despreads by maximum correlation. It falls back to hard-decision
// decoding when no soft samples are available.
func (SoftDecoder) Decode(obs Observation) Decision {
	if obs.Soft == nil {
		return HardDecoder{}.Decode(obs)
	}
	sym, best, _ := chipseq.NearestSoft(obs.Soft)
	return Decision{Symbol: sym, Hint: (chipseq.ChipsPerSymbol - best) / 2}
}

// Name implements Decoder.
func (SoftDecoder) Name() string { return "sdd" }

// MatchedFilterDecoder models the third hint option of Sec. 3.1: the raw
// output of a filter matched to the decided-upon codeword. The hint is the
// negated, offset filter output B − C_best (un-normalised, so its scale
// differs from the other decoders — intentionally, to exercise the
// threshold-adaptation machinery of Sec. 3.3).
type MatchedFilterDecoder struct{}

// Decode despreads by maximum correlation and reports the inverted raw
// filter peak as the hint.
func (MatchedFilterDecoder) Decode(obs Observation) Decision {
	if obs.Soft == nil {
		d := HardDecoder{}.Decode(obs)
		// Map distance to the matched-filter scale: C = B − 2d.
		return Decision{Symbol: d.Symbol, Hint: 2 * d.Hint}
	}
	sym, best, _ := chipseq.NearestSoft(obs.Soft)
	return Decision{Symbol: sym, Hint: chipseq.ChipsPerSymbol - best}
}

// Name implements Decoder.
func (MatchedFilterDecoder) Name() string { return "mf" }

// SpreadSymbols maps 4-bit data symbols to their 32-chip codewords.
func SpreadSymbols(syms []byte) []uint32 {
	out := make([]uint32, len(syms))
	for i, s := range syms {
		out[i] = chipseq.Codeword(s)
	}
	return out
}

// SpreadBytes maps payload bytes to codewords, two per byte, low nibble
// first (the 802.15.4 transmission order).
func SpreadBytes(data []byte) []uint32 {
	return SpreadSymbols(bitutil.NibblesFromBytes(data))
}

// ChipsOf flattens codewords into a chip slice (one byte per chip, 0 or 1),
// the representation of the sample-level modem boundary. The simulator
// proper works over packed words (bitutil.PackWord32s / DecodeStream).
func ChipsOf(cws []uint32) []byte {
	out := make([]byte, 0, len(cws)*chipseq.ChipsPerSymbol)
	for _, cw := range cws {
		for i := 0; i < chipseq.ChipsPerSymbol; i++ {
			out = append(out, byte(chipseq.ChipAt(cw, i)))
		}
	}
	return out
}

// PackChips converts a chip slice (0/1 bytes) starting at off back into a
// codeword-aligned uint32 — the adapter from demodulated byte chips. It
// panics if fewer than 32 chips remain: framers must bound their own scans.
func PackChips(chips []byte, off int) uint32 {
	if off < 0 || off+chipseq.ChipsPerSymbol > len(chips) {
		panic(fmt.Sprintf("phy: PackChips offset %d out of range for %d chips", off, len(chips)))
	}
	var cw uint32
	for i := 0; i < chipseq.ChipsPerSymbol; i++ {
		if chips[off+i] != 0 {
			cw |= 1 << uint(31-i)
		}
	}
	return cw
}

// DecodeStream despreads a symbol-aligned packed chip stream with the given
// decoder, returning one Decision per whole codeword. Trailing chips short
// of a full codeword are ignored. Codewords are extracted directly from the
// packed words — no byte-per-chip intermediate exists on this path.
func DecodeStream(dec Decoder, chips *bitutil.ChipWords) []Decision {
	return AppendDecodeStream(nil, dec, chips)
}

// AppendDecodeStream is DecodeStream appending into dst — the
// allocation-free form for callers despreading many streams in a loop,
// who pass a reused buffer re-sliced to zero length.
func AppendDecodeStream(dst []Decision, dec Decoder, chips *bitutil.ChipWords) []Decision {
	n := chips.Len() / chipseq.ChipsPerSymbol
	base := len(dst)
	dst = slices.Grow(dst, n)[:base+n]
	for i := 0; i < n; i++ {
		dst[base+i] = dec.Decode(Observation{Hard: chips.Word32(i * chipseq.ChipsPerSymbol)})
	}
	return dst
}

// SymbolsOf extracts just the decoded symbols from decisions.
func SymbolsOf(ds []Decision) []byte {
	out := make([]byte, len(ds))
	for i, d := range ds {
		out[i] = d.Symbol
	}
	return out
}

// HintsOf extracts just the hints from decisions.
func HintsOf(ds []Decision) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Hint
	}
	return out
}
