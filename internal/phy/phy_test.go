package phy

import (
	"bytes"
	"testing"
	"testing/quick"

	"ppr/internal/bitutil"
	"ppr/internal/chipseq"
	"ppr/internal/stats"
)

func TestSpreadDecodeRoundTripClean(t *testing.T) {
	f := func(data []byte) bool {
		cws := SpreadBytes(data)
		chips := bitutil.PackWord32s(cws)
		ds := DecodeStream(HardDecoder{}, chips)
		got := bitutil.BytesFromNibbles(SymbolsOf(ds))
		if !bytes.Equal(got, data) {
			return false
		}
		for _, d := range ds {
			if d.Hint != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpreadBytesTwoCodewordsPerByte(t *testing.T) {
	if n := len(SpreadBytes(make([]byte, 10))); n != 20 {
		t.Errorf("got %d codewords, want 20", n)
	}
}

func TestChipsOfLength(t *testing.T) {
	cws := SpreadBytes([]byte{0xff})
	chips := ChipsOf(cws)
	if len(chips) != 64 {
		t.Errorf("got %d chips, want 64", len(chips))
	}
}

func TestPackChipsInverse(t *testing.T) {
	for s := byte(0); s < chipseq.NumSymbols; s++ {
		chips := ChipsOf([]uint32{chipseq.Codeword(s)})
		if got := PackChips(chips, 0); got != chipseq.Codeword(s) {
			t.Errorf("symbol %d: pack/unpack mismatch", s)
		}
	}
}

func TestPackChipsPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PackChips(make([]byte, 31), 0)
}

func TestHardDecoderHintIsDistance(t *testing.T) {
	rng := stats.NewRNG(1)
	for trial := 0; trial < 200; trial++ {
		s := byte(rng.Intn(16))
		cw := chipseq.Codeword(s)
		nflips := rng.Intn(4)
		seen := map[int]bool{}
		for len(seen) < nflips {
			seen[rng.Intn(32)] = true
		}
		for i := range seen {
			cw ^= 1 << uint(31-i)
		}
		d := HardDecoder{}.Decode(Observation{Hard: cw})
		if d.Symbol != s {
			t.Fatalf("decoded %d want %d", d.Symbol, s)
		}
		if int(d.Hint) != nflips {
			t.Fatalf("hint %v want %d", d.Hint, nflips)
		}
	}
}

func TestSoftDecoderMatchesHammingOnSignSamples(t *testing.T) {
	// For ±1 samples the SDD hint (B − C)/2 equals the HDD Hamming hint.
	rng := stats.NewRNG(2)
	for trial := 0; trial < 200; trial++ {
		s := byte(rng.Intn(16))
		soft := make([]float64, 32)
		var hard uint32
		copy(soft, chipseq.Signed(s)[:])
		for k := 0; k < rng.Intn(4); k++ {
			soft[rng.Intn(32)] *= -1
		}
		for i, v := range soft {
			if v > 0 {
				hard |= 1 << uint(31-i)
			}
		}
		hd := HardDecoder{}.Decode(Observation{Hard: hard})
		sd := SoftDecoder{}.Decode(Observation{Hard: hard, Soft: soft})
		if hd.Symbol != sd.Symbol {
			t.Fatalf("trial %d: decisions disagree (%d vs %d)", trial, hd.Symbol, sd.Symbol)
		}
		if hd.Hint != sd.Hint {
			t.Fatalf("trial %d: hints disagree (%v vs %v)", trial, hd.Hint, sd.Hint)
		}
	}
}

func TestSoftDecoderFallsBackWithoutSamples(t *testing.T) {
	cw := chipseq.Codeword(5)
	d := SoftDecoder{}.Decode(Observation{Hard: cw})
	if d.Symbol != 5 || d.Hint != 0 {
		t.Errorf("fallback decode got %+v", d)
	}
}

func TestMatchedFilterScale(t *testing.T) {
	// MF hint = 2× the HDD hint on equivalent observations — a different
	// scale, same ordering (the monotonicity contract is about order only).
	cw := chipseq.Codeword(3) ^ 0x80000001 // 2 chip errors
	hd := HardDecoder{}.Decode(Observation{Hard: cw})
	mf := MatchedFilterDecoder{}.Decode(Observation{Hard: cw})
	if mf.Symbol != hd.Symbol {
		t.Fatalf("symbols disagree")
	}
	if mf.Hint != 2*hd.Hint {
		t.Errorf("mf hint %v, want %v", mf.Hint, 2*hd.Hint)
	}
}

func TestMonotonicityContractUnderNoise(t *testing.T) {
	// Statistically: symbols decoded from noisier chips must carry larger
	// (less confident) hints on average, for every decoder.
	rng := stats.NewRNG(3)
	decoders := []Decoder{HardDecoder{}, SoftDecoder{}, MatchedFilterDecoder{}}
	for _, dec := range decoders {
		meanHint := func(pChip float64) float64 {
			var sum float64
			const n = 400
			for i := 0; i < n; i++ {
				s := byte(rng.Intn(16))
				soft := make([]float64, 32)
				var hard uint32
				for j, v := range chipseq.Signed(s) {
					val := v
					if rng.Bool(pChip) {
						val = -val
					}
					soft[j] = val
					if val > 0 {
						hard |= 1 << uint(31-j)
					}
				}
				sum += dec.Decode(Observation{Hard: hard, Soft: soft}).Hint
			}
			return sum / n
		}
		clean, noisy := meanHint(0.01), meanHint(0.30)
		if clean >= noisy {
			t.Errorf("%s: mean hint clean %v >= noisy %v; monotonicity violated",
				dec.Name(), clean, noisy)
		}
	}
}

func TestDecodeStreamIgnoresTrailingChips(t *testing.T) {
	chips := ChipsOf(SpreadBytes([]byte{0xab}))
	chips = append(chips, 1, 0, 1) // ragged tail
	ds := DecodeStream(HardDecoder{}, bitutil.PackChipBytes(chips))
	if len(ds) != 2 {
		t.Errorf("got %d decisions, want 2", len(ds))
	}
}

func TestHintsSymbolsExtractors(t *testing.T) {
	ds := []Decision{{1, 0.5}, {2, 3}}
	if got := SymbolsOf(ds); got[0] != 1 || got[1] != 2 {
		t.Error("SymbolsOf")
	}
	if got := HintsOf(ds); got[0] != 0.5 || got[1] != 3 {
		t.Error("HintsOf")
	}
}

func TestDecoderNames(t *testing.T) {
	if (HardDecoder{}).Name() != "hdd" || (SoftDecoder{}).Name() != "sdd" || (MatchedFilterDecoder{}).Name() != "mf" {
		t.Error("unexpected decoder names")
	}
}

func TestRandomChipsDecodeToLargeHints(t *testing.T) {
	// Uniform random chips (what a collision with a much stronger packet
	// looks like, relative to the weaker packet's codewords) must mostly
	// produce hints well above the correct-decode regime — this is the
	// separation Fig. 3 depends on.
	rng := stats.NewRNG(4)
	const n = 2000
	large := 0
	for i := 0; i < n; i++ {
		d := HardDecoder{}.Decode(Observation{Hard: uint32(rng.Uint64())})
		if d.Hint >= 6 {
			large++
		}
	}
	if frac := float64(large) / n; frac < 0.80 {
		t.Errorf("only %.2f of random codewords had hint >= 6", frac)
	}
}
