package sim

import (
	"reflect"
	"testing"

	"ppr/internal/phy"
	"ppr/internal/scenario"
	"ppr/internal/testbed"
)

// TestDeliverWorkerCountInvariant is the engine's determinism regression
// test: the trace must be bit-identical whether windows run on one
// goroutine or many, because each window's randomness is keyed on
// (seed, receiver, window origin), not on execution order.
func TestDeliverWorkerCountInvariant(t *testing.T) {
	cfg := smallCfg(13800, false, 31)
	txs := Schedule(cfg)
	vs := variants()

	ref := cfg
	ref.Workers = 1
	want := Deliver(ref, txs, vs)
	if len(want) == 0 {
		t.Fatal("no outcomes")
	}
	for _, workers := range []int{2, 4, 8} {
		par := cfg
		par.Workers = workers
		got := Deliver(par, txs, vs)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("outcomes differ between 1 and %d workers", workers)
		}
	}
}

func TestDeliverRepeatedRunsIdentical(t *testing.T) {
	cfg := smallCfg(6900, true, 37)
	txs := Schedule(cfg)
	a := Deliver(cfg, txs, variants())
	b := Deliver(cfg, txs, variants())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different traces")
	}
}

func TestCorrectMaskEdgeCases(t *testing.T) {
	truth := []byte{1, 2, 3, 4}

	t.Run("missing prefix longer than payload", func(t *testing.T) {
		o := &Outcome{
			TruthSyms:     truth,
			MissingPrefix: 10,
			Decisions:     []phy.Decision{{Symbol: 1}, {Symbol: 2}},
		}
		mask := o.CorrectMask()
		if len(mask) != len(truth) {
			t.Fatalf("mask length %d, want %d", len(mask), len(truth))
		}
		for i, ok := range mask {
			if ok {
				t.Errorf("symbol %d marked correct with out-of-range prefix", i)
			}
		}
	})

	t.Run("truncated decisions", func(t *testing.T) {
		// Postamble rollback: only the last two symbols decoded.
		o := &Outcome{
			TruthSyms:     truth,
			MissingPrefix: 2,
			Decisions:     []phy.Decision{{Symbol: 3}, {Symbol: 9}},
		}
		want := []bool{false, false, true, false}
		if got := o.CorrectMask(); !reflect.DeepEqual(got, want) {
			t.Errorf("mask %v, want %v", got, want)
		}
	})

	t.Run("decisions overrun payload", func(t *testing.T) {
		// More decisions than truth symbols (e.g. corrupt length field):
		// the overrun must be ignored, not panic.
		o := &Outcome{
			TruthSyms:     truth,
			MissingPrefix: 3,
			Decisions:     []phy.Decision{{Symbol: 4}, {Symbol: 5}, {Symbol: 6}},
		}
		want := []bool{false, false, false, true}
		if got := o.CorrectMask(); !reflect.DeepEqual(got, want) {
			t.Errorf("mask %v, want %v", got, want)
		}
	})

	t.Run("no decisions", func(t *testing.T) {
		o := &Outcome{TruthSyms: truth}
		for i, ok := range o.CorrectMask() {
			if ok {
				t.Errorf("symbol %d marked correct with no decisions", i)
			}
		}
	})

	t.Run("empty truth", func(t *testing.T) {
		o := &Outcome{Decisions: []phy.Decision{{Symbol: 1}}}
		if mask := o.CorrectMask(); len(mask) != 0 {
			t.Errorf("mask %v for empty truth", mask)
		}
	})
}

func TestScheduleScenarioBursty(t *testing.T) {
	cfg := smallCfg(6900, false, 41)
	cfg.Scenario = scenario.BurstyTraffic()
	txs := Schedule(cfg)
	if len(txs) == 0 {
		t.Fatal("bursty scenario scheduled nothing")
	}
	// Long-run load matches Poisson within Poisson slack (same bound as
	// TestScheduleProducesTraffic).
	if len(txs) < 100 || len(txs) > 600 {
		t.Errorf("bursty scheduled %d transmissions, expected ~300", len(txs))
	}
	// Burstiness: the variance of per-interval counts must exceed the
	// Poisson workload's (index of dispersion > 1 relative to Poisson).
	dispersion := func(txs []*Transmission) float64 {
		const bins = 30
		endChip := int64(3 * 2_000_000)
		counts := make([]float64, bins)
		for _, tx := range txs {
			b := int(tx.StartChip * bins / endChip)
			if b >= 0 && b < bins {
				counts[b]++
			}
		}
		var mean float64
		for _, c := range counts {
			mean += c
		}
		mean /= bins
		var v float64
		for _, c := range counts {
			v += (c - mean) * (c - mean)
		}
		return v / bins / mean
	}
	poisson := Schedule(smallCfg(6900, false, 41))
	db, dp := dispersion(txs), dispersion(poisson)
	if db <= dp {
		t.Errorf("bursty dispersion %.2f not above poisson %.2f", db, dp)
	}
	t.Logf("index of dispersion: bursty %.2f, poisson %.2f (%d vs %d txs)",
		db, dp, len(txs), len(poisson))
}

func TestScheduleScenarioPeriodicJammer(t *testing.T) {
	cfg := smallCfg(3500, true, 43)
	cfg.Scenario = scenario.PeriodicJammer()
	txs := Schedule(cfg)
	jams := 0
	for _, tx := range txs {
		if tx.Src == 0 {
			jams++
			if len(tx.Frame.Payload) != scenario.DefaultJammer().BurstBytes {
				t.Fatalf("jam burst payload %d bytes, want %d",
					len(tx.Frame.Payload), scenario.DefaultJammer().BurstBytes)
			}
		}
	}
	// 3 s at one burst per 50k chips (25 ms) ≈ 120 bursts.
	if jams < 80 || jams > 160 {
		t.Errorf("%d jam bursts, expected ~120", jams)
	}
	// The jammer degrades the rest of the network: delivery under jamming
	// must be below the clean run's on at least one audible link.
	clean := smallCfg(3500, true, 43)
	rate := func(c Config) float64 {
		_, outs := Run(c, variants())
		acq, tot := 0, 0
		for _, o := range outs {
			if o.Variant != 1 || o.Src == 0 {
				continue
			}
			tot++
			if o.Acquired && o.CRCOK {
				acq++
			}
		}
		if tot == 0 {
			return 0
		}
		return float64(acq) / float64(tot)
	}
	rj, rc := rate(cfg), rate(clean)
	if rj >= rc {
		t.Errorf("jammed delivery %.3f not below clean %.3f", rj, rc)
	}
	t.Logf("whole-packet delivery: clean %.3f, jammed %.3f over %d jam bursts", rc, rj, jams)
}

func TestScheduleScenarioReactiveJammer(t *testing.T) {
	// High load so the channel is often busy: the reactive jammer must fire,
	// but only a fraction of its sensing polls find energy.
	cfg := smallCfg(13800, false, 47)
	cfg.Scenario = scenario.ReactiveJammer()
	txs := Schedule(cfg)
	jams := 0
	for _, tx := range txs {
		if tx.Src == 0 {
			jams++
		}
	}
	polls := int(3 * 2_000_000 / scenario.DefaultReactiveJammer().PeriodChips)
	if jams == 0 {
		t.Fatal("reactive jammer never fired on a busy channel")
	}
	if jams >= polls {
		t.Errorf("reactive jammer fired on all %d polls; sensing is not gating", polls)
	}

	// On a silent network (other senders produce no traffic) the reactive
	// jammer must stay quiet. Offered load can't be zero, so use a scenario
	// where only the jammer exists and the others idle via a tiny load.
	quiet := smallCfg(13800, false, 47)
	quiet.OfferedBps = 0.0001 // effectively silent
	quiet.Scenario = scenario.ReactiveJammer()
	qtxs := Schedule(quiet)
	qjams := 0
	for _, tx := range qtxs {
		if tx.Src == 0 {
			qjams++
		}
	}
	if qjams > jams/4 {
		t.Errorf("reactive jammer fired %d times on a near-silent channel (busy channel: %d)", qjams, jams)
	}
	t.Logf("reactive jammer: %d/%d polls fired busy, %d fired near-silent", jams, polls, qjams)
}

// TestReactiveJammerDoesNotSenseItself wires a reactive jammer whose poll
// period is shorter than its own burst air time — the self-sensing trap: if
// the jammer heard its own transmission, one trigger would make it fire
// forever.
func TestReactiveJammerDoesNotSenseItself(t *testing.T) {
	fast := scenario.Jammer{PeriodChips: 3000, BurstBytes: 100, Reactive: true}
	cfg := smallCfg(13800, false, 59)
	cfg.OfferedBps = 0.0001 // near-silent victims
	cfg.Scenario = scenario.WithJammer(scenario.Poisson(), fast)
	txs := Schedule(cfg)
	jams := 0
	for _, tx := range txs {
		if tx.Src == 0 {
			jams++
		}
	}
	// On a near-silent channel the jammer must stay (nearly) quiet even
	// though its own bursts outlast its poll period.
	polls := int(3 * 2_000_000 / fast.PeriodChips)
	if jams > polls/10 {
		t.Errorf("fast reactive jammer fired %d of %d polls on a silent channel (self-sustaining)", jams, polls)
	}
}

func TestScheduleZeroValueBurstyTerminates(t *testing.T) {
	// The zero-value Bursty model must fall back to sane defaults instead
	// of emitting a degenerate arrival stream that never reaches the end of
	// the run.
	cfg := smallCfg(6900, false, 61)
	cfg.Scenario = zeroBursty{}
	txs := Schedule(cfg)
	if len(txs) == 0 {
		t.Fatal("zero-value bursty scheduled nothing")
	}
}

type zeroBursty struct{}

func (zeroBursty) Name() string { return "zero-bursty" }
func (zeroBursty) Node(i, n int) scenario.Node {
	return scenario.Node{Model: scenario.Bursty{}}
}

func TestScenarioTracesDiffer(t *testing.T) {
	base := smallCfg(6900, false, 53)
	jam := base
	jam.Scenario = scenario.PeriodicJammer()
	a := Schedule(base)
	b := Schedule(jam)
	if len(a) == len(b) {
		// Lengths could coincide; compare sources to be sure.
		same := true
		for i := range a {
			if a[i].Src != b[i].Src || a[i].StartChip != b[i].StartChip {
				same = false
				break
			}
		}
		if same {
			t.Error("jammer scenario produced the identical schedule")
		}
	}
}

func TestConfigWorkersResolution(t *testing.T) {
	if (Config{}).workers() < 1 {
		t.Error("default workers < 1")
	}
	if (Config{Workers: 3}).workers() != 3 {
		t.Error("explicit workers not honoured")
	}
	if name := (Config{}).scenarioOrDefault().Name(); name != "poisson" {
		t.Errorf("default scenario %q", name)
	}
	_ = testbed.NumSenders
}
