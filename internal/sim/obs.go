package sim

import (
	"sync/atomic"

	"ppr/internal/obs"
)

// deliverMetrics carries the per-delivery metric handles. Resolved once at
// DeliverContext entry; every field is nil when metrics are disabled, so the
// per-window cost collapses to a nil check.
type deliverMetrics struct {
	// windows counts simulated (receiver, transmission) windows.
	windows *obs.Counter
	// outcomes counts produced Outcome records (windows × variants, roughly).
	outcomes *obs.Counter
	// busyPeak tracks the high-water mark of concurrently busy workers.
	busyPeak *obs.Gauge
}

func newDeliverMetrics() deliverMetrics {
	r := obs.Default()
	return deliverMetrics{
		windows:  r.Counter("sim.windows_simulated"),
		outcomes: r.Counter("sim.outcomes"),
		busyPeak: r.Gauge("sim.deliver_workers_busy_peak"),
	}
}

// workerObs is the per-worker view: pre-resolved shard cells, so the hot
// loop does plain atomic adds with no sharding arithmetic.
type workerObs struct {
	windows  *obs.CounterCell
	outcomes *obs.CounterCell
	peak     *obs.GaugeCell
	busy     *atomic.Int64
}

func (m deliverMetrics) worker(shard int, busy *atomic.Int64) workerObs {
	w := workerObs{busy: busy}
	if m.windows != nil {
		w.windows = m.windows.Cell(shard)
	}
	if m.outcomes != nil {
		w.outcomes = m.outcomes.Cell(shard)
	}
	if m.busyPeak != nil {
		w.peak = m.busyPeak.Cell(shard)
	}
	return w
}

// begin marks one window's work started on this worker; n is the number of
// outcomes it produced, recorded by done.
func (w workerObs) begin() {
	if w.peak != nil && w.busy != nil {
		w.peak.Max(w.busy.Add(1))
	}
}

func (w workerObs) done(n int) {
	if w.busy != nil && w.peak != nil {
		w.busy.Add(-1)
	}
	w.windows.Inc()
	w.outcomes.Add(int64(n))
}
