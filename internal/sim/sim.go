// Package sim is the event-driven simulation engine that stands in for the
// paper's physical testbed runs: it drives the 23 senders' traffic sources
// and carrier-sense decisions to produce a schedule of transmissions, then
// synthesizes each receiver's chip stream — collisions, capture and noise
// included — and runs the full receiver pipeline over it, matching every
// reception back to ground truth.
//
// The output is a trace of per-(transmission, receiver) outcomes carrying
// decoded symbols, SoftPHY hints and true symbols, which the experiment
// code post-processes under each scheme (packet CRC, fragmented CRC, PPR) —
// the same trace-driven methodology the paper uses ("each node sends a
// stream of bits, which are formed into traces and post-processed",
// Sec. 7.2).
//
// Delivery is embarrassingly parallel across (receiver, window) work units:
// the chip streams different receivers observe are independent, and within
// one receiver the synthesis windows are separated by silent gaps, so
// Deliver fans the units out over a bounded worker pool. Each window draws
// its randomness from an RNG derived deterministically from (seed, receiver,
// window origin) — see stats.RNG.Derive — so results are bit-identical
// regardless of worker count or scheduling order.
//
// Traffic generation is pluggable: Config.Scenario assigns each sender a
// scenario.TrafficModel (Poisson by default, matching the paper; bursty
// on/off sources and periodic/reactive jammers ship in internal/scenario).
package sim

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ppr/internal/bitutil"
	"ppr/internal/frame"
	"ppr/internal/jam"
	"ppr/internal/mac"
	"ppr/internal/phy"
	"ppr/internal/radio"
	"ppr/internal/scenario"
	"ppr/internal/stats"
	"ppr/internal/testbed"
)

// Config describes one simulation run.
type Config struct {
	// Testbed is the deployment to run on.
	Testbed *testbed.Testbed
	// OfferedBps is the per-node offered load in bits/second.
	OfferedBps float64
	// PacketBytes is the link-layer payload size per packet.
	PacketBytes int
	// DurationSec is the simulated airtime.
	DurationSec float64
	// CarrierSense toggles the senders' CSMA discipline.
	CarrierSense bool
	// Seed fixes traffic, backoff and channel noise.
	Seed uint64
	// Scenario assigns each sender a traffic model; nil means the paper's
	// all-Poisson workload (scenario.Poisson()).
	Scenario scenario.Scenario
	// Workers bounds Deliver's parallelism; 0 means runtime.NumCPU(), 1
	// forces the sequential path. Results do not depend on Workers.
	Workers int
}

// workers resolves the configured worker count.
func (cfg Config) workers() int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.NumCPU()
}

// scenarioOrDefault resolves the configured scenario.
func (cfg Config) scenarioOrDefault() scenario.Scenario {
	if cfg.Scenario != nil {
		return cfg.Scenario
	}
	return scenario.Poisson()
}

// Transmission is one packet on the air.
type Transmission struct {
	// ID indexes the transmission in schedule order.
	ID int
	// Src is the sender index.
	Src int
	// StartChip is the transmission's first chip time.
	StartChip int64
	// Frame is the link-layer frame sent.
	Frame frame.Frame
	// TruthSyms is the payload's true symbol sequence.
	TruthSyms []byte

	// chipsOnce guards chips: the packed on-air stream is spread once and
	// shared read-only by every (receiver, window) unit that hears the
	// transmission, however many workers process them.
	chipsOnce sync.Once
	chips     *bitutil.ChipWords
}

// ChipStream returns the transmission's packed on-air chip stream, spread
// on first use and cached (a transmission is typically audible at several
// receivers).
func (tx *Transmission) ChipStream() *bitutil.ChipWords {
	tx.chipsOnce.Do(func() { tx.chips = tx.Frame.AirChips() })
	return tx.chips
}

// AirChips returns the transmission's on-air length in chips.
func (tx *Transmission) AirChips() int { return frame.AirChips(len(tx.Frame.Payload)) }

// EndChip returns one past the transmission's last chip time.
func (tx *Transmission) EndChip() int64 { return tx.StartChip + int64(tx.AirChips()) }

// PayloadStartChip returns the absolute chip time of the first payload
// symbol, the key receptions are matched on.
func (tx *Transmission) PayloadStartChip() int64 {
	return tx.StartChip + int64((frame.SyncBytes+frame.HeaderBytes)*frame.ChipsPerByte)
}

// Schedule runs the scenario's traffic sources and the MAC to produce the
// transmission timeline. Payloads are deterministic pseudo-random test
// patterns (the paper's "known test pattern") so receivers can score
// correctness.
//
// Nodes with a jam.Strategy (scenario.Node.Jam) are adversaries on the
// shared chip-time line: their emitters are polled lazily, interleaved in
// time order with the static arrival streams, and each poll observes the
// channel as the jammer would sense it — total received power and the
// transmissions currently on the air — before deciding whether to burst.
// With no strategy nodes the loop degenerates to the legacy iteration, and
// the stock periodic/reactive strategies replay the legacy scenario.Jammer
// timelines bit-for-bit (parity-tested).
func Schedule(cfg Config) []*Transmission {
	rng := stats.NewRNG(cfg.Seed)
	trafficRng := rng.Split()
	csmaRng := rng.Split()
	payloadRng := rng.Split()

	tb := cfg.Testbed
	endChip := mac.ChipsPerSecond(cfg.DurationSec)
	sc := cfg.scenarioOrDefault()

	nodes := make([]scenario.Node, testbed.NumSenders)
	for i := range nodes {
		nodes[i] = sc.Node(i, testbed.NumSenders)
	}

	pktBytes := make([]int, testbed.NumSenders)
	for i, node := range nodes {
		pktBytes[i] = cfg.PacketBytes
		if node.PacketBytes > 0 {
			pktBytes[i] = node.PacketBytes
		}
	}

	csma := mac.DefaultCSMA(radio.DBmToMW(tb.Params.CSThresholdDBm))
	csma.Enabled = cfg.CarrierSense
	noiseMW := radio.DBmToMW(tb.Params.NoiseFloorDBm)
	csThresholdMW := radio.DBmToMW(tb.Params.CSThresholdDBm)

	type arrival struct {
		chip int64
		src  int
	}
	// jammer is one strategy-driven adversary's lazy poll cursor.
	type jammer struct {
		src  int
		em   jam.Emitter
		next int64
	}
	var arrivals []arrival
	var jammers []*jammer
	for i := 0; i < testbed.NumSenders; i++ {
		// Every sender consumes one trafficRng.Split() in index order,
		// strategy adversaries included, so adding a jammer never perturbs
		// the other senders' arrival streams.
		child := trafficRng.Split()
		if st := nodes[i].Jam; st != nil {
			em := st.Emitter(jam.Params{
				DurationChips: endChip,
				BurstBytes:    pktBytes[i],
				ThresholdMW:   csThresholdMW,
				NoiseMW:       noiseMW,
				NumChannels:   1,
			}, child)
			jammers = append(jammers, &jammer{src: i, em: em, next: em.NextPoll()})
			continue
		}
		src := nodes[i].Model.Arrivals(scenario.Params{
			OfferedBps:    cfg.OfferedBps,
			PacketBytes:   pktBytes[i],
			DurationChips: endChip,
		}, child)
		for {
			t := src.Next()
			if t >= endChip {
				break
			}
			arrivals = append(arrivals, arrival{chip: t, src: i})
		}
	}
	sort.Slice(arrivals, func(a, b int) bool { return arrivals[a].chip < arrivals[b].chip })

	var txs []*Transmission
	seqs := make([]uint16, testbed.NumSenders)

	// busyAt is the received power at sender `at` from transmissions
	// already committed, optionally excluding its own (a node cannot sense
	// the channel through its own ongoing transmission).
	busyAt := func(t int64, at, excludeSrc int) float64 {
		total := noiseMW
		for k := len(txs) - 1; k >= 0; k-- {
			tx := txs[k]
			if tx.EndChip() <= t {
				// txs is appended in arrival order, so starts are only
				// approximately sorted (CSMA deferrals shift them).
				// Stop scanning once starts are so old that no frame —
				// even maximally deferred — could still be active.
				if t-tx.StartChip > 4*int64(frame.MaxAirChips) {
					break
				}
				continue
			}
			if tx.StartChip <= t && tx.Src != excludeSrc {
				total += radio.DBmToMW(tb.SenderGainDBm[tx.Src][at])
			}
		}
		return total
	}

	// emit commits one transmission: payload bytes come from the shared
	// payloadRng in commit order, which is what makes the schedule
	// deterministic and the parity tests bit-exact.
	emit := func(src int, start int64, bytes int) {
		payload := make([]byte, bytes)
		for bi := range payload {
			payload[bi] = byte(payloadRng.Intn(256))
		}
		// Destination: the receiver with the strongest link from this
		// sender (the routing layer would pick it).
		bestJ := tb.BestReceiver(src)
		f := frame.New(uint16(testbed.NumSenders+bestJ), uint16(src), seqs[src], payload)
		seqs[src]++
		txs = append(txs, &Transmission{
			ID:        len(txs),
			Src:       src,
			StartChip: start,
			Frame:     f,
			TruthSyms: phy.SymbolsOf(phy.DecodeStream(phy.HardDecoder{}, bitutil.PackWord32s(phy.SpreadBytes(payload)))),
		})
	}

	// Observation scratch, reused across polls (the emitters must copy
	// anything they keep — see jam.Observation).
	obsBusy := make([]float64, 1)
	var obsTxs []jam.ActiveTx
	audFloorDBm := tb.Params.NoiseFloorDBm - interferenceFloorDB

	ai := 0
	for {
		// Earliest pending strategy poll; ties go to the lower node index.
		ji := -1
		for k, j := range jammers {
			if j.next >= endChip {
				continue
			}
			if ji < 0 || j.next < jammers[ji].next ||
				(j.next == jammers[ji].next && j.src < jammers[ji].src) {
				ji = k
			}
		}
		hasStatic := ai < len(arrivals)
		if !hasStatic && ji < 0 {
			break
		}
		// On chip ties the strategy poll goes first: legacy collected the
		// jammer's (sender 0) arrivals ahead of the victims' in the sort
		// input, which is where equal-chip arrivals ended up.
		if hasStatic && (ji < 0 || arrivals[ai].chip < jammers[ji].next) {
			a := arrivals[ai]
			ai++
			node := nodes[a.src]
			// Carrier sense for CSMA keeps the seed behaviour: all
			// committed transmissions count (a deferring sender is not yet
			// on the air).
			busy := func(t int64) float64 { return busyAt(t, a.src, -1) }
			var start int64
			switch {
			case node.Reactive:
				// Sense-then-jam: fire only when the channel is audibly
				// busy at the sensing instant; otherwise this arrival is
				// just a poll. The jammer's own bursts are excluded from
				// the sense, or a poll period shorter than the burst air
				// time would make it self-sustaining on a silent channel.
				if busyAt(a.chip, a.src, a.src) < csThresholdMW {
					continue
				}
				start = a.chip
			case node.IgnoreCarrierSense:
				start = a.chip
			default:
				start = csma.Decide(a.chip, busy, csmaRng)
			}
			emit(a.src, start, pktBytes[a.src])
			continue
		}

		// Strategy poll: build the jammer's view of the channel at the
		// poll instant and let the emitter decide.
		j := jammers[ji]
		t := j.next
		obsBusy[0] = busyAt(t, j.src, j.src)
		obsTxs = obsTxs[:0]
		for k := len(txs) - 1; k >= 0; k-- {
			tx := txs[k]
			if tx.EndChip() <= t {
				if t-tx.StartChip > 4*int64(frame.MaxAirChips) {
					break
				}
				continue
			}
			if tx.StartChip <= t && tx.Src != j.src &&
				tb.SenderGainDBm[tx.Src][j.src] >= audFloorDBm {
				obsTxs = append(obsTxs, jam.ActiveTx{Src: tx.Src, Start: tx.StartChip, End: tx.EndChip()})
			}
		}
		b := j.em.Poll(jam.Observation{Chip: t, Busy: obsBusy, Txs: obsTxs})
		j.next = j.em.NextPoll()
		if b.Fire {
			bytes := pktBytes[j.src]
			if b.Bytes > 0 {
				bytes = b.Bytes
			}
			emit(j.src, t, bytes)
		}
	}
	// CSMA deferrals can reorder starts slightly; restore time order.
	sort.Slice(txs, func(a, b int) bool { return txs[a].StartChip < txs[b].StartChip })
	for i, tx := range txs {
		tx.ID = i
	}
	return txs
}

// Outcome is the receiver pipeline's result for one (transmission,
// receiver, variant) triple.
type Outcome struct {
	// TxID identifies the transmission.
	TxID int
	// Src is the sender index; Receiver the receiver index.
	Src, Receiver int
	// Variant indexes the receiver variant (see Deliver).
	Variant int
	// Acquired reports whether any sync (preamble or postamble) locked and
	// produced a header-verified reception for this transmission.
	Acquired bool
	// Kind is the winning sync kind when acquired.
	Kind frame.SyncKind
	// CRCOK reports the whole-packet CRC.
	CRCOK bool
	// MissingPrefix counts undecoded leading symbols (postamble rollback).
	MissingPrefix int
	// Decisions holds the decoded payload symbols + hints (after the
	// missing prefix).
	Decisions []phy.Decision
	// TruthSyms is the transmitted payload's true symbols.
	TruthSyms []byte
}

// CorrectMask returns per-symbol correctness over the whole payload
// (missing prefix symbols are incorrect by definition).
func (o *Outcome) CorrectMask() []bool {
	mask := make([]bool, len(o.TruthSyms))
	for i, d := range o.Decisions {
		idx := o.MissingPrefix + i
		if idx < len(mask) {
			mask[idx] = d.Symbol == o.TruthSyms[idx]
		}
	}
	return mask
}

// Variant is one receiver configuration to evaluate over the same chips.
type Variant struct {
	// Name labels the variant in experiment output.
	Name string
	// UsePostamble enables postamble decoding.
	UsePostamble bool
	// Decoder despreads and produces hints; defaults to HardDecoder.
	Decoder phy.Decoder
}

// interferenceFloorDB: transmissions weaker than this below the noise floor
// are dropped from synthesis (negligible interference), bounding window
// sizes.
const interferenceFloorDB = 10

// ScoringMarginDB: a (sender, receiver) pair counts as a link — and its
// transmissions produce Outcomes — only when the received power clears the
// noise floor by this margin. Weaker transmissions still contribute
// interference, but they are not links anyone would route over, and the
// paper's per-link statistics cover only the senders each sink "could
// hear" (Sec. 7.2.2).
const ScoringMarginDB = 3

// guardChips separates windows: a gap this long with no audible signal
// closes the current window.
const guardChips = 2048

// audibleTx is one transmission as heard at a particular receiver.
type audibleTx struct {
	tx      *Transmission
	powerMW float64
}

// window is one independent delivery work unit: a burst of transmissions
// audible at one receiver, isolated from the rest of the run by silent
// guard gaps on both sides.
type window struct {
	receiver int
	// origin and length bound the synthesis window in absolute chips.
	origin int64
	length int
	// members are the audible transmissions inside the window.
	members []audibleTx
}

// buildWindows clusters each receiver's audible transmissions into windows
// separated by silent gaps. This is the cheap, sequential part of delivery;
// the expensive synthesis + decode over each window fans out to workers.
func buildWindows(cfg Config, txs []*Transmission) []window {
	tb := cfg.Testbed
	floorMW := radio.DBmToMW(tb.Params.NoiseFloorDBm - interferenceFloorDB)
	var windows []window
	for j := 0; j < testbed.NumReceivers; j++ {
		// Audible set at this receiver, with per-tx received power.
		var aud []audibleTx
		for _, tx := range txs {
			if p := tb.RxPowerMW(tx.Src, j); p >= floorMW {
				aud = append(aud, audibleTx{tx, p})
			}
		}
		for wStart := 0; wStart < len(aud); {
			wEnd := wStart + 1
			maxEnd := aud[wStart].tx.EndChip()
			for wEnd < len(aud) && aud[wEnd].tx.StartChip < maxEnd+guardChips {
				if e := aud[wEnd].tx.EndChip(); e > maxEnd {
					maxEnd = e
				}
				wEnd++
			}
			// Window bounds with margin.
			origin := aud[wStart].tx.StartChip - 64
			windows = append(windows, window{
				receiver: j,
				origin:   origin,
				length:   int(maxEnd-origin) + 64,
				members:  aud[wStart:wEnd],
			})
			wStart = wEnd
		}
	}
	return windows
}

// deliverState is one worker's reusable receiver machinery: a configured
// Receiver per variant plus scratch slices, all recycled across the
// windows the worker processes. frame.Receiver owns arena buffers that
// back the Receptions it returns, so reusing receivers makes the whole
// per-window decode allocation-free — the price is that deliverWindow must
// copy the Decisions it keeps into each Outcome before the next window
// overwrites the arena.
type deliverState struct {
	rxs      []*frame.Receiver
	syncs    []frame.Sync
	overlaps []radio.Overlap
}

// newDeliverState builds one worker's receivers from the variant list.
func newDeliverState(variants []Variant) *deliverState {
	st := &deliverState{rxs: make([]*frame.Receiver, len(variants))}
	for vi, v := range variants {
		dec := v.Decoder
		if dec == nil {
			dec = phy.HardDecoder{}
		}
		rx := frame.NewReceiver(dec)
		rx.UsePostamble = v.UsePostamble
		st.rxs[vi] = rx
	}
	return st
}

// deliverWindow synthesizes one window's chip stream and runs every variant's
// receiver over it. rng must be dedicated to this window; st must be
// dedicated to the calling worker.
func deliverWindow(cfg Config, w window, st *deliverState, rng *stats.RNG) []Outcome {
	tb := cfg.Testbed
	noiseMW := radio.DBmToMW(tb.Params.NoiseFloorDBm)

	st.overlaps = st.overlaps[:0]
	for _, m := range w.members {
		st.overlaps = append(st.overlaps, radio.Overlap{
			Start:   int(m.tx.StartChip - w.origin),
			Chips:   m.tx.ChipStream(),
			PowerMW: m.powerMW,
		})
	}
	// The synthesizer's packed output is the receiver's buffer directly —
	// no repack between channel and sync scan. The scan is variant-
	// independent: do it once per window.
	buf := radio.SynthesizeFading(rng, w.length, st.overlaps, noiseMW, radio.DefaultCoherenceChips)
	st.syncs = frame.AppendSyncs(st.syncs[:0], buf, frame.DefaultSyncMaxDist)

	var outcomes []Outcome
	for vi, rx := range st.rxs {
		recs := rx.ReceiveSynced(buf, st.syncs)
		for _, m := range w.members {
			tx := m.tx
			if tb.GainDBm[tx.Src][w.receiver] < tb.Params.NoiseFloorDBm+ScoringMarginDB {
				continue // interference-only pair, not a link
			}
			o := Outcome{
				TxID: tx.ID, Src: tx.Src, Receiver: w.receiver, Variant: vi,
				TruthSyms: tx.TruthSyms,
			}
			// Match the reception to this transmission by payload start chip
			// and header identity; among duplicates keep the one that
			// recovered the most. The reception count per window is tiny, so
			// a linear scan beats building a map.
			var best *frame.Reception
			for ri := range recs {
				rec := &recs[ri]
				if !rec.HeaderOK || w.origin+int64(rec.PayloadStartChip) != tx.PayloadStartChip() {
					continue
				}
				if best == nil || len(rec.Decisions) > len(best.Decisions) {
					best = rec
				}
			}
			if best != nil && best.Hdr.Src == tx.Frame.Hdr.Src && best.Hdr.Seq == tx.Frame.Hdr.Seq {
				o.Acquired = true
				o.Kind = best.Kind
				o.CRCOK = best.CRCOK
				o.MissingPrefix = best.MissingPrefix
				// The reception's Decisions live in rx's arena and die at its
				// next ReceiveSynced; the Outcome outlives that, so copy.
				o.Decisions = append([]phy.Decision(nil), best.Decisions...)
			}
			outcomes = append(outcomes, o)
		}
	}
	return outcomes
}

// Deliver synthesizes every receiver's chip stream window by window and
// runs each variant's receiver over it, returning outcomes for every
// (audible transmission, receiver, variant). A transmission audible at a
// receiver with no matching reception yields an Outcome with
// Acquired=false — those count against delivery rates exactly like the
// paper's lost packets.
//
// Windows execute on cfg.Workers goroutines; each window's randomness is
// derived from (cfg.Seed, receiver, window origin), so the returned trace is
// identical for every worker count. Outcomes are ordered by (receiver,
// transmission, variant).
func Deliver(cfg Config, txs []*Transmission, variants []Variant) []Outcome {
	outs, _ := DeliverContext(context.Background(), cfg, txs, variants)
	return outs
}

// DeliverContext is Deliver with cancellation: ctx is checked between
// windows (the unit of work), so a cancel or deadline returns promptly —
// within one window's synthesis — with ctx.Err() and no goroutine left
// behind. The partial trace is discarded; a nil error means the trace is
// complete and identical to Deliver's.
func DeliverContext(ctx context.Context, cfg Config, txs []*Transmission, variants []Variant) ([]Outcome, error) {
	windows := buildWindows(cfg, txs)
	base := stats.NewRNG(cfg.Seed ^ 0xdeadbeef)
	windowRNG := func(w window) *stats.RNG {
		return base.Derive(uint64(w.receiver), uint64(w.origin))
	}
	done := ctx.Done()
	cancelled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}

	var outcomes []Outcome
	m := newDeliverMetrics()
	var busy atomic.Int64
	workers := cfg.workers()
	if workers > len(windows) {
		workers = len(windows)
	}
	if workers <= 1 {
		st := newDeliverState(variants)
		wo := m.worker(0, &busy)
		for _, w := range windows {
			if cancelled() {
				return nil, ctx.Err()
			}
			wo.begin()
			batch := deliverWindow(cfg, w, st, windowRNG(w))
			wo.done(len(batch))
			outcomes = append(outcomes, batch...)
		}
	} else {
		jobs := make(chan window)
		results := make(chan []Outcome, workers)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			wo := m.worker(i, &busy)
			go func() {
				defer wg.Done()
				st := newDeliverState(variants)
				for w := range jobs {
					wo.begin()
					batch := deliverWindow(cfg, w, st, windowRNG(w))
					wo.done(len(batch))
					results <- batch
				}
			}()
		}
		go func() {
			// Stop feeding on cancellation; in-flight windows finish, then
			// the pool drains and the collector unblocks.
		feed:
			for _, w := range windows {
				select {
				case jobs <- w:
				case <-done:
					break feed
				}
			}
			close(jobs)
			wg.Wait()
			close(results)
		}()
		// Collector: stream window batches into one trace as they complete.
		for batch := range results {
			outcomes = append(outcomes, batch...)
		}
		if cancelled() {
			return nil, ctx.Err()
		}
	}
	// Completion order is nondeterministic under parallelism; (receiver,
	// transmission, variant) is unique per outcome, so sorting restores a
	// canonical order.
	sort.Slice(outcomes, func(a, b int) bool {
		oa, ob := &outcomes[a], &outcomes[b]
		if oa.Receiver != ob.Receiver {
			return oa.Receiver < ob.Receiver
		}
		if oa.TxID != ob.TxID {
			return oa.TxID < ob.TxID
		}
		return oa.Variant < ob.Variant
	})
	return outcomes, nil
}

// Run is the convenience wrapper: schedule then deliver.
func Run(cfg Config, variants []Variant) ([]*Transmission, []Outcome) {
	txs := Schedule(cfg)
	return txs, Deliver(cfg, txs, variants)
}

// RunContext is Run with cancellation threaded through delivery; see
// DeliverContext for the guarantees.
func RunContext(ctx context.Context, cfg Config, variants []Variant) ([]*Transmission, []Outcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	txs := Schedule(cfg)
	outs, err := DeliverContext(ctx, cfg, txs, variants)
	if err != nil {
		return nil, nil, err
	}
	return txs, outs, nil
}
