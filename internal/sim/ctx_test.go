package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"ppr/internal/radio"
	"ppr/internal/testbed"
)

func ctxTestConfig(workers int) Config {
	return Config{
		Testbed:      testbed.New(radio.DefaultParams(), 1),
		OfferedBps:   6900,
		PacketBytes:  150,
		DurationSec:  1.5,
		CarrierSense: false,
		Seed:         1,
		Workers:      workers,
	}
}

// TestRunContextMatchesRun: an uncancelled context changes nothing — the
// trace is bit-identical to Run's, sequential and parallel.
func TestRunContextMatchesRun(t *testing.T) {
	variants := []Variant{{Name: "pa", UsePostamble: true}}
	for _, workers := range []int{1, 4} {
		cfg := ctxTestConfig(workers)
		txs1, outs1 := Run(cfg, variants)
		txs2, outs2, err := RunContext(context.Background(), cfg, variants)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(txs1, txs2) || !reflect.DeepEqual(outs1, outs2) {
			t.Fatalf("workers=%d: RunContext trace diverges from Run", workers)
		}
	}
}

// TestDeliverContextCancelled: a cancelled context aborts delivery with
// ctx.Err() on both the sequential and parallel paths, leaving no worker
// goroutine behind (the race job would flag one touching test state).
func TestDeliverContextCancelled(t *testing.T) {
	variants := []Variant{{Name: "pa", UsePostamble: true}}
	for _, workers := range []int{1, 4} {
		cfg := ctxTestConfig(workers)
		txs := Schedule(cfg)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		outs, err := DeliverContext(ctx, cfg, txs, variants)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if outs != nil {
			t.Errorf("workers=%d: partial trace returned on cancellation", workers)
		}
	}
}
