package sim

import (
	"testing"

	"ppr/internal/frame"
	"ppr/internal/radio"
	"ppr/internal/stats"
	"ppr/internal/testbed"
)

func smallCfg(offered float64, cs bool, seed uint64) Config {
	return Config{
		Testbed:      testbed.New(radio.DefaultParams(), 7),
		OfferedBps:   offered,
		PacketBytes:  200, // small packets keep the test fast
		DurationSec:  3,
		CarrierSense: cs,
		Seed:         seed,
	}
}

func TestScheduleProducesTraffic(t *testing.T) {
	cfg := smallCfg(6900, false, 1)
	txs := Schedule(cfg)
	if len(txs) == 0 {
		t.Fatal("no transmissions scheduled")
	}
	// Offered load 6.9 Kbit/s/node × 23 nodes over 3 s at 200-byte packets:
	// ~ 6900*23*3/1600 ≈ 300 packets. Allow wide Poisson slack.
	if len(txs) < 150 || len(txs) > 500 {
		t.Errorf("scheduled %d transmissions, expected ~300", len(txs))
	}
	prev := int64(-1)
	for _, tx := range txs {
		if tx.StartChip < prev {
			t.Fatal("transmissions not time-ordered")
		}
		prev = tx.StartChip
		if len(tx.TruthSyms) != 400 {
			t.Fatalf("truth symbols %d, want 400", len(tx.TruthSyms))
		}
	}
}

func TestScheduleDeterministic(t *testing.T) {
	a := Schedule(smallCfg(3500, true, 9))
	b := Schedule(smallCfg(3500, true, 9))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].StartChip != b[i].StartChip || a[i].Src != b[i].Src {
			t.Fatal("schedules differ under same seed")
		}
	}
}

func TestCarrierSenseReducesOverlap(t *testing.T) {
	// Count chip-overlap between transmission pairs with CS on vs off at a
	// load high enough to matter.
	overlap := func(cs bool) int64 {
		txs := Schedule(smallCfg(13800, cs, 11))
		var total int64
		for i := 0; i < len(txs); i++ {
			for k := i + 1; k < len(txs); k++ {
				if txs[k].StartChip >= txs[i].EndChip() {
					break
				}
				end := txs[i].EndChip()
				if txs[k].EndChip() < end {
					end = txs[k].EndChip()
				}
				total += end - txs[k].StartChip
			}
		}
		return total
	}
	on, off := overlap(true), overlap(false)
	if on >= off {
		t.Errorf("carrier sense did not reduce overlap: on=%d off=%d", on, off)
	}
	t.Logf("overlap chips: CS on %d, CS off %d", on, off)
}

func variants() []Variant {
	return []Variant{
		{Name: "no-postamble", UsePostamble: false},
		{Name: "postamble", UsePostamble: true},
	}
}

func TestDeliverCleanSingleLink(t *testing.T) {
	// One sender very close to one receiver, low load: everything should be
	// acquired and decode perfectly.
	cfg := smallCfg(3500, true, 13)
	txs, outs := Run(cfg, variants())
	if len(outs) == 0 {
		t.Fatal("no outcomes")
	}
	// Find strong-link outcomes (SNR > 20 dB) and verify they decode.
	tb := cfg.Testbed
	strongOK, strongTotal := 0, 0
	for _, o := range outs {
		if o.Variant != 1 {
			continue
		}
		snr := tb.GainDBm[o.Src][o.Receiver] - tb.Params.NoiseFloorDBm
		if snr < 25 {
			continue
		}
		strongTotal++
		if o.Acquired && o.CRCOK {
			strongOK++
		}
	}
	if strongTotal == 0 {
		t.Skip("no strong links in this deployment seed")
	}
	frac := float64(strongOK) / float64(strongTotal)
	if frac < 0.85 {
		t.Errorf("strong links delivered only %.2f at moderate load with CS", frac)
	}
	_ = txs
}

func TestDeliverPostambleNeverWorse(t *testing.T) {
	cfg := smallCfg(13800, false, 17)
	_, outs := Run(cfg, variants())
	acq := map[int]map[int]int{0: {}, 1: {}} // variant → txid*8+receiver → acquired
	for _, o := range outs {
		if o.Acquired {
			acq[o.Variant][o.TxID*8+o.Receiver] = 1
		}
	}
	// Postamble acquisition is a superset in expectation; allow tiny losses
	// from dedup edge cases but require a clear net win at high load.
	gain := len(acq[1]) - len(acq[0])
	if gain <= 0 {
		t.Errorf("postamble decoding acquired %d vs %d without; expected more",
			len(acq[1]), len(acq[0]))
	}
	t.Logf("acquisitions: no-postamble %d, postamble %d", len(acq[0]), len(acq[1]))
}

func TestOutcomeCorrectnessAgainstTruth(t *testing.T) {
	cfg := smallCfg(6900, false, 19)
	_, outs := Run(cfg, variants())
	sawCorrect, sawIncorrect := false, false
	for _, o := range outs {
		if !o.Acquired {
			continue
		}
		mask := o.CorrectMask()
		if len(mask) != len(o.TruthSyms) {
			t.Fatal("mask length mismatch")
		}
		nCorrect := 0
		for _, ok := range mask {
			if ok {
				nCorrect++
			}
		}
		if nCorrect > 0 {
			sawCorrect = true
		}
		if nCorrect < len(mask) {
			sawIncorrect = true
		}
		// CRC-verified receptions must be entirely correct.
		if o.CRCOK && nCorrect != len(mask) {
			t.Fatal("CRC-verified packet has incorrect symbols")
		}
	}
	if !sawCorrect || !sawIncorrect {
		t.Errorf("trace lacks variety: correct=%v incorrect=%v", sawCorrect, sawIncorrect)
	}
}

func TestHintsSeparateCorrectFromIncorrect(t *testing.T) {
	// The Fig. 3 property, end to end through the simulator: correct
	// symbols carry low hints, incorrect ones high hints.
	cfg := smallCfg(13800, false, 23)
	_, outs := Run(cfg, variants())
	var correctHints, incorrectHints []float64
	for _, o := range outs {
		if !o.Acquired || o.Variant != 1 {
			continue
		}
		for i, d := range o.Decisions {
			idx := o.MissingPrefix + i
			if idx >= len(o.TruthSyms) {
				break
			}
			if d.Symbol == o.TruthSyms[idx] {
				correctHints = append(correctHints, d.Hint)
			} else {
				incorrectHints = append(incorrectHints, d.Hint)
			}
		}
	}
	if len(correctHints) < 100 || len(incorrectHints) < 20 {
		t.Skipf("insufficient data: %d correct, %d incorrect", len(correctHints), len(incorrectHints))
	}
	mc, mi := stats.Mean(correctHints), stats.Mean(incorrectHints)
	if mc >= mi {
		t.Errorf("mean hint of correct symbols %v not below incorrect %v", mc, mi)
	}
	// Sec. 3.2: 96% of correct codewords at distance ≤ 1; we require a
	// strong majority.
	low := 0
	for _, h := range correctHints {
		if h <= 1 {
			low++
		}
	}
	if frac := float64(low) / float64(len(correctHints)); frac < 0.80 {
		t.Errorf("only %.2f of correct symbols have hint <= 1", frac)
	}
	t.Logf("hints: correct mean %.2f (n=%d), incorrect mean %.2f (n=%d)",
		mc, len(correctHints), mi, len(incorrectHints))
}

func TestPostambleOutcomesHaveKind(t *testing.T) {
	cfg := smallCfg(13800, false, 29)
	_, outs := Run(cfg, variants())
	post := 0
	for _, o := range outs {
		if o.Acquired && o.Variant == 1 && o.Kind == frame.SyncPostamble {
			post++
		}
	}
	if post == 0 {
		t.Error("no postamble-acquired packets at high load without carrier sense")
	}
	t.Logf("postamble acquisitions: %d", post)
}
