package sim

import (
	"reflect"
	"testing"

	"ppr/internal/jam"
	"ppr/internal/radio"
	"ppr/internal/scenario"
	"ppr/internal/testbed"
)

// scheduleFingerprint reduces a schedule to its observable identity: who
// transmitted what, when.
type txFingerprint struct {
	Src     int
	Start   int64
	Dst     uint16
	Seq     uint16
	Payload string
}

func fingerprints(txs []*Transmission) []txFingerprint {
	out := make([]txFingerprint, len(txs))
	for i, tx := range txs {
		out[i] = txFingerprint{
			Src:     tx.Src,
			Start:   tx.StartChip,
			Dst:     tx.Frame.Hdr.Dst,
			Seq:     tx.Frame.Hdr.Seq,
			Payload: string(tx.Frame.Payload),
		}
	}
	return out
}

// TestJamStrategyParityWithLegacyJammers is the acceptance gate for the
// strategy re-expression: the registry-backed periodic and reactive
// jammer scenarios must reproduce the legacy scenario.Jammer schedules
// bit-for-bit — same instants, same sequence numbers, same payload bytes.
// Deliver depends only on (Testbed, Seed, txs), so schedule parity is
// trace parity.
func TestJamStrategyParityWithLegacyJammers(t *testing.T) {
	cases := []struct {
		name   string
		legacy scenario.Scenario
		strat  scenario.Scenario
	}{
		{"periodic", scenario.WithJammer(scenario.Poisson(), scenario.DefaultJammer()), scenario.PeriodicJammer()},
		{"reactive", scenario.WithJammer(scenario.Poisson(), scenario.DefaultReactiveJammer()), scenario.ReactiveJammer()},
	}
	for _, tc := range cases {
		for _, seed := range []uint64{1, 7, 42} {
			cfgL := smallCfg(6900, true, seed)
			cfgL.Scenario = tc.legacy
			cfgS := smallCfg(6900, true, seed)
			cfgS.Scenario = tc.strat
			fpL := fingerprints(Schedule(cfgL))
			fpS := fingerprints(Schedule(cfgS))
			if !reflect.DeepEqual(fpL, fpS) {
				n := len(fpL)
				if len(fpS) < n {
					n = len(fpS)
				}
				for i := 0; i < n; i++ {
					if fpL[i] != fpS[i] {
						t.Fatalf("%s seed %d: schedules diverge at tx %d:\nlegacy   %+v\nstrategy %+v",
							tc.name, seed, i, fpL[i], fpS[i])
					}
				}
				t.Fatalf("%s seed %d: schedule lengths differ: legacy %d, strategy %d",
					tc.name, seed, len(fpL), len(fpS))
			}
		}
	}
}

// TestJamScenariosDeterministicAndWorkerInvariant runs every registered
// jam strategy as a scenario through the full open-loop engine twice —
// once sequentially, once on 3 workers — and requires bit-identical
// schedules and delivery traces.
func TestJamScenariosDeterministicAndWorkerInvariant(t *testing.T) {
	variants := []Variant{{Name: "pre"}, {Name: "prepost", UsePostamble: true}}
	for _, name := range jam.Names() {
		sc, err := scenario.ByName("jam-" + name)
		if err != nil {
			t.Fatal(err)
		}
		run := func(workers int) ([]txFingerprint, []Outcome) {
			cfg := Config{
				Testbed:      testbed.New(radio.DefaultParams(), 7),
				OfferedBps:   12_000,
				PacketBytes:  200,
				DurationSec:  0.5,
				CarrierSense: true,
				Seed:         11,
				Scenario:     sc,
				Workers:      workers,
			}
			txs, outs := Run(cfg, variants)
			return fingerprints(txs), outs
		}
		fp1, out1 := run(1)
		fp3, out3 := run(3)
		if !reflect.DeepEqual(fp1, fp3) {
			t.Fatalf("jam-%s: schedule differs across worker counts", name)
		}
		if !reflect.DeepEqual(out1, out3) {
			t.Fatalf("jam-%s: delivery trace differs across worker counts", name)
		}
		if len(fp1) == 0 {
			t.Fatalf("jam-%s: empty schedule", name)
		}
	}
}

// TestJamStrategyActuallyJams sanity-checks that strategy-driven bursts
// appear in the schedule: sender 0 transmits under every jam scenario
// whose strategy can fire against the stock Poisson victims.
func TestJamStrategyActuallyJams(t *testing.T) {
	for _, name := range []string{"periodic", "sweep", "preamble", "duty"} {
		sc, err := scenario.ByName("jam-" + name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := smallCfg(12_000, true, 5)
		cfg.Scenario = sc
		jams := 0
		for _, tx := range Schedule(cfg) {
			if tx.Src == 0 {
				jams++
			}
		}
		if jams == 0 {
			t.Errorf("jam-%s: sender 0 never jammed", name)
		}
	}
}
