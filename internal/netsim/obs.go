package netsim

import (
	"fmt"

	"ppr/internal/core/pparq"
	"ppr/internal/obs"
)

// netsimMetrics holds the engine's registry handles, resolved once per run
// in RunContext. A nil *netsimMetrics means metrics are disabled; shards
// then carry zero-valued shardObs whose nil cells make every instrumented
// site a nil check (see TestMetricsDisabledAllocs).
//
// Metrics are purely observational: they never read into a simulation
// decision, so Results are bit-identical with the registry enabled,
// disabled, or mid-run.
type netsimMetrics struct {
	// Engine mechanics.
	events  *obs.Counter // netsim.events: events popped across all shards
	commits *obs.Counter // netsim.commits: transmissions committed to the timeline
	// CSMA outcomes at well-behaved transmitters.
	csBusy *obs.Counter // netsim.cs_busy: carrier sensed busy → backoff
	csIdle *obs.Counter // netsim.cs_idle: carrier sensed idle → transmit
	// collisions counts commits that overlapped an already-active audible
	// transmission in the same domain — the retrospective "did we step on
	// someone" view carrier sense exists to minimize.
	collisions *obs.Counter // netsim.collisions
	jams       *obs.Counter // netsim.jam_frames
	jamChips   *obs.Counter // netsim.jam_chips: jam airtime — the network's jam exposure
	// Delivery outcomes at receivers.
	rxOK   *obs.Counter // netsim.receptions: frames acquired (header verified)
	rxLost *obs.Counter // netsim.losses: frames synthesized but not acquired
	// Flow/link-layer accounting, mirrored from LinkStats per transfer.
	transfers   *obs.Counter // netsim.transfers
	failures    *obs.Counter // netsim.failures
	delivered   *obs.Counter // netsim.delivered_bytes (verified app bytes)
	dataAir     *obs.Counter // netsim.data_air_bytes
	retxAir     *obs.Counter // netsim.retx_air_bytes
	fbAir       *obs.Counter // netsim.feedback_air_bytes
	fullResends *obs.Counter // netsim.full_resends
	// Queue shape.
	queuePeak    *obs.Gauge     // netsim.queue_peak: event-queue high-water mark
	domainEvents *obs.Histogram // netsim.domain_events: events per domain shard
	// flowDelivered breaks delivered bytes out per flow, indexed by the
	// flow's global id.
	flowDelivered []*obs.Counter
}

// newNetsimMetrics resolves the run's handles, or nil when disabled.
func newNetsimMetrics(flows []flowSpec) *netsimMetrics {
	r := obs.Default()
	if r == nil {
		return nil
	}
	m := &netsimMetrics{
		events:       r.Counter("netsim.events"),
		commits:      r.Counter("netsim.commits"),
		csBusy:       r.Counter("netsim.cs_busy"),
		csIdle:       r.Counter("netsim.cs_idle"),
		collisions:   r.Counter("netsim.collisions"),
		jams:         r.Counter("netsim.jam_frames"),
		jamChips:     r.Counter("netsim.jam_chips"),
		rxOK:         r.Counter("netsim.receptions"),
		rxLost:       r.Counter("netsim.losses"),
		transfers:    r.Counter("netsim.transfers"),
		failures:     r.Counter("netsim.failures"),
		delivered:    r.Counter("netsim.delivered_bytes"),
		dataAir:      r.Counter("netsim.data_air_bytes"),
		retxAir:      r.Counter("netsim.retx_air_bytes"),
		fbAir:        r.Counter("netsim.feedback_air_bytes"),
		fullResends:  r.Counter("netsim.full_resends"),
		queuePeak:    r.Gauge("netsim.queue_peak"),
		domainEvents: r.Histogram("netsim.domain_events"),
	}
	m.flowDelivered = make([]*obs.Counter, len(flows))
	for _, f := range flows {
		m.flowDelivered[f.id] = r.Counter(
			fmt.Sprintf("netsim.flow.s%d_r%d.delivered_bytes", f.cfg.Sender, f.cfg.Receiver))
	}
	return m
}

// shardObs is one shard's pre-resolved view of the run metrics: one cell per
// counter, picked by shard index, so the event loop does plain atomic adds
// with no map lookups and no sharding arithmetic. The zero value (all nil
// cells) is the disabled instrumentation, costing a nil check per site.
type shardObs struct {
	events     *obs.CounterCell
	commits    *obs.CounterCell
	csBusy     *obs.CounterCell
	csIdle     *obs.CounterCell
	collisions *obs.CounterCell
	jams       *obs.CounterCell
	jamChips   *obs.CounterCell
	rxOK       *obs.CounterCell
	rxLost     *obs.CounterCell

	transfers   *obs.CounterCell
	failures    *obs.CounterCell
	delivered   *obs.CounterCell
	dataAir     *obs.CounterCell
	retxAir     *obs.CounterCell
	fbAir       *obs.CounterCell
	fullResends *obs.CounterCell

	queuePeak    *obs.GaugeCell
	domainEvents *obs.HistCell

	// Plain locals flushed at end of run (exactly one goroutine runs a
	// shard at any instant, so no atomics needed until the flush):
	localEvents int64
	maxQueue    int
}

// shardObsFor resolves a shard's cells; idx is the shard's creation index.
func shardObsFor(m *netsimMetrics, idx int) shardObs {
	if m == nil {
		return shardObs{}
	}
	return shardObs{
		events:       m.events.Cell(idx),
		commits:      m.commits.Cell(idx),
		csBusy:       m.csBusy.Cell(idx),
		csIdle:       m.csIdle.Cell(idx),
		collisions:   m.collisions.Cell(idx),
		jams:         m.jams.Cell(idx),
		jamChips:     m.jamChips.Cell(idx),
		rxOK:         m.rxOK.Cell(idx),
		rxLost:       m.rxLost.Cell(idx),
		transfers:    m.transfers.Cell(idx),
		failures:     m.failures.Cell(idx),
		delivered:    m.delivered.Cell(idx),
		dataAir:      m.dataAir.Cell(idx),
		retxAir:      m.retxAir.Cell(idx),
		fbAir:        m.fbAir.Cell(idx),
		fullResends:  m.fullResends.Cell(idx),
		queuePeak:    m.queuePeak.Cell(idx),
		domainEvents: m.domainEvents.Cell(idx),
	}
}

// recordTransfer flushes one completed transfer's LinkStats into the shard's
// cells. Called from the flow coroutine, which runs exclusively while its
// shard's event loop is blocked on it.
func (o *shardObs) recordTransfer(m *netsimMetrics, fl *flowProc, delivered int, st pparq.Stats, failed bool) {
	if o.transfers == nil {
		return
	}
	o.transfers.Inc()
	if failed {
		o.failures.Inc()
	}
	o.delivered.Add(int64(delivered))
	o.dataAir.Add(int64(st.DataAirBytes))
	o.retxAir.Add(int64(st.RetxAirBytes))
	o.fbAir.Add(int64(st.FeedbackAirBytes))
	o.fullResends.Add(int64(st.FullResends))
	if m != nil && fl.spec.id < len(m.flowDelivered) {
		// One writer per flow counter (its own coroutine), so the default
		// cell needs no sharding.
		m.flowDelivered[fl.spec.id].Add(int64(delivered))
	}
}

// finish flushes the shard-local aggregates at the end of the event loop.
func (o *shardObs) finish() {
	if o.queuePeak != nil {
		o.queuePeak.Max(int64(o.maxQueue))
	}
	o.domainEvents.Observe(o.localEvents)
}

// lane returns the node's domain timeline lane, or nil when tracing is off.
func (s *shard) lane(node int) *obs.TraceLane {
	if s.rs.lanes == nil {
		return nil
	}
	return s.rs.lanes[s.rs.domainOf[node]]
}
