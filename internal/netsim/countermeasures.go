// SoftPHY-driven jamming countermeasures: auxiliary link layers that wrap
// PP-ARQ and react to the distress its per-transfer accounting exposes —
// acquisition failures (the preamble was stomped), round inflation (feedback
// keeps dying), give-ups. Each takes one classical anti-jamming move and
// pays for it honestly on the shared channel:
//
//   - "PP-ARQ Hop": channel hopping. After sustained distress the flow
//     retunes both directions of its hop to the next orthogonal channel
//     (ChannelSetter), forcing an adaptive jammer to find it again.
//   - "PP-ARQ Fallback": rate fallback. Under distress the transfer unit
//     shrinks — the payload is split into progressively smaller frames, so a
//     jam burst costs a fraction of a packet instead of all of it — and
//     recovers when the channel clears.
//   - "PP-ARQ Chunk": feedback hardening. Under distress the sender switches
//     to capped-chunk feedback requests (pparq.Config.MaxChunks), trading a
//     few needlessly retransmitted symbols for short feedback frames that
//     fit between jam bursts.
//
// All three are registered as auxiliary layers: resolvable by name, absent
// from the paper's Fig. 17 trio. Activation counts surface on the metrics
// registry; like all metrics they are purely observational.
package netsim

import (
	"ppr/internal/core/pparq"
	"ppr/internal/obs"
)

func init() {
	RegisterAuxLinkLayer("PP-ARQ Hop", newHopARQ)
	RegisterAuxLinkLayer("PP-ARQ Fallback", newFallbackARQ)
	RegisterAuxLinkLayer("PP-ARQ Chunk", newChunkARQ)
}

// Countermeasure activation counters (obs Vars, recorded per transfer — far
// off the event loop's hot path).
var (
	mChannelHops   = &obs.CounterVar{Name: "netsim.channel_hops"}
	mRateFallbacks = &obs.CounterVar{Name: "netsim.rate_fallbacks"}
	mChunkSwitches = &obs.CounterVar{Name: "netsim.chunk_cap_switches"}
)

func countActivation(v *obs.CounterVar) {
	if obs.Default() == nil {
		return
	}
	v.Get().Inc()
}

// distressed classifies one transfer's outcome: a give-up, any full resend
// (the receiver acquired nothing — a stomped preamble is the signature of a
// jam burst), or round inflation beyond what ordinary fading costs.
func distressed(st pparq.Stats, err error) bool {
	return err != nil || st.FullResends > 0 || st.Rounds > 2
}

// distressAfter consecutive distressed transfers trip a countermeasure;
// calmAfter consecutive clean ones release it.
const (
	distressAfter = 2
	calmAfter     = 4
)

// creditTransfer runs one pparq transfer with the standard give-up credit:
// the receiver hands its checksum-verified symbols to higher layers even
// when the protocol gave up (see ppARQ.Transfer).
func creditTransfer(s *pparq.Sender, app []byte) (int, pparq.Stats, error) {
	delivered, st, err := s.Transfer(app)
	if err != nil {
		return st.VerifiedSymbols * 4 / 8, st, err
	}
	return len(delivered), st, nil
}

// mergeStats folds one sub-transfer's accounting into an aggregate.
func mergeStats(a *pparq.Stats, b pparq.Stats) {
	a.DataAirBytes += b.DataAirBytes
	a.RetxAirBytes += b.RetxAirBytes
	a.FeedbackAirBytes += b.FeedbackAirBytes
	a.Rounds += b.Rounds
	a.RetxPayloadSizes = append(a.RetxPayloadSizes, b.RetxPayloadSizes...)
	a.FullResends += b.FullResends
	a.Misses += b.Misses
	a.VerifiedSymbols += b.VerifiedSymbols
	a.ChunkCaps += b.ChunkCaps
}

// ---- PP-ARQ Hop ----

type hopARQ struct {
	inner    LinkLayer
	fwd, rev pparq.Link
	nCh, ch  int
	streak   int
	hops     int
}

func newHopARQ(fwd, rev pparq.Link, src, dst uint16, cfg LinkConfig) LinkLayer {
	cfg = cfg.fill()
	return &hopARQ{inner: newPPARQ(fwd, rev, src, dst, cfg), fwd: fwd, rev: rev, nCh: cfg.NumChannels}
}

func (l *hopARQ) Name() string { return "PP-ARQ Hop" }

func (l *hopARQ) AppBytesPerPacket(n int) int { return l.inner.AppBytesPerPacket(n) }

func (l *hopARQ) Transfer(app []byte) (int, pparq.Stats, error) {
	n, st, err := l.inner.Transfer(app)
	if !distressed(st, err) {
		l.streak = 0
		return n, st, err
	}
	l.streak++
	if l.streak >= distressAfter && l.nCh > 1 {
		l.streak = 0
		l.ch = (l.ch + 1) % l.nCh
		// Both directions retune: data and feedback stay on the same
		// channel, as a rendezvous-keeping radio pair would.
		if f, ok := l.fwd.(ChannelSetter); ok {
			f.SetChannel(l.ch)
		}
		if r, ok := l.rev.(ChannelSetter); ok {
			r.SetChannel(l.ch)
		}
		l.hops++
		countActivation(mChannelHops)
	}
	return n, st, err
}

// ---- PP-ARQ Fallback ----

// minFallbackBytes bounds how small a fallback frame may get: below this,
// header and preamble overhead dominate and the fallback hurts.
const minFallbackBytes = 32

type fallbackARQ struct {
	s            *pparq.Sender
	level        int // payload is split into 1<<level frames
	maxLevel     int
	streak, calm int
}

func newFallbackARQ(fwd, rev pparq.Link, src, dst uint16, cfg LinkConfig) LinkLayer {
	cfg = cfg.fill()
	return &fallbackARQ{
		s: pparq.NewSender(fwd, rev, src, dst, pparq.Config{
			MaxRounds:   cfg.MaxRounds,
			MaxAttempts: cfg.MaxAttempts,
		}),
		maxLevel: 2,
	}
}

func (l *fallbackARQ) Name() string { return "PP-ARQ Fallback" }

func (l *fallbackARQ) AppBytesPerPacket(n int) int { return n }

func (l *fallbackARQ) Transfer(app []byte) (int, pparq.Stats, error) {
	pieces := 1 << l.level
	for pieces > 1 && len(app)/pieces < minFallbackBytes {
		pieces /= 2
	}
	var st pparq.Stats
	var firstErr error
	delivered := 0
	for i := 0; i < pieces; i++ {
		lo := i * len(app) / pieces
		hi := (i + 1) * len(app) / pieces
		n, sub, err := creditTransfer(l.s, app[lo:hi])
		delivered += n
		mergeStats(&st, sub)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if distressed(st, firstErr) {
		l.calm = 0
		l.streak++
		if l.streak >= distressAfter && l.level < l.maxLevel {
			l.streak = 0
			l.level++
			countActivation(mRateFallbacks)
		}
	} else {
		l.streak = 0
		l.calm++
		if l.calm >= calmAfter && l.level > 0 {
			l.calm = 0
			l.level--
		}
	}
	return delivered, st, firstErr
}

// ---- PP-ARQ Chunk ----

// cappedChunks is the hardened feedback budget: few enough chunks that the
// request's gamma codes stay in one short frame even on a shredded packet.
const cappedChunks = 6

type chunkARQ struct {
	relaxed, capped *pparq.Sender
	useCapped       bool
	streak, calm    int
}

func newChunkARQ(fwd, rev pparq.Link, src, dst uint16, cfg LinkConfig) LinkLayer {
	cfg = cfg.fill()
	base := pparq.Config{MaxRounds: cfg.MaxRounds, MaxAttempts: cfg.MaxAttempts}
	hardened := base
	hardened.MaxChunks = cappedChunks
	return &chunkARQ{
		relaxed: pparq.NewSender(fwd, rev, src, dst, base),
		capped:  pparq.NewSender(fwd, rev, src, dst, hardened),
	}
}

func (l *chunkARQ) Name() string { return "PP-ARQ Chunk" }

func (l *chunkARQ) AppBytesPerPacket(n int) int { return n }

func (l *chunkARQ) Transfer(app []byte) (int, pparq.Stats, error) {
	s := l.relaxed
	if l.useCapped {
		s = l.capped
	}
	n, st, err := creditTransfer(s, app)
	if distressed(st, err) {
		l.calm = 0
		l.streak++
		if l.streak >= distressAfter && !l.useCapped {
			l.streak = 0
			l.useCapped = true
			countActivation(mChunkSwitches)
		}
	} else {
		l.streak = 0
		l.calm++
		if l.calm >= calmAfter && l.useCapped {
			l.calm = 0
			l.useCapped = false
		}
	}
	return n, st, err
}
