package netsim

import (
	"reflect"
	"testing"

	"ppr/internal/obs"
	"ppr/internal/radio"
	"ppr/internal/scenario"
	"ppr/internal/topo"
)

// auxLayerNames are the countermeasure slugs registered by countermeasures.go.
var auxLayerNames = []string{"pp-arq-hop", "pp-arq-fallback", "pp-arq-chunk"}

func TestAuxLayersResolveOutsideTrio(t *testing.T) {
	for _, name := range auxLayerNames {
		if _, err := linkLayerMaker(name); err != nil {
			t.Errorf("aux layer %q does not resolve: %v", name, err)
		}
	}
	// The paper trio must stay exactly the paper trio: aux layers are
	// opt-in by name, never part of the Fig. 17 comparison set.
	if got := LinkLayers(); len(got) != 3 {
		t.Errorf("LinkLayers() = %v, want the paper trio only", got)
	}
	all := map[string]bool{}
	for _, n := range LinkLayerNames() {
		all[n] = true
	}
	for _, name := range auxLayerNames {
		if !all[name] {
			t.Errorf("aux layer %q missing from LinkLayerNames()", name)
		}
	}
}

// strongJamTopo pins a worst-case geometry, twice (two far-apart clusters →
// two interference domains): in each cluster the jammer overpowers the
// victim receiver by 6 dB but is inaudible to the victim sender, so carrier
// sense never defers and every full-size data frame sails into a jam burst.
func strongJamTopo(t *testing.T) *topo.Topology {
	t.Helper()
	b := topo.NewBuilder(radio.DefaultParams(), 5)
	for i, x0 := range []float64{0, 8000} {
		names := [3]string{"j", "s", "r"}
		for k, n := range names {
			b.Node(n+string(rune('a'+i)), x0+float64(k)*20, 0)
		}
	}
	for _, c := range []string{"a", "b"} {
		b.LinkDBm("s"+c, "r"+c, -60)
		b.LinkDBm("j"+c, "r"+c, -54)
		b.LinkDBm("j"+c, "s"+c, -95)
	}
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// pounder returns a jammer on the given node that fires a full-size burst on
// channel 0 every 30k chips, ignoring carrier sense. A 250-byte frame flies
// ~18k chips, so the idle gap between bursts is too short for a full-size
// data frame but long enough for fallback-size pieces and short control
// frames — exactly the regime the countermeasures are built for.
func pounder(node int) JammerNode {
	return JammerNode{Sender: node,
		Strategy:   fixedChannelJam{period: 30_000, ch: 0},
		BurstBytes: 250,
		Node:       scenario.Node{IgnoreCarrierSense: true},
	}
}

func strongJamConfig(t *testing.T, layer string) Config {
	return Config{
		Topo:         strongJamTopo(t),
		Flows:        []Flow{{Sender: 1, Receiver: 2}},
		PacketBytes:  250,
		DurationSec:  1.0,
		CarrierSense: true,
		Seed:         5,
		NumChannels:  3,
		LinkLayer:    layer,
		Jammers:      []JammerNode{pounder(0)},
	}
}

func TestCountermeasureLayersDeliverUnderJamming(t *testing.T) {
	for _, layer := range auxLayerNames {
		res, err := Run(strongJamConfig(t, layer))
		if err != nil {
			t.Fatalf("%s: %v", layer, err)
		}
		if res.JamFrames == 0 {
			t.Fatalf("%s: jammer never fired", layer)
		}
		fr := res.Flows[0]
		if fr.Transfers == 0 || fr.DeliveredAppBytes == 0 {
			t.Errorf("%s: delivered nothing under jamming (%d transfers, %d bytes)",
				layer, fr.Transfers, fr.DeliveredAppBytes)
		}
	}
}

// TestCountermeasuresActivate drives each countermeasure layer into distress
// under the channel-0 pounder and asserts its activation counter fires on a
// live metrics registry.
func TestCountermeasuresActivate(t *testing.T) {
	cases := []struct {
		layer, counter string
	}{
		{"pp-arq-hop", "netsim.channel_hops"},
		{"pp-arq-fallback", "netsim.rate_fallbacks"},
		{"pp-arq-chunk", "netsim.chunk_cap_switches"},
	}
	for _, tc := range cases {
		old := obs.Default()
		r := obs.New()
		obs.SetDefault(r)
		res, err := Run(strongJamConfig(t, tc.layer))
		obs.SetDefault(old)
		if err != nil {
			t.Fatalf("%s: %v", tc.layer, err)
		}
		if res.JamFrames == 0 {
			t.Fatalf("%s: jammer never fired", tc.layer)
		}
		if got := r.Counter(tc.counter).Value(); got == 0 {
			t.Errorf("%s: %s never incremented under sustained jamming", tc.layer, tc.counter)
		}
	}
}

// TestCountermeasureWorkerInvariance: countermeasure layers mutate link
// state mid-run (retuned channels, fallback levels, capped senders), which
// must stay a pure function of the config across worker counts.
func TestCountermeasureWorkerInvariance(t *testing.T) {
	for _, layer := range auxLayerNames {
		base := strongJamConfig(t, layer)
		base.Flows = append(base.Flows, Flow{Sender: 4, Receiver: 5})
		base.Jammers = append(base.Jammers, pounder(3))
		run := func(workers int, single bool) Result {
			cfg := base
			cfg.Workers = workers
			cfg.SingleQueue = single
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", layer, err)
			}
			return res
		}
		ref := run(1, true)
		if ref.Domains < 2 {
			t.Fatalf("%s: expected >= 2 interference domains, got %d", layer, ref.Domains)
		}
		for _, workers := range []int{1, 4} {
			if got := run(workers, false); !reflect.DeepEqual(ref, got) {
				t.Errorf("%s: %d-worker result diverges from single queue:\nsingle  %+v\nsharded %+v",
					layer, workers, ref, got)
			}
		}
	}
}
