package netsim

import (
	"reflect"
	"testing"

	"ppr/internal/radio"
	"ppr/internal/scenario"
	"ppr/internal/testbed"
)

// bed returns the standard deployment used across the tests.
func bed() *testbed.Testbed {
	return testbed.New(radio.DefaultParams(), 1)
}

// bestFlow builds the flow from sender s to its strongest receiver.
func bestFlow(tb *testbed.Testbed, s int) Flow {
	return Flow{Sender: s, Receiver: tb.BestReceiver(s)}
}

func baseConfig(tb *testbed.Testbed) Config {
	return Config{
		Testbed:      tb,
		Flows:        []Flow{bestFlow(tb, 0)},
		PacketBytes:  250,
		DurationSec:  0.25,
		CarrierSense: true,
		Seed:         1,
	}
}

func TestSingleFlowDelivers(t *testing.T) {
	tb := bed()
	for _, layer := range LinkLayers() {
		cfg := baseConfig(tb)
		cfg.LinkLayer = layer
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", layer, err)
		}
		fr := res.Flows[0]
		if fr.Transfers == 0 {
			t.Errorf("%s: no transfers attempted", layer)
		}
		if fr.DeliveredAppBytes == 0 {
			t.Errorf("%s: nothing delivered over a strong link", layer)
		}
		if fr.Air.DataAirBytes == 0 {
			t.Errorf("%s: no data airtime accounted", layer)
		}
		if fr.Air.FeedbackAirBytes == 0 {
			t.Errorf("%s: feedback frames cost no airtime — loop is not closed", layer)
		}
		if res.BusyChips == 0 || res.TxChips < res.BusyChips {
			t.Errorf("%s: inconsistent airtime accounting busy=%d tx=%d", layer, res.BusyChips, res.TxChips)
		}
		// Delivered application throughput cannot exceed the channel bit
		// rate scaled by the payload fraction of a frame.
		if kbps := res.AggregateKbps(); kbps > 250 {
			t.Errorf("%s: aggregate %v Kbit/s exceeds the channel rate", layer, kbps)
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	tb := bed()
	cfg := baseConfig(tb)
	cfg.Flows = []Flow{bestFlow(tb, 0), bestFlow(tb, 1), bestFlow(tb, 4)}
	for _, layer := range LinkLayers() {
		cfg.LinkLayer = layer
		a, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", layer, err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", layer, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: identical configs produced different results", layer)
		}
	}
}

// TestContentionCostsThroughput pins the closed-loop property the open-loop
// engine cannot express: adding a second flow on the shared channel reduces
// (or at best preserves) what the first flow alone could deliver, because
// the two complete exchanges — feedback included — contend for airtime.
func TestContentionCostsThroughput(t *testing.T) {
	tb := bed()
	solo := baseConfig(tb)
	res1, err := Run(solo)
	if err != nil {
		t.Fatal(err)
	}
	both := solo
	both.Flows = []Flow{bestFlow(tb, 0), bestFlow(tb, 9)}
	res2, err := Run(both)
	if err != nil {
		t.Fatal(err)
	}
	if got, was := res2.Flows[0].DeliveredAppBytes, res1.Flows[0].DeliveredAppBytes; got > was {
		t.Errorf("flow 0 delivered more under contention (%d) than alone (%d)", got, was)
	}
	if res2.TxChips <= res1.TxChips {
		t.Errorf("two flows put no more chips on the air than one")
	}
}

func TestTrafficPacedFlow(t *testing.T) {
	tb := bed()
	cfg := baseConfig(tb)
	cfg.Traffic = scenario.PoissonModel{}
	cfg.OfferedBps = 13800
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sat, err := Run(baseConfig(tb))
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[0].Transfers == 0 {
		t.Fatal("paced flow never sent")
	}
	if res.Flows[0].Transfers >= sat.Flows[0].Transfers {
		t.Errorf("paced flow sent %d transfers, saturated only %d", res.Flows[0].Transfers, sat.Flows[0].Transfers)
	}
}

func TestJammerDegradesDelivery(t *testing.T) {
	tb := bed()
	clean := baseConfig(tb)
	clean.LinkLayer = "packet-crc-arq"
	cleanRes, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	jam := clean
	// A heavy periodic jammer colocated near the flow's receiver, ignoring
	// carrier sense.
	jam.Jammers = []JammerNode{{
		Sender: 9,
		Node: scenario.Node{
			Model:              scenario.Jammer{PeriodChips: 12_000, BurstBytes: 120, JitterChips: 1_000},
			PacketBytes:        120,
			IgnoreCarrierSense: true,
		},
	}}
	jamRes, err := Run(jam)
	if err != nil {
		t.Fatal(err)
	}
	if jamRes.JamFrames == 0 {
		t.Fatal("jammer never fired")
	}
	if jamRes.Flows[0].DeliveredAppBytes > cleanRes.Flows[0].DeliveredAppBytes {
		t.Errorf("jammed run delivered more (%d) than clean run (%d)",
			jamRes.Flows[0].DeliveredAppBytes, cleanRes.Flows[0].DeliveredAppBytes)
	}
	if jamRes.Flows[0].Air.RetxAirBytes+jamRes.Flows[0].Air.FullResends == 0 &&
		jamRes.Flows[0].DeliveredAppBytes == cleanRes.Flows[0].DeliveredAppBytes {
		t.Errorf("jammer had no observable effect on the link layer")
	}
}

func TestReactiveJammerOnlyFiresIntoTraffic(t *testing.T) {
	tb := bed()
	cfg := baseConfig(tb)
	cfg.Jammers = []JammerNode{{
		Sender: 9,
		Node: scenario.Node{
			Model:              scenario.DefaultReactiveJammer(),
			PacketBytes:        scenario.DefaultReactiveJammer().BurstBytes,
			IgnoreCarrierSense: true,
			Reactive:           true,
		},
	}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sender 9 is in a different room: whether it hears the flow depends on
	// the link budget, but it must fire at most once per poll and never on
	// an idle channel — with one saturated flow nearby, some polls land in
	// silence, so jam frames must be strictly fewer than for the periodic
	// jammer with the same clock.
	if res.JamFrames > 0 && res.Flows[0].Transfers == 0 {
		t.Error("reactive jammer fired but no traffic existed")
	}
}

func TestConfigValidation(t *testing.T) {
	tb := bed()
	bad := []Config{
		{Testbed: tb},                        // no flows
		{Flows: []Flow{{0, 0}}},              // no testbed
		{Testbed: tb, Flows: []Flow{{0, 0}}}, // no packet size/duration
		{Testbed: tb, Flows: []Flow{{0, 0}, {0, 1}}, PacketBytes: 100, DurationSec: 1}, // dup sender
		{Testbed: tb, Flows: []Flow{{30, 0}}, PacketBytes: 100, DurationSec: 1},        // out of range
		{Testbed: tb, Flows: []Flow{{0, 0}}, PacketBytes: 100, DurationSec: 1, LinkLayer: "nope"},
		{Testbed: tb, Flows: []Flow{{0, 0}}, PacketBytes: 100, DurationSec: 1,
			Jammers: []JammerNode{{Sender: 0, Node: scenario.Node{Model: scenario.DefaultJammer()}}}}, // jammer on flow sender
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestLinkLayerRegistry(t *testing.T) {
	want := []string{"pp-arq", "frag-crc-arq", "packet-crc-arq"}
	if got := LinkLayers(); !reflect.DeepEqual(got, want) {
		t.Errorf("LinkLayers() = %v, want %v", got, want)
	}
	for _, name := range LinkLayerNames() {
		if _, err := linkLayerMaker(name); err != nil {
			t.Errorf("registered layer %q does not resolve: %v", name, err)
		}
	}
	if _, err := linkLayerMaker(""); err != nil {
		t.Errorf("default layer does not resolve: %v", err)
	}
}
