// Package netsim is the closed-loop network simulator of the repo: a
// discrete-event engine in which every node runs a real link-layer state
// machine over the shared CSMA channel, so acknowledgements, PP-ARQ feedback
// frames and partial retransmissions occupy airtime and collide like any
// other transmission. It exists to reproduce the paper's headline result
// (Sec. 7.5, Fig. 17): when the cost of feedback and retransmission is paid
// *on the channel* instead of accounted after the fact, PP-ARQ roughly
// doubles aggregate network throughput over the status quo.
//
// The open-loop engine (internal/sim) schedules a fixed transmission
// timeline and post-processes the resulting trace under each recovery
// scheme; the offered load never reacts to what was lost. Here the loop is
// closed: a flow's next frame — the initial data packet, the receiver's
// feedback, the sender's partial retransmission — is decided by the protocol
// from what actually arrived, and its transmit time is decided by the MAC
// from what the channel is actually carrying.
//
// # Execution model
//
// A run executes on a Topology — the paper's fixed 27-node testbed or a
// declarative internal/topo layout of up to tens of thousands of nodes. At
// startup the engine prunes the audibility graph: for every node it
// precomputes the set of nodes that receive it above the synthesis floor
// (noise floor − 10 dB). A transmission only ever touches those neighbors —
// carrier sense, interference and delivery below the floor are exactly the
// contributions synthesis would have discarded anyway.
//
// The connected components of that graph (unioned with each flow's
// endpoint pair) are independent interference domains: no transmission in
// one can affect any reception, carrier-sense query or half-duplex conflict
// in another. The engine therefore shards its event queue by domain and
// runs the shards concurrently on a bounded worker pool (Config.Workers).
// Each shard owns a virtual clock in chips and a priority queue of events;
// each flow runs its LinkLayer (PP-ARQ via internal/core/pparq, or one of
// the status-quo ARQ baselines) as a coroutine of its shard: the link
// layer's blocking Link.Transmit call yields to the engine, which queues
// the transmission, applies carrier sense at the transmitting node against
// everything currently on the air, commits the frame to the shared
// timeline, and — once the virtual clock passes the frame's end —
// synthesizes the destination's chip stream (interference from every
// concurrently committed audible transmission included, via internal/radio)
// and resumes the flow with the reception. Exactly one goroutine runs at
// any instant *per shard*, and events at equal times order
// deterministically, so a run is a pure function of its Config.
//
// Randomness is drawn from generators derived with stats.RNG.Derive keyed
// on stable (node, chip-time) or (flow, tag) coordinates: channel noise and
// fading from the receiving node and the transmission's start chip, CSMA
// backoff from the sensing node and the arrival chip, payloads from the
// global flow index. Derive reads its parent's state without advancing it,
// so concurrent shards draw from the shared base generator race-free, and
// results are bit-identical for every worker count — and to the single
// merged event queue (Config.SingleQueue), which exists as the reference
// engine for that equivalence.
//
// Jammer nodes from internal/scenario integrate as pure event sources: their
// arrival models fire jam frames onto the timeline (reactive ones sense
// first), which interfere with — and trigger recovery in — every flow in
// their domain.
package netsim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ppr/internal/jam"
	"ppr/internal/mac"
	"ppr/internal/obs"
	"ppr/internal/radio"
	"ppr/internal/scenario"
	"ppr/internal/stats"
	"ppr/internal/testbed"
)

// Topology abstracts the deployment a run executes on: a node count, the
// static link budget between every ordered node pair, and the propagation
// environment. *testbed.Testbed (the paper's 27-node office) and
// *topo.Topology (declarative grids/meshes/cell layouts) both satisfy it.
type Topology interface {
	// NumNodes returns the deployment size; node IDs are 0..NumNodes-1.
	NumNodes() int
	// NodeGainDBm returns the received power at node `to` of node `from`'s
	// transmissions, transmit power and static shadowing folded in.
	NodeGainDBm(from, to int) float64
	// RadioParams returns the propagation environment.
	RadioParams() radio.Params
}

// Flow is one closed-loop traffic flow: a sender streaming packets to a
// receiver through a LinkLayer.
type Flow struct {
	// Sender is the sending node. On the testbed it is the sender index
	// (global node ID Sender); on a Topology it is the global node ID.
	Sender int
	// Receiver is the receiving node. On the testbed it is the receiver
	// index (global node ID testbed.NumSenders+Receiver); on a Topology it
	// is the global node ID.
	Receiver int
}

// JammerNode overlays an adversarial event source on the shared channel: a
// node position transmitting jam bursts either under a legacy scenario
// traffic model or under a composable internal/jam strategy.
type JammerNode struct {
	// Sender is the node the jammer transmits from: a testbed sender index,
	// or a global node ID on a Topology. It must not also carry a Flow.
	Sender int
	// Node is the legacy scenario behaviour: Model generates jam arrivals,
	// PacketBytes sizes the bursts, IgnoreCarrierSense/Reactive set the MAC
	// discipline. Node.Jam, when set, counts as Strategy (scenario overlays
	// carry strategies there).
	Node scenario.Node
	// Strategy, when set, drives the jammer through the composable adversary
	// model: the engine polls the strategy's emitter at the instants it asks
	// for, hands it a per-channel busy observation plus the audible active
	// transmissions, and commits a burst when it fires. Exactly one of
	// Strategy (or Node.Jam) and Node.Model must be set.
	Strategy jam.Strategy
	// BurstBytes sizes strategy bursts; 0 falls back to Node.PacketBytes,
	// then to 40 bytes.
	BurstBytes int
	// PowerDeltaDBm shifts this jammer's link budget toward every other node
	// — a stronger (or weaker) adversary without touching the topology.
	PowerDeltaDBm float64
}

// Config describes one closed-loop run.
type Config struct {
	// Testbed is the paper's deployment to run on. Exactly one of Testbed
	// and Topo must be set.
	Testbed *testbed.Testbed
	// Topo is a declarative deployment (internal/topo, or anything
	// satisfying Topology). When set, Flow and JammerNode node fields are
	// global node IDs.
	Topo Topology
	// Flows are the concurrent closed-loop flows sharing the channel.
	Flows []Flow
	// LinkLayer names the registered link layer every flow runs (see
	// LinkLayerNames); "" means PP-ARQ.
	LinkLayer string
	// PacketBytes is the link-layer payload size per data packet.
	PacketBytes int
	// DurationSec is the simulated airtime: flows stop opening new transfers
	// once the virtual clock passes it (the transfer in flight completes).
	DurationSec float64
	// CarrierSense toggles CSMA for every well-behaved transmission, control
	// frames included — in a closed-loop world feedback contends for the
	// medium like data.
	CarrierSense bool
	// Seed fixes all traffic, backoff, noise and fading randomness.
	Seed uint64
	// Traffic paces each flow's transfer openings; nil means saturated
	// (back-to-back transfers, the paper's "streams packets as fast as the
	// protocol allows"). Arrivals in a flow's backlog queue: an arrival that
	// falls while a transfer is still in progress starts immediately after.
	Traffic scenario.TrafficModel
	// OfferedBps scales Traffic (unused when saturated).
	OfferedBps float64
	// Jammers are adversarial event sources overlaid on the channel.
	Jammers []JammerNode
	// NumChannels is the number of orthogonal channels sharing the
	// deployment; 0 means 1. Flows start on channel 0 and retune through
	// ChannelSetter (the channel-hopping countermeasure layers do); jam
	// strategies pick their burst channel per poll. Transmissions interfere
	// and carrier-sense only within a channel; half-duplex conflicts span
	// all of them (one radio per node).
	NumChannels int
	// FragBytes is the fragmented-CRC layer's fragment size; 0 means the
	// paper's 50 bytes.
	FragBytes int
	// MaxRounds and MaxAttempts bound every link layer's persistence per
	// transfer; 0 means the PP-ARQ defaults (8 rounds, 16 attempts).
	MaxRounds, MaxAttempts int
	// Workers bounds how many interference-domain shards execute
	// concurrently; 0 means one per CPU. Results are bit-identical for
	// every value — parallelism is pure mechanism.
	Workers int
	// SingleQueue forces all domains through one merged event queue — the
	// pre-sharding reference engine. Results are bit-identical to the
	// sharded runs; it exists for the worker-invariance proof and as a
	// debugging reference.
	SingleQueue bool
	// Tracer, when non-nil, records the run's discrete-event timeline in
	// Chrome trace format (one lane per interference domain; transmissions
	// and backoffs as spans, receptions as instants — see internal/obs).
	// Purely observational: the Result is bit-identical with or without it.
	Tracer *obs.Tracer
}

// FlowResult is one flow's accounting over a run.
type FlowResult struct {
	// Flow identifies the flow.
	Flow Flow
	// DeliveredAppBytes counts application bytes verified at the receiver.
	DeliveredAppBytes int
	// Transfers counts transfers attempted; Failures those given up on.
	Transfers, Failures int
	// Air aggregates the link layer's byte accounting across transfers.
	Air LinkStats
}

// Result is one closed-loop run's output.
type Result struct {
	// Flows holds per-flow accounting, in Config.Flows order.
	Flows []FlowResult
	// DurationSec echoes the configured duration.
	DurationSec float64
	// BusyChips sums, over interference domains, the union channel
	// occupancy within the domain: chips during which at least one node of
	// the domain was transmitting. On a single-domain deployment (the
	// testbed) this is the plain union occupancy; on a sharded mesh it can
	// exceed the run duration, because disjoint domains carry traffic
	// simultaneously.
	BusyChips int64
	// TxChips is the sum of all transmission lengths (exceeds BusyChips
	// exactly when transmissions overlapped — collisions happened).
	TxChips int64
	// JamFrames counts jam bursts committed to the channel; JamChips their
	// total airtime — the network's jam exposure.
	JamFrames int
	JamChips  int64
	// Domains is the number of interference domains in the deployment
	// (audibility components unioned with flow endpoints).
	Domains int
}

// AggregateAppBytes sums delivered application bytes across flows.
func (r Result) AggregateAppBytes() int {
	total := 0
	for _, f := range r.Flows {
		total += f.DeliveredAppBytes
	}
	return total
}

// AggregateKbps returns network-wide delivered application throughput.
func (r Result) AggregateKbps() float64 {
	return float64(r.AggregateAppBytes()) * 8 / r.DurationSec / 1000
}

// Derive-key tags separating the engine's independent random streams.
const (
	tagChannel = iota + 1
	tagCSMA
	tagPayload
	tagJammer
)

// interferenceFloorDB mirrors internal/sim: transmissions weaker than this
// below the noise floor are dropped from synthesis — and, since PR 7, from
// carrier sense and the audibility graph, which is what makes domains
// separable at all.
const interferenceFloorDB = 10

// AudibilityFloorDBm returns the engine's audibility floor under the given
// environment: links below it neither interfere nor carrier-sense, and the
// interference-domain partition is the connectivity of the remaining links.
func AudibilityFloorDBm(p radio.Params) float64 {
	return p.NoiseFloorDBm - interferenceFloorDB
}

// windowMarginChips pads synthesis windows on both sides of a transmission.
const windowMarginChips = 64

// maxTopologyNodes bounds deployments to what frame addressing carries:
// node IDs are uint16 and 0xffff is the jam broadcast address.
const maxTopologyNodes = 0xffff

// flowSpec is a validated flow: its global index (the Derive payload key)
// and endpoint global node IDs.
type flowSpec struct {
	id       int
	cfg      Flow
	src, dst int
}

// jamSpec is a validated jammer: its global index and node ID.
type jamSpec struct {
	id   int
	node int
	spec JammerNode
}

// runState is everything shared across shards: the deployment, the pruned
// audibility graph, the domain partition, and per-node/per-domain
// accumulators. Shards touch disjoint node and domain indices, so no locks
// are involved; the base RNG is only read through Derive, which does not
// advance it.
type runState struct {
	cfg     Config
	top     Topology
	nn      int
	nCh     int
	base    *stats.RNG
	csma    mac.CSMA
	noiseMW float64
	floorMW float64
	endChip int64

	// Pruned audibility graph: heardBy[u] lists the nodes that receive u at
	// or above the synthesis floor (u excluded), heardByPw the received
	// power at each in mW, and hearsPw[v] the reverse index for synthesis.
	heardBy   [][]int32
	heardByPw [][]float64
	hearsPw   []map[int32]float64

	domainOf []int32
	nDomains int

	// Per-node engine state, disjoint across shards (a node belongs to
	// exactly one domain). busyAcc and contrib are per (channel, node),
	// indexed ch*nn+node — at one channel that is exactly the old per-node
	// layout, float operation order included.
	nodeFree []int64   // radio busy-until (one radio per node)
	busyAcc  []float64 // accumulated audible interference, mW
	contrib  []int32   // active transmissions contributing to busyAcc

	// Per-domain union-occupancy accounting:
	domBusy []int64
	domLast []int64

	// Observability (nil when disabled; see internal/netsim/obs.go):
	m     *netsimMetrics
	lanes []*obs.TraceLane // timeline lane per domain, nil without a Tracer
}

// Run executes one closed-loop simulation. It is a pure function of cfg:
// the same configuration always produces the identical Result, whatever
// Workers and SingleQueue say.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run under a context: every shard's event loop checks ctx at
// every event, and on cancellation stops committing transmissions, resumes
// each blocked flow coroutine with nil receptions and a clock past the end
// of the run so its link layer fails fast, and returns ctx.Err() with no
// goroutine left behind. A nil error means the Result is complete and
// bit-identical to Run's.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	top, flows, jams, err := normalize(cfg)
	if err != nil {
		return Result{}, err
	}
	maker, err := linkLayerMaker(cfg.LinkLayer)
	if err != nil {
		return Result{}, err
	}
	rs := newRunState(cfg, top, flows, jams)
	rs.m = newNetsimMetrics(flows)
	if cfg.Tracer != nil {
		layer := cfg.LinkLayer
		if layer == "" {
			layer = "pp-arq"
		}
		proc := cfg.Tracer.Process(
			fmt.Sprintf("netsim %s seed=%#x", layer, cfg.Seed),
			1e6/float64(mac.ChipRateHz))
		rs.lanes = make([]*obs.TraceLane, rs.nDomains)
		for d := 0; d < rs.nDomains; d++ {
			rs.lanes[d] = proc.Lane(int64(d), fmt.Sprintf("domain %d", d))
		}
	}
	shards := buildShards(rs, flows, jams, maker)
	if err := runShards(ctx, shards, cfg.Workers); err != nil {
		return Result{}, err
	}

	res := Result{
		DurationSec: cfg.DurationSec,
		Domains:     rs.nDomains,
		Flows:       make([]FlowResult, len(flows)),
	}
	for _, b := range rs.domBusy {
		res.BusyChips += b
	}
	for _, s := range shards {
		res.TxChips += s.txChips
		res.JamFrames += s.jamFrames
		res.JamChips += s.jamChips
		for _, fl := range s.flows {
			res.Flows[fl.spec.id] = fl.res
		}
	}
	return res, nil
}

// normalize validates the configuration and resolves flows and jammers to
// global node IDs under either deployment model.
func normalize(cfg Config) (Topology, []flowSpec, []jamSpec, error) {
	var top Topology
	switch {
	case cfg.Testbed == nil && cfg.Topo == nil:
		return nil, nil, nil, fmt.Errorf("netsim: nil testbed")
	case cfg.Testbed != nil && cfg.Topo != nil:
		return nil, nil, nil, fmt.Errorf("netsim: both Testbed and Topo set")
	case cfg.Testbed != nil:
		top = cfg.Testbed
	default:
		top = cfg.Topo
	}
	if len(cfg.Flows) == 0 {
		return nil, nil, nil, fmt.Errorf("netsim: no flows")
	}
	if cfg.PacketBytes <= 0 || cfg.DurationSec <= 0 {
		return nil, nil, nil, fmt.Errorf("netsim: bad packet size %d or duration %v", cfg.PacketBytes, cfg.DurationSec)
	}
	if cfg.NumChannels < 0 || cfg.NumChannels > 256 {
		return nil, nil, nil, fmt.Errorf("netsim: %d channels out of range (jam bursts address at most 256)", cfg.NumChannels)
	}
	nn := top.NumNodes()
	if nn > maxTopologyNodes {
		return nil, nil, nil, fmt.Errorf("netsim: %d nodes exceed the %d frame addressing allows", nn, maxTopologyNodes)
	}

	onTestbed := cfg.Testbed != nil
	flows := make([]flowSpec, len(cfg.Flows))
	endpoint := make(map[int]bool) // any flow endpoint
	sender := make(map[int]bool)   // flow senders (one radio per node)
	for i, f := range cfg.Flows {
		var src, dst int
		if onTestbed {
			if f.Sender < 0 || f.Sender >= testbed.NumSenders || f.Receiver < 0 || f.Receiver >= testbed.NumReceivers {
				return nil, nil, nil, fmt.Errorf("netsim: flow %v out of deployment bounds", f)
			}
			src, dst = f.Sender, testbed.NumSenders+f.Receiver
		} else {
			if f.Sender < 0 || f.Sender >= nn || f.Receiver < 0 || f.Receiver >= nn {
				return nil, nil, nil, fmt.Errorf("netsim: flow %v out of deployment bounds", f)
			}
			if f.Sender == f.Receiver {
				return nil, nil, nil, fmt.Errorf("netsim: flow %v sends to itself", f)
			}
			src, dst = f.Sender, f.Receiver
		}
		if sender[src] {
			return nil, nil, nil, fmt.Errorf("netsim: sender %d carries two flows (one radio per node)", src)
		}
		sender[src] = true
		endpoint[src], endpoint[dst] = true, true
		flows[i] = flowSpec{id: i, cfg: f, src: src, dst: dst}
	}

	jams := make([]jamSpec, len(cfg.Jammers))
	jammed := make(map[int]bool)
	for i, j := range cfg.Jammers {
		node := j.Sender
		if onTestbed {
			if node < 0 || node >= testbed.NumSenders || sender[node] {
				return nil, nil, nil, fmt.Errorf("netsim: jammer node %d invalid or already a flow sender", node)
			}
		} else if node < 0 || node >= nn || endpoint[node] {
			return nil, nil, nil, fmt.Errorf("netsim: jammer node %d invalid or already a flow endpoint", node)
		}
		if jammed[node] {
			return nil, nil, nil, fmt.Errorf("netsim: jammer node %d used twice (one radio per node)", node)
		}
		jammed[node] = true
		sender[node] = true
		if (jamStrategy(j) != nil) == (j.Node.Model != nil) {
			return nil, nil, nil, fmt.Errorf("netsim: jammer node %d must set exactly one of a jam strategy and a traffic model", node)
		}
		jams[i] = jamSpec{id: i, node: node, spec: j}
	}
	return top, flows, jams, nil
}

// newRunState precomputes the pruned audibility graph and the interference
// domains. The pairwise sweep filters in dB first (cheap) and only converts
// near- or above-floor budgets to milliwatts, comparing those against the
// floor in linear units — the exact comparison synthesis used before
// sharding, so pruning changes which work happens, never what it computes.
// Jammer power deltas fold into the sweep here: a boosted jammer is simply a
// node whose outgoing link budget is higher everywhere.
func newRunState(cfg Config, top Topology, flows []flowSpec, jams []jamSpec) *runState {
	params := top.RadioParams()
	nn := top.NumNodes()
	nCh := cfg.NumChannels
	if nCh <= 0 {
		nCh = 1
	}
	rs := &runState{
		cfg:       cfg,
		top:       top,
		nn:        nn,
		nCh:       nCh,
		base:      stats.NewRNG(cfg.Seed ^ 0xc105ed100f),
		noiseMW:   radio.DBmToMW(params.NoiseFloorDBm),
		floorMW:   radio.DBmToMW(AudibilityFloorDBm(params)),
		endChip:   mac.ChipsPerSecond(cfg.DurationSec),
		nodeFree:  make([]int64, nn),
		busyAcc:   make([]float64, nn*nCh),
		contrib:   make([]int32, nn*nCh),
		hearsPw:   make([]map[int32]float64, nn),
		heardBy:   make([][]int32, nn),
		heardByPw: make([][]float64, nn),
	}
	rs.csma = mac.DefaultCSMA(radio.DBmToMW(params.CSThresholdDBm))
	rs.csma.Enabled = cfg.CarrierSense

	// Outgoing per-node gain shift, nil unless some jammer carries a delta —
	// the nil path leaves the sweep's arithmetic untouched bit for bit.
	var delta []float64
	for _, j := range jams {
		if j.spec.PowerDeltaDBm != 0 {
			if delta == nil {
				delta = make([]float64, nn)
			}
			delta[j.node] = j.spec.PowerDeltaDBm
		}
	}

	// floorDBm-0.1 is a conservative dB prefilter: DBmToMW is monotone up
	// to rounding, so anything more than a tenth of a dB under the floor is
	// certainly under it in mW too, and the exact mW comparison only runs
	// near the boundary.
	floorDBm := AudibilityFloorDBm(params)
	parent := make([]int32, nn)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for u := 0; u < nn; u++ {
		for v := 0; v < nn; v++ {
			if u == v {
				continue
			}
			g := top.NodeGainDBm(u, v)
			if delta != nil {
				g += delta[u]
			}
			if g < floorDBm-0.1 {
				continue
			}
			p := radio.DBmToMW(g)
			if p < rs.floorMW {
				continue
			}
			rs.heardBy[u] = append(rs.heardBy[u], int32(v))
			rs.heardByPw[u] = append(rs.heardByPw[u], p)
			if rs.hearsPw[v] == nil {
				rs.hearsPw[v] = make(map[int32]float64)
			}
			rs.hearsPw[v][int32(u)] = p
			union(int32(u), int32(v))
		}
	}
	// A flow's endpoints always share a domain, audible or not, so the
	// flow's events live on one queue.
	for _, f := range flows {
		union(int32(f.src), int32(f.dst))
	}
	rs.domainOf = make([]int32, nn)
	label := make(map[int32]int32, 8)
	for i := 0; i < nn; i++ {
		r := find(int32(i))
		id, ok := label[r]
		if !ok {
			id = int32(rs.nDomains)
			label[r] = id
			rs.nDomains++
		}
		rs.domainOf[i] = id
	}
	rs.domBusy = make([]int64, rs.nDomains)
	rs.domLast = make([]int64, rs.nDomains)
	return rs
}

// buildShards groups flows and jammers into one shard per interference
// domain — or one shard total under SingleQueue. Domains with no event
// sources get no shard: nothing would ever happen there.
func buildShards(rs *runState, flows []flowSpec, jams []jamSpec, maker Maker) []*shard {
	byDomain := make(map[int32]*shard)
	var shards []*shard
	shardFor := func(node int) *shard {
		d := rs.domainOf[node]
		if rs.cfg.SingleQueue {
			d = 0 // one merged queue
		}
		s, ok := byDomain[d]
		if !ok {
			s = newShard(rs, len(shards))
			byDomain[d] = s
			shards = append(shards, s)
		}
		return s
	}
	for _, f := range flows {
		s := shardFor(f.src)
		s.addFlow(f, maker)
	}
	for _, j := range jams {
		s := shardFor(j.node)
		s.addJam(j)
	}
	return shards
}

// runShards executes the shards on a bounded worker pool. Shards share no
// mutable state (see runState), so execution order and interleaving cannot
// affect results; the pool exists purely for wall-clock. Cancelled shards
// still run — each must drain its own flow coroutines.
func runShards(ctx context.Context, shards []*shard, workers int) error {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers <= 1 {
		var firstErr error
		for _, s := range shards {
			if err := s.run(ctx); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	errs := make([]error, len(shards))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(shards) {
					return
				}
				errs[i] = shards[i].run(ctx)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// layerConfig assembles the per-flow link layer knobs.
func layerConfig(cfg Config) LinkConfig {
	nCh := cfg.NumChannels
	if nCh <= 0 {
		nCh = 1
	}
	return LinkConfig{
		PacketBytes: cfg.PacketBytes,
		FragBytes:   cfg.FragBytes,
		MaxRounds:   cfg.MaxRounds,
		MaxAttempts: cfg.MaxAttempts,
		NumChannels: nCh,
	}
}

// jamStrategy resolves a jammer's strategy: the explicit field, or the one a
// scenario overlay put on its node.
func jamStrategy(j JammerNode) jam.Strategy {
	if j.Strategy != nil {
		return j.Strategy
	}
	return j.Node.Jam
}

// jamBytes returns a jammer's burst payload size.
func jamBytes(j JammerNode) int {
	if j.BurstBytes > 0 {
		return j.BurstBytes
	}
	if j.Node.PacketBytes > 0 {
		return j.Node.PacketBytes
	}
	return 40
}
