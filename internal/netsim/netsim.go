// Package netsim is the closed-loop network simulator of the repo: a
// discrete-event engine in which every node runs a real link-layer state
// machine over the shared CSMA channel, so acknowledgements, PP-ARQ feedback
// frames and partial retransmissions occupy airtime and collide like any
// other transmission. It exists to reproduce the paper's headline result
// (Sec. 7.5, Fig. 17): when the cost of feedback and retransmission is paid
// *on the channel* instead of accounted after the fact, PP-ARQ roughly
// doubles aggregate network throughput over the status quo.
//
// The open-loop engine (internal/sim) schedules a fixed transmission
// timeline and post-processes the resulting trace under each recovery
// scheme; the offered load never reacts to what was lost. Here the loop is
// closed: a flow's next frame — the initial data packet, the receiver's
// feedback, the sender's partial retransmission — is decided by the protocol
// from what actually arrived, and its transmit time is decided by the MAC
// from what the channel is actually carrying.
//
// # Execution model
//
// The engine owns a virtual clock in chips and a priority queue of events.
// Each flow runs its LinkLayer (PP-ARQ via internal/core/pparq, or one of
// the status-quo ARQ baselines) as a coroutine: the link layer's blocking
// Link.Transmit call yields to the engine, which queues the transmission,
// applies carrier sense at the transmitting node against everything
// currently on the air, commits the frame to the shared timeline, and — once
// the virtual clock passes the frame's end — synthesizes the destination's
// chip stream (interference from every concurrently committed transmission
// included, via internal/radio) and resumes the flow with the reception.
// Exactly one goroutine runs at any instant, and events at equal times order
// deterministically, so a run is a pure function of its Config.
//
// Randomness is drawn from generators derived with stats.RNG.Derive keyed on
// stable (node, chip-time) coordinates: channel noise and fading from the
// receiving node and the transmission's start chip, CSMA backoff from the
// sensing node and the arrival chip. Results therefore do not depend on how
// many engine runs execute in parallel elsewhere (the Fig. 17 experiment
// fans independent operating points over a worker pool).
//
// Jammer nodes from internal/scenario integrate as pure event sources: their
// arrival models fire jam frames onto the timeline (reactive ones sense
// first), which interfere with — and trigger recovery in — every flow.
package netsim

import (
	"container/heap"
	"context"
	"fmt"

	"ppr/internal/bitutil"
	"ppr/internal/frame"
	"ppr/internal/mac"
	"ppr/internal/phy"
	"ppr/internal/radio"
	"ppr/internal/scenario"
	"ppr/internal/stats"
	"ppr/internal/testbed"
)

// Flow is one closed-loop traffic flow: a sender streaming packets to a
// receiver through a LinkLayer.
type Flow struct {
	// Sender is the testbed sender index (global node ID Sender).
	Sender int
	// Receiver is the testbed receiver index (global node ID
	// testbed.NumSenders+Receiver).
	Receiver int
}

// JammerNode overlays an adversarial event source on the shared channel: a
// sender position transmitting jam bursts under a scenario traffic model,
// with the scenario's MAC flags (carrier-sense-ignoring, reactive).
type JammerNode struct {
	// Sender is the testbed sender index whose position and link budget the
	// jammer transmits from. It must not also carry a Flow.
	Sender int
	// Node is the scenario behaviour: Model generates jam arrivals,
	// PacketBytes sizes the bursts, IgnoreCarrierSense/Reactive set the MAC
	// discipline.
	Node scenario.Node
}

// Config describes one closed-loop run.
type Config struct {
	// Testbed is the deployment to run on.
	Testbed *testbed.Testbed
	// Flows are the concurrent closed-loop flows sharing the channel.
	Flows []Flow
	// LinkLayer names the registered link layer every flow runs (see
	// LinkLayerNames); "" means PP-ARQ.
	LinkLayer string
	// PacketBytes is the link-layer payload size per data packet.
	PacketBytes int
	// DurationSec is the simulated airtime: flows stop opening new transfers
	// once the virtual clock passes it (the transfer in flight completes).
	DurationSec float64
	// CarrierSense toggles CSMA for every well-behaved transmission, control
	// frames included — in a closed-loop world feedback contends for the
	// medium like data.
	CarrierSense bool
	// Seed fixes all traffic, backoff, noise and fading randomness.
	Seed uint64
	// Traffic paces each flow's transfer openings; nil means saturated
	// (back-to-back transfers, the paper's "streams packets as fast as the
	// protocol allows"). Arrivals in a flow's backlog queue: an arrival that
	// falls while a transfer is still in progress starts immediately after.
	Traffic scenario.TrafficModel
	// OfferedBps scales Traffic (unused when saturated).
	OfferedBps float64
	// Jammers are adversarial event sources overlaid on the channel.
	Jammers []JammerNode
	// FragBytes is the fragmented-CRC layer's fragment size; 0 means the
	// paper's 50 bytes.
	FragBytes int
	// MaxRounds and MaxAttempts bound every link layer's persistence per
	// transfer; 0 means the PP-ARQ defaults (8 rounds, 16 attempts).
	MaxRounds, MaxAttempts int
}

// FlowResult is one flow's accounting over a run.
type FlowResult struct {
	// Flow identifies the flow.
	Flow Flow
	// DeliveredAppBytes counts application bytes verified at the receiver.
	DeliveredAppBytes int
	// Transfers counts transfers attempted; Failures those given up on.
	Transfers, Failures int
	// Air aggregates the link layer's byte accounting across transfers.
	Air LinkStats
}

// Result is one closed-loop run's output.
type Result struct {
	// Flows holds per-flow accounting, in Config.Flows order.
	Flows []FlowResult
	// DurationSec echoes the configured duration.
	DurationSec float64
	// BusyChips is the union channel occupancy: chips during which at least
	// one node was transmitting.
	BusyChips int64
	// TxChips is the sum of all transmission lengths (exceeds BusyChips
	// exactly when transmissions overlapped — collisions happened).
	TxChips int64
	// JamFrames counts jam bursts committed to the channel.
	JamFrames int
}

// AggregateAppBytes sums delivered application bytes across flows.
func (r Result) AggregateAppBytes() int {
	total := 0
	for _, f := range r.Flows {
		total += f.DeliveredAppBytes
	}
	return total
}

// AggregateKbps returns network-wide delivered application throughput.
func (r Result) AggregateKbps() float64 {
	return float64(r.AggregateAppBytes()) * 8 / r.DurationSec / 1000
}

// Derive-key tags separating the engine's independent random streams.
const (
	tagChannel = iota + 1
	tagCSMA
	tagPayload
	tagJammer
)

// interferenceFloorDB mirrors internal/sim: transmissions weaker than this
// below the noise floor are dropped from synthesis.
const interferenceFloorDB = 10

// windowMarginChips pads synthesis windows on both sides of a transmission.
const windowMarginChips = 64

// event kinds, in tie-break order: at equal times, deliveries resolve before
// new transmissions start (a frame beginning exactly at another's end does
// not overlap it).
const (
	evDeliver = iota
	evTx
	evJam
)

type event struct {
	t    int64
	kind int
	seq  int // FIFO tie-break within (t, kind); assigned at push
	fl   *flowProc
	jam  *jamProc
	tx   int // committed transmission index (evDeliver)
	try  int // CSMA defer count (evTx, evJam)
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(a, b int) bool {
	if q[a].t != q[b].t {
		return q[a].t < q[b].t
	}
	if q[a].kind != q[b].kind {
		return q[a].kind < q[b].kind
	}
	return q[a].seq < q[b].seq
}
func (q eventQueue) Swap(a, b int)       { q[a], q[b] = q[b], q[a] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// airTx is one committed transmission on the shared timeline. chips is
// released once the prune frontier passes the transmission (length carries
// the duration from then on), so a run's memory does not grow with
// simulated airtime.
type airTx struct {
	node   int // global node ID
	start  int64
	length int64 // airtime in chips
	chips  *bitutil.ChipWords
}

func (t *airTx) end() int64 { return t.start + t.length }

// txRequest is what a yielded flow asks the engine to do next.
type txRequest struct {
	from, to int // global node IDs
	frame    frame.Frame
}

// flowMsg is a coroutine yield: either the flow's next transmit request or
// its completion.
type flowMsg struct {
	fl   *flowProc
	done bool
	req  txRequest
}

// flowProc is one flow coroutine and its engine-side state.
type flowProc struct {
	id     int
	cfg    Flow
	eng    *engine
	ll     LinkLayer
	resume chan *frame.Reception
	now    int64 // the flow's local clock
	req    txRequest
	res    FlowResult
}

// engineLink adapts one direction of a flow's hop to pparq.Link: Transmit
// yields the frame to the engine and blocks until the engine has carried it
// across the shared channel.
type engineLink struct {
	fl       *flowProc
	from, to int
}

// Transmit implements pparq.Link (the Link type every LinkLayer builds on).
func (l *engineLink) Transmit(f frame.Frame) *frame.Reception {
	l.fl.req = txRequest{from: l.from, to: l.to, frame: f}
	l.fl.eng.msgs <- flowMsg{fl: l.fl}
	return <-l.fl.resume
}

// jamProc is one jammer event source.
type jamProc struct {
	id       int
	node     int // global node ID
	spec     JammerNode
	arrivals scenario.Arrivals
	rng      *stats.RNG
	seq      uint16
}

// engine is the discrete-event core.
type engine struct {
	cfg      Config
	tb       *testbed.Testbed
	base     *stats.RNG
	queue    eventQueue
	seq      int
	msgs     chan flowMsg
	txs      []airTx // committed transmissions, nondecreasing start
	prune    int     // txs[:prune] can no longer overlap the current time
	maxAir   int64   // longest committed transmission, for pruning
	nodeFree []int64 // per-node radio busy-until (one radio per node)
	csma     mac.CSMA
	noiseMW  float64
	floorMW  float64
	endChip  int64
	rx       *frame.Receiver
	live     int

	busyChips   int64
	lastBusyEnd int64
	txChips     int64
	jamFrames   int

	// cancelled flips once the run's context is done: the event loop stops
	// committing work and drains every flow coroutine instead.
	cancelled bool
}

// Run executes one closed-loop simulation. It is a pure function of cfg:
// the same configuration always produces the identical Result.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run under a context: the event loop checks ctx at every
// event, and on cancellation stops committing transmissions, resumes each
// blocked flow coroutine with nil receptions and a clock past the end of
// the run so its link layer fails fast, and returns ctx.Err() with no
// goroutine left behind. A nil error means the Result is complete and
// bit-identical to Run's.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	if cfg.Testbed == nil {
		return Result{}, fmt.Errorf("netsim: nil testbed")
	}
	if len(cfg.Flows) == 0 {
		return Result{}, fmt.Errorf("netsim: no flows")
	}
	if cfg.PacketBytes <= 0 || cfg.DurationSec <= 0 {
		return Result{}, fmt.Errorf("netsim: bad packet size %d or duration %v", cfg.PacketBytes, cfg.DurationSec)
	}
	maker, err := linkLayerMaker(cfg.LinkLayer)
	if err != nil {
		return Result{}, err
	}
	seen := map[int]bool{}
	for _, f := range cfg.Flows {
		if f.Sender < 0 || f.Sender >= testbed.NumSenders || f.Receiver < 0 || f.Receiver >= testbed.NumReceivers {
			return Result{}, fmt.Errorf("netsim: flow %v out of deployment bounds", f)
		}
		if seen[f.Sender] {
			return Result{}, fmt.Errorf("netsim: sender %d carries two flows (one radio per node)", f.Sender)
		}
		seen[f.Sender] = true
	}
	for _, j := range cfg.Jammers {
		if j.Sender < 0 || j.Sender >= testbed.NumSenders || seen[j.Sender] {
			return Result{}, fmt.Errorf("netsim: jammer node %d invalid or already a flow sender", j.Sender)
		}
		if j.Node.Model == nil {
			return Result{}, fmt.Errorf("netsim: jammer node %d has no traffic model", j.Sender)
		}
		seen[j.Sender] = true
	}

	e := &engine{
		cfg:      cfg,
		tb:       cfg.Testbed,
		base:     stats.NewRNG(cfg.Seed ^ 0xc105ed100f),
		msgs:     make(chan flowMsg),
		nodeFree: make([]int64, testbed.NumNodes),
		noiseMW:  radio.DBmToMW(cfg.Testbed.Params.NoiseFloorDBm),
		floorMW:  radio.DBmToMW(cfg.Testbed.Params.NoiseFloorDBm - interferenceFloorDB),
		endChip:  mac.ChipsPerSecond(cfg.DurationSec),
		rx:       frame.NewReceiver(phy.HardDecoder{}),
	}
	e.csma = mac.DefaultCSMA(radio.DBmToMW(cfg.Testbed.Params.CSThresholdDBm))
	e.csma.Enabled = cfg.CarrierSense
	heap.Init(&e.queue)

	// Start each flow coroutine in turn, waiting for its first yield before
	// starting the next so startup order is deterministic.
	flows := make([]*flowProc, len(cfg.Flows))
	for i, f := range cfg.Flows {
		fl := &flowProc{
			id:     i,
			cfg:    f,
			eng:    e,
			resume: make(chan *frame.Reception),
			res:    FlowResult{Flow: f},
		}
		src := uint16(f.Sender)
		dst := uint16(testbed.NumSenders + f.Receiver)
		fwd := &engineLink{fl: fl, from: int(src), to: int(dst)}
		rev := &engineLink{fl: fl, from: int(dst), to: int(src)}
		fl.ll = maker(fwd, rev, src, dst, layerConfig(cfg))
		flows[i] = fl
		e.live++
		go fl.main()
		if !e.handleMsg(<-e.msgs) {
			e.live--
		}
	}
	// Seed the jammers.
	for i, j := range cfg.Jammers {
		node := j.Sender
		jp := &jamProc{
			id:   i,
			node: node,
			spec: j,
			rng:  e.base.Derive(uint64(node), tagJammer),
		}
		jp.arrivals = j.Node.Model.Arrivals(scenario.Params{
			OfferedBps:    cfg.OfferedBps,
			PacketBytes:   jamBytes(j),
			DurationChips: e.endChip,
		}, jp.rng.Split())
		e.scheduleJam(jp)
	}

	// Event loop: runs until every flow has completed its final transfer and
	// every jammer arrival inside the duration has fired.
	done := ctx.Done()
	for e.queue.Len() > 0 {
		if !e.cancelled && done != nil {
			select {
			case <-done:
				e.cancelled = true
			default:
			}
		}
		ev := heap.Pop(&e.queue).(*event)
		if e.cancelled {
			switch ev.kind {
			case evTx, evDeliver:
				e.abortFlow(ev.fl)
			case evJam:
				// Dropped: jammers are pure event sources, nothing to drain.
			}
			continue
		}
		switch ev.kind {
		case evTx:
			e.processTx(ev)
		case evDeliver:
			e.processDeliver(ev)
		case evJam:
			e.processJam(ev)
		}
	}
	if e.live != 0 {
		panic(fmt.Sprintf("netsim: event queue drained with %d flows still live", e.live))
	}
	if e.cancelled {
		return Result{}, ctx.Err()
	}

	res := Result{
		DurationSec: cfg.DurationSec,
		BusyChips:   e.busyChips,
		TxChips:     e.txChips,
		JamFrames:   e.jamFrames,
	}
	for _, fl := range flows {
		res.Flows = append(res.Flows, fl.res)
	}
	return res, nil
}

// layerConfig assembles the per-flow link layer knobs.
func layerConfig(cfg Config) LinkConfig {
	return LinkConfig{
		PacketBytes: cfg.PacketBytes,
		FragBytes:   cfg.FragBytes,
		MaxRounds:   cfg.MaxRounds,
		MaxAttempts: cfg.MaxAttempts,
	}
}

// jamBytes returns a jammer's burst payload size.
func jamBytes(j JammerNode) int {
	if j.Node.PacketBytes > 0 {
		return j.Node.PacketBytes
	}
	return 40
}

// push enqueues an event, stamping the FIFO tie-break sequence.
func (e *engine) push(ev *event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.queue, ev)
}

// handleMsg absorbs one coroutine yield, enqueueing the flow's transmit
// request. It returns false when the flow announced completion.
func (e *engine) handleMsg(m flowMsg) bool {
	if m.done {
		return false
	}
	e.push(&event{t: m.fl.now, kind: evTx, fl: m.fl})
	return true
}

// abortFlow winds one flow down after cancellation: the coroutine is
// blocked in Transmit (evTx: nothing committed yet; evDeliver: the frame is
// on the timeline but synthesis is skipped), so resume it with a nil
// reception and a clock past the end of the run. Its link layer treats the
// nil as a loss and fails the transfer after its bounded attempts — each
// retry is one more event through this same path — and the main loop then
// sees the clock expired and exits. No flow goroutine outlives RunContext.
func (e *engine) abortFlow(fl *flowProc) {
	if fl.now < e.endChip {
		fl.now = e.endChip
	}
	fl.resume <- nil
	if !e.handleMsg(<-e.msgs) {
		e.live--
	}
}

// scheduleJam enqueues a jammer's next arrival, dropping arrivals past the
// end of the run.
func (e *engine) scheduleJam(jp *jamProc) {
	t := jp.arrivals.Next()
	if t >= e.endChip {
		return
	}
	e.push(&event{t: t, kind: evJam, jam: jp})
}

// busyMW returns the total received power (noise included) at a node from
// every committed transmission active at time t, excluding the node's own.
func (e *engine) busyMW(node int, t int64) float64 {
	total := e.noiseMW
	for i := e.prune; i < len(e.txs); i++ {
		tx := &e.txs[i]
		if tx.start > t {
			break
		}
		if tx.end() <= t || tx.node == node {
			continue
		}
		total += radio.DBmToMW(e.tb.NodeGainDBm(tx.node, node))
	}
	return total
}

// advancePrune moves the pruning frontier. Queries are issued at
// nondecreasing event times, and the widest look-back any query performs is
// a delivery's synthesis window — at most maxAir+margin chips before now —
// so a transmission whose end (bounded by start+maxAir) precedes that
// horizon can never be consulted again.
func (e *engine) advancePrune(now int64) {
	for e.prune < len(e.txs) && e.txs[e.prune].start+e.maxAir < now-e.maxAir-windowMarginChips {
		e.txs[e.prune].chips = nil // never consulted again; release the buffer
		e.prune++
	}
}

// processTx handles a flow's transmit request: radio availability, carrier
// sense, then commit + delivery scheduling.
func (e *engine) processTx(ev *event) {
	fl := ev.fl
	t := ev.t
	e.advancePrune(t)
	// One radio per node: wait out the node's own in-flight transmission
	// (several flows can share a receiver node, whose feedback frames queue).
	if free := e.nodeFree[fl.req.from]; free > t {
		e.push(&event{t: free, kind: evTx, fl: fl, try: ev.try})
		return
	}
	if e.csma.Enabled && ev.try < e.csma.MaxDefers {
		if e.busyMW(fl.req.from, t) >= e.csma.ThresholdMW {
			rng := e.base.Derive(uint64(fl.req.from), uint64(t), tagCSMA)
			backoff := 1 + int64(rng.Float64()*float64(e.csma.MaxBackoffChips))
			e.push(&event{t: t + backoff, kind: evTx, fl: fl, try: ev.try + 1})
			return
		}
	}
	idx := e.commit(fl.req.from, t, fl.req.frame.AirChips())
	e.push(&event{t: e.txs[idx].end(), kind: evDeliver, fl: fl, tx: idx})
}

// processJam handles a jammer arrival: reactive jammers fire only into a
// busy channel; none of them back off.
func (e *engine) processJam(ev *event) {
	jp := ev.jam
	t := ev.t
	e.advancePrune(t)
	if free := e.nodeFree[jp.node]; free > t {
		// The jammer's own previous burst is still on the air; this arrival
		// is absorbed (its poll found the radio busy).
		e.scheduleJam(jp)
		return
	}
	fire := true
	if jp.spec.Node.Reactive {
		fire = e.busyMW(jp.node, t) >= e.csma.ThresholdMW
	} else if !jp.spec.Node.IgnoreCarrierSense && e.csma.Enabled && e.busyMW(jp.node, t) >= e.csma.ThresholdMW {
		fire = false // a polite "jammer" (hostile workload) defers like anyone
	}
	if fire {
		payload := make([]byte, jamBytes(jp.spec))
		for i := range payload {
			payload[i] = byte(jp.rng.Intn(256))
		}
		f := frame.New(0xffff, uint16(jp.node), jp.seq, payload)
		jp.seq++
		e.commit(jp.node, t, f.AirChips())
		e.jamFrames++
	}
	e.scheduleJam(jp)
}

// commit places a transmission on the shared timeline and updates the
// airtime accounting. Commits happen in nondecreasing start order because a
// transmission always starts at the current event time.
func (e *engine) commit(node int, start int64, chips *bitutil.ChipWords) int {
	air := int64(chips.Len())
	e.txs = append(e.txs, airTx{node: node, start: start, length: air, chips: chips})
	e.nodeFree[node] = start + air
	if air > e.maxAir {
		e.maxAir = air
	}
	e.txChips += air
	busyFrom := start
	if e.lastBusyEnd > busyFrom {
		busyFrom = e.lastBusyEnd
	}
	if end := start + air; end > busyFrom {
		e.busyChips += end - busyFrom
		e.lastBusyEnd = end
	}
	return len(e.txs) - 1
}

// processDeliver synthesizes the destination's chip stream for one
// completed transmission and resumes the waiting flow with its reception.
// Every transmission overlapping this one is already committed: it must
// start before this one's end, and all earlier events have been processed.
func (e *engine) processDeliver(ev *event) {
	fl := ev.fl
	tx := &e.txs[ev.tx]
	rec := e.receive(tx, fl.req.to, fl.req.frame)
	// The node turns around before its next frame in the exchange.
	fl.now = tx.end() + mac.TurnaroundChips
	fl.resume <- rec
	if !e.handleMsg(<-e.msgs) {
		e.live--
	}
}

// receive runs the destination's receiver pipeline over the synthesis
// window of one transmission, returning the best header-verified reception
// of that frame, or nil.
func (e *engine) receive(tx *airTx, to int, sent frame.Frame) *frame.Reception {
	// Half duplex: a node transmitting during any part of the frame's
	// airtime hears none of it.
	for i := e.prune; i < len(e.txs); i++ {
		other := &e.txs[i]
		if other.start >= tx.end() {
			break
		}
		if other.node == to && other.end() > tx.start {
			return nil
		}
	}
	origin := tx.start - windowMarginChips
	n := tx.chips.Len() + 2*windowMarginChips
	var overlaps []radio.Overlap
	for i := e.prune; i < len(e.txs); i++ {
		other := &e.txs[i]
		if other.start >= origin+int64(n) {
			break
		}
		if other.end() <= origin || other.node == to {
			continue
		}
		p := radio.DBmToMW(e.tb.NodeGainDBm(other.node, to))
		if p < e.floorMW {
			continue
		}
		overlaps = append(overlaps, radio.Overlap{
			Start:   int(other.start - origin),
			Chips:   other.chips,
			PowerMW: p,
		})
	}
	rng := e.base.Derive(uint64(to), uint64(tx.start), tagChannel)
	// The synthesizer's packed stream feeds the receiver directly — no
	// per-reception repack on the closed-loop path either.
	chips := radio.SynthesizeFading(rng, n, overlaps, e.noiseMW, radio.DefaultCoherenceChips)
	recs := e.rx.Receive(chips)
	// On a shared channel the window can contain other packets: keep only
	// receptions of the transmitted frame before picking the best.
	matched := recs[:0]
	for _, rec := range recs {
		if rec.HeaderOK && rec.Hdr.Src == sent.Hdr.Src && rec.Hdr.Seq == sent.Hdr.Seq &&
			rec.Hdr.Dst == sent.Hdr.Dst {
			matched = append(matched, rec)
		}
	}
	return frame.BestReception(matched)
}

// main is the flow coroutine body: open transfers until the clock runs out,
// driving the link layer which in turn yields every frame to the engine.
func (fl *flowProc) main() {
	e := fl.eng
	payloadRng := e.base.Derive(uint64(fl.id), tagPayload)
	var arrivals scenario.Arrivals
	if e.cfg.Traffic != nil {
		arrivals = e.cfg.Traffic.Arrivals(scenario.Params{
			OfferedBps:    e.cfg.OfferedBps,
			PacketBytes:   e.cfg.PacketBytes,
			DurationChips: e.endChip,
		}, payloadRng.Split())
	}
	appBytes := fl.ll.AppBytesPerPacket(e.cfg.PacketBytes)
	for {
		if arrivals != nil {
			t := arrivals.Next()
			if t > fl.now {
				fl.now = t // idle until the next packet arrives
			}
		}
		if fl.now >= e.endChip {
			break
		}
		payload := make([]byte, appBytes)
		for i := range payload {
			payload[i] = byte(payloadRng.Intn(256))
		}
		delivered, st, err := fl.ll.Transfer(payload)
		fl.res.Transfers++
		if err != nil {
			fl.res.Failures++
		}
		fl.res.DeliveredAppBytes += delivered
		fl.res.Air.add(st)
	}
	e.msgs <- flowMsg{fl: fl, done: true}
}
