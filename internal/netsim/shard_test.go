package netsim

import (
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"

	"ppr/internal/mac"
	"ppr/internal/radio"
	"ppr/internal/scenario"
	"ppr/internal/topo"
)

// meshTopo builds a 4-cell city topology: cells 2000 ft apart (≈21 dB past
// the audibility floor at the default exponent, >5σ of shadowing) so each
// dense cell is guaranteed to be its own interference domain.
func meshTopo(t *testing.T, cellsX, cellsY, perCell int) *topo.Topology {
	t.Helper()
	tp, err := topo.CellGrid(cellsX, cellsY, perCell, 2000, 25, radio.DefaultParams(), 42)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// cellFlows pairs up adjacent nodes inside every cell: node 2k sends to
// node 2k+1.
func cellFlows(tp *topo.Topology, perCell int) []Flow {
	var flows []Flow
	for base := 0; base < tp.NumNodes(); base += perCell {
		for k := 0; k+1 < perCell; k += 2 {
			flows = append(flows, Flow{Sender: base + k, Receiver: base + k + 1})
		}
	}
	return flows
}

// TestShardWorkerInvariance is the determinism contract of the tentpole:
// on a topology with four disjoint interference domains (plus a jammer),
// the sharded engine must produce bit-identical results for every worker
// count — and bit-identical to the single merged event queue, the
// pre-sharding reference.
func TestShardWorkerInvariance(t *testing.T) {
	const perCell = 5 // odd: node 4 of each cell carries no flow
	tp := meshTopo(t, 2, 2, perCell)
	cfg := Config{
		Topo:         tp,
		Flows:        cellFlows(tp, perCell),
		PacketBytes:  250,
		DurationSec:  0.05,
		CarrierSense: true,
		Seed:         7,
		Jammers: []JammerNode{{
			Sender: 4, // the flow-less node of cell 0
			Node: scenario.Node{
				Model:              scenario.Jammer{PeriodChips: 9_000, BurstBytes: 60, JitterChips: 500},
				PacketBytes:        60,
				IgnoreCarrierSense: true,
			},
		}},
	}
	ref := cfg
	ref.SingleQueue = true
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	if want.Domains != 4 {
		t.Fatalf("expected 4 interference domains, engine found %d", want.Domains)
	}
	if want.JamFrames == 0 {
		t.Fatal("jammer never fired — the test exercises no jam path")
	}
	delivered := 0
	for _, fr := range want.Flows {
		delivered += fr.DeliveredAppBytes
	}
	if delivered == 0 {
		t.Fatal("nothing delivered — the test exercises no data path")
	}
	for _, workers := range []int{1, 2, 3, 8} {
		got := cfg
		got.Workers = workers
		res, err := Run(got)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, want) {
			t.Errorf("workers=%d diverges from the single-queue reference", workers)
		}
	}
}

// TestShardSingleDomainDegenerate: a fully-connected topology collapses to
// one shard, and must still match the single-queue engine for any worker
// count — the degenerate case where sharding buys nothing but must cost
// nothing.
func TestShardSingleDomainDegenerate(t *testing.T) {
	tp, err := topo.Grid(3, 2, 12, radio.DefaultParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Topo:         tp,
		Flows:        []Flow{{Sender: 0, Receiver: 1}, {Sender: 2, Receiver: 3}, {Sender: 4, Receiver: 5}},
		PacketBytes:  250,
		DurationSec:  0.05,
		CarrierSense: true,
		Seed:         9,
	}
	ref := cfg
	ref.SingleQueue = true
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	if want.Domains != 1 {
		t.Fatalf("12-ft grid split into %d domains", want.Domains)
	}
	for _, workers := range []int{1, 8} {
		got := cfg
		got.Workers = workers
		res, err := Run(got)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, want) {
			t.Errorf("workers=%d diverges on the single-domain topology", workers)
		}
	}
}

// TestFlowMergesDomains: a flow whose endpoints sit in mutually inaudible
// cells must pull both cells into one domain (its deliver events need one
// queue), even though no link above the floor connects them.
func TestFlowMergesDomains(t *testing.T) {
	tp := meshTopo(t, 2, 1, 2)
	base := Config{
		Topo:         tp,
		Flows:        []Flow{{Sender: 0, Receiver: 1}, {Sender: 2, Receiver: 3}},
		PacketBytes:  250,
		DurationSec:  0.02,
		CarrierSense: true,
		Seed:         5,
	}
	res, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Domains != 2 {
		t.Fatalf("intra-cell flows: %d domains, want 2", res.Domains)
	}
	cross := base
	cross.Flows = []Flow{{Sender: 0, Receiver: 2}}
	res, err = Run(cross)
	if err != nil {
		t.Fatal(err)
	}
	if res.Domains != 1 {
		t.Errorf("cross-cell flow: %d domains, want 1", res.Domains)
	}
	// The link is far below the audibility floor: the transfer must fail,
	// not deliver.
	if res.Flows[0].DeliveredAppBytes != 0 {
		t.Errorf("delivered %d bytes over a 2000-ft link", res.Flows[0].DeliveredAppBytes)
	}
	if res.Flows[0].Failures == 0 {
		t.Error("inaudible flow reported no failures")
	}
}

// TestBusyAccumulatorParity checks the satellite O(1) carrier-sense
// accumulator against the brute-force active-transmission scan it replaced,
// at every query of a contended, jammed run.
func TestBusyAccumulatorParity(t *testing.T) {
	var mu sync.Mutex
	queries := 0
	worst := 0.0
	busyParityCheck = func(acc, brute float64) {
		mu.Lock()
		defer mu.Unlock()
		queries++
		diff := math.Abs(acc - brute)
		if rel := diff / math.Max(acc, brute); rel > worst {
			worst = rel
		}
	}
	defer func() { busyParityCheck = nil }()

	tb := bed()
	cfg := Config{
		Testbed:      tb,
		Flows:        []Flow{bestFlow(tb, 0), bestFlow(tb, 1), bestFlow(tb, 4), bestFlow(tb, 12)},
		PacketBytes:  250,
		DurationSec:  0.1,
		CarrierSense: true,
		Seed:         3,
		Jammers: []JammerNode{{
			Sender: 9,
			Node: scenario.Node{
				Model:              scenario.Jammer{PeriodChips: 15_000, BurstBytes: 80, JitterChips: 2_000},
				PacketBytes:        80,
				IgnoreCarrierSense: true,
			},
		}},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if queries == 0 {
		t.Fatal("no carrier-sense queries issued")
	}
	if worst > 1e-9 {
		t.Errorf("accumulator drifted %.3g (relative) from the brute-force sum over %d queries", worst, queries)
	}
}

// TestEventHeapOrdering: the hand-rolled value heap must pop in exactly
// (t, kind, seq) order.
func TestEventHeapOrdering(t *testing.T) {
	var q []event
	seq := int64(0)
	push := func(tm int64, kind int8) {
		heapPush(&q, event{t: tm, seq: seq, kind: kind})
		seq++
	}
	// A deliberately adversarial mix: equal times across kinds, equal
	// (t, kind) resolved by push order.
	for i := 0; i < 200; i++ {
		push(int64((i*37)%50), int8(i%3))
	}
	var got []event
	for len(q) > 0 {
		got = append(got, heapPop(&q))
	}
	want := append([]event(nil), got...)
	sort.SliceStable(want, func(a, b int) bool { return want[a].before(want[b]) })
	if !reflect.DeepEqual(got, want) {
		t.Fatal("heap pop order violates (t, kind, seq)")
	}
	for i := 1; i < len(got); i++ {
		if got[i].before(got[i-1]) {
			t.Fatalf("pop %d out of order", i)
		}
	}
}

// TestEventHeapZeroAllocs pins the satellite GC win: once the backing
// slices have grown, steady-state pushes and pops of both engine heaps
// allocate nothing (container/heap boxed one event per push).
func TestEventHeapZeroAllocs(t *testing.T) {
	q := make([]event, 0, 256)
	act := make([]activeTx, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 128; i++ {
			heapPush(&q, event{t: int64((i * 31) % 64), seq: int64(i)})
			heapPush(&act, activeTx{end: int64((i * 17) % 64), idx: int32(i)})
		}
		for len(q) > 0 {
			heapPop(&q)
		}
		for len(act) > 0 {
			heapPop(&act)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state heap churn allocates %v per run, want 0", allocs)
	}
}

// fakeTopo is a Topology stub for validation tests.
type fakeTopo int

func (n fakeTopo) NumNodes() int                  { return int(n) }
func (fakeTopo) NodeGainDBm(from, to int) float64 { return -300 }
func (fakeTopo) RadioParams() radio.Params        { return radio.DefaultParams() }

func TestTopoConfigValidation(t *testing.T) {
	tp := meshTopo(t, 1, 1, 4)
	ok := Config{Topo: tp, Flows: []Flow{{Sender: 0, Receiver: 1}}, PacketBytes: 100, DurationSec: 0.01}
	if _, err := Run(ok); err != nil {
		t.Fatalf("baseline topo config rejected: %v", err)
	}
	jam := scenario.Node{Model: scenario.DefaultJammer()}
	bad := map[string]Config{
		"both deployments": func() Config { c := ok; c.Testbed = bed(); return c }(),
		"self flow":        func() Config { c := ok; c.Flows = []Flow{{Sender: 1, Receiver: 1}}; return c }(),
		"receiver range":   func() Config { c := ok; c.Flows = []Flow{{Sender: 0, Receiver: 4}}; return c }(),
		"sender range":     func() Config { c := ok; c.Flows = []Flow{{Sender: -1, Receiver: 1}}; return c }(),
		"dup sender":       func() Config { c := ok; c.Flows = []Flow{{0, 1}, {0, 2}}; return c }(),
		"jam on sender":    func() Config { c := ok; c.Jammers = []JammerNode{{Sender: 0, Node: jam}}; return c }(),
		"jam on receiver":  func() Config { c := ok; c.Jammers = []JammerNode{{Sender: 1, Node: jam}}; return c }(),
		"jam twice": func() Config {
			c := ok
			c.Jammers = []JammerNode{{Sender: 2, Node: jam}, {Sender: 2, Node: jam}}
			return c
		}(),
		"jam out of range": func() Config { c := ok; c.Jammers = []JammerNode{{Sender: 99, Node: jam}}; return c }(),
		"too many nodes": func() Config {
			c := ok
			c.Topo = fakeTopo(0x10000)
			c.Flows = []Flow{{Sender: 0, Receiver: 1}}
			return c
		}(),
	}
	for name, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestTestbedIsOneDomain: the paper's 100×50-ft office is far inside the
// ~316-ft audibility radius, so the classic deployment runs as a single
// shard and its results keep the pre-sharding union-occupancy semantics.
func TestTestbedIsOneDomain(t *testing.T) {
	res, err := Run(baseConfig(bed()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Domains != 1 {
		t.Errorf("testbed partitioned into %d domains", res.Domains)
	}
	if res.BusyChips > mac.ChipsPerSecond(res.DurationSec)+res.TxChips {
		t.Errorf("implausible busy accounting: busy=%d", res.BusyChips)
	}
}
