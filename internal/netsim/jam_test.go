package netsim

import (
	"reflect"
	"testing"

	"ppr/internal/frame"
	"ppr/internal/jam"
	"ppr/internal/obs"
	"ppr/internal/radio"
	"ppr/internal/scenario"
	"ppr/internal/stats"
	"ppr/internal/topo"
)

// TestNetsimStrategyParityWithLegacyJammers is the closed-loop acceptance
// gate for the strategy re-expression: a JammerNode driven by the registry
// periodic/reactive strategy must reproduce the legacy arrival-model
// jammer's Result bit for bit — same bursts, same payload draws, same
// delivery accounting.
func TestNetsimStrategyParityWithLegacyJammers(t *testing.T) {
	tb := bed()
	cases := []struct {
		name     string
		legacy   JammerNode
		strategy JammerNode
	}{
		{
			name: "periodic",
			legacy: JammerNode{Sender: 9, Node: scenario.Node{
				Model:              scenario.DefaultJammer(),
				PacketBytes:        scenario.DefaultJammer().BurstBytes,
				IgnoreCarrierSense: true,
			}},
			strategy: JammerNode{Sender: 9,
				Strategy:   mustStrategy(t, "periodic"),
				BurstBytes: scenario.DefaultJammer().BurstBytes,
				Node:       scenario.Node{IgnoreCarrierSense: true},
			},
		},
		{
			name: "reactive",
			legacy: JammerNode{Sender: 9, Node: scenario.Node{
				Model:              scenario.DefaultReactiveJammer(),
				PacketBytes:        scenario.DefaultReactiveJammer().BurstBytes,
				IgnoreCarrierSense: true,
				Reactive:           true,
			}},
			strategy: JammerNode{Sender: 9,
				Strategy:   mustStrategy(t, "reactive"),
				BurstBytes: scenario.DefaultReactiveJammer().BurstBytes,
				Node:       scenario.Node{IgnoreCarrierSense: true},
			},
		},
	}
	for _, tc := range cases {
		for _, seed := range []uint64{1, 7, 42} {
			cfgL := baseConfig(tb)
			cfgL.Seed = seed
			cfgL.Jammers = []JammerNode{tc.legacy}
			cfgS := cfgL
			cfgS.Jammers = []JammerNode{tc.strategy}
			resL, err := Run(cfgL)
			if err != nil {
				t.Fatal(err)
			}
			resS, err := Run(cfgS)
			if err != nil {
				t.Fatal(err)
			}
			if resL.JamFrames == 0 {
				t.Fatalf("%s seed %d: legacy jammer never fired", tc.name, seed)
			}
			if !reflect.DeepEqual(resL, resS) {
				t.Errorf("%s seed %d: strategy result diverges from legacy:\nlegacy   %+v\nstrategy %+v",
					tc.name, seed, resL, resS)
			}
		}
	}
}

func mustStrategy(t *testing.T, name string) jam.Strategy {
	t.Helper()
	s, err := jam.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// twoClusterTopo builds two audibility-isolated clusters, each with a
// jammer (j*), a sender (s*) and a receiver (r*), with pinned link budgets
// so the shape does not depend on the shadowing draw. It yields two
// interference domains — the sharding that worker invariance must not leak
// through.
func twoClusterTopo(t *testing.T) *topo.Topology {
	t.Helper()
	b := topo.NewBuilder(radio.DefaultParams(), 3)
	for i, x0 := range []float64{0, 5000} {
		names := [3]string{"j", "s", "r"}
		for k, n := range names {
			b.Node(n+string(rune('a'+i)), x0+float64(k)*20, 0)
		}
	}
	for _, c := range []string{"a", "b"} {
		b.LinkDBm("s"+c, "r"+c, -60)
		b.LinkDBm("j"+c, "s"+c, -62)
		b.LinkDBm("j"+c, "r"+c, -66)
	}
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// TestNetsimJamWorkerInvariance runs every registered strategy as jammers in
// a two-domain deployment under the merged single queue and under 1 and 4
// workers, on two channels, and requires bit-identical Results. This is the
// proof that strategy observations — per-channel busy power and the active
// transmission view, which in a merged queue come from a differently-shaped
// active heap — are canonicalized before the adversary sees them.
func TestNetsimJamWorkerInvariance(t *testing.T) {
	tp := twoClusterTopo(t)
	for _, name := range jam.Names() {
		base := Config{
			Topo:         tp,
			Flows:        []Flow{{Sender: 1, Receiver: 2}, {Sender: 4, Receiver: 5}},
			PacketBytes:  200,
			DurationSec:  0.25,
			CarrierSense: true,
			Seed:         11,
			NumChannels:  2,
			Jammers: []JammerNode{
				{Sender: 0, Strategy: mustStrategy(t, name), BurstBytes: 48,
					Node: scenario.Node{IgnoreCarrierSense: true}},
				{Sender: 3, Strategy: mustStrategy(t, name), BurstBytes: 48,
					Node: scenario.Node{IgnoreCarrierSense: true}},
			},
		}
		run := func(workers int, single bool) Result {
			cfg := base
			cfg.Workers = workers
			cfg.SingleQueue = single
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return res
		}
		ref := run(1, true)
		if ref.Domains < 2 {
			t.Fatalf("%s: expected >= 2 interference domains, got %d", name, ref.Domains)
		}
		for _, workers := range []int{1, 4} {
			if got := run(workers, false); !reflect.DeepEqual(ref, got) {
				t.Errorf("%s: %d-worker sharded result diverges from single queue:\nsingle  %+v\nsharded %+v",
					name, workers, ref, got)
			}
		}
	}
}

// fixedChannelJam is a test strategy: fire every period on one fixed channel.
type fixedChannelJam struct {
	period int64
	ch     uint8
}

func (f fixedChannelJam) Name() string { return "fixed-channel" }

func (f fixedChannelJam) Emitter(p jam.Params, rng *stats.RNG) jam.Emitter {
	return &fixedChannelEmitter{period: f.period, ch: f.ch}
}

type fixedChannelEmitter struct {
	next, period int64
	ch           uint8
}

func (e *fixedChannelEmitter) NextPoll() int64 {
	t := e.next
	e.next += e.period
	return t
}

func (e *fixedChannelEmitter) Poll(jam.Observation) jam.Burst {
	return jam.Burst{Fire: true, Channel: e.ch}
}

// TestChannelsAreOrthogonal pins the channel model: a jammer saturating
// channel 1 leaves flows on channel 0 with exactly the accounting of a
// jammer-free run, while the same jammer on channel 0 degrades them.
func TestChannelsAreOrthogonal(t *testing.T) {
	tb := bed()
	mk := func(jammers []JammerNode) Result {
		cfg := baseConfig(tb)
		cfg.NumChannels = 2
		cfg.LinkLayer = "packet-crc-arq"
		cfg.Jammers = jammers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	jamOn := func(ch uint8) []JammerNode {
		return []JammerNode{{Sender: 9,
			Strategy:   fixedChannelJam{period: 12_000, ch: ch},
			BurstBytes: 120,
			Node:       scenario.Node{IgnoreCarrierSense: true},
		}}
	}
	clean := mk(nil)
	offCh := mk(jamOn(1))
	onCh := mk(jamOn(0))
	if offCh.JamFrames == 0 || onCh.JamFrames == 0 {
		t.Fatal("fixed-channel jammer never fired")
	}
	if !reflect.DeepEqual(clean.Flows, offCh.Flows) {
		t.Errorf("jamming the other channel perturbed the flows:\nclean %+v\njam   %+v",
			clean.Flows, offCh.Flows)
	}
	if onCh.Flows[0].DeliveredAppBytes > clean.Flows[0].DeliveredAppBytes {
		t.Errorf("co-channel jamming delivered more (%d) than clean (%d)",
			onCh.Flows[0].DeliveredAppBytes, clean.Flows[0].DeliveredAppBytes)
	}
	if onCh.Flows[0].Air.RetxAirBytes+onCh.Flows[0].Air.FullResends <=
		clean.Flows[0].Air.RetxAirBytes+clean.Flows[0].Air.FullResends {
		t.Errorf("co-channel jamming caused no extra recovery work")
	}
}

// TestPowerDeltaWidensAudibility pins PowerDeltaDBm's mechanism: boosting a
// jammer's link budget grows the set of nodes that hear it (and only its
// outgoing rows), which is how a stronger adversary reaches more victims.
func TestPowerDeltaWidensAudibility(t *testing.T) {
	tb := bed()
	build := func(delta float64) *runState {
		cfg := baseConfig(tb)
		cfg.Jammers = []JammerNode{{Sender: 9,
			Strategy:      mustStrategy(t, "periodic"),
			PowerDeltaDBm: delta,
			Node:          scenario.Node{IgnoreCarrierSense: true},
		}}
		top, flows, jams, err := normalize(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return newRunState(cfg, top, flows, jams)
	}
	plain := build(0)
	boosted := build(25)
	jn := 9
	if len(boosted.heardBy[jn]) < len(plain.heardBy[jn]) {
		t.Errorf("+25 dB jammer heard by %d nodes, plain by %d — boost shrank audibility",
			len(boosted.heardBy[jn]), len(plain.heardBy[jn]))
	}
	// Every node that heard the plain jammer hears the boosted one ~316x
	// (25 dB) louder.
	want := radio.DBmToMW(25) / radio.DBmToMW(0)
	for i, v := range plain.heardBy[jn] {
		if boosted.heardBy[jn][i] != v {
			t.Fatalf("boosted audibility list reordered at %d", i)
		}
		ratio := boosted.heardByPw[jn][i] / plain.heardByPw[jn][i]
		if ratio < want*0.99 || ratio > want*1.01 {
			t.Fatalf("node %d hears the boosted jammer %.1fx louder, want ~%.1fx", v, ratio, want)
		}
	}
	for u := 0; u < plain.nn; u++ {
		if u == jn {
			continue
		}
		if !reflect.DeepEqual(plain.heardBy[u], boosted.heardBy[u]) ||
			!reflect.DeepEqual(plain.heardByPw[u], boosted.heardByPw[u]) {
			t.Fatalf("node %d's outgoing audibility changed with a jammer-only delta", u)
		}
	}
}

// TestJamDecisionZeroAllocs pins the strategy hot path's cost contract: with
// metrics disabled, building the observation and polling the emitter
// allocates nothing per decision.
func TestJamDecisionZeroAllocs(t *testing.T) {
	prev := obs.Default()
	obs.SetDefault(nil)
	defer obs.SetDefault(prev)

	tb := bed()
	cfg := baseConfig(tb)
	cfg.NumChannels = 3
	cfg.Jammers = []JammerNode{{Sender: 9,
		Strategy: mustStrategy(t, "learner"),
		Node:     scenario.Node{IgnoreCarrierSense: true},
	}}
	top, flows, jams, err := normalize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs := newRunState(cfg, top, flows, jams)
	s := newShard(rs, 0)
	s.addJam(jams[0])
	jp := s.jams[0]
	// Put real transmissions on the air so the observation has content.
	f := frame.New(1, 0, 0, make([]byte, 120))
	s.commit(flows[0].src, 0, 10, f.AirChips())
	s.commit(flows[0].dst, 1, 20, f.AirChips())
	pollAt := jp.em.NextPoll()
	allocs := testing.AllocsPerRun(200, func() {
		o := s.observe(jp.spec.node, pollAt)
		jp.em.Poll(o)
	})
	if allocs != 0 {
		t.Errorf("jam decision allocates %v per poll, want 0", allocs)
	}
}

// TestJammerValidation covers the new configuration errors.
func TestJammerValidation(t *testing.T) {
	tb := bed()
	ok := baseConfig(tb)
	strat := fixedChannelJam{period: 10_000, ch: 0}
	cases := map[string]Config{
		"strategy and model": func() Config {
			c := ok
			c.Jammers = []JammerNode{{Sender: 9, Strategy: strat,
				Node: scenario.Node{Model: scenario.DefaultJammer()}}}
			return c
		}(),
		"neither strategy nor model": func() Config {
			c := ok
			c.Jammers = []JammerNode{{Sender: 9}}
			return c
		}(),
		"too many channels": func() Config { c := ok; c.NumChannels = 300; return c }(),
		"negative channels": func() Config { c := ok; c.NumChannels = -1; return c }(),
	}
	for name, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Node.Jam counts as a strategy: a scenario overlay node drives a jammer.
	viaNode := ok
	viaNode.Jammers = []JammerNode{{Sender: 9,
		Node: scenario.Node{Jam: strat, PacketBytes: 60, IgnoreCarrierSense: true}}}
	res, err := Run(viaNode)
	if err != nil {
		t.Fatalf("Node.Jam strategy rejected: %v", err)
	}
	if res.JamFrames == 0 {
		t.Error("Node.Jam strategy never fired")
	}
}
