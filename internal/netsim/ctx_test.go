package netsim

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"ppr/internal/leakcheck"
	"ppr/internal/radio"
	"ppr/internal/testbed"
)

func ctxTestConfig() Config {
	tb := testbed.New(radio.DefaultParams(), 1)
	return Config{
		Testbed:      tb,
		Flows:        []Flow{{Sender: 0, Receiver: tb.BestReceiver(0)}, {Sender: 5, Receiver: tb.BestReceiver(5)}},
		PacketBytes:  250,
		DurationSec:  0.5,
		CarrierSense: true,
		Seed:         1,
	}
}

// TestRunContextMatchesRun: an uncancelled context changes nothing.
func TestRunContextMatchesRun(t *testing.T) {
	cfg := ctxTestConfig()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RunContext result diverges from Run")
	}
}

// TestRunContextCancelDrainsFlows cancels a run mid-flight and requires a
// prompt ctx.Err() return with every flow coroutine gone — the engine must
// resume each blocked link layer with nil receptions until it gives up
// rather than abandoning it on a channel send. The shared leak guard
// (stack-filtered, not a raw goroutine count) asserts the drain.
func TestRunContextCancelDrainsFlows(t *testing.T) {
	defer leakcheck.Check(t)()

	cfg := ctxTestConfig()
	cfg.DurationSec = 30 // long enough that cancellation lands mid-run
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, cfg)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunContext did not return after cancellation")
	}
}

// TestRunContextPreCancelled: cancellation before the first event still
// winds the already-started flow coroutines down cleanly.
func TestRunContextPreCancelled(t *testing.T) {
	defer leakcheck.Check(t)()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, ctxTestConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
