// Link-layer state machines for the closed-loop simulator. A LinkLayer
// drives one flow's reliable transfer over a pair of engine links; every
// frame it sends — data, feedback, acknowledgement, retransmission — costs
// real airtime on the shared channel. Three layers ship, mirroring the
// paper's Fig. 17 comparison:
//
//   - "pp-arq": the paper's protocol, internal/core/pparq unchanged — the
//     same state machine the single-link Fig. 16 experiment exercises, now
//     contending for the medium.
//   - "frag-crc-arq": the status-quo baseline the paper grants (Sec. 3.4):
//     the payload is fragment‖CRC32 repeated and the receiver banks every
//     fragment whose checksum verifies, but the link layer's retransmission
//     unit is still the whole packet — partial *retransmission* is exactly
//     the capability PP-ARQ adds (selective per-fragment repeat came later,
//     with ZipTx and Maranello). The receiver's bitmap feedback tells the
//     sender when everything has landed.
//   - "packet-crc-arq": the 802.11-style status quo: whole-packet CRC,
//     whole-packet retransmission until it verifies, positive ACKs only.
//
// New layers register like recovery schemes and scenarios do: implement
// LinkLayer, wrap a Maker, and RegisterLinkLayer from init.
package netsim

import (
	"fmt"
	"sort"

	"ppr/internal/baseline"
	"ppr/internal/core/pparq"
	"ppr/internal/crcutil"
	"ppr/internal/frame"
	"ppr/internal/schemes"
)

// LinkStats aggregates a link layer's per-transfer byte accounting
// (pparq.Stats without the per-response size samples).
type LinkStats struct {
	// DataAirBytes counts full data-frame transmissions.
	DataAirBytes int
	// RetxAirBytes counts retransmission frames (partial or full-copy,
	// depending on the layer).
	RetxAirBytes int
	// FeedbackAirBytes counts reverse-link feedback and ACK frames.
	FeedbackAirBytes int
	// Rounds totals feedback/retransmission rounds.
	Rounds int
	// FullResends counts whole-frame resends after acquisition failures.
	FullResends int
	// Misses counts SoftPHY misses the protocol caught (PP-ARQ only).
	Misses int
}

// TotalAirBytes sums every byte put on the air in both directions.
func (a LinkStats) TotalAirBytes() int {
	return a.DataAirBytes + a.RetxAirBytes + a.FeedbackAirBytes
}

// Merge accumulates another accumulator into a — the one place the field
// list lives for aggregation (the Fig. 17 experiment folds per-flow stats
// through it).
func (a *LinkStats) Merge(b LinkStats) {
	a.DataAirBytes += b.DataAirBytes
	a.RetxAirBytes += b.RetxAirBytes
	a.FeedbackAirBytes += b.FeedbackAirBytes
	a.Rounds += b.Rounds
	a.FullResends += b.FullResends
	a.Misses += b.Misses
}

func (a *LinkStats) add(st pparq.Stats) {
	a.Merge(LinkStats{
		DataAirBytes:     st.DataAirBytes,
		RetxAirBytes:     st.RetxAirBytes,
		FeedbackAirBytes: st.FeedbackAirBytes,
		Rounds:           st.Rounds,
		FullResends:      st.FullResends,
		Misses:           st.Misses,
	})
}

// LinkConfig carries the per-flow knobs a Maker receives.
type LinkConfig struct {
	// PacketBytes is the link-layer payload size per data packet.
	PacketBytes int
	// FragBytes is the fragmented-CRC fragment size; 0 means the paper's 50.
	FragBytes int
	// MaxRounds and MaxAttempts bound persistence; 0 means the PP-ARQ
	// defaults.
	MaxRounds, MaxAttempts int
	// NumChannels is the deployment's orthogonal channel count (>= 1);
	// channel-hopping layers cycle through it.
	NumChannels int
}

func (c LinkConfig) fill() LinkConfig {
	if c.FragBytes == 0 {
		c.FragBytes = schemes.DefaultParams().FragBytes
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 8
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 16
	}
	if c.NumChannels <= 0 {
		c.NumChannels = 1
	}
	return c
}

// LinkLayer is one flow's reliable-transfer state machine. Implementations
// own a pair of pparq.Links (forward for data and retransmissions, reverse
// for feedback) and must put every protocol byte through them — that is
// what makes the simulation closed-loop.
type LinkLayer interface {
	// Name is the layer's display name; Slug(Name()) is its registry key.
	Name() string
	// AppBytesPerPacket returns the application bytes one data packet of
	// linkPayloadBytes carries (fragmented CRC spends payload on per-
	// fragment checksums).
	AppBytesPerPacket(linkPayloadBytes int) int
	// Transfer delivers one application payload, returning the application
	// bytes the receiver verified (possibly partial on give-up) and the air
	// accounting. A transfer must transmit at least one frame, so simulated
	// time always advances.
	Transfer(app []byte) (deliveredAppBytes int, st pparq.Stats, err error)
}

// Maker builds a link layer over one flow's links. src and dst are the
// link-layer addresses frames carry.
type Maker func(fwd, rev pparq.Link, src, dst uint16, cfg LinkConfig) LinkLayer

type layerEntry struct {
	name  string
	maker Maker
}

var (
	layerRegistry = map[string]Maker{}
	layerOrdered  []layerEntry
)

func init() {
	RegisterLinkLayer("PP-ARQ", newPPARQ)
	RegisterLinkLayer("Frag-CRC ARQ", newFragARQ)
	RegisterLinkLayer("Packet CRC ARQ", newPacketARQ)
}

// RegisterLinkLayer adds a layer under schemes.Slug(name). Like the scheme
// and scenario registries it is for init-time use, not concurrent callers.
func RegisterLinkLayer(name string, mk Maker) {
	registerLayer(name, mk)
	layerOrdered = append(layerOrdered, layerEntry{name: name, maker: mk})
}

// RegisterAuxLinkLayer adds a layer that resolves by name but stays out of
// LinkLayers(): the paper's Fig. 17 comparison is defined over exactly the
// PP-ARQ/frag-CRC/packet-CRC trio, and auxiliary layers — the jamming
// countermeasures — must not silently widen it. Experiments opt into aux
// layers by naming them.
func RegisterAuxLinkLayer(name string, mk Maker) {
	registerLayer(name, mk)
}

func registerLayer(name string, mk Maker) {
	key := schemes.Slug(name)
	if key == "" {
		panic("netsim: link layer with empty name")
	}
	if _, dup := layerRegistry[key]; dup {
		panic(fmt.Sprintf("netsim: duplicate link layer %q", key))
	}
	layerRegistry[key] = mk
}

// linkLayerMaker resolves a registry name; "" means PP-ARQ.
func linkLayerMaker(name string) (Maker, error) {
	if name == "" {
		name = "pp-arq"
	}
	if mk, ok := layerRegistry[schemes.Slug(name)]; ok {
		return mk, nil
	}
	return nil, fmt.Errorf("netsim: unknown link layer %q (available: %v)", name, LinkLayerNames())
}

// LinkLayerNames lists the registered layer slugs, sorted.
func LinkLayerNames() []string {
	out := make([]string, 0, len(layerRegistry))
	for n := range layerRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LinkLayers lists the registered layer slugs in registration
// (presentation) order: the paper's comparison runs PP-ARQ first, then the
// baselines in decreasing sophistication.
func LinkLayers() []string {
	out := make([]string, 0, len(layerOrdered))
	for _, e := range layerOrdered {
		out = append(out, schemes.Slug(e.name))
	}
	return out
}

// ---- PP-ARQ (the paper's protocol) ----

type ppARQ struct {
	s *pparq.Sender
}

func newPPARQ(fwd, rev pparq.Link, src, dst uint16, cfg LinkConfig) LinkLayer {
	cfg = cfg.fill()
	return &ppARQ{s: pparq.NewSender(fwd, rev, src, dst, pparq.Config{
		MaxRounds:   cfg.MaxRounds,
		MaxAttempts: cfg.MaxAttempts,
	})}
}

func (l *ppARQ) Name() string { return "PP-ARQ" }

func (l *ppARQ) AppBytesPerPacket(linkPayloadBytes int) int { return linkPayloadBytes }

func (l *ppARQ) Transfer(app []byte) (int, pparq.Stats, error) {
	delivered, st, err := l.s.Transfer(app)
	if err != nil {
		// Give-up: the receiver still hands its checksum-verified symbols to
		// higher layers — partial packet delivery is the point of PPR, and
		// it mirrors the verified fragments the frag-CRC layer banks.
		return st.VerifiedSymbols * 4 / 8, st, err
	}
	return len(delivered), st, nil
}

// ---- Packet CRC ARQ (the status quo) ----

// packetARQ retransmits the whole frame until its packet CRC verifies at
// the receiver, which then returns a short positive ACK; a lost ACK costs
// another full data round (the receiver would deduplicate on seq).
type packetARQ struct {
	fwd, rev pparq.Link
	src, dst uint16
	seq      uint16
	cfg      LinkConfig
}

func newPacketARQ(fwd, rev pparq.Link, src, dst uint16, cfg LinkConfig) LinkLayer {
	return &packetARQ{fwd: fwd, rev: rev, src: src, dst: dst, cfg: cfg.fill()}
}

func (l *packetARQ) Name() string { return "Packet CRC ARQ" }

func (l *packetARQ) AppBytesPerPacket(linkPayloadBytes int) int { return linkPayloadBytes }

// ackBody is the tiny positive-acknowledgement control payload.
func ackBody(seq uint16) []byte {
	return []byte{pparq.TypeFeedback, byte(seq >> 8), byte(seq)}
}

func (l *packetARQ) Transfer(app []byte) (int, pparq.Stats, error) {
	var st pparq.Stats
	f := frame.New(l.dst, l.src, l.seq, app)
	l.seq++
	air := frame.AirBytes(len(app))
	delivered := false
	for attempt := 0; attempt < l.cfg.MaxAttempts; attempt++ {
		if attempt == 0 {
			st.DataAirBytes += air
		} else {
			st.RetxAirBytes += air
			st.FullResends++
		}
		st.Rounds++
		rec := l.fwd.Transmit(f)
		if rec == nil || !rec.HeaderOK || !rec.CRCOK {
			continue
		}
		delivered = true // the receiver has the packet from here on
		ack := frame.New(l.src, l.dst, f.Hdr.Seq, ackBody(f.Hdr.Seq))
		st.FeedbackAirBytes += frame.AirBytes(len(ack.Payload))
		if ackRec := l.rev.Transmit(ack); ackRec != nil && ackRec.HeaderOK && ackRec.CRCOK {
			return len(app), st, nil
		}
		// ACK lost: the sender times out and resends the data frame.
	}
	if delivered {
		// The receiver verified the packet even though the sender never saw
		// an ACK; application bytes were delivered.
		return len(app), st, nil
	}
	return 0, st, fmt.Errorf("%w: packet CRC never verified in %d attempts", pparq.ErrGiveUp, l.cfg.MaxAttempts)
}

// ---- Fragmented CRC ARQ (Sec. 3.4 baseline, closed loop) ----

// fragARQ lays the payload out as fragment‖CRC32 repeated (Sec. 3.4) over
// a packet-granular ARQ: every retransmission is the full frame, and the
// receiver accumulates verified fragments across copies until none are
// missing. Fragmentation salvages *delivery* — each copy contributes
// whatever fragments survived it — but not *retransmission*, which is the
// capability that separates PP-ARQ from every status-quo scheme.
type fragARQ struct {
	fwd, rev pparq.Link
	src, dst uint16
	seq      uint16
	cfg      LinkConfig
}

func newFragARQ(fwd, rev pparq.Link, src, dst uint16, cfg LinkConfig) LinkLayer {
	return &fragARQ{fwd: fwd, rev: rev, src: src, dst: dst, cfg: cfg.fill()}
}

func (l *fragARQ) Name() string { return "Frag-CRC ARQ" }

func (l *fragARQ) AppBytesPerPacket(linkPayloadBytes int) int {
	return baseline.AppCapacity(linkPayloadBytes, l.cfg.FragBytes)
}

// fragSpan returns fragment i's application byte range.
func (l *fragARQ) fragSpan(appLen, i int) (lo, hi int) {
	lo = i * l.cfg.FragBytes
	hi = lo + l.cfg.FragBytes
	if hi > appLen {
		hi = appLen
	}
	return lo, hi
}

// feedbackBody encodes the receiver's fragment bitmap: type, seq, fragment
// count, then one bit per still-missing fragment.
func fragFeedbackBody(seq uint16, nFrags int, missing []bool) []byte {
	body := []byte{pparq.TypeFeedback, byte(seq >> 8), byte(seq), byte(nFrags)}
	bits := make([]byte, (nFrags+7)/8)
	for i, m := range missing {
		if m {
			bits[i/8] |= 1 << (i % 8)
		}
	}
	return append(body, bits...)
}

// parseFragFeedback inverts fragFeedbackBody.
func parseFragFeedback(body []byte) (seq uint16, missing []bool, err error) {
	if len(body) < 4 || body[0] != pparq.TypeFeedback {
		return 0, nil, fmt.Errorf("fragARQ: malformed feedback")
	}
	seq = uint16(body[1])<<8 | uint16(body[2])
	nFrags := int(body[3])
	if len(body) < 4+(nFrags+7)/8 {
		return 0, nil, fmt.Errorf("fragARQ: truncated feedback bitmap")
	}
	missing = make([]bool, nFrags)
	for i := range missing {
		missing[i] = body[4+i/8]&(1<<(i%8)) != 0
	}
	return seq, missing, nil
}

// sendControl frames a control body and delivers it through pparq's shared
// reliable-delivery loop (retry until the peer verifies the packet CRC).
func (l *fragARQ) sendControl(link pparq.Link, body []byte, counter *int) (*frame.Reception, error) {
	f := frame.New(l.dst, l.src, l.seq, body)
	l.seq++
	return pparq.DeliverControl(link, f, l.cfg.MaxAttempts, counter)
}

func (l *fragARQ) Transfer(app []byte) (int, pparq.Stats, error) {
	var st pparq.Stats
	nFrags := (len(app) + l.cfg.FragBytes - 1) / l.cfg.FragBytes
	if nFrags > 255 {
		return 0, st, fmt.Errorf("fragARQ: %d fragments exceed the bitmap header", nFrags)
	}
	missing := make([]bool, nFrags)
	for i := range missing {
		missing[i] = true
	}
	deliveredBytes := func() int {
		n := 0
		for i, m := range missing {
			if !m {
				lo, hi := l.fragSpan(len(app), i)
				n += hi - lo
			}
		}
		return n
	}

	// score banks every fragment of a frame copy whose checksum verifies:
	// fragment i occupies its fixed slice of the encoded payload.
	score := func(rec *frame.Reception) {
		if rec == nil || !rec.HeaderOK {
			return
		}
		for i := range missing {
			if !missing[i] {
				continue
			}
			lo, hi := l.fragSpan(len(app), i)
			encLo := lo + i*baseline.FragOverhead
			encHi := hi + (i+1)*baseline.FragOverhead
			if encHi <= len(rec.PayloadBytes) {
				if _, ok := crcutil.Verify32(rec.PayloadBytes[encLo:encHi]); ok {
					missing[i] = false
				}
			}
		}
	}
	f := frame.New(l.dst, l.src, l.seq, baseline.EncodeFragmented(app, l.cfg.FragBytes))
	l.seq++
	air := frame.AirBytes(len(f.Payload))
	for attempt := 0; attempt < l.cfg.MaxAttempts; attempt++ {
		// The retransmission unit is the whole frame: the status-quo link
		// layer cannot resend less, however few fragments are still missing.
		if attempt == 0 {
			st.DataAirBytes += air
		} else {
			st.RetxAirBytes += air
		}
		st.Rounds++
		rec := l.fwd.Transmit(f)
		if rec == nil || !rec.HeaderOK {
			st.FullResends++
			continue
		}
		score(rec)
		// Receiver feedback: the missing-fragment bitmap, an ACK when empty.
		fbRec, err := l.sendControl(l.rev, fragFeedbackBody(f.Hdr.Seq, nFrags, missing), &st.FeedbackAirBytes)
		if err != nil {
			return deliveredBytes(), st, err
		}
		// The sender acts on the bitmap that crossed the channel (the control
		// frame is CRC-verified, so it matches what the receiver sent).
		_, senderMissing, err := parseFragFeedback(fbRec.PayloadBytes)
		if err != nil {
			return deliveredBytes(), st, err
		}
		still := false
		for _, m := range senderMissing {
			still = still || m
		}
		if !still {
			return len(app), st, nil
		}
	}
	return deliveredBytes(), st, fmt.Errorf("%w: fragments still missing after %d attempts", pparq.ErrGiveUp, l.cfg.MaxAttempts)
}
