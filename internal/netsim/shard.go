package netsim

import (
	"context"
	"fmt"

	"ppr/internal/bitutil"
	"ppr/internal/frame"
	"ppr/internal/jam"
	"ppr/internal/mac"
	"ppr/internal/phy"
	"ppr/internal/radio"
	"ppr/internal/scenario"
	"ppr/internal/stats"
)

// event kinds, in tie-break order: at equal times, deliveries resolve before
// new transmissions start (a frame beginning exactly at another's end does
// not overlap it).
const (
	evDeliver int8 = iota
	evTx
	evJam
)

// event is one scheduled engine step. Events are plain values on the heap's
// backing slice — no per-event allocation — and reference their flow,
// jammer and committed transmission by shard-local index.
type event struct {
	t    int64
	seq  int64 // FIFO tie-break within (t, kind); assigned at push
	kind int8
	try  int16 // CSMA defer count (evTx, evJam)
	fl   int32 // shard-local flow index (evTx, evDeliver)
	jam  int32 // shard-local jammer index (evJam)
	tx   int32 // committed transmission index (evDeliver)
}

// before is the event-queue ordering: time, then kind, then FIFO.
func (a event) before(b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.seq < b.seq
}

// activeTx tracks one committed transmission's expiry for the interference
// accumulator, drained in (end, commit index) order. The deterministic
// drain order — not just the set drained — is what keeps the accumulator's
// float operation sequence, and hence every carrier-sense decision,
// bit-identical between sharded and single-queue runs.
type activeTx struct {
	end int64
	idx int32
}

func (a activeTx) before(b activeTx) bool {
	if a.end != b.end {
		return a.end < b.end
	}
	return a.idx < b.idx
}

// heapPush inserts v into the value-typed binary min-heap *h. Together with
// heapPop it replaces container/heap, whose interface{} boxing allocated
// one event per push on the engine's hottest queue.
func heapPush[T interface{ before(T) bool }](h *[]T, v T) {
	q := append(*h, v)
	*h = q
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q[i].before(q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

// heapPop removes and returns the minimum of the value-typed heap *h.
func heapPop[T interface{ before(T) bool }](h *[]T) T {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	*h = q
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && q[r].before(q[l]) {
			c = r
		}
		if !q[c].before(q[i]) {
			break
		}
		q[i], q[c] = q[c], q[i]
		i = c
	}
	return top
}

// airTx is one committed transmission on the shared timeline. chips is
// released once the prune frontier passes the transmission (length carries
// the duration from then on), so a run's memory does not grow with
// simulated airtime.
type airTx struct {
	node   int // global node ID
	ch     uint8
	start  int64
	length int64 // airtime in chips
	chips  *bitutil.ChipWords
}

func (t *airTx) end() int64 { return t.start + t.length }

// txRequest is what a yielded flow asks the engine to do next.
type txRequest struct {
	from, to int // global node IDs
	ch       uint8
	frame    frame.Frame
}

// flowMsg is a coroutine yield: either the flow's next transmit request or
// its completion.
type flowMsg struct {
	fl   *flowProc
	done bool
}

// flowProc is one flow coroutine and its engine-side state.
type flowProc struct {
	spec    flowSpec
	idx     int32 // shard-local index
	sh      *shard
	ll      LinkLayer
	resume  chan *frame.Reception
	now     int64 // the flow's local clock
	req     txRequest
	res     FlowResult
	payload []byte // per-transfer buffer, refilled in place
}

// engineLink adapts one direction of a flow's hop to pparq.Link: Transmit
// yields the frame to the engine and blocks until the engine has carried it
// across the shared channel.
type engineLink struct {
	fl       *flowProc
	from, to int
	ch       uint8
}

// Transmit implements pparq.Link (the Link type every LinkLayer builds on).
func (l *engineLink) Transmit(f frame.Frame) *frame.Reception {
	l.fl.req = txRequest{from: l.from, to: l.to, ch: l.ch, frame: f}
	l.fl.sh.msgs <- flowMsg{fl: l.fl}
	return <-l.fl.resume
}

// ChannelSetter is the retuning seam countermeasure link layers use: both
// engine links a Maker receives implement it, so a layer can hop a flow's
// hop (data and feedback direction alike) to another channel between
// transmissions. Channels wrap modulo the deployment's channel count.
type ChannelSetter interface {
	SetChannel(ch int)
}

// SetChannel implements ChannelSetter. It is called from the flow's own
// coroutine, which runs exclusively while its shard's event loop is blocked,
// so no synchronization is needed.
func (l *engineLink) SetChannel(ch int) {
	nCh := l.fl.sh.rs.nCh
	ch %= nCh
	if ch < 0 {
		ch += nCh
	}
	l.ch = uint8(ch)
}

// jamProc is one jammer event source: either a legacy arrival-model jammer
// (arrivals set) or a strategy emitter (em set).
type jamProc struct {
	spec     jamSpec
	idx      int32 // shard-local index
	arrivals scenario.Arrivals
	em       jam.Emitter
	spanName string
	rng      *stats.RNG
	seq      uint16
	buf      []byte // burst payload buffer, refilled in place
}

// busyParityCheck, when set by a test, receives every carrier-sense query's
// incremental-accumulator and brute-force busy power (noise included, mW)
// so the satellite O(1) accumulator can be checked against the sum it
// replaced across an entire run.
var busyParityCheck func(accMW, bruteMW float64)

// shard is the discrete-event core of one interference domain (or, under
// SingleQueue, of the whole deployment). It owns its event queue, committed
// timeline, receiver pipeline and coroutines; all cross-shard state lives
// in runState at indices no other shard touches.
type shard struct {
	rs     *runState
	flows  []*flowProc
	jams   []*jamProc
	queue  []event
	seq    int64
	msgs   chan flowMsg
	txs    []airTx // committed transmissions, nondecreasing start
	prune  int     // txs[:prune] can no longer overlap the current time
	maxAir int64   // longest committed transmission, for pruning
	active []activeTx
	rx     *frame.Receiver
	live   int

	txChips   int64
	jamChips  int64
	jamFrames int

	// obs holds the shard's pre-resolved metric cells; the zero value (all
	// nil cells) is the disabled path — a nil check per site, 0 allocs.
	obs shardObs

	overlaps []radio.Overlap // receive() scratch, reused across windows

	// Strategy-jammer observation scratch, reused across polls (the
	// Observation contract says so); obsBusy is sized to the channel count
	// when the first strategy jammer binds.
	obsBusy []float64
	obsTxs  []jam.ActiveTx

	// cancelled flips once the run's context is done: the event loop stops
	// committing work and drains every flow coroutine instead.
	cancelled bool
}

func newShard(rs *runState, idx int) *shard {
	return &shard{
		rs:   rs,
		msgs: make(chan flowMsg),
		rx:   frame.NewReceiver(phy.HardDecoder{}),
		obs:  shardObsFor(rs.m, idx),
	}
}

// addFlow binds one flow coroutine (not yet started) to the shard.
func (s *shard) addFlow(spec flowSpec, maker Maker) {
	fl := &flowProc{
		spec:   spec,
		idx:    int32(len(s.flows)),
		sh:     s,
		resume: make(chan *frame.Reception),
		res:    FlowResult{Flow: spec.cfg},
	}
	src, dst := uint16(spec.src), uint16(spec.dst)
	fwd := &engineLink{fl: fl, from: spec.src, to: spec.dst}
	rev := &engineLink{fl: fl, from: spec.dst, to: spec.src}
	fl.ll = maker(fwd, rev, src, dst, layerConfig(s.rs.cfg))
	s.flows = append(s.flows, fl)
}

// addJam binds one jammer event source to the shard. Strategy jammers split
// their emitter RNG from the same per-node derived stream the legacy path
// splits its arrival model from, so a strategy that replicates an arrival
// model's draw order replays its timeline bit for bit.
func (s *shard) addJam(spec jamSpec) {
	jp := &jamProc{
		spec: spec,
		idx:  int32(len(s.jams)),
		rng:  s.rs.base.Derive(uint64(spec.node), tagJammer),
		buf:  make([]byte, jamBytes(spec.spec)),
	}
	if strat := jamStrategy(spec.spec); strat != nil {
		p := jam.Params{
			DurationChips: s.rs.endChip,
			BurstBytes:    jamBytes(spec.spec),
			ThresholdMW:   s.rs.csma.ThresholdMW,
			NoiseMW:       s.rs.noiseMW,
			NumChannels:   s.rs.nCh,
		}
		if pos, ok := s.rs.top.(interface{ Position(int) radio.Position }); ok {
			pt := pos.Position(spec.node)
			p.X, p.Y, p.HasPos = pt.X, pt.Y, true
		}
		jp.em = strat.Emitter(p, jp.rng.Split())
		jp.spanName = "jam " + strat.Name()
		if s.obsBusy == nil {
			s.obsBusy = make([]float64, s.rs.nCh)
		}
	} else {
		jp.spanName = "jam"
		jp.arrivals = spec.spec.Node.Model.Arrivals(scenario.Params{
			OfferedBps:    s.rs.cfg.OfferedBps,
			PacketBytes:   jamBytes(spec.spec),
			DurationChips: s.rs.endChip,
		}, jp.rng.Split())
	}
	s.jams = append(s.jams, jp)
}

// run executes the shard's event loop to completion: start each flow
// coroutine in turn (waiting for its first yield so startup order is
// deterministic), seed the jammers, then drain the queue.
func (s *shard) run(ctx context.Context) error {
	for _, fl := range s.flows {
		s.live++
		go fl.main()
		if !s.handleMsg(<-s.msgs) {
			s.live--
		}
	}
	for _, jp := range s.jams {
		s.scheduleJam(jp)
	}

	done := ctx.Done()
	for len(s.queue) > 0 {
		if !s.cancelled && done != nil {
			select {
			case <-done:
				s.cancelled = true
			default:
			}
		}
		ev := heapPop(&s.queue)
		s.obs.events.Inc()
		s.obs.localEvents++
		if s.cancelled {
			switch ev.kind {
			case evTx, evDeliver:
				s.abortFlow(s.flows[ev.fl])
			case evJam:
				// Dropped: jammers are pure event sources, nothing to drain.
			}
			continue
		}
		switch ev.kind {
		case evTx:
			s.processTx(ev)
		case evDeliver:
			s.processDeliver(ev)
		case evJam:
			s.processJam(ev)
		}
	}
	if s.live != 0 {
		panic(fmt.Sprintf("netsim: event queue drained with %d flows still live", s.live))
	}
	s.obs.finish()
	if s.cancelled {
		return ctx.Err()
	}
	return nil
}

// push enqueues an event, stamping the FIFO tie-break sequence.
func (s *shard) push(ev event) {
	ev.seq = s.seq
	s.seq++
	heapPush(&s.queue, ev)
	if len(s.queue) > s.obs.maxQueue {
		s.obs.maxQueue = len(s.queue)
	}
}

// handleMsg absorbs one coroutine yield, enqueueing the flow's transmit
// request. It returns false when the flow announced completion.
func (s *shard) handleMsg(m flowMsg) bool {
	if m.done {
		return false
	}
	s.push(event{t: m.fl.now, kind: evTx, fl: m.fl.idx, jam: -1, tx: -1})
	return true
}

// abortFlow winds one flow down after cancellation: the coroutine is
// blocked in Transmit (evTx: nothing committed yet; evDeliver: the frame is
// on the timeline but synthesis is skipped), so resume it with a nil
// reception and a clock past the end of the run. Its link layer treats the
// nil as a loss and fails the transfer after its bounded attempts — each
// retry is one more event through this same path — and the main loop then
// sees the clock expired and exits. No flow goroutine outlives RunContext.
func (s *shard) abortFlow(fl *flowProc) {
	if fl.now < s.rs.endChip {
		fl.now = s.rs.endChip
	}
	fl.resume <- nil
	if !s.handleMsg(<-s.msgs) {
		s.live--
	}
}

// scheduleJam enqueues a jammer's next arrival (or strategy poll), dropping
// instants past the end of the run. Both sources advance their stream here
// even when the resulting event is later absorbed, so the jammer's RNG
// consumption is a pure function of time.
func (s *shard) scheduleJam(jp *jamProc) {
	var t int64
	if jp.em != nil {
		t = jp.em.NextPoll()
	} else {
		t = jp.arrivals.Next()
	}
	if t >= s.rs.endChip {
		return
	}
	s.push(event{t: t, kind: evJam, fl: -1, jam: jp.idx, tx: -1})
}

// drainExpired retires every transmission that has ended by time t from the
// interference accumulator, in (end, commit) order. Where a node's
// contributor count hits zero its accumulator is pinned to exactly 0.0, so
// float cancellation error cannot accumulate across an idle channel — and
// does so identically whatever partitioning ran the node's domain.
func (s *shard) drainExpired(t int64) {
	rs := s.rs
	for len(s.active) > 0 && s.active[0].end <= t {
		at := heapPop(&s.active)
		tx := &s.txs[at.idx]
		u := tx.node
		base := int(tx.ch) * rs.nn
		nbrs := rs.heardBy[u]
		pws := rs.heardByPw[u]
		for i, v := range nbrs {
			rs.contrib[base+int(v)]--
			if rs.contrib[base+int(v)] == 0 {
				rs.busyAcc[base+int(v)] = 0
			} else {
				rs.busyAcc[base+int(v)] -= pws[i]
			}
		}
	}
}

// busyMW returns the total received power (noise included) at a node from
// every audible committed transmission active at time t, excluding the
// node's own. It reads the per-node accumulator maintained by commit and
// drainExpired — O(expired) amortized instead of the former
// O(active transmissions) scan per query.
func (s *shard) busyMW(node int, ch uint8, t int64) float64 {
	s.drainExpired(t)
	total := s.rs.noiseMW + s.rs.busyAcc[int(ch)*s.rs.nn+node]
	if busyParityCheck != nil {
		busyParityCheck(total, s.bruteBusyMW(node, ch, t))
	}
	return total
}

// bruteBusyMW is the replaced O(active) scan, kept as the parity reference
// for busyParityCheck.
func (s *shard) bruteBusyMW(node int, ch uint8, t int64) float64 {
	total := s.rs.noiseMW
	hears := s.rs.hearsPw[node]
	for i := s.prune; i < len(s.txs); i++ {
		tx := &s.txs[i]
		if tx.start > t {
			break
		}
		if tx.end() <= t || tx.node == node || tx.ch != ch {
			continue
		}
		if p, ok := hears[int32(tx.node)]; ok {
			total += p
		}
	}
	return total
}

// advancePrune moves the pruning frontier. Queries are issued at
// nondecreasing event times, and the widest look-back any query performs is
// a delivery's synthesis window — at most maxAir+margin chips before now —
// so a transmission whose end (bounded by start+maxAir) precedes that
// horizon can never be consulted again.
func (s *shard) advancePrune(now int64) {
	for s.prune < len(s.txs) && s.txs[s.prune].start+s.maxAir < now-s.maxAir-windowMarginChips {
		s.txs[s.prune].chips = nil // never consulted again; release the buffer
		s.prune++
	}
}

// processTx handles a flow's transmit request: radio availability, carrier
// sense, then commit + delivery scheduling.
func (s *shard) processTx(ev event) {
	fl := s.flows[ev.fl]
	t := ev.t
	s.advancePrune(t)
	// One radio per node: wait out the node's own in-flight transmission
	// (several flows can share a receiver node, whose feedback frames queue).
	if free := s.rs.nodeFree[fl.req.from]; free > t {
		s.push(event{t: free, kind: evTx, fl: ev.fl, try: ev.try, jam: -1, tx: -1})
		return
	}
	if s.rs.csma.Enabled && int(ev.try) < s.rs.csma.MaxDefers {
		if s.busyMW(fl.req.from, fl.req.ch, t) >= s.rs.csma.ThresholdMW {
			rng := s.rs.base.Derive(uint64(fl.req.from), uint64(t), tagCSMA)
			backoff := 1 + int64(rng.Float64()*float64(s.rs.csma.MaxBackoffChips))
			s.obs.csBusy.Inc()
			if lane := s.lane(fl.req.from); lane != nil {
				lane.Span("backoff", "csma", t, backoff, nil)
			}
			s.push(event{t: t + backoff, kind: evTx, fl: ev.fl, try: ev.try + 1, jam: -1, tx: -1})
			return
		}
		s.obs.csIdle.Inc()
	}
	idx := s.commit(fl.req.from, fl.req.ch, t, fl.req.frame.AirChips())
	if lane := s.lane(fl.req.from); lane != nil {
		lane.Span(fmt.Sprintf("tx f%d %d→%d", fl.spec.id, fl.req.from, fl.req.to),
			"tx", t, s.txs[idx].length, nil)
	}
	s.push(event{t: s.txs[idx].end(), kind: evDeliver, fl: ev.fl, jam: -1, tx: int32(idx)})
}

// processJam handles a jammer arrival: reactive jammers fire only into a
// busy channel; none of them back off.
func (s *shard) processJam(ev event) {
	jp := s.jams[ev.jam]
	t := ev.t
	s.advancePrune(t)
	if free := s.rs.nodeFree[jp.spec.node]; free > t {
		// The jammer's own previous burst is still on the air; this arrival
		// is absorbed (its poll found the radio busy). scheduleJam still
		// advances the jammer's stream, so absorbed and fired polls consume
		// RNG identically.
		s.scheduleJam(jp)
		return
	}
	var fire bool
	var ch uint8
	burstBytes := len(jp.buf)
	if jp.em != nil {
		// Strategy path: hand the emitter what it can sense and let it
		// decide. The observation never draws RNG, and the emitter draws in
		// observation-independent order, so the decision is reproducible for
		// any partitioning.
		b := jp.em.Poll(s.observe(jp.spec.node, t))
		fire = b.Fire
		ch = uint8(int(b.Channel) % s.rs.nCh)
		if b.Bytes > 0 {
			burstBytes = b.Bytes
			if burstBytes > frame.MaxPayload {
				burstBytes = frame.MaxPayload
			}
		}
		if fire && !jp.spec.spec.Node.IgnoreCarrierSense && s.rs.csma.Enabled &&
			s.obsBusy[ch] >= s.rs.csma.ThresholdMW {
			fire = false // a polite adversary defers like anyone
		}
	} else {
		fire = true
		if jp.spec.spec.Node.Reactive {
			fire = s.busyMW(jp.spec.node, 0, t) >= s.rs.csma.ThresholdMW
		} else if !jp.spec.spec.Node.IgnoreCarrierSense && s.rs.csma.Enabled && s.busyMW(jp.spec.node, 0, t) >= s.rs.csma.ThresholdMW {
			fire = false // a polite "jammer" (hostile workload) defers like anyone
		}
	}
	if fire {
		if burstBytes != len(jp.buf) {
			if burstBytes <= cap(jp.buf) {
				jp.buf = jp.buf[:burstBytes]
			} else {
				jp.buf = make([]byte, burstBytes)
			}
		}
		payload := jp.buf
		for i := range payload {
			payload[i] = byte(jp.rng.Intn(256))
		}
		f := frame.New(0xffff, uint16(jp.spec.node), jp.seq, payload)
		jp.seq++
		idx := s.commit(jp.spec.node, ch, t, f.AirChips())
		s.jamFrames++
		s.jamChips += s.txs[idx].length
		s.obs.jams.Inc()
		if s.obs.jamChips != nil {
			s.obs.jamChips.Add(s.txs[idx].length)
		}
		if lane := s.lane(jp.spec.node); lane != nil {
			lane.Span(jp.spanName, "jam", t, s.txs[idx].length, nil)
		}
	}
	s.scheduleJam(jp)
}

// observe builds a strategy jammer's view of the channel at time t in the
// shard's reusable scratch: per-channel busy power (noise included, own
// emissions excluded — the radio-free check already ran) and the audible
// transmissions on the air. The active heap's internal layout depends on the
// domain partitioning, so the view is insertion-sorted into (start, src)
// order before the strategy sees it — observations, like everything else,
// must not depend on how the run was sharded.
func (s *shard) observe(node int, t int64) jam.Observation {
	rs := s.rs
	s.drainExpired(t)
	for ch := 0; ch < rs.nCh; ch++ {
		s.obsBusy[ch] = rs.noiseMW + rs.busyAcc[ch*rs.nn+node]
	}
	txs := s.obsTxs[:0]
	hears := rs.hearsPw[node]
	for _, a := range s.active {
		tx := &s.txs[a.idx]
		if tx.start > t || tx.node == node {
			continue
		}
		if _, ok := hears[int32(tx.node)]; !ok {
			continue
		}
		txs = append(txs, jam.ActiveTx{Src: tx.node, Start: tx.start, End: tx.end(), Channel: tx.ch})
	}
	for i := 1; i < len(txs); i++ {
		for j := i; j > 0 && (txs[j].Start < txs[j-1].Start ||
			(txs[j].Start == txs[j-1].Start && txs[j].Src < txs[j-1].Src)); j-- {
			txs[j], txs[j-1] = txs[j-1], txs[j]
		}
	}
	s.obsTxs = txs // retain grown capacity for the next poll
	return jam.Observation{Chip: t, Busy: s.obsBusy, Txs: txs}
}

// commit places a transmission on the shared timeline and updates the
// airtime and interference accounting. Commits happen in nondecreasing
// start order because a transmission always starts at the current event
// time. The transmission's power lands on exactly its precomputed audible
// neighbors — the audibility-graph pruning: everything below the synthesis
// floor is skipped here just as synthesis itself would skip it.
func (s *shard) commit(node int, ch uint8, start int64, chips *bitutil.ChipWords) int {
	rs := s.rs
	air := int64(chips.Len())
	idx := len(s.txs)
	s.txs = append(s.txs, airTx{node: node, ch: ch, start: start, length: air, chips: chips})
	rs.nodeFree[node] = start + air
	if air > s.maxAir {
		s.maxAir = air
	}
	s.txChips += air
	base := int(ch) * rs.nn
	nbrs := rs.heardBy[node]
	pws := rs.heardByPw[node]
	for i, v := range nbrs {
		rs.busyAcc[base+int(v)] += pws[i]
		rs.contrib[base+int(v)]++
	}
	heapPush(&s.active, activeTx{end: start + air, idx: int32(idx)})
	// Union channel occupancy, accounted per domain so SingleQueue and
	// sharded runs agree chip for chip.
	d := rs.domainOf[node]
	busyFrom := start
	if rs.domLast[d] > busyFrom {
		busyFrom = rs.domLast[d]
	}
	if end := start + air; end > busyFrom {
		rs.domBusy[d] += end - busyFrom
		rs.domLast[d] = end
	}
	s.obs.commits.Inc()
	if s.obs.collisions != nil {
		// Retrospective collision check: does this commit overlap any other
		// transmission still on the air? The scan is non-destructive —
		// draining s.active here would reorder the interference
		// accumulator's float operations and break the bit-identical parity
		// between sharded and single-queue runs.
		for _, a := range s.active {
			if a.idx != int32(idx) && a.end > start {
				s.obs.collisions.Inc()
				break
			}
		}
	}
	return idx
}

// processDeliver synthesizes the destination's chip stream for one
// completed transmission and resumes the waiting flow with its reception.
// Every transmission overlapping this one is already committed: it must
// start before this one's end, and all earlier events have been processed.
func (s *shard) processDeliver(ev event) {
	fl := s.flows[ev.fl]
	tx := &s.txs[ev.tx]
	rec := s.receive(tx, fl.req.to, fl.req.frame)
	if rec != nil {
		s.obs.rxOK.Inc()
	} else {
		s.obs.rxLost.Inc()
	}
	if lane := s.lane(fl.req.to); lane != nil {
		if rec != nil {
			lane.Instant(fmt.Sprintf("rx ok f%d @%d", fl.spec.id, fl.req.to), "rx", tx.end(), nil)
		} else {
			lane.Instant(fmt.Sprintf("rx lost f%d @%d", fl.spec.id, fl.req.to), "rx", tx.end(), nil)
		}
	}
	// The node turns around before its next frame in the exchange.
	fl.now = tx.end() + mac.TurnaroundChips
	fl.resume <- rec
	if !s.handleMsg(<-s.msgs) {
		s.live--
	}
}

// receive runs the destination's receiver pipeline over the synthesis
// window of one transmission, returning the best header-verified reception
// of that frame, or nil. Interferers come from the precomputed audible set
// — the same floor cut the pre-sharding engine applied per overlap.
func (s *shard) receive(tx *airTx, to int, sent frame.Frame) *frame.Reception {
	// Half duplex: a node transmitting during any part of the frame's
	// airtime hears none of it.
	for i := s.prune; i < len(s.txs); i++ {
		other := &s.txs[i]
		if other.start >= tx.end() {
			break
		}
		if other.node == to && other.end() > tx.start {
			return nil
		}
	}
	origin := tx.start - windowMarginChips
	n := tx.chips.Len() + 2*windowMarginChips
	hears := s.rs.hearsPw[to]
	overlaps := s.overlaps[:0]
	for i := s.prune; i < len(s.txs); i++ {
		other := &s.txs[i]
		if other.start >= origin+int64(n) {
			break
		}
		// A transmission on another orthogonal channel neither interferes
		// nor delivers; half duplex above already spanned all channels.
		if other.end() <= origin || other.node == to || other.ch != tx.ch {
			continue
		}
		p, ok := hears[int32(other.node)]
		if !ok {
			continue // below the audibility floor at this receiver
		}
		overlaps = append(overlaps, radio.Overlap{
			Start:   int(other.start - origin),
			Chips:   other.chips,
			PowerMW: p,
		})
	}
	s.overlaps = overlaps // retain grown capacity for the next window
	rng := s.rs.base.Derive(uint64(to), uint64(tx.start), tagChannel)
	// The synthesizer's packed stream feeds the receiver directly — no
	// per-reception repack on the closed-loop path either.
	chips := radio.SynthesizeFading(rng, n, overlaps, s.rs.noiseMW, radio.DefaultCoherenceChips)
	recs := s.rx.Receive(chips)
	// On a shared channel the window can contain other packets: keep only
	// receptions of the transmitted frame before picking the best.
	matched := recs[:0]
	for _, rec := range recs {
		if rec.HeaderOK && rec.Hdr.Src == sent.Hdr.Src && rec.Hdr.Seq == sent.Hdr.Seq &&
			rec.Hdr.Dst == sent.Hdr.Dst {
			matched = append(matched, rec)
		}
	}
	return frame.BestReception(matched)
}

// main is the flow coroutine body: open transfers until the clock runs out,
// driving the link layer which in turn yields every frame to the engine.
func (fl *flowProc) main() {
	rs := fl.sh.rs
	payloadRng := rs.base.Derive(uint64(fl.spec.id), tagPayload)
	var arrivals scenario.Arrivals
	if rs.cfg.Traffic != nil {
		arrivals = rs.cfg.Traffic.Arrivals(scenario.Params{
			OfferedBps:    rs.cfg.OfferedBps,
			PacketBytes:   rs.cfg.PacketBytes,
			DurationChips: rs.endChip,
		}, payloadRng.Split())
	}
	appBytes := fl.ll.AppBytesPerPacket(rs.cfg.PacketBytes)
	fl.payload = make([]byte, appBytes)
	for {
		if arrivals != nil {
			t := arrivals.Next()
			if t > fl.now {
				fl.now = t // idle until the next packet arrives
			}
		}
		if fl.now >= rs.endChip {
			break
		}
		payload := fl.payload
		for i := range payload {
			payload[i] = byte(payloadRng.Intn(256))
		}
		delivered, st, err := fl.ll.Transfer(payload)
		fl.res.Transfers++
		if err != nil {
			fl.res.Failures++
		}
		fl.res.DeliveredAppBytes += delivered
		fl.res.Air.add(st)
		fl.sh.obs.recordTransfer(rs.m, fl, delivered, st, err != nil)
	}
	fl.sh.msgs <- flowMsg{fl: fl, done: true}
}
