package netsim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"ppr/internal/obs"
)

// TestMetricsDoNotChangeResults pins the observability contract: enabling
// the registry and the tracer is purely observational — the Result is
// bit-identical to a disabled run.
func TestMetricsDoNotChangeResults(t *testing.T) {
	tb := bed()
	cfg := baseConfig(tb)
	cfg.Flows = []Flow{bestFlow(tb, 0), bestFlow(tb, 1)}

	obs.SetDefault(nil)
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	old := obs.Default()
	defer obs.SetDefault(old)
	obs.SetDefault(obs.New())
	cfg.Tracer = obs.NewTracer()
	instrumented, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tracer = nil

	if !reflect.DeepEqual(plain, instrumented) {
		t.Error("enabling metrics+tracing changed the simulation result")
	}
}

// TestMetricsCounters sanity-checks the counters a metrics-enabled run
// reports against the Result's own accounting.
func TestMetricsCounters(t *testing.T) {
	old := obs.Default()
	defer obs.SetDefault(old)
	r := obs.New()
	obs.SetDefault(r)

	tb := bed()
	cfg := baseConfig(tb)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	snap := r.Snapshot()
	c := snap.Counters
	if c["netsim.events"] <= 0 {
		t.Errorf("netsim.events = %d, want > 0", c["netsim.events"])
	}
	if c["netsim.commits"] <= 0 {
		t.Errorf("netsim.commits = %d, want > 0", c["netsim.commits"])
	}
	if got, want := c["netsim.transfers"], int64(res.Flows[0].Transfers); got != want {
		t.Errorf("netsim.transfers = %d, want %d", got, want)
	}
	if got, want := c["netsim.delivered_bytes"], int64(res.AggregateAppBytes()); got != want {
		t.Errorf("netsim.delivered_bytes = %d, want %d", got, want)
	}
	flowName := fmt.Sprintf("netsim.flow.s0_r%d.delivered_bytes", cfg.Flows[0].Receiver)
	if got, want := c[flowName], int64(res.Flows[0].DeliveredAppBytes); got != want {
		t.Errorf("%s = %d, want %d", flowName, got, want)
	}
	// Carrier sense ran: every commit was preceded by an idle verdict.
	if c["netsim.cs_idle"] < c["netsim.commits"]-int64(res.JamFrames) {
		t.Errorf("cs_idle = %d < commits-jams = %d", c["netsim.cs_idle"], c["netsim.commits"]-int64(res.JamFrames))
	}
	if g := snap.Gauges["netsim.queue_peak"]; g <= 0 {
		t.Errorf("netsim.queue_peak = %d, want > 0", g)
	}
	h, ok := snap.Histograms["netsim.domain_events"]
	if !ok || h.Count <= 0 || h.Sum != c["netsim.events"] {
		t.Errorf("netsim.domain_events = %+v, want count>0 and sum == events (%d)", h, c["netsim.events"])
	}
}

// TestTracerRecordsTimeline checks a traced run emits a Perfetto-loadable
// document with the expected lane structure.
func TestTracerRecordsTimeline(t *testing.T) {
	old := obs.Default()
	defer obs.SetDefault(old)
	obs.SetDefault(nil) // tracing is independent of the metrics registry

	tb := bed()
	cfg := baseConfig(tb)
	tr := obs.NewTracer()
	cfg.Tracer = tr
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("traced run recorded no events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	var spans, instants, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	if spans == 0 || instants == 0 || meta == 0 {
		t.Errorf("trace missing event kinds: %d spans, %d instants, %d metadata", spans, instants, meta)
	}
}

// TestMetricsDisabledAllocs pins the disabled-path cost contract on the
// netsim hot loop shape: heap churn plus every shardObs site, with nil
// cells, allocates nothing.
func TestMetricsDisabledAllocs(t *testing.T) {
	obs.SetDefault(nil)
	var o shardObs // zero value = disabled instrumentation
	q := make([]event, 0, 256)
	act := make([]activeTx, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 128; i++ {
			heapPush(&q, event{t: int64((i * 31) % 64), seq: int64(i)})
			heapPush(&act, activeTx{end: int64((i * 17) % 64), idx: int32(i)})
			if len(q) > o.maxQueue {
				o.maxQueue = len(q)
			}
		}
		for len(q) > 0 {
			heapPop(&q)
			o.events.Inc()
			o.localEvents++
			o.commits.Inc()
			o.csBusy.Inc()
			o.csIdle.Inc()
			o.rxOK.Inc()
			o.rxLost.Inc()
			o.jams.Inc()
		}
		for len(act) > 0 {
			heapPop(&act)
		}
		o.finish()
	})
	if allocs != 0 {
		t.Errorf("disabled instrumented loop allocates %v per run, want 0", allocs)
	}
}
