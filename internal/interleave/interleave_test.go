package interleave

import (
	"bytes"
	"testing"

	"ppr/internal/fec"
	"ppr/internal/stats"
)

func TestRoundTrip(t *testing.T) {
	rng := stats.NewRNG(1)
	for _, geom := range [][2]int{{1, 1}, {4, 8}, {16, 16}, {32, 5}} {
		b := New(geom[0], geom[1])
		for blocks := 1; blocks <= 3; blocks++ {
			data := make([]byte, b.Size()*blocks)
			for i := range data {
				data[i] = byte(rng.Intn(256))
			}
			got := b.Deinterleave(b.Interleave(data))
			if !bytes.Equal(got, data) {
				t.Fatalf("%dx%d x%d blocks: round trip failed", geom[0], geom[1], blocks)
			}
		}
	}
}

func TestInterleaveIsPermutation(t *testing.T) {
	b := New(8, 16)
	data := make([]byte, b.Size())
	for i := range data {
		data[i] = byte(i)
	}
	out := b.Interleave(data)
	seen := make([]bool, len(data))
	for _, v := range out {
		if seen[v] {
			t.Fatal("duplicate symbol after interleave")
		}
		seen[v] = true
	}
}

func TestBurstSpreading(t *testing.T) {
	// A contiguous channel burst of length ≤ rows must land ≥ rows apart
	// after deinterleaving: no two errors adjacent.
	b := New(16, 32)
	data := make([]byte, b.Size())
	tx := b.Interleave(data)
	// Burst of 16 symbols mid-stream.
	for i := 100; i < 116; i++ {
		tx[i] ^= 0xff
	}
	rx := b.Deinterleave(tx)
	var errPos []int
	for i, v := range rx {
		if v != 0 {
			errPos = append(errPos, i)
		}
	}
	if len(errPos) != 16 {
		t.Fatalf("%d errors after deinterleave, want 16", len(errPos))
	}
	for i := 1; i < len(errPos); i++ {
		if gap := errPos[i] - errPos[i-1]; gap < b.MaxSpreadBurst() {
			t.Fatalf("errors %d and %d only %d apart (rows=%d)", errPos[i-1], errPos[i], gap, b.rows)
		}
	}
}

func TestPad(t *testing.T) {
	b := New(4, 4)
	padded, orig := b.Pad(make([]byte, 21))
	if orig != 21 || len(padded) != 32 {
		t.Errorf("padded to %d (orig %d)", len(padded), orig)
	}
	exact, _ := b.Pad(make([]byte, 16))
	if len(exact) != 16 {
		t.Error("exact multiple should not pad")
	}
}

func TestGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 5)
}

func TestLengthPanics(t *testing.T) {
	b := New(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Interleave(make([]byte, 15))
}

// TestInterleavingRescuesConvolutionalCode quantifies the Sec. 8.3
// trade-off: a burst that defeats the K=7 code directly becomes correctable
// once interleaved deeply enough — and stays fatal when the interleaver is
// under-provisioned, the a-priori-knowledge problem the paper points out.
func TestInterleavingRescuesConvolutionalCode(t *testing.T) {
	rng := stats.NewRNG(2)
	payloadBits := make([]byte, 3000)
	for i := range payloadBits {
		payloadBits[i] = byte(rng.Intn(2))
	}
	coded := fec.Encode(payloadBits)

	run := func(ilv *Block, burstLen int) int {
		tx := append([]byte(nil), coded...)
		var origLen int
		if ilv != nil {
			tx, origLen = ilv.Pad(tx)
			tx = ilv.Interleave(tx)
		}
		// One contiguous burst of flips.
		lo := len(tx) / 3
		for i := lo; i < lo+burstLen && i < len(tx); i++ {
			tx[i] ^= 1
		}
		if ilv != nil {
			tx = ilv.Deinterleave(tx)[:origLen]
		}
		res, err := fec.Decode(tx)
		if err != nil {
			t.Fatal(err)
		}
		errs := 0
		for i := range payloadBits {
			if res.Bits[i] != payloadBits[i] {
				errs++
			}
		}
		return errs
	}

	const burst = 60
	direct := run(nil, burst)
	if direct == 0 {
		t.Fatal("a 60-bit burst should defeat the bare code")
	}
	deep := New(128, 64)
	if errs := run(&deep, burst); errs != 0 {
		t.Errorf("deep interleaver left %d errors for a %d-bit burst", errs, burst)
	}
	shallow := New(8, 64)
	if errs := run(&shallow, burst); errs == 0 {
		t.Error("under-provisioned interleaver unexpectedly corrected the burst")
	}
	t.Logf("burst %d: direct %d errors, deep interleave 0, shallow interleave >0", burst, direct)
}
