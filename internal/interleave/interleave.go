// Package interleave implements a block (row/column) interleaver, the
// technique the paper's related work discusses as complementary to partial
// packet recovery (Sec. 8.3): "techniques such as coding with interleaving
// spread the bursts of errors associated with collisions and deep fades
// across many codewords so that they can be corrected ... but not easy to
// implement, because it is necessary to know the channel conditions a
// priori in order to provision the amount of coding required".
//
// It is used by the ablation tests to quantify that trade-off against the
// convolutional code of internal/fec: interleaving converts a burst the
// code cannot correct into scattered errors it can — when (and only when)
// the interleaver depth was provisioned for the burst length, which is
// exactly the a-priori knowledge the paper says PPR avoids needing.
package interleave

import "fmt"

// Block is a rows×cols block interleaver over byte symbols: data is
// written row-major and read column-major, so a burst of length L in the
// channel is spread into single errors at least rows positions apart
// (when L ≤ rows).
type Block struct {
	rows, cols int
}

// New returns a rows×cols block interleaver. Both dimensions must be
// positive.
func New(rows, cols int) Block {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("interleave: invalid geometry %dx%d", rows, cols))
	}
	return Block{rows: rows, cols: cols}
}

// Size returns the block size rows·cols; Interleave and Deinterleave
// operate on exact multiples of it.
func (b Block) Size() int { return b.rows * b.cols }

// Interleave permutes data block by block. len(data) must be a multiple of
// Size().
func (b Block) Interleave(data []byte) []byte {
	return b.permute(data, true)
}

// Deinterleave inverts Interleave.
func (b Block) Deinterleave(data []byte) []byte {
	return b.permute(data, false)
}

func (b Block) permute(data []byte, forward bool) []byte {
	if len(data)%b.Size() != 0 {
		panic(fmt.Sprintf("interleave: length %d not a multiple of block size %d", len(data), b.Size()))
	}
	out := make([]byte, len(data))
	for blk := 0; blk < len(data); blk += b.Size() {
		for r := 0; r < b.rows; r++ {
			for c := 0; c < b.cols; c++ {
				rowMajor := blk + r*b.cols + c
				colMajor := blk + c*b.rows + r
				if forward {
					out[colMajor] = data[rowMajor]
				} else {
					out[rowMajor] = data[colMajor]
				}
			}
		}
	}
	return out
}

// Pad returns data extended with zeros to the next multiple of Size(),
// and the original length for truncation after deinterleaving.
func (b Block) Pad(data []byte) (padded []byte, origLen int) {
	origLen = len(data)
	rem := len(data) % b.Size()
	if rem == 0 {
		return data, origLen
	}
	padded = make([]byte, len(data)+b.Size()-rem)
	copy(padded, data)
	return padded, origLen
}

// MaxSpreadBurst returns the longest channel burst (in symbols) that the
// interleaver spreads into isolated single errors: its row count.
func (b Block) MaxSpreadBurst() int { return b.rows }
