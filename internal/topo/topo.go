// Package topo builds declarative radio topologies for the closed-loop
// simulator: named nodes at floor-plan positions, a full node×node link-gain
// matrix derived from the internal/radio propagation model, and per-link
// budget overrides for hand-crafted scenarios. It generalizes the paper's
// fixed 27-node testbed (internal/testbed) to city-scale deployments —
// grids, random scatters and multi-cell layouts of hundreds to thousands of
// nodes — which the sharded netsim engine partitions into independent
// interference domains.
//
// Everything is deterministic: the same seed and layout spec always produce
// the identical gain matrix. Positions are drawn from a seeded generator in
// node order, and each link's lognormal shadowing deviate comes from
// stats.RNG.Derive keyed on the unordered node pair, so a link's budget does
// not depend on how many other nodes exist or in what order links are
// queried. Shadowing is symmetric (channel reciprocity, as in testbed).
package topo

import (
	"fmt"
	"math"

	"ppr/internal/radio"
	"ppr/internal/stats"
)

// Derive-key tags separating the package's independent random streams.
const (
	tagShadow = iota + 1
	tagLayout
)

// Node is one named radio in a topology.
type Node struct {
	// Name is the node's unique label ("a", "c3.1/n2", ...).
	Name string
	// Pos is the node's floor-plan position in feet.
	Pos radio.Position
}

// Topology is an instantiated deployment: nodes and the link budget between
// every ordered pair. It implements netsim's Topology interface, so a
// Config can run on it directly; node indices are the simulator's global
// node IDs.
type Topology struct {
	// Params is the propagation environment.
	Params radio.Params
	// Nodes lists the deployment in node-ID order.
	Nodes []Node
	// GainDBm[i][j] is the received power at node j of node i's
	// transmissions (transmit power, path loss and static shadowing folded
	// in). GainDBm[i][i] is the transmit power — a node's own transmission
	// saturates its front end.
	GainDBm [][]float64

	index map[string]int
}

// NumNodes returns the deployment size.
func (t *Topology) NumNodes() int { return len(t.Nodes) }

// NodeGainDBm returns the received power at node `to` of node `from`'s
// transmissions.
func (t *Topology) NodeGainDBm(from, to int) float64 { return t.GainDBm[from][to] }

// RadioParams returns the propagation environment.
func (t *Topology) RadioParams() radio.Params { return t.Params }

// NodeID resolves a node name to its global node ID.
func (t *Topology) NodeID(name string) (int, bool) {
	id, ok := t.index[name]
	return id, ok
}

// Name returns node i's label.
func (t *Topology) Name(i int) string { return t.Nodes[i].Name }

// Position returns node i's floor-plan position.
func (t *Topology) Position(i int) radio.Position { return t.Nodes[i].Pos }

// Domains partitions the nodes into connected components of the audibility
// graph: nodes u and v share a domain iff a chain of links with gain (in
// either direction) at or above floorDBm connects them. The result maps each
// node to a dense domain ID; domains are numbered in order of their
// smallest member, so the partition is a pure function of the topology.
// netsim shards its event queue by exactly this partition (unioned with
// flow endpoints) at its synthesis floor.
func (t *Topology) Domains(floorDBm float64) (domainOf []int, n int) {
	parent := make([]int, len(t.Nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := range t.Nodes {
		for j := i + 1; j < len(t.Nodes); j++ {
			if t.GainDBm[i][j] >= floorDBm || t.GainDBm[j][i] >= floorDBm {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			}
		}
	}
	domainOf = make([]int, len(t.Nodes))
	label := make(map[int]int)
	for i := range t.Nodes {
		r := find(i)
		id, ok := label[r]
		if !ok {
			id = n
			label[r] = id
			n++
		}
		domainOf[i] = id
	}
	return domainOf, n
}

// override is one recorded link-budget override, applied in order at Build.
type override struct {
	from, to  string
	dbm       float64
	symmetric bool
}

// Builder assembles a Topology declaratively: add named nodes, optionally
// pin individual link budgets, then Build. Errors (duplicate names, unknown
// override endpoints) are sticky and reported by Build, so call sites can
// chain without per-call checks — the ExampleNetwork idiom.
type Builder struct {
	params    radio.Params
	seed      uint64
	nodes     []Node
	index     map[string]int
	overrides []override
	err       error
}

// NewBuilder starts a topology under the given propagation environment. The
// seed fixes every link's shadowing deviate.
func NewBuilder(params radio.Params, seed uint64) *Builder {
	return &Builder{params: params, seed: seed, index: map[string]int{}}
}

// Node adds a named node at (x, y) feet and returns the builder for
// chaining.
func (b *Builder) Node(name string, x, y float64) *Builder {
	if b.err == nil {
		if name == "" {
			b.err = fmt.Errorf("topo: empty node name")
		} else if _, dup := b.index[name]; dup {
			b.err = fmt.Errorf("topo: duplicate node %q", name)
		} else {
			b.index[name] = len(b.nodes)
			b.nodes = append(b.nodes, Node{Name: name, Pos: radio.Position{X: x, Y: y}})
		}
	}
	return b
}

// GainDBm pins the directional link budget from → to, overriding the
// propagation model (an asymmetric obstruction, a directional antenna).
func (b *Builder) GainDBm(from, to string, dbm float64) *Builder {
	b.overrides = append(b.overrides, override{from: from, to: to, dbm: dbm})
	return b
}

// LinkDBm pins the link budget between a and b in both directions — the
// common "these two nodes hear each other at exactly this level" case.
func (b *Builder) LinkDBm(a, bn string, dbm float64) *Builder {
	b.overrides = append(b.overrides, override{from: a, to: bn, dbm: dbm, symmetric: true})
	return b
}

// Build instantiates the topology: pairwise budgets from the propagation
// model with Derive-keyed symmetric shadowing, then overrides applied in
// recording order.
func (b *Builder) Build() (*Topology, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.nodes) == 0 {
		return nil, fmt.Errorf("topo: no nodes")
	}
	n := len(b.nodes)
	t := &Topology{Params: b.params, Nodes: b.nodes, index: b.index}
	shadowRoot := stats.NewRNG(b.seed ^ 0x70b0109e5)
	t.GainDBm = make([][]float64, n)
	backing := make([]float64, n*n)
	for i := range t.GainDBm {
		t.GainDBm[i] = backing[i*n : (i+1)*n : (i+1)*n]
		t.GainDBm[i][i] = b.params.TxPowerDBm
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// One deviate per unordered pair, keyed on the pair itself:
			// adding node k never reshuffles the budget between i and j.
			shadow := shadowRoot.Derive(uint64(i), uint64(j), tagShadow).NormFloat64() * b.params.ShadowSigmaDB
			g := b.params.RxPowerDBm(b.nodes[i].Pos.Dist(b.nodes[j].Pos), shadow)
			t.GainDBm[i][j] = g
			t.GainDBm[j][i] = g
		}
	}
	for _, ov := range b.overrides {
		fi, ok := t.index[ov.from]
		if !ok {
			return nil, fmt.Errorf("topo: override references unknown node %q", ov.from)
		}
		ti, ok := t.index[ov.to]
		if !ok {
			return nil, fmt.Errorf("topo: override references unknown node %q", ov.to)
		}
		if fi == ti {
			return nil, fmt.Errorf("topo: override on self-link %q", ov.from)
		}
		t.GainDBm[fi][ti] = ov.dbm
		if ov.symmetric {
			t.GainDBm[ti][fi] = ov.dbm
		}
	}
	return t, nil
}

// Grid lays nodes on a cols×rows lattice with the given spacing, named
// "g<col>.<row>". With spacing well above the audibility radius every node
// is its own interference domain; well below it the grid is one domain.
func Grid(cols, rows int, spacingFeet float64, params radio.Params, seed uint64) (*Topology, error) {
	if cols <= 0 || rows <= 0 {
		return nil, fmt.Errorf("topo: bad grid %dx%d", cols, rows)
	}
	b := NewBuilder(params, seed)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.Node(fmt.Sprintf("g%d.%d", c, r), float64(c)*spacingFeet, float64(r)*spacingFeet)
		}
	}
	return b.Build()
}

// Random scatters n nodes uniformly over a width×height field, named
// "r<i>". Positions come from the seed; the same (n, extent, seed) spec
// always yields the same scatter.
func Random(n int, widthFeet, heightFeet float64, params radio.Params, seed uint64) (*Topology, error) {
	if n <= 0 || widthFeet <= 0 || heightFeet <= 0 {
		return nil, fmt.Errorf("topo: bad random layout n=%d extent=%gx%g", n, widthFeet, heightFeet)
	}
	rng := stats.NewRNG(seed).Derive(tagLayout)
	b := NewBuilder(params, seed)
	for i := 0; i < n; i++ {
		b.Node(fmt.Sprintf("r%d", i), rng.Float64()*widthFeet, rng.Float64()*heightFeet)
	}
	return b.Build()
}

// CellGrid is the city-scale layout: cellsX×cellsY dense cells of
// nodesPerCell nodes each, cell centres cellSpacing feet apart, nodes
// scattered uniformly within cellRadius of their centre. Nodes are named
// "c<cx>.<cy>/n<k>". With cell spacing well beyond the audibility radius
// and cell radius well inside it, each cell is one interference domain —
// the regime the sharded engine parallelizes.
func CellGrid(cellsX, cellsY, nodesPerCell int, cellSpacingFeet, cellRadiusFeet float64, params radio.Params, seed uint64) (*Topology, error) {
	if cellsX <= 0 || cellsY <= 0 || nodesPerCell <= 0 {
		return nil, fmt.Errorf("topo: bad cell grid %dx%d x%d", cellsX, cellsY, nodesPerCell)
	}
	rng := stats.NewRNG(seed).Derive(tagLayout)
	b := NewBuilder(params, seed)
	for cy := 0; cy < cellsY; cy++ {
		for cx := 0; cx < cellsX; cx++ {
			ox := float64(cx) * cellSpacingFeet
			oy := float64(cy) * cellSpacingFeet
			for k := 0; k < nodesPerCell; k++ {
				// Uniform in the disc of cellRadius, via sqrt-radius.
				r := cellRadiusFeet * math.Sqrt(rng.Float64())
				theta := 2 * math.Pi * rng.Float64()
				b.Node(fmt.Sprintf("c%d.%d/n%d", cx, cy, k), ox+r*math.Cos(theta), oy+r*math.Sin(theta))
			}
		}
	}
	return b.Build()
}
