package topo

import (
	"math"
	"reflect"
	"testing"

	"ppr/internal/radio"
)

// Same seed + layout spec must produce bit-identical topologies; a
// different seed must not.
func TestLayoutDeterminism(t *testing.T) {
	build := map[string]func(seed uint64) (*Topology, error){
		"grid": func(seed uint64) (*Topology, error) {
			return Grid(5, 4, 30, radio.DefaultParams(), seed)
		},
		"random": func(seed uint64) (*Topology, error) {
			return Random(40, 500, 300, radio.DefaultParams(), seed)
		},
		"cellgrid": func(seed uint64) (*Topology, error) {
			return CellGrid(3, 2, 6, 2000, 25, radio.DefaultParams(), seed)
		},
	}
	for name, fn := range build {
		a, err := fn(7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := fn(7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a.GainDBm, b.GainDBm) || !reflect.DeepEqual(a.Nodes, b.Nodes) {
			t.Errorf("%s: same seed built different topologies", name)
		}
		c, err := fn(8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if reflect.DeepEqual(a.GainDBm, c.GainDBm) {
			t.Errorf("%s: different seeds built identical gain matrices", name)
		}
		// Domain partition is a pure function of the topology.
		d1, n1 := a.Domains(-105)
		d2, n2 := b.Domains(-105)
		if n1 != n2 || !reflect.DeepEqual(d1, d2) {
			t.Errorf("%s: same topology partitioned differently", name)
		}
	}
}

// A link's shadowing is keyed on the node pair, so adding nodes to a
// builder never changes budgets between earlier nodes.
func TestPairwiseShadowingStable(t *testing.T) {
	p := radio.DefaultParams()
	small, err := NewBuilder(p, 3).Node("a", 0, 0).Node("b", 40, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewBuilder(p, 3).Node("a", 0, 0).Node("b", 40, 0).Node("c", 10, 90).Build()
	if err != nil {
		t.Fatal(err)
	}
	if small.GainDBm[0][1] != big.GainDBm[0][1] {
		t.Errorf("a-b budget changed when c was added: %v vs %v", small.GainDBm[0][1], big.GainDBm[0][1])
	}
}

func TestBuilderNamesAndSymmetry(t *testing.T) {
	tp, err := NewBuilder(radio.DefaultParams(), 1).
		Node("a", 0, 0).Node("b", 50, 0).Node("c", 0, 50).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", tp.NumNodes())
	}
	id, ok := tp.NodeID("b")
	if !ok || id != 1 {
		t.Errorf("NodeID(b) = %d, %v", id, ok)
	}
	if _, ok := tp.NodeID("zz"); ok {
		t.Error("NodeID(zz) resolved")
	}
	if tp.Name(2) != "c" || tp.Position(2).Y != 50 {
		t.Errorf("node 2 = %q at %v", tp.Name(2), tp.Position(2))
	}
	for i := 0; i < 3; i++ {
		if tp.NodeGainDBm(i, i) != tp.Params.TxPowerDBm {
			t.Errorf("self gain of %d = %v", i, tp.NodeGainDBm(i, i))
		}
		for j := 0; j < 3; j++ {
			if tp.NodeGainDBm(i, j) != tp.NodeGainDBm(j, i) {
				t.Errorf("gain %d->%d asymmetric without overrides", i, j)
			}
		}
	}
}

func TestBuilderOverrides(t *testing.T) {
	tp, err := NewBuilder(radio.DefaultParams(), 1).
		Node("a", 0, 0).Node("b", 50, 0).
		GainDBm("a", "b", -60).
		LinkDBm("a", "b", -72).
		GainDBm("b", "a", -66).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// Overrides apply in recording order: the directional one lands last on
	// b->a, the symmetric one last on a->b.
	if g := tp.NodeGainDBm(0, 1); g != -72 {
		t.Errorf("a->b = %v, want -72", g)
	}
	if g := tp.NodeGainDBm(1, 0); g != -66 {
		t.Errorf("b->a = %v, want -66", g)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := map[string]*Builder{
		"empty name":     NewBuilder(radio.DefaultParams(), 1).Node("", 0, 0),
		"duplicate name": NewBuilder(radio.DefaultParams(), 1).Node("a", 0, 0).Node("a", 1, 1),
		"no nodes":       NewBuilder(radio.DefaultParams(), 1),
		"unknown from":   NewBuilder(radio.DefaultParams(), 1).Node("a", 0, 0).Node("b", 9, 9).GainDBm("x", "b", -50),
		"unknown to":     NewBuilder(radio.DefaultParams(), 1).Node("a", 0, 0).Node("b", 9, 9).LinkDBm("a", "y", -50),
		"self override":  NewBuilder(radio.DefaultParams(), 1).Node("a", 0, 0).Node("b", 9, 9).GainDBm("a", "a", -50),
	}
	for name, b := range cases {
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: Build succeeded", name)
		}
	}
	if _, err := Grid(0, 3, 10, radio.DefaultParams(), 1); err == nil {
		t.Error("zero-column grid built")
	}
	if _, err := Random(-1, 10, 10, radio.DefaultParams(), 1); err == nil {
		t.Error("negative random layout built")
	}
	if _, err := CellGrid(2, 2, 0, 100, 10, radio.DefaultParams(), 1); err == nil {
		t.Error("empty cells built")
	}
}

// Domains follows audibility in either direction, numbers components by
// smallest member, and merges exactly the linked nodes.
func TestDomainsExplicitGraph(t *testing.T) {
	mute := -300.0
	b := NewBuilder(radio.DefaultParams(), 1).
		Node("a", 0, 0).Node("b", 0, 0).Node("c", 0, 0).Node("d", 0, 0).Node("e", 0, 0)
	for _, pair := range [][2]string{{"a", "b"}, {"a", "c"}, {"a", "d"}, {"a", "e"}, {"b", "c"}, {"b", "d"}, {"b", "e"}, {"c", "d"}, {"c", "e"}, {"d", "e"}} {
		b.LinkDBm(pair[0], pair[1], mute)
	}
	// a-b audible one way only (directional override), d-e audible both.
	b.GainDBm("b", "a", -80)
	b.LinkDBm("d", "e", -90)
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	domainOf, n := tp.Domains(-105)
	want := []int{0, 0, 1, 2, 2} // {a,b}, {c}, {d,e}
	if n != 3 || !reflect.DeepEqual(domainOf, want) {
		t.Errorf("Domains = %v (%d), want %v (3)", domainOf, n, want)
	}
	// At a floor below the muted links everything is one domain.
	if _, n := tp.Domains(mute - 1); n != 1 {
		t.Errorf("everything audible still split into %d domains", n)
	}
}

// The city-scale layout decomposes into one domain per cell when cells are
// far apart, and one total domain when they are packed.
func TestCellGridDomains(t *testing.T) {
	p := radio.DefaultParams()
	floor := p.NoiseFloorDBm - 10
	far, err := CellGrid(3, 2, 5, 2000, 25, p, 11)
	if err != nil {
		t.Fatal(err)
	}
	domainOf, n := far.Domains(floor)
	if n != 6 {
		t.Fatalf("far cells: %d domains, want 6", n)
	}
	for i := range far.Nodes {
		if domainOf[i] != domainOf[(i/5)*5] {
			t.Errorf("node %d (%s) not in its cell's domain", i, far.Name(i))
		}
	}
	near, err := CellGrid(3, 2, 5, 10, 25, p, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, n := near.Domains(floor); n != 1 {
		t.Errorf("packed cells: %d domains, want 1", n)
	}
}

// Node positions stay inside the declared extents.
func TestLayoutExtents(t *testing.T) {
	tp, err := Random(60, 400, 200, radio.DefaultParams(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tp.Nodes {
		p := tp.Position(i)
		if p.X < 0 || p.X > 400 || p.Y < 0 || p.Y > 200 {
			t.Errorf("node %d out of field: %v", i, p)
		}
	}
	cg, err := CellGrid(2, 2, 8, 1000, 30, radio.DefaultParams(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cg.Nodes {
		cx := float64(((i / 8) % 2) * 1000)
		cy := float64(((i / 8) / 2) * 1000)
		p := cg.Position(i)
		if d := math.Hypot(p.X-cx, p.Y-cy); d > 30 {
			t.Errorf("node %d %s is %g ft from its cell centre", i, cg.Name(i), d)
		}
	}
}
