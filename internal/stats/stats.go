// Package stats provides the numeric plumbing shared by every PPR
// experiment: a small deterministic random number generator (so figures are
// reproducible run-to-run), empirical CDF/CCDF construction matching the
// paper's plots, quantiles, and the Gaussian tail function used to map SINR
// to chip error probability.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// RNG is a deterministic xoshiro256**-based generator. Every simulator
// component derives its stream from an explicit seed so that experiments are
// exactly reproducible; math/rand's global state is never used.
type RNG struct {
	s [4]uint64
	// cached spare Gaussian deviate for NormFloat64 (Marsaglia polar).
	haveSpare bool
	spare     float64
}

// NewRNG returns a generator seeded from seed via splitmix64, which safely
// expands even low-entropy seeds (0, 1, 2, ...) into full-width state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		r.s[i] = mix64(x)
	}
	return r
}

// mix64 is the splitmix64 finalizer: a bijective avalanche mix.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives an independent child generator; stream i of a parent seeded
// with s is decoupled from both the parent and siblings.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// Derive returns a child generator keyed on the parent's current state and
// the given values, without advancing the parent. Two Derive calls with the
// same key yield identical streams, and calls with different keys yield
// decoupled streams — so work units identified by stable coordinates (e.g. a
// simulation's (receiver, window origin)) get reproducible randomness no
// matter how many goroutines process them or in what order. Derive reads the
// parent's state, so it must not race with methods that advance it (Uint64
// and everything built on it); concurrent Derive calls on a quiescent parent
// are safe.
func (r *RNG) Derive(vals ...uint64) *RNG {
	x := r.s[0] ^ rotl(r.s[1], 13) ^ rotl(r.s[2], 29) ^ rotl(r.s[3], 47)
	for _, v := range vals {
		x = mix64(x ^ (v + 0x9e3779b97f4a7c15))
	}
	return NewRNG(x)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniform random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("stats: Intn(%d)", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a standard normal deviate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		m := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * m
		r.haveSpare = true
		return u * m
	}
}

// ExpFloat64 returns an exponential deviate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Q is the Gaussian tail function Q(x) = P(N(0,1) > x), used to convert
// per-chip SNR into chip error probability for coherent MSK detection:
// p_chip = Q(sqrt(2·SINR)).
func Q(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// CDFPoint is one (x, P[X ≤ x]) step of an empirical distribution.
type CDFPoint struct {
	X float64
	P float64
}

// CDF returns the empirical cumulative distribution of samples as step
// points at each distinct value, matching the per-link CDFs plotted in
// Figs. 8–11. The input is not modified.
func CDF(samples []float64) []CDFPoint {
	if len(samples) == 0 {
		return nil
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := float64(len(s))
	var out []CDFPoint
	for i := 0; i < len(s); i++ {
		// advance to the last duplicate so each distinct x appears once
		if i+1 < len(s) && s[i+1] == s[i] {
			continue
		}
		out = append(out, CDFPoint{X: s[i], P: float64(i+1) / n})
	}
	return out
}

// CCDF returns the complementary CDF P[X > x] at each distinct sample value,
// matching the log-scale complementary plots of Figs. 14 and 15.
func CCDF(samples []float64) []CDFPoint {
	cdf := CDF(samples)
	out := make([]CDFPoint, len(cdf))
	for i, p := range cdf {
		out[i] = CDFPoint{X: p.X, P: 1 - p.P}
	}
	return out
}

// CDFAt evaluates an empirical CDF (as returned by CDF) at x.
func CDFAt(cdf []CDFPoint, x float64) float64 {
	// last point with X <= x
	i := sort.Search(len(cdf), func(i int) bool { return cdf[i].X > x })
	if i == 0 {
		return 0
	}
	return cdf[i-1].P
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of samples using the
// nearest-rank method. It panics on an empty slice.
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		panic("stats: Quantile of empty sample set")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Median returns the 0.5 quantile.
func Median(samples []float64) float64 { return Quantile(samples, 0.5) }

// MedianOrZero returns the median, or 0 for an empty sample set — the
// guard every figure whose distributions can come up empty (no
// retransmissions, no qualifying links) otherwise reimplements inline.
func MedianOrZero(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	return Median(samples)
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// Sum returns the total of samples.
func Sum(samples []float64) float64 {
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return sum
}

// Histogram counts samples into uniform-width bins over [lo, hi); values
// outside the range are clamped into the first/last bin.
func Histogram(samples []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	bins := make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, v := range samples {
		i := int((v - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		bins[i]++
	}
	return bins
}

// JainFairness returns Jain's fairness index (Σx)² / (n·Σx²) of the
// samples: 1 when every sample is equal, 1/n when one sample holds
// everything. Zero-valued sample sets (and empty input) return 0.
func JainFairness(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, v := range samples {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(samples)) * sumSq)
}
