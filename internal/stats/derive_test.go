package stats

import "testing"

func stream(r *RNG, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

func equal(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDeriveReproducible(t *testing.T) {
	parent := NewRNG(42)
	a := stream(parent.Derive(3, 1000), 64)
	b := stream(parent.Derive(3, 1000), 64)
	if !equal(a, b) {
		t.Fatal("same key derived different streams")
	}
}

func TestDeriveDoesNotAdvanceParent(t *testing.T) {
	a := NewRNG(7)
	b := NewRNG(7)
	a.Derive(1)
	a.Derive(2, 3)
	if !equal(stream(a, 32), stream(b, 32)) {
		t.Fatal("Derive advanced the parent's stream")
	}
}

func TestDeriveKeysDecoupled(t *testing.T) {
	parent := NewRNG(1)
	seen := map[uint64]bool{}
	for _, key := range [][]uint64{{0}, {1}, {0, 0}, {0, 1}, {1, 0}, {1 << 40}, {0, 1 << 40}} {
		first := parent.Derive(key...).Uint64()
		if seen[first] {
			t.Fatalf("key %v collided on first draw", key)
		}
		seen[first] = true
	}
	// Streams from adjacent keys must not be shifted copies of each other.
	s0 := stream(parent.Derive(0), 64)
	s1 := stream(parent.Derive(1), 64)
	for shift := 0; shift < 8; shift++ {
		if equal(s0[shift:], s1[:len(s1)-shift]) {
			t.Fatalf("streams for keys 0 and 1 are shift-%d copies", shift)
		}
	}
}

func TestDeriveDependsOnParentState(t *testing.T) {
	if NewRNG(1).Derive(9).Uint64() == NewRNG(2).Derive(9).Uint64() {
		t.Fatal("different parents derived the same child")
	}
}

func TestDeriveChildIsUsable(t *testing.T) {
	// The child must produce sane uniform output (smoke: mean of Float64
	// near 0.5).
	r := NewRNG(11).Derive(5, 6)
	var sum float64
	const n = 10_000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Errorf("derived stream mean %.3f, want ~0.5", mean)
	}
}
