package stats

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(1234), NewRNG(1234)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRNGSeedsIndependent(t *testing.T) {
	a, b := NewRNG(0), NewRNG(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent seeds produced %d identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	var sum float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		buckets[int(v*10)]++
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v far from 0.5", mean)
	}
	for i, c := range buckets {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Errorf("bucket %d has fraction %v", i, frac)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean %v", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(21)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("only %d of 7 values seen", len(seen))
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(42)
	child := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("parent/child produced %d identical outputs", same)
	}
}

func TestQFunction(t *testing.T) {
	cases := []struct{ x, want, tol float64 }{
		{0, 0.5, 1e-12},
		{1, 0.158655, 1e-5},
		{2, 0.022750, 1e-5},
		{3, 0.0013499, 1e-6},
		{-1, 0.841345, 1e-5},
	}
	for _, c := range cases {
		if got := Q(c.x); math.Abs(got-c.want) > c.tol {
			t.Errorf("Q(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestQMonotoneDecreasing(t *testing.T) {
	prev := 1.0
	for x := -5.0; x <= 5.0; x += 0.1 {
		v := Q(x)
		if v > prev {
			t.Fatalf("Q not decreasing at %v", x)
		}
		prev = v
	}
}

func TestCDFBasic(t *testing.T) {
	cdf := CDF([]float64{3, 1, 2, 2})
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1.0}}
	if len(cdf) != len(want) {
		t.Fatalf("got %v", cdf)
	}
	for i := range want {
		if cdf[i] != want[i] {
			t.Errorf("point %d: got %v want %v", i, cdf[i], want[i])
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	if CDF(nil) != nil {
		t.Error("CDF(nil) should be nil")
	}
}

func TestCDFDoesNotMutateInput(t *testing.T) {
	in := []float64{5, 1, 3}
	CDF(in)
	if in[0] != 5 || in[1] != 1 || in[2] != 3 {
		t.Error("CDF mutated its input")
	}
}

func TestCCDFComplement(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5}
	cdf, ccdf := CDF(samples), CCDF(samples)
	for i := range cdf {
		if math.Abs(cdf[i].P+ccdf[i].P-1) > 1e-12 {
			t.Errorf("CDF+CCDF != 1 at %v", cdf[i].X)
		}
	}
}

func TestCDFAt(t *testing.T) {
	cdf := CDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := CDFAt(cdf, c.x); got != c.want {
			t.Errorf("CDFAt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if m := Median(s); m != 50 {
		t.Errorf("median %v, want 50", m)
	}
	if q := Quantile(s, 0.9); q != 90 {
		t.Errorf("p90 %v, want 90", q)
	}
	if q := Quantile(s, 0); q != 10 {
		t.Errorf("p0 %v, want 10", q)
	}
	if q := Quantile(s, 1); q != 100 {
		t.Errorf("p100 %v, want 100", q)
	}
}

func TestMedianOrZero(t *testing.T) {
	if v := MedianOrZero(nil); v != 0 {
		t.Errorf("MedianOrZero(nil) = %v", v)
	}
	s := []float64{3, 1, 2}
	if v := MedianOrZero(s); v != Median(s) {
		t.Errorf("MedianOrZero diverges from Median: %v", v)
	}
}

func TestQuantilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestMeanSum(t *testing.T) {
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Error("mean")
	}
	if Mean(nil) != 0 {
		t.Error("mean nil")
	}
	if Sum([]float64{1.5, 2.5}) != 4 {
		t.Error("sum")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0.1, 0.1, 0.9, -5, 99}, 0, 1, 2)
	// -5 clamps into bin 0, 99 clamps into bin 1.
	if h[0] != 3 || h[1] != 2 {
		t.Errorf("got %v", h)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(77)
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			count++
		}
	}
	frac := float64(count) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency %v", frac)
	}
}

func TestJainFairness(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{0, 0, 0}, 0},
		{[]float64{5, 5, 5, 5}, 1},
		{[]float64{1, 0, 0, 0}, 0.25},
		{[]float64{4, 2}, (6.0 * 6.0) / (2 * (16 + 4))},
	}
	for _, c := range cases {
		if got := JainFairness(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("JainFairness(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
