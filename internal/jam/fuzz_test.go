package jam

import (
	"testing"

	"ppr/internal/stats"
)

// FuzzCombinators composes schedule ∘ zone ∘ target stacks over arbitrary
// inner strategies with arbitrary (unclamped) parameters and drives the
// result over a synthetic observation stream. The invariants: composition
// never panics, Markov probabilities stay in [0, 1], NextPoll is
// non-decreasing, and every burst is well-formed (non-negative size).
func FuzzCombinators(f *testing.F) {
	f.Add(uint8(0), uint64(1), 0.1, 0.8, 0.3, int64(300_000), int64(300_000), 50.0, true)
	f.Add(uint8(1), uint64(2), -5.0, 99.0, 0.0, int64(0), int64(-7), -1.0, false)
	f.Add(uint8(4), uint64(3), 0.5, 0.5, 0.5, int64(1), int64(0), 1e9, true)
	f.Fuzz(func(t *testing.T, pick uint8, seed uint64,
		pStart, pStay, pRecover float64, onChips, offChips int64, radius float64, insideZone bool) {

		names := Names()
		inner, err := ByName(names[int(pick)%len(names)])
		if err != nil {
			t.Fatal(err)
		}

		// schedule ∘ schedule ∘ zone ∘ target, all over the picked inner.
		s := Target(InZone(Markov(DutyCycle(inner, onChips, offChips), pStart, pStay, pRecover),
			Circle{X: 0, Y: 0, R: radius}), 1, 3)

		var mk Strategy = s
		for {
			// Walk the wrappers down to the Markov layer to check clamping.
			switch w := mk.(type) {
			case target:
				mk = w.inner
			case inZone:
				mk = w.inner
			case markov:
				a, b, c := w.Probs()
				for _, p := range []float64{a, b, c} {
					if !(p >= 0 && p <= 1) {
						t.Fatalf("Markov probability %v outside [0,1]", p)
					}
				}
				mk = nil
			default:
				mk = nil
			}
			if mk == nil {
				break
			}
		}

		p := testParams()
		p.HasPos = true
		if insideZone {
			p.X, p.Y = 0, 0
		} else {
			p.X, p.Y = radius+1e6, 0
		}
		em := s.Emitter(p, stats.NewRNG(seed))

		last := int64(-1 << 62)
		for i := 0; i < 200; i++ {
			at := em.NextPoll()
			if at < last {
				t.Fatalf("NextPoll decreased: %d after %d", at, last)
			}
			last = at
			if at >= p.DurationChips {
				break
			}
			obs := Observation{Chip: at, Busy: []float64{p.NoiseMW, 10 * p.ThresholdMW}}
			if at%70_000 < 30_000 {
				start := at - at%70_000
				obs.Txs = []ActiveTx{
					{Src: 1, Start: start, End: start + 30_000, Channel: 1},
					{Src: 2, Start: start + 5, End: start + 20_000},
				}
			}
			b := em.Poll(obs)
			if b.Bytes < 0 {
				t.Fatalf("burst with negative size %d", b.Bytes)
			}
			if int(b.Channel) >= p.NumChannels {
				// Channels are taken modulo NumChannels by the engines, so
				// out-of-range values are tolerated, but the stock
				// strategies should stay in range on their own.
				t.Logf("burst channel %d >= NumChannels %d (engine clamps)", b.Channel, p.NumChannels)
			}
		}
	})
}
