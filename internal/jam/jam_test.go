package jam

import (
	"reflect"
	"testing"

	"ppr/internal/frame"
	"ppr/internal/stats"
)

func testParams() Params {
	return Params{
		DurationChips: 8_000_000,
		BurstBytes:    40,
		ThresholdMW:   1e-8, // -80 dBm
		NoiseMW:       1e-9,
		NumChannels:   3,
	}
}

func TestRegistryNames(t *testing.T) {
	want := []string{"duty", "learner", "markov", "periodic", "preamble", "reactive", "sweep", "targeted"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, n := range want {
		s, err := ByName(n)
		if err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		if s.Name() == "" {
			t.Fatalf("ByName(%q).Name() empty", n)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("ByName(bogus) succeeded")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("periodic", func() Strategy { return Periodic{} })
}

// TestPeriodicMatchesLegacyDrawOrder pins the clock emitter's RNG draw
// order to the legacy scenario.jammerArrivals contract: one Float64 for
// the phase at construction, one Float64 per attempt iff jitter > 0. The
// scenario-level bit parity tests build on this.
func TestPeriodicMatchesLegacyDrawOrder(t *testing.T) {
	const seed, period, jitter = 77, 50_000, 8_000
	em := Periodic{PeriodChips: period, JitterChips: jitter}.
		Emitter(testParams(), stats.NewRNG(seed))

	// Hand-rolled legacy replica.
	rng := stats.NewRNG(seed)
	next := int64(rng.Float64() * float64(period))
	for i := 0; i < 200; i++ {
		want := next
		want += int64(rng.Float64() * float64(jitter))
		next += period
		if got := em.NextPoll(); got != want {
			t.Fatalf("poll %d: NextPoll = %d, want %d", i, got, want)
		}
		if b := em.Poll(Observation{Chip: want, Busy: []float64{1e-9}}); !b.Fire {
			t.Fatalf("poll %d: periodic did not fire", i)
		}
	}
}

func TestReactiveFiresOnlyOnBusyChannel(t *testing.T) {
	p := testParams()
	em := Reactive{PeriodChips: 12_000, JitterChips: 2_000}.Emitter(p, stats.NewRNG(3))
	tIdle := em.NextPoll()
	if b := em.Poll(Observation{Chip: tIdle, Busy: []float64{p.NoiseMW, p.NoiseMW, p.NoiseMW}}); b.Fire {
		t.Fatal("reactive fired on an idle channel")
	}
	tBusy := em.NextPoll()
	b := em.Poll(Observation{Chip: tBusy, Busy: []float64{p.NoiseMW, 10 * p.ThresholdMW, p.NoiseMW}})
	if !b.Fire {
		t.Fatal("reactive did not fire on a busy channel")
	}
	if b.Channel != 1 {
		t.Fatalf("reactive fired on channel %d, want busiest channel 1", b.Channel)
	}
}

func TestPreambleFiresOncePerTransmission(t *testing.T) {
	p := testParams()
	em := Preamble{PollChips: 600}.Emitter(p, stats.NewRNG(9))
	tx := ActiveTx{Src: 2, Start: 1200, End: 1200 + int64(frame.MaxAirChips), Channel: 2}
	fires := 0
	for i := 0; i < 40; i++ {
		at := em.NextPoll()
		obs := Observation{Chip: at, Busy: []float64{1e-8}}
		if at >= tx.Start && at < tx.End {
			obs.Txs = []ActiveTx{tx}
		}
		if b := em.Poll(obs); b.Fire {
			fires++
			if b.Channel != tx.Channel {
				t.Fatalf("preamble fired on channel %d, want the victim's channel %d", b.Channel, tx.Channel)
			}
			if at-tx.Start > int64(frame.SyncChips)+600 {
				t.Fatalf("preamble fired %d chips after the start, past the lead window", at-tx.Start)
			}
		}
	}
	if fires != 1 {
		t.Fatalf("preamble fired %d times on one transmission, want exactly 1", fires)
	}
}

func TestSweepCyclesChannels(t *testing.T) {
	p := testParams()
	em := Sweep{PeriodChips: 10_000}.Emitter(p, stats.NewRNG(4))
	var chans []uint8
	last := int64(-1)
	for i := 0; i < 6; i++ {
		at := em.NextPoll()
		if at <= last {
			t.Fatalf("sweep poll %d not strictly increasing: %d after %d", i, at, last)
		}
		last = at
		b := em.Poll(Observation{Chip: at, Busy: []float64{0, 0, 0}})
		if !b.Fire {
			t.Fatalf("sweep poll %d did not fire", i)
		}
		chans = append(chans, b.Channel)
	}
	if want := []uint8{0, 1, 2, 0, 1, 2}; !reflect.DeepEqual(chans, want) {
		t.Fatalf("sweep channels = %v, want %v", chans, want)
	}
}

// TestLearnerPredictsPeriodicSender drives the learner with a strictly
// periodic victim and requires a predictive strike: a fire at an instant
// that is not on the dense sensing clock, close to the victim's next
// start.
func TestLearnerPredictsPeriodicSender(t *testing.T) {
	p := testParams()
	const gap = 40_000
	em := Learner{PollChips: 1500, BinChips: 2048, MinSamples: 4}.Emitter(p, stats.NewRNG(5))
	victimAir := int64(10_000)
	predictive := 0
	for i := 0; i < 400; i++ {
		at := em.NextPoll()
		if at >= p.DurationChips {
			break
		}
		obs := Observation{Chip: at, Busy: []float64{1e-9}}
		// The victim transmits at gap, 2*gap, 3*gap, ...
		k := at / gap
		if start := k * gap; start > 0 && at-start < victimAir {
			obs.Txs = []ActiveTx{{Src: 1, Start: start, End: start + victimAir}}
		}
		if b := em.Poll(obs); b.Fire {
			if at%1500 == 0 {
				t.Fatalf("learner fired on the dense clock at %d; want predictive strikes only", at)
			}
			next := (at/gap + 1) * gap
			prev := (at / gap) * gap
			d := at - prev
			if next-at < d {
				d = next - at
			}
			if d > 3*2048 {
				t.Fatalf("predictive strike at %d is %d chips from the victim clock", at, d)
			}
			predictive++
		}
	}
	if predictive == 0 {
		t.Fatal("learner never fired predictively on a periodic victim")
	}
}

func TestDutyCycleGatesFire(t *testing.T) {
	p := testParams()
	s := DutyCycle(Periodic{PeriodChips: 10_000}, 100_000, 100_000)
	if s.Name() != "duty(periodic)" {
		t.Fatalf("Name() = %q", s.Name())
	}
	em := s.Emitter(p, stats.NewRNG(6))
	on, off := 0, 0
	for i := 0; i < 100; i++ {
		at := em.NextPoll()
		b := em.Poll(Observation{Chip: at, Busy: []float64{0}})
		if at%200_000 < 100_000 {
			if !b.Fire {
				t.Fatalf("duty cycle suppressed a fire in the ON phase at %d", at)
			}
			on++
		} else {
			if b.Fire {
				t.Fatalf("duty cycle fired in the OFF phase at %d", at)
			}
			off++
		}
	}
	if on == 0 || off == 0 {
		t.Fatalf("degenerate phase coverage: on=%d off=%d", on, off)
	}
}

func TestMarkovClampsProbabilities(t *testing.T) {
	m := Markov(Periodic{}, -3, 7, 0.5).(markov)
	a, b, c := m.Probs()
	if a != 0 || b != 1 || c != 0.5 {
		t.Fatalf("Probs() = %v %v %v, want 0 1 0.5", a, b, c)
	}
}

func TestMarkovChainGates(t *testing.T) {
	p := testParams()
	// pStart=1, pStay=0: fires exactly every other poll (on, recover via
	// pRecover=1, on, ...): quiet→burst, burst→recover, recover→quiet.
	em := Markov(Periodic{PeriodChips: 10_000}, 1, 0, 1).Emitter(p, stats.NewRNG(7))
	var fires []bool
	for i := 0; i < 9; i++ {
		at := em.NextPoll()
		fires = append(fires, em.Poll(Observation{Chip: at, Busy: []float64{0}}).Fire)
	}
	want := []bool{true, false, false, true, false, false, true, false, false}
	if !reflect.DeepEqual(fires, want) {
		t.Fatalf("markov fire pattern = %v, want %v", fires, want)
	}
}

func TestMarkovDoesNotPerturbInnerDraws(t *testing.T) {
	p := testParams()
	bare := Periodic{PeriodChips: 50_000, JitterChips: 8_000}.Emitter(p, stats.NewRNG(11))
	wrapped := Markov(Periodic{PeriodChips: 50_000, JitterChips: 8_000}, 0.5, 0.5, 0.5).
		Emitter(p, stats.NewRNG(11))
	for i := 0; i < 100; i++ {
		a, b := bare.NextPoll(), wrapped.NextPoll()
		if a != b {
			t.Fatalf("poll %d: wrapping with Markov changed the inner timeline: %d vs %d", i, a, b)
		}
		bare.Poll(Observation{Chip: a, Busy: []float64{0}})
		wrapped.Poll(Observation{Chip: b, Busy: []float64{0}})
	}
}

func TestInZoneSilencesOutsideJammer(t *testing.T) {
	p := testParams()
	p.HasPos, p.X, p.Y = true, 500, 500
	s := InZone(Periodic{PeriodChips: 10_000}, Circle{X: 0, Y: 0, R: 100})
	em := s.Emitter(p, stats.NewRNG(8))
	if at := em.NextPoll(); at < p.DurationChips {
		t.Fatalf("out-of-zone emitter polls at %d, want >= DurationChips", at)
	}

	p.X, p.Y = 50, -50
	em = s.Emitter(p, stats.NewRNG(8))
	at := em.NextPoll()
	if at >= p.DurationChips {
		t.Fatal("in-zone emitter never polls")
	}
	if !em.Poll(Observation{Chip: at, Busy: []float64{0}}).Fire {
		t.Fatal("in-zone emitter did not fire")
	}

	// Engines without positions treat every jammer as in-zone.
	p.HasPos = false
	p.X, p.Y = 1e9, 1e9
	em = s.Emitter(p, stats.NewRNG(8))
	if at := em.NextPoll(); at >= p.DurationChips {
		t.Fatal("position-less engine silenced a zoned jammer")
	}

	if !(Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}).Contains(5, 5) {
		t.Fatal("Rect.Contains(5,5) false")
	}
	if (Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}).Contains(11, 5) {
		t.Fatal("Rect.Contains(11,5) true")
	}
}

func TestTargetFiltersVictims(t *testing.T) {
	p := testParams()
	em := Target(Periodic{PeriodChips: 10_000}, 3).Emitter(p, stats.NewRNG(10))
	at := em.NextPoll()
	if em.Poll(Observation{Chip: at, Busy: []float64{0}}).Fire {
		t.Fatal("targeted jammer fired with nobody on the air")
	}
	at = em.NextPoll()
	if em.Poll(Observation{Chip: at, Busy: []float64{0},
		Txs: []ActiveTx{{Src: 5, Start: at - 10, End: at + 10}}}).Fire {
		t.Fatal("targeted jammer fired on a non-victim")
	}
	at = em.NextPoll()
	if !em.Poll(Observation{Chip: at, Busy: []float64{0},
		Txs: []ActiveTx{{Src: 3, Start: at - 10, End: at + 10}}}).Fire {
		t.Fatal("targeted jammer did not fire on its victim")
	}

	// Empty victim list: any transmission qualifies.
	em = Target(Periodic{PeriodChips: 10_000}).Emitter(p, stats.NewRNG(10))
	at = em.NextPoll()
	if em.Poll(Observation{Chip: at, Busy: []float64{0}}).Fire {
		t.Fatal("any-victim jammer fired on an idle channel")
	}
	at = em.NextPoll()
	if !em.Poll(Observation{Chip: at, Busy: []float64{0},
		Txs: []ActiveTx{{Src: 7, Start: at - 10, End: at + 10}}}).Fire {
		t.Fatal("any-victim jammer did not fire on an active channel")
	}
}

// TestAllRegisteredNonDecreasingAndDeterministic drives every registered
// strategy twice with the same seed and a synthetic observation stream,
// checking the determinism contract: identical poll timelines and fire
// decisions, and non-decreasing NextPoll.
func TestAllRegisteredNonDecreasingAndDeterministic(t *testing.T) {
	p := testParams()
	for _, name := range Names() {
		run := func(seed uint64) ([]int64, []Burst) {
			s, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			em := s.Emitter(p, stats.NewRNG(seed))
			var at []int64
			var bs []Burst
			// Enough polls for the learner's dense clock to accumulate its
			// minimum histogram mass against the 100k-chip victim cycle.
			for i := 0; i < 3000; i++ {
				tp := em.NextPoll()
				if tp >= p.DurationChips {
					break
				}
				obs := Observation{Chip: tp, Busy: []float64{p.NoiseMW, p.NoiseMW, p.NoiseMW}}
				// Synthetic victim active 40% of the time on a 100k cycle.
				if tp%100_000 < 40_000 {
					start := tp - tp%100_000
					obs.Txs = []ActiveTx{{Src: 1, Start: start, End: start + 40_000, Channel: 1}}
					obs.Busy[1] = 10 * p.ThresholdMW
				}
				at = append(at, tp)
				bs = append(bs, em.Poll(obs))
			}
			return at, bs
		}
		at1, bs1 := run(42)
		at2, bs2 := run(42)
		if !reflect.DeepEqual(at1, at2) || !reflect.DeepEqual(bs1, bs2) {
			t.Fatalf("%s: same seed, different timeline", name)
		}
		for i := 1; i < len(at1); i++ {
			if at1[i] < at1[i-1] {
				t.Fatalf("%s: NextPoll decreased: %d after %d", name, at1[i], at1[i-1])
			}
		}
		fired := false
		for _, b := range bs1 {
			if b.Fire {
				fired = true
			}
			if b.Bytes < 0 {
				t.Fatalf("%s: negative burst size %d", name, b.Bytes)
			}
		}
		if !fired {
			t.Fatalf("%s: never fired against an active victim", name)
		}
	}
}
