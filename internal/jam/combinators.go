package jam

import (
	"fmt"

	"ppr/internal/stats"
)

// Combinators wrap a Strategy without knowing what it wraps. Every
// combinator keeps the inner emitter's timeline and state intact — the
// inner Poll runs on every observation so adaptive strategies keep
// learning — and gates only the Fire bit of the result. That makes
// composition associative and fuzz-friendly: any stack of combinators
// over any strategy is still a valid strategy.

// ---- Duty cycle ----

// DutyCycle lets the inner strategy fire only during the ON phase of a
// fixed on/off cycle anchored at chip 0. It is RNG-free.
func DutyCycle(inner Strategy, onChips, offChips int64) Strategy {
	if onChips <= 0 {
		onChips = 1
	}
	if offChips < 0 {
		offChips = 0
	}
	return dutyCycle{inner: inner, on: onChips, off: offChips}
}

type dutyCycle struct {
	inner   Strategy
	on, off int64
}

func (d dutyCycle) Name() string { return fmt.Sprintf("duty(%s)", d.inner.Name()) }

func (d dutyCycle) Emitter(p Params, rng *stats.RNG) Emitter {
	return &dutyEmitter{inner: d.inner.Emitter(p, rng), on: d.on, cycle: d.on + d.off}
}

type dutyEmitter struct {
	inner     Emitter
	on, cycle int64
}

func (e *dutyEmitter) NextPoll() int64 { return e.inner.NextPoll() }

func (e *dutyEmitter) Poll(o Observation) Burst {
	b := e.inner.Poll(o)
	if o.Chip%e.cycle >= e.on {
		b.Fire = false
	}
	return b
}

// ---- Markov on/off schedule ----

// Markov gates the inner strategy with a three-state burst chain — the
// adversarial on/off schedule from the AntiJam model. Per poll: a quiet
// jammer starts a burst with probability PStart; a bursting jammer keeps
// going with probability PStay, otherwise it falls into a refractory
// "recovering" state it leaves with probability PRecover. The chain draws
// exactly one RNG value per poll, independent of the observation, so the
// timeline is reproducible for any worker count. Probabilities are
// clamped to [0, 1].
func Markov(inner Strategy, pStart, pStay, pRecover float64) Strategy {
	return markov{inner: inner,
		pStart: clamp01(pStart), pStay: clamp01(pStay), pRecover: clamp01(pRecover)}
}

func clamp01(p float64) float64 {
	switch {
	case p < 0, p != p: // NaN gates closed
		return 0
	case p > 1:
		return 1
	}
	return p
}

type markov struct {
	inner                   Strategy
	pStart, pStay, pRecover float64
}

func (m markov) Name() string { return fmt.Sprintf("markov(%s)", m.inner.Name()) }

// Probs returns the clamped chain probabilities (always in [0, 1]); the
// combinator fuzz asserts on them.
func (m markov) Probs() (pStart, pStay, pRecover float64) {
	return m.pStart, m.pStay, m.pRecover
}

func (m markov) Emitter(p Params, rng *stats.RNG) Emitter {
	// The gate's RNG is derived (not split) from the shared stream:
	// Derive does not advance the parent, so adding or removing the
	// combinator never perturbs the inner strategy's own draws.
	gate := rng.Derive('m', 'k', 'v')
	return &markovEmitter{inner: m.inner.Emitter(p, rng), m: m, rng: gate}
}

type markovEmitter struct {
	inner Emitter
	m     markov
	rng   *stats.RNG
	state uint8 // 0 quiet, 1 bursting, 2 recovering
}

func (e *markovEmitter) NextPoll() int64 { return e.inner.NextPoll() }

func (e *markovEmitter) Poll(o Observation) Burst {
	// Advance the chain first, with one unconditional draw, so the RNG
	// stream never depends on what the jammer observed.
	u := e.rng.Float64()
	switch e.state {
	case 0:
		if u < e.m.pStart {
			e.state = 1
		}
	case 1:
		if u >= e.m.pStay {
			e.state = 2
		}
	default:
		if u < e.m.pRecover {
			e.state = 0
		}
	}
	b := e.inner.Poll(o)
	if e.state != 1 {
		b.Fire = false
	}
	return b
}

// ---- Spatial zones ----

// Zone is a region of the deployment plane in internal/topo coordinates.
type Zone interface {
	Contains(x, y float64) bool
}

// Rect is the axis-aligned rectangle [X0,X1] × [Y0,Y1].
type Rect struct{ X0, Y0, X1, Y1 float64 }

// Contains implements Zone.
func (r Rect) Contains(x, y float64) bool {
	return x >= r.X0 && x <= r.X1 && y >= r.Y0 && y <= r.Y1
}

// Circle is the disc of radius R around (X, Y).
type Circle struct{ X, Y, R float64 }

// Contains implements Zone.
func (c Circle) Contains(x, y float64) bool {
	dx, dy := x-c.X, y-c.Y
	return dx*dx+dy*dy <= c.R*c.R
}

// InZone activates the inner strategy only for jammers positioned inside
// the zone: outside it the emitter is silent for the whole run. Engines
// that do not know the jammer's position (Params.HasPos false, e.g. the
// open-loop testbed sim) treat every jammer as in-zone.
func InZone(inner Strategy, z Zone) Strategy { return inZone{inner: inner, z: z} }

type inZone struct {
	inner Strategy
	z     Zone
}

func (i inZone) Name() string { return fmt.Sprintf("zone(%s)", i.inner.Name()) }

func (i inZone) Emitter(p Params, rng *stats.RNG) Emitter {
	if p.HasPos && !i.z.Contains(p.X, p.Y) {
		return silentEmitter{end: p.DurationChips}
	}
	return i.inner.Emitter(p, rng)
}

// ---- Targeted victims ----

// Target lets the inner strategy fire only while one of the victim nodes
// is on the air, turning any strategy into a victim-selective one. An
// empty victim list means any transmission qualifies. It is RNG-free.
func Target(inner Strategy, victims ...int) Strategy {
	set := make(map[int]bool, len(victims))
	for _, v := range victims {
		set[v] = true
	}
	return target{inner: inner, victims: set}
}

type target struct {
	inner   Strategy
	victims map[int]bool
}

func (t target) Name() string { return fmt.Sprintf("target(%s)", t.inner.Name()) }

func (t target) Emitter(p Params, rng *stats.RNG) Emitter {
	return &targetEmitter{inner: t.inner.Emitter(p, rng), victims: t.victims}
}

type targetEmitter struct {
	inner   Emitter
	victims map[int]bool
}

func (e *targetEmitter) NextPoll() int64 { return e.inner.NextPoll() }

func (e *targetEmitter) Poll(o Observation) Burst {
	b := e.inner.Poll(o)
	if !b.Fire {
		return b
	}
	if len(e.victims) == 0 {
		b.Fire = len(o.Txs) > 0
		return b
	}
	hit := false
	for _, tx := range o.Txs {
		if e.victims[tx.Src] {
			hit = true
			break
		}
	}
	b.Fire = hit
	return b
}
