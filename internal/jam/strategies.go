package jam

import (
	"ppr/internal/frame"
	"ppr/internal/stats"
)

// ---- Periodic ----

// Periodic jams on a jittered clock with no regard for channel state — the
// classic constant jammer at a duty cycle. It reproduces the legacy
// scenario.Jammer timeline bit-for-bit: the first attempt lands at a
// uniform phase of the period, and each attempt adds uniform jitter.
type Periodic struct {
	// PeriodChips is the interval between attempts; 0 means 50k chips
	// (~25 ms at 2 Mchip/s).
	PeriodChips int64
	// JitterChips uniformly jitters each attempt.
	JitterChips int64
	// Bytes overrides the jam payload size when > 0.
	Bytes int
	// Channel is the channel to jam.
	Channel uint8
}

// Name implements Strategy.
func (Periodic) Name() string { return "periodic" }

// Emitter implements Strategy. The RNG draw order — one Float64 for the
// phase at construction, one Float64 per attempt iff jitter > 0 — matches
// scenario.jammerArrivals exactly; parity tests depend on it.
func (s Periodic) Emitter(p Params, rng *stats.RNG) Emitter {
	period := s.PeriodChips
	if period <= 0 {
		period = 50_000
	}
	return &clockEmitter{
		rng: rng, period: period, jitter: s.JitterChips,
		next:  int64(rng.Float64() * float64(period)),
		fire:  func(Observation) (bool, uint8) { return true, s.Channel },
		bytes: s.Bytes,
	}
}

// clockEmitter is the shared jittered-clock timeline: Periodic and
// Reactive differ only in the fire predicate.
type clockEmitter struct {
	rng            *stats.RNG
	period, jitter int64
	next           int64
	fire           func(Observation) (bool, uint8)
	bytes          int
}

func (e *clockEmitter) NextPoll() int64 {
	t := e.next
	if e.jitter > 0 {
		t += int64(e.rng.Float64() * float64(e.jitter))
	}
	e.next += e.period
	return t
}

func (e *clockEmitter) Poll(o Observation) Burst {
	ok, ch := e.fire(o)
	return Burst{Fire: ok, Bytes: e.bytes, Channel: ch}
}

// ---- Reactive ----

// Reactive senses on a dense clock and jams only when it finds energy
// above the carrier-sense threshold — sense-then-jam. The clock reproduces
// the legacy reactive scenario.Jammer timeline bit-for-bit.
type Reactive struct {
	// PeriodChips is the sensing clock; 0 means 12k chips, under half a
	// 1500-byte frame's air time so ongoing packets are caught mid-flight.
	PeriodChips int64
	// JitterChips uniformly jitters each sensing instant.
	JitterChips int64
	// Bytes overrides the jam payload size when > 0.
	Bytes int
}

// Name implements Strategy.
func (Reactive) Name() string { return "reactive" }

// Emitter implements Strategy.
func (s Reactive) Emitter(p Params, rng *stats.RNG) Emitter {
	period := s.PeriodChips
	if period <= 0 {
		period = 12_000
	}
	threshold := p.ThresholdMW
	return &clockEmitter{
		rng: rng, period: period, jitter: s.JitterChips,
		next: int64(rng.Float64() * float64(period)),
		fire: func(o Observation) (bool, uint8) {
			ch, pw := o.BusiestChannel()
			return pw >= threshold, ch
		},
		bytes: s.Bytes,
	}
}

// ---- Preamble ----

// Preamble is the reactive-on-preamble adversary: it polls densely and
// fires the moment it sees a transmission that started recently — within
// the sync pattern plus one poll period — so the jam burst lands on the
// victim's header or early payload, the cheapest place to kill a frame.
type Preamble struct {
	// PollChips is the sensing clock; 0 means 600 chips.
	PollChips int64
	// Bytes overrides the jam payload size when > 0.
	Bytes int
}

// Name implements Strategy.
func (Preamble) Name() string { return "preamble" }

// Emitter implements Strategy. The emitter is RNG-free: its behaviour is a
// pure function of the observation stream.
func (s Preamble) Emitter(p Params, rng *stats.RNG) Emitter {
	period := s.PollChips
	if period <= 0 {
		period = 600
	}
	return &preambleEmitter{
		period: period,
		lead:   int64(frame.SyncChips) + period,
		bytes:  s.Bytes,
	}
}

type preambleEmitter struct {
	next, period, lead int64
	lastStart          int64 // newest tx start already fired on; init 0 is safe: starts are > 0 or caught by lead
	bytes              int
}

func (e *preambleEmitter) NextPoll() int64 {
	t := e.next
	e.next += e.period
	return t
}

func (e *preambleEmitter) Poll(o Observation) Burst {
	// Fire on the newest transmission that began within the lead window
	// and that we have not already fired on.
	best := int64(-1)
	var ch uint8
	for _, tx := range o.Txs {
		if tx.Start > e.lastStart && o.Chip-tx.Start <= e.lead && tx.Start > best {
			best, ch = tx.Start, tx.Channel
		}
	}
	if best < 0 {
		return Burst{}
	}
	e.lastStart = best
	return Burst{Fire: true, Bytes: e.bytes, Channel: ch}
}

// ---- Sweep ----

// Sweep jams blindly on a creeping clock, cycling through the channels:
// each burst lands one channel further on and slightly later in the
// period, so over a long run the jammer rakes the whole time × frequency
// plane. It is RNG-free and oblivious — the baseline the adaptive
// strategies are measured against.
type Sweep struct {
	// PeriodChips is the base interval between bursts; 0 means 30k chips.
	PeriodChips int64
	// StrideChips is the per-burst phase creep; 0 means PeriodChips/16.
	StrideChips int64
	// Bytes overrides the jam payload size when > 0.
	Bytes int
}

// Name implements Strategy.
func (Sweep) Name() string { return "sweep" }

// Emitter implements Strategy.
func (s Sweep) Emitter(p Params, rng *stats.RNG) Emitter {
	period := s.PeriodChips
	if period <= 0 {
		period = 30_000
	}
	stride := s.StrideChips
	if stride <= 0 {
		stride = period / 16
	}
	nch := p.NumChannels
	if nch <= 0 {
		nch = 1
	}
	return &sweepEmitter{period: period, stride: stride, nch: nch, bytes: s.Bytes}
}

type sweepEmitter struct {
	next, period, stride int64
	ch                   int
	nch                  int
	bytes                int
}

func (e *sweepEmitter) NextPoll() int64 {
	t := e.next
	e.next += e.period + e.stride
	return t
}

func (e *sweepEmitter) Poll(Observation) Burst {
	b := Burst{Fire: true, Bytes: e.bytes, Channel: uint8(e.ch)}
	e.ch++
	if e.ch == e.nch {
		e.ch = 0
	}
	return b
}

// ---- Learner ----

// Learner is the timing-learning adversary (AntiJam's adaptive model): it
// polls densely, builds a histogram of the gaps between successive
// transmission starts it hears, and once the histogram has enough mass it
// fires predictively at lastStart + mode(gap) — hitting periodic or
// near-periodic senders without waiting to sense their energy.
type Learner struct {
	// PollChips is the sensing clock; 0 means 1500 chips.
	PollChips int64
	// BinChips is the histogram bin width; 0 means 2048 chips.
	BinChips int64
	// MinSamples is the histogram mass required before predicting; 0
	// means 8.
	MinSamples int
	// Bytes overrides the jam payload size when > 0.
	Bytes int
}

// Name implements Strategy.
func (Learner) Name() string { return "learner" }

// learnerBins bounds the gap histogram: gaps beyond binChips*learnerBins
// are clamped into the last bin.
const learnerBins = 256

// Emitter implements Strategy. The emitter is RNG-free.
func (s Learner) Emitter(p Params, rng *stats.RNG) Emitter {
	period := s.PollChips
	if period <= 0 {
		period = 1500
	}
	bin := s.BinChips
	if bin <= 0 {
		bin = 2048
	}
	min := s.MinSamples
	if min <= 0 {
		min = 8
	}
	return &learnerEmitter{
		period: period, bin: bin, minSamples: min,
		seen: -1, predictAt: -1, bytes: s.Bytes,
	}
}

type learnerEmitter struct {
	next, period int64
	bin          int64
	minSamples   int
	bytes        int

	hist    [learnerBins]int32
	samples int
	seen    int64 // newest tx start absorbed into the histogram; -1 before the first

	lastPoll    int64
	predictAt   int64 // pending one-shot predictive strike; -1 when none
	predictCh   uint8
	firePredict bool
}

func (e *learnerEmitter) NextPoll() int64 {
	// A predictive strike consumed by the engine but never Polled (the
	// radio was busy at the instant) is simply lost; the flag must not
	// leak onto the next dense poll.
	e.firePredict = false
	if e.predictAt >= 0 && e.predictAt < e.next {
		t := e.predictAt
		e.predictAt = -1
		e.firePredict = true
		e.lastPoll = t
		return t
	}
	t := e.next
	e.next += e.period
	e.lastPoll = t
	return t
}

func (e *learnerEmitter) Poll(o Observation) Burst {
	e.observe(o)
	if e.firePredict {
		e.firePredict = false
		return Burst{Fire: true, Bytes: e.bytes, Channel: e.predictCh}
	}
	return Burst{}
}

// observe absorbs the observation's new transmission starts into the gap
// histogram, oldest first, and arms a predictive strike when the
// histogram has enough mass. It allocates nothing: the hot-path gate
// depends on that.
func (e *learnerEmitter) observe(o Observation) {
	for {
		// Smallest unabsorbed start; Txs is tiny, so the repeated linear
		// scan beats sorting a copy (which would allocate).
		best := int64(-1)
		var ch uint8
		for _, tx := range o.Txs {
			if tx.Start > e.seen && (best < 0 || tx.Start < best) {
				best, ch = tx.Start, tx.Channel
			}
		}
		if best < 0 {
			return
		}
		if e.seen >= 0 {
			gap := (best - e.seen) / e.bin
			if gap >= learnerBins {
				gap = learnerBins - 1
			}
			e.hist[gap]++
			e.samples++
		}
		e.seen = best
		if e.samples >= e.minSamples {
			mode := 0
			for i, c := range e.hist {
				if c > e.hist[mode] {
					mode = i
				}
			}
			gap := int64(mode)*e.bin + e.bin/2
			if at := e.seen + gap; at > e.lastPoll {
				e.predictAt = at
				e.predictCh = ch
			}
		}
	}
}
