package jam

// The stock adversary roster. Periodic and reactive reproduce the legacy
// scenario jammers bit-for-bit; the rest are the composable additions —
// adaptive strategies and combinator-shaped variants. New strategies
// register here (or from any other package's init) and immediately become
// selectable by name everywhere: -jammer on the CLI, scenario overlays,
// netsim jammer nodes and the resilience experiment.
func init() {
	Register("periodic", func() Strategy {
		// scenario.DefaultJammer's timeline: 40-byte burst every ~25 ms.
		return Periodic{PeriodChips: 50_000, JitterChips: 8_000}
	})
	Register("reactive", func() Strategy {
		// scenario.DefaultReactiveJammer's timeline: sense every ~6 ms.
		return Reactive{PeriodChips: 12_000, JitterChips: 2_000}
	})
	Register("preamble", func() Strategy { return Preamble{} })
	Register("sweep", func() Strategy { return Sweep{} })
	Register("learner", func() Strategy { return Learner{} })
	Register("duty", func() Strategy {
		// Half-on/half-off periodic jamming: ~150 ms bursts of the stock
		// periodic jammer separated by ~150 ms of silence.
		return DutyCycle(Periodic{PeriodChips: 50_000, JitterChips: 8_000}, 300_000, 300_000)
	})
	Register("markov", func() Strategy {
		// Markov-modulated periodic jamming with the AntiJam-style burst
		// chain: rare burst starts, sticky bursts, slow recovery.
		return Markov(Periodic{PeriodChips: 50_000, JitterChips: 8_000}, 0.1, 0.8, 0.3)
	})
	Register("targeted", func() Strategy {
		// Preamble-reactive jamming aimed at node 1 — by convention the
		// first victim sender in jammed deployments.
		return Target(Preamble{}, 1)
	})
}
