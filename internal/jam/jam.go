// Package jam is the composable adversary model: named jamming strategies
// behind a registry (like schemes and scenarios), combinators that shape
// them in time (duty cycles, Markov on/off), space (zones over topology
// coordinates) and target selection, and adaptive strategies that observe
// the shared chip-time line — reacting to sensed energy, to preambles, or
// to learned sender timing.
//
// The decomposition mirrors the AdversarialJammingModel shape from the
// anti-jamming literature (Richa et al.'s AntiJam adversary that learns the
// senders' timing; Pelechrinis et al.'s measurement-driven countermeasure
// selection): a Strategy is a pure description, an Emitter is its stateful
// per-run instantiation, and combinators wrap strategies without knowing
// what they wrap.
//
// Determinism contract: an Emitter's only randomness source is the RNG it
// was constructed with, handed to the Strategy by the engine (derived per
// jammer node in netsim, split from the traffic RNG in the open-loop sim).
// NextPoll returns non-decreasing chip times and may consume RNG; Poll
// decides whether the pending poll fires and must draw RNG in a fixed
// order independent of the observation so identical runs replay
// bit-identically for any worker count. The Observation's slices are
// engine-owned scratch, valid only during the Poll call — emitters must
// copy anything they keep.
package jam

import (
	"fmt"
	"sort"

	"ppr/internal/stats"
)

// Params carries the run-level facts a strategy scales itself by.
type Params struct {
	// DurationChips bounds the run; an emitter whose NextPoll reaches it
	// is never polled again.
	DurationChips int64
	// BurstBytes is the default jam frame payload size (Burst.Bytes == 0).
	BurstBytes int
	// ThresholdMW is the carrier-sense threshold in milliwatts — the
	// "channel is busy" line reactive strategies test against.
	ThresholdMW float64
	// NoiseMW is the noise floor in milliwatts (the Busy baseline).
	NoiseMW float64
	// NumChannels is the number of orthogonal channels (>= 1); Burst
	// channels are taken modulo this.
	NumChannels int
	// X, Y locate the jammer when the engine knows its position
	// (HasPos); zone combinators gate on it.
	X, Y   float64
	HasPos bool
}

// ActiveTx is one transmission on the air at the observation instant, as
// heard by the jammer (inaudible transmissions are filtered out by the
// engine before the observation is built).
type ActiveTx struct {
	// Src is the transmitting node's index.
	Src int
	// Start and End bound the transmission in absolute chips.
	Start, End int64
	// Channel is the transmission's channel.
	Channel uint8
}

// Observation is what the jammer senses at a poll instant. Busy and Txs
// are engine scratch: valid only for the duration of the Poll call.
type Observation struct {
	// Chip is the poll instant.
	Chip int64
	// Busy is the sensed power per channel in milliwatts, excluding the
	// jammer's own emissions, indexed by channel; always >= 1 entry.
	Busy []float64
	// Txs are the transmissions audible to the jammer that are on the air
	// at Chip.
	Txs []ActiveTx
}

// BusiestChannel returns the channel with the most sensed power.
func (o Observation) BusiestChannel() (ch uint8, powerMW float64) {
	for i, p := range o.Busy {
		if p > powerMW {
			ch, powerMW = uint8(i), p
		}
	}
	return ch, powerMW
}

// Burst is an emitter's decision at a poll instant.
type Burst struct {
	// Fire reports whether to transmit a jam frame now.
	Fire bool
	// Bytes sizes the jam payload; 0 means Params.BurstBytes.
	Bytes int
	// Channel selects the channel to jam (modulo Params.NumChannels).
	Channel uint8
}

// Emitter is a strategy instantiated for one run: a stream of poll
// instants plus the fire decision at each. The engine calls NextPoll to
// learn when the jammer next wants to look at the channel, builds an
// Observation for that instant, and calls Poll exactly once for it.
// NextPoll values must be non-decreasing; a value at or past
// Params.DurationChips ends the jammer's timeline.
type Emitter interface {
	NextPoll() int64
	Poll(Observation) Burst
}

// Strategy is a named, immutable description of adversarial behaviour.
type Strategy interface {
	// Name labels the strategy in registries and composed names.
	Name() string
	// Emitter instantiates the strategy for one run. rng is dedicated to
	// this emitter and must be its only randomness source.
	Emitter(p Params, rng *stats.RNG) Emitter
}

// ---- Registry ----

var registry = map[string]func() Strategy{}

// Register adds a named strategy constructor; it panics on duplicates so
// collisions surface at init time.
func Register(name string, mk func() Strategy) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("jam: duplicate strategy %q", name))
	}
	registry[name] = mk
}

// ByName resolves a strategy by registry name.
func ByName(name string) (Strategy, error) {
	mk, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("jam: unknown strategy %q (available: %v)", name, Names())
	}
	return mk(), nil
}

// Names lists the registered strategy names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// silentEmitter never polls: the strategy is inert for this run (e.g. the
// jammer sits outside its zone).
type silentEmitter struct{ end int64 }

func (s silentEmitter) NextPoll() int64        { return s.end }
func (s silentEmitter) Poll(Observation) Burst { return Burst{} }
