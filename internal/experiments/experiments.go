// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 7) on the simulated testbed. Each experiment function
// returns structured series that cmd/pprsim prints in the same rows/columns
// the paper reports, and the root-level benchmarks wrap.
//
// Methodology note: like the paper ("each node sends a stream of bits,
// which are formed into traces and post-processed to emulate a packet size
// of 1500 bytes"), the capacity experiments run the simulator once per
// (load, carrier-sense) point to produce symbol-level traces with SoftPHY
// hints and ground truth, then post-process the same traces under every
// scheme — packet CRC, fragmented CRC, and PPR.
package experiments

import (
	"fmt"

	"ppr/internal/baseline"
	"ppr/internal/radio"
	"ppr/internal/sim"
	"ppr/internal/testbed"
)

// The paper's three offered-load operating points, bits/second/node.
const (
	LoadModerate = 3500
	LoadMedium   = 6900
	LoadHigh     = 13800
)

// Loads lists them in presentation order.
var Loads = []float64{LoadModerate, LoadMedium, LoadHigh}

// LoadName renders a load the way the paper labels it.
func LoadName(bps float64) string { return fmt.Sprintf("%.1f Kbits/s/node", bps/1000) }

// Options configures an experiment run.
type Options struct {
	// Seed fixes the testbed placement and all channel/traffic randomness.
	Seed uint64
	// Quick shrinks packet sizes and durations so the full suite runs in
	// seconds (used by tests and -quick benches); the shapes survive, the
	// statistics are just noisier.
	Quick bool
}

// PacketBytes returns the emulated packet size: the paper's 1500 bytes, or
// a reduced size in quick mode.
func (o Options) PacketBytes() int {
	if o.Quick {
		return 250
	}
	return 1500
}

// DurationSec returns the simulated airtime per operating point.
func (o Options) DurationSec() float64 {
	if o.Quick {
		return 4
	}
	return 25
}

// Bed builds the options' deployment.
func (o Options) Bed() *testbed.Testbed {
	return testbed.New(radio.DefaultParams(), o.Seed)
}

// simConfig assembles the sim configuration for one operating point.
func (o Options) simConfig(tb *testbed.Testbed, offeredBps float64, carrierSense bool) sim.Config {
	return sim.Config{
		Testbed:      tb,
		OfferedBps:   offeredBps,
		PacketBytes:  o.PacketBytes(),
		DurationSec:  o.DurationSec(),
		CarrierSense: carrierSense,
		Seed:         o.Seed ^ uint64(offeredBps) ^ boolBit(carrierSense)<<40,
	}
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Scheme identifies a partial-recovery scheme under post-processing.
type Scheme int

const (
	// SchemePacketCRC is the status quo: whole packet or nothing.
	SchemePacketCRC Scheme = iota
	// SchemeFragCRC is the fragmented-CRC baseline of Sec. 3.4.
	SchemeFragCRC
	// SchemePPR delivers exactly the symbols whose SoftPHY hint clears η.
	SchemePPR
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemePacketCRC:
		return "Packet CRC"
	case SchemeFragCRC:
		return "Fragmented CRC"
	default:
		return "PPR"
	}
}

// SchemeParams fixes the per-scheme knobs.
type SchemeParams struct {
	// FragBytes is the fragmented-CRC fragment size (the paper settles on
	// 50 bytes, Sec. 7.2.1).
	FragBytes int
	// Eta is PPR's Hamming-distance threshold (the paper uses 6).
	Eta float64
}

// DefaultSchemeParams returns the paper's operating point.
func DefaultSchemeParams() SchemeParams { return SchemeParams{FragBytes: 50, Eta: 6} }

// AppBytesPerPacket returns how many application bytes one link-layer
// packet carries under the scheme: fragmented CRC spends part of the
// payload on per-fragment checksums.
func AppBytesPerPacket(s Scheme, p SchemeParams, payloadBytes int) int {
	if s == SchemeFragCRC {
		return baseline.AppCapacity(payloadBytes, p.FragBytes)
	}
	return payloadBytes
}

// DeliveredAppBytes post-processes one outcome under the scheme, returning
// the application bytes the scheme would hand to higher layers. Only
// correct bytes count: a delivered-but-wrong byte is not delivery.
func DeliveredAppBytes(o *sim.Outcome, s Scheme, p SchemeParams, payloadBytes int) int {
	if !o.Acquired {
		return 0
	}
	mask := o.CorrectMask()
	switch s {
	case SchemePacketCRC:
		for _, ok := range mask {
			if !ok {
				return 0
			}
		}
		return payloadBytes

	case SchemeFragCRC:
		appBytes := baseline.AppCapacity(payloadBytes, p.FragBytes)
		delivered := 0
		pos := 0 // payload byte cursor
		for off := 0; off < appBytes; off += p.FragBytes {
			end := off + p.FragBytes
			if end > appBytes {
				end = appBytes
			}
			fragPayloadBytes := end - off + baseline.FragOverhead
			ok := true
			for b := pos; b < pos+fragPayloadBytes && ok; b++ {
				if 2*b+1 >= len(mask) || !mask[2*b] || !mask[2*b+1] {
					ok = false
				}
			}
			if ok {
				delivered += end - off
			}
			pos += fragPayloadBytes
		}
		return delivered

	default: // SchemePPR
		goodCorrect := 0
		for i, d := range o.Decisions {
			idx := o.MissingPrefix + i
			if idx >= len(mask) {
				break
			}
			if d.Hint <= p.Eta && mask[idx] {
				goodCorrect++
			}
		}
		return goodCorrect * 4 / 8
	}
}

// LinkKey identifies a (sender, receiver) pair.
type LinkKey struct {
	// Src is the sender index; Rcv the receiver index.
	Src, Rcv int
}

// LinkAccum aggregates per-link delivery across a trace.
type LinkAccum struct {
	// DeliveredBytes is the total application bytes the scheme delivered.
	DeliveredBytes int
	// SentBytes is the total application bytes offered on the link.
	SentBytes int
	// Packets counts transmissions scored on the link.
	Packets int
}

// Rate returns the link's equivalent delivery rate in [0, 1].
func (a LinkAccum) Rate() float64 {
	if a.SentBytes == 0 {
		return 0
	}
	return float64(a.DeliveredBytes) / float64(a.SentBytes)
}

// PerLinkDelivery post-processes a trace under one scheme for one variant
// index, returning per-link accumulators. Only links audible in the
// deployment appear (the trace only contains audible outcomes).
func PerLinkDelivery(outs []sim.Outcome, variant int, s Scheme, p SchemeParams, payloadBytes int) map[LinkKey]LinkAccum {
	appPerPkt := AppBytesPerPacket(s, p, payloadBytes)
	acc := map[LinkKey]LinkAccum{}
	for i := range outs {
		o := &outs[i]
		if o.Variant != variant {
			continue
		}
		k := LinkKey{Src: o.Src, Rcv: o.Receiver}
		a := acc[k]
		a.Packets++
		a.SentBytes += appPerPkt
		a.DeliveredBytes += DeliveredAppBytes(o, s, p, payloadBytes)
		acc[k] = a
	}
	return acc
}

// Rates flattens per-link accumulators to a rate sample per link.
func Rates(acc map[LinkKey]LinkAccum) []float64 {
	out := make([]float64, 0, len(acc))
	for _, a := range acc {
		out = append(out, a.Rate())
	}
	return out
}

// ThroughputsKbps converts per-link delivered bytes to Kbit/s over the
// run's duration.
func ThroughputsKbps(acc map[LinkKey]LinkAccum, durationSec float64) []float64 {
	out := make([]float64, 0, len(acc))
	for _, a := range acc {
		out = append(out, float64(a.DeliveredBytes)*8/durationSec/1000)
	}
	return out
}

// simRunCached memoizes simulation runs within the process: Summary and
// several figures share operating points, and the underlying traces are
// deterministic in the config, so re-running them is pure waste.
func simRunCached(cfg sim.Config) ([]*sim.Transmission, []sim.Outcome) {
	// Testbeds are value-deterministic in their seed; key on an anchor
	// position rather than the pointer so identically-built deployments hit.
	key := fmt.Sprintf("%v|%v|%d|%v|%v|%d",
		cfg.Testbed.Senders[0], cfg.OfferedBps, cfg.PacketBytes, cfg.DurationSec, cfg.CarrierSense, cfg.Seed)
	if got, hit := simCache[key]; hit {
		return got.txs, got.outs
	}
	txs, outs := sim.Run(cfg, StandardVariants())
	simCache[key] = cachedRun{txs: txs, outs: outs}
	return txs, outs
}

var simCache = map[string]cachedRun{}

type cachedRun struct {
	txs  []*sim.Transmission
	outs []sim.Outcome
}

// StandardVariants returns the two receiver variants every capacity
// experiment compares: without and with postamble decoding.
func StandardVariants() []sim.Variant {
	return []sim.Variant{
		{Name: "no postamble decoding", UsePostamble: false},
		{Name: "postamble decoding", UsePostamble: true},
	}
}
