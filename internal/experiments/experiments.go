// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 7) on the simulated testbed. Each experiment function
// returns structured series that cmd/pprsim prints in the same rows/columns
// the paper reports, and the root-level benchmarks wrap.
//
// Methodology note: like the paper ("each node sends a stream of bits,
// which are formed into traces and post-processed to emulate a packet size
// of 1500 bytes"), the capacity experiments run the simulator once per
// (load, carrier-sense) point to produce symbol-level traces with SoftPHY
// hints and ground truth, then post-process the same traces under every
// scheme — packet CRC, fragmented CRC, and PPR.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"ppr/internal/radio"
	"ppr/internal/scenario"
	"ppr/internal/schemes"
	"ppr/internal/sim"
	"ppr/internal/testbed"
)

// The paper's three offered-load operating points, bits/second/node.
const (
	LoadModerate = 3500
	LoadMedium   = 6900
	LoadHigh     = 13800
)

// Loads lists them in presentation order.
var Loads = []float64{LoadModerate, LoadMedium, LoadHigh}

// LoadName renders a load the way the paper labels it.
func LoadName(bps float64) string { return fmt.Sprintf("%.1f Kbits/s/node", bps/1000) }

// Options configures an experiment run.
type Options struct {
	// Seed fixes the testbed placement and all channel/traffic randomness.
	Seed uint64
	// Quick shrinks packet sizes and durations so the full suite runs in
	// seconds (used by tests and -quick benches); the shapes survive, the
	// statistics are just noisier.
	Quick bool
	// Workers bounds the simulation engine's parallelism; 0 means all
	// cores. Results do not depend on it.
	Workers int
	// Scenario names the traffic scenario to run (see internal/scenario);
	// "" means the paper's all-Poisson workload.
	Scenario string
	// Schemes names the recovery schemes the delivery figures post-process
	// (see schemes.Names()); empty means every registered scheme.
	Schemes []string
}

// schemeList resolves the configured scheme selection. It panics on an
// unknown name; CLI entry points validate against schemes.Names() first.
func (o Options) schemeList() []schemes.RecoveryScheme {
	if len(o.Schemes) == 0 {
		return schemes.All()
	}
	out := make([]schemes.RecoveryScheme, 0, len(o.Schemes))
	for _, name := range o.Schemes {
		s, err := schemes.ByName(name)
		if err != nil {
			panic(err)
		}
		out = append(out, s)
	}
	return out
}

// PacketBytes returns the emulated packet size: the paper's 1500 bytes, or
// a reduced size in quick mode.
func (o Options) PacketBytes() int {
	if o.Quick {
		return 250
	}
	return 1500
}

// DurationSec returns the simulated airtime per operating point.
func (o Options) DurationSec() float64 {
	if o.Quick {
		return 4
	}
	return 25
}

// Bed builds the options' deployment.
func (o Options) Bed() *testbed.Testbed {
	return testbed.New(radio.DefaultParams(), o.Seed)
}

// simConfig assembles the sim configuration for one operating point. It
// panics on an unknown scenario name; CLI entry points validate the name
// against scenario.Names() first.
func (o Options) simConfig(tb *testbed.Testbed, offeredBps float64, carrierSense bool) sim.Config {
	sc, err := scenario.ByName(o.Scenario)
	if err != nil {
		panic(err)
	}
	return sim.Config{
		Testbed:      tb,
		OfferedBps:   offeredBps,
		PacketBytes:  o.PacketBytes(),
		DurationSec:  o.DurationSec(),
		CarrierSense: carrierSense,
		Seed:         o.Seed ^ uint64(offeredBps) ^ boolBit(carrierSense)<<40,
		Scenario:     sc,
		Workers:      o.Workers,
	}
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// SchemeParams fixes the per-scheme knobs (see schemes.Params).
type SchemeParams = schemes.Params

// DefaultSchemeParams returns the paper's operating point.
func DefaultSchemeParams() SchemeParams { return schemes.DefaultParams() }

// LinkKey identifies a (sender, receiver) pair.
type LinkKey struct {
	// Src is the sender index; Rcv the receiver index.
	Src, Rcv int
}

// LinkAccum aggregates per-link delivery across a trace.
type LinkAccum struct {
	// DeliveredBytes is the total application bytes the scheme delivered.
	DeliveredBytes int
	// SentBytes is the total application bytes offered on the link.
	SentBytes int
	// Packets counts transmissions scored on the link.
	Packets int
}

// Rate returns the link's equivalent delivery rate in [0, 1].
func (a LinkAccum) Rate() float64 {
	if a.SentBytes == 0 {
		return 0
	}
	return float64(a.DeliveredBytes) / float64(a.SentBytes)
}

// PerLinkDelivery post-processes a trace under one scheme for one variant
// index, returning per-link accumulators. Only links audible in the
// deployment appear (the trace only contains audible outcomes). It is the
// one-off convenience wrapper over NewPost; figure code goes through
// Trace.Post so correctness masks are computed once and shared across every
// scheme and variant.
func PerLinkDelivery(outs []sim.Outcome, variant int, s schemes.RecoveryScheme, p SchemeParams, payloadBytes int) map[LinkKey]LinkAccum {
	return NewPost(outs, payloadBytes, 0).PerLinkDelivery(variant, s, p)
}

// fanOut splits [0, n) into contiguous shards over at most workers
// goroutines (0 means all cores) and waits for fn on each; shard indexes
// are dense in [0, nShards). It is the same bounded fan-out Deliver uses
// for (receiver, window) units, applied to post-processing.
func fanOut(n, workers int, fn func(shard, lo, hi int)) (nShards int) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, 0, n)
			return 1
		}
		return 0
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		lo, hi := i*n/workers, (i+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(shard, lo, hi int) {
			defer wg.Done()
			fn(shard, lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
	return workers
}

// Masks computes every acquired outcome's CorrectMask over a bounded worker
// pool, index-aligned with outs (unacquired outcomes get nil — no scheme
// scores them). This is the shared-mask optimization: the seed recomputed
// the mask inside DeliveredAppBytes, once per outcome per curve, so a
// six-curve figure paid for ground-truth comparison six times.
func Masks(outs []sim.Outcome, workers int) [][]bool {
	masks := make([][]bool, len(outs))
	fanOut(len(outs), workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if outs[i].Acquired {
				masks[i] = outs[i].CorrectMask()
			}
		}
	})
	return masks
}

// Post is a post-processor bound to one outcome trace: it owns the shared
// per-outcome correctness masks and the worker budget scheme scoring fans
// out over. Safe for concurrent use once constructed (all fields are
// read-only).
type Post struct {
	outs         []sim.Outcome
	masks        [][]bool
	payloadBytes int
	workers      int
}

// NewPost builds a post-processor over outs, computing the correctness
// masks once. workers bounds the fan-out (0 = all cores); results do not
// depend on it.
func NewPost(outs []sim.Outcome, payloadBytes, workers int) *Post {
	return &Post{
		outs:         outs,
		masks:        Masks(outs, workers),
		payloadBytes: payloadBytes,
		workers:      workers,
	}
}

// PerLinkDelivery scores every outcome of one variant under the scheme,
// fanning the trace out over the bounded worker pool and merging the
// shard-local accumulators. Accumulation is integer sums, so the result is
// identical for every worker count.
func (pp *Post) PerLinkDelivery(variant int, s schemes.RecoveryScheme, p SchemeParams) map[LinkKey]LinkAccum {
	appPerPkt := s.AppBytesPerPacket(p, pp.payloadBytes)
	maxShards := pp.workers
	if maxShards <= 0 {
		maxShards = runtime.NumCPU()
	}
	partial := make([]map[LinkKey]LinkAccum, maxShards)
	nShards := fanOut(len(pp.outs), pp.workers, func(shard, lo, hi int) {
		acc := map[LinkKey]LinkAccum{}
		for i := lo; i < hi; i++ {
			o := &pp.outs[i]
			if o.Variant != variant {
				continue
			}
			k := LinkKey{Src: o.Src, Rcv: o.Receiver}
			a := acc[k]
			a.Packets++
			a.SentBytes += appPerPkt
			if o.Acquired {
				a.DeliveredBytes += s.DeliveredAppBytes(pp.masks[i], o, p, pp.payloadBytes)
			}
			acc[k] = a
		}
		partial[shard] = acc
	})
	merged := map[LinkKey]LinkAccum{}
	for shard := 0; shard < nShards; shard++ {
		for k, a := range partial[shard] {
			m := merged[k]
			m.Packets += a.Packets
			m.SentBytes += a.SentBytes
			m.DeliveredBytes += a.DeliveredBytes
			merged[k] = m
		}
	}
	return merged
}

// Rates flattens per-link accumulators to a rate sample per link.
func Rates(acc map[LinkKey]LinkAccum) []float64 {
	out := make([]float64, 0, len(acc))
	for _, a := range acc {
		out = append(out, a.Rate())
	}
	return out
}

// ThroughputsKbps converts per-link delivered bytes to Kbit/s over the
// run's duration.
func ThroughputsKbps(acc map[LinkKey]LinkAccum, durationSec float64) []float64 {
	out := make([]float64, 0, len(acc))
	for _, a := range acc {
		out = append(out, float64(a.DeliveredBytes)*8/durationSec/1000)
	}
	return out
}

// Trace is one memoized simulation run: the schedule and the full outcome
// trace for the StandardVariants at one operating point. Experiments
// post-process it; they never mutate it.
type Trace struct {
	// Cfg is the configuration the trace was produced under.
	Cfg sim.Config
	// Txs is the transmission schedule.
	Txs []*sim.Transmission
	// Outs is the per-(transmission, receiver, variant) outcome trace.
	Outs []sim.Outcome

	// maskOnce guards masks: the per-outcome correctness masks are built on
	// first use and shared by every figure post-processing the trace.
	maskOnce sync.Once
	masks    [][]bool
}

// Post returns a post-processor over the trace's outcomes. The correctness
// masks are computed once per trace — however many schemes, variants and
// figures score it — and workers bounds each call's delivery fan-out (0 =
// all cores; results do not depend on it).
func (tr *Trace) Post(workers int) *Post {
	tr.maskOnce.Do(func() { tr.masks = Masks(tr.Outs, workers) })
	return &Post{
		outs:         tr.Outs,
		masks:        tr.masks,
		payloadBytes: tr.Cfg.PacketBytes,
		workers:      workers,
	}
}

// traceKey identifies an operating point: everything that changes the trace.
// Workers is deliberately absent — the engine guarantees worker count does
// not change results.
type traceKey struct {
	seed         uint64
	quick        bool
	scenario     string
	load         float64
	carrierSense bool
}

// TraceCache memoizes simulation traces by operating point. This is the
// paper's own methodology made architectural: the testbed traces were
// collected once and every recovery scheme was post-processed over the same
// traces (Sec. 7.2), so the figures sharing an operating point — Fig. 9/10
// with the hint CDFs and Table 2, Fig. 11/12 with Summary — must share one
// simulation run instead of re-running it per figure. Safe for concurrent
// use; a cache miss runs the simulator outside the lock, so distinct
// operating points fill in parallel.
type TraceCache struct {
	mu      sync.Mutex
	entries map[traceKey]*traceEntry
	hits    int
	misses  int
}

// traceEntry pairs the fill latch with its trace so an in-flight Get keeps
// a handle to the entry it joined even if Reset swaps the map underneath.
type traceEntry struct {
	once sync.Once
	tr   *Trace
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{entries: map[traceKey]*traceEntry{}}
}

// SharedTraces is the process-wide cache every experiment entry point draws
// from, so a suite regenerating all figures simulates each operating point
// exactly once.
var SharedTraces = NewTraceCache()

// Get returns the trace for (o, load, carrierSense), simulating it on first
// use. Concurrent callers asking for the same point block until the single
// simulation finishes; callers asking for different points proceed.
func (c *TraceCache) Get(o Options, load float64, carrierSense bool) *Trace {
	key := traceKey{
		seed:         o.Seed,
		quick:        o.Quick,
		scenario:     o.Scenario,
		load:         load,
		carrierSense: carrierSense,
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &traceEntry{}
		c.entries[key] = e
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()

	e.once.Do(func() {
		cfg := o.simConfig(o.Bed(), load, carrierSense)
		txs, outs := sim.Run(cfg, StandardVariants())
		e.tr = &Trace{Cfg: cfg, Txs: txs, Outs: outs}
	})
	return e.tr
}

// Stats returns the cache's hit and miss counts so speedup claims can be
// measured rather than asserted.
func (c *TraceCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Reset drops every cached trace and zeroes the counters (cold-cache
// benchmarks). Gets already in flight keep the entry they joined, so they
// still return a complete trace.
func (c *TraceCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[traceKey]*traceEntry{}
	c.hits, c.misses = 0, 0
}

// Trace returns the shared-cache trace for one operating point under these
// options — the entry point every figure uses.
func (o Options) Trace(load float64, carrierSense bool) *Trace {
	return SharedTraces.Get(o, load, carrierSense)
}

// StandardVariants returns the two receiver variants every capacity
// experiment compares: without and with postamble decoding.
func StandardVariants() []sim.Variant {
	return []sim.Variant{
		{Name: "no postamble decoding", UsePostamble: false},
		{Name: "postamble decoding", UsePostamble: true},
	}
}
