// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 7) on the simulated testbed. The package is organised
// around three pieces:
//
//   - The Experiment registry (Register / ByName / Names / All): every
//     figure and table is a named Experiment whose Run(ctx, Options)
//     produces a Dataset — the one typed result model all entry points
//     share (labelled series of points with units, percentile bands and
//     metadata). New experiments plug in by name, exactly like recovery
//     schemes and traffic scenarios.
//   - The Runner, which executes a set of experiments concurrently on a
//     bounded worker pool, sharing one TraceCache so figures that
//     post-process the same operating point never re-simulate it, with
//     context cancellation threaded down through simulation windows and
//     closed-loop cells, streaming per-experiment progress callbacks.
//   - The typed entry points (Fig3 … Fig17, Table2, Summary, Diversity),
//     kept as thin wrappers over the same code paths for callers that want
//     the figure-specific structs.
//
// Methodology note: like the paper ("each node sends a stream of bits,
// which are formed into traces and post-processed to emulate a packet size
// of 1500 bytes"), the capacity experiments run the simulator once per
// (load, carrier-sense) point to produce symbol-level traces with SoftPHY
// hints and ground truth, then post-process the same traces under every
// scheme — packet CRC, fragmented CRC, and PPR.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ppr/internal/obs"
	"ppr/internal/radio"
	"ppr/internal/scenario"
	"ppr/internal/schemes"
	"ppr/internal/sim"
	"ppr/internal/testbed"
)

// The paper's three offered-load operating points, bits/second/node.
const (
	LoadModerate = 3500
	LoadMedium   = 6900
	LoadHigh     = 13800
)

// Loads lists them in presentation order.
var Loads = []float64{LoadModerate, LoadMedium, LoadHigh}

// LoadName renders a load the way the paper labels it.
func LoadName(bps float64) string { return fmt.Sprintf("%.1f Kbits/s/node", bps/1000) }

// Options configures an experiment run.
type Options struct {
	// Seed fixes the testbed placement and all channel/traffic randomness.
	Seed uint64
	// Quick shrinks packet sizes and durations so the full suite runs in
	// seconds (used by tests and -quick benches); the shapes survive, the
	// statistics are just noisier.
	Quick bool
	// Workers bounds the simulation engine's parallelism; 0 means all
	// cores. Results do not depend on it.
	Workers int
	// Scenario names the traffic scenario to run (see internal/scenario);
	// "" means the paper's all-Poisson workload.
	Scenario string
	// Schemes names the recovery schemes the delivery figures post-process
	// (see schemes.Names()); empty means every registered scheme.
	Schemes []string
	// Jammers names the jam strategies the resilience experiment sweeps
	// (see jam.Names()); empty means the default adversary panel.
	Jammers []string
	// Cache is the trace cache the experiments draw from; nil means the
	// process-wide SharedTraces. A Runner regenerating a suite hands every
	// experiment the same cache, so concurrent figures sharing an operating
	// point collapse to one simulation.
	Cache *TraceCache
	// Tracer, when non-nil, records a discrete-event timeline of the network
	// simulations the experiment runs (one trace process per netsim run, one
	// lane per interference domain; see internal/obs). Purely observational:
	// results are bit-identical with or without it. Not part of the trace
	// cache key.
	Tracer *obs.Tracer
}

// cache resolves the configured trace cache.
func (o Options) cache() *TraceCache {
	if o.Cache != nil {
		return o.Cache
	}
	return SharedTraces
}

// schemeList resolves the configured scheme selection. It panics on an
// unknown name; CLI entry points validate against schemes.Names() first.
func (o Options) schemeList() []schemes.RecoveryScheme {
	if len(o.Schemes) == 0 {
		return schemes.All()
	}
	out := make([]schemes.RecoveryScheme, 0, len(o.Schemes))
	for _, name := range o.Schemes {
		s, err := schemes.ByName(name)
		if err != nil {
			panic(err)
		}
		out = append(out, s)
	}
	return out
}

// PacketBytes returns the emulated packet size: the paper's 1500 bytes, or
// a reduced size in quick mode.
func (o Options) PacketBytes() int {
	if o.Quick {
		return 250
	}
	return 1500
}

// DurationSec returns the simulated airtime per operating point.
func (o Options) DurationSec() float64 {
	if o.Quick {
		return 4
	}
	return 25
}

// Bed builds the options' deployment.
func (o Options) Bed() *testbed.Testbed {
	return testbed.New(radio.DefaultParams(), o.Seed)
}

// simConfig assembles the sim configuration for one operating point. It
// panics on an unknown scenario name; CLI entry points validate the name
// against scenario.Names() first.
func (o Options) simConfig(tb *testbed.Testbed, offeredBps float64, carrierSense bool) sim.Config {
	sc, err := scenario.ByName(o.Scenario)
	if err != nil {
		panic(err)
	}
	return sim.Config{
		Testbed:      tb,
		OfferedBps:   offeredBps,
		PacketBytes:  o.PacketBytes(),
		DurationSec:  o.DurationSec(),
		CarrierSense: carrierSense,
		Seed:         o.Seed ^ uint64(offeredBps) ^ boolBit(carrierSense)<<40,
		Scenario:     sc,
		Workers:      o.Workers,
	}
}

// must panics on an impossible error: the typed entry points run their
// ctx-aware bodies under context.Background(), which never cancels — the
// only error source in those paths.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// SchemeParams fixes the per-scheme knobs (see schemes.Params).
type SchemeParams = schemes.Params

// DefaultSchemeParams returns the paper's operating point.
func DefaultSchemeParams() SchemeParams { return schemes.DefaultParams() }

// LinkKey identifies a (sender, receiver) pair.
type LinkKey struct {
	// Src is the sender index; Rcv the receiver index.
	Src, Rcv int
}

// LinkAccum aggregates per-link delivery across a trace.
type LinkAccum struct {
	// DeliveredBytes is the total application bytes the scheme delivered.
	DeliveredBytes int
	// SentBytes is the total application bytes offered on the link.
	SentBytes int
	// Packets counts transmissions scored on the link.
	Packets int
}

// Rate returns the link's equivalent delivery rate in [0, 1].
func (a LinkAccum) Rate() float64 {
	if a.SentBytes == 0 {
		return 0
	}
	return float64(a.DeliveredBytes) / float64(a.SentBytes)
}

// PerLinkDelivery post-processes a trace under one scheme for one variant
// index, returning per-link accumulators. Only links audible in the
// deployment appear (the trace only contains audible outcomes). It is the
// one-off convenience wrapper over NewPost; figure code goes through
// Trace.Post so correctness masks are computed once and shared across every
// scheme and variant.
func PerLinkDelivery(outs []sim.Outcome, variant int, s schemes.RecoveryScheme, p SchemeParams, payloadBytes int) map[LinkKey]LinkAccum {
	return NewPost(outs, payloadBytes, 0).PerLinkDelivery(variant, s, p)
}

// fanOut splits [0, n) into contiguous shards over at most workers
// goroutines (0 means all cores) and waits for fn on each; shard indexes
// are dense in [0, nShards). It is the same bounded fan-out Deliver uses
// for (receiver, window) units, applied to post-processing.
func fanOut(n, workers int, fn func(shard, lo, hi int)) (nShards int) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, 0, n)
			return 1
		}
		return 0
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		lo, hi := i*n/workers, (i+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(shard, lo, hi int) {
			defer wg.Done()
			fn(shard, lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
	return workers
}

// Masks computes every acquired outcome's CorrectMask over a bounded worker
// pool, index-aligned with outs (unacquired outcomes get nil — no scheme
// scores them). This is the shared-mask optimization: the seed recomputed
// the mask inside DeliveredAppBytes, once per outcome per curve, so a
// six-curve figure paid for ground-truth comparison six times.
func Masks(outs []sim.Outcome, workers int) [][]bool {
	masks := make([][]bool, len(outs))
	fanOut(len(outs), workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if outs[i].Acquired {
				masks[i] = outs[i].CorrectMask()
			}
		}
	})
	return masks
}

// Post is a post-processor bound to one outcome trace: it owns the shared
// per-outcome correctness masks and the worker budget scheme scoring fans
// out over. Safe for concurrent use once constructed (all fields are
// read-only).
type Post struct {
	outs         []sim.Outcome
	masks        [][]bool
	payloadBytes int
	workers      int
}

// NewPost builds a post-processor over outs, computing the correctness
// masks once. workers bounds the fan-out (0 = all cores); results do not
// depend on it.
func NewPost(outs []sim.Outcome, payloadBytes, workers int) *Post {
	return &Post{
		outs:         outs,
		masks:        Masks(outs, workers),
		payloadBytes: payloadBytes,
		workers:      workers,
	}
}

// PerLinkDelivery scores every outcome of one variant under the scheme,
// fanning the trace out over the bounded worker pool and merging the
// shard-local accumulators. Accumulation is integer sums, so the result is
// identical for every worker count.
func (pp *Post) PerLinkDelivery(variant int, s schemes.RecoveryScheme, p SchemeParams) map[LinkKey]LinkAccum {
	appPerPkt := s.AppBytesPerPacket(p, pp.payloadBytes)
	maxShards := pp.workers
	if maxShards <= 0 {
		maxShards = runtime.NumCPU()
	}
	partial := make([]map[LinkKey]LinkAccum, maxShards)
	nShards := fanOut(len(pp.outs), pp.workers, func(shard, lo, hi int) {
		acc := map[LinkKey]LinkAccum{}
		for i := lo; i < hi; i++ {
			o := &pp.outs[i]
			if o.Variant != variant {
				continue
			}
			k := LinkKey{Src: o.Src, Rcv: o.Receiver}
			a := acc[k]
			a.Packets++
			a.SentBytes += appPerPkt
			if o.Acquired {
				a.DeliveredBytes += s.DeliveredAppBytes(pp.masks[i], o, p, pp.payloadBytes)
			}
			acc[k] = a
		}
		partial[shard] = acc
	})
	merged := map[LinkKey]LinkAccum{}
	for shard := 0; shard < nShards; shard++ {
		for k, a := range partial[shard] {
			m := merged[k]
			m.Packets += a.Packets
			m.SentBytes += a.SentBytes
			m.DeliveredBytes += a.DeliveredBytes
			merged[k] = m
		}
	}
	return merged
}

// Rates flattens per-link accumulators to a rate sample per link.
func Rates(acc map[LinkKey]LinkAccum) []float64 {
	out := make([]float64, 0, len(acc))
	for _, a := range acc {
		out = append(out, a.Rate())
	}
	return out
}

// ThroughputsKbps converts per-link delivered bytes to Kbit/s over the
// run's duration.
func ThroughputsKbps(acc map[LinkKey]LinkAccum, durationSec float64) []float64 {
	out := make([]float64, 0, len(acc))
	for _, a := range acc {
		out = append(out, float64(a.DeliveredBytes)*8/durationSec/1000)
	}
	return out
}

// Trace is one memoized simulation run: the schedule and the full outcome
// trace for the StandardVariants at one operating point. Experiments
// post-process it; they never mutate it.
type Trace struct {
	// Cfg is the configuration the trace was produced under.
	Cfg sim.Config
	// Txs is the transmission schedule.
	Txs []*sim.Transmission
	// Outs is the per-(transmission, receiver, variant) outcome trace.
	Outs []sim.Outcome

	// maskOnce guards masks: the per-outcome correctness masks are built on
	// first use and shared by every figure post-processing the trace.
	maskOnce sync.Once
	masks    [][]bool
}

// Post returns a post-processor over the trace's outcomes. The correctness
// masks are computed once per trace — however many schemes, variants and
// figures score it — and workers bounds each call's delivery fan-out (0 =
// all cores; results do not depend on it).
func (tr *Trace) Post(workers int) *Post {
	tr.maskOnce.Do(func() { tr.masks = Masks(tr.Outs, workers) })
	return &Post{
		outs:         tr.Outs,
		masks:        tr.masks,
		payloadBytes: tr.Cfg.PacketBytes,
		workers:      workers,
	}
}

// traceKey identifies an operating point: everything that changes the trace.
// Workers is deliberately absent — the engine guarantees worker count does
// not change results.
type traceKey struct {
	seed         uint64
	quick        bool
	scenario     string
	load         float64
	carrierSense bool
}

// TraceCache memoizes simulation traces by operating point. This is the
// paper's own methodology made architectural: the testbed traces were
// collected once and every recovery scheme was post-processed over the same
// traces (Sec. 7.2), so the figures sharing an operating point — Fig. 9/10
// with the hint CDFs and Table 2, Fig. 11/12 with Summary — must share one
// simulation run instead of re-running it per figure. Safe for concurrent
// use; a cache miss runs the simulator outside the lock, so distinct
// operating points fill in parallel.
type TraceCache struct {
	mu      sync.Mutex
	entries map[traceKey]*traceEntry
	hits    int
	misses  int
}

// traceEntry pairs the fill lock with its trace so an in-flight Get keeps
// a handle to the entry it joined even if Reset swaps the map underneath.
// The lock is held across the fill simulation: concurrent Gets of the same
// point block on it (they need the trace anyway), and a fill aborted by
// cancellation leaves tr nil so the next caller retries.
type traceEntry struct {
	mu sync.Mutex
	tr *Trace
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{entries: map[traceKey]*traceEntry{}}
}

// SharedTraces is the process-wide cache every experiment entry point draws
// from, so a suite regenerating all figures simulates each operating point
// exactly once.
var SharedTraces = NewTraceCache()

// Get returns the trace for (o, load, carrierSense), simulating it on first
// use. Concurrent callers asking for the same point block until the single
// simulation finishes; callers asking for different points proceed.
func (c *TraceCache) Get(o Options, load float64, carrierSense bool) *Trace {
	// A background context never cancels, so the fill cannot fail.
	tr, _ := c.GetContext(context.Background(), o, load, carrierSense)
	return tr
}

// GetContext is Get under a context: a cache miss runs the simulation with
// ctx threaded down to the delivery windows (see sim.DeliverContext), so a
// cancel or deadline aborts the fill promptly. An aborted fill does not
// poison the cache — the entry is dropped and a later Get retries. A caller
// joining another caller's in-flight fill blocks until that fill resolves
// (it needs the trace regardless); if the filler was cancelled, the joiner
// re-attempts the fill under its own context.
func (c *TraceCache) GetContext(ctx context.Context, o Options, load float64, carrierSense bool) (*Trace, error) {
	key := traceKey{
		seed:         o.Seed,
		quick:        o.Quick,
		scenario:     o.Scenario,
		load:         load,
		carrierSense: carrierSense,
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &traceEntry{}
		c.entries[key] = e
		c.misses++
		mCacheMisses.Get().Inc()
	} else {
		c.hits++
		mCacheHits.Get().Inc()
	}
	c.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.tr == nil {
		cfg := o.simConfig(o.Bed(), load, carrierSense)
		fillStart := time.Now()
		txs, outs, err := sim.RunContext(ctx, cfg, StandardVariants())
		if err != nil {
			// Drop the unfilled entry (unless Reset already replaced the
			// map) so a future Get simulates instead of seeing a nil trace.
			c.mu.Lock()
			if c.entries[key] == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
			return nil, err
		}
		e.tr = &Trace{Cfg: cfg, Txs: txs, Outs: outs}
		mCacheFillNs.Get().Observe(time.Since(fillStart).Nanoseconds())
		// A joiner re-filling an entry a cancelled filler dropped from the
		// map must re-insert it, or every later Get of this point would
		// miss and re-simulate. The normal path (entry still mapped) and a
		// racing fresh fill (different entry mapped) both skip the insert.
		c.mu.Lock()
		if _, ok := c.entries[key]; !ok {
			c.entries[key] = e
		}
		c.mu.Unlock()
	}
	return e.tr, nil
}

// Stats returns the cache's hit and miss counts so speedup claims can be
// measured rather than asserted.
func (c *TraceCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Reset drops every cached trace and zeroes the counters (cold-cache
// benchmarks). Gets already in flight keep the entry they joined, so they
// still return a complete trace.
func (c *TraceCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[traceKey]*traceEntry{}
	c.hits, c.misses = 0, 0
}

// Trace returns the cached trace for one operating point under these
// options (Options.Cache, defaulting to SharedTraces).
func (o Options) Trace(load float64, carrierSense bool) *Trace {
	return o.cache().Get(o, load, carrierSense)
}

// TraceContext is Trace under a context — the entry point every figure
// uses, so a Runner cancellation reaches the simulation windows.
func (o Options) TraceContext(ctx context.Context, load float64, carrierSense bool) (*Trace, error) {
	return o.cache().GetContext(ctx, o, load, carrierSense)
}

// StandardVariants returns the two receiver variants every capacity
// experiment compares: without and with postamble decoding.
func StandardVariants() []sim.Variant {
	return []sim.Variant{
		{Name: "no postamble decoding", UsePostamble: false},
		{Name: "postamble decoding", UsePostamble: true},
	}
}
