package experiments

import (
	"context"
	"fmt"

	"ppr/internal/netsim"
	"ppr/internal/scenario"
	"ppr/internal/stats"
	"ppr/internal/testbed"
)

// Fig17Curve is one link layer's closed-loop throughput distribution.
type Fig17Curve struct {
	// Layer is the link layer's registry slug ("pp-arq", ...).
	Layer string
	// PairKbps is the aggregate delivered application throughput of each
	// sender pair, in Fig17Result.Pairs order.
	PairKbps []float64
	// CDF is the distribution Fig. 17 plots.
	CDF []stats.CDFPoint
	// MedianKbps and MeanKbps summarize it.
	MedianKbps, MeanKbps float64
	// Air sums the byte accounting over every pair run — where the airtime
	// actually went (data vs partial retransmissions vs feedback).
	Air netsim.LinkStats
	// Transfers and Failures total the per-flow transfer counts.
	Transfers, Failures int
}

// Fig17Result reproduces Figure 17: aggregate end-to-end throughput of
// concurrent closed-loop flows on the shared channel, one CDF per link
// layer over the testbed's contending sender pairs.
type Fig17Result struct {
	// Pairs lists the sampled sender pairs, each flowing to its strongest
	// receiver.
	Pairs [][2]int
	// PacketBytes, DurationSec and CarrierSense record the operating point.
	PacketBytes  int
	DurationSec  float64
	CarrierSense bool
	// Scenario names the workload overlaid on the pair runs ("poisson" =
	// the paper's saturated pairs on an otherwise clear channel).
	Scenario string
	// Curves holds one entry per link layer, in netsim.LinkLayers order
	// (PP-ARQ, fragmented CRC, packet CRC).
	Curves []Fig17Curve
}

// MedianRatio returns the ratio of two layers' median aggregate throughput.
func (r Fig17Result) MedianRatio(a, b string) float64 {
	var am, bm float64
	for _, c := range r.Curves {
		if c.Layer == a {
			am = c.MedianKbps
		}
		if c.Layer == b {
			bm = c.MedianKbps
		}
	}
	if bm == 0 {
		return 0
	}
	return am / bm
}

// fig17Duration is the simulated airtime per pair run.
func fig17Duration(o Options) float64 {
	if o.Quick {
		return 0.8
	}
	return 4
}

// fig17Workload maps the named scenario onto the closed-loop run: scenario
// jammer nodes become netsim event sources overlaid on every pair run (and
// are excluded from pair sampling — a jammer is not a flow), and a
// non-Poisson traffic model paces the flows' transfer openings at the
// paper's high offered load instead of saturating them. The default
// Poisson workload keeps the paper's Fig. 17 setup: saturated pairs, no
// third parties. It panics on an unknown name; CLI entry points validate
// against scenario.Names() first.
func fig17Workload(o Options) (jammers []netsim.JammerNode, traffic scenario.TrafficModel, offeredBps float64) {
	sc, err := scenario.ByName(o.Scenario)
	if err != nil {
		panic(err)
	}
	for i := 0; i < testbed.NumSenders; i++ {
		node := sc.Node(i, testbed.NumSenders)
		if node.IgnoreCarrierSense || node.Reactive {
			jammers = append(jammers, netsim.JammerNode{Sender: i, Node: node})
			continue
		}
		if traffic == nil && node.Model != nil && node.Model.Name() != (scenario.PoissonModel{}).Name() {
			traffic = node.Model
		}
	}
	return jammers, traffic, LoadHigh
}

// fig17Pairs samples colliding sender pairs — the population Fig. 17's CDF
// is taken over. A pair qualifies when its concurrent transmissions
// actually damage each other:
//
//   - at least one direction is hidden (one sender cannot carrier-sense the
//     other), so CSMA cannot serialize the pair and their frames overlap;
//   - at least one flow's receiver hears the other sender within
//     severityDB of — or above — its intended signal, so the overlap
//     corrupts chips instead of disappearing under capture.
//
// This is exactly the situation the paper's collision anatomy dissects
// (Fig. 13) and PP-ARQ targets; pairs that carrier sense keeps apart, or
// whose mutual interference vanishes under capture, time-share the channel
// cleanly and tell nothing about recovery.
func fig17Pairs(o Options, tb *testbed.Testbed, n int, excluded map[int]bool) [][2]int {
	const severityDB = 12
	csDBm := tb.Params.CSThresholdDBm
	var candidates [][2]int
	for a := 0; a < testbed.NumSenders; a++ {
		if excluded[a] {
			continue
		}
		ra := tb.BestReceiver(a)
		for b := a + 1; b < testbed.NumSenders; b++ {
			if excluded[b] {
				continue
			}
			rb := tb.BestReceiver(b)
			hidden := tb.SenderGainDBm[a][b] < csDBm || tb.SenderGainDBm[b][a] < csDBm
			damaging := tb.GainDBm[b][ra] >= tb.GainDBm[a][ra]-severityDB ||
				tb.GainDBm[a][rb] >= tb.GainDBm[b][rb]-severityDB
			if hidden && damaging {
				candidates = append(candidates, [2]int{a, b})
			}
		}
	}
	rng := stats.NewRNG(o.Seed ^ 0xf17)
	perm := rng.Perm(len(candidates))
	if n > len(candidates) {
		n = len(candidates)
	}
	pairs := make([][2]int, n)
	for i := 0; i < n; i++ {
		pairs[i] = candidates[perm[i]]
	}
	return pairs
}

// Fig17 reproduces Figure 17 on the closed-loop simulator: for each sampled
// sender pair, both senders stream packets to their strongest receivers as
// paced by Options.Scenario (saturated under the default Poisson workload;
// scenario jammers attack every pair run — see fig17Workload) — that is, as
// fast as their link layer allows, sharing the channel with each other and
// with their own feedback and retransmission frames. Every (pair, layer)
// cell is an independent operating point, fanned out over the bounded
// worker pool; each cell's randomness derives from the cell's own stable
// coordinates, so results are bit-identical for every worker count.
func Fig17(o Options) Fig17Result {
	res, err := fig17Ctx(context.Background(), o)
	must(err)
	return res
}

func fig17Ctx(ctx context.Context, o Options) (Fig17Result, error) {
	tb := o.Bed()
	nPairs := 16
	if o.Quick {
		nPairs = 6
	}
	jammers, traffic, offeredBps := fig17Workload(o)
	excluded := map[int]bool{}
	for _, j := range jammers {
		excluded[j.Sender] = true
	}
	pairs := fig17Pairs(o, tb, nPairs, excluded)
	layers := netsim.LinkLayers()

	scenName := o.Scenario
	if scenName == "" {
		scenName = "poisson"
	}
	res := Fig17Result{
		Pairs:        pairs,
		PacketBytes:  o.PacketBytes(),
		DurationSec:  fig17Duration(o),
		CarrierSense: true,
		Scenario:     scenName,
	}

	type cell struct{ layer, pair int }
	cells := make([]cell, 0, len(layers)*len(pairs))
	for li := range layers {
		for pi := range pairs {
			cells = append(cells, cell{layer: li, pair: pi})
		}
	}
	runs := make([]netsim.Result, len(cells))
	fanOut(len(cells), o.Workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			// Each closed-loop cell is a cancellation unit: once ctx is
			// done, remaining cells are skipped and the in-flight ones
			// drain through netsim.RunContext's own ctx check.
			if ctx.Err() != nil {
				return
			}
			c := cells[i]
			pair := pairs[c.pair]
			cfg := netsim.Config{
				Testbed: tb,
				Flows: []netsim.Flow{
					{Sender: pair[0], Receiver: tb.BestReceiver(pair[0])},
					{Sender: pair[1], Receiver: tb.BestReceiver(pair[1])},
				},
				LinkLayer:    layers[c.layer],
				PacketBytes:  res.PacketBytes,
				DurationSec:  res.DurationSec,
				CarrierSense: res.CarrierSense,
				Traffic:      traffic,
				OfferedBps:   offeredBps,
				Jammers:      jammers,
				// Every cell is its own operating point: the seed depends on
				// the pair but not the layer, so the three layers face the
				// same traffic phase and channel draws per pair.
				Seed:   o.Seed ^ (uint64(c.pair+1) << 16),
				Tracer: o.Tracer,
			}
			r, err := netsim.RunContext(ctx, cfg)
			if err != nil {
				if ctx.Err() != nil {
					return // cancelled mid-cell; the result is discarded
				}
				panic(fmt.Sprintf("fig17: %v", err))
			}
			runs[i] = r
		}
	})
	if err := ctx.Err(); err != nil {
		return Fig17Result{}, err
	}

	for li, layer := range layers {
		curve := Fig17Curve{Layer: layer}
		for pi := range pairs {
			r := runs[li*len(pairs)+pi]
			curve.PairKbps = append(curve.PairKbps, r.AggregateKbps())
			for _, fr := range r.Flows {
				curve.Air.Merge(fr.Air)
				curve.Transfers += fr.Transfers
				curve.Failures += fr.Failures
			}
		}
		curve.CDF = stats.CDF(curve.PairKbps)
		curve.MedianKbps = stats.MedianOrZero(curve.PairKbps)
		curve.MeanKbps = stats.Mean(curve.PairKbps)
		res.Curves = append(res.Curves, curve)
	}
	return res, nil
}
