package experiments

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

// This file is the redesign's parity proof at the Dataset layer: for every
// registered experiment, the Dataset Run produces carries numbers
// bit-identical to the pre-redesign typed struct computed under the same
// options. Both paths share one trace cache, so the comparison isolates
// the converters — a dropped series, reordered curve or lossy copy fails
// here.

// runDataset resolves and runs one experiment through the registry.
func runDataset(t *testing.T, name string, o Options) Dataset {
	t.Helper()
	e, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.Run(context.Background(), o)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if d.Experiment != name {
		t.Fatalf("%s: dataset names itself %q", name, d.Experiment)
	}
	return d
}

// checkCDFSeries asserts one Dataset series carries exactly a typed
// curve's CDF points and median.
func checkCDFSeries(t *testing.T, where string, s Series, c DeliveryCurve) {
	t.Helper()
	if s.Label != c.Label {
		t.Fatalf("%s: series %q, want curve %q", where, s.Label, c.Label)
	}
	if !reflect.DeepEqual(s.Points, cdfPoints(c.CDF)) {
		t.Errorf("%s %q: points diverge from the typed CDF", where, s.Label)
	}
	if s.Bands["median"] != c.Median {
		t.Errorf("%s %q: median band %v, want %v", where, s.Label, s.Bands["median"], c.Median)
	}
}

func TestDatasetParityDeliveryFigures(t *testing.T) {
	o := quickOpts()
	for _, tc := range []struct {
		name string
		run  func(Options) DeliveryFigure
	}{
		{"fig8", Fig8}, {"fig9", Fig9}, {"fig10", Fig10},
	} {
		fig := tc.run(o)
		d := runDataset(t, tc.name, o)
		if len(d.Series) != len(fig.Curves) {
			t.Fatalf("%s: %d series, want %d curves", tc.name, len(d.Series), len(fig.Curves))
		}
		for i, c := range fig.Curves {
			checkCDFSeries(t, tc.name, d.Series[i], c)
		}
	}
}

func TestDatasetParityFig11(t *testing.T) {
	o := quickOpts()
	fig := Fig11(o)
	d := runDataset(t, "fig11", o)
	if len(d.Series) != len(fig.Curves) {
		t.Fatalf("%d series, want %d", len(d.Series), len(fig.Curves))
	}
	for i, c := range fig.Curves {
		checkCDFSeries(t, "fig11", d.Series[i], c)
	}
}

func TestDatasetParityFig3(t *testing.T) {
	o := quickOpts()
	curves := Fig3(o)
	d := runDataset(t, "fig3", o)
	if len(d.Series) != len(curves) {
		t.Fatalf("%d series, want %d", len(d.Series), len(curves))
	}
	for i, c := range curves {
		s := d.Series[i]
		if !reflect.DeepEqual(s.Points, cdfPoints(c.CDF)) {
			t.Errorf("curve %d: points diverge", i)
		}
		if s.Bands["count"] != float64(c.Count) {
			t.Errorf("curve %d: count %v, want %d", i, s.Bands["count"], c.Count)
		}
	}
}

func TestDatasetParityFig12(t *testing.T) {
	o := quickOpts()
	series := Fig12(o)
	d := runDataset(t, "fig12", o)
	if len(d.Series) != len(series) {
		t.Fatalf("%d series, want %d", len(d.Series), len(series))
	}
	for i, src := range series {
		s := d.Series[i]
		if len(s.Points) != len(src.Points) {
			t.Fatalf("series %d: %d points, want %d", i, len(s.Points), len(src.Points))
		}
		for j, pt := range src.Points {
			got := s.Points[j]
			if got.X != pt.FragKbps || got.Y != pt.YKbps {
				t.Errorf("series %d point %d: (%v, %v), want (%v, %v)",
					i, j, got.X, got.Y, pt.FragKbps, pt.YKbps)
			}
		}
	}
}

func TestDatasetParityFig13(t *testing.T) {
	o := quickOpts()
	res := Fig13(o)
	d := runDataset(t, "fig13", o)
	if len(d.Series) != 2 {
		t.Fatalf("%d series, want 2", len(d.Series))
	}
	for i, pts := range [][]CollisionPoint{res.Packet1, res.Packet2} {
		s := d.Series[i]
		if len(s.Points) != len(pts) {
			t.Fatalf("series %d: %d points, want %d", i, len(s.Points), len(pts))
		}
		for j, pt := range pts {
			got := s.Points[j]
			if got.X != float64(pt.Codeword) || got.Y != pt.Hint {
				t.Errorf("series %d point %d diverges", i, j)
			}
			wantLabel := "wrong"
			switch {
			case !pt.Decoded:
				wantLabel = "undecoded"
			case pt.Correct:
				wantLabel = ""
			}
			if got.Label != wantLabel {
				t.Errorf("series %d point %d: label %q, want %q", i, j, got.Label, wantLabel)
			}
		}
	}
}

func TestDatasetParityFig14Fig15(t *testing.T) {
	o := quickOpts()
	f14 := Fig14(o)
	d14 := runDataset(t, "fig14", o)
	if len(d14.Series) != len(f14) {
		t.Fatalf("fig14: %d series, want %d", len(d14.Series), len(f14))
	}
	for i, c := range f14 {
		s := d14.Series[i]
		if !reflect.DeepEqual(s.Points, cdfPoints(c.CCDF)) {
			t.Errorf("fig14 curve %d: points diverge", i)
		}
		if s.Bands["miss_rate"] != c.MissRate || s.Bands["eta"] != c.Eta {
			t.Errorf("fig14 curve %d: bands diverge", i)
		}
	}

	f15 := Fig15(o)
	d15 := runDataset(t, "fig15", o)
	if len(d15.Series) != len(f15) {
		t.Fatalf("fig15: %d series, want %d", len(d15.Series), len(f15))
	}
	for i, c := range f15 {
		s := d15.Series[i]
		if !reflect.DeepEqual(s.Points, cdfPoints(c.CCDF)) {
			t.Errorf("fig15 curve %d: points diverge", i)
		}
		if s.Bands["false_alarm_eta6"] != c.FalseAlarmAtEta6 {
			t.Errorf("fig15 curve %d: false alarm band diverges", i)
		}
	}
}

func TestDatasetParityFig16(t *testing.T) {
	o := quickOpts()
	res := Fig16(o)
	d := runDataset(t, "fig16", o)
	if len(d.Series) != 2 {
		t.Fatalf("%d series, want 2", len(d.Series))
	}
	s := d.Series[0]
	if !reflect.DeepEqual(s.Points, cdfPoints(res.CDF)) {
		t.Error("retransmission-size points diverge")
	}
	if s.Bands["median"] != res.MedianRetxBytes {
		t.Errorf("median band %v, want %v", s.Bands["median"], res.MedianRetxBytes)
	}
	if s.Bands["retransmissions"] != float64(len(res.RetxSizes)) {
		t.Error("retransmission count diverges")
	}
	air := d.Series[1]
	want := []float64{
		float64(res.TotalStats.DataAirBytes),
		float64(res.TotalStats.RetxAirBytes),
		float64(res.TotalStats.FeedbackAirBytes),
	}
	for i, v := range want {
		if air.Points[i].Y != v {
			t.Errorf("air bytes point %d: %v, want %v", i, air.Points[i].Y, v)
		}
	}
	if d.Meta["transfers"] != fmt.Sprint(res.Transfers) || d.Meta["failures"] != fmt.Sprint(res.Failures) {
		t.Error("transfer metadata diverges")
	}
}

func TestDatasetParityFig17(t *testing.T) {
	o := quickOpts()
	res := Fig17(o)
	d := runDataset(t, "fig17", o)
	if len(d.Series) != len(res.Curves)+1 { // +1: the median-ratio series
		t.Fatalf("%d series, want %d", len(d.Series), len(res.Curves)+1)
	}
	for i, c := range res.Curves {
		s := d.Series[i]
		if s.Label != c.Layer {
			t.Fatalf("series %d: %q, want layer %q", i, s.Label, c.Layer)
		}
		if !reflect.DeepEqual(s.Points, cdfPoints(c.CDF)) {
			t.Errorf("layer %q: points diverge", c.Layer)
		}
		if s.Bands["median"] != c.MedianKbps || s.Bands["mean"] != c.MeanKbps {
			t.Errorf("layer %q: median/mean bands diverge", c.Layer)
		}
		if s.Bands["transfers"] != float64(c.Transfers) || s.Bands["failures"] != float64(c.Failures) {
			t.Errorf("layer %q: transfer bands diverge", c.Layer)
		}
	}
	// The three ratio points match MedianRatio exactly.
	ratios := d.Series[len(res.Curves)]
	wantRatios := map[string]float64{
		"pp-arq/frag-crc-arq":         res.MedianRatio("pp-arq", "frag-crc-arq"),
		"pp-arq/packet-crc-arq":       res.MedianRatio("pp-arq", "packet-crc-arq"),
		"frag-crc-arq/packet-crc-arq": res.MedianRatio("frag-crc-arq", "packet-crc-arq"),
	}
	if len(ratios.Points) != len(wantRatios) {
		t.Fatalf("%d ratio points, want %d", len(ratios.Points), len(wantRatios))
	}
	for _, pt := range ratios.Points {
		if want, ok := wantRatios[pt.Label]; !ok || pt.Y != want {
			t.Errorf("ratio %q = %v, want %v", pt.Label, pt.Y, want)
		}
	}
}

func TestDatasetParityTable2SummaryDiversity(t *testing.T) {
	o := quickOpts()

	rows := Table2(o)
	dt := runDataset(t, "table2", o)
	pts := dt.Series[0].Points
	if len(pts) != len(rows) {
		t.Fatalf("table2: %d points, want %d", len(pts), len(rows))
	}
	for i, r := range rows {
		if pts[i].X != float64(r.Chunks) || pts[i].Y != r.AggregateKbps {
			t.Errorf("table2 row %d diverges", i)
		}
	}

	sum := Summary(o)
	ds := runDataset(t, "summary", o)
	spts := ds.Series[0].Points
	if len(spts) != len(sum) {
		t.Fatalf("summary: %d points, want %d", len(spts), len(sum))
	}
	for i, r := range sum {
		if spts[i].Label != r.Name || spts[i].Y != r.Value {
			t.Errorf("summary row %q diverges", r.Name)
		}
	}

	div := Diversity(o)
	dd := runDataset(t, "diversity", o)
	dpts := dd.Series[0].Points
	if dpts[0].Y != div.SingleRate || dpts[1].Y != div.CombinedRate {
		t.Error("diversity rates diverge")
	}
	if dd.Series[0].Bands["packets"] != float64(div.Packets) {
		t.Error("diversity packet count diverges")
	}
}
