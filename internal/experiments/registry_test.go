package experiments

import (
	"reflect"
	"testing"
)

// seedArtifacts is the frozen set of registered artifacts: the 14
// figure/table entry points the seed shipped plus the diversity, mesh and
// resilience extensions. The registry must carry each exactly once — a
// registration typo (duplicate Register panics at init; a missing or
// renamed figure fails here) would silently shrink `-exp all`.
var seedArtifacts = []string{
	"diversity", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
	"fig16", "fig17", "fig3", "fig7", "fig8", "fig9", "mesh", "resilience",
	"summary", "table2",
}

func TestRegistryCompleteness(t *testing.T) {
	if got := Names(); !reflect.DeepEqual(got, seedArtifacts) {
		t.Fatalf("registry names = %v, want the seed artifact set %v", got, seedArtifacts)
	}
	// Registration (presentation) order is unique per name too.
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.Name()] {
			t.Errorf("experiment %q appears twice in All()", e.Name())
		}
		seen[e.Name()] = true
		if e.Description() == "" {
			t.Errorf("experiment %q has no description", e.Name())
		}
	}
	if len(seen) != len(seedArtifacts) {
		t.Errorf("All() carries %d experiments, want %d", len(seen), len(seedArtifacts))
	}
}

func TestRegistryByName(t *testing.T) {
	for _, name := range seedArtifacts {
		e, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if e.Name() != name {
			t.Errorf("ByName(%q) resolves to %q", name, e.Name())
		}
	}
	// Case-insensitive, and the seed CLI's "layout" still resolves.
	if e, err := ByName("FIG8"); err != nil || e.Name() != "fig8" {
		t.Errorf("ByName(FIG8) = %v, %v", e, err)
	}
	if e, err := ByName("layout"); err != nil || e.Name() != "fig7" {
		t.Errorf("ByName(layout) = %v, %v", e, err)
	}
	if _, err := ByName("fig99"); err == nil {
		t.Error("unknown experiment name did not error")
	}
}
