package experiments

import (
	"context"
	"math"
	"sort"

	"ppr/internal/core/combine"
	"ppr/internal/schemes"
)

// DiversityResult compares single-receiver PPR delivery against
// multi-receiver combining (the MRD application of Sec. 8.4) over one
// simulated trace.
type DiversityResult struct {
	// Packets is the number of transmissions heard by at least one
	// receiver.
	Packets int
	// MultiView counts transmissions heard by two or more receivers —
	// the ones combining can actually help.
	MultiView int
	// SingleRate is the mean delivered fraction using, for each packet,
	// only its best single reception.
	SingleRate float64
	// CombinedRate is the mean delivered fraction after min-hint combining
	// across all receptions of the packet.
	CombinedRate float64
}

// Diversity runs the high-load operating point and evaluates PPR delivery
// (good ∧ correct symbols at η = 6) with and without cross-receiver
// combining. Combining can never deliver less than the best single view —
// property-checked in the tests — and gains most under heavy collisions,
// where different receivers lose different parts of a packet.
func Diversity(o Options) DiversityResult {
	res, err := diversityCtx(context.Background(), o)
	must(err)
	return res
}

func diversityCtx(ctx context.Context, o Options) (DiversityResult, error) {
	tr, err := o.TraceContext(ctx, LoadHigh, false)
	if err != nil {
		return DiversityResult{}, err
	}
	outs := tr.Outs
	const variant = 1
	eta := schemes.DefaultParams().Eta

	// Group receptions by transmission.
	type pkt struct {
		views []combine.View
		truth []byte
	}
	byTx := map[int]*pkt{}
	for i := range outs {
		o := &outs[i]
		if o.Variant != variant || !o.Acquired {
			continue
		}
		p := byTx[o.TxID]
		if p == nil {
			p = &pkt{truth: o.TruthSyms}
			byTx[o.TxID] = p
		}
		p.views = append(p.views, combine.View{
			MissingPrefix: o.MissingPrefix,
			Decisions:     o.Decisions,
		})
	}

	// Deterministic transmission order: summing float delivery fractions in
	// map-iteration order would make the means drift run to run.
	ids := make([]int, 0, len(byTx))
	for id := range byTx {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	res := DiversityResult{}
	var singleSum, combinedSum float64
	for _, id := range ids {
		p := byTx[id]
		res.Packets++
		if len(p.views) > 1 {
			res.MultiView++
		}
		n := len(p.truth)
		deliver := func(ds []combine.View) float64 {
			merged := combine.Combine(n, ds)
			good := 0
			for i, d := range merged {
				if !math.IsInf(d.Hint, 1) && d.Hint <= eta && d.Symbol == p.truth[i] {
					good++
				}
			}
			return float64(good) / float64(n)
		}
		best := combine.BestSingle(p.views)
		singleSum += deliver(p.views[best : best+1])
		combinedSum += deliver(p.views)
	}
	if res.Packets > 0 {
		res.SingleRate = singleSum / float64(res.Packets)
		res.CombinedRate = combinedSum / float64(res.Packets)
	}
	return res, nil
}
