package experiments

import (
	"reflect"
	"testing"
)

func TestResilienceQuickShape(t *testing.T) {
	o := Options{Seed: 1, Quick: true}
	res := Resilience(o)
	nLayers, nStrats, nPowers := len(res.Layers), len(res.Strategies), len(res.Powers)
	if nLayers != 6 || nStrats != 5 || nPowers != 2 {
		t.Fatalf("axes %d x %d x %d, want 6 x 5 x 2", nLayers, nStrats, nPowers)
	}
	if len(res.Cells) != nLayers*nStrats*nPowers {
		t.Fatalf("%d cells for %d x %d x %d sweep", len(res.Cells), nLayers, nStrats, nPowers)
	}
	fired := map[string]bool{}
	for _, c := range res.Cells {
		if c.Transfers == 0 {
			t.Errorf("cell (%s, %s, +%gdB): no transfers attempted", c.Layer, c.Strategy, c.PowerDeltaDBm)
		}
		if c.JamFrames > 0 {
			fired[c.Strategy] = true
		}
	}
	// Every adversary must actually fire somewhere in its row (the learner
	// needs to accumulate timing mass first, so per-cell firing is not
	// guaranteed in quick mode — per-strategy firing is).
	for _, s := range res.Strategies {
		if !fired[s] {
			t.Errorf("strategy %q never fired a burst in any cell", s)
		}
	}

	d := res.Dataset()
	if len(d.Series) != nLayers {
		t.Fatalf("%d series, want one per layer (%d)", len(d.Series), nLayers)
	}
	for _, s := range d.Series {
		if len(s.Points) != nStrats*nPowers {
			t.Errorf("series %q has %d points, want %d", s.Label, len(s.Points), nStrats*nPowers)
		}
	}
}

func TestResilienceWorkerInvariance(t *testing.T) {
	run := func(workers int) ResilienceResult {
		return Resilience(Options{Seed: 7, Quick: true, Workers: workers})
	}
	ref := run(1)
	if got := run(4); !reflect.DeepEqual(ref, got) {
		t.Error("resilience sweep depends on worker count")
	}
}

func TestResilienceJammerPanelOption(t *testing.T) {
	o := Options{Seed: 3, Quick: true, Jammers: []string{"periodic"}}
	res := Resilience(o)
	if len(res.Strategies) != 1 || res.Strategies[0] != "periodic" {
		t.Fatalf("panel %v, want [periodic]", res.Strategies)
	}
	if len(res.Cells) != len(res.Layers)*2 {
		t.Errorf("%d cells for a 1-strategy sweep over %d layers", len(res.Cells), len(res.Layers))
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown jammer name did not panic")
		}
	}()
	Resilience(Options{Quick: true, Jammers: []string{"nonesuch"}})
}

// TestResiliencePPARQSustainsThroughput is the PR's headline acceptance: at
// full scale, PP-ARQ sustains at least 1.3x the packet-CRC layer's
// throughput under at least one adaptive jammer.
func TestResiliencePPARQSustainsThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale resilience sweep")
	}
	res := Resilience(Options{Seed: 1})
	best, bestStrat, bestPw := 0.0, "", 0.0
	for _, strat := range []string{"reactive", "preamble", "sweep", "learner"} {
		for _, pw := range res.Powers {
			pp, ok := res.Cell("pp-arq", strat, pw)
			if !ok || pp.AggregateKbps == 0 {
				continue
			}
			if r := res.Ratio("pp-arq", "packet-crc-arq", strat, pw); r > best {
				best, bestStrat, bestPw = r, strat, pw
			}
		}
	}
	if best < 1.3 {
		for _, c := range res.Cells {
			t.Logf("%-16s %-9s +%gdB  %8.1f Kbit/s  jam=%d", c.Layer, c.Strategy, c.PowerDeltaDBm, c.AggregateKbps, c.JamFrames)
		}
		t.Fatalf("best PP-ARQ / packet-CRC ratio under an adaptive jammer is %.2f (at %s +%gdB), want >= 1.3",
			best, bestStrat, bestPw)
	}
	t.Logf("PP-ARQ sustains %.2fx packet-CRC under %s +%gdB", best, bestStrat, bestPw)
}
