package experiments

import (
	"context"
	"reflect"
	"testing"

	"ppr/internal/netsim"
)

// TestMeshShape pins the experiment's deployment contract: 1000 nodes in
// 100 cells, every cell its own interference domain, 3 contending flows
// per cell, one curve per registered link layer, and a non-trivial amount
// of traffic actually delivered.
func TestMeshShape(t *testing.T) {
	if testing.Short() {
		t.Skip("city-scale run")
	}
	res := Mesh(Options{Seed: 5, Quick: true})
	wantFlows := meshCellsX * meshCellsY * meshFlowsPerCell
	if res.Nodes != 1000 || res.Flows != wantFlows {
		t.Fatalf("deployment is %d nodes / %d flows, want 1000 / %d", res.Nodes, res.Flows, wantFlows)
	}
	if res.Domains != meshCellsX*meshCellsY {
		t.Errorf("engine found %d interference domains, want %d", res.Domains, meshCellsX*meshCellsY)
	}
	layers := netsim.LinkLayers()
	if len(res.Layers) != len(layers) {
		t.Fatalf("%d layer curves, want %d", len(res.Layers), len(layers))
	}
	for i, lr := range res.Layers {
		if lr.Layer != layers[i] {
			t.Errorf("curve %d is %q, want %q", i, lr.Layer, layers[i])
		}
		if len(lr.FlowKbps) != res.Flows {
			t.Errorf("%s: %d flow samples, want %d", lr.Layer, len(lr.FlowKbps), res.Flows)
		}
		if lr.AggregateKbps <= 0 {
			t.Errorf("%s: nothing delivered", lr.Layer)
		}
		if lr.Fairness <= 0 || lr.Fairness > 1 {
			t.Errorf("%s: fairness %v outside (0, 1]", lr.Layer, lr.Fairness)
		}
		if lr.Transfers == 0 {
			t.Errorf("%s: no transfers attempted", lr.Layer)
		}
	}
}

// TestMeshWorkerInvariance is the experiment-level face of the engine's
// determinism contract: the full mesh result must be bit-identical
// whether the 100 domains run serially or on 8 workers.
func TestMeshWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("city-scale run")
	}
	serial := Mesh(Options{Seed: 8, Quick: true, Workers: 1})
	wide := Mesh(Options{Seed: 8, Quick: true, Workers: 8})
	if !reflect.DeepEqual(serial, wide) {
		t.Error("mesh result depends on the worker count")
	}
}

// TestMeshDatasetParity checks the registry face against the typed entry
// point: Run("mesh") must be a pure re-encoding of Mesh.
func TestMeshDatasetParity(t *testing.T) {
	if testing.Short() {
		t.Skip("city-scale run")
	}
	o := Options{Seed: 5, Quick: true}
	want := Mesh(o).Dataset()
	e, err := ByName("mesh")
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("registry dataset diverges from the typed result")
	}
	if len(got.Series) != len(netsim.LinkLayers()) {
		t.Fatalf("%d series, want %d", len(got.Series), len(netsim.LinkLayers()))
	}
	for _, s := range got.Series {
		for _, key := range []string{"median", "mean", "aggregate_kbps", "fairness"} {
			if _, ok := s.Bands[key]; !ok {
				t.Errorf("series %q lacks %q band", s.Label, key)
			}
		}
	}
}

// TestMeshCancellation: a cancelled context aborts the city-scale run
// promptly and surfaces the context error.
func TestMeshCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := meshCtx(ctx, Options{Seed: 1, Quick: true}); err == nil {
		t.Fatal("cancelled mesh run reported success")
	}
}
