package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite renderer golden files")

// goldenDataset is a small fixed Dataset exercising every renderer path:
// single- and multi-line metadata, units, bands, per-series metadata,
// labelled listed points, and a long series that gets summarized.
func goldenDataset() Dataset {
	long := make([]Point, 40)
	for i := range long {
		long[i] = Point{X: float64(i) / 4, Y: float64(i*i) / 1600}
	}
	return Dataset{
		Experiment: "figX",
		Title:      "Golden fixture: renderer layout",
		Meta: map[string]string{
			"carrier_sense": "true",
			"map":           "+--+\n|**|\n+--+",
			"offered_load":  "3.5 Kbits/s/node",
		},
		Series: []Series{
			{
				Label: "short labelled rows",
				Unit:  "Kbit/s",
				XUnit: "chunks",
				Points: []Point{
					{Label: "first", X: 1, Y: 26.25},
					{Label: "second", X: 30, Y: 96},
					{X: 300, Y: 0.5},
				},
				Bands: map[string]float64{"median": 26.25, "p90": 96},
				Meta:  map[string]string{"note": "paper peaks interior"},
			},
			{
				Label:  "long curve",
				Unit:   "P[X<=x]",
				XUnit:  "delivery rate",
				Points: long,
				Bands:  map[string]float64{"median": 0.25, "p10": 0.01, "p90": 0.81},
			},
			{Label: "empty series"},
		},
	}
}

// TestTextRendererGolden pins the generic text renderer's layout — the one
// renderer every experiment now shares — against a golden file. Update
// with: go test ./internal/experiments -run Golden -update-golden
func TestTextRendererGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenDataset().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "render_text.golden"), buf.Bytes())
}

// TestCSVRendererGolden pins the flat CSV encoding the same way.
func TestCSVRendererGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []Dataset{goldenDataset()}); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "render_csv.golden"), buf.Bytes())
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("renderer output diverges from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
