package experiments

import (
	"context"
	"errors"
	"ppr/internal/leakcheck"
	"reflect"
	"sync"
	"testing"
	"time"
)

// allNames returns every registered experiment in presentation order.
func allNames() []string {
	var names []string
	for _, e := range All() {
		names = append(names, e.Name())
	}
	return names
}

// TestRunnerMatchesSerial proves experiment-level concurrency does not
// change results: the full suite run serially and with many workers
// produces deeply equal datasets, in request order.
func TestRunnerMatchesSerial(t *testing.T) {
	// The cheap, trace-backed subset keeps the double run fast; fig17 and
	// fig16 are covered by the parity tests.
	names := []string{"fig7", "fig3", "table2", "fig10", "fig14", "diversity"}
	o := Options{Seed: 3, Quick: true, Cache: NewTraceCache()}
	serial := &Runner{Options: o, Workers: 1}
	a, err := serial.Run(context.Background(), names)
	if err != nil {
		t.Fatal(err)
	}
	concurrent := &Runner{Options: o, Workers: 8}
	b, err := concurrent.Run(context.Background(), names)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("serial and concurrent runs disagree")
	}
	for i, d := range a {
		if want, _ := ByName(names[i]); d.Experiment != want.Name() {
			t.Errorf("result %d is %q, want %q", i, d.Experiment, want.Name())
		}
	}
}

// TestRunnerSharesTraceCache proves a concurrent sweep still simulates
// each operating point exactly once: the suite's figures cover 4 distinct
// (load, carrier-sense) points, so a fresh cache must record exactly 4
// misses however many figures post-process them.
func TestRunnerSharesTraceCache(t *testing.T) {
	cache := NewTraceCache()
	r := &Runner{Options: Options{Seed: 9, Quick: true, Cache: cache}, Workers: 4}
	// fig10, fig14, table2 and diversity share (high, off); fig3 and fig15
	// add (moderate, off) and (medium, off); fig8 adds (moderate, on).
	if _, err := r.Run(context.Background(), []string{"fig8", "fig3", "fig10", "fig14", "fig15", "table2", "diversity"}); err != nil {
		t.Fatal(err)
	}
	if _, misses := cache.Stats(); misses != 4 {
		t.Errorf("concurrent suite simulated %d operating points, want 4", misses)
	}
}

// TestRunnerProgress checks the callback stream: one start and one
// completion per experiment, with the completion carrying the elapsed
// time. The callback mutates shared state without its own locking — the
// Runner serializes calls, and the race detector verifies it.
func TestRunnerProgress(t *testing.T) {
	names := []string{"fig7", "fig13", "table2"}
	starts, dones := map[string]int{}, map[string]int{}
	r := &Runner{
		Options: Options{Seed: 1, Quick: true, Cache: NewTraceCache()},
		Workers: 4,
		Progress: func(p Progress) {
			if p.Total != len(names) {
				t.Errorf("progress total %d, want %d", p.Total, len(names))
			}
			if p.Done {
				dones[p.Experiment]++
				if p.Err != nil {
					t.Errorf("%s failed: %v", p.Experiment, p.Err)
				}
			} else {
				starts[p.Experiment]++
			}
		},
	}
	if _, err := r.Run(context.Background(), names); err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if starts[n] != 1 || dones[n] != 1 {
			t.Errorf("%s: %d starts, %d completions, want 1/1", n, starts[n], dones[n])
		}
	}
}

func TestRunnerUnknownName(t *testing.T) {
	r := &Runner{Options: Options{Seed: 1, Quick: true}}
	if _, err := r.Run(context.Background(), []string{"fig8", "fig99"}); err == nil {
		t.Error("unknown experiment name did not error")
	}
}

// TestRunnerPreCancelled: a context cancelled before Run starts returns
// ctx.Err() without running anything.
func TestRunnerPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Runner{Options: Options{Seed: 1, Quick: true, Cache: NewTraceCache()}}
	ds, err := r.Run(ctx, allNames())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ds != nil {
		t.Error("datasets returned despite cancellation")
	}
}

// TestRunnerCancellationPromptNoLeak cancels a full-suite sweep mid-flight
// at full (non-quick) scale — where a serial completion would take minutes
// — and requires Run to return context.Canceled within seconds, with every
// goroutine it spawned (workers, simulation windows, netsim coroutines)
// gone afterwards. Run under -race in CI, this is also the
// callback/cancellation race check.
func TestRunnerCancellationPromptNoLeak(t *testing.T) {
	defer leakcheck.Check(t)()

	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	r := &Runner{
		Options: Options{Seed: 11, Cache: NewTraceCache()}, // full scale: sims take long enough to be mid-flight
		Workers: 4,
		Progress: func(p Progress) {
			// Cancel as soon as the first experiment has started.
			once.Do(cancel)
		},
	}
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := r.Run(ctx, allNames())
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Run did not return within 60s of cancellation")
	}
	t.Logf("cancelled sweep returned in %v", time.Since(start))
}
