package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"ppr/internal/baseline"
	"ppr/internal/schemes"
	"ppr/internal/sim"
	"ppr/internal/stats"
)

// This file freezes the seed's enum-based post-processing — the closed
// `Scheme int` switch that predated the schemes registry — and proves the
// registry-backed packet-CRC/frag-CRC/PPR schemes reproduce its
// DeliveryFigure output bit for bit, masks shared and workers fanned out or
// not. The one deliberate divergence from the seed is folded in here and
// covered by its own regression test (see TestPPROddSymbolCount in
// internal/schemes): the seed's PPR branch converted good symbols to bytes
// with a flooring goodCorrect*4/8, discarding a delivered nibble from every
// odd count; the frozen reference rounds up exactly like schemes.PPR.

type legacyScheme int

const (
	legacyPacketCRC legacyScheme = iota
	legacyFragCRC
	legacyPPR
)

func (s legacyScheme) String() string {
	switch s {
	case legacyPacketCRC:
		return "Packet CRC"
	case legacyFragCRC:
		return "Fragmented CRC"
	default:
		return "PPR"
	}
}

// legacyDeliveredAppBytes is the seed's DeliveredAppBytes verbatim (modulo
// the documented PPR rounding fix), mask recomputed per call exactly as the
// seed did.
func legacyDeliveredAppBytes(o *sim.Outcome, s legacyScheme, p SchemeParams, payloadBytes int) int {
	if !o.Acquired {
		return 0
	}
	mask := o.CorrectMask()
	switch s {
	case legacyPacketCRC:
		for _, ok := range mask {
			if !ok {
				return 0
			}
		}
		return payloadBytes

	case legacyFragCRC:
		appBytes := baseline.AppCapacity(payloadBytes, p.FragBytes)
		delivered := 0
		pos := 0
		for off := 0; off < appBytes; off += p.FragBytes {
			end := off + p.FragBytes
			if end > appBytes {
				end = appBytes
			}
			fragPayloadBytes := end - off + baseline.FragOverhead
			ok := true
			for b := pos; b < pos+fragPayloadBytes && ok; b++ {
				if 2*b+1 >= len(mask) || !mask[2*b] || !mask[2*b+1] {
					ok = false
				}
			}
			if ok {
				delivered += end - off
			}
			pos += fragPayloadBytes
		}
		return delivered

	default: // legacyPPR
		goodCorrect := 0
		for i, d := range o.Decisions {
			idx := o.MissingPrefix + i
			if idx >= len(mask) {
				break
			}
			if d.Hint <= p.Eta && mask[idx] {
				goodCorrect++
			}
		}
		return (goodCorrect*4 + 7) / 8
	}
}

func legacyAppBytesPerPacket(s legacyScheme, p SchemeParams, payloadBytes int) int {
	if s == legacyFragCRC {
		return baseline.AppCapacity(payloadBytes, p.FragBytes)
	}
	return payloadBytes
}

// legacyPerLinkDelivery is the seed's sequential accumulator loop.
func legacyPerLinkDelivery(outs []sim.Outcome, variant int, s legacyScheme, p SchemeParams, payloadBytes int) map[LinkKey]LinkAccum {
	appPerPkt := legacyAppBytesPerPacket(s, p, payloadBytes)
	acc := map[LinkKey]LinkAccum{}
	for i := range outs {
		o := &outs[i]
		if o.Variant != variant {
			continue
		}
		k := LinkKey{Src: o.Src, Rcv: o.Receiver}
		a := acc[k]
		a.Packets++
		a.SentBytes += appPerPkt
		a.DeliveredBytes += legacyDeliveredAppBytes(o, s, p, payloadBytes)
		acc[k] = a
	}
	return acc
}

// legacyDeliveryFigure is the seed's figure loop: the three enum schemes,
// two variants each.
func legacyDeliveryFigure(o Options, name string, offeredBps float64, carrierSense bool) DeliveryFigure {
	tr := o.Trace(offeredBps, carrierSense)
	cfg, outs := tr.Cfg, tr.Outs
	p := DefaultSchemeParams()

	fig := DeliveryFigure{Name: name, OfferedBps: offeredBps, CarrierSense: carrierSense}
	for _, scheme := range []legacyScheme{legacyPacketCRC, legacyFragCRC, legacyPPR} {
		for variant := 0; variant < 2; variant++ {
			acc := legacyPerLinkDelivery(outs, variant, scheme, p, cfg.PacketBytes)
			rates := Rates(acc)
			label := fmt.Sprintf("%s, %s", scheme, StandardVariants()[variant].Name)
			var median float64
			if len(rates) > 0 {
				median = stats.Median(rates)
			}
			fig.Curves = append(fig.Curves, DeliveryCurve{
				Label:  label,
				CDF:    stats.CDF(rates),
				Median: median,
			})
		}
	}
	return fig
}

// TestRegistrySchemesMatchSeedEnum is the refactor's parity proof: for every
// delivery figure and two seeds, the registry-backed standard schemes
// produce curves bit-identical (labels, every CDF point, medians) to the
// frozen enum implementation. The registry figures carry extra FEC curves
// after the standard six; those are new surface, not drift, so the
// comparison covers the leading standard block.
func TestRegistrySchemesMatchSeedEnum(t *testing.T) {
	points := []struct {
		name         string
		load         float64
		carrierSense bool
	}{
		{"fig8", LoadModerate, true},
		{"fig9", LoadModerate, false},
		{"fig10", LoadHigh, false},
	}
	for _, seed := range []uint64{1, 42} {
		o := Options{Seed: seed, Quick: true}
		for _, pt := range points {
			want := legacyDeliveryFigure(o, pt.name, pt.load, pt.carrierSense)
			got := deliveryFigure(o, pt.name, pt.load, pt.carrierSense)
			nStd := 2 * len(schemes.Standard())
			if len(got.Curves) < nStd || len(want.Curves) != nStd {
				t.Fatalf("seed %d %s: %d registry curves, %d legacy", seed, pt.name, len(got.Curves), len(want.Curves))
			}
			for i := 0; i < nStd; i++ {
				if got.Curves[i].Label != want.Curves[i].Label {
					t.Fatalf("seed %d %s curve %d: label %q vs legacy %q",
						seed, pt.name, i, got.Curves[i].Label, want.Curves[i].Label)
				}
				if !reflect.DeepEqual(got.Curves[i], want.Curves[i]) {
					t.Errorf("seed %d %s: curve %q diverges from the seed enum",
						seed, pt.name, got.Curves[i].Label)
				}
			}
		}
	}
}

// TestPerLinkDeliveryMatchesLegacyAccumulators pins parity one level down:
// the shared-mask parallel accumulators equal the seed's per-call-mask
// sequential ones for every standard scheme and variant.
func TestPerLinkDeliveryMatchesLegacyAccumulators(t *testing.T) {
	o := quickOpts()
	tr := o.Trace(LoadHigh, false)
	p := DefaultSchemeParams()
	pp := tr.Post(0)
	pairs := []struct {
		reg schemes.RecoveryScheme
		leg legacyScheme
	}{
		{schemes.PacketCRC{}, legacyPacketCRC},
		{schemes.FragCRC{}, legacyFragCRC},
		{schemes.PPR{}, legacyPPR},
	}
	for _, pair := range pairs {
		for variant := 0; variant < 2; variant++ {
			got := pp.PerLinkDelivery(variant, pair.reg, p)
			want := legacyPerLinkDelivery(tr.Outs, variant, pair.leg, p, tr.Cfg.PacketBytes)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s variant %d: registry accumulators diverge from seed enum", pair.reg.Name(), variant)
			}
		}
	}
}
