package experiments

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// Progress is one experiment lifecycle notification streamed by the
// Runner: once when the experiment starts (Done false) and once when it
// finishes (Done true, with its error and elapsed wall-clock time).
type Progress struct {
	// Experiment is the registry name.
	Experiment string
	// Index is the experiment's position in the requested set; Total the
	// set's size.
	Index, Total int
	// Done distinguishes the completion notification from the start one.
	Done bool
	// Err is the experiment's error on completion (nil on success).
	Err error
	// Elapsed is the experiment's wall-clock time, set on completion.
	Elapsed time.Duration
	// CacheHits and CacheMisses snapshot the trace cache's cumulative
	// counters at completion (Done true). The cache is shared across
	// concurrent experiments, so these are running totals for the sweep,
	// not per-experiment deltas.
	CacheHits, CacheMisses int
}

// Runner executes a set of experiments concurrently on a bounded worker
// pool. All experiments share one trace cache (Options.Cache, defaulting
// to SharedTraces), so concurrent figures post-processing the same
// operating point collapse to a single simulation — the seed ran `-exp
// all` serially even though most figures share traces; the Runner overlaps
// the distinct simulations and every figure's post-processing instead.
//
// Cancellation: ctx is passed to every experiment and threaded down
// through simulation windows and closed-loop cells, so cancelling
// mid-sweep returns promptly with ctx.Err() and no goroutine left behind.
type Runner struct {
	// Options configures every experiment run. Options.Workers bounds each
	// experiment's internal fan-out as usual.
	Options Options
	// Workers bounds how many experiments run concurrently; 0 means
	// runtime.NumCPU(). Results do not depend on it (every experiment is
	// deterministic in Options alone).
	Workers int
	// Progress, when set, receives start and completion notifications.
	// Calls are serialized by the Runner; the callback needs no locking of
	// its own.
	Progress func(Progress)
}

// Run resolves names through the registry and executes them, returning the
// datasets in the same order as names. The first experiment error (or the
// context's, on cancellation) aborts the sweep: remaining experiments are
// skipped, in-flight ones drain, and the error is returned.
func (r *Runner) Run(ctx context.Context, names []string) ([]Dataset, error) {
	exps := make([]Experiment, len(names))
	for i, n := range names {
		e, err := ByName(n)
		if err != nil {
			return nil, err
		}
		exps[i] = e
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	workers := r.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(exps) {
		workers = len(exps)
	}

	var (
		mu       sync.Mutex // serializes Progress calls and firstErr
		firstErr error
	)
	emit := func(p Progress) {
		if r.Progress == nil {
			return
		}
		mu.Lock()
		r.Progress(p)
		mu.Unlock()
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	results := make([]Dataset, len(exps))
	completed := make([]bool, len(exps)) // index i written only by its worker
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				mu.Lock()
				aborted := firstErr != nil
				mu.Unlock()
				if aborted || ctx.Err() != nil {
					continue // drain the queue without starting new work
				}
				e := exps[i]
				emit(Progress{Experiment: e.Name(), Index: i, Total: len(exps)})
				start := time.Now()
				ds, err := e.Run(ctx, r.Options)
				elapsed := time.Since(start)
				mExperimentNs.Get().Observe(elapsed.Nanoseconds())
				mExperimentsRun.Get().Inc()
				hits, misses := r.Options.cache().Stats()
				emit(Progress{Experiment: e.Name(), Index: i, Total: len(exps), Done: true, Err: err, Elapsed: elapsed,
					CacheHits: hits, CacheMisses: misses})
				if err != nil {
					fail(err)
					continue
				}
				results[i] = ds
				completed[i] = true
			}
		}()
	}
	for i := range exps {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err == nil {
		// A cancel can land after every started experiment finished but
		// before queued ones ran; a skipped slot means the sweep is
		// incomplete.
		for i := range completed {
			if !completed[i] {
				err = ctx.Err()
				break
			}
		}
	}
	if err != nil {
		return nil, err
	}
	return results, nil
}
