package experiments

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ppr/internal/radio"
	"ppr/internal/testbed"
)

// Experiment is one named, registry-backed reproduction of a paper figure
// or table. Run produces the uniform Dataset; ctx cancellation is threaded
// down through simulation windows and closed-loop cells, so a deadline or
// cancel aborts promptly. Implement it and Register to add an experiment
// every CLI invocation and Runner sweep can resolve by name — exactly like
// recovery schemes and traffic scenarios.
type Experiment interface {
	// Name is the registry key ("fig8", "table2").
	Name() string
	// Description is a one-line summary for listings.
	Description() string
	// Run regenerates the artifact under the options.
	Run(ctx context.Context, o Options) (Dataset, error)
}

// expFunc adapts a function to the Experiment interface; every built-in
// experiment is one of these.
type expFunc struct {
	name, desc string
	run        func(context.Context, Options) (Dataset, error)
}

func (e expFunc) Name() string        { return e.name }
func (e expFunc) Description() string { return e.desc }
func (e expFunc) Run(ctx context.Context, o Options) (Dataset, error) {
	return e.run(ctx, o)
}

// The registry maps names to experiments and preserves registration order
// for presentation ("all" runs in the paper's order).
var (
	expRegistry = map[string]Experiment{}
	expOrdered  []Experiment
)

// expAliases maps legacy CLI names onto registry names.
var expAliases = map[string]string{"layout": "fig7"}

// Register adds an experiment to the registry under its Name. It panics on
// an empty or duplicate name; like scheme and scenario registration it is
// meant for init-time use and is not safe for concurrent callers.
func Register(e Experiment) {
	key := strings.ToLower(e.Name())
	if key == "" {
		panic("experiments: experiment with empty name")
	}
	if _, dup := expRegistry[key]; dup {
		panic(fmt.Sprintf("experiments: duplicate experiment %q", key))
	}
	expRegistry[key] = e
	expOrdered = append(expOrdered, e)
}

// ByName resolves an experiment by registry name (case-insensitive;
// "layout" is accepted as an alias for fig7).
func ByName(name string) (Experiment, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if a, ok := expAliases[key]; ok {
		key = a
	}
	if e, ok := expRegistry[key]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (available: %v)", name, Names())
}

// Names lists the registered experiment names, sorted.
func Names() []string {
	out := make([]string, 0, len(expRegistry))
	for n := range expRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered experiment in registration (presentation)
// order — the order `-exp all` runs and prints.
func All() []Experiment {
	out := make([]Experiment, len(expOrdered))
	copy(out, expOrdered)
	return out
}

func init() {
	Register(expFunc{"fig7", "testbed layout: deployment map and per-receiver audibility", runFig7})
	Register(expFunc{"fig3", "hint CDFs over received codewords, correct vs incorrect, per load", func(ctx context.Context, o Options) (Dataset, error) {
		curves, err := fig3Ctx(ctx, o)
		if err != nil {
			return Dataset{}, err
		}
		return fig3Dataset(curves), nil
	}})
	Register(expFunc{"table2", "fragmented-CRC aggregate throughput vs chunk count", func(ctx context.Context, o Options) (Dataset, error) {
		rows, err := table2Ctx(ctx, o)
		if err != nil {
			return Dataset{}, err
		}
		return table2Dataset(rows), nil
	}})
	Register(expFunc{"fig8", "per-link delivery-rate CDFs, moderate load, carrier sense on", deliveryExp("fig8", LoadModerate, true)})
	Register(expFunc{"fig9", "per-link delivery-rate CDFs, moderate load, carrier sense off", deliveryExp("fig9", LoadModerate, false)})
	Register(expFunc{"fig10", "per-link delivery-rate CDFs, high load, carrier sense off", deliveryExp("fig10", LoadHigh, false)})
	Register(expFunc{"fig11", "end-to-end per-link throughput CDFs, medium load", func(ctx context.Context, o Options) (Dataset, error) {
		fig, err := fig11Ctx(ctx, o)
		if err != nil {
			return Dataset{}, err
		}
		return fig.Dataset(), nil
	}})
	Register(expFunc{"fig12", "per-link throughput scatter vs fragmented CRC, all loads", func(ctx context.Context, o Options) (Dataset, error) {
		series, err := fig12Ctx(ctx, o)
		if err != nil {
			return Dataset{}, err
		}
		return fig12Dataset(series), nil
	}})
	Register(expFunc{"fig13", "anatomy of a collision through the sample-level MSK modem", func(ctx context.Context, o Options) (Dataset, error) {
		res, err := fig13Ctx(ctx, o)
		if err != nil {
			return Dataset{}, err
		}
		return res.Dataset(), nil
	}})
	Register(expFunc{"fig14", "CCDFs of contiguous miss lengths, eta in {1..4}", func(ctx context.Context, o Options) (Dataset, error) {
		curves, err := fig14Ctx(ctx, o)
		if err != nil {
			return Dataset{}, err
		}
		return fig14Dataset(curves), nil
	}})
	Register(expFunc{"fig15", "false-alarm CCDFs of correct-codeword hints, per load", func(ctx context.Context, o Options) (Dataset, error) {
		curves, err := fig15Ctx(ctx, o)
		if err != nil {
			return Dataset{}, err
		}
		return fig15Dataset(curves), nil
	}})
	Register(expFunc{"fig16", "PP-ARQ partial retransmission sizes over a bursty link", func(ctx context.Context, o Options) (Dataset, error) {
		res, err := fig16Ctx(ctx, o)
		if err != nil {
			return Dataset{}, err
		}
		return res.Dataset(), nil
	}})
	Register(expFunc{"fig17", "closed-loop aggregate throughput of contending sender pairs", func(ctx context.Context, o Options) (Dataset, error) {
		res, err := fig17Ctx(ctx, o)
		if err != nil {
			return Dataset{}, err
		}
		return res.Dataset(), nil
	}})
	Register(expFunc{"diversity", "multi-receiver min-hint combining (Sec. 8.4 extension)", func(ctx context.Context, o Options) (Dataset, error) {
		res, err := diversityCtx(ctx, o)
		if err != nil {
			return Dataset{}, err
		}
		return res.Dataset(), nil
	}})
	Register(expFunc{"mesh", "city-scale mesh: per-flow throughput and fairness over sharded interference domains", func(ctx context.Context, o Options) (Dataset, error) {
		res, err := meshCtx(ctx, o)
		if err != nil {
			return Dataset{}, err
		}
		return res.Dataset(), nil
	}})
	Register(expFunc{"resilience", "link layers vs composable jammers: throughput under adversarial strategies and powers", func(ctx context.Context, o Options) (Dataset, error) {
		res, err := resilienceCtx(ctx, o)
		if err != nil {
			return Dataset{}, err
		}
		return res.Dataset(), nil
	}})
	Register(expFunc{"summary", "headline measured-vs-paper ratios (Table 1)", func(ctx context.Context, o Options) (Dataset, error) {
		rows, err := summaryCtx(ctx, o)
		if err != nil {
			return Dataset{}, err
		}
		return summaryDataset(rows), nil
	}})
}

// deliveryExp builds the registry body for one delivery figure.
func deliveryExp(name string, load float64, carrierSense bool) func(context.Context, Options) (Dataset, error) {
	return func(ctx context.Context, o Options) (Dataset, error) {
		fig, err := deliveryFigureCtx(ctx, o, name, load, carrierSense)
		if err != nil {
			return Dataset{}, err
		}
		return fig.Dataset(), nil
	}
}

// audibilityMarginDB is the link margin the layout experiment counts
// "reliably audible" senders at, matching the seed CLI's Fig. 7 output.
const audibilityMarginDB = 15

// runFig7 is the Fig. 7 stand-in: the deterministic 27-node deployment's
// floor plan and how many senders each receiver reliably hears.
func runFig7(ctx context.Context, o Options) (Dataset, error) {
	if err := ctx.Err(); err != nil {
		return Dataset{}, err
	}
	tb := testbed.New(radio.DefaultParams(), o.Seed)
	d := Dataset{
		Experiment: "fig7",
		Title:      "Figure 7: testbed layout",
		Meta: map[string]string{
			"map":       tb.ASCIIMap(),
			"margin_db": strconv.Itoa(audibilityMarginDB),
		},
	}
	s := Series{Label: "reliably audible senders", Unit: "senders", XUnit: "receiver"}
	for j := 0; j < testbed.NumReceivers; j++ {
		s.Points = append(s.Points, Point{
			Label: fmt.Sprintf("R%d", j+1),
			X:     float64(j + 1),
			Y:     float64(tb.AudibleCount(j, audibilityMarginDB)),
		})
	}
	d.Series = append(d.Series, s)
	return d, nil
}
