package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"ppr/internal/stats"
)

// Dataset is the one result model every experiment produces: a set of
// labelled series (points with units, percentile bands, scalar summaries)
// plus experiment-level metadata. It is what the registry's Run returns,
// what the Runner collects, and what cmd/pprsim renders — the generic text,
// JSON and CSV encoders replace the seed's per-figure printers.
type Dataset struct {
	// Experiment is the registry name ("fig8", "table2", ...).
	Experiment string `json:"experiment"`
	// Title is the figure/table caption, matching the paper's artifact.
	Title string `json:"title"`
	// Meta records the operating point and any other experiment-level
	// context as strings (offered load, carrier sense, scenario, maps).
	Meta map[string]string `json:"meta,omitempty"`
	// Series holds the labelled data series, in presentation order.
	Series []Series `json:"series"`
}

// Series is one labelled curve, scatter, or row set within a Dataset.
type Series struct {
	// Label matches the figure legend ("PPR, postamble decoding").
	Label string `json:"label"`
	// Unit is the y-axis unit ("Kbit/s", "P[X<=x]"); XUnit the x-axis unit.
	Unit  string `json:"unit,omitempty"`
	XUnit string `json:"xunit,omitempty"`
	// Points are the series' data points, in presentation order.
	Points []Point `json:"points,omitempty"`
	// Bands holds named scalar summaries of the series: percentile bands
	// ("median", "p10", ..., "p90") and other per-series scalars
	// ("mean", "miss_rate", "count").
	Bands map[string]float64 `json:"bands,omitempty"`
	// Meta records per-series string context (paper-reported values,
	// acquisition paths).
	Meta map[string]string `json:"meta,omitempty"`
}

// Point is one data point; Label distinguishes rows of the same series
// (a link, a summary row name) where the x value alone does not.
type Point struct {
	Label string  `json:"label,omitempty"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
}

// cdfPoints converts an empirical CDF into dataset points.
func cdfPoints(cdf []stats.CDFPoint) []Point {
	pts := make([]Point, len(cdf))
	for i, p := range cdf {
		pts[i] = Point{X: p.X, Y: p.P}
	}
	return pts
}

// cdfQuantile evaluates the nearest-rank quantile from an empirical CDF:
// the smallest x whose cumulative probability reaches q. For CDFs built by
// stats.CDF this equals stats.Quantile on the underlying samples.
func cdfQuantile(cdf []stats.CDFPoint, q float64) (float64, bool) {
	for _, p := range cdf {
		if p.P >= q {
			return p.X, true
		}
	}
	return 0, false
}

// cdfBands summarizes a CDF series into the standard percentile bands.
// median is passed in (not re-derived) so the band is bit-identical to the
// typed result's Median field.
func cdfBands(cdf []stats.CDFPoint, median float64) map[string]float64 {
	b := map[string]float64{"median": median}
	for _, q := range []struct {
		name string
		p    float64
	}{{"p10", 0.10}, {"p25", 0.25}, {"p75", 0.75}, {"p90", 0.90}} {
		if v, ok := cdfQuantile(cdf, q.p); ok {
			b[q.name] = v
		}
	}
	return b
}

// ---- Converters: one per typed experiment result ----

// Dataset converts a delivery figure (Figs. 8-10) to the uniform model.
func (fig DeliveryFigure) Dataset() Dataset {
	d := Dataset{
		Experiment: fig.Name,
		Title:      fmt.Sprintf("Figure %s: per-link equivalent frame delivery rate", strings.TrimPrefix(fig.Name, "fig")),
		Meta: map[string]string{
			"offered_load":  LoadName(fig.OfferedBps),
			"carrier_sense": strconv.FormatBool(fig.CarrierSense),
		},
	}
	for _, c := range fig.Curves {
		d.Series = append(d.Series, Series{
			Label:  c.Label,
			Unit:   "P[X<=x]",
			XUnit:  "delivery rate",
			Points: cdfPoints(c.CDF),
			Bands:  cdfBands(c.CDF, c.Median),
		})
	}
	return d
}

// Dataset converts the Fig. 11 throughput figure to the uniform model.
func (fig ThroughputFigure) Dataset() Dataset {
	d := Dataset{
		Experiment: "fig11",
		Title:      "Figure 11: end-to-end per-link throughput",
		Meta: map[string]string{
			"offered_load":  LoadName(fig.OfferedBps),
			"carrier_sense": "false",
		},
	}
	for _, c := range fig.Curves {
		d.Series = append(d.Series, Series{
			Label:  c.Label,
			Unit:   "P[X<=x]",
			XUnit:  "Kbit/s",
			Points: cdfPoints(c.CDF),
			Bands:  cdfBands(c.CDF, c.Median),
		})
	}
	return d
}

func fig3Dataset(curves []HintCurve) Dataset {
	d := Dataset{
		Experiment: "fig3",
		Title:      "Figure 3: CDF of Hamming distance, correct vs incorrect codewords",
	}
	for _, c := range curves {
		kind := "incorrect"
		if c.Correct {
			kind = "correct"
		}
		d.Series = append(d.Series, Series{
			Label:  fmt.Sprintf("%s, %s codewords", LoadName(c.OfferedBps), kind),
			Unit:   "P[X<=x]",
			XUnit:  "Hamming distance",
			Points: cdfPoints(c.CDF),
			Bands:  map[string]float64{"count": float64(c.Count)},
		})
	}
	return d
}

func fig12Dataset(series []ScatterSeries) Dataset {
	d := Dataset{
		Experiment: "fig12",
		Title:      "Figure 12: per-link throughput scatter vs fragmented CRC",
		Meta:       map[string]string{"carrier_sense": "false", "variant": "postamble decoding"},
	}
	for _, s := range series {
		out := Series{
			Label: fmt.Sprintf("%s at %s", s.Scheme.Name(), LoadName(s.OfferedBps)),
			Unit:  "Kbit/s",
			XUnit: "fragmented CRC Kbit/s",
		}
		for _, pt := range s.Points {
			out.Points = append(out.Points, Point{
				Label: fmt.Sprintf("s%d->r%d", pt.Link.Src, pt.Link.Rcv),
				X:     pt.FragKbps,
				Y:     pt.YKbps,
			})
		}
		d.Series = append(d.Series, out)
	}
	return d
}

// Dataset converts the Fig. 13 collision anatomy to the uniform model:
// one series per packet, hint vs codeword time, with correctness flags on
// the point labels and the acquisition paths in the series metadata.
func (res CollisionResult) Dataset() Dataset {
	d := Dataset{
		Experiment: "fig13",
		Title:      "Figure 13: anatomy of a collision (Hamming distance vs codeword time)",
	}
	timeline := func(label string, pts []CollisionPoint, via []string) Series {
		s := Series{
			Label: label,
			Unit:  "Hamming distance",
			XUnit: "codeword",
			Meta:  map[string]string{"acquired_via": strings.Join(via, ",")},
		}
		correct := 0
		for _, pt := range pts {
			flag := "wrong"
			switch {
			case !pt.Decoded:
				flag = "undecoded"
			case pt.Correct:
				flag = ""
				correct++
			}
			s.Points = append(s.Points, Point{Label: flag, X: float64(pt.Codeword), Y: pt.Hint})
		}
		s.Bands = map[string]float64{"correct_codewords": float64(correct)}
		return s
	}
	d.Series = append(d.Series,
		timeline("packet 1 (weak, first)", res.Packet1, res.P1AcquiredVia),
		timeline("packet 2 (strong, collider)", res.Packet2, res.P2AcquiredVia),
	)
	return d
}

func fig14Dataset(curves []MissLengthCurve) Dataset {
	d := Dataset{
		Experiment: "fig14",
		Title:      "Figure 14: CCDF of contiguous miss lengths",
	}
	for _, c := range curves {
		d.Series = append(d.Series, Series{
			Label:  fmt.Sprintf("eta = %.0f", c.Eta),
			Unit:   "P[X>x]",
			XUnit:  "run length",
			Points: cdfPoints(c.CCDF),
			Bands:  map[string]float64{"miss_rate": c.MissRate, "eta": c.Eta},
		})
	}
	return d
}

func fig15Dataset(curves []FalseAlarmCurve) Dataset {
	d := Dataset{
		Experiment: "fig15",
		Title:      "Figure 15: false alarm rate (CCDF of correct-codeword Hamming distance)",
	}
	for _, c := range curves {
		d.Series = append(d.Series, Series{
			Label:  LoadName(c.OfferedBps),
			Unit:   "P[X>x]",
			XUnit:  "Hamming distance",
			Points: cdfPoints(c.CCDF),
			Bands:  map[string]float64{"false_alarm_eta6": c.FalseAlarmAtEta6},
		})
	}
	return d
}

// Dataset converts the Fig. 16 PP-ARQ result to the uniform model.
func (res Fig16Result) Dataset() Dataset {
	sizeBands := cdfBands(res.CDF, res.MedianRetxBytes)
	sizeBands["retransmissions"] = float64(len(res.RetxSizes))
	return Dataset{
		Experiment: "fig16",
		Title:      "Figure 16: PP-ARQ partial retransmission sizes",
		Meta: map[string]string{
			"packet_bytes": strconv.Itoa(res.PacketBytes),
			"transfers":    strconv.Itoa(res.Transfers),
			"failures":     strconv.Itoa(res.Failures),
		},
		Series: []Series{
			{
				Label:  "partial retransmission size",
				Unit:   "P[X<=x]",
				XUnit:  "bytes",
				Points: cdfPoints(res.CDF),
				Bands:  sizeBands,
			},
			{
				Label: "air bytes",
				Unit:  "bytes",
				Points: []Point{
					{Label: "data", X: 0, Y: float64(res.TotalStats.DataAirBytes)},
					{Label: "retransmission", X: 1, Y: float64(res.TotalStats.RetxAirBytes)},
					{Label: "feedback", X: 2, Y: float64(res.TotalStats.FeedbackAirBytes)},
				},
				Bands: map[string]float64{
					"rounds":       float64(res.TotalStats.Rounds),
					"misses":       float64(res.TotalStats.Misses),
					"full_resends": float64(res.TotalStats.FullResends),
				},
			},
		},
	}
}

// Dataset converts the Fig. 17 closed-loop result to the uniform model.
func (res Fig17Result) Dataset() Dataset {
	d := Dataset{
		Experiment: "fig17",
		Title:      "Figure 17: closed-loop aggregate throughput, concurrent sender pairs",
		Meta: map[string]string{
			"pairs":         strconv.Itoa(len(res.Pairs)),
			"packet_bytes":  strconv.Itoa(res.PacketBytes),
			"duration_sec":  strconv.FormatFloat(res.DurationSec, 'g', -1, 64),
			"carrier_sense": strconv.FormatBool(res.CarrierSense),
			"scenario":      res.Scenario,
		},
	}
	for _, c := range res.Curves {
		bands := cdfBands(c.CDF, c.MedianKbps)
		bands["mean"] = c.MeanKbps
		bands["transfers"] = float64(c.Transfers)
		bands["failures"] = float64(c.Failures)
		bands["data_air_bytes"] = float64(c.Air.DataAirBytes)
		bands["retx_air_bytes"] = float64(c.Air.RetxAirBytes)
		bands["feedback_air_bytes"] = float64(c.Air.FeedbackAirBytes)
		d.Series = append(d.Series, Series{
			Label:  c.Layer,
			Unit:   "P[X<=x]",
			XUnit:  "aggregate Kbit/s",
			Points: cdfPoints(c.CDF),
			Bands:  bands,
		})
	}
	ratios := Series{Label: "median ratios", Unit: "ratio"}
	for i, pair := range [][2]string{
		{"pp-arq", "frag-crc-arq"},
		{"pp-arq", "packet-crc-arq"},
		{"frag-crc-arq", "packet-crc-arq"},
	} {
		ratios.Points = append(ratios.Points, Point{
			Label: pair[0] + "/" + pair[1],
			X:     float64(i),
			Y:     res.MedianRatio(pair[0], pair[1]),
		})
	}
	d.Series = append(d.Series, ratios)
	return d
}

func table2Dataset(rows []Table2Row) Dataset {
	d := Dataset{
		Experiment: "table2",
		Title:      "Table 2: fragmented-CRC aggregate throughput vs chunk count",
		Meta:       map[string]string{"operating_point": "high load, carrier sense off"},
	}
	s := Series{Label: "aggregate throughput", Unit: "Kbit/s", XUnit: "chunks"}
	for _, r := range rows {
		s.Points = append(s.Points, Point{
			Label: fmt.Sprintf("%d B fragments", r.FragBytes),
			X:     float64(r.Chunks),
			Y:     r.AggregateKbps,
		})
	}
	d.Series = append(d.Series, s)
	return d
}

func summaryDataset(rows []SummaryRow) Dataset {
	d := Dataset{
		Experiment: "summary",
		Title:      "Table 1: summary of experimental conclusions (measured vs paper)",
	}
	s := Series{Label: "headline comparisons", Unit: "ratio", Meta: map[string]string{}}
	for i, r := range rows {
		s.Points = append(s.Points, Point{Label: r.Name, X: float64(i), Y: r.Value})
		s.Meta[r.Name] = "paper: " + r.PaperValue
	}
	d.Series = append(d.Series, s)
	return d
}

// Dataset converts the diversity extension result to the uniform model.
func (res DiversityResult) Dataset() Dataset {
	return Dataset{
		Experiment: "diversity",
		Title:      "Extension (Sec. 8.4): multi-receiver min-hint diversity combining",
		Meta:       map[string]string{"operating_point": "high load, carrier sense off"},
		Series: []Series{{
			Label: "mean PPR delivery rate",
			Unit:  "delivery rate",
			Points: []Point{
				{Label: "best single receiver", X: 0, Y: res.SingleRate},
				{Label: "min-hint combined", X: 1, Y: res.CombinedRate},
			},
			Bands: map[string]float64{
				"packets":    float64(res.Packets),
				"multi_view": float64(res.MultiView),
			},
		}},
	}
}

// ---- Generic renderers ----

// ftoa renders a float compactly for the text renderer.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// sortedKeys returns a map's keys in sorted order, for deterministic
// rendering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// maxListedPoints bounds how many points the text renderer lists
// individually; longer series (CDFs, scatters) are summarized by their
// count, ranges and bands.
const maxListedPoints = 12

// WriteText renders the dataset in the generic layout every experiment
// shares: title, metadata, then one block per series with its bands and
// points. It replaces the seed's per-figure printers; the layout is pinned
// by a golden-file test.
func (d Dataset) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("%s: %s\n", d.Experiment, d.Title)
	for _, k := range sortedKeys(d.Meta) {
		v := d.Meta[k]
		if strings.Contains(v, "\n") {
			// Multi-line values (ASCII maps) print verbatim, unindented.
			bw.printf("  %s:\n%s", k, v)
			if !strings.HasSuffix(v, "\n") {
				bw.printf("\n")
			}
			continue
		}
		bw.printf("  %s = %s\n", k, v)
	}
	for _, s := range d.Series {
		unit := ""
		switch {
		case s.Unit != "" && s.XUnit != "":
			unit = fmt.Sprintf("  [%s vs %s]", s.Unit, s.XUnit)
		case s.Unit != "":
			unit = fmt.Sprintf("  [%s]", s.Unit)
		}
		bw.printf("  ~ %s%s\n", s.Label, unit)
		if len(s.Bands) > 0 {
			parts := make([]string, 0, len(s.Bands))
			for _, k := range sortedKeys(s.Bands) {
				parts = append(parts, fmt.Sprintf("%s=%s", k, ftoa(s.Bands[k])))
			}
			bw.printf("      bands: %s\n", strings.Join(parts, " "))
		}
		for _, k := range sortedKeys(s.Meta) {
			bw.printf("      %s = %s\n", k, s.Meta[k])
		}
		switch {
		case len(s.Points) == 0:
		case len(s.Points) <= maxListedPoints:
			for _, p := range s.Points {
				label := ""
				if p.Label != "" {
					label = "  " + p.Label
				}
				bw.printf("      (%s, %s)%s\n", ftoa(p.X), ftoa(p.Y), label)
			}
		default:
			xmin, xmax := s.Points[0].X, s.Points[0].X
			ymin, ymax := s.Points[0].Y, s.Points[0].Y
			for _, p := range s.Points[1:] {
				xmin, xmax = min(xmin, p.X), max(xmax, p.X)
				ymin, ymax = min(ymin, p.Y), max(ymax, p.Y)
			}
			bw.printf("      points: n=%d x in [%s, %s] y in [%s, %s]\n",
				len(s.Points), ftoa(xmin), ftoa(xmax), ftoa(ymin), ftoa(ymax))
		}
	}
	return bw.err
}

// errWriter folds fmt errors so the renderer body stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// WriteCSV encodes datasets as flat CSV rows — one row per point and per
// band — with full float precision for machine consumption. String
// metadata is not emitted (use JSON for the complete model).
func WriteCSV(w io.Writer, ds []Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"experiment", "series", "kind", "label", "x", "y"}); err != nil {
		return err
	}
	full := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, d := range ds {
		for _, s := range d.Series {
			for _, p := range s.Points {
				if err := cw.Write([]string{d.Experiment, s.Label, "point", p.Label, full(p.X), full(p.Y)}); err != nil {
					return err
				}
			}
			for _, k := range sortedKeys(s.Bands) {
				if err := cw.Write([]string{d.Experiment, s.Label, "band", k, "", full(s.Bands[k])}); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
