package experiments

import (
	"context"

	"ppr/internal/core/pparq"
	"ppr/internal/frame"
	"ppr/internal/phy"
	"ppr/internal/schemes"
	"ppr/internal/stats"
)

// burstyLink is a single wireless hop whose transmissions suffer
// collision-style bursts: with probability BurstProb per transmission, one
// or two contiguous chip ranges are overwritten with noise, the footprint
// a colliding packet leaves. It models the "busy network" conditions of
// the paper's single-link PP-ARQ experiment (Sec. 7.5).
type burstyLink struct {
	rx        *frame.Receiver
	rng       *stats.RNG
	burstProb float64
	// meanBurstBytes sets the exponential mean of burst footprints.
	meanBurstBytes float64
}

func (l *burstyLink) Transmit(f frame.Frame) *frame.Reception {
	chips := f.AirChips()
	if l.rng.Bool(l.burstProb) {
		nBursts := 1 + l.rng.Intn(2)
		for b := 0; b < nBursts; b++ {
			lenBytes := int(l.rng.ExpFloat64()*l.meanBurstBytes) + 4
			startChip := l.rng.Intn(chips.Len())
			endChip := startChip + lenBytes*frame.ChipsPerByte
			if endChip > chips.Len() {
				endChip = chips.Len()
			}
			chips.FillUniform(startChip, endChip, l.rng.Uint64)
		}
	}
	return frame.BestReception(l.rx.Receive(chips))
}

// Fig16Result is the Fig. 16 reproduction: the distribution of partial
// retransmission sizes over a busy single link.
type Fig16Result struct {
	// PacketBytes is the data packet payload size (the paper uses 250).
	PacketBytes int
	// Transfers is the number of packets pushed through PP-ARQ.
	Transfers int
	// RetxSizes holds every response frame's payload size in bytes.
	RetxSizes []float64
	// CDF is the distribution Fig. 16 plots.
	CDF []stats.CDFPoint
	// MedianRetxBytes is the median partial retransmission size; the paper
	// reports ~half the 250-byte packet size.
	MedianRetxBytes float64
	// TotalStats aggregates the byte accounting across all transfers.
	TotalStats pparq.Stats
	// Failures counts transfers PP-ARQ gave up on.
	Failures int
}

// Fig16 reproduces Figure 16: one sender streams 250-byte data packets
// back-to-back to one receiver over a link suffering collision bursts;
// every PP-ARQ partial retransmission's size is recorded.
func Fig16(o Options) Fig16Result {
	res, err := fig16Ctx(context.Background(), o)
	must(err)
	return res
}

func fig16Ctx(ctx context.Context, o Options) (Fig16Result, error) {
	rng := stats.NewRNG(o.Seed ^ 0xf16)
	transfers := 120
	if o.Quick {
		transfers = 25
	}
	const packetBytes = 250

	fwd := &burstyLink{
		rx:             frame.NewReceiver(phy.HardDecoder{}),
		rng:            rng.Split(),
		burstProb:      0.8,
		meanBurstBytes: 60,
	}
	// The reverse link is quieter (feedback packets are short and the
	// receiver defers to data traffic) but not perfect.
	rev := &burstyLink{
		rx:             frame.NewReceiver(phy.HardDecoder{}),
		rng:            rng.Split(),
		burstProb:      0.2,
		meanBurstBytes: 30,
	}
	sender := pparq.NewSender(fwd, rev, 10, 20, pparq.Config{})

	res := Fig16Result{PacketBytes: packetBytes, Transfers: transfers}
	payloadRng := rng.Split()
	for i := 0; i < transfers; i++ {
		// Each transfer is the cancellation unit: a handful of frames over
		// the bursty link, milliseconds of work.
		if err := ctx.Err(); err != nil {
			return Fig16Result{}, err
		}
		payload := make([]byte, packetBytes)
		for b := range payload {
			payload[b] = byte(payloadRng.Intn(256))
		}
		_, st, err := sender.Transfer(payload)
		if err != nil {
			res.Failures++
			continue
		}
		res.TotalStats.DataAirBytes += st.DataAirBytes
		res.TotalStats.RetxAirBytes += st.RetxAirBytes
		res.TotalStats.FeedbackAirBytes += st.FeedbackAirBytes
		res.TotalStats.Rounds += st.Rounds
		res.TotalStats.Misses += st.Misses
		res.TotalStats.FullResends += st.FullResends
		for _, sz := range st.RetxPayloadSizes {
			res.RetxSizes = append(res.RetxSizes, float64(sz))
		}
	}
	res.CDF = stats.CDF(res.RetxSizes)
	res.MedianRetxBytes = stats.MedianOrZero(res.RetxSizes)
	return res, nil
}

// SummaryRow is one headline comparison in the Table 1 stand-in.
type SummaryRow struct {
	// Name describes the comparison.
	Name string
	// Value is the measured number (a ratio or rate).
	Value float64
	// PaperValue is what the paper reports for the same comparison.
	PaperValue string
}

// Summary computes the headline claims of Table 1 from fresh runs: the
// per-link throughput factors between PPR, fragmented CRC and packet CRC
// at moderate and high load, the postamble acquisition gain, and PP-ARQ's
// median retransmission fraction.
func Summary(o Options) []SummaryRow {
	rows, err := summaryCtx(context.Background(), o)
	must(err)
	return rows
}

func summaryCtx(ctx context.Context, o Options) ([]SummaryRow, error) {
	p := DefaultSchemeParams()
	var rows []SummaryRow

	ratioAt := func(load float64, a, b schemes.RecoveryScheme) (float64, error) {
		tr, err := o.TraceContext(ctx, load, false)
		if err != nil {
			return 0, err
		}
		pp := tr.Post(o.Workers)
		const variant = 1
		am := stats.MedianOrZero(ThroughputsKbps(pp.PerLinkDelivery(variant, a, p), tr.Cfg.DurationSec))
		bm := stats.MedianOrZero(ThroughputsKbps(pp.PerLinkDelivery(variant, b, p), tr.Cfg.DurationSec))
		if bm == 0 {
			return 0, nil
		}
		return am / bm, nil
	}

	modPPRvsCRC, err := ratioAt(LoadModerate, schemes.PPR{}, schemes.PacketCRC{})
	if err != nil {
		return nil, err
	}
	highPPRvsCRC, err := ratioAt(LoadHigh, schemes.PPR{}, schemes.PacketCRC{})
	if err != nil {
		return nil, err
	}
	highPPRvsFrag, err := ratioAt(LoadHigh, schemes.PPR{}, schemes.FragCRC{})
	if err != nil {
		return nil, err
	}

	rows = append(rows,
		SummaryRow{
			Name:       "PPR vs packet CRC median throughput, moderate load",
			Value:      modPPRvsCRC,
			PaperValue: "≈2x (Sec. 7.2)",
		},
		SummaryRow{
			Name:       "PPR vs packet CRC median throughput, high load",
			Value:      highPPRvsCRC,
			PaperValue: "≈7x (Sec. 1, 7.2)",
		},
		SummaryRow{
			Name:       "PPR vs fragmented CRC median throughput, high load",
			Value:      highPPRvsFrag,
			PaperValue: "≈2x high load, 1.6x moderate (Table 1)",
		},
	)

	f16, err := fig16Ctx(ctx, o)
	if err != nil {
		return nil, err
	}
	rows = append(rows, SummaryRow{
		Name:       "PP-ARQ median retransmission fraction of packet size",
		Value:      f16.MedianRetxBytes / float64(f16.PacketBytes),
		PaperValue: "≈0.5 (Sec. 7.5)",
	})
	return rows, nil
}
