package experiments

import (
	"reflect"
	"testing"
)

// TestFig17WorkerInvariance pins the parallelization contract: the closed-
// loop figure is bit-identical however many workers the (pair, layer) cells
// fan out over.
func TestFig17WorkerInvariance(t *testing.T) {
	one := Fig17(Options{Seed: 1, Quick: true, Workers: 1})
	many := Fig17(Options{Seed: 1, Quick: true, Workers: 4})
	if !reflect.DeepEqual(one, many) {
		t.Fatal("Fig17 results depend on worker count")
	}
}

// TestFig17QuickDirection asserts the headline direction at quick scale:
// closed-loop PP-ARQ beats both status-quo ARQs. (The full frag-vs-packet
// ordering is a 1500-byte phenomenon — at the quick 250-byte packet size
// fragmentation's checksum overhead can cost more than fragment salvage
// recovers — so it is asserted in TestFig17FullOrdering.)
func TestFig17QuickDirection(t *testing.T) {
	r := Fig17(Options{Seed: 1, Quick: true})
	if len(r.Pairs) == 0 {
		t.Fatal("no sender pairs sampled")
	}
	var pp, frag, pack float64
	for _, c := range r.Curves {
		if len(c.PairKbps) != len(r.Pairs) {
			t.Fatalf("%s: %d samples for %d pairs", c.Layer, len(c.PairKbps), len(r.Pairs))
		}
		switch c.Layer {
		case "pp-arq":
			pp = c.MedianKbps
		case "frag-crc-arq":
			frag = c.MedianKbps
		case "packet-crc-arq":
			pack = c.MedianKbps
		}
	}
	if pp <= 0 || frag <= 0 || pack <= 0 {
		t.Fatalf("degenerate medians pp=%v frag=%v pack=%v", pp, frag, pack)
	}
	if pp < frag || pp < pack {
		t.Errorf("PP-ARQ median %v should lead frag %v and packet %v", pp, frag, pack)
	}
}

// TestFig17ScenarioWired pins that -scenario actually reaches the closed
// loop: a jammer scenario overlays its jammer on every pair run (changing
// the results), and the jammer's sender never appears in a sampled pair.
func TestFig17ScenarioWired(t *testing.T) {
	base := Fig17(Options{Seed: 1, Quick: true})
	jam := Fig17(Options{Seed: 1, Quick: true, Scenario: "periodic-jammer"})
	if jam.Scenario != "periodic-jammer" || base.Scenario != "poisson" {
		t.Fatalf("scenario labels %q / %q", base.Scenario, jam.Scenario)
	}
	for _, p := range jam.Pairs {
		if p[0] == 0 || p[1] == 0 {
			t.Fatalf("jammer sender 0 sampled as a flow in pair %v", p)
		}
	}
	if reflect.DeepEqual(base.Curves, jam.Curves) {
		t.Error("jammer scenario produced results identical to the clean run")
	}
}

// TestFig17FullOrdering is the acceptance gate for the closed-loop figure:
// at the paper's 1500-byte packet size, aggregate throughput orders
// PP-ARQ > fragmented CRC > packet CRC (Sec. 7.5 / Table 1 direction).
func TestFig17FullOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale closed-loop run")
	}
	r := Fig17(Options{Seed: 1})
	if ratio := r.MedianRatio("pp-arq", "frag-crc-arq"); ratio <= 1 {
		t.Errorf("PP-ARQ / frag-CRC median ratio %.2f, want > 1", ratio)
	}
	if ratio := r.MedianRatio("frag-crc-arq", "packet-crc-arq"); ratio <= 1 {
		t.Errorf("frag-CRC / packet-CRC median ratio %.2f, want > 1", ratio)
	}
	if ratio := r.MedianRatio("pp-arq", "packet-crc-arq"); ratio < 1.2 {
		t.Errorf("PP-ARQ / packet-CRC median ratio %.2f, want the paper's direction decisively (>= 1.2)", ratio)
	}
}
