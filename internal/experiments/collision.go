package experiments

import (
	"context"

	"ppr/internal/chipseq"
	"ppr/internal/frame"
	"ppr/internal/modem"
	"ppr/internal/phy"
	"ppr/internal/stats"
)

// CollisionPoint is one codeword of a packet's timeline in Fig. 13.
type CollisionPoint struct {
	// Codeword is the index in units of codeword time from the window
	// origin, as in the paper's x axis.
	Codeword int
	// Hint is the Hamming distance the decoder reported.
	Hint float64
	// Correct says whether the codeword decoded to the transmitted symbol.
	Correct bool
	// Decoded reports whether the codeword was within the receiver's
	// demodulated window at all.
	Decoded bool
}

// CollisionResult is the Fig. 13 reproduction: the receiver's per-codeword
// view of two overlapping packets, decoded from one composite sample-level
// waveform.
type CollisionResult struct {
	// Packet1 is the longer, weaker packet that arrives first; its
	// preamble and early body are destroyed by Packet2, and its tail is
	// recoverable only via the postamble.
	Packet1 []CollisionPoint
	// Packet2 is the stronger packet arriving during Packet1's header; the
	// receiver captures it and decodes it nearly completely.
	Packet2 []CollisionPoint
	// P1AcquiredVia lists the sync kinds that acquired packet 1 when the
	// chip stream is run through the full frame receiver ("postamble" is
	// the expected entry).
	P1AcquiredVia []string
	// P2AcquiredVia likewise for packet 2.
	P2AcquiredVia []string
}

// Fig13 reproduces Figure 13 ("anatomy of a collision") with the
// sample-level MSK modem: packet 2 arrives six codeword-times into packet
// 1 at ~8 dB higher receive power, wiping out packet 1's preamble and
// early body. The Hamming-distance timelines show exactly the paper's
// structure — low distances where each packet's symbols survive, high
// distances under the collision — and the frame receiver confirms packet
// 1 is recoverable only through its postamble.
func Fig13(o Options) CollisionResult {
	res, err := fig13Ctx(context.Background(), o)
	must(err)
	return res
}

// fig13Ctx is the registry body. The experiment is one pair of modulated
// packets through the sample-level modem — far below the cancellation
// granularity of a simulation window — so ctx is only checked on entry.
func fig13Ctx(ctx context.Context, o Options) (CollisionResult, error) {
	if err := ctx.Err(); err != nil {
		return CollisionResult{}, err
	}
	rng := stats.NewRNG(o.Seed ^ 0xf13)

	// Packet 1: long and weak. Packet 2: short, strong, arriving during
	// packet 1's header.
	p1Payload := make([]byte, 79) // 113 air bytes = 226 codewords
	p2Payload := make([]byte, 6)  // 40 air bytes = 80 codewords
	for i := range p1Payload {
		p1Payload[i] = byte(rng.Intn(256))
	}
	for i := range p2Payload {
		p2Payload[i] = byte(rng.Intn(256))
	}
	f1 := frame.New(1, 10, 100, p1Payload)
	f2 := frame.New(1, 11, 200, p2Payload)
	// The modem is the sample-level boundary: unpack the on-air streams to
	// byte chips for modulation.
	chips1, chips2 := f1.AirChips().Bytes(), f2.AirChips().Bytes()

	// Packet 2 arrives six codeword-times in, at an arbitrary chip offset
	// within the codeword — collisions are never codeword-aligned, and the
	// misalignment is what makes the trampled region decode to *distant*
	// words rather than to valid-but-wrong codewords.
	const p2StartCodeword = 6
	p2StartChip := p2StartCodeword*chipseq.ChipsPerSymbol + 13

	m1, m2 := modem.NewModulator(), modem.NewModulator()
	m1.Amplitude, m1.PhaseOffset = 0.4, 1.1
	m2.Amplitude, m2.PhaseOffset = 1.0, 2.3
	sps := m1.SPS

	windowChips := len(chips1) + 64
	mix := modem.Mix(windowChips*sps, []struct {
		Start   int
		Samples []complex128
	}{
		{0, m1.Modulate(chips1)},
		{p2StartChip * sps, m2.Modulate(chips2)},
	})
	samples := modem.AddAWGNTo(mix, rng, mix, 0.08) // in place: the clean mix is not needed again

	dem := modem.NewDemodulator()
	off := dem.RecoverTiming(samples)
	hard, _ := dem.Demodulate(samples, off)

	// Demodulated decision j corresponds to window chip j+1.
	chipAt := func(windowChip int) (byte, bool) {
		j := windowChip - 1
		if j < 0 || j >= len(hard) {
			return 0, false
		}
		return hard[j], true
	}
	timeline := func(txChips []byte, startChip int) []CollisionPoint {
		nCW := len(txChips) / chipseq.ChipsPerSymbol
		points := make([]CollisionPoint, 0, nCW)
		for cw := 0; cw < nCW; cw++ {
			var rx uint32
			ok := true
			for b := 0; b < chipseq.ChipsPerSymbol; b++ {
				c, in := chipAt(startChip + cw*chipseq.ChipsPerSymbol + b)
				if !in {
					ok = false
					break
				}
				if c != 0 {
					rx |= 1 << uint(31-b)
				}
			}
			pt := CollisionPoint{Codeword: startChip/chipseq.ChipsPerSymbol + cw, Decoded: ok}
			if ok {
				truth := phy.PackChips(txChips, cw*chipseq.ChipsPerSymbol)
				sym, dist := chipseq.NearestHard(rx)
				truthSym, _ := chipseq.NearestHard(truth)
				pt.Hint = float64(dist)
				pt.Correct = sym == truthSym
			}
			points = append(points, pt)
		}
		return points
	}

	out := CollisionResult{
		Packet1: timeline(chips1, 0),
		Packet2: timeline(chips2, p2StartChip),
	}

	// Run the full frame receiver over the demodulated chips to see how
	// each packet is acquirable.
	rx := frame.NewReceiver(phy.HardDecoder{})
	for _, rec := range rx.Receive(frame.NewChipBuffer(hard)) {
		if !rec.HeaderOK {
			continue
		}
		switch rec.Hdr.Src {
		case f1.Hdr.Src:
			out.P1AcquiredVia = append(out.P1AcquiredVia, rec.Kind.String())
		case f2.Hdr.Src:
			out.P2AcquiredVia = append(out.P2AcquiredVia, rec.Kind.String())
		}
	}
	return out, nil
}
