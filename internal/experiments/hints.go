package experiments

import (
	"context"

	"ppr/internal/schemes"
	"ppr/internal/stats"
)

// HintCurve is one CDF of Hamming-distance hints, conditioned on codeword
// correctness.
type HintCurve struct {
	// OfferedBps is the load the trace was collected at.
	OfferedBps float64
	// Correct says whether the curve conditions on correctly-decoded
	// codewords (true) or incorrect ones (false).
	Correct bool
	// CDF is the distribution of Hamming distances.
	CDF []stats.CDFPoint
	// Count is the number of codewords in the sample.
	Count int
}

// hintTrace collects (hint, correct) pairs for every decoded payload
// codeword at one operating point, postamble decoding enabled (the paper's
// receivers always run it).
func hintTrace(ctx context.Context, o Options, offeredBps float64) (correct, incorrect []float64, err error) {
	tr, err := o.TraceContext(ctx, offeredBps, false)
	if err != nil {
		return nil, nil, err
	}
	outs := tr.Outs
	for i := range outs {
		out := &outs[i]
		if !out.Acquired || out.Variant != 1 {
			continue
		}
		for k, d := range out.Decisions {
			idx := out.MissingPrefix + k
			if idx >= len(out.TruthSyms) {
				break
			}
			if d.Symbol == out.TruthSyms[idx] {
				correct = append(correct, d.Hint)
			} else {
				incorrect = append(incorrect, d.Hint)
			}
		}
	}
	return correct, incorrect, nil
}

// Fig3 reproduces Figure 3: the CDF of Hamming distance over every
// received codeword, separated by correctness, at the three offered loads.
// This is the experiment establishing Hamming distance as a SoftPHY hint.
func Fig3(o Options) []HintCurve {
	curves, err := fig3Ctx(context.Background(), o)
	must(err)
	return curves
}

func fig3Ctx(ctx context.Context, o Options) ([]HintCurve, error) {
	var curves []HintCurve
	for _, load := range Loads {
		correct, incorrect, err := hintTrace(ctx, o, load)
		if err != nil {
			return nil, err
		}
		curves = append(curves,
			HintCurve{OfferedBps: load, Correct: true, CDF: stats.CDF(correct), Count: len(correct)},
			HintCurve{OfferedBps: load, Correct: false, CDF: stats.CDF(incorrect), Count: len(incorrect)},
		)
	}
	return curves, nil
}

// MissLengthCurve is one CCDF of contiguous miss lengths at a threshold η
// (Fig. 14).
type MissLengthCurve struct {
	// Eta is the labelling threshold.
	Eta float64
	// CCDF is the complementary distribution of contiguous miss run
	// lengths.
	CCDF []stats.CDFPoint
	// MissRate is the overall fraction of incorrect codewords labelled
	// good at this η.
	MissRate float64
}

// Fig14 reproduces Figure 14: the distribution of lengths of contiguous
// misses (incorrect codewords mislabelled good) for η ∈ {1, 2, 3, 4},
// collected at high load where collisions dominate.
func Fig14(o Options) []MissLengthCurve {
	curves, err := fig14Ctx(context.Background(), o)
	must(err)
	return curves
}

func fig14Ctx(ctx context.Context, o Options) ([]MissLengthCurve, error) {
	tr, err := o.TraceContext(ctx, LoadHigh, false)
	if err != nil {
		return nil, err
	}
	outs := tr.Outs

	var curves []MissLengthCurve
	for _, eta := range []float64{1, 2, 3, 4} {
		var lengths []float64
		misses, incorrect := 0, 0
		for i := range outs {
			out := &outs[i]
			if !out.Acquired || out.Variant != 1 {
				continue
			}
			run := 0
			flush := func() {
				if run > 0 {
					lengths = append(lengths, float64(run))
					run = 0
				}
			}
			for k, d := range out.Decisions {
				idx := out.MissingPrefix + k
				if idx >= len(out.TruthSyms) {
					break
				}
				if d.Symbol != out.TruthSyms[idx] {
					incorrect++
					if d.Hint <= eta {
						misses++
						run++
						continue
					}
				}
				flush()
			}
			flush()
		}
		c := MissLengthCurve{Eta: eta, CCDF: stats.CCDF(lengths)}
		if incorrect > 0 {
			c.MissRate = float64(misses) / float64(incorrect)
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// FalseAlarmCurve is one CCDF of correct-codeword hints (Fig. 15): the
// value at x = η is the false alarm rate at that threshold.
type FalseAlarmCurve struct {
	// OfferedBps is the load the trace was collected at.
	OfferedBps float64
	// CCDF is the complementary distribution of correct codewords' hints.
	CCDF []stats.CDFPoint
	// FalseAlarmAtEta6 is the curve evaluated at the paper's operating
	// η = 6 (schemes.DefaultParams().Eta).
	FalseAlarmAtEta6 float64
}

// Fig15 reproduces Figure 15: the complementary CDF of Hamming distance
// for every correctly-decoded codeword, per load — the false alarm rate as
// a function of threshold.
func Fig15(o Options) []FalseAlarmCurve {
	curves, err := fig15Ctx(context.Background(), o)
	must(err)
	return curves
}

func fig15Ctx(ctx context.Context, o Options) ([]FalseAlarmCurve, error) {
	eta := schemes.DefaultParams().Eta
	var curves []FalseAlarmCurve
	for _, load := range Loads {
		correct, _, err := hintTrace(ctx, o, load)
		if err != nil {
			return nil, err
		}
		ccdf := stats.CCDF(correct)
		fa := 0.0
		if len(correct) > 0 {
			above := 0
			for _, h := range correct {
				if h > eta {
					above++
				}
			}
			fa = float64(above) / float64(len(correct))
		}
		curves = append(curves, FalseAlarmCurve{
			OfferedBps:       load,
			CCDF:             ccdf,
			FalseAlarmAtEta6: fa,
		})
	}
	return curves, nil
}
