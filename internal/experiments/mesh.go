package experiments

import (
	"context"
	"fmt"

	"ppr/internal/netsim"
	"ppr/internal/radio"
	"ppr/internal/stats"
	"ppr/internal/topo"
)

// The mesh experiment's city-scale deployment: a 10×10 grid of dense
// 10-node cells, 2000 ft apart — ≈21 dB past the audibility floor at the
// default path-loss exponent, over 5σ of shadowing — so the engine
// decomposes the 1000 nodes into 100 independent interference domains and
// the spatially sharded event queues carry the run.
const (
	meshCellsX          = 10
	meshCellsY          = 10
	meshNodesPerCell    = 10
	meshCellSpacingFeet = 2000
	meshCellRadiusFeet  = 25
)

// MeshLayerResult is one link layer's outcome over the whole mesh.
type MeshLayerResult struct {
	// Layer is the link layer's registry slug ("pp-arq", ...).
	Layer string
	// FlowKbps is each flow's delivered application throughput, in flow
	// order (cell-major, as meshFlows lays them out).
	FlowKbps []float64
	// CDF is the per-flow throughput distribution.
	CDF []stats.CDFPoint
	// MedianKbps and MeanKbps summarize it; AggregateKbps totals it.
	MedianKbps, MeanKbps, AggregateKbps float64
	// Fairness is Jain's index over FlowKbps: how evenly the contending
	// flows of each cell share their domain's airtime.
	Fairness float64
	// Air sums the byte accounting over every flow — where the airtime
	// went (data vs retransmissions vs feedback).
	Air netsim.LinkStats
	// Transfers and Failures total the per-flow transfer counts.
	Transfers, Failures int
}

// MeshResult is the city-scale mesh experiment: every link layer run over
// the same 1000-node, multi-domain topology with intra-cell closed-loop
// flows, reported as per-flow throughput distributions and fairness.
type MeshResult struct {
	// Nodes, Flows and Domains describe the deployment the engine ran:
	// Domains is what the audibility-graph partition found, and the whole
	// point of the layout is Domains = number of cells.
	Nodes, Flows, Domains int
	// PacketBytes and DurationSec record the operating point.
	PacketBytes int
	DurationSec float64
	// Layers holds one entry per link layer, in netsim.LinkLayers order.
	Layers []MeshLayerResult
}

// meshDuration is the simulated airtime; each of the ~100 domains runs the
// full window, so the wall-clock cost scales with cells × duration.
func meshDuration(o Options) float64 {
	if o.Quick {
		return 0.02
	}
	return 0.5
}

// MeshTopology builds the experiment's deployment. The seed keys both
// placement and shadowing, so one Options value names one reproducible
// city. Exported so the scaling benchmark drives the identical topology
// through raw netsim configurations.
func MeshTopology(o Options) (*topo.Topology, error) {
	return topo.CellGrid(meshCellsX, meshCellsY, meshNodesPerCell,
		meshCellSpacingFeet, meshCellRadiusFeet, radio.DefaultParams(), o.Seed)
}

// meshFlowsPerCell bounds the saturated flows contending in each cell.
// Three is past the knee where CSMA losses and hidden-backoff collisions
// bite (the regime PP-ARQ targets) but short of wholesale starvation —
// five saturated 1500-byte flows per cell drive most medians to zero.
const meshFlowsPerCell = 3

// MeshFlows pairs adjacent nodes inside every cell — node 2k streams to
// node 2k+1, up to meshFlowsPerCell flows per cell; remaining nodes are
// silent bystanders. No flow crosses (and therefore merges) cells.
func MeshFlows(nodes int) []netsim.Flow {
	flows := make([]netsim.Flow, 0, nodes/2)
	for base := 0; base < nodes; base += meshNodesPerCell {
		for k := 0; k+1 < meshNodesPerCell && k/2 < meshFlowsPerCell; k += 2 {
			flows = append(flows, netsim.Flow{Sender: base + k, Receiver: base + k + 1})
		}
	}
	return flows
}

// Mesh runs the city-scale mesh experiment: all link layers over the same
// 1000-node cell-grid topology, each flow closed-loop inside its cell.
// One netsim run per layer; the engine shards each run by interference
// domain and executes domains concurrently under Options.Workers, with
// results bit-identical for every worker count.
func Mesh(o Options) MeshResult {
	res, err := meshCtx(context.Background(), o)
	must(err)
	return res
}

func meshCtx(ctx context.Context, o Options) (MeshResult, error) {
	if err := ctx.Err(); err != nil {
		return MeshResult{}, err
	}
	tp, err := MeshTopology(o)
	if err != nil {
		return MeshResult{}, fmt.Errorf("mesh: %w", err)
	}
	flows := MeshFlows(tp.NumNodes())
	res := MeshResult{
		Nodes:       tp.NumNodes(),
		Flows:       len(flows),
		PacketBytes: o.PacketBytes(),
		DurationSec: meshDuration(o),
	}
	for _, layer := range netsim.LinkLayers() {
		if err := ctx.Err(); err != nil {
			return MeshResult{}, err
		}
		run, err := netsim.RunContext(ctx, netsim.Config{
			Topo:         tp,
			Flows:        flows,
			LinkLayer:    layer,
			PacketBytes:  res.PacketBytes,
			DurationSec:  res.DurationSec,
			CarrierSense: true,
			// The seed is layer-independent: every layer faces the same
			// traffic phases and channel draws, so the comparison isolates
			// the protocols.
			Seed:    o.Seed ^ 0x3e511,
			Workers: o.Workers,
			Tracer:  o.Tracer,
		})
		if err != nil {
			if ctx.Err() != nil {
				return MeshResult{}, ctx.Err()
			}
			return MeshResult{}, fmt.Errorf("mesh: %w", err)
		}
		res.Domains = run.Domains
		lr := MeshLayerResult{Layer: layer}
		for _, fr := range run.Flows {
			lr.FlowKbps = append(lr.FlowKbps, float64(fr.DeliveredAppBytes)*8/res.DurationSec/1000)
			lr.Air.Merge(fr.Air)
			lr.Transfers += fr.Transfers
			lr.Failures += fr.Failures
		}
		lr.CDF = stats.CDF(lr.FlowKbps)
		lr.MedianKbps = stats.MedianOrZero(lr.FlowKbps)
		lr.MeanKbps = stats.Mean(lr.FlowKbps)
		lr.AggregateKbps = run.AggregateKbps()
		lr.Fairness = stats.JainFairness(lr.FlowKbps)
		res.Layers = append(res.Layers, lr)
	}
	return res, nil
}

// Dataset converts the mesh result to the uniform model: one per-flow
// throughput CDF series per link layer, with aggregate throughput and
// Jain fairness as series scalars.
func (r MeshResult) Dataset() Dataset {
	d := Dataset{
		Experiment: "mesh",
		Title:      "Mesh: city-scale throughput and fairness across interference domains",
		Meta: map[string]string{
			"nodes":           fmt.Sprintf("%d", r.Nodes),
			"flows":           fmt.Sprintf("%d", r.Flows),
			"domains":         fmt.Sprintf("%d", r.Domains),
			"cells":           fmt.Sprintf("%dx%d x %d nodes", meshCellsX, meshCellsY, meshNodesPerCell),
			"cell_spacing_ft": fmt.Sprintf("%d", meshCellSpacingFeet),
			"packet_bytes":    fmt.Sprintf("%d", r.PacketBytes),
			"duration_sec":    fmt.Sprintf("%g", r.DurationSec),
		},
	}
	for _, lr := range r.Layers {
		s := Series{
			Label:  lr.Layer,
			Unit:   "P[X<=x]",
			XUnit:  "Kbit/s",
			Points: cdfPoints(lr.CDF),
			Bands:  cdfBands(lr.CDF, lr.MedianKbps),
		}
		s.Bands["mean"] = lr.MeanKbps
		s.Bands["aggregate_kbps"] = lr.AggregateKbps
		s.Bands["fairness"] = lr.Fairness
		s.Bands["transfers"] = float64(lr.Transfers)
		s.Bands["failures"] = float64(lr.Failures)
		s.Bands["air_bytes"] = float64(lr.Air.TotalAirBytes())
		d.Series = append(d.Series, s)
	}
	return d
}
