package experiments

import "ppr/internal/obs"

// Metric handles for the experiment layer. These sites fire at most a few
// times per experiment — cache lookups and experiment completions — so the
// Var indirection (two atomic loads per use) is free relative to the work
// they bracket.
var (
	// mCacheHits / mCacheMisses mirror TraceCache.Stats in the registry so a
	// -metrics dump shows how well the suite shared its simulations.
	mCacheHits   = &obs.CounterVar{Name: "tracecache.hits"}
	mCacheMisses = &obs.CounterVar{Name: "tracecache.misses"}
	// mCacheFillNs is the distribution of cache-miss fill times (one full
	// simulation of an operating point) in nanoseconds.
	mCacheFillNs = &obs.HistogramVar{Name: "tracecache.fill_ns"}
	// mExperimentNs is the wall-time distribution of completed experiments.
	mExperimentNs = &obs.HistogramVar{Name: "runner.experiment_ns"}
	// mExperimentsRun counts experiments a Runner completed.
	mExperimentsRun = &obs.CounterVar{Name: "runner.experiments_run"}
)
