package experiments

import (
	"context"
	"fmt"
	"sort"

	"ppr/internal/schemes"
	"ppr/internal/stats"
)

// DeliveryCurve is one CDF in a delivery-rate figure.
type DeliveryCurve struct {
	// Label matches the paper's legend, e.g. "PPR, postamble decoding".
	Label string
	// CDF is the per-link distribution of the metric.
	CDF []stats.CDFPoint
	// Median is the distribution's median, the number the paper quotes in
	// its factor-of-N claims.
	Median float64
}

// DeliveryFigure is the output of Figs. 8, 9 and 10: one curve per
// (registered scheme, postamble on/off) pair, the paper's three schemes
// first.
type DeliveryFigure struct {
	// Name identifies the figure ("fig8" etc.).
	Name string
	// OfferedBps and CarrierSense record the operating point.
	OfferedBps   float64
	CarrierSense bool
	// Curves holds the per-link delivery-rate CDFs.
	Curves []DeliveryCurve
}

// deliveryFigure post-processes one operating point's shared trace under
// every selected scheme/variant combination, sharing one set of
// correctness masks across all of them.
func deliveryFigure(o Options, name string, offeredBps float64, carrierSense bool) DeliveryFigure {
	fig, err := deliveryFigureCtx(context.Background(), o, name, offeredBps, carrierSense)
	must(err)
	return fig
}

func deliveryFigureCtx(ctx context.Context, o Options, name string, offeredBps float64, carrierSense bool) (DeliveryFigure, error) {
	tr, err := o.TraceContext(ctx, offeredBps, carrierSense)
	if err != nil {
		return DeliveryFigure{}, err
	}
	pp := tr.Post(o.Workers)
	p := DefaultSchemeParams()

	fig := DeliveryFigure{Name: name, OfferedBps: offeredBps, CarrierSense: carrierSense}
	for _, scheme := range o.schemeList() {
		for variant := 0; variant < 2; variant++ {
			acc := pp.PerLinkDelivery(variant, scheme, p)
			rates := Rates(acc)
			label := fmt.Sprintf("%s, %s", scheme.Name(), StandardVariants()[variant].Name)
			fig.Curves = append(fig.Curves, DeliveryCurve{
				Label:  label,
				CDF:    stats.CDF(rates),
				Median: stats.MedianOrZero(rates),
			})
		}
	}
	return fig, nil
}

// Fig8 reproduces Figure 8: per-link equivalent frame delivery rate with
// carrier sense enabled at moderate offered load (3.5 Kbit/s/node).
func Fig8(o Options) DeliveryFigure {
	return deliveryFigure(o, "fig8", LoadModerate, true)
}

// Fig9 reproduces Figure 9: carrier sense disabled, moderate load.
func Fig9(o Options) DeliveryFigure {
	return deliveryFigure(o, "fig9", LoadModerate, false)
}

// Fig10 reproduces Figure 10: carrier sense disabled, high load
// (13.8 Kbit/s/node).
func Fig10(o Options) DeliveryFigure {
	return deliveryFigure(o, "fig10", LoadHigh, false)
}

// ThroughputFigure is the output of Fig. 11: per-link end-to-end
// throughput CDFs at medium load.
type ThroughputFigure struct {
	// OfferedBps records the operating point.
	OfferedBps float64
	// Curves holds one CDF per scheme/variant, in Kbit/s.
	Curves []DeliveryCurve
}

// Fig11 reproduces Figure 11: end-to-end per-link throughput at
// 6.9 Kbit/s/node offered load, carrier sense disabled, near channel
// saturation.
func Fig11(o Options) ThroughputFigure {
	fig, err := fig11Ctx(context.Background(), o)
	must(err)
	return fig
}

func fig11Ctx(ctx context.Context, o Options) (ThroughputFigure, error) {
	tr, err := o.TraceContext(ctx, LoadMedium, false)
	if err != nil {
		return ThroughputFigure{}, err
	}
	cfg := tr.Cfg
	pp := tr.Post(o.Workers)
	p := DefaultSchemeParams()

	fig := ThroughputFigure{OfferedBps: LoadMedium}
	for _, scheme := range o.schemeList() {
		for variant := 0; variant < 2; variant++ {
			acc := pp.PerLinkDelivery(variant, scheme, p)
			tputs := ThroughputsKbps(acc, cfg.DurationSec)
			label := fmt.Sprintf("%s, %s", scheme.Name(), StandardVariants()[variant].Name)
			fig.Curves = append(fig.Curves, DeliveryCurve{
				Label:  label,
				CDF:    stats.CDF(tputs),
				Median: stats.MedianOrZero(tputs),
			})
		}
	}
	return fig, nil
}

// ScatterPoint is one link in the Fig. 12 scatter plot.
type ScatterPoint struct {
	// Link identifies the (sender, receiver) pair.
	Link LinkKey
	// FragKbps is the fragmented-CRC throughput (x axis).
	FragKbps float64
	// YKbps is the compared scheme's throughput (y axis).
	YKbps float64
}

// ScatterSeries is one (scheme, load) series of Fig. 12.
type ScatterSeries struct {
	// Scheme is the y-axis scheme (PPR or packet CRC).
	Scheme schemes.RecoveryScheme
	// OfferedBps is the operating load.
	OfferedBps float64
	// Points holds one point per link.
	Points []ScatterPoint
}

// Fig12 reproduces Figure 12: per-link throughput of PPR (triangles) and
// packet CRC (circles) against fragmented CRC on the x axis, at all three
// offered loads, carrier sense disabled, postamble decoding enabled.
func Fig12(o Options) []ScatterSeries {
	series, err := fig12Ctx(context.Background(), o)
	must(err)
	return series
}

func fig12Ctx(ctx context.Context, o Options) ([]ScatterSeries, error) {
	p := DefaultSchemeParams()
	const variant = 1 // postamble decoding on
	var series []ScatterSeries
	for _, load := range Loads {
		tr, err := o.TraceContext(ctx, load, false)
		if err != nil {
			return nil, err
		}
		cfg := tr.Cfg
		pp := tr.Post(o.Workers)
		frag := pp.PerLinkDelivery(variant, schemes.FragCRC{}, p)
		// Deterministic link order: map iteration would shuffle the scatter
		// points run to run.
		links := make([]LinkKey, 0, len(frag))
		for k := range frag {
			links = append(links, k)
		}
		sort.Slice(links, func(a, b int) bool {
			if links[a].Src != links[b].Src {
				return links[a].Src < links[b].Src
			}
			return links[a].Rcv < links[b].Rcv
		})
		for _, scheme := range []schemes.RecoveryScheme{schemes.PacketCRC{}, schemes.PPR{}} {
			other := pp.PerLinkDelivery(variant, scheme, p)
			s := ScatterSeries{Scheme: scheme, OfferedBps: load}
			for _, k := range links {
				oa, exists := other[k]
				if !exists {
					continue
				}
				s.Points = append(s.Points, ScatterPoint{
					Link:     k,
					FragKbps: float64(frag[k].DeliveredBytes) * 8 / cfg.DurationSec / 1000,
					YKbps:    float64(oa.DeliveredBytes) * 8 / cfg.DurationSec / 1000,
				})
			}
			series = append(series, s)
		}
	}
	return series, nil
}

// Table2Row is one row of Table 2: fragmented-CRC aggregate throughput as
// a function of chunk count.
type Table2Row struct {
	// Chunks is the number of fragments per 1500-byte packet.
	Chunks int
	// FragBytes is the corresponding fragment size.
	FragBytes int
	// AggregateKbps is the network-wide delivered application throughput.
	AggregateKbps float64
}

// Table2 reproduces Table 2: the fragment-size sweep that picks 50-byte
// chunks. The paper runs it under load; we use the high-load, no-carrier-
// sense point where the trade-off is sharpest.
func Table2(o Options) []Table2Row {
	rows, err := table2Ctx(context.Background(), o)
	must(err)
	return rows
}

func table2Ctx(ctx context.Context, o Options) ([]Table2Row, error) {
	tr, err := o.TraceContext(ctx, LoadHigh, false)
	if err != nil {
		return nil, err
	}
	cfg := tr.Cfg
	pp := tr.Post(o.Workers)
	const variant = 1

	chunkCounts := []int{1, 10, 30, 100, 300}
	var rows []Table2Row
	for _, chunks := range chunkCounts {
		fragBytes := cfg.PacketBytes / chunks
		if fragBytes < 1 {
			fragBytes = 1
		}
		p := SchemeParams{FragBytes: fragBytes, Eta: 6}
		acc := pp.PerLinkDelivery(variant, schemes.FragCRC{}, p)
		total := 0
		for _, a := range acc {
			total += a.DeliveredBytes
		}
		rows = append(rows, Table2Row{
			Chunks:        chunks,
			FragBytes:     fragBytes,
			AggregateKbps: float64(total) * 8 / cfg.DurationSec / 1000,
		})
	}
	return rows, nil
}
