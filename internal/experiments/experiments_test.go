package experiments

import (
	"sync"
	"testing"

	"ppr/internal/phy"
	"ppr/internal/sim"
	"ppr/internal/stats"
)

func quickOpts() Options { return Options{Seed: 1, Quick: true} }

func decision(sym byte, hint float64) phy.Decision {
	return phy.Decision{Symbol: sym, Hint: hint}
}

func TestDeliveredAppBytesPacketCRC(t *testing.T) {
	truth := []byte{1, 2, 3, 4, 5, 6}
	mk := func(acquired bool, wrongIdx int) *sim.Outcome {
		o := &sim.Outcome{Acquired: acquired, TruthSyms: truth}
		for i, s := range truth {
			sym := s
			if i == wrongIdx {
				sym = (s + 1) % 16
			}
			o.Decisions = append(o.Decisions, decision(sym, 0))
		}
		return o
	}
	p := DefaultSchemeParams()
	if got := DeliveredAppBytes(mk(true, -1), SchemePacketCRC, p, 3); got != 3 {
		t.Errorf("clean packet delivered %d, want 3", got)
	}
	if got := DeliveredAppBytes(mk(true, 2), SchemePacketCRC, p, 3); got != 0 {
		t.Errorf("corrupt packet delivered %d, want 0", got)
	}
	if got := DeliveredAppBytes(mk(false, -1), SchemePacketCRC, p, 3); got != 0 {
		t.Errorf("unacquired packet delivered %d", got)
	}
}

func TestDeliveredAppBytesPPRCountsGoodCorrectOnly(t *testing.T) {
	truth := []byte{1, 2, 3, 4}
	o := &sim.Outcome{Acquired: true, TruthSyms: truth}
	// symbol 0: correct, low hint (counts)
	// symbol 1: correct, high hint (false alarm: dropped)
	// symbol 2: wrong, low hint (miss: delivered but wrong — not counted)
	// symbol 3: wrong, high hint (correctly dropped)
	o.Decisions = []phy.Decision{
		decision(1, 0), decision(2, 10), decision(9, 1), decision(7, 12),
	}
	p := DefaultSchemeParams()
	// one good-and-correct symbol = 4 bits = 0 bytes (integer floor)...
	// use 2 good-correct to check: adjust symbol 1's hint.
	o.Decisions[1] = decision(2, 0)
	if got := DeliveredAppBytes(o, SchemePPR, p, 2); got != 1 {
		t.Errorf("PPR delivered %d bytes, want 1 (2 good correct symbols)", got)
	}
}

func TestDeliveredAppBytesFragCRC(t *testing.T) {
	// 20-byte payload, 8-byte fragments: layout is [8 data ‖ 4 crc] ×
	// capacity... AppCapacity(20, 8): per frag 12; one full frag (8 app) +
	// rem 8 > 4 → +4 app = 12 app bytes.
	payloadBytes := 20
	p := SchemeParams{FragBytes: 8, Eta: 6}
	app := AppBytesPerPacket(SchemeFragCRC, p, payloadBytes)
	if app != 12 {
		t.Fatalf("app capacity %d, want 12", app)
	}
	truth := make([]byte, payloadBytes*2)
	clean := &sim.Outcome{Acquired: true, TruthSyms: truth}
	for range truth {
		clean.Decisions = append(clean.Decisions, decision(0, 0))
	}
	if got := DeliveredAppBytes(clean, SchemeFragCRC, p, payloadBytes); got != 12 {
		t.Errorf("clean frag delivered %d, want 12", got)
	}
	// Corrupt payload byte 2 (symbols 4,5): kills fragment 0 only.
	bad := &sim.Outcome{Acquired: true, TruthSyms: truth}
	for i := range truth {
		sym := byte(0)
		if i == 4 {
			sym = 5
		}
		bad.Decisions = append(bad.Decisions, decision(sym, 0))
	}
	if got := DeliveredAppBytes(bad, SchemeFragCRC, p, payloadBytes); got != 4 {
		t.Errorf("frag with one bad byte delivered %d, want 4", got)
	}
}

func TestFig8ShapesHold(t *testing.T) {
	fig := Fig8(quickOpts())
	if len(fig.Curves) != 6 {
		t.Fatalf("%d curves", len(fig.Curves))
	}
	m := medians(fig)
	// The paper's orderings at moderate load with carrier sense:
	// PPR ≥ fragmented CRC ≥ packet CRC (within each postamble setting).
	if !(m["PPR, postamble decoding"] >= m["Fragmented CRC, postamble decoding"]-0.05) {
		t.Errorf("PPR %v below fragmented CRC %v", m["PPR, postamble decoding"], m["Fragmented CRC, postamble decoding"])
	}
	if !(m["Fragmented CRC, postamble decoding"] >= m["Packet CRC, postamble decoding"]-0.05) {
		t.Errorf("frag %v below packet CRC %v", m["Fragmented CRC, postamble decoding"], m["Packet CRC, postamble decoding"])
	}
}

func TestFig10HighLoadSeparation(t *testing.T) {
	fig := Fig10(quickOpts())
	m := medians(fig)
	// Under heavy load without carrier sense, packet CRC collapses while
	// PPR stays high — the paper's headline separation.
	ppr := m["PPR, postamble decoding"]
	crc := m["Packet CRC, postamble decoding"]
	if ppr < crc {
		t.Errorf("PPR median %v below packet CRC %v at high load", ppr, crc)
	}
	if ppr < 0.2 {
		t.Errorf("PPR median %v collapsed at high load", ppr)
	}
	t.Logf("high-load medians: PPR %.3f, frag %.3f, packet CRC %.3f",
		ppr, m["Fragmented CRC, postamble decoding"], crc)
}

func TestPostambleImprovesDelivery(t *testing.T) {
	fig := Fig10(quickOpts())
	m := medians(fig)
	for _, scheme := range []string{"PPR", "Fragmented CRC"} {
		with := m[scheme+", postamble decoding"]
		without := m[scheme+", no postamble decoding"]
		if with < without-0.02 {
			t.Errorf("%s: postamble median %v below no-postamble %v", scheme, with, without)
		}
	}
}

func medians(fig DeliveryFigure) map[string]float64 {
	m := map[string]float64{}
	for _, c := range fig.Curves {
		m[c.Label] = c.Median
	}
	return m
}

func TestFig3HintSeparation(t *testing.T) {
	curves := Fig3(quickOpts())
	if len(curves) != 6 {
		t.Fatalf("%d curves", len(curves))
	}
	for _, c := range curves {
		if c.Count == 0 {
			continue
		}
		if c.Correct {
			// Paper: conditioned on a correct decoding, 96% of codewords
			// at distance ≤ 1. Require a strong majority.
			if p := stats.CDFAt(c.CDF, 1); p < 0.8 {
				t.Errorf("load %v: only %.2f of correct codewords at distance <= 1", c.OfferedBps, p)
			}
		} else {
			// Paper: barely 10% of incorrect codewords at distance ≤ 6.
			if p := stats.CDFAt(c.CDF, 6); p > 0.4 {
				t.Errorf("load %v: %.2f of incorrect codewords at distance <= 6 (want small)", c.OfferedBps, p)
			}
		}
	}
}

func TestFig14MissRunsShort(t *testing.T) {
	curves := Fig14(quickOpts())
	if len(curves) != 4 {
		t.Fatalf("%d curves", len(curves))
	}
	for _, c := range curves {
		if len(c.CCDF) == 0 {
			continue
		}
		// Majority of miss runs have length 1 (paper: ~30% at length
		// exactly 1 with fast-decaying tail; we require the CCDF to decay).
		p1 := 1 - stats.CDFAt(ccdfToCDF(c.CCDF), 1)
		_ = p1
		last := c.CCDF[len(c.CCDF)-1]
		if last.P > 0.5 {
			t.Errorf("eta %v: CCDF does not decay (tail %v)", c.Eta, last.P)
		}
	}
	// Miss rate grows with η.
	for i := 1; i < len(curves); i++ {
		if curves[i].MissRate < curves[i-1].MissRate-1e-9 {
			t.Errorf("miss rate not monotone in eta: %v then %v", curves[i-1].MissRate, curves[i].MissRate)
		}
	}
}

func ccdfToCDF(ccdf []stats.CDFPoint) []stats.CDFPoint {
	out := make([]stats.CDFPoint, len(ccdf))
	for i, p := range ccdf {
		out[i] = stats.CDFPoint{X: p.X, P: 1 - p.P}
	}
	return out
}

func TestFig15FalseAlarmLow(t *testing.T) {
	curves := Fig15(quickOpts())
	for _, c := range curves {
		// Paper: ~5 in 1000 at η=6. Require it stays well under 5%.
		if c.FalseAlarmAtEta6 > 0.05 {
			t.Errorf("load %v: false alarm rate %v at eta 6", c.OfferedBps, c.FalseAlarmAtEta6)
		}
	}
}

func TestFig13CollisionAnatomy(t *testing.T) {
	res := Fig13(quickOpts())
	if len(res.Packet1) == 0 || len(res.Packet2) == 0 {
		t.Fatal("empty timelines")
	}
	// Packet 2 (strong) decodes mostly correctly with low hints.
	correct2 := 0
	for _, pt := range res.Packet2 {
		if pt.Correct {
			correct2++
		}
	}
	if frac := float64(correct2) / float64(len(res.Packet2)); frac < 0.8 {
		t.Errorf("strong packet only %.2f correct", frac)
	}
	// Packet 1: tail correct (after the collider ends), early body wrong.
	n := len(res.Packet1)
	tailCorrect, headWrong := 0, 0
	for _, pt := range res.Packet1[n*3/4:] {
		if pt.Correct {
			tailCorrect++
		}
	}
	for _, pt := range res.Packet1[10:60] {
		if !pt.Correct {
			headWrong++
		}
	}
	if frac := float64(tailCorrect) / float64(n-n*3/4); frac < 0.8 {
		t.Errorf("packet 1 tail only %.2f correct", frac)
	}
	if headWrong < 25 {
		t.Errorf("packet 1 collision region only %d/50 wrong", headWrong)
	}
	// The hints must expose the damage: incorrect codewords of packet 1
	// carry much larger Hamming distances than correct ones (the paper's
	// caption: "Hamming distance indicates the correct parts of these
	// packets to higher layers").
	var hintsCorrect, hintsWrong []float64
	for _, pt := range res.Packet1 {
		if !pt.Decoded {
			continue
		}
		if pt.Correct {
			hintsCorrect = append(hintsCorrect, pt.Hint)
		} else {
			hintsWrong = append(hintsWrong, pt.Hint)
		}
	}
	if len(hintsWrong) > 0 && len(hintsCorrect) > 0 {
		if stats.Mean(hintsWrong) < stats.Mean(hintsCorrect)+4 {
			t.Errorf("hints do not separate: wrong mean %.2f vs correct mean %.2f",
				stats.Mean(hintsWrong), stats.Mean(hintsCorrect))
		}
	}
	// Packet 1 must be recoverable via its postamble (preamble destroyed).
	foundPost := false
	for _, via := range res.P1AcquiredVia {
		if via == "postamble" {
			foundPost = true
		}
	}
	if !foundPost {
		t.Errorf("packet 1 not acquired via postamble: %v", res.P1AcquiredVia)
	}
}

func TestFig16RetxSavings(t *testing.T) {
	res := Fig16(quickOpts())
	if res.Failures > res.Transfers/4 {
		t.Errorf("%d of %d transfers failed", res.Failures, res.Transfers)
	}
	if len(res.RetxSizes) == 0 {
		t.Fatal("no retransmissions recorded on a bursty link")
	}
	// Paper: median retransmission ≈ half the 250-byte packet. Require
	// clearly below a full packet.
	if res.MedianRetxBytes >= float64(res.PacketBytes) {
		t.Errorf("median retransmission %v not below packet size %d", res.MedianRetxBytes, res.PacketBytes)
	}
	t.Logf("median retx %v bytes of %d-byte packets over %d retx",
		res.MedianRetxBytes, res.PacketBytes, len(res.RetxSizes))
}

func TestTable2TradeoffShape(t *testing.T) {
	rows := Table2(quickOpts())
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	// The paper's Table 2 peaks at an interior chunk count (30): both
	// extremes must be below the maximum.
	best, bestIdx := rows[0].AggregateKbps, 0
	for i, r := range rows {
		if r.AggregateKbps > best {
			best, bestIdx = r.AggregateKbps, i
		}
	}
	if bestIdx == 0 || bestIdx == len(rows)-1 {
		t.Logf("rows: %+v", rows)
		t.Errorf("optimal chunk count at extreme index %d; paper peaks interior", bestIdx)
	}
}

func TestSummaryRatios(t *testing.T) {
	rows := Summary(quickOpts())
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Name] = r.Value
	}
	if v := byName["PPR vs packet CRC median throughput, high load"]; v < 1.5 {
		t.Errorf("high-load PPR/packetCRC ratio %v; paper reports ~7x", v)
	}
	if v := byName["PP-ARQ median retransmission fraction of packet size"]; v <= 0 || v >= 1 {
		t.Errorf("retx fraction %v out of (0,1)", v)
	}
}

func TestFig12ScatterAboveDiagonal(t *testing.T) {
	series := Fig12(quickOpts())
	if len(series) != 6 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if s.Scheme != SchemePPR {
			continue
		}
		above, total := 0, 0
		for _, pt := range s.Points {
			if pt.FragKbps == 0 && pt.YKbps == 0 {
				continue
			}
			total++
			if pt.YKbps >= pt.FragKbps {
				above++
			}
		}
		if total == 0 {
			continue
		}
		if frac := float64(above) / float64(total); frac < 0.6 {
			t.Errorf("load %v: PPR above fragmented CRC on only %.2f of links", s.OfferedBps, frac)
		}
	}
}

func TestFig11ThroughputOrdering(t *testing.T) {
	fig := Fig11(quickOpts())
	m := map[string]float64{}
	for _, c := range fig.Curves {
		m[c.Label] = c.Median
	}
	if m["PPR, postamble decoding"] < m["Packet CRC, postamble decoding"] {
		t.Errorf("PPR throughput median %v below packet CRC %v",
			m["PPR, postamble decoding"], m["Packet CRC, postamble decoding"])
	}
}

func TestDiversityCombiningNeverWorse(t *testing.T) {
	res := Diversity(quickOpts())
	if res.Packets == 0 {
		t.Fatal("no packets heard")
	}
	if res.CombinedRate < res.SingleRate-1e-9 {
		t.Errorf("combining delivered %.3f, below best-single %.3f",
			res.CombinedRate, res.SingleRate)
	}
	if res.MultiView == 0 {
		t.Error("no packet was heard by multiple receivers at high load")
	}
	t.Logf("diversity: %d packets (%d multi-view), single %.3f -> combined %.3f",
		res.Packets, res.MultiView, res.SingleRate, res.CombinedRate)
}

func TestLinkAccumRate(t *testing.T) {
	a := LinkAccum{DeliveredBytes: 750, SentBytes: 1500, Packets: 1}
	if a.Rate() != 0.5 {
		t.Errorf("rate %v", a.Rate())
	}
	if (LinkAccum{}).Rate() != 0 {
		t.Error("empty accumulator rate should be 0")
	}
}

func TestRatesAndThroughputs(t *testing.T) {
	acc := map[LinkKey]LinkAccum{
		{0, 0}: {DeliveredBytes: 1000, SentBytes: 2000},
		{1, 0}: {DeliveredBytes: 500, SentBytes: 2000},
	}
	rates := Rates(acc)
	if len(rates) != 2 {
		t.Fatal("rate count")
	}
	tp := ThroughputsKbps(acc, 2.0)
	// 1000 bytes over 2 s = 4000 bits / 2 s = 2 Kbit/s.
	found := false
	for _, v := range tp {
		if v == 2.0 {
			found = true
		}
	}
	if !found {
		t.Errorf("throughputs %v missing 2.0", tp)
	}
}

func TestAppBytesPerPacket(t *testing.T) {
	p := DefaultSchemeParams()
	if AppBytesPerPacket(SchemePacketCRC, p, 1500) != 1500 {
		t.Error("packet CRC capacity")
	}
	if AppBytesPerPacket(SchemePPR, p, 1500) != 1500 {
		t.Error("PPR capacity")
	}
	if got := AppBytesPerPacket(SchemeFragCRC, p, 1500); got >= 1500 || got < 1300 {
		t.Errorf("frag capacity %d", got)
	}
}

func TestSchemeStrings(t *testing.T) {
	if SchemePacketCRC.String() != "Packet CRC" || SchemeFragCRC.String() != "Fragmented CRC" || SchemePPR.String() != "PPR" {
		t.Error("scheme names")
	}
}

func TestLoadName(t *testing.T) {
	if LoadName(3500) != "3.5 Kbits/s/node" {
		t.Errorf("got %q", LoadName(3500))
	}
}

func TestOptionsScaling(t *testing.T) {
	q := Options{Quick: true}
	f := Options{}
	if q.PacketBytes() >= f.PacketBytes() {
		t.Error("quick packets not smaller")
	}
	if q.DurationSec() >= f.DurationSec() {
		t.Error("quick duration not shorter")
	}
}

func TestTraceCacheHits(t *testing.T) {
	c := NewTraceCache()
	o := quickOpts()
	tr1 := c.Get(o, LoadModerate, true)
	tr2 := c.Get(o, LoadModerate, true)
	if tr1 != tr2 {
		t.Error("cache miss for identical operating point")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	// A different operating point is a distinct trace.
	tr3 := c.Get(o, LoadModerate, false)
	if tr3 == tr1 {
		t.Error("distinct operating points shared a trace")
	}
	// A different scenario is a distinct trace too.
	o2 := o
	o2.Scenario = "periodic-jammer"
	if c.Get(o2, LoadModerate, true) == tr1 {
		t.Error("distinct scenarios shared a trace")
	}
	c.Reset()
	if hits, misses := c.Stats(); hits != 0 || misses != 0 {
		t.Errorf("post-reset stats hits=%d misses=%d", hits, misses)
	}
}

func TestTraceCacheConcurrentSingleRun(t *testing.T) {
	c := NewTraceCache()
	o := quickOpts()
	const callers = 8
	traces := make([]*Trace, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			traces[i] = c.Get(o, LoadModerate, true)
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if traces[i] != traces[0] {
			t.Fatal("concurrent callers got different traces")
		}
	}
	if _, misses := c.Stats(); misses != 1 {
		t.Errorf("misses=%d, want exactly 1 simulation", misses)
	}
}

func TestFiguresShareTraces(t *testing.T) {
	// Fig10, Fig14, Table2 and Diversity all post-process the high-load,
	// no-carrier-sense trace; regenerating all four must simulate it once.
	SharedTraces.Reset()
	o := Options{Seed: 77, Quick: true}
	Fig10(o)
	h0, m0 := SharedTraces.Stats()
	Fig14(o)
	Table2(o)
	Diversity(o)
	h1, m1 := SharedTraces.Stats()
	if m1 != m0 {
		t.Errorf("extra simulations: misses %d -> %d", m0, m1)
	}
	if h1 != h0+3 {
		t.Errorf("hits %d -> %d, want +3", h0, h1)
	}
}
