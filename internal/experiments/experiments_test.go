package experiments

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"ppr/internal/schemes"
	"ppr/internal/stats"
)

func quickOpts() Options { return Options{Seed: 1, Quick: true} }

func TestFig8ShapesHold(t *testing.T) {
	fig := Fig8(quickOpts())
	if want := 2 * len(schemes.All()); len(fig.Curves) != want {
		t.Fatalf("%d curves, want %d", len(fig.Curves), want)
	}
	m := medians(fig)
	// The paper's orderings at moderate load with carrier sense:
	// PPR ≥ fragmented CRC ≥ packet CRC (within each postamble setting).
	if !(m["PPR, postamble decoding"] >= m["Fragmented CRC, postamble decoding"]-0.05) {
		t.Errorf("PPR %v below fragmented CRC %v", m["PPR, postamble decoding"], m["Fragmented CRC, postamble decoding"])
	}
	if !(m["Fragmented CRC, postamble decoding"] >= m["Packet CRC, postamble decoding"]-0.05) {
		t.Errorf("frag %v below packet CRC %v", m["Fragmented CRC, postamble decoding"], m["Packet CRC, postamble decoding"])
	}
}

func TestFig10HighLoadSeparation(t *testing.T) {
	fig := Fig10(quickOpts())
	m := medians(fig)
	// Under heavy load without carrier sense, packet CRC collapses while
	// PPR stays high — the paper's headline separation.
	ppr := m["PPR, postamble decoding"]
	crc := m["Packet CRC, postamble decoding"]
	if ppr < crc {
		t.Errorf("PPR median %v below packet CRC %v at high load", ppr, crc)
	}
	if ppr < 0.2 {
		t.Errorf("PPR median %v collapsed at high load", ppr)
	}
	t.Logf("high-load medians: PPR %.3f, frag %.3f, packet CRC %.3f",
		ppr, m["Fragmented CRC, postamble decoding"], crc)
}

func TestPostambleImprovesDelivery(t *testing.T) {
	fig := Fig10(quickOpts())
	m := medians(fig)
	for _, scheme := range []string{"PPR", "Fragmented CRC"} {
		with := m[scheme+", postamble decoding"]
		without := m[scheme+", no postamble decoding"]
		if with < without-0.02 {
			t.Errorf("%s: postamble median %v below no-postamble %v", scheme, with, without)
		}
	}
}

func medians(fig DeliveryFigure) map[string]float64 {
	m := map[string]float64{}
	for _, c := range fig.Curves {
		m[c.Label] = c.Median
	}
	return m
}

func TestFig3HintSeparation(t *testing.T) {
	curves := Fig3(quickOpts())
	if len(curves) != 6 {
		t.Fatalf("%d curves", len(curves))
	}
	for _, c := range curves {
		if c.Count == 0 {
			continue
		}
		if c.Correct {
			// Paper: conditioned on a correct decoding, 96% of codewords
			// at distance ≤ 1. Require a strong majority.
			if p := stats.CDFAt(c.CDF, 1); p < 0.8 {
				t.Errorf("load %v: only %.2f of correct codewords at distance <= 1", c.OfferedBps, p)
			}
		} else {
			// Paper: barely 10% of incorrect codewords at distance ≤ 6.
			if p := stats.CDFAt(c.CDF, 6); p > 0.4 {
				t.Errorf("load %v: %.2f of incorrect codewords at distance <= 6 (want small)", c.OfferedBps, p)
			}
		}
	}
}

func TestFig14MissRunsShort(t *testing.T) {
	curves := Fig14(quickOpts())
	if len(curves) != 4 {
		t.Fatalf("%d curves", len(curves))
	}
	for _, c := range curves {
		if len(c.CCDF) == 0 {
			continue
		}
		// Majority of miss runs have length 1 (paper: ~30% at length
		// exactly 1 with fast-decaying tail; we require the CCDF to decay).
		p1 := 1 - stats.CDFAt(ccdfToCDF(c.CCDF), 1)
		_ = p1
		last := c.CCDF[len(c.CCDF)-1]
		if last.P > 0.5 {
			t.Errorf("eta %v: CCDF does not decay (tail %v)", c.Eta, last.P)
		}
	}
	// Miss rate grows with η.
	for i := 1; i < len(curves); i++ {
		if curves[i].MissRate < curves[i-1].MissRate-1e-9 {
			t.Errorf("miss rate not monotone in eta: %v then %v", curves[i-1].MissRate, curves[i].MissRate)
		}
	}
}

func ccdfToCDF(ccdf []stats.CDFPoint) []stats.CDFPoint {
	out := make([]stats.CDFPoint, len(ccdf))
	for i, p := range ccdf {
		out[i] = stats.CDFPoint{X: p.X, P: 1 - p.P}
	}
	return out
}

func TestFig15FalseAlarmLow(t *testing.T) {
	curves := Fig15(quickOpts())
	for _, c := range curves {
		// Paper: ~5 in 1000 at η=6. Require it stays well under 5%.
		if c.FalseAlarmAtEta6 > 0.05 {
			t.Errorf("load %v: false alarm rate %v at eta 6", c.OfferedBps, c.FalseAlarmAtEta6)
		}
	}
}

func TestFig13CollisionAnatomy(t *testing.T) {
	res := Fig13(quickOpts())
	if len(res.Packet1) == 0 || len(res.Packet2) == 0 {
		t.Fatal("empty timelines")
	}
	// Packet 2 (strong) decodes mostly correctly with low hints.
	correct2 := 0
	for _, pt := range res.Packet2 {
		if pt.Correct {
			correct2++
		}
	}
	if frac := float64(correct2) / float64(len(res.Packet2)); frac < 0.8 {
		t.Errorf("strong packet only %.2f correct", frac)
	}
	// Packet 1: tail correct (after the collider ends), early body wrong.
	n := len(res.Packet1)
	tailCorrect, headWrong := 0, 0
	for _, pt := range res.Packet1[n*3/4:] {
		if pt.Correct {
			tailCorrect++
		}
	}
	for _, pt := range res.Packet1[10:60] {
		if !pt.Correct {
			headWrong++
		}
	}
	if frac := float64(tailCorrect) / float64(n-n*3/4); frac < 0.8 {
		t.Errorf("packet 1 tail only %.2f correct", frac)
	}
	if headWrong < 25 {
		t.Errorf("packet 1 collision region only %d/50 wrong", headWrong)
	}
	// The hints must expose the damage: incorrect codewords of packet 1
	// carry much larger Hamming distances than correct ones (the paper's
	// caption: "Hamming distance indicates the correct parts of these
	// packets to higher layers").
	var hintsCorrect, hintsWrong []float64
	for _, pt := range res.Packet1 {
		if !pt.Decoded {
			continue
		}
		if pt.Correct {
			hintsCorrect = append(hintsCorrect, pt.Hint)
		} else {
			hintsWrong = append(hintsWrong, pt.Hint)
		}
	}
	if len(hintsWrong) > 0 && len(hintsCorrect) > 0 {
		if stats.Mean(hintsWrong) < stats.Mean(hintsCorrect)+4 {
			t.Errorf("hints do not separate: wrong mean %.2f vs correct mean %.2f",
				stats.Mean(hintsWrong), stats.Mean(hintsCorrect))
		}
	}
	// Packet 1 must be recoverable via its postamble (preamble destroyed).
	foundPost := false
	for _, via := range res.P1AcquiredVia {
		if via == "postamble" {
			foundPost = true
		}
	}
	if !foundPost {
		t.Errorf("packet 1 not acquired via postamble: %v", res.P1AcquiredVia)
	}
}

func TestFig16RetxSavings(t *testing.T) {
	res := Fig16(quickOpts())
	if res.Failures > res.Transfers/4 {
		t.Errorf("%d of %d transfers failed", res.Failures, res.Transfers)
	}
	if len(res.RetxSizes) == 0 {
		t.Fatal("no retransmissions recorded on a bursty link")
	}
	// Paper: median retransmission ≈ half the 250-byte packet. Require
	// clearly below a full packet.
	if res.MedianRetxBytes >= float64(res.PacketBytes) {
		t.Errorf("median retransmission %v not below packet size %d", res.MedianRetxBytes, res.PacketBytes)
	}
	t.Logf("median retx %v bytes of %d-byte packets over %d retx",
		res.MedianRetxBytes, res.PacketBytes, len(res.RetxSizes))
}

func TestTable2TradeoffShape(t *testing.T) {
	rows := Table2(quickOpts())
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	// The paper's Table 2 peaks at an interior chunk count (30): both
	// extremes must be below the maximum.
	best, bestIdx := rows[0].AggregateKbps, 0
	for i, r := range rows {
		if r.AggregateKbps > best {
			best, bestIdx = r.AggregateKbps, i
		}
	}
	if bestIdx == 0 || bestIdx == len(rows)-1 {
		t.Logf("rows: %+v", rows)
		t.Errorf("optimal chunk count at extreme index %d; paper peaks interior", bestIdx)
	}
}

func TestSummaryRatios(t *testing.T) {
	rows := Summary(quickOpts())
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Name] = r.Value
	}
	if v := byName["PPR vs packet CRC median throughput, high load"]; v < 1.5 {
		t.Errorf("high-load PPR/packetCRC ratio %v; paper reports ~7x", v)
	}
	if v := byName["PP-ARQ median retransmission fraction of packet size"]; v <= 0 || v >= 1 {
		t.Errorf("retx fraction %v out of (0,1)", v)
	}
}

func TestFig12ScatterAboveDiagonal(t *testing.T) {
	series := Fig12(quickOpts())
	if len(series) != 6 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if s.Scheme != (schemes.PPR{}) {
			continue
		}
		above, total := 0, 0
		for _, pt := range s.Points {
			if pt.FragKbps == 0 && pt.YKbps == 0 {
				continue
			}
			total++
			if pt.YKbps >= pt.FragKbps {
				above++
			}
		}
		if total == 0 {
			continue
		}
		if frac := float64(above) / float64(total); frac < 0.6 {
			t.Errorf("load %v: PPR above fragmented CRC on only %.2f of links", s.OfferedBps, frac)
		}
	}
}

func TestFig11ThroughputOrdering(t *testing.T) {
	fig := Fig11(quickOpts())
	m := map[string]float64{}
	for _, c := range fig.Curves {
		m[c.Label] = c.Median
	}
	if m["PPR, postamble decoding"] < m["Packet CRC, postamble decoding"] {
		t.Errorf("PPR throughput median %v below packet CRC %v",
			m["PPR, postamble decoding"], m["Packet CRC, postamble decoding"])
	}
}

func TestDiversityCombiningNeverWorse(t *testing.T) {
	res := Diversity(quickOpts())
	if res.Packets == 0 {
		t.Fatal("no packets heard")
	}
	if res.CombinedRate < res.SingleRate-1e-9 {
		t.Errorf("combining delivered %.3f, below best-single %.3f",
			res.CombinedRate, res.SingleRate)
	}
	if res.MultiView == 0 {
		t.Error("no packet was heard by multiple receivers at high load")
	}
	t.Logf("diversity: %d packets (%d multi-view), single %.3f -> combined %.3f",
		res.Packets, res.MultiView, res.SingleRate, res.CombinedRate)
}

func TestLinkAccumRate(t *testing.T) {
	a := LinkAccum{DeliveredBytes: 750, SentBytes: 1500, Packets: 1}
	if a.Rate() != 0.5 {
		t.Errorf("rate %v", a.Rate())
	}
	if (LinkAccum{}).Rate() != 0 {
		t.Error("empty accumulator rate should be 0")
	}
}

func TestRatesAndThroughputs(t *testing.T) {
	acc := map[LinkKey]LinkAccum{
		{0, 0}: {DeliveredBytes: 1000, SentBytes: 2000},
		{1, 0}: {DeliveredBytes: 500, SentBytes: 2000},
	}
	rates := Rates(acc)
	if len(rates) != 2 {
		t.Fatal("rate count")
	}
	tp := ThroughputsKbps(acc, 2.0)
	// 1000 bytes over 2 s = 4000 bits / 2 s = 2 Kbit/s.
	found := false
	for _, v := range tp {
		if v == 2.0 {
			found = true
		}
	}
	if !found {
		t.Errorf("throughputs %v missing 2.0", tp)
	}
}

func TestPerLinkDeliveryWorkerInvariant(t *testing.T) {
	// The parallel post-processing fan-out must not change results: every
	// scheme's per-link accumulators are identical for any worker count.
	o := quickOpts()
	tr := o.Trace(LoadHigh, false)
	p := DefaultSchemeParams()
	seq := NewPost(tr.Outs, tr.Cfg.PacketBytes, 1)
	par := NewPost(tr.Outs, tr.Cfg.PacketBytes, 8)
	for _, s := range schemes.All() {
		for variant := 0; variant < 2; variant++ {
			a := seq.PerLinkDelivery(variant, s, p)
			b := par.PerLinkDelivery(variant, s, p)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s variant %d: sequential and parallel post-processing disagree", s.Name(), variant)
			}
		}
	}
}

func TestFiguresCarryFECCurves(t *testing.T) {
	// The orphaned fec/interleave packages are wired into the figures: the
	// delivery figures carry a curve per registered scheme, including the
	// block-FEC family, and FEC delivers something but less than PPR
	// (rate-1/2 coding halves capacity).
	fig := Fig8(quickOpts())
	m := medians(fig)
	for _, label := range []string{
		"FEC, postamble decoding",
		"FEC+interleaving, postamble decoding",
		"PPR+FEC, postamble decoding",
	} {
		if _, ok := m[label]; !ok {
			t.Errorf("figure missing curve %q", label)
		}
	}
	if m["FEC, postamble decoding"] <= 0 {
		t.Error("FEC delivered nothing at moderate load with carrier sense")
	}
	// Delivery *rate* normalizes by each scheme's own capacity, so repaired
	// FEC can match PPR there — but the rate-1/2 code's halved capacity must
	// show up in *throughput*: Fig. 11's FEC median stays below PPR's.
	tput := Fig11(quickOpts())
	tm := map[string]float64{}
	for _, c := range tput.Curves {
		tm[c.Label] = c.Median
	}
	if tm["FEC, postamble decoding"] >= tm["PPR, postamble decoding"] {
		t.Errorf("FEC throughput median %v not below PPR %v despite halved capacity",
			tm["FEC, postamble decoding"], tm["PPR, postamble decoding"])
	}
}

func TestOptionsSchemeSelection(t *testing.T) {
	o := quickOpts()
	o.Schemes = []string{"ppr"}
	fig := Fig8(o)
	if len(fig.Curves) != 2 {
		t.Fatalf("selected 1 scheme, got %d curves", len(fig.Curves))
	}
	for _, c := range fig.Curves {
		if c.Label != "PPR, no postamble decoding" && c.Label != "PPR, postamble decoding" {
			t.Errorf("unexpected curve %q", c.Label)
		}
	}
}

func TestLoadName(t *testing.T) {
	if LoadName(3500) != "3.5 Kbits/s/node" {
		t.Errorf("got %q", LoadName(3500))
	}
}

func TestOptionsScaling(t *testing.T) {
	q := Options{Quick: true}
	f := Options{}
	if q.PacketBytes() >= f.PacketBytes() {
		t.Error("quick packets not smaller")
	}
	if q.DurationSec() >= f.DurationSec() {
		t.Error("quick duration not shorter")
	}
}

func TestTraceCacheHits(t *testing.T) {
	c := NewTraceCache()
	o := quickOpts()
	tr1 := c.Get(o, LoadModerate, true)
	tr2 := c.Get(o, LoadModerate, true)
	if tr1 != tr2 {
		t.Error("cache miss for identical operating point")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	// A different operating point is a distinct trace.
	tr3 := c.Get(o, LoadModerate, false)
	if tr3 == tr1 {
		t.Error("distinct operating points shared a trace")
	}
	// A different scenario is a distinct trace too.
	o2 := o
	o2.Scenario = "periodic-jammer"
	if c.Get(o2, LoadModerate, true) == tr1 {
		t.Error("distinct scenarios shared a trace")
	}
	c.Reset()
	if hits, misses := c.Stats(); hits != 0 || misses != 0 {
		t.Errorf("post-reset stats hits=%d misses=%d", hits, misses)
	}
}

func TestTraceCacheCancelledFillNotPoisoned(t *testing.T) {
	c := NewTraceCache()
	o := quickOpts()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.GetContext(ctx, o, LoadModerate, true); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fill: err = %v, want context.Canceled", err)
	}
	// The aborted fill must not poison the entry: a later Get re-simulates
	// and succeeds...
	tr, err := c.GetContext(context.Background(), o, LoadModerate, true)
	if err != nil || tr == nil || len(tr.Outs) == 0 {
		t.Fatalf("retry after cancelled fill: %v", err)
	}
	// ...and its result is cached for everyone after it.
	if tr2 := c.Get(o, LoadModerate, true); tr2 != tr {
		t.Error("successful retry was not re-inserted into the cache")
	}
}

func TestTraceCacheConcurrentSingleRun(t *testing.T) {
	c := NewTraceCache()
	o := quickOpts()
	const callers = 8
	traces := make([]*Trace, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			traces[i] = c.Get(o, LoadModerate, true)
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if traces[i] != traces[0] {
			t.Fatal("concurrent callers got different traces")
		}
	}
	if _, misses := c.Stats(); misses != 1 {
		t.Errorf("misses=%d, want exactly 1 simulation", misses)
	}
}

func TestFiguresShareTraces(t *testing.T) {
	// Fig10, Fig14, Table2 and Diversity all post-process the high-load,
	// no-carrier-sense trace; regenerating all four must simulate it once.
	SharedTraces.Reset()
	o := Options{Seed: 77, Quick: true}
	Fig10(o)
	h0, m0 := SharedTraces.Stats()
	Fig14(o)
	Table2(o)
	Diversity(o)
	h1, m1 := SharedTraces.Stats()
	if m1 != m0 {
		t.Errorf("extra simulations: misses %d -> %d", m0, m1)
	}
	if h1 != h0+3 {
		t.Errorf("hits %d -> %d, want +3", h0, h1)
	}
}
