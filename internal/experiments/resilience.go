package experiments

import (
	"context"
	"fmt"

	"ppr/internal/jam"
	"ppr/internal/netsim"
	"ppr/internal/radio"
	"ppr/internal/scenario"
	"ppr/internal/topo"
)

// The resilience experiment sweeps link layer × jammer strategy × jammer
// power over a fixed adversarial deployment and reports each cell's
// delivered throughput, jam exposure and airtime accounting. It is the
// result surface past the paper's evaluation: the paper argues partial
// packets matter most when the channel is hostile; this measures it, layer
// by layer, against the composable adversaries of internal/jam — including
// the SoftPHY-driven countermeasure layers hopping, falling back and
// hardening their feedback under fire.

// resiliencePanel is the default adversary panel: the two legacy timelines
// re-expressed as registered strategies, plus the three adaptive
// strategies the tentpole adds (preamble striker, time × frequency sweep,
// timing learner).
var resiliencePanel = []string{"periodic", "reactive", "preamble", "sweep", "learner"}

// resiliencePowers are the jammer link-budget offsets swept, in dB: the
// baseline adversary and one 9 dB hotter — enough to swing the jam-to-
// signal ratio at the victim receivers from -4 dB (partial corruption,
// PP-ARQ's regime) to +5 dB (burst-local annihilation).
var resiliencePowers = []float64{0, 9}

// resilienceChannels is the orthogonal channel count — >1 so the sweep
// strategy rakes frequency and the hop countermeasure has somewhere to go.
const resilienceChannels = 3

// resilienceBurstBytes sizes each jam burst (~18k chips of air).
const resilienceBurstBytes = 250

// resilienceLayers returns the compared link layers: the paper trio plus
// the three countermeasure layers (auxiliary registrations — they resolve
// by name but stay out of netsim.LinkLayers).
func resilienceLayers() []string {
	return append(netsim.LinkLayers(), "pp-arq-hop", "pp-arq-fallback", "pp-arq-chunk")
}

// jammerPanel resolves the configured adversary selection. It panics on an
// unknown name; CLI entry points validate against jam.Names() first.
func (o Options) jammerPanel() []string {
	if len(o.Jammers) == 0 {
		return resiliencePanel
	}
	for _, name := range o.Jammers {
		if _, err := jam.ByName(name); err != nil {
			panic(err)
		}
	}
	return o.Jammers
}

// resilienceDuration is the simulated airtime per cell.
func resilienceDuration(o Options) float64 {
	if o.Quick {
		return 0.3
	}
	return 1.5
}

// ResilienceTopology pins the experiment's adversarial geometry: two
// victim flows far enough apart to ignore each other, one jammer audible
// to all four victims. The link budgets are pinned, not path-loss derived,
// so the operating point is exact:
//
//   - each victim link runs at -60 dBm — comfortably decodable;
//   - the jammer reaches each victim receiver at -64 dBm, 4 dB under the
//     signal, so a jam burst corrupts symbols without necessarily killing
//     acquisition (the partial-packet regime); PowerDeltaDBm shifts this;
//   - the jammer hears each victim sender at -84 dBm — above the carrier-
//     sense threshold, so reactive/learning strategies observe the victims'
//     transmissions, while the victims' own CSMA only weakly couples to
//     the jammer.
func ResilienceTopology(o Options) (*topo.Topology, error) {
	b := topo.NewBuilder(radio.DefaultParams(), o.Seed^0xad7e)
	b.Node("jam", 0, 0)
	b.Node("s1", 1500, 0)
	b.Node("r1", 1520, 0)
	b.Node("s2", -1500, 0)
	b.Node("r2", -1520, 0)
	b.LinkDBm("s1", "r1", -60)
	b.LinkDBm("s2", "r2", -60)
	for _, v := range []string{"s1", "s2"} {
		b.LinkDBm("jam", v, -84)
	}
	for _, v := range []string{"r1", "r2"} {
		b.LinkDBm("jam", v, -64)
	}
	return b.Build()
}

// ResilienceCell is one (layer, strategy, power) operating point.
type ResilienceCell struct {
	// Layer, Strategy and PowerDeltaDBm name the cell.
	Layer, Strategy string
	PowerDeltaDBm   float64
	// AggregateKbps is the delivered application throughput summed over
	// both victim flows.
	AggregateKbps float64
	// JamFrames and JamChips measure the adversary's output: bursts fired
	// and chips of air occupied.
	JamFrames int
	JamChips  int64
	// Air sums the victims' byte accounting; Transfers and Failures their
	// transfer counts.
	Air                 netsim.LinkStats
	Transfers, Failures int
}

// ResilienceResult is the full sweep.
type ResilienceResult struct {
	// Layers, Strategies and Powers are the swept axes, in presentation
	// order; Cells is their cross product, layer-major then strategy-major.
	Layers, Strategies []string
	Powers             []float64
	Cells              []ResilienceCell
	// PacketBytes, DurationSec and NumChannels record the operating point.
	PacketBytes int
	DurationSec float64
	NumChannels int
}

// Cell returns the named cell.
func (r ResilienceResult) Cell(layer, strategy string, power float64) (ResilienceCell, bool) {
	for _, c := range r.Cells {
		if c.Layer == layer && c.Strategy == strategy && c.PowerDeltaDBm == power {
			return c, true
		}
	}
	return ResilienceCell{}, false
}

// Ratio returns layer a's aggregate throughput over layer b's for one
// (strategy, power) column, 0 when b delivered nothing.
func (r ResilienceResult) Ratio(a, b, strategy string, power float64) float64 {
	ca, oka := r.Cell(a, strategy, power)
	cb, okb := r.Cell(b, strategy, power)
	if !oka || !okb || cb.AggregateKbps == 0 {
		return 0
	}
	return ca.AggregateKbps / cb.AggregateKbps
}

// Resilience runs the jamming-resilience sweep: every link layer (paper
// trio + countermeasures) against every adversary of the panel at every
// power. Each (strategy, power) column keeps one seed across layers, so
// the comparison isolates the protocols; cells fan out over the bounded
// worker pool and results are bit-identical for every worker count.
func Resilience(o Options) ResilienceResult {
	res, err := resilienceCtx(context.Background(), o)
	must(err)
	return res
}

func resilienceCtx(ctx context.Context, o Options) (ResilienceResult, error) {
	if err := ctx.Err(); err != nil {
		return ResilienceResult{}, err
	}
	tp, err := ResilienceTopology(o)
	if err != nil {
		return ResilienceResult{}, fmt.Errorf("resilience: %w", err)
	}
	layers := resilienceLayers()
	panel := o.jammerPanel()
	res := ResilienceResult{
		Layers:      layers,
		Strategies:  panel,
		Powers:      resiliencePowers,
		PacketBytes: o.PacketBytes(),
		DurationSec: resilienceDuration(o),
		NumChannels: resilienceChannels,
	}

	type cell struct {
		layer, strat, power int
	}
	var cells []cell
	for li := range layers {
		for si := range panel {
			for pi := range resiliencePowers {
				cells = append(cells, cell{layer: li, strat: si, power: pi})
			}
		}
	}
	runs := make([]netsim.Result, len(cells))
	fanOut(len(cells), o.Workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if ctx.Err() != nil {
				return
			}
			c := cells[i]
			strat, err := jam.ByName(panel[c.strat])
			if err != nil {
				panic(err) // jammerPanel validated the names
			}
			// The seed is a function of the (strategy, power) column only:
			// every layer faces the same adversary phase and channel draws.
			col := c.strat*len(resiliencePowers) + c.power
			cfg := netsim.Config{
				Topo: tp,
				Flows: []netsim.Flow{
					{Sender: 1, Receiver: 2},
					{Sender: 3, Receiver: 4},
				},
				LinkLayer:    layers[c.layer],
				PacketBytes:  res.PacketBytes,
				DurationSec:  res.DurationSec,
				CarrierSense: true,
				NumChannels:  resilienceChannels,
				Seed:         o.Seed ^ (uint64(col+1) << 16),
				Workers:      o.Workers,
				Tracer:       o.Tracer,
				Jammers: []netsim.JammerNode{{
					Sender:        0,
					Strategy:      strat,
					BurstBytes:    resilienceBurstBytes,
					PowerDeltaDBm: resiliencePowers[c.power],
					Node:          scenario.Node{IgnoreCarrierSense: true},
				}},
			}
			r, err := netsim.RunContext(ctx, cfg)
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				panic(fmt.Sprintf("resilience: %v", err))
			}
			runs[i] = r
		}
	})
	if err := ctx.Err(); err != nil {
		return ResilienceResult{}, err
	}

	for i, c := range cells {
		r := runs[i]
		rc := ResilienceCell{
			Layer:         layers[c.layer],
			Strategy:      panel[c.strat],
			PowerDeltaDBm: resiliencePowers[c.power],
			AggregateKbps: r.AggregateKbps(),
			JamFrames:     r.JamFrames,
			JamChips:      r.JamChips,
		}
		for _, fr := range r.Flows {
			rc.Air.Merge(fr.Air)
			rc.Transfers += fr.Transfers
			rc.Failures += fr.Failures
		}
		res.Cells = append(res.Cells, rc)
	}
	return res, nil
}

// Dataset converts the sweep to the uniform model: one series per link
// layer, one point per (strategy, power) column (X = column index, Y =
// aggregate Kbit/s), with per-series totals as bands.
func (r ResilienceResult) Dataset() Dataset {
	d := Dataset{
		Experiment: "resilience",
		Title:      "Resilience: link layers vs composable jammers",
		Meta: map[string]string{
			"strategies":   fmt.Sprintf("%v", r.Strategies),
			"powers_db":    fmt.Sprintf("%v", r.Powers),
			"channels":     fmt.Sprintf("%d", r.NumChannels),
			"packet_bytes": fmt.Sprintf("%d", r.PacketBytes),
			"duration_sec": fmt.Sprintf("%g", r.DurationSec),
		},
	}
	for _, layer := range r.Layers {
		s := Series{Label: layer, Unit: "Kbit/s", XUnit: "strategy x power"}
		var kbps, jamChips, transfers, failures float64
		col := 0
		for _, strat := range r.Strategies {
			for _, pw := range r.Powers {
				c, ok := r.Cell(layer, strat, pw)
				if !ok {
					continue
				}
				s.Points = append(s.Points, Point{
					Label: fmt.Sprintf("%s +%gdB", strat, pw),
					X:     float64(col),
					Y:     c.AggregateKbps,
				})
				col++
				kbps += c.AggregateKbps
				jamChips += float64(c.JamChips)
				transfers += float64(c.Transfers)
				failures += float64(c.Failures)
			}
		}
		cols := col
		if cols == 0 {
			cols = 1
		}
		s.Bands = map[string]float64{
			"mean_kbps": kbps / float64(cols),
			"jam_chips": jamChips,
			"transfers": transfers,
			"failures":  failures,
		}
		d.Series = append(d.Series, s)
	}
	return d
}
