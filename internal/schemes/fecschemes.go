// The FEC-side recovery schemes: block convolutional coding (with and
// without interleaving) and the hint-directed hybrid. They post-process the
// same uncoded trace every other scheme scores, emulating what the channel's
// recorded error pattern would have done to a coded payload: because the
// rate-1/2 convolutional code is linear, decoding the all-zeros codeword
// through the observed error pattern reproduces exactly the residual errors
// any real data would have suffered, so no reference payload is needed.
package schemes

import (
	"ppr/internal/fec"
	"ppr/internal/interleave"
	"ppr/internal/sim"
)

// fecDataBytes, ilRows and ilCols resolve the Params knobs with their
// zero-value defaults.
func fecDataBytes(p Params) int {
	if p.FECDataBytes > 0 {
		return p.FECDataBytes
	}
	return DefaultFECDataBytes
}

func ilGeometry(p Params) (rows, cols int) {
	rows, cols = p.InterleaveRows, p.InterleaveCols
	if rows <= 0 {
		rows = DefaultInterleaveRows
	}
	if cols <= 0 {
		cols = DefaultInterleaveCols
	}
	return rows, cols
}

// fecLayout computes the block structure a payload supports: each block
// carries fecDataBytes(p) application bytes, independently encoded (and
// trellis-terminated) by the rate-1/2 K=7 code, and the payload holds as
// many whole coded blocks as fit. codedBits is always a multiple of 4, so
// blocks align with 4-bit PHY symbols.
func fecLayout(p Params, payloadBytes int) (nBlocks, dataBits, codedBits int) {
	dataBits = fecDataBytes(p) * 8
	codedBits = fec.EncodedLen(dataBits)
	nBlocks = payloadBytes * 8 / codedBits
	return nBlocks, dataBits, codedBits
}

// channelErrorBits reconstructs the coded-bit error pattern the channel
// imposed on the payload: per symbol, the XOR of the decoded and true
// 4-bit values expanded LSB-first; symbols the receiver never decoded
// (missing prefix, truncated reception) are fully corrupted.
func channelErrorBits(o *sim.Outcome, payloadBytes int) []byte {
	nSym := payloadBytes * 2
	bits := make([]byte, nSym*symbolBits)
	for idx := 0; idx < nSym; idx++ {
		var e byte = 0xF
		if di := idx - o.MissingPrefix; di >= 0 && di < len(o.Decisions) && idx < len(o.TruthSyms) {
			e = (o.Decisions[di].Symbol ^ o.TruthSyms[idx]) & 0xF
		}
		for j := 0; j < symbolBits; j++ {
			bits[idx*symbolBits+j] = e >> uint(j) & 1
		}
	}
	return bits
}

// allZero reports whether every bit of an error pattern is clear.
func allZero(bits []byte) bool {
	for _, b := range bits {
		if b != 0 {
			return false
		}
	}
	return true
}

// blockRepaired decodes one coded block's error pattern and reports whether
// the code fully repaired it. An error-free block short-circuits: hard-
// decision Viterbi of the uncorrupted codeword is the identity, so the
// trellis only runs where the channel actually did damage — post-processing
// cost scales with corruption, not payload size.
func blockRepaired(errBits []byte) bool {
	if allZero(errBits) {
		return true
	}
	res, err := fec.Decode(errBits)
	if err != nil {
		return false
	}
	return allZero(res.Bits)
}

// ---- Block FEC (Sec. 8.3's coding alternative) ----

// BlockFEC post-processes the trace as if the sender had convolutionally
// coded the payload: application data is split into FECDataBytes blocks,
// each encoded with internal/fec's rate-1/2 K=7 code, and a block is
// delivered iff the Viterbi decoder fully repairs it. With Interleaved set,
// the coded stream additionally passes through internal/interleave's block
// interleaver, so channel bursts up to InterleaveRows bits are spread into
// isolated, correctable single errors — when, and only when, the geometry
// was provisioned for the burst, which is the a-priori channel knowledge
// the paper notes PPR does not need (Sec. 8.3).
type BlockFEC struct {
	// Interleaved interposes the block bit-interleaver between the encoder
	// and the channel.
	Interleaved bool
}

// Name implements RecoveryScheme.
func (s BlockFEC) Name() string {
	if s.Interleaved {
		return "FEC+interleaving"
	}
	return "FEC"
}

// AppBytesPerPacket implements RecoveryScheme: the rate-1/2 code roughly
// halves capacity — the standing cost PPR avoids by not pre-provisioning
// redundancy.
func (s BlockFEC) AppBytesPerPacket(p Params, payloadBytes int) int {
	nBlocks, _, _ := fecLayout(p, payloadBytes)
	return nBlocks * fecDataBytes(p)
}

// DeliveredAppBytes implements RecoveryScheme.
func (s BlockFEC) DeliveredAppBytes(mask []bool, o *sim.Outcome, p Params, payloadBytes int) int {
	if !o.Acquired {
		return 0
	}
	mask = maskOf(mask, o)
	nBlocks, _, codedBits := fecLayout(p, payloadBytes)
	if nBlocks == 0 {
		return 0
	}
	if cleanPayload(mask, payloadBytes) {
		return nBlocks * fecDataBytes(p) // error-free packet: every block decodes
	}
	region := channelErrorBits(o, payloadBytes)[:nBlocks*codedBits]
	if s.Interleaved {
		region = deinterleaved(region, p)
	}
	delivered := 0
	for b := 0; b < nBlocks; b++ {
		if blockRepaired(region[b*codedBits : (b+1)*codedBits]) {
			delivered += fecDataBytes(p)
		}
	}
	return delivered
}

// cleanPayload reports whether the mask certifies every symbol of the
// payload correct — the fast path that skips error-pattern reconstruction
// for the (common) undamaged packet.
func cleanPayload(mask []bool, payloadBytes int) bool {
	if len(mask) < payloadBytes*2 {
		return false
	}
	for _, ok := range mask[:payloadBytes*2] {
		if !ok {
			return false
		}
	}
	return true
}

// deinterleaved applies the receiver's deinterleaver to the coded region's
// error pattern: the transmitter interleaved whole rows×cols bit tiles, so
// a contiguous channel burst lands InterleaveCols bits apart at the
// decoder. A trailing region shorter than one tile is sent (and returned)
// uninterleaved.
func deinterleaved(region []byte, p Params) []byte {
	rows, cols := ilGeometry(p)
	il := interleave.New(rows, cols)
	m := len(region) / il.Size() * il.Size()
	if m == 0 {
		return region
	}
	out := il.Deinterleave(region[:m])
	return append(out, region[m:]...)
}

// ---- Hybrid PPR + FEC (the ZipTx/Maranello direction) ----

// HybridPPRFEC couples SoftPHY hints to the block code: the payload is laid
// out exactly as BlockFEC lays it out, but the receiver uses PPR's η
// threshold to decide where to spend decoding effort. A block whose symbols
// all pass the hint check is handed up directly — no trellis — and a block
// containing hint-flagged (or undecoded) symbols goes through the
// convolutional repair. FEC effort therefore concentrates on exactly the
// symbols the PHY flagged, the partial-recovery middle ground ZipTx and
// Maranello explore with application- and block-level checksums.
//
// The delivery semantics differ from plain BlockFEC only on hint misses: a
// wrong-but-confident symbol makes its hint-clean block undeliverable
// (delivered-but-wrong is not delivery), whereas BlockFEC's always-on
// decoder may repair it.
type HybridPPRFEC struct{}

// Name implements RecoveryScheme.
func (HybridPPRFEC) Name() string { return "PPR+FEC" }

// AppBytesPerPacket implements RecoveryScheme: same coded layout as
// BlockFEC.
func (HybridPPRFEC) AppBytesPerPacket(p Params, payloadBytes int) int {
	return BlockFEC{}.AppBytesPerPacket(p, payloadBytes)
}

// DeliveredAppBytes implements RecoveryScheme.
func (HybridPPRFEC) DeliveredAppBytes(mask []bool, o *sim.Outcome, p Params, payloadBytes int) int {
	if !o.Acquired {
		return 0
	}
	mask = maskOf(mask, o)
	nBlocks, _, codedBits := fecLayout(p, payloadBytes)
	symsPerBlock := codedBits / symbolBits
	var errBits []byte // reconstructed lazily, only if some block needs repair
	delivered := 0
	for b := 0; b < nBlocks; b++ {
		s0 := b * symsPerBlock
		flagged := false
		for idx := s0; idx < s0+symsPerBlock; idx++ {
			di := idx - o.MissingPrefix
			if di < 0 || di >= len(o.Decisions) || o.Decisions[di].Hint > p.Eta {
				flagged = true
				break
			}
		}
		if !flagged {
			// Hint-clean block: deliver directly iff actually correct.
			ok := true
			for idx := s0; idx < s0+symsPerBlock; idx++ {
				if idx >= len(mask) || !mask[idx] {
					ok = false
					break
				}
			}
			if ok {
				delivered += fecDataBytes(p)
			}
			continue
		}
		if errBits == nil {
			errBits = channelErrorBits(o, payloadBytes)
		}
		if blockRepaired(errBits[b*codedBits : (b+1)*codedBits]) {
			delivered += fecDataBytes(p)
		}
	}
	return delivered
}
