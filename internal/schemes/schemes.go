// Package schemes is the pluggable recovery-scheme layer: every way of
// turning one received (and possibly damaged) packet into delivered
// application bytes lives behind the RecoveryScheme interface, and a
// registry (Register/ByName/Names, mirroring scenario.ByName) lets
// experiments, the CLI and external callers select schemes by name instead
// of switching on an enum.
//
// The paper's evaluation post-processes one symbol-level trace under every
// scheme (Sec. 7.2): the whole-packet CRC status quo, the fragmented-CRC
// baseline of Sec. 3.4, and PPR itself. Those three ship here as PacketCRC,
// FragCRC and PPR and reproduce the seed enum's figures bit for bit (see
// the parity test in internal/experiments). The layer also absorbs the
// coding-based recovery the paper's related work weighs against PPR
// (Sec. 8.3) and the hybrid direction ZipTx and Maranello later took:
// BlockFEC post-processes the trace as if the payload had been
// convolutionally coded (internal/fec), optionally behind a block
// interleaver (internal/interleave), and HybridPPRFEC spends that decoding
// effort only where SoftPHY hints flag damage.
//
// Every scheme scores one sim.Outcome against its precomputed correctness
// mask; the mask is computed once per outcome by the experiments layer and
// shared across all schemes and variants, so adding a scheme costs only its
// own arithmetic, never another pass over ground truth.
package schemes

import (
	"ppr/internal/baseline"
	"ppr/internal/sim"
)

// symbolBits is the width of one PHY symbol: the DSSS PHY decodes 4-bit
// codewords, so two symbols make an application byte.
const symbolBits = 4

// Params fixes the per-scheme knobs. The zero value of every FEC field
// falls back to its default so the seed's {FragBytes, Eta} literals keep
// working unchanged.
type Params struct {
	// FragBytes is the fragmented-CRC fragment size (the paper settles on
	// 50 bytes, Sec. 7.2.1).
	FragBytes int
	// Eta is PPR's Hamming-distance threshold (the paper uses 6), also the
	// hint gate HybridPPRFEC repairs behind.
	Eta float64
	// FECDataBytes is the application bytes per convolutional block of the
	// FEC schemes; 0 means DefaultFECDataBytes.
	FECDataBytes int
	// InterleaveRows and InterleaveCols set the bit-interleaver geometry of
	// BlockFEC{Interleaved: true}: bursts up to InterleaveRows coded bits
	// spread into single errors InterleaveCols bits apart. 0 means the
	// defaults.
	InterleaveRows, InterleaveCols int
}

// Default FEC knobs: 25-byte data blocks keep several independent codewords
// in even a quick-scale 250-byte payload, and the 32×48 bit interleaver fits
// inside the quick payload's coded region while spreading bursts up to 4
// bytes — deliberately smaller than a typical collision footprint, which is
// exactly the provisioning problem the paper says coding-with-interleaving
// has and PPR avoids (Sec. 8.3).
const (
	DefaultFECDataBytes   = 25
	DefaultInterleaveRows = 32
	DefaultInterleaveCols = 48
)

// DefaultParams returns the paper's operating point.
func DefaultParams() Params {
	return Params{
		FragBytes:      50,
		Eta:            6,
		FECDataBytes:   DefaultFECDataBytes,
		InterleaveRows: DefaultInterleaveRows,
		InterleaveCols: DefaultInterleaveCols,
	}
}

// RecoveryScheme is one post-processing recovery scheme: it declares how
// many application bytes a packet carries and scores one receive outcome.
// Implementations must be stateless values safe for concurrent use — the
// experiments layer fans post-processing out over a worker pool.
type RecoveryScheme interface {
	// Name is the scheme's display name ("Packet CRC"); Slug(Name()) is its
	// registry key ("packet-crc").
	Name() string
	// AppBytesPerPacket returns how many application bytes one link-layer
	// packet of payloadBytes carries under the scheme (fragmented CRC spends
	// payload on per-fragment checksums; FEC spends it on parity).
	AppBytesPerPacket(p Params, payloadBytes int) int
	// DeliveredAppBytes post-processes one outcome, returning the
	// application bytes the scheme would hand to higher layers. Only correct
	// bytes count: a delivered-but-wrong byte is not delivery. mask is the
	// outcome's precomputed CorrectMask, shared across schemes; nil means
	// compute it locally.
	DeliveredAppBytes(mask []bool, o *sim.Outcome, p Params, payloadBytes int) int
}

// maskOf resolves the shared mask, computing it only for direct callers
// that did not precompute one.
func maskOf(mask []bool, o *sim.Outcome) []bool {
	if mask == nil {
		return o.CorrectMask()
	}
	return mask
}

// ---- Packet CRC (the status quo) ----

// PacketCRC is the status quo the paper argues against: one checksum over
// the whole payload, so the packet is delivered entirely or not at all.
type PacketCRC struct{}

// Name implements RecoveryScheme.
func (PacketCRC) Name() string { return "Packet CRC" }

// AppBytesPerPacket implements RecoveryScheme: the whole payload is data.
func (PacketCRC) AppBytesPerPacket(p Params, payloadBytes int) int { return payloadBytes }

// DeliveredAppBytes implements RecoveryScheme: every symbol correct or
// nothing.
func (PacketCRC) DeliveredAppBytes(mask []bool, o *sim.Outcome, p Params, payloadBytes int) int {
	if !o.Acquired {
		return 0
	}
	for _, ok := range maskOf(mask, o) {
		if !ok {
			return 0
		}
	}
	return payloadBytes
}

// ---- Fragmented CRC (Sec. 3.4 baseline) ----

// FragCRC is the fragmented-CRC baseline of Sec. 3.4: the payload carries
// fragment‖CRC32 repeated, and each fragment whose checksum region arrived
// intact is delivered independently.
type FragCRC struct{}

// Name implements RecoveryScheme.
func (FragCRC) Name() string { return "Fragmented CRC" }

// AppBytesPerPacket implements RecoveryScheme: part of the payload is spent
// on per-fragment checksums.
func (FragCRC) AppBytesPerPacket(p Params, payloadBytes int) int {
	return baseline.AppCapacity(payloadBytes, p.FragBytes)
}

// DeliveredAppBytes implements RecoveryScheme: a fragment is delivered iff
// every symbol of its data-plus-CRC region is correct. A fragment whose
// region extends past the mask (truncated reception, or a payload too short
// for the layout) is not delivered.
func (FragCRC) DeliveredAppBytes(mask []bool, o *sim.Outcome, p Params, payloadBytes int) int {
	if !o.Acquired {
		return 0
	}
	mask = maskOf(mask, o)
	appBytes := baseline.AppCapacity(payloadBytes, p.FragBytes)
	delivered := 0
	pos := 0 // payload byte cursor
	for off := 0; off < appBytes; off += p.FragBytes {
		end := off + p.FragBytes
		if end > appBytes {
			end = appBytes
		}
		fragPayloadBytes := end - off + baseline.FragOverhead
		ok := true
		for b := pos; b < pos+fragPayloadBytes && ok; b++ {
			if 2*b+1 >= len(mask) || !mask[2*b] || !mask[2*b+1] {
				ok = false
			}
		}
		if ok {
			delivered += end - off
		}
		pos += fragPayloadBytes
	}
	return delivered
}

// ---- PPR (Sec. 5) ----

// PPR delivers exactly the symbols whose SoftPHY hint clears η — the
// paper's scheme, scored the way its capacity experiments score it: a
// symbol counts iff it is labelled good and is actually correct.
type PPR struct{}

// Name implements RecoveryScheme.
func (PPR) Name() string { return "PPR" }

// AppBytesPerPacket implements RecoveryScheme: the whole payload is data
// (PP-ARQ's feedback rides the reverse link, not the payload).
func (PPR) AppBytesPerPacket(p Params, payloadBytes int) int { return payloadBytes }

// DeliveredAppBytes implements RecoveryScheme. It counts good-and-correct
// symbols and converts to bytes once at the end, rounding the trailing
// nibble up: the seed's goodCorrect*4/8 floored the conversion, silently
// discarding half a delivered byte from every odd count.
func (PPR) DeliveredAppBytes(mask []bool, o *sim.Outcome, p Params, payloadBytes int) int {
	if !o.Acquired {
		return 0
	}
	mask = maskOf(mask, o)
	goodCorrect := 0
	for i, d := range o.Decisions {
		idx := o.MissingPrefix + i
		if idx >= len(mask) {
			break
		}
		if d.Hint <= p.Eta && mask[idx] {
			goodCorrect++
		}
	}
	return (goodCorrect*symbolBits + 7) / 8
}
