package schemes

import (
	"reflect"
	"testing"

	"ppr/internal/phy"
	"ppr/internal/sim"
)

func decision(sym byte, hint float64) phy.Decision {
	return phy.Decision{Symbol: sym, Hint: hint}
}

// cleanOutcome builds a fully-decoded, fully-correct outcome for a payload
// of payloadBytes (two 4-bit symbols per byte).
func cleanOutcome(payloadBytes int) *sim.Outcome {
	truth := make([]byte, payloadBytes*2)
	o := &sim.Outcome{Acquired: true, TruthSyms: truth}
	for range truth {
		o.Decisions = append(o.Decisions, decision(0, 0))
	}
	return o
}

// corrupt flips the decoded value of the given symbol indexes.
func corrupt(o *sim.Outcome, idxs ...int) *sim.Outcome {
	for _, idx := range idxs {
		d := o.Decisions[idx-o.MissingPrefix]
		d.Symbol = (d.Symbol + 5) % 16
		o.Decisions[idx-o.MissingPrefix] = d
	}
	return o
}

// ---- Registry ----

func TestRegistryNamesAndOrder(t *testing.T) {
	all := All()
	if len(all) < 6 {
		t.Fatalf("%d registered schemes, want >= 6", len(all))
	}
	// Presentation order: the paper's three first, coding extensions after.
	wantFirst := []string{"Packet CRC", "Fragmented CRC", "PPR", "FEC", "FEC+interleaving", "PPR+FEC"}
	for i, want := range wantFirst {
		if all[i].Name() != want {
			t.Errorf("All()[%d] = %q, want %q", i, all[i].Name(), want)
		}
	}
	std := Standard()
	if len(std) != 3 || std[0].Name() != "Packet CRC" || std[2].Name() != "PPR" {
		t.Errorf("Standard() = %v", std)
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
}

func TestRegistryByName(t *testing.T) {
	for slug, want := range map[string]string{
		"ppr":              "PPR",
		"packet-crc":       "Packet CRC",
		"Packet CRC":       "Packet CRC", // display names resolve too
		"fec-interleaving": "FEC+interleaving",
		"PPR+FEC":          "PPR+FEC",
	} {
		s, err := ByName(slug)
		if err != nil {
			t.Errorf("ByName(%q): %v", slug, err)
			continue
		}
		if s.Name() != want {
			t.Errorf("ByName(%q) = %q, want %q", slug, s.Name(), want)
		}
	}
	if _, err := ByName("hamming-armor"); err == nil {
		t.Error("unknown scheme did not error")
	}
}

func TestSlug(t *testing.T) {
	for in, want := range map[string]string{
		"Packet CRC":       "packet-crc",
		"FEC+interleaving": "fec-interleaving",
		"PPR":              "ppr",
		"  Odd  name!  ":   "odd-name",
	} {
		if got := Slug(in); got != want {
			t.Errorf("Slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(PPR{})
}

// ---- Packet CRC ----

func TestPacketCRC(t *testing.T) {
	p := DefaultParams()
	if got := (PacketCRC{}).DeliveredAppBytes(nil, cleanOutcome(3), p, 3); got != 3 {
		t.Errorf("clean packet delivered %d, want 3", got)
	}
	if got := (PacketCRC{}).DeliveredAppBytes(nil, corrupt(cleanOutcome(3), 2), p, 3); got != 0 {
		t.Errorf("corrupt packet delivered %d, want 0", got)
	}
	unacq := cleanOutcome(3)
	unacq.Acquired = false
	if got := (PacketCRC{}).DeliveredAppBytes(nil, unacq, p, 3); got != 0 {
		t.Errorf("unacquired packet delivered %d", got)
	}
	if (PacketCRC{}).AppBytesPerPacket(p, 1500) != 1500 {
		t.Error("packet CRC capacity")
	}
}

// ---- PPR ----

func TestPPRCountsGoodCorrectOnly(t *testing.T) {
	truth := []byte{1, 2, 3, 4}
	o := &sim.Outcome{Acquired: true, TruthSyms: truth}
	// symbol 0: correct, low hint (counts)
	// symbol 1: correct, low hint (counts)
	// symbol 2: wrong, low hint (miss: delivered but wrong — not counted)
	// symbol 3: wrong, high hint (correctly dropped)
	o.Decisions = []phy.Decision{
		decision(1, 0), decision(2, 0), decision(9, 1), decision(7, 12),
	}
	p := DefaultParams()
	if got := (PPR{}).DeliveredAppBytes(nil, o, p, 2); got != 1 {
		t.Errorf("PPR delivered %d bytes, want 1 (2 good correct symbols)", got)
	}
	// A high hint on a correct symbol is a false alarm: dropped.
	o.Decisions[1] = decision(2, 10)
	if got := (PPR{}).DeliveredAppBytes(nil, o, p, 2); got != 1 {
		t.Errorf("PPR delivered %d bytes with a false alarm, want 1 (rounded nibble)", got)
	}
	if (PPR{}).AppBytesPerPacket(p, 1500) != 1500 {
		t.Error("PPR capacity")
	}
}

// TestPPROddSymbolCount is the regression test for the seed's flooring bug:
// goodCorrect*4/8 truncated every odd good-symbol count, so one delivered
// symbol scored zero bytes and three scored one. Counting in symbols and
// converting once must round the trailing nibble up.
func TestPPROddSymbolCount(t *testing.T) {
	p := DefaultParams()
	mk := func(goodCorrect, total int) *sim.Outcome {
		truth := make([]byte, total)
		o := &sim.Outcome{Acquired: true, TruthSyms: truth}
		for i := 0; i < total; i++ {
			if i < goodCorrect {
				o.Decisions = append(o.Decisions, decision(0, 0)) // correct, good hint
			} else {
				o.Decisions = append(o.Decisions, decision(1, 12)) // wrong, flagged
			}
		}
		return o
	}
	for _, tc := range []struct{ goodCorrect, want int }{
		{0, 0}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {7, 4},
	} {
		if got := (PPR{}).DeliveredAppBytes(nil, mk(tc.goodCorrect, 8), p, 4); got != tc.want {
			t.Errorf("%d good symbols delivered %d bytes, want %d", tc.goodCorrect, got, tc.want)
		}
	}
}

// ---- Fragmented CRC ----

func TestFragCRC(t *testing.T) {
	// 20-byte payload, 8-byte fragments: AppCapacity(20, 8) = 12 (one full
	// 8-byte fragment plus a 4-byte tail fragment).
	payloadBytes := 20
	p := Params{FragBytes: 8, Eta: 6}
	if app := (FragCRC{}).AppBytesPerPacket(p, payloadBytes); app != 12 {
		t.Fatalf("app capacity %d, want 12", app)
	}
	if got := (FragCRC{}).DeliveredAppBytes(nil, cleanOutcome(payloadBytes), p, payloadBytes); got != 12 {
		t.Errorf("clean frag delivered %d, want 12", got)
	}
	// Corrupt payload byte 2 (symbol 4): kills fragment 0 only.
	bad := corrupt(cleanOutcome(payloadBytes), 4)
	if got := (FragCRC{}).DeliveredAppBytes(nil, bad, p, payloadBytes); got != 4 {
		t.Errorf("frag with one bad byte delivered %d, want 4", got)
	}
}

func TestFragCRCFragmentStraddlesPayloadEnd(t *testing.T) {
	// A mask shorter than the full payload (truncated reception) leaves the
	// final fragment's checksum region partly outside the mask: that
	// fragment must not be delivered, and nothing may panic.
	payloadBytes := 20
	p := Params{FragBytes: 8, Eta: 6}
	o := cleanOutcome(payloadBytes)
	// Truncate decisions and truth to 30 symbols = 15 payload bytes: the
	// tail fragment (bytes 12..19) straddles the decoded end.
	o.Decisions = o.Decisions[:30]
	o.TruthSyms = o.TruthSyms[:30]
	if got := (FragCRC{}).DeliveredAppBytes(nil, o, p, payloadBytes); got != 8 {
		t.Errorf("straddling fragment delivered %d, want 8 (first fragment only)", got)
	}
}

func TestFragCRCFragBytesAtLeastPayload(t *testing.T) {
	// FragBytes >= payload degenerates to one whole-payload fragment: the
	// checksum still costs FragOverhead, so capacity is payload-4.
	payloadBytes := 20
	for _, fragBytes := range []int{20, 30, 100} {
		p := Params{FragBytes: fragBytes, Eta: 6}
		want := payloadBytes - 4
		if app := (FragCRC{}).AppBytesPerPacket(p, payloadBytes); app != want {
			t.Fatalf("FragBytes=%d: capacity %d, want %d", fragBytes, app, want)
		}
		if got := (FragCRC{}).DeliveredAppBytes(nil, cleanOutcome(payloadBytes), p, payloadBytes); got != want {
			t.Errorf("FragBytes=%d: clean delivered %d, want %d", fragBytes, got, want)
		}
		// Any corrupt symbol kills the single fragment.
		if got := (FragCRC{}).DeliveredAppBytes(nil, corrupt(cleanOutcome(payloadBytes), 7), p, payloadBytes); got != 0 {
			t.Errorf("FragBytes=%d: corrupt delivered %d, want 0", fragBytes, got)
		}
	}
}

func TestFragCRCMaskShorterThanFragmentRegion(t *testing.T) {
	// An explicit mask shorter than even the first fragment's region: no
	// fragment can verify, delivery is zero, no panic.
	payloadBytes := 20
	p := Params{FragBytes: 8, Eta: 6}
	o := cleanOutcome(payloadBytes)
	short := make([]bool, 6) // 3 payload bytes of mask, first fragment needs 12
	for i := range short {
		short[i] = true
	}
	if got := (FragCRC{}).DeliveredAppBytes(short, o, p, payloadBytes); got != 0 {
		t.Errorf("short mask delivered %d, want 0", got)
	}
	// Zero-length mask too.
	if got := (FragCRC{}).DeliveredAppBytes([]bool{}, o, p, payloadBytes); got != 0 {
		t.Errorf("empty mask delivered %d, want 0", got)
	}
}

// ---- Block FEC ----

// fecTestParams keeps FEC blocks small so tests exercise several blocks in
// a small payload: 10 data bytes -> 86 branches -> 172 coded bits (43
// symbols) per block.
func fecTestParams() Params {
	return Params{Eta: 6, FECDataBytes: 10, InterleaveRows: 16, InterleaveCols: 32}
}

func TestBlockFECCapacityAndClean(t *testing.T) {
	p := fecTestParams()
	payloadBytes := 100 // 800 coded bits -> 4 blocks of 172 bits, 40 app bytes
	if got := (BlockFEC{}).AppBytesPerPacket(p, payloadBytes); got != 40 {
		t.Fatalf("FEC capacity %d, want 40", got)
	}
	if got := (BlockFEC{}).DeliveredAppBytes(nil, cleanOutcome(payloadBytes), p, payloadBytes); got != 40 {
		t.Errorf("clean FEC delivered %d, want 40", got)
	}
	// Capacity is roughly half the payload: the standing cost of coding.
	full := (BlockFEC{}).AppBytesPerPacket(DefaultParams(), 1500)
	if full <= 1500/3 || full > 1500/2 {
		t.Errorf("1500-byte FEC capacity %d outside (500, 750]", full)
	}
}

func TestBlockFECRepairsIsolatedErrorLosesBurst(t *testing.T) {
	p := fecTestParams()
	payloadBytes := 100
	// One corrupt symbol (<= 4 coded bit errors) in block 0: the K=7 code
	// repairs it and every block is delivered.
	oneErr := corrupt(cleanOutcome(payloadBytes), 10)
	if got := (BlockFEC{}).DeliveredAppBytes(nil, oneErr, p, payloadBytes); got != 40 {
		t.Errorf("single corrupt symbol delivered %d, want 40 (repaired)", got)
	}
	// A dense 10-symbol burst (40 contiguous coded bit errors) inside block
	// 0 is beyond the code: exactly that block is lost.
	burst := cleanOutcome(payloadBytes)
	idxs := make([]int, 10)
	for i := range idxs {
		idxs[i] = 5 + i
	}
	corrupt(burst, idxs...)
	if got := (BlockFEC{}).DeliveredAppBytes(nil, burst, p, payloadBytes); got != 30 {
		t.Errorf("burst delivered %d, want 30 (one block lost)", got)
	}
}

func TestInterleavingSpreadsBurst(t *testing.T) {
	// The same burst, provisioned-for by the interleaver (<= InterleaveRows
	// coded bits), spreads into isolated single errors InterleaveCols bits
	// apart that the code corrects — the a-priori-provisioning trade-off of
	// Sec. 8.3.
	p := fecTestParams() // spreads bursts up to 16 bits
	payloadBytes := 100
	burst := cleanOutcome(payloadBytes)
	corrupt(burst, 20, 21, 22, 23) // 16 contiguous coded bit errors
	plain := (BlockFEC{}).DeliveredAppBytes(nil, burst, p, payloadBytes)
	spread := (BlockFEC{Interleaved: true}).DeliveredAppBytes(nil, burst, p, payloadBytes)
	if spread <= plain {
		t.Errorf("interleaving delivered %d, not above plain FEC's %d", spread, plain)
	}
	if spread != 40 {
		t.Errorf("interleaved burst delivered %d, want 40 (fully repaired)", spread)
	}
}

func TestBlockFECUndecodedSymbolsCorrupt(t *testing.T) {
	// A missing prefix (postamble rollback) counts as corruption: the
	// blocks it covers are lost unless repaired.
	p := fecTestParams()
	payloadBytes := 100
	o := cleanOutcome(payloadBytes)
	o.MissingPrefix = 50 // first 50 symbols (200 bits) undecoded
	o.Decisions = o.Decisions[50:]
	got := (BlockFEC{}).DeliveredAppBytes(nil, o, p, payloadBytes)
	if got != 20 {
		t.Errorf("missing-prefix outcome delivered %d, want 20 (blocks 0-1 erased)", got)
	}
}

// ---- Hybrid PPR+FEC ----

func TestHybridDeliversCleanRepairsFlagged(t *testing.T) {
	p := fecTestParams()
	payloadBytes := 100
	if got := (HybridPPRFEC{}).AppBytesPerPacket(p, payloadBytes); got != 40 {
		t.Fatalf("hybrid capacity %d, want 40", got)
	}
	// Clean packet: every block hint-clean and correct, no trellis needed.
	if got := (HybridPPRFEC{}).DeliveredAppBytes(nil, cleanOutcome(payloadBytes), p, payloadBytes); got != 40 {
		t.Errorf("clean hybrid delivered %d, want 40", got)
	}
	// A flagged corrupt symbol (hint above η) routes its block through the
	// FEC repair and survives.
	flagged := cleanOutcome(payloadBytes)
	d := flagged.Decisions[10]
	d.Symbol, d.Hint = 5, 12
	flagged.Decisions[10] = d
	if got := (HybridPPRFEC{}).DeliveredAppBytes(nil, flagged, p, payloadBytes); got != 40 {
		t.Errorf("flagged-error hybrid delivered %d, want 40 (repaired)", got)
	}
}

func TestHybridMissDiffersFromBlockFEC(t *testing.T) {
	// A hint miss — wrong symbol the PHY calls good — is the one semantic
	// divergence: the hybrid's hint-clean fast path hands the block up
	// without repair and scores zero (delivered-but-wrong is not delivery),
	// while always-on BlockFEC decodes and fixes it.
	p := fecTestParams()
	payloadBytes := 100
	miss := corrupt(cleanOutcome(payloadBytes), 10) // corrupt but hint stays 0
	fecGot := (BlockFEC{}).DeliveredAppBytes(nil, miss, p, payloadBytes)
	hybGot := (HybridPPRFEC{}).DeliveredAppBytes(nil, miss, p, payloadBytes)
	if fecGot != 40 {
		t.Errorf("BlockFEC delivered %d on a single miss, want 40", fecGot)
	}
	if hybGot != 30 {
		t.Errorf("hybrid delivered %d on a single miss, want 30 (block lost)", hybGot)
	}
}

// ---- Shared-mask contract ----

func TestSchemesHonorPrecomputedMask(t *testing.T) {
	// Every scheme must score identically with a nil mask (computed
	// locally) and the precomputed CorrectMask the experiments layer
	// shares.
	p := DefaultParams()
	p.FECDataBytes, p.InterleaveRows, p.InterleaveCols = 10, 16, 32
	p.FragBytes = 8
	outs := []*sim.Outcome{
		cleanOutcome(100),
		corrupt(cleanOutcome(100), 3, 40, 41, 42, 90),
		func() *sim.Outcome {
			o := cleanOutcome(100)
			o.MissingPrefix = 20
			o.Decisions = o.Decisions[20:]
			return o
		}(),
	}
	for _, s := range All() {
		for i, o := range outs {
			mask := o.CorrectMask()
			if a, b := s.DeliveredAppBytes(nil, o, p, 100), s.DeliveredAppBytes(mask, o, p, 100); a != b {
				t.Errorf("%s outcome %d: nil mask %d != shared mask %d", s.Name(), i, a, b)
			}
		}
	}
}

func TestChannelErrorBits(t *testing.T) {
	o := &sim.Outcome{
		Acquired:      true,
		MissingPrefix: 1,
		TruthSyms:     []byte{0xA, 0xB, 0xC, 0xD},
		Decisions:     []phy.Decision{decision(0xB, 0), decision(0xC, 0), decision(0xD, 0)},
	}
	bits := channelErrorBits(o, 2)
	want := []byte{
		1, 1, 1, 1, // symbol 0: undecoded prefix -> fully corrupt
		0, 0, 0, 0, // symbol 1: 0xB decoded as 0xB
		0, 0, 0, 0, // symbol 2: correct
		0, 0, 0, 0, // symbol 3: correct
	}
	if !reflect.DeepEqual(bits, want) {
		t.Errorf("channelErrorBits = %v, want %v", bits, want)
	}
	// A wrong decode XORs through.
	o.Decisions[1] = decision(0xF, 0) // truth 0xC ^ 0xF = 0x3 -> bits 1,1,0,0
	bits = channelErrorBits(o, 2)
	if !reflect.DeepEqual(bits[8:12], []byte{1, 1, 0, 0}) {
		t.Errorf("error nibble = %v, want [1 1 0 0]", bits[8:12])
	}
}
