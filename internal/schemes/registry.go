package schemes

import (
	"fmt"
	"sort"
	"strings"
)

// The registry maps CLI slugs to scheme values and preserves registration
// order for presentation (figures list curves in the order schemes were
// registered: the paper's three first, then the coding extensions).
var (
	registry = map[string]RecoveryScheme{}
	ordered  []RecoveryScheme
)

func init() {
	Register(PacketCRC{})
	Register(FragCRC{})
	Register(PPR{})
	Register(BlockFEC{})
	Register(BlockFEC{Interleaved: true})
	Register(HybridPPRFEC{})
}

// Slug derives a scheme's registry key from its display name: lower case
// with every run of non-alphanumeric characters collapsed to one dash
// ("Packet CRC" → "packet-crc", "FEC+interleaving" → "fec-interleaving").
func Slug(name string) string {
	var b strings.Builder
	dash := false
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			if dash && b.Len() > 0 {
				b.WriteByte('-')
			}
			dash = false
			b.WriteRune(r)
		default:
			dash = true
		}
	}
	return b.String()
}

// Register adds a scheme to the registry under Slug(s.Name()). It panics on
// an empty or duplicate name; like scenario registration it is meant for
// init-time use and is not safe for concurrent callers.
func Register(s RecoveryScheme) {
	key := Slug(s.Name())
	if key == "" {
		panic("schemes: scheme with empty name")
	}
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("schemes: duplicate scheme %q", key))
	}
	registry[key] = s
	ordered = append(ordered, s)
}

// ByName resolves a scheme by its registry slug or display name.
func ByName(name string) (RecoveryScheme, error) {
	if s, ok := registry[Slug(name)]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("schemes: unknown scheme %q (available: %v)", name, Names())
}

// Names lists the registered scheme slugs, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered scheme in registration (presentation) order.
func All() []RecoveryScheme {
	out := make([]RecoveryScheme, len(ordered))
	copy(out, ordered)
	return out
}

// Standard returns the paper's three schemes in its presentation order —
// the set every capacity figure compared before the registry existed.
func Standard() []RecoveryScheme {
	return []RecoveryScheme{PacketCRC{}, FragCRC{}, PPR{}}
}
