// Package wire is the transport framing for serving PP-ARQ links over real
// byte streams (internal/linkserv, cmd/pprd). A wire frame is
//
//	magic(2) ‖ version(1) ‖ type(1) ‖ flow(4) ‖ length(4) ‖ hcrc(4) ‖ payload ‖ CRC32(4)
//
// carried over any io.ReadWriter — TCP sockets, net.Pipe loopbacks, or a
// FaultConn chaos wrapper. The codec treats the transport as hostile: the
// decoder never panics on arbitrary bytes, never allocates beyond one
// maximum-size frame, and resynchronizes after corruption by scanning for
// the next magic instead of giving up on the connection. Damaged frames are
// counted and skipped — to the layers above, a corrupted wire frame is
// indistinguishable from a lost one, which is exactly the loss model the
// PP-ARQ machinery already recovers from.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"ppr/internal/crcutil"
)

const (
	// Magic0 and Magic1 open every wire frame.
	Magic0 = 0x50 // 'P'
	Magic1 = 0x52 // 'R'
	// Version is the only protocol version this codec speaks. Frames with
	// any other version byte are treated as noise and resynchronized over.
	Version = 1
	// HeaderSize is the fixed frame header: magic, version, type, flow ID,
	// payload length, and a CRC-32 over those twelve bytes. The header CRC
	// is what keeps a bit flip in the length field from wedging the stream:
	// without it, a corrupted length passes the magic check and the decoder
	// would block waiting for payload bytes that never come.
	HeaderSize = 16
	// TrailerSize is the CRC-32 trailer covering header and payload.
	TrailerSize = 4
	// MaxPayload bounds a frame payload. It is sized for the largest
	// linkserv message — a serialized reception of a 1500-byte packet, two
	// 9-byte soft decisions per payload byte — with generous headroom, and
	// it caps the decoder's buffer: arbitrary input can never make the
	// decoder allocate more than MaxFrameSize bytes.
	MaxPayload = 128 << 10
	// MaxFrameSize is the largest on-the-wire footprint of one frame.
	MaxFrameSize = HeaderSize + MaxPayload + TrailerSize
)

// Frame is one decoded wire frame. Type and Flow are interpreted by the
// link server's session layer; the codec only moves them intact.
type Frame struct {
	// Type is the message type byte (see internal/linkserv message types).
	Type byte
	// Flow addresses the per-connection flow the frame belongs to; 0 is
	// the connection itself.
	Flow uint32
	// Payload is the message body. The decoder returns a fresh copy, so it
	// remains valid after the next Next call.
	Payload []byte
}

// AppendFrame appends the encoded frame to dst and returns the result.
// It panics if the payload exceeds MaxPayload: senders size their messages,
// so an oversized payload is a programming error, not a transport fault.
func AppendFrame(dst []byte, f Frame) []byte {
	if len(f.Payload) > MaxPayload {
		panic(fmt.Sprintf("wire: payload %d exceeds MaxPayload %d", len(f.Payload), MaxPayload))
	}
	start := len(dst)
	dst = append(dst, Magic0, Magic1, Version, f.Type)
	dst = binary.BigEndian.AppendUint32(dst, f.Flow)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Payload)))
	dst = binary.BigEndian.AppendUint32(dst, crcutil.Sum32(dst[start:start+12]))
	dst = append(dst, f.Payload...)
	return binary.BigEndian.AppendUint32(dst, crcutil.Sum32(dst[start:]))
}

// FrameSize returns the on-the-wire size of a frame with the given payload
// length.
func FrameSize(payloadLen int) int { return HeaderSize + payloadLen + TrailerSize }

// Encoder writes frames to a stream, reusing one scratch buffer.
type Encoder struct {
	w   io.Writer
	buf []byte
}

// NewEncoder returns an encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Encode writes one frame.
func (e *Encoder) Encode(f Frame) error {
	e.buf = AppendFrame(e.buf[:0], f)
	_, err := e.w.Write(e.buf)
	return err
}

// DecoderStats counts what the decoder saw, damage included.
type DecoderStats struct {
	// Frames is the number of intact frames returned.
	Frames int64
	// CRCErrors counts frames whose trailer failed verification.
	CRCErrors int64
	// Oversize counts headers claiming a payload beyond MaxPayload.
	Oversize int64
	// ResyncBytes counts bytes discarded while hunting for the next magic.
	ResyncBytes int64
}

// Decoder reads frames from a stream, skipping damage. Its buffer is
// bounded by MaxFrameSize regardless of input.
type Decoder struct {
	r     io.Reader
	buf   []byte
	start int
	end   int
	eof   bool
	stats DecoderStats
}

// NewDecoder returns a decoder reading from r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// Stats returns the running damage accounting.
func (d *Decoder) Stats() DecoderStats { return d.stats }

// buffered returns the bytes currently buffered.
func (d *Decoder) buffered() []byte { return d.buf[d.start:d.end] }

// discard drops n buffered bytes as resync noise.
func (d *Decoder) discard(n int) {
	d.start += n
	d.stats.ResyncBytes += int64(n)
}

// fill ensures at least n bytes are buffered, reading as needed. It
// returns false when the stream ended (or errored) first; a non-nil error
// is a transport error distinct from plain EOF.
func (d *Decoder) fill(n int) (bool, error) {
	if n > MaxFrameSize {
		panic("wire: fill beyond MaxFrameSize")
	}
	if d.end-d.start >= n {
		return true, nil
	}
	if d.eof {
		return false, nil
	}
	// Compact so the needed span fits without growing past the cap.
	if d.start > 0 && len(d.buf)-d.start < n {
		copy(d.buf, d.buf[d.start:d.end])
		d.end -= d.start
		d.start = 0
	}
	if need := d.start + n; cap(d.buf) < need {
		grown := make([]byte, need)
		copy(grown, d.buf[:d.end])
		d.buf = grown
	} else {
		d.buf = d.buf[:cap(d.buf)]
	}
	for d.end-d.start < n {
		m, err := d.r.Read(d.buf[d.end:])
		d.end += m
		if err == io.EOF {
			d.eof = true
			return d.end-d.start >= n, nil
		}
		if err != nil {
			return false, err
		}
	}
	return true, nil
}

// headerOK reports whether the buffered bytes at the read position start
// with a verified frame header, and if so its payload length. A nonzero
// payloadLen with ok == false means a CRC-valid header claiming more than
// MaxPayload.
func headerOK(b []byte) (payloadLen int, ok bool) {
	if b[0] != Magic0 || b[1] != Magic1 || b[2] != Version {
		return 0, false
	}
	if crcutil.Sum32(b[:12]) != binary.BigEndian.Uint32(b[12:16]) {
		return 0, false
	}
	n := int(binary.BigEndian.Uint32(b[8:12]))
	if n > MaxPayload {
		return n, false
	}
	return n, true
}

// Next returns the next intact frame. Corrupted spans are skipped with
// their damage counted in Stats. It returns io.EOF at a clean end of
// stream (trailing noise is discarded and counted), and the transport's
// own error otherwise.
func (d *Decoder) Next() (Frame, error) {
	for {
		ok, err := d.fill(HeaderSize)
		if err != nil {
			return Frame{}, err
		}
		if !ok {
			// Stream over; whatever is left cannot form a frame.
			d.discard(d.end - d.start)
			return Frame{}, io.EOF
		}
		b := d.buffered()
		payloadLen, ok := headerOK(b)
		if !ok {
			if payloadLen > MaxPayload {
				d.stats.Oversize++
			}
			d.discard(1)
			continue
		}
		total := FrameSize(payloadLen)
		ok, err = d.fill(total)
		if err != nil {
			return Frame{}, err
		}
		if !ok {
			// The claimed frame outlives the stream: treat the header as
			// noise and rescan what remains.
			d.discard(1)
			continue
		}
		b = d.buffered()[:total]
		want := binary.BigEndian.Uint32(b[total-TrailerSize:])
		if crcutil.Sum32(b[:total-TrailerSize]) != want {
			d.stats.CRCErrors++
			d.discard(1)
			continue
		}
		f := Frame{
			Type:    b[3],
			Flow:    binary.BigEndian.Uint32(b[4:8]),
			Payload: append([]byte(nil), b[HeaderSize:HeaderSize+payloadLen]...),
		}
		d.start += total
		d.stats.Frames++
		return f, nil
	}
}

// BufCap exposes the decoder's buffer capacity for the over-allocation
// guard in tests and fuzzing.
func (d *Decoder) BufCap() int { return cap(d.buf) }
