package wire

import (
	"net"
	"sync"
	"time"

	"ppr/internal/stats"
)

// FaultSpec composes per-frame transport faults. Each field is an
// independent per-frame probability; several can fire on the same frame
// (a frame can be both delayed and corrupted). All randomness is drawn
// from one stats.RNG, so for a fixed seed and frame sequence the fault
// decisions are deterministic — timing effects (delays, reorder flushes)
// depend on the scheduler, but which frames are dropped, duplicated,
// corrupted, truncated or reordered does not.
type FaultSpec struct {
	// Drop discards the frame entirely.
	Drop float64
	// Duplicate emits the frame twice back to back.
	Duplicate float64
	// Corrupt flips one random bit of the frame.
	Corrupt float64
	// Truncate emits only a random non-empty prefix of the frame, tearing
	// the stream's framing (the decoder resynchronizes on the next magic).
	Truncate float64
	// Reorder holds the frame and emits it after the next one (or after
	// HoldDelay if no successor arrives).
	Reorder float64
	// Delay sleeps a random duration up to MaxDelay before emitting,
	// stalling the writer like a congested path.
	Delay float64
	// HardClose closes the underlying connection instead of emitting,
	// modelling a peer torn mid-stream.
	HardClose float64
	// MaxDelay bounds Delay sleeps; zero means 5ms.
	MaxDelay time.Duration
	// HoldDelay bounds how long a reordered frame is held when no
	// successor arrives; zero means 10ms.
	HoldDelay time.Duration
}

// Any reports whether the spec can fire at all.
func (s FaultSpec) Any() bool {
	return s.Drop > 0 || s.Duplicate > 0 || s.Corrupt > 0 || s.Truncate > 0 ||
		s.Reorder > 0 || s.Delay > 0 || s.HardClose > 0
}

// FaultConn wraps a net.Conn and injects transport faults into the frames
// written through it. It is frame-aware: writes are reassembled into wire
// frames (our encoders always write whole well-formed frames) and faults
// are applied per frame, so a "drop" loses exactly one protocol message
// while keeping the byte stream's framing intact — like a lossy datagram
// path — while "truncate" and "corrupt" damage the stream itself and
// exercise the decoder's resynchronization. Bytes that do not parse as
// frames pass through unmodified. The read side is transparent; wrap the
// peer's conn to fault the other direction.
type FaultConn struct {
	inner net.Conn
	spec  FaultSpec
	rng   *stats.RNG

	mu     sync.Mutex
	pend   []byte // written bytes not yet assembled into a frame
	held   []byte // frame held back by a reorder fault
	timer  *time.Timer
	closed bool

	// Counts of fired faults, for test assertions.
	fired struct {
		drop, dup, corrupt, truncate, reorder, delay, hardClose int
	}
}

// NewFaultConn wraps inner with the given fault spec. The RNG is owned by
// the FaultConn afterwards.
func NewFaultConn(inner net.Conn, spec FaultSpec, rng *stats.RNG) *FaultConn {
	if spec.MaxDelay <= 0 {
		spec.MaxDelay = 5 * time.Millisecond
	}
	if spec.HoldDelay <= 0 {
		spec.HoldDelay = 10 * time.Millisecond
	}
	return &FaultConn{inner: inner, spec: spec, rng: rng}
}

// Fired returns how many times each fault has fired, for assertions.
func (c *FaultConn) Fired() (drop, dup, corrupt, truncate, reorder, delay, hardClose int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.fired
	return f.drop, f.dup, f.corrupt, f.truncate, f.reorder, f.delay, f.hardClose
}

func (c *FaultConn) Read(p []byte) (int, error) { return c.inner.Read(p) }

// Write buffers p, extracts complete wire frames, and forwards each
// through the fault pipeline. It reports p fully written even when frames
// are dropped: to the writer, a lossy transport looks like success.
func (c *FaultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, net.ErrClosed
	}
	c.pend = append(c.pend, p...)
	for {
		if len(c.pend) < HeaderSize {
			return len(p), nil
		}
		payloadLen, ok := headerOK(c.pend)
		if !ok {
			// Not one of our frames: pass the byte through untouched.
			if _, err := c.inner.Write(c.pend[:1]); err != nil {
				return len(p), err
			}
			c.pend = c.pend[1:]
			continue
		}
		total := FrameSize(payloadLen)
		if len(c.pend) < total {
			return len(p), nil
		}
		fr := append([]byte(nil), c.pend[:total]...)
		c.pend = c.pend[total:]
		if err := c.emitLocked(fr); err != nil {
			return len(p), err
		}
		if c.closed {
			return len(p), nil
		}
	}
}

// emitLocked runs one frame through the fault pipeline and writes the
// survivors to the inner conn. Called with mu held.
func (c *FaultConn) emitLocked(fr []byte) error {
	s := &c.spec
	if c.rng.Bool(s.HardClose) {
		c.fired.hardClose++
		c.closed = true
		c.stopTimerLocked()
		return c.inner.Close()
	}
	if c.rng.Bool(s.Drop) {
		c.fired.drop++
		return c.flushHeldLocked()
	}
	if c.rng.Bool(s.Delay) {
		c.fired.delay++
		d := time.Duration(c.rng.Float64() * float64(s.MaxDelay))
		c.mu.Unlock()
		time.Sleep(d)
		c.mu.Lock()
		if c.closed {
			return net.ErrClosed
		}
	}
	if c.rng.Bool(s.Corrupt) {
		c.fired.corrupt++
		bit := c.rng.Intn(len(fr) * 8)
		fr[bit/8] ^= 1 << (bit % 8)
	}
	if c.rng.Bool(s.Truncate) {
		c.fired.truncate++
		fr = fr[:1+c.rng.Intn(len(fr)-1)]
	}
	if c.rng.Bool(s.Reorder) && c.held == nil {
		c.fired.reorder++
		c.held = fr
		c.timer = time.AfterFunc(s.HoldDelay, c.flushHeldAsync)
		return nil
	}
	n := 1
	if c.rng.Bool(s.Duplicate) {
		c.fired.dup++
		n = 2
	}
	for i := 0; i < n; i++ {
		if _, err := c.inner.Write(fr); err != nil {
			return err
		}
	}
	return c.flushHeldLocked()
}

// flushHeldLocked emits a frame held by a reorder fault, now that its
// successor has passed it.
func (c *FaultConn) flushHeldLocked() error {
	if c.held == nil {
		return nil
	}
	fr := c.held
	c.held = nil
	c.stopTimerLocked()
	if c.closed {
		return nil
	}
	_, err := c.inner.Write(fr)
	return err
}

// flushHeldAsync releases a held frame whose successor never came.
func (c *FaultConn) flushHeldAsync() {
	c.mu.Lock()
	defer c.mu.Unlock()
	_ = c.flushHeldLocked()
}

func (c *FaultConn) stopTimerLocked() {
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
}

// Close flushes any held frame and closes the inner conn.
func (c *FaultConn) Close() error {
	c.mu.Lock()
	if !c.closed {
		_ = c.flushHeldLocked()
	}
	c.closed = true
	c.stopTimerLocked()
	c.mu.Unlock()
	return c.inner.Close()
}

func (c *FaultConn) LocalAddr() net.Addr                { return c.inner.LocalAddr() }
func (c *FaultConn) RemoteAddr() net.Addr               { return c.inner.RemoteAddr() }
func (c *FaultConn) SetDeadline(t time.Time) error      { return c.inner.SetDeadline(t) }
func (c *FaultConn) SetReadDeadline(t time.Time) error  { return c.inner.SetReadDeadline(t) }
func (c *FaultConn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }
