package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzDecoder feeds arbitrary bytes to the frame decoder. The decoder must
// never panic, never return a frame violating its own invariants, never
// allocate beyond one maximum-size frame, and must account for every input
// byte as either a returned frame or counted damage.
func FuzzDecoder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{Magic0})
	f.Add([]byte{Magic0, Magic1, Version})
	f.Add(AppendFrame(nil, Frame{Type: 1, Flow: 7, Payload: []byte("seed")}))
	f.Add(AppendFrame(AppendFrame(nil, Frame{Type: 2, Flow: 1, Payload: nil}),
		Frame{Type: 3, Flow: 2, Payload: bytes.Repeat([]byte{0xAA}, 300)}))
	// A frame with another frame embedded in its payload.
	inner := AppendFrame(nil, Frame{Type: 9, Flow: 9, Payload: []byte("inner")})
	f.Add(AppendFrame(nil, Frame{Type: 4, Flow: 3, Payload: inner}))
	// Forged oversize header.
	f.Add([]byte{Magic0, Magic1, Version, 1, 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	// Truncated valid frame.
	whole := AppendFrame(nil, Frame{Type: 5, Flow: 4, Payload: bytes.Repeat([]byte{0x55}, 40)})
	f.Add(whole[:len(whole)-3])
	// Corrupted valid frame followed by a good one.
	bad := append([]byte(nil), whole...)
	bad[15] ^= 0xFF
	f.Add(append(bad, AppendFrame(nil, Frame{Type: 6, Flow: 5, Payload: []byte("tail")})...))

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(bytes.NewReader(data))
		var frames int64
		var payloadBytes int
		for {
			fr, err := d.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("non-EOF error from in-memory stream: %v", err)
			}
			if len(fr.Payload) > MaxPayload {
				t.Fatalf("frame payload %d exceeds MaxPayload", len(fr.Payload))
			}
			frames++
			payloadBytes += len(fr.Payload)
		}
		st := d.Stats()
		if st.Frames != frames {
			t.Fatalf("stats.Frames=%d, returned %d", st.Frames, frames)
		}
		if d.BufCap() > MaxFrameSize {
			t.Fatalf("decoder buffer %d exceeds MaxFrameSize %d", d.BufCap(), MaxFrameSize)
		}
		// Conservation: every accepted frame consumed its wire footprint,
		// and nothing the decoder consumed can exceed the input.
		consumed := st.ResyncBytes + frames*int64(HeaderSize+TrailerSize) + int64(payloadBytes)
		if consumed != int64(len(data)) {
			t.Fatalf("consumed %d bytes of %d input", consumed, len(data))
		}
	})
}

// FuzzRoundTrip: whatever the encoder writes, the decoder returns intact.
func FuzzRoundTrip(f *testing.F) {
	f.Add(byte(1), uint32(0), []byte{})
	f.Add(byte(0xFF), uint32(0xFFFFFFFF), []byte("payload"))
	f.Add(byte(0), uint32(1), bytes.Repeat([]byte{Magic0, Magic1}, 100))
	f.Fuzz(func(t *testing.T, typ byte, flow uint32, payload []byte) {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		b := AppendFrame(nil, Frame{Type: typ, Flow: flow, Payload: payload})
		if len(b) != FrameSize(len(payload)) {
			t.Fatalf("encoded %d bytes, want %d", len(b), FrameSize(len(payload)))
		}
		d := NewDecoder(bytes.NewReader(b))
		got, err := d.Next()
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Type != typ || got.Flow != flow || !bytes.Equal(got.Payload, payload) {
			t.Fatalf("round trip mismatch: got %+v", got)
		}
		if _, err := d.Next(); err != io.EOF {
			t.Fatalf("trailing data after round trip: %v", err)
		}
	})
}
