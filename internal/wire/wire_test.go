package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"testing/iotest"
	"time"

	"ppr/internal/crcutil"
	"ppr/internal/stats"
)

func mustDecodeAll(t *testing.T, b []byte) ([]Frame, DecoderStats) {
	t.Helper()
	d := NewDecoder(bytes.NewReader(b))
	var out []Frame
	for {
		f, err := d.Next()
		if err == io.EOF {
			return out, d.Stats()
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, f)
	}
}

func TestRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: 1, Flow: 0, Payload: nil},
		{Type: 2, Flow: 7, Payload: []byte("hello")},
		{Type: 0xFF, Flow: 0xFFFFFFFF, Payload: bytes.Repeat([]byte{0xA5}, 4096)},
		{Type: 3, Flow: 1, Payload: []byte{Magic0, Magic1, Version, 9, 9, 9}}, // magic inside payload
	}
	var b []byte
	for _, f := range frames {
		b = AppendFrame(b, f)
	}
	got, st := mustDecodeAll(t, b)
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
	}
	for i, f := range frames {
		g := got[i]
		if g.Type != f.Type || g.Flow != f.Flow || !bytes.Equal(g.Payload, f.Payload) {
			t.Fatalf("frame %d mismatch: got %+v want %+v", i, g, f)
		}
	}
	if st.CRCErrors != 0 || st.ResyncBytes != 0 || st.Frames != int64(len(frames)) {
		t.Fatalf("stats %+v, want clean", st)
	}
}

// TestResyncAfterCorruption flips bytes in the middle frame and requires
// the decoder to deliver its intact neighbours.
func TestResyncAfterCorruption(t *testing.T) {
	a := AppendFrame(nil, Frame{Type: 1, Flow: 1, Payload: []byte("first")})
	mid := AppendFrame(nil, Frame{Type: 2, Flow: 2, Payload: bytes.Repeat([]byte("x"), 100)})
	c := AppendFrame(nil, Frame{Type: 3, Flow: 3, Payload: []byte("last")})
	for _, corrupt := range []int{0, 2, 9, 30, len(mid) - 1} {
		m := append([]byte(nil), mid...)
		m[corrupt] ^= 0x41
		b := append(append(append([]byte(nil), a...), m...), c...)
		got, st := mustDecodeAll(t, b)
		if len(got) != 2 || got[0].Flow != 1 || got[1].Flow != 3 {
			t.Fatalf("corrupt@%d: decoded %d frames (%v), want flows 1,3", corrupt, len(got), got)
		}
		if st.CRCErrors == 0 && st.ResyncBytes == 0 {
			t.Fatalf("corrupt@%d: no damage counted: %+v", corrupt, st)
		}
	}
}

// TestResyncAfterTruncation cuts a frame short mid-stream.
func TestResyncAfterTruncation(t *testing.T) {
	a := AppendFrame(nil, Frame{Type: 1, Flow: 1, Payload: []byte("first")})
	mid := AppendFrame(nil, Frame{Type: 2, Flow: 2, Payload: bytes.Repeat([]byte("y"), 64)})
	c := AppendFrame(nil, Frame{Type: 3, Flow: 3, Payload: []byte("last")})
	b := append(append(append([]byte(nil), a...), mid[:20]...), c...)
	got, _ := mustDecodeAll(t, b)
	if len(got) != 2 || got[0].Flow != 1 || got[1].Flow != 3 {
		t.Fatalf("decoded %v, want flows 1,3", got)
	}
}

// TestOversizeHeaderSkipped: a forged header claiming a giant payload must
// not make the decoder wait for (or allocate) the claimed bytes.
func TestOversizeHeaderSkipped(t *testing.T) {
	// A CRC-valid header claiming an absurd payload: the strongest forgery.
	forged := []byte{Magic0, Magic1, Version, 1, 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF}
	var hcrc [4]byte
	binary.BigEndian.PutUint32(hcrc[:], crcutil.Sum32(forged))
	forged = append(forged, hcrc[:]...)
	good := AppendFrame(nil, Frame{Type: 7, Flow: 42, Payload: []byte("ok")})
	got, st := mustDecodeAll(t, append(forged, good...))
	if len(got) != 1 || got[0].Flow != 42 {
		t.Fatalf("decoded %v, want the one good frame", got)
	}
	if st.Oversize == 0 {
		t.Fatalf("oversize not counted: %+v", st)
	}
	d := NewDecoder(bytes.NewReader(append(forged, good...)))
	if _, err := d.Next(); err != nil {
		t.Fatal(err)
	}
	if d.BufCap() > MaxFrameSize {
		t.Fatalf("decoder buffer %d exceeds MaxFrameSize %d", d.BufCap(), MaxFrameSize)
	}
}

// TestLeadingNoise: garbage before the first frame is skipped and counted.
func TestLeadingNoise(t *testing.T) {
	noise := bytes.Repeat([]byte{0xDE, 0xAD}, 50)
	good := AppendFrame(nil, Frame{Type: 1, Flow: 5, Payload: []byte("p")})
	got, st := mustDecodeAll(t, append(noise, good...))
	if len(got) != 1 || got[0].Flow != 5 {
		t.Fatalf("decoded %v", got)
	}
	if st.ResyncBytes < int64(len(noise)) {
		t.Fatalf("resync bytes %d, want >= %d", st.ResyncBytes, len(noise))
	}
}

// TestOneByteReads: the decoder tolerates a transport that dribbles one
// byte per read.
func TestOneByteReads(t *testing.T) {
	var b []byte
	for i := 0; i < 5; i++ {
		b = AppendFrame(b, Frame{Type: byte(i), Flow: uint32(i), Payload: bytes.Repeat([]byte{byte(i)}, i*10)})
	}
	d := NewDecoder(iotest.OneByteReader(bytes.NewReader(b)))
	for i := 0; i < 5; i++ {
		f, err := d.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Flow != uint32(i) {
			t.Fatalf("frame %d: flow %d", i, f.Flow)
		}
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

// TestPayloadCopyIndependent: a returned payload survives later Next calls.
func TestPayloadCopyIndependent(t *testing.T) {
	b := AppendFrame(nil, Frame{Type: 1, Flow: 1, Payload: []byte("aaaa")})
	b = AppendFrame(b, Frame{Type: 2, Flow: 2, Payload: []byte("bbbb")})
	d := NewDecoder(bytes.NewReader(b))
	f1, err := d.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Next(); err != nil {
		t.Fatal(err)
	}
	if string(f1.Payload) != "aaaa" {
		t.Fatalf("first payload clobbered: %q", f1.Payload)
	}
}

func faultPipe(t *testing.T, spec FaultSpec, seed uint64) (cli net.Conn, srvSide *FaultConn) {
	t.Helper()
	a, b := net.Pipe()
	fc := NewFaultConn(a, spec, stats.NewRNG(seed))
	t.Cleanup(func() { fc.Close(); b.Close() })
	return b, fc
}

// writeFrames pushes frames through the fault conn on a goroutine and
// returns what the peer decoded.
func throughFaults(t *testing.T, spec FaultSpec, seed uint64, frames []Frame) ([]Frame, DecoderStats, *FaultConn) {
	t.Helper()
	peer, fc := faultPipe(t, spec, seed)
	done := make(chan struct{})
	go func() {
		defer close(done)
		enc := NewEncoder(fc)
		for _, f := range frames {
			if err := enc.Encode(f); err != nil {
				return
			}
		}
		fc.Close()
	}()
	d := NewDecoder(peer)
	var got []Frame
	for {
		peer.SetReadDeadline(time.Now().Add(5 * time.Second))
		f, err := d.Next()
		if err != nil {
			break
		}
		got = append(got, f)
	}
	<-done
	return got, d.Stats(), fc
}

func testFrames(n int) []Frame {
	out := make([]Frame, n)
	for i := range out {
		out[i] = Frame{Type: 1, Flow: uint32(i), Payload: bytes.Repeat([]byte{byte(i)}, 16)}
	}
	return out
}

func TestFaultDropAll(t *testing.T) {
	got, _, fc := throughFaults(t, FaultSpec{Drop: 1}, 1, testFrames(10))
	if len(got) != 0 {
		t.Fatalf("drop=1 delivered %d frames", len(got))
	}
	if d, _, _, _, _, _, _ := fc.Fired(); d != 10 {
		t.Fatalf("drop fired %d, want 10", d)
	}
}

func TestFaultDuplicateAll(t *testing.T) {
	got, _, _ := throughFaults(t, FaultSpec{Duplicate: 1}, 1, testFrames(5))
	if len(got) != 10 {
		t.Fatalf("duplicate=1 delivered %d frames, want 10", len(got))
	}
}

func TestFaultCorruptAllDetected(t *testing.T) {
	got, st, _ := throughFaults(t, FaultSpec{Corrupt: 1}, 1, testFrames(8))
	// Every frame had one bit flipped: none may arrive intact-but-wrong.
	for _, f := range got {
		if int(f.Flow) >= 8 || !bytes.Equal(f.Payload, bytes.Repeat([]byte{byte(f.Flow)}, 16)) {
			t.Fatalf("corrupted frame delivered as intact: %+v", f)
		}
	}
	if st.CRCErrors+st.ResyncBytes == 0 {
		t.Fatalf("no damage recorded: %+v", st)
	}
}

func TestFaultTruncate(t *testing.T) {
	got, _, fc := throughFaults(t, FaultSpec{Truncate: 0.5}, 3, testFrames(20))
	_, _, _, trunc, _, _, _ := fc.Fired()
	if trunc == 0 {
		t.Fatal("truncate never fired")
	}
	if len(got)+trunc < 20 {
		t.Fatalf("delivered %d with %d truncated: lost extra frames", len(got), trunc)
	}
	for _, f := range got {
		if !bytes.Equal(f.Payload, bytes.Repeat([]byte{byte(f.Flow)}, 16)) {
			t.Fatalf("damaged frame delivered: %+v", f)
		}
	}
}

func TestFaultReorderSwapsAdjacent(t *testing.T) {
	// Reorder only the first frame (p=1 would re-hold at each flush; the
	// held slot logic releases after the successor, so with p=1 every
	// other frame swaps). Using 2 frames keeps the assertion exact.
	got, _, _ := throughFaults(t, FaultSpec{Reorder: 1}, 1, testFrames(2))
	if len(got) != 2 || got[0].Flow != 1 || got[1].Flow != 0 {
		t.Fatalf("got %v, want flows [1 0]", got)
	}
}

func TestFaultReorderFlushWithoutSuccessor(t *testing.T) {
	got, _, _ := throughFaults(t, FaultSpec{Reorder: 1, HoldDelay: 5 * time.Millisecond}, 1, testFrames(1))
	if len(got) != 1 || got[0].Flow != 0 {
		t.Fatalf("held frame never flushed: %v", got)
	}
}

func TestFaultHardClose(t *testing.T) {
	got, _, fc := throughFaults(t, FaultSpec{HardClose: 1}, 1, testFrames(5))
	if len(got) != 0 {
		t.Fatalf("hard close delivered %d frames", len(got))
	}
	if _, _, _, _, _, _, hc := fc.Fired(); hc != 1 {
		t.Fatalf("hardClose fired %d, want 1", hc)
	}
}

func TestFaultDeterministicChoices(t *testing.T) {
	spec := FaultSpec{Drop: 0.3, Duplicate: 0.2, Corrupt: 0.2}
	a, _, fcA := throughFaults(t, spec, 99, testFrames(50))
	b, _, fcB := throughFaults(t, spec, 99, testFrames(50))
	da, pa, ca, _, _, _, _ := fcA.Fired()
	db, pb, cb, _, _, _, _ := fcB.Fired()
	if da != db || pa != pb || ca != cb {
		t.Fatalf("fault decisions diverged for same seed: %d/%d/%d vs %d/%d/%d", da, pa, ca, db, pb, cb)
	}
	if len(a) != len(b) {
		t.Fatalf("deliveries diverged: %d vs %d", len(a), len(b))
	}
}
