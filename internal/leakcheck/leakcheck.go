// Package leakcheck is the shared goroutine-leak guard for tests of the
// long-running machinery (linkserv sessions and servers, netsim's flow
// coroutines). It snapshots the live goroutines at test start and fails
// the test if, after a settling deadline, goroutines that did not exist
// before are still alive — filtered by stack, so runtime and test-harness
// goroutines never count.
//
// Usage:
//
//	func TestServer(t *testing.T) {
//		defer leakcheck.Check(t)()
//		...
//	}
//
// or equivalently leakcheck.CheckCleanup(t) to hook t.Cleanup.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// ignoredSubstrings mark goroutines that belong to the runtime, the test
// harness, or process-lifetime singletons: their appearance is not a leak.
var ignoredSubstrings = []string{
	"testing.RunTests",
	"testing.(*T).Run",
	"testing.(*M).",
	"testing.runFuzzing",
	"testing.tRunner.func",
	"runtime.goexit0",
	"runtime.MHeap_Scavenger",
	"runtime.gc",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime/pprof.readProfile",
	"runtime/trace.Start",
	"net/http.(*persistConn)", // keep-alive pool, process-lifetime
	"go.itab",
}

// goroutine is one parsed entry of a full runtime.Stack dump.
type goroutine struct {
	id    int64
	stack string
}

// stacks captures and parses every goroutine's stack.
func stacks() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []goroutine
	for _, g := range strings.Split(string(buf), "\n\n") {
		g = strings.TrimSpace(g)
		if g == "" {
			continue
		}
		header, _, _ := strings.Cut(g, "\n")
		// "goroutine 123 [running]:"
		fields := strings.Fields(header)
		if len(fields) < 2 || fields[0] != "goroutine" {
			continue
		}
		id, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		out = append(out, goroutine{id: id, stack: g})
	}
	return out
}

// ignored reports whether the goroutine's stack marks it as harness or
// runtime machinery.
func ignored(g goroutine) bool {
	for _, s := range ignoredSubstrings {
		if strings.Contains(g.stack, s) {
			return true
		}
	}
	return false
}

// Snapshot records the identities of the currently live goroutines.
type Snapshot struct {
	ids map[int64]bool
}

// Take captures the current goroutine set.
func Take() Snapshot {
	ids := map[int64]bool{}
	for _, g := range stacks() {
		ids[g.id] = true
	}
	return Snapshot{ids: ids}
}

// Leaked returns the stack-filtered goroutines alive now that were not in
// the snapshot.
func (s Snapshot) Leaked() []goroutine {
	var out []goroutine
	for _, g := range stacks() {
		if !s.ids[g.id] && !ignored(g) {
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Settle polls until no leaked goroutines remain or the deadline passes,
// returning whatever is still alive. Goroutines legitimately winding down
// (closed connections, exiting workers) get time to finish.
func (s Snapshot) Settle(deadline time.Duration) []goroutine {
	end := time.Now().Add(deadline)
	for {
		leaked := s.Leaked()
		if len(leaked) == 0 || time.Now().After(end) {
			return leaked
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// DefaultSettle is how long Check waits for goroutines to wind down before
// declaring them leaked.
const DefaultSettle = 5 * time.Second

// Check snapshots now and returns a function that fails the test if new
// goroutines survive the settling deadline. Use with defer:
//
//	defer leakcheck.Check(t)()
func Check(t testing.TB) func() {
	t.Helper()
	snap := Take()
	return func() {
		t.Helper()
		report(t, snap)
	}
}

// CheckCleanup is Check wired through t.Cleanup, for tests whose teardown
// itself is registered via Cleanup (the check runs last-registered-first,
// so call CheckCleanup before registering teardowns that stop goroutines).
func CheckCleanup(t testing.TB) {
	t.Helper()
	snap := Take()
	t.Cleanup(func() { report(t, snap) })
}

func report(t testing.TB, snap Snapshot) {
	t.Helper()
	if leaked := snap.Settle(DefaultSettle); len(leaked) > 0 {
		var b strings.Builder
		for _, g := range leaked {
			fmt.Fprintf(&b, "%s\n\n", g.stack)
		}
		t.Errorf("leaked %d goroutine(s):\n%s", len(leaked), b.String())
	}
}
