package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestNoLeakPasses: a test that starts and stops its goroutines is clean.
func TestNoLeakPasses(t *testing.T) {
	snap := Take()
	done := make(chan struct{})
	stop := make(chan struct{})
	go func() { <-stop; close(done) }()
	close(stop)
	<-done
	if leaked := snap.Settle(2 * time.Second); len(leaked) > 0 {
		t.Fatalf("false positive: %d goroutines reported leaked", len(leaked))
	}
}

// TestLeakDetected: a goroutine that outlives the test is caught, with its
// stack in the report.
func TestLeakDetected(t *testing.T) {
	snap := Take()
	stop := make(chan struct{})
	defer close(stop)
	started := make(chan struct{})
	go func() { close(started); <-stop }() // deliberately still alive at check time
	<-started
	leaked := snap.Settle(50 * time.Millisecond)
	if len(leaked) != 1 {
		t.Fatalf("leaked = %d goroutines, want 1", len(leaked))
	}
	if !strings.Contains(leaked[0].stack, "leakcheck.TestLeakDetected") {
		t.Fatalf("leak report missing creator stack:\n%s", leaked[0].stack)
	}
}

// TestSettleWaitsForWindDown: goroutines already on their way out are not
// reported.
func TestSettleWaitsForWindDown(t *testing.T) {
	snap := Take()
	go func() { time.Sleep(100 * time.Millisecond) }()
	if leaked := snap.Settle(2 * time.Second); len(leaked) > 0 {
		t.Fatalf("winding-down goroutine reported as leak")
	}
}

// TestIgnoredFilters: harness goroutines never count as leaks even from an
// empty snapshot.
func TestIgnoredFilters(t *testing.T) {
	empty := Snapshot{ids: map[int64]bool{}}
	for _, g := range empty.Leaked() {
		for _, s := range ignoredSubstrings {
			if strings.Contains(g.stack, s) {
				t.Fatalf("ignored goroutine reported:\n%s", g.stack)
			}
		}
	}
}
