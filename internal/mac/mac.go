// Package mac implements the link/MAC-layer transmit path of the testbed's
// senders: Poisson packet arrivals at a configured offered load, and the
// CSMA carrier-sense discipline the paper toggles between experiments
// ("the CC2420 senders perform a carrier sense before transmitting each
// packet", Sec. 7.2.2, versus the carrier-sense-disabled runs of Figs.
// 9–12).
package mac

import (
	"fmt"

	"ppr/internal/stats"
)

// ChipRateHz is the 802.15.4 2.4 GHz chip rate: 2 Mchip/s.
const ChipRateHz = 2_000_000

// BitRateBps is the peak payload bit rate: 250 kbit/s (Sec. 6).
const BitRateBps = 250_000

// ChipsPerSecond converts a duration in seconds to chips.
func ChipsPerSecond(sec float64) int64 { return int64(sec * ChipRateHz) }

// TurnaroundChips is the rx/tx turnaround of an 802.15.4 radio —
// aTurnaroundTime, 12 symbol periods (192 µs) — in chips at 2 Mchip/s. The
// closed-loop simulator charges it between every reception and the frame a
// node sends in response (feedback, ACKs, the next retransmission).
const TurnaroundChips = 384

// TrafficSource generates Poisson packet arrivals for one sender.
type TrafficSource struct {
	// OfferedBps is the offered load in application bits/second (the
	// paper's per-node loads: 3.5, 6.9, 13.8 Kbit/s).
	OfferedBps float64
	// PacketBytes is the application payload per packet.
	PacketBytes int
	rng         *stats.RNG
	nextChip    int64
}

// NewTrafficSource seeds a source; arrivals begin spread uniformly inside
// the first inter-arrival period so senders do not start in phase.
func NewTrafficSource(offeredBps float64, packetBytes int, rng *stats.RNG) *TrafficSource {
	if offeredBps <= 0 || packetBytes <= 0 {
		panic(fmt.Sprintf("mac: bad traffic parameters %v bps, %d bytes", offeredBps, packetBytes))
	}
	ts := &TrafficSource{OfferedBps: offeredBps, PacketBytes: packetBytes, rng: rng}
	mean := ts.meanInterarrivalChips()
	ts.nextChip = int64(rng.Float64() * mean)
	return ts
}

func (ts *TrafficSource) meanInterarrivalChips() float64 {
	pktBits := float64(ts.PacketBytes * 8)
	perSec := ts.OfferedBps / pktBits // packets per second
	return ChipRateHz / perSec
}

// Next returns the next arrival time in chips and schedules the following
// one.
func (ts *TrafficSource) Next() int64 {
	t := ts.nextChip
	ts.nextChip += int64(ts.rng.ExpFloat64() * ts.meanInterarrivalChips())
	return t
}

// CSMA is the carrier-sense discipline: wait for idle, then back off a
// random interval; re-sense after the backoff. With Enabled=false Decide
// transmits immediately at the arrival time (the disabled runs).
type CSMA struct {
	// Enabled toggles carrier sensing.
	Enabled bool
	// ThresholdMW is the received-energy level above which the channel is
	// busy at the sensing node.
	ThresholdMW float64
	// MaxBackoffChips bounds the uniform random backoff after finding the
	// channel busy (802.15.4's unit backoff period is 320 µs = 640 chips;
	// the default allows up to 8 periods).
	MaxBackoffChips int64
	// MaxDefers bounds how long a packet chases an idle channel before
	// being sent anyway (a saturated channel must not deadlock the queue).
	MaxDefers int
}

// DefaultCSMA returns the enabled discipline with 802.15.4-flavoured
// constants and the given busy threshold.
func DefaultCSMA(thresholdMW float64) CSMA {
	return CSMA{Enabled: true, ThresholdMW: thresholdMW, MaxBackoffChips: 5120, MaxDefers: 16}
}

// BusyFunc reports the total received interference power (mW) at the
// sensing node at chip time t.
type BusyFunc func(t int64) float64

// Decide returns the transmit time for a packet that became ready at
// arrival, deferring while the channel is sensed busy.
func (c CSMA) Decide(arrival int64, busy BusyFunc, rng *stats.RNG) int64 {
	if !c.Enabled {
		return arrival
	}
	t := arrival
	for i := 0; i < c.MaxDefers; i++ {
		if busy(t) < c.ThresholdMW {
			return t
		}
		t += 1 + int64(rng.Float64()*float64(c.MaxBackoffChips))
	}
	return t
}
