package mac

import (
	"math"
	"testing"

	"ppr/internal/stats"
)

func TestTrafficSourceMeanRate(t *testing.T) {
	// 3.5 Kbit/s at 1500-byte packets ≈ 0.2917 packets/s.
	rng := stats.NewRNG(1)
	ts := NewTrafficSource(3500, 1500, rng)
	const n = 20000
	var last int64
	for i := 0; i < n; i++ {
		last = ts.Next()
	}
	seconds := float64(last) / ChipRateHz
	rate := float64(n) / seconds
	want := 3500.0 / (1500 * 8)
	if math.Abs(rate-want)/want > 0.05 {
		t.Errorf("packet rate %v, want ~%v", rate, want)
	}
}

func TestTrafficSourceArrivalsIncrease(t *testing.T) {
	ts := NewTrafficSource(13800, 1500, stats.NewRNG(2))
	prev := int64(-1)
	for i := 0; i < 1000; i++ {
		next := ts.Next()
		if next < prev {
			t.Fatal("arrival times went backwards")
		}
		prev = next
	}
}

func TestTrafficSourceExponentialGaps(t *testing.T) {
	// Coefficient of variation of exponential inter-arrivals is 1.
	ts := NewTrafficSource(6900, 1500, stats.NewRNG(3))
	var gaps []float64
	prev := ts.Next()
	for i := 0; i < 20000; i++ {
		next := ts.Next()
		gaps = append(gaps, float64(next-prev))
		prev = next
	}
	mean := stats.Mean(gaps)
	var sq float64
	for _, g := range gaps {
		sq += (g - mean) * (g - mean)
	}
	cv := math.Sqrt(sq/float64(len(gaps))) / mean
	if math.Abs(cv-1) > 0.05 {
		t.Errorf("inter-arrival CV %v, want ~1 (Poisson)", cv)
	}
}

func TestTrafficSourcePanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTrafficSource(0, 1500, stats.NewRNG(0))
}

func TestCSMADisabledTransmitsImmediately(t *testing.T) {
	c := CSMA{Enabled: false}
	busy := func(int64) float64 { return 1e9 }
	if got := c.Decide(12345, busy, stats.NewRNG(1)); got != 12345 {
		t.Errorf("disabled CSMA deferred to %d", got)
	}
}

func TestCSMAIdleChannelImmediate(t *testing.T) {
	c := DefaultCSMA(1e-9)
	busy := func(int64) float64 { return 0 }
	if got := c.Decide(999, busy, stats.NewRNG(1)); got != 999 {
		t.Errorf("idle channel deferred to %d", got)
	}
}

func TestCSMADefersWhileBusy(t *testing.T) {
	c := DefaultCSMA(1e-9)
	// Channel busy until chip 20000 — well within the deferral budget of
	// MaxDefers backoffs, so the decision must land after the busy period.
	busy := func(t int64) float64 {
		if t < 20000 {
			return 1
		}
		return 0
	}
	got := c.Decide(0, busy, stats.NewRNG(2))
	if got < 20000 {
		t.Errorf("transmitted at %d while channel busy", got)
	}
}

func TestCSMABoundedDeferral(t *testing.T) {
	c := DefaultCSMA(1e-9)
	alwaysBusy := func(int64) float64 { return 1 }
	got := c.Decide(0, alwaysBusy, stats.NewRNG(3))
	maxDefer := int64(c.MaxDefers) * (c.MaxBackoffChips + 1)
	if got > maxDefer {
		t.Errorf("deferred to %d, beyond bound %d", got, maxDefer)
	}
}

func TestChipsPerSecond(t *testing.T) {
	if ChipsPerSecond(1) != 2_000_000 {
		t.Error("chip rate")
	}
	if ChipsPerSecond(0.5) != 1_000_000 {
		t.Error("fractional seconds")
	}
}
