package testbed

import (
	"testing"

	"ppr/internal/radio"
)

// TestNodeGainQuadrants checks the full node×node gain view against the
// underlying matrices for every quadrant, plus reciprocity where the model
// promises it.
func TestNodeGainQuadrants(t *testing.T) {
	tb := New(radio.DefaultParams(), 3)
	if g, want := tb.NodeGainDBm(2, 5), tb.SenderGainDBm[2][5]; g != want {
		t.Errorf("sender→sender: %v != %v", g, want)
	}
	if g, want := tb.NodeGainDBm(2, NumSenders+1), tb.GainDBm[2][1]; g != want {
		t.Errorf("sender→receiver: %v != %v", g, want)
	}
	// Receiver→sender uses channel reciprocity: same path, same gain.
	if g, want := tb.NodeGainDBm(NumSenders+1, 2), tb.GainDBm[2][1]; g != want {
		t.Errorf("receiver→sender: %v != %v", g, want)
	}
	if g, want := tb.NodeGainDBm(NumSenders, NumSenders+3), tb.ReceiverGainDBm[0][3]; g != want {
		t.Errorf("receiver→receiver: %v != %v", g, want)
	}
	for j := 0; j < NumReceivers; j++ {
		for k := j + 1; k < NumReceivers; k++ {
			if tb.ReceiverGainDBm[j][k] != tb.ReceiverGainDBm[k][j] {
				t.Errorf("receiver gains not reciprocal at (%d,%d)", j, k)
			}
		}
	}
	for n := 0; n < NumNodes; n++ {
		if g := tb.NodeGainDBm(n, n); g != tb.Params.TxPowerDBm {
			t.Errorf("own transmission at node %d: %v dBm, want TxPower", n, g)
		}
	}
}

// TestReceiverGainDrawOrder pins the compatibility promise: the new
// receiver-to-receiver budgets are drawn after every pre-existing random
// draw, so placement and the sender matrices match what deployments
// produced before the closed-loop simulator existed. The concrete values
// below are from the seed-1 deployment at the time the matrices were
// frozen.
func TestReceiverGainDrawOrder(t *testing.T) {
	tb := New(radio.DefaultParams(), 1)
	if got := tb.GainDBm[0][0]; got < -61 || got > -58 {
		t.Errorf("seed-1 GainDBm[0][0] moved to %v; pre-existing draws were disturbed", got)
	}
	if got := tb.SenderGainDBm[1][0]; got == 0 {
		t.Error("sender gains missing")
	}
	for j := 0; j < NumReceivers; j++ {
		for k := 0; k < NumReceivers; k++ {
			if j != k && tb.ReceiverGainDBm[j][k] >= 0 {
				t.Errorf("receiver gain (%d,%d) = %v dBm; expected a lossy link", j, k, tb.ReceiverGainDBm[j][k])
			}
		}
	}
}
