package testbed

import (
	"strings"
	"testing"

	"ppr/internal/radio"
)

func defaultTB() *Testbed { return New(radio.DefaultParams(), 1) }

func TestDeploymentCounts(t *testing.T) {
	tb := defaultTB()
	if len(tb.Senders) != NumSenders {
		t.Errorf("%d senders", len(tb.Senders))
	}
	if len(tb.Receivers) != NumReceivers {
		t.Errorf("%d receivers", len(tb.Receivers))
	}
	if len(tb.GainDBm) != NumSenders || len(tb.GainDBm[0]) != NumReceivers {
		t.Error("gain matrix shape")
	}
}

func TestNodesInsideFloorPlan(t *testing.T) {
	tb := defaultTB()
	check := func(p radio.Position, what string) {
		if p.X < 0 || p.X > WidthFeet || p.Y < 0 || p.Y > HeightFeet {
			t.Errorf("%s at (%v,%v) outside %gx%g plan", what, p.X, p.Y, WidthFeet, HeightFeet)
		}
	}
	for _, p := range tb.Senders {
		check(p, "sender")
	}
	for _, p := range tb.Receivers {
		check(p, "receiver")
	}
}

func TestDeterministicPlacement(t *testing.T) {
	a, b := New(radio.DefaultParams(), 42), New(radio.DefaultParams(), 42)
	for i := range a.Senders {
		if a.Senders[i] != b.Senders[i] {
			t.Fatal("same seed, different placement")
		}
	}
	for i := range a.GainDBm {
		for j := range a.GainDBm[i] {
			if a.GainDBm[i][j] != b.GainDBm[i][j] {
				t.Fatal("same seed, different gains")
			}
		}
	}
	c := New(radio.DefaultParams(), 43)
	if a.Senders[0] == c.Senders[0] {
		t.Error("different seeds gave identical placement")
	}
}

func TestAudibilityMatchesPaper(t *testing.T) {
	// Sec. 7.2.2: "each sink had between 4 and 8 sender nodes that it could
	// hear" — i.e., decode reliably. Under Rician fading a link needs
	// roughly 15 dB of mean SNR headroom to deliver near-perfectly, so
	// that margin is the "can hear" criterion; weaker senders are audible
	// only as interference or marginal links. Allow slack around the
	// paper's 4–8 band; this guards against a grossly mis-tuned budget.
	tb := defaultTB()
	for j := 0; j < NumReceivers; j++ {
		n := tb.AudibleCount(j, 15)
		if n < 3 || n > 14 {
			t.Errorf("receiver %d reliably hears %d senders at 15 dB margin; paper band is 4-8", j, n)
		}
		t.Logf("receiver %d reliably hears %d senders (15 dB margin)", j, n)
	}
}

func TestLinkQualitySpread(t *testing.T) {
	// The best audible links should be near-perfect (high SNR) and there
	// should be marginal links too — the spread Figs. 8–12 rely on.
	tb := defaultTB()
	strong, marginal := 0, 0
	for i := 0; i < NumSenders; i++ {
		for j := 0; j < NumReceivers; j++ {
			snr := tb.GainDBm[i][j] - tb.Params.NoiseFloorDBm
			if snr > 15 {
				strong++
			} else if snr > 0 && snr <= 8 {
				marginal++
			}
		}
	}
	if strong == 0 {
		t.Error("no strong links in deployment")
	}
	if marginal == 0 {
		t.Error("no marginal links in deployment")
	}
	t.Logf("strong links: %d, marginal links: %d", strong, marginal)
}

func TestRxPowerMWConsistent(t *testing.T) {
	tb := defaultTB()
	if tb.RxPowerMW(0, 0) != radio.DBmToMW(tb.GainDBm[0][0]) {
		t.Error("RxPowerMW disagrees with GainDBm")
	}
}

func TestSenderGainSymmetryShape(t *testing.T) {
	tb := defaultTB()
	if len(tb.SenderGainDBm) != NumSenders || len(tb.SenderGainDBm[0]) != NumSenders {
		t.Fatal("sender gain matrix shape")
	}
	// Own signal saturates at TX power (used by carrier sense).
	for i := 0; i < NumSenders; i++ {
		if tb.SenderGainDBm[i][i] != tb.Params.TxPowerDBm {
			t.Errorf("self gain %v", tb.SenderGainDBm[i][i])
		}
	}
}

func TestASCIIMap(t *testing.T) {
	m := defaultTB().ASCIIMap()
	if strings.Count(m, "*") != NumSenders {
		// Senders can overwrite each other's cells; allow a small deficit
		// but not an empty map.
		if strings.Count(m, "*") < NumSenders-6 {
			t.Errorf("map shows %d senders", strings.Count(m, "*"))
		}
	}
	for _, r := range []string{"R1", "R2", "R3", "R4"} {
		if !strings.Contains(m, r) {
			t.Errorf("map missing %s", r)
		}
	}
	if !strings.Contains(m, "+") {
		t.Error("map missing room walls")
	}
}
