// Package testbed models the paper's experimental deployment (Fig. 7): 27
// IEEE 802.15.4 nodes spread over nine rooms of an indoor office roughly
// 100×50 feet — 23 moteiv tmote-sky senders and four GNU Radio receivers
// (R1–R4) deployed among them. Placement is deterministic (seeded) so every
// experiment runs against the same floor plan, and the propagation
// parameters of internal/radio turn pairwise distances into a static link
// gain matrix.
package testbed

import (
	"fmt"
	"strings"

	"ppr/internal/radio"
	"ppr/internal/stats"
)

// Floor plan extent in feet, matching Fig. 7's scale bar.
const (
	WidthFeet  = 100.0
	HeightFeet = 50.0
	// RoomsX × RoomsY = nine rooms.
	RoomsX = 3
	RoomsY = 3
)

// NumSenders and NumReceivers match the paper's deployment.
const (
	NumSenders   = 23
	NumReceivers = 4
	// NumNodes is the full deployment size. Global node IDs run senders
	// first (0..NumSenders-1), then receivers (NumSenders..NumNodes-1) —
	// the addressing the simulators' frames already use.
	NumNodes = NumSenders + NumReceivers
)

// Testbed is one instantiated deployment: node positions and the link
// budget between every sender and receiver.
type Testbed struct {
	// Params is the propagation environment.
	Params radio.Params
	// Senders holds the 23 sender positions; sender i has node ID i.
	Senders []radio.Position
	// Receivers holds the four receiver positions (R1–R4); receiver j has
	// node ID NumSenders+j.
	Receivers []radio.Position
	// GainDBm[i][j] is the received power at receiver j of sender i's
	// transmissions (transmit power and static shadowing folded in).
	GainDBm [][]float64
	// SenderGainDBm[i][k] is the received power at sender k of sender i's
	// transmissions, used for carrier sense.
	SenderGainDBm [][]float64
	// ReceiverGainDBm[j][k] is the received power at receiver k of receiver
	// j's transmissions — the link budget between sinks, which matters once
	// receivers transmit too (closed-loop feedback frames interfere at the
	// other sinks).
	ReceiverGainDBm [][]float64
}

// New builds the deployment. The seed fixes both placement jitter and the
// per-link shadowing deviates; the paper's single physical testbed
// corresponds to a single seed, and different seeds act as different
// buildings for robustness runs.
func New(params radio.Params, seed uint64) *Testbed {
	rng := stats.NewRNG(seed)
	tb := &Testbed{Params: params}

	roomW := WidthFeet / RoomsX
	roomH := HeightFeet / RoomsY

	// Receivers sit near the centres of four spread-out rooms, as R1–R4 are
	// distributed among the senders in Fig. 7.
	recvRooms := [][2]int{{0, 0}, {2, 0}, {0, 2}, {2, 2}}
	for _, rr := range recvRooms {
		cx := (float64(rr[0]) + 0.5) * roomW
		cy := (float64(rr[1]) + 0.5) * roomH
		tb.Receivers = append(tb.Receivers, radio.Position{
			X: cx + (rng.Float64()-0.5)*roomW*0.3,
			Y: cy + (rng.Float64()-0.5)*roomH*0.3,
		})
	}

	// Senders round-robin across all nine rooms with jittered positions, so
	// each receiver can hear the handful of senders in and near its room —
	// the "between 4 and 8 senders" audibility of Sec. 7.2.2.
	for i := 0; i < NumSenders; i++ {
		room := i % (RoomsX * RoomsY)
		rx, ry := room%RoomsX, room/RoomsX
		tb.Senders = append(tb.Senders, radio.Position{
			X: (float64(rx) + 0.15 + 0.7*rng.Float64()) * roomW,
			Y: (float64(ry) + 0.15 + 0.7*rng.Float64()) * roomH,
		})
	}

	// Static link budgets with per-link lognormal shadowing.
	tb.GainDBm = make([][]float64, NumSenders)
	for i := range tb.GainDBm {
		tb.GainDBm[i] = make([]float64, NumReceivers)
		for j := range tb.GainDBm[i] {
			shadow := rng.NormFloat64() * params.ShadowSigmaDB
			d := tb.Senders[i].Dist(tb.Receivers[j])
			tb.GainDBm[i][j] = params.RxPowerDBm(d, shadow)
		}
	}
	tb.SenderGainDBm = make([][]float64, NumSenders)
	for i := range tb.SenderGainDBm {
		tb.SenderGainDBm[i] = make([]float64, NumSenders)
		for k := range tb.SenderGainDBm[i] {
			if i == k {
				tb.SenderGainDBm[i][k] = params.TxPowerDBm // own transmission saturates
				continue
			}
			shadow := rng.NormFloat64() * params.ShadowSigmaDB
			d := tb.Senders[i].Dist(tb.Senders[k])
			tb.SenderGainDBm[i][k] = params.RxPowerDBm(d, shadow)
		}
	}
	// Receiver-to-receiver budgets are drawn after everything else so that
	// the placement and the two matrices above stay bit-identical, for a
	// given seed, with deployments built before closed-loop simulation
	// existed.
	tb.ReceiverGainDBm = make([][]float64, NumReceivers)
	for j := range tb.ReceiverGainDBm {
		tb.ReceiverGainDBm[j] = make([]float64, NumReceivers)
	}
	for j := 0; j < NumReceivers; j++ {
		for k := j + 1; k < NumReceivers; k++ {
			shadow := rng.NormFloat64() * params.ShadowSigmaDB
			d := tb.Receivers[j].Dist(tb.Receivers[k])
			g := params.RxPowerDBm(d, shadow)
			tb.ReceiverGainDBm[j][k] = g
			tb.ReceiverGainDBm[k][j] = g // reciprocal link
		}
		tb.ReceiverGainDBm[j][j] = params.TxPowerDBm // own transmission saturates
	}
	return tb
}

// IsSender reports whether global node ID n is a sender.
func IsSender(n int) bool { return n >= 0 && n < NumSenders }

// NodeGainDBm returns the received power at global node `to` of global node
// `from`'s transmissions, covering all four quadrants of the deployment:
// sender→receiver (GainDBm), sender→sender (SenderGainDBm), receiver→sender
// (GainDBm by channel reciprocity — shadowing is a property of the path) and
// receiver→receiver (ReceiverGainDBm). A node's own transmission saturates
// its front end at the transmit power.
func (tb *Testbed) NodeGainDBm(from, to int) float64 {
	if from == to {
		return tb.Params.TxPowerDBm
	}
	switch {
	case IsSender(from) && IsSender(to):
		return tb.SenderGainDBm[from][to]
	case IsSender(from):
		return tb.GainDBm[from][to-NumSenders]
	case IsSender(to):
		return tb.GainDBm[to][from-NumSenders]
	default:
		return tb.ReceiverGainDBm[from-NumSenders][to-NumSenders]
	}
}

// NumNodes returns the deployment size. Together with NodeGainDBm and
// RadioParams it satisfies netsim's Topology interface, so the paper's
// testbed runs on the same engine as the declarative internal/topo layouts.
func (tb *Testbed) NumNodes() int { return NumNodes }

// RadioParams returns the propagation environment (netsim's Topology
// interface).
func (tb *Testbed) RadioParams() radio.Params { return tb.Params }

// NodePosition returns the floor-plan position of global node ID n.
func (tb *Testbed) NodePosition(n int) radio.Position {
	if IsSender(n) {
		return tb.Senders[n]
	}
	return tb.Receivers[n-NumSenders]
}

// BestReceiver returns the receiver index with the strongest link from
// sender i — the sink the routing layer would pick, and the destination the
// open-loop scheduler already addresses frames to.
func (tb *Testbed) BestReceiver(i int) int {
	best := 0
	for j := 1; j < NumReceivers; j++ {
		if tb.GainDBm[i][j] > tb.GainDBm[i][best] {
			best = j
		}
	}
	return best
}

// RxPowerMW returns sender i's received power at receiver j in milliwatts.
func (tb *Testbed) RxPowerMW(i, j int) float64 {
	return radio.DBmToMW(tb.GainDBm[i][j])
}

// Audible reports whether sender i is audible at receiver j above the given
// SNR margin over the noise floor — the paper's "able to hear and decode
// some subset of the senders".
func (tb *Testbed) Audible(i, j int, marginDB float64) bool {
	return tb.GainDBm[i][j] >= tb.Params.NoiseFloorDBm+marginDB
}

// AudibleCount returns how many senders clear the margin at receiver j.
func (tb *Testbed) AudibleCount(j int, marginDB float64) int {
	n := 0
	for i := 0; i < NumSenders; i++ {
		if tb.Audible(i, j, marginDB) {
			n++
		}
	}
	return n
}

// ASCIIMap renders the floor plan as text — the substitute for Fig. 7.
// Senders print as '*', receivers as R1..R4, room walls as lines.
func (tb *Testbed) ASCIIMap() string {
	const cols, rows = 80, 24
	grid := make([][]byte, rows)
	for y := range grid {
		grid[y] = make([]byte, cols)
		for x := range grid[y] {
			grid[y][x] = ' '
		}
	}
	// Room walls.
	for ry := 0; ry <= RoomsY; ry++ {
		y := ry * (rows - 1) / RoomsY
		for x := 0; x < cols; x++ {
			grid[y][x] = '-'
		}
	}
	for rx := 0; rx <= RoomsX; rx++ {
		x := rx * (cols - 1) / RoomsX
		for y := 0; y < rows; y++ {
			if grid[y][x] == '-' {
				grid[y][x] = '+'
			} else {
				grid[y][x] = '|'
			}
		}
	}
	plot := func(p radio.Position, c byte) (int, int) {
		x := int(p.X / WidthFeet * float64(cols-1))
		y := int(p.Y / HeightFeet * float64(rows-1))
		if x < 0 {
			x = 0
		}
		if x >= cols {
			x = cols - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= rows {
			y = rows - 1
		}
		grid[y][x] = c
		return x, y
	}
	for _, p := range tb.Senders {
		plot(p, '*')
	}
	for j, p := range tb.Receivers {
		x, y := plot(p, 'R')
		if x+1 < cols {
			grid[y][x+1] = byte('1' + j)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Testbed layout (%gx%g ft, 9 rooms): * = sender, Rn = receiver\n", WidthFeet, HeightFeet)
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}
