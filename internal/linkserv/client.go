package linkserv

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ppr/internal/core/pparq"
	"ppr/internal/frame"
	"ppr/internal/obs"
	"ppr/internal/phy"
	"ppr/internal/wire"
)

// errFlowIdled is the internal verdict for a MsgClosed{ClosedIdle} received
// mid-transfer: the server dropped the flow as idle (our request frames
// never reached it), but the conn is alive and opens are idempotent, so the
// transfer retry loop reopens instead of failing the flow.
var errFlowIdled = errors.New("linkserv: flow idled out by server")

// ClientConfig tunes the client end: the remote radio head plus its own
// robustness knobs. The zero value is usable.
type ClientConfig struct {
	// Decoder is the radio head's symbol decoder. Default phy.HardDecoder.
	Decoder phy.Decoder
	// Impair, when set, mutates each link-layer frame's chip stream before
	// it enters the receiver pipeline — the simulated channel. It is called
	// concurrently from every flow's transfer goroutine and must be safe
	// for concurrent use (key any randomness off the flow ID, or lock).
	Impair func(dir byte, flow uint32, chips *frame.ChipBuffer)

	// OpenTimeout bounds one open round trip. Default 5s.
	OpenTimeout time.Duration
	// RespTimeout bounds the wait for any server activity during a
	// transfer; each MsgAir served resets it. Default 10s.
	RespTimeout time.Duration
	// Retries is how many times Open and Transfer re-send their request
	// after a timeout before giving up (both are idempotent server-side).
	// Default 3.
	Retries int
	// WriteTimeout bounds each wire-frame write. Default 10s.
	WriteTimeout time.Duration
	// QueueLen bounds the outbound frame queue. Default 256.
	QueueLen int
	// BackoffBase and BackoffCap pace the retries. Defaults 10ms, 500ms.
	BackoffBase time.Duration
	BackoffCap  time.Duration

	// Metrics receives the linkserv.client.* counters; nil falls back to
	// obs.Default().
	Metrics *obs.Registry
}

func (c ClientConfig) fill() ClientConfig {
	if c.Decoder == nil {
		c.Decoder = phy.HardDecoder{}
	}
	if c.OpenTimeout == 0 {
		c.OpenTimeout = 5 * time.Second
	}
	if c.RespTimeout == 0 {
		c.RespTimeout = 10 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 3
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.QueueLen == 0 {
		c.QueueLen = 256
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = 500 * time.Millisecond
	}
	return c
}

// flowInbox bounds each flow's message queue from the demux reader.
const flowInbox = 16

// Client is the radio-head end of a link-server connection. It demuxes
// wire frames to flows; each flow's Transfer call runs the full receiver
// pipeline over every link-layer frame the server sends it, so PHY decode
// work parallelizes across the goroutines driving the flows.
type Client struct {
	cfg ClientConfig
	m   *clientMetrics
	c   net.Conn

	out       chan wire.Frame
	closedCh  chan struct{}
	closeOnce sync.Once
	goAway    atomic.Bool

	mu       sync.Mutex
	flows    map[uint32]*Flow
	nextFlow uint32

	rxPool sync.Pool
	wg     sync.WaitGroup
}

// Dial connects to a link server over TCP.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn, cfg), nil
}

// NewClient wraps an established connection — a TCP dial or one end of a
// net.Pipe whose other end went to Server.AddConn.
func NewClient(conn net.Conn, cfg ClientConfig) *Client {
	cfg = cfg.fill()
	c := &Client{
		cfg:      cfg,
		m:        newClientMetrics(cfg.Metrics),
		c:        conn,
		out:      make(chan wire.Frame, cfg.QueueLen),
		closedCh: make(chan struct{}),
		flows:    map[uint32]*Flow{},
	}
	c.rxPool.New = func() any { return frame.NewReceiver(cfg.Decoder) }
	c.wg.Add(2)
	go c.reader()
	go c.writer()
	return c
}

// teardown closes the connection and unblocks everything. Idempotent.
func (c *Client) teardown() {
	c.closeOnce.Do(func() {
		close(c.closedCh)
		c.c.Close()
	})
}

// Close tears the connection down and waits for the client's goroutines.
// Flow calls in flight return ErrClosed.
func (c *Client) Close() error {
	c.teardown()
	c.wg.Wait()
	return nil
}

// Draining reports whether the server announced MsgGoAway.
func (c *Client) Draining() bool { return c.goAway.Load() }

func (c *Client) enqueue(f wire.Frame) bool {
	t := time.NewTimer(c.cfg.WriteTimeout)
	defer t.Stop()
	select {
	case c.out <- f:
		return true
	case <-c.closedCh:
		return false
	case <-t.C:
		return false
	}
}

func (c *Client) writer() {
	defer c.wg.Done()
	enc := wire.NewEncoder(c.c)
	for {
		select {
		case f := <-c.out:
			c.c.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
			if err := enc.Encode(f); err != nil {
				c.teardown()
				return
			}
		case <-c.closedCh:
			return
		}
	}
}

// reader demuxes incoming wire frames to flow inboxes. It does no PHY
// work — a slow decode on one flow must not stall the others.
func (c *Client) reader() {
	defer c.wg.Done()
	dec := wire.NewDecoder(c.c)
	for {
		f, err := dec.Next()
		if err != nil {
			c.teardown()
			return
		}
		if f.Flow == 0 {
			if f.Type == MsgGoAway {
				c.goAway.Store(true)
			}
			continue
		}
		c.mu.Lock()
		fl := c.flows[f.Flow]
		c.mu.Unlock()
		if fl == nil {
			c.m.unknownFlow.Inc()
			continue
		}
		select {
		case fl.inbox <- inMsg{typ: f.Type, body: f.Payload}:
		default:
			c.m.inboxDrops.Inc()
		}
	}
}

// Flow is one open PP-ARQ flow. A Flow serializes its own calls: Transfer
// and Close may be used from any goroutine, one at a time (an internal
// mutex enforces it).
type Flow struct {
	c  *Client
	id uint32

	inbox chan inMsg

	mu      sync.Mutex // serializes Transfer/Close
	nextXid uint32
	closed  bool
}

// Open opens a new flow, retrying lost open round trips (the server's open
// is idempotent). It fails fast with ErrDraining after a MsgGoAway and
// maps the server's refusals to ErrBusy / ErrDraining.
func (c *Client) Open() (*Flow, error) {
	if c.goAway.Load() {
		return nil, ErrDraining
	}
	c.mu.Lock()
	c.nextFlow++
	id := c.nextFlow
	f := &Flow{c: c, id: id, inbox: make(chan inMsg, flowInbox)}
	c.flows[id] = f
	c.mu.Unlock()
	c.m.opens.Inc()

	bo := newBackoff(c.cfg.BackoffBase, c.cfg.BackoffCap)
	var err error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			c.m.retries.Inc()
			sleepOr(bo.Next(), c.closedCh)
		}
		if !c.enqueue(wire.Frame{Type: MsgOpen, Flow: id}) {
			err = ErrClosed
			break
		}
		err = f.awaitOpen()
		if err == nil {
			return f, nil
		}
		if err != ErrTimeout {
			break
		}
		c.m.timeouts.Inc()
	}
	c.dropFlow(id)
	return nil, err
}

// awaitOpen waits for the open verdict, tolerating unrelated traffic.
func (f *Flow) awaitOpen() error {
	t := time.NewTimer(f.c.cfg.OpenTimeout)
	defer t.Stop()
	for {
		select {
		case m := <-f.inbox:
			switch m.typ {
			case MsgOpenOK:
				return nil
			case MsgOpenErr:
				code, msg, err := parseOpenErr(m.body)
				if err != nil {
					f.c.m.malformed.Inc()
					continue
				}
				switch code {
				case CodeBusy:
					return ErrBusy
				case CodeDraining:
					return ErrDraining
				default:
					return fmt.Errorf("linkserv: open refused: %s", msg)
				}
			case MsgClosed:
				// A stale close from a previous life of this flow ID.
				continue
			default:
				continue
			}
		case <-f.c.closedCh:
			return ErrClosed
		case <-t.C:
			return ErrTimeout
		}
	}
}

func (c *Client) dropFlow(id uint32) {
	c.mu.Lock()
	delete(c.flows, id)
	c.mu.Unlock()
}

// Transfer delivers one payload over the flow with full PP-ARQ recovery,
// acting as the remote radio head for every link-layer frame the server's
// protocol machinery transmits. It returns the payload as the (simulated)
// receiver verified it, with the protocol's air-byte accounting.
//
// A transfer whose done frame is lost is retried under the same xid; the
// server answers duplicates from cache, so payloads never move twice. If
// the transport ate so many request frames that the server reaped the flow
// as idle, the transfer reopens it (opens are idempotent) and retries
// rather than surfacing a dead flow over a healthy conn.
func (f *Flow) Transfer(payload []byte) ([]byte, pparq.Stats, error) {
	if len(payload) == 0 || len(payload) > frame.MaxPayload {
		return nil, pparq.Stats{}, fmt.Errorf("linkserv: payload must be 1..%d bytes, got %d",
			frame.MaxPayload, len(payload))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, pparq.Stats{}, ErrClosed
	}
	f.nextXid++
	xid := f.nextXid
	f.c.m.transfers.Inc()

	bo := newBackoff(f.c.cfg.BackoffBase, f.c.cfg.BackoffCap)
	for attempt := 0; attempt <= f.c.cfg.Retries; attempt++ {
		if attempt > 0 {
			f.c.m.retries.Inc()
			sleepOr(bo.Next(), f.c.closedCh)
		}
		if !f.c.enqueue(wire.Frame{Type: MsgTransfer, Flow: f.id,
			Payload: append(binaryU32(nil, xid), payload...)}) {
			return nil, pparq.Stats{}, ErrClosed
		}
		delivered, st, err := f.serveRadioHead(xid)
		if err == errFlowIdled {
			// The server idled the flow out because our request frames
			// were lost in transit. The conn is alive and opens are
			// idempotent, so reopen the flow and let the retry loop
			// re-send the transfer under the same xid.
			if !f.c.enqueue(wire.Frame{Type: MsgOpen, Flow: f.id}) {
				return nil, pparq.Stats{}, ErrClosed
			}
			if err = f.awaitOpen(); err == nil {
				err = ErrTimeout
			} else if err != ErrTimeout {
				f.closed = true
				f.c.dropFlow(f.id)
				return nil, pparq.Stats{}, err
			}
		}
		if err != ErrTimeout {
			return delivered, st, err
		}
		f.c.m.timeouts.Inc()
	}
	return nil, pparq.Stats{}, ErrTimeout
}

func binaryU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// serveRadioHead processes server frames for one transfer attempt: every
// MsgAir runs through the real receiver pipeline (after the optional
// channel impairment) and its best reception goes back as MsgRx, until the
// matching MsgDone arrives.
func (f *Flow) serveRadioHead(xid uint32) ([]byte, pparq.Stats, error) {
	t := time.NewTimer(f.c.cfg.RespTimeout)
	defer t.Stop()
	for {
		select {
		case m := <-f.inbox:
			switch m.typ {
			case MsgAir:
				t.Reset(f.c.cfg.RespTimeout)
				f.handleAir(m.body)
			case MsgDone:
				done, err := parseDone(m.body)
				if err != nil {
					f.c.m.malformed.Inc()
					continue
				}
				if done.Xid != xid {
					continue // replay of an earlier transfer's done
				}
				if done.Status != StatusOK {
					return nil, done.Stats, fmt.Errorf("%w: %s", ErrGiveUp, done.Err)
				}
				return done.Delivered, done.Stats, nil
			case MsgClosed:
				reason := byte(ClosedByClient)
				if len(m.body) > 0 {
					reason = m.body[0]
				}
				if reason == ClosedIdle {
					// Recoverable: the flow state is gone server-side but
					// the conn is alive. Transfer reopens and retries.
					return nil, pparq.Stats{}, errFlowIdled
				}
				f.closed = true
				f.c.dropFlow(f.id)
				if reason == ClosedDraining {
					return nil, pparq.Stats{}, ErrDraining
				}
				return nil, pparq.Stats{}, ErrClosed
			case MsgOpenOK, MsgOpenErr:
				continue // stale open verdict
			default:
				f.c.m.malformed.Inc()
			}
		case <-f.c.closedCh:
			return nil, pparq.Stats{}, ErrClosed
		case <-t.C:
			return nil, pparq.Stats{}, ErrTimeout
		}
	}
}

// handleAir runs one link-layer frame through the radio head. The pooled
// receiver's reception is scratch-backed, so it is serialized before the
// receiver returns to the pool.
func (f *Flow) handleAir(body []byte) {
	m, err := parseAir(body)
	if err != nil {
		f.c.m.malformed.Inc()
		return
	}
	f.c.m.airs.Inc()
	chips := frame.New(m.Dst, m.Src, m.Seq, m.Payload).AirChips()
	if f.c.cfg.Impair != nil {
		f.c.cfg.Impair(m.Dir, f.id, chips)
	}
	rx := f.c.rxPool.Get().(*frame.Receiver)
	rec := frame.BestReception(rx.Receive(chips))
	resp := appendReception(nil, m.Exch, rec)
	f.c.rxPool.Put(rx)
	f.c.enqueue(wire.Frame{Type: MsgRx, Flow: f.id, Payload: resp})
}

// Close closes the flow on the server and forgets it locally. Best-effort:
// a lost close round trip ends with the server idling the flow out.
func (f *Flow) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	defer f.c.dropFlow(f.id)
	if !f.c.enqueue(wire.Frame{Type: MsgClose, Flow: f.id}) {
		return ErrClosed
	}
	t := time.NewTimer(f.c.cfg.OpenTimeout)
	defer t.Stop()
	for {
		select {
		case m := <-f.inbox:
			if m.typ == MsgClosed {
				return nil
			}
		case <-f.c.closedCh:
			return ErrClosed
		case <-t.C:
			return ErrTimeout
		}
	}
}
